// The concurrent verification engine.
//
// Takes a batch of CheckRequests and executes them on a worker thread pool
// with per-check deadlines, cooperative cancellation and a shared
// thread-safe solver-query cache (smt::QueryCache). Checks are independent
// by construction — every check owns its expression context and solver — so
// the batch outcome is identical to a sequential run regardless of the job
// count; only wall-clock changes.
//
// The engine threads its machinery through CheckOptions::solverFactory, so
// the checkers themselves stay single-threaded and oblivious: each solver
// they create is transparently wrapped with (inside-out) the portfolio
// racer, the deadline/cancellation governor and the query cache.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "check/request.h"
#include "check/session.h"
#include "smt/query_cache.h"

namespace pugpara::engine {

/// Internal cancellation token (defined in engine.cpp).
struct CancelState;

struct EngineOptions {
  /// Worker threads for runAll. 1 = sequential (the default, deterministic
  /// baseline); 0 = one per hardware thread.
  unsigned jobs = 1;
  /// Race Z3 against MiniSMT on every query and take the first answer
  /// (see portfolio_solver.h). Doubles transient solver memory.
  bool portfolio = false;
  /// Third engine mode: answer every query with MiniSMT's in-process seed
  /// portfolio — N SAT-solver clones with diverse restart/branching/phase
  /// seeds racing on the same CNF with learnt-clause sharing (see
  /// smt/mini/share.h). <= 1 = off. Forces the Mini backend; mutually
  /// exclusive with `portfolio` (which races across backends instead).
  unsigned miniPortfolio = 1;
  /// Deadline applied to checks whose request leaves deadlineMs at 0.
  uint32_t defaultDeadlineMs = 0;
  /// Shared query cache; the engine creates a private one when null. Pass
  /// your own to share hits across engines or persist them (QueryCache::
  /// load/save).
  std::shared_ptr<smt::QueryCache> cache;
};

/// A request bound to the session that owns its kernels — the unit the
/// worker pool consumes. Lets one batch span several sessions (the bench
/// tables verify many independently parsed kernel pairs at once).
struct BoundCheck {
  const check::VerificationSession* session = nullptr;
  check::CheckRequest request;
};

class VerificationEngine {
 public:
  explicit VerificationEngine(EngineOptions options = {});
  ~VerificationEngine();

  VerificationEngine(const VerificationEngine&) = delete;
  VerificationEngine& operator=(const VerificationEngine&) = delete;

  /// Executes the batch; results come back in request order. Outcomes are
  /// independent of `jobs`. Never throws for per-check failures — those
  /// surface as Outcome::Unsupported / Unknown in the matching result.
  std::vector<check::CheckResult> runAll(
      const check::VerificationSession& session,
      std::span<const check::CheckRequest> requests);
  std::vector<check::CheckResult> runAll(std::span<const BoundCheck> checks);

  /// Single-request convenience (same wrapping, no pool).
  check::CheckResult run(const check::VerificationSession& session,
                         const check::CheckRequest& request);

  /// Cooperative cancellation: every in-flight solver call is interrupted
  /// and every remaining check in current/future batches completes
  /// immediately with Outcome::Unknown. Irreversible for this engine.
  void cancelAll();

  [[nodiscard]] smt::QueryCache& cache() { return *cache_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  check::CheckResult runOne(const BoundCheck& check);

  EngineOptions options_;
  std::shared_ptr<smt::QueryCache> cache_;
  std::shared_ptr<CancelState> cancel_;
};

}  // namespace pugpara::engine
