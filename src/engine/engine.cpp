#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "engine/portfolio_solver.h"

namespace pugpara::engine {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-check wall-clock deadline. Disabled when `enabled` is false.
struct Deadline {
  Clock::time_point end{};
  bool enabled = false;

  [[nodiscard]] uint32_t remainingMs() const {
    if (!enabled) return 0;  // caller treats 0 as "no deadline bound"
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    end - Clock::now())
                    .count();
    return left > 0 ? static_cast<uint32_t>(left) : 0;
  }
  [[nodiscard]] bool expired() const {
    return enabled && Clock::now() >= end;
  }
};

}  // namespace

/// Shared cancellation token: a sticky flag plus the set of live solvers to
/// interrupt. Solvers register around their check() calls so cancelAll()
/// reaches queries already in flight.
struct CancelState {
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::unordered_set<smt::Solver*> live;

  void enter(smt::Solver* s) {
    std::lock_guard<std::mutex> lock(mu);
    live.insert(s);
    if (cancelled.load(std::memory_order_acquire)) s->requestStop();
  }
  void leave(smt::Solver* s) {
    std::lock_guard<std::mutex> lock(mu);
    live.erase(s);
  }
  void cancel() {
    cancelled.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu);
    for (smt::Solver* s : live) s->requestStop();
  }
};

namespace {

/// Enforces the engine's per-check deadline and cancellation on one inner
/// solver: clamps every check()'s timeout to the remaining budget, answers
/// Unknown outright once the deadline passed or the engine was cancelled,
/// and keeps the inner solver reachable for cancelAll() while solving.
///
/// Every Unknown the governor causes (early bail-out or a clamped budget
/// running dry) is recorded in `clipped`. The engine needs that signal:
/// several checkers pose Sat-seeking queries ("does a racing pair exist?")
/// and read non-Sat as proof, so a governed Unknown they cannot distinguish
/// from Unsat would silently turn a deadline into a Verified verdict. runOne
/// downgrades such results to Outcome::Unknown after the fact.
class GovernedSolver final : public smt::Solver {
 public:
  GovernedSolver(std::unique_ptr<smt::Solver> inner,
                 std::shared_ptr<CancelState> cancel, Deadline deadline,
                 std::shared_ptr<std::atomic<bool>> clipped)
      : inner_(std::move(inner)),
        cancel_(std::move(cancel)),
        deadline_(deadline),
        clipped_(std::move(clipped)) {}

  void push() override { inner_->push(); }
  void pop() override { inner_->pop(); }
  void add(expr::Expr assertion) override { inner_->add(assertion); }

  smt::CheckResult check() override {
    return governed([this]() { return inner_->check(); });
  }

  smt::CheckResult checkAssuming(
      std::span<const expr::Expr> assumptions) override {
    return governed(
        [this, assumptions]() { return inner_->checkAssuming(assumptions); });
  }

  [[nodiscard]] std::unique_ptr<smt::Model> model() override {
    return inner_->model();
  }

  void setTimeoutMs(uint32_t ms) override { requestedTimeoutMs_ = ms; }
  void requestStop() override { inner_->requestStop(); }

  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  template <typename CheckFn>
  smt::CheckResult governed(CheckFn runCheck) {
    if (cancel_->cancelled.load(std::memory_order_acquire) ||
        deadline_.expired())
      return clip();

    uint32_t budget = requestedTimeoutMs_;
    if (const uint32_t left = deadline_.remainingMs(); left != 0)
      budget = budget == 0 ? left : std::min(budget, left);
    inner_->setTimeoutMs(budget);

    cancel_->enter(inner_.get());
    smt::CheckResult r = runCheck();
    cancel_->leave(inner_.get());
    if (r == smt::CheckResult::Unknown &&
        (deadline_.enabled ||
         cancel_->cancelled.load(std::memory_order_acquire)))
      return clip();
    return r;
  }

  smt::CheckResult clip() {
    clipped_->store(true, std::memory_order_release);
    return smt::CheckResult::Unknown;
  }

  std::unique_ptr<smt::Solver> inner_;
  std::shared_ptr<CancelState> cancel_;
  Deadline deadline_;
  std::shared_ptr<std::atomic<bool>> clipped_;
  uint32_t requestedTimeoutMs_ = 0;
};

}  // namespace

VerificationEngine::VerificationEngine(EngineOptions options)
    : options_(std::move(options)),
      cache_(options_.cache ? options_.cache
                            : std::make_shared<smt::QueryCache>()),
      cancel_(std::make_shared<CancelState>()) {}

VerificationEngine::~VerificationEngine() = default;

check::CheckResult VerificationEngine::runOne(const BoundCheck& check) {
  check::CheckRequest req = check.request;

  const uint32_t deadlineMs =
      req.deadlineMs != 0 ? req.deadlineMs : options_.defaultDeadlineMs;
  Deadline deadline;
  if (deadlineMs != 0) {
    deadline.enabled = true;
    deadline.end = Clock::now() + std::chrono::milliseconds(deadlineMs);
  }

  const bool portfolio = options_.portfolio;
  // The mini-portfolio engine mode answers every query with MiniSMT's
  // in-process seed portfolio; it overrides the request's backend choice.
  if (options_.miniPortfolio > 1 && !portfolio) {
    req.options.backend = smt::Backend::Mini;
    req.options.mini.portfolio = options_.miniPortfolio;
  }
  const smt::Backend backend = req.options.backend;
  const smt::MiniTuning mini = req.options.mini;
  std::shared_ptr<CancelState> cancel = cancel_;
  smt::QueryCache* cache = cache_.get();
  auto clipped = std::make_shared<std::atomic<bool>>(false);
  req.options.solverFactory = [portfolio, backend, mini, cancel, cache,
                               deadline,
                               clipped]() -> std::unique_ptr<smt::Solver> {
    std::unique_ptr<smt::Solver> s =
        portfolio ? makePortfolioSolver() : smt::makeSolver(backend, mini);
    s = std::make_unique<GovernedSolver>(std::move(s), cancel, deadline,
                                         clipped);
    return smt::makeCachingSolver(std::move(s), *cache);
  };

  try {
    check::CheckResult result = check.session->run(req);
    // A clipped query makes any "nothing found" verdict vacuous: Sat-seeking
    // checkers read the governor's Unknown as Unsat, so without this fence a
    // 1 ms deadline could certify a racy kernel race-free. Positive findings
    // stand — a Sat answer is ground truth no matter what was clipped.
    if (clipped->load(std::memory_order_acquire) &&
        (result.report.outcome == check::Outcome::Verified ||
         result.report.outcome == check::Outcome::NoBugFound)) {
      result.report.outcome = check::Outcome::Unknown;
      result.report.detail =
          "deadline/cancellation interrupted at least one solver query; "
          "partial verdict withheld (was: " + result.report.detail + ")";
    }
    return result;
  } catch (const std::exception& e) {
    // runCheck already absorbs PugError; this is the last-resort fence that
    // keeps one misbehaving check from tearing down the whole batch.
    check::CheckResult result;
    result.kind = req.kind;
    result.kernel = req.kernel;
    result.kernel2 = req.kernel2;
    result.report.outcome = check::Outcome::Unsupported;
    result.report.method = "none";
    result.report.detail = std::string("internal error: ") + e.what();
    return result;
  }
}

std::vector<check::CheckResult> VerificationEngine::runAll(
    std::span<const BoundCheck> checks) {
  std::vector<check::CheckResult> results(checks.size());

  unsigned jobs = options_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<unsigned>(
      std::min<size_t>(jobs, checks.size() == 0 ? 1 : checks.size()));

  if (jobs <= 1) {
    for (size_t i = 0; i < checks.size(); ++i) results[i] = runOne(checks[i]);
    return results;
  }

  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= checks.size()) return;
      results[i] = runOne(checks[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (unsigned t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is the pool's first worker
  for (std::thread& t : pool) t.join();
  return results;
}

std::vector<check::CheckResult> VerificationEngine::runAll(
    const check::VerificationSession& session,
    std::span<const check::CheckRequest> requests) {
  std::vector<BoundCheck> bound;
  bound.reserve(requests.size());
  for (const check::CheckRequest& r : requests)
    bound.push_back({&session, r});
  return runAll(bound);
}

check::CheckResult VerificationEngine::run(
    const check::VerificationSession& session,
    const check::CheckRequest& request) {
  return runOne({&session, request});
}

void VerificationEngine::cancelAll() { cancel_->cancel(); }

}  // namespace pugpara::engine
