// Portfolio solving: race Z3 against MiniSMT on the same query and take the
// first definitive answer.
//
// The two backends have complementary strengths — Z3 digests quantified
// frame axioms natively, MiniSMT's bit-blasting often wins on the dense
// quantifier-free VCs the MonotoneQe pipeline emits — so the portfolio's
// latency is min(z3, mini) per query, the standard trick of modern
// solver-backed tools. The loser is cancelled cooperatively through
// smt::Solver::requestStop().
#pragma once

#include <memory>

#include "smt/solver.h"

namespace pugpara::engine {

/// Returns a Solver that fans each check() out to a fresh Z3 and MiniSMT
/// instance on two threads. Semantics:
///   * first Sat/Unsat wins; the other backend is stopped and discarded;
///   * a backend answering Unknown (quantifiers in MiniSMT, timeout, stop)
///     just drops out of the race; the result is Unknown only if both do;
///   * model() serves from the winning backend.
/// Like every Solver, the returned object is single-threaded from the
/// caller's point of view (the internal fan-out is invisible).
[[nodiscard]] std::unique_ptr<smt::Solver> makePortfolioSolver();

}  // namespace pugpara::engine
