#include "engine/portfolio_solver.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "support/diagnostics.h"

namespace pugpara::engine {

namespace {

using smt::CheckResult;

class PortfolioSolver final : public smt::Solver {
 public:
  void push() override { scopes_.push_back(assertions_.size()); }

  void pop() override {
    require(!scopes_.empty(), "PortfolioSolver::pop without push");
    assertions_.resize(scopes_.back());
    scopes_.pop_back();
  }

  void add(expr::Expr assertion) override {
    require(assertion.sort().isBool(), "asserted expression must be Bool");
    assertions_.push_back(assertion);
  }

  CheckResult check() override {
    return race([](smt::Solver& s) { return s.check(); });
  }

  // Portfolio mode races fresh backends per query by design (a cancelled
  // loser is sticky-stopped), so assumptions simply ride along into both
  // racers' native checkAssuming; there is no cross-query CNF to reuse.
  CheckResult checkAssuming(
      std::span<const expr::Expr> assumptions) override {
    return race([assumptions](smt::Solver& s) {
      return s.checkAssuming(assumptions);
    });
  }

 private:
  template <typename CheckFn>
  CheckResult race(CheckFn checkOne) {
    winner_.reset();
    if (stopped_.load(std::memory_order_acquire)) return CheckResult::Unknown;

    // Fresh backend instances per race: a cancelled loser is sticky-stopped
    // and must not leak into the next check().
    std::array<std::unique_ptr<smt::Solver>, 2> racers = {
        smt::makeZ3Solver(), smt::makeMiniSolver()};
    for (auto& s : racers) {
      s->setTimeoutMs(timeoutMs_);
      for (expr::Expr a : assertions_) s->add(a);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_ = {racers[0].get(), racers[1].get()};
      // A requestStop() that slipped in between the entry check and this
      // registration would miss the racers; re-check under the lock.
      if (stopped_.load(std::memory_order_acquire))
        for (auto& s : racers) s->requestStop();
    }

    std::array<CheckResult, 2> results = {CheckResult::Unknown,
                                          CheckResult::Unknown};
    std::array<bool, 2> done = {false, false};
    std::mutex raceMu;
    std::condition_variable cv;
    auto run = [&](int i) {
      CheckResult r = checkOne(*racers[i]);
      {
        std::lock_guard<std::mutex> lock(raceMu);
        results[i] = r;
        done[i] = true;
      }
      cv.notify_all();
    };
    std::thread t0(run, 0), t1(run, 1);

    int win = -1;
    {
      std::unique_lock<std::mutex> lock(raceMu);
      cv.wait(lock, [&] {
        for (int i = 0; i < 2; ++i)
          if (done[i] && results[i] != CheckResult::Unknown) {
            win = i;
            return true;
          }
        return done[0] && done[1];
      });
    }
    if (win >= 0) racers[1 - win]->requestStop();
    t0.join();
    t1.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_ = {nullptr, nullptr};
    }

    if (win < 0) return CheckResult::Unknown;
    winner_ = std::move(racers[win]);  // keeps the model's backend alive
    return results[win];
  }

 public:
  [[nodiscard]] std::unique_ptr<smt::Model> model() override {
    require(winner_ != nullptr, "PortfolioSolver::model: last check not sat");
    return winner_->model();
  }

  void setTimeoutMs(uint32_t ms) override { timeoutMs_ = ms; }

  void requestStop() override {
    stopped_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    for (smt::Solver* s : active_)
      if (s != nullptr) s->requestStop();
  }

  [[nodiscard]] std::string name() const override {
    return "portfolio(z3+minismt)";
  }

 private:
  std::vector<expr::Expr> assertions_;
  std::vector<size_t> scopes_;
  uint32_t timeoutMs_ = 0;
  std::unique_ptr<smt::Solver> winner_;
  std::atomic<bool> stopped_{false};
  std::mutex mu_;  // guards active_ against cross-thread requestStop()
  std::array<smt::Solver*, 2> active_ = {nullptr, nullptr};
};

}  // namespace

std::unique_ptr<smt::Solver> makePortfolioSolver() {
  return std::make_unique<PortfolioSolver>();
}

}  // namespace pugpara::engine
