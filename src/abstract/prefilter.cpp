#include "abstract/prefilter.h"

#include <algorithm>
#include <unordered_set>

#include "abstract/domain.h"
#include "expr/walk.h"

namespace pugpara::abstract {

using expr::Expr;
using expr::Kind;

void flattenAnd(Expr e, std::vector<Expr>& out) {
  std::unordered_set<const expr::Node*> seen;
  for (const Expr& c : out) seen.insert(c.node());
  std::vector<Expr> stack{e};
  while (!stack.empty()) {
    const Expr c = stack.back();
    stack.pop_back();
    if (c.isTrue()) continue;
    if (c.kind() == Kind::And) {
      // Reverse push keeps the conjuncts in source order.
      for (size_t i = c.arity(); i > 0; --i) stack.push_back(c.kid(i - 1));
      continue;
    }
    if (seen.insert(c.node()).second) out.push_back(c);
  }
}

void Prefilter::setPrefix(std::span<const Expr> prefixConjuncts) {
  prefix_.assign(prefixConjuncts.begin(), prefixConjuncts.end());
}

bool Prefilter::provesUnsat(std::span<const Expr> assumptions) {
  ConstraintSystem sys(ex_);
  for (Expr c : prefix_) sys.add(c);
  for (Expr a : assumptions) sys.add(a);
  return sys.provesUnsat();
}

const expr::Node* CoiSlicer::find(const expr::Node* n) const {
  auto it = parent_.find(n);
  if (it == parent_.end()) return n;
  const expr::Node* root = find(it->second);
  it->second = root;
  return root;
}

void CoiSlicer::build(std::span<const Expr> prefixConjuncts) {
  supports_.clear();
  parent_.clear();
  for (Expr c : prefixConjuncts) {
    std::vector<const expr::Node*> vars;
    for (Expr v : expr::freeVars(c)) vars.push_back(v.node());
    if (c.kind() != Kind::Or) {
      for (size_t i = 1; i < vars.size(); ++i) {
        const expr::Node* a = find(vars[0]);
        const expr::Node* b = find(vars[i]);
        if (a != b) parent_[b] = a;
      }
    }
    supports_.push_back(std::move(vars));
  }
}

std::vector<size_t> CoiSlicer::relevant(
    std::span<const Expr> queryExprs) const {
  std::unordered_set<const expr::Node*> marked;
  for (Expr e : queryExprs)
    for (Expr v : expr::freeVars(e)) marked.insert(find(v.node()));
  std::vector<size_t> out;
  for (size_t i = 0; i < supports_.size(); ++i) {
    bool hit = supports_[i].empty();  // var-free conjuncts are always kept
    for (const expr::Node* v : supports_[i])
      if (marked.count(find(v)) != 0) {
        hit = true;
        break;
      }
    if (hit) out.push_back(i);
  }
  return out;
}

}  // namespace pugpara::abstract
