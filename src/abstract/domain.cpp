#include "abstract/domain.h"

#include <algorithm>

#include "expr/context.h"

namespace pugpara::abstract {

namespace {

using expr::Expr;
using expr::Kind;
using expr::maskToWidth;

constexpr int kMaxRounds = 6;
constexpr int kMaxEqDepth = 8;

// Tier 0 is built for pair queries: a shared interval prefix plus a few
// per-pair assumptions, tens of atoms at most. Beyond these sizes (whole
// equivalence VCs for unrolled kernels) the quadratic congruence pass and
// the fixpoint stop paying for themselves — bail out and let the solver
// have the query. Giving up early is always sound: provesUnsat() just
// answers "don't know".
constexpr size_t kMaxAtoms = 512;
constexpr size_t kMaxCongruenceCands = 96;

// Affine arithmetic is exact only while maskToWidth models the ring; wider
// sorts (the 2w-wide overflow-free products) are treated as opaque.
constexpr uint32_t kMaxWidth = 64;

constexpr __int128 i128Max() { return ~(__int128{1} << 127); }
constexpr __int128 i128Min() { return __int128{1} << 127; }

bool checkedAdd(__int128& acc, __int128 v) {
  if (v > 0 && acc > i128Max() - v) return false;
  if (v < 0 && acc < i128Min() - v) return false;
  acc += v;
  return true;
}

/// Minimum-magnitude signed representative of `c` modulo 2^w.
__int128 signedRep(uint64_t c, uint32_t w) {
  if (w >= 64)
    return static_cast<__int128>(static_cast<int64_t>(c));
  const uint64_t half = uint64_t{1} << (w - 1);
  if (c <= half) return static_cast<__int128>(c);
  return static_cast<__int128>(c) - (static_cast<__int128>(1) << w);
}

Range fullRange(const expr::Node* n) {
  const uint32_t w = n->sort.width();
  return {0, w >= 64 ? UINT64_MAX : (uint64_t{1} << w) - 1};
}

/// Multiplicative inverse of odd `a` modulo 2^w (Newton iteration).
uint64_t modInverse(uint64_t a, uint32_t w) {
  uint64_t x = a;  // correct to 3 bits for odd a
  for (int i = 0; i < 6; ++i) x *= 2 - a * x;
  return maskToWidth(x, w);
}

bool floorDivGeCeilDiv(__int128 hi, __int128 lo, __int128 m) {
  __int128 qh = hi / m;
  if (hi % m != 0 && hi < 0) --qh;
  __int128 ql = lo / m;
  if (lo % m != 0 && lo > 0) ++ql;
  return qh >= ql;
}

}  // namespace

void ConstraintSystem::add(Expr c) {
  if (oversize_) return;
  if (c.isBoolConst()) {
    if (c.isFalse()) contradiction_ = true;
    return;
  }
  if (++atoms_ > kMaxAtoms) {
    oversize_ = true;
    return;
  }
  switch (c.kind()) {
    case Kind::And: {
      // Iterative: the non-parameterized encoders emit And-chains tens of
      // thousands of conjuncts deep.
      std::vector<Expr> stack;
      for (size_t i = c.arity(); i > 0; --i) stack.push_back(c.kid(i - 1));
      while (!stack.empty() && !oversize_) {
        const Expr k = stack.back();
        stack.pop_back();
        if (k.kind() == Kind::And)
          for (size_t i = k.arity(); i > 0; --i) stack.push_back(k.kid(i - 1));
        else
          add(k);
      }
      return;
    }
    case Kind::Eq:
      if (c.kid(0).sort().isBv() && c.kid(0).sort().width() <= kMaxWidth) {
        eqs_.emplace_back(c.kid(0), c.kid(1));
        minePow2(c.kid(0), c.kid(1));
        minePow2(c.kid(1), c.kid(0));
      }
      return;
    case Kind::Not: {
      const Expr inner = c.kid(0);
      if (inner.kind() == Kind::Eq && inner.kid(0).sort().isBv() &&
          inner.kid(0).sort().width() <= kMaxWidth)
        diseqs_.emplace_back(inner.kid(0), inner.kid(1));
      else if (inner.isVar())
        addBoolLit(inner.node(), false);
      return;
    }
    case Kind::BvUlt:
    case Kind::BvUle:
      if (c.kid(0).sort().width() <= kMaxWidth)
        cmps_.push_back({c.kid(0), c.kid(1), c.kind() == Kind::BvUlt});
      return;
    case Kind::Var:
      addBoolLit(c.node(), true);
      return;
    case Kind::Or: {
      std::vector<Expr> disjuncts;
      std::vector<Expr> stack{c};
      while (!stack.empty()) {
        const Expr d = stack.back();
        stack.pop_back();
        if (d.kind() == Kind::Or)
          for (size_t i = 0; i < d.arity(); ++i) stack.push_back(d.kid(i));
        else
          disjuncts.push_back(d);
      }
      ors_.push_back(std::move(disjuncts));
      return;
    }
    default:
      return;  // unparsed conjuncts cost precision, never soundness
  }
}

void ConstraintSystem::minePow2(Expr x, Expr y) {
  // k & (k - 1) == 0: k is zero or a power of two, so k <= 2^(w-1). The
  // corpus' doubling loops carry exactly this invariant.
  if (!(y.isBvConst() && y.bvValue() == 0)) return;
  if (x.kind() != Kind::BvAnd) return;
  const uint32_t w = x.sort().width();
  if (w >= 64) return;
  auto match = [&](Expr p, Expr q) {
    if (q.kind() == Kind::BvSub && q.kid(0) == p && q.kid(1).isBvConst() &&
        q.kid(1).bvValue() == 1)
      pow2Caps_.emplace_back(p.node(), uint64_t{1} << (w - 1));
  };
  match(x.kid(0), x.kid(1));
  match(x.kid(1), x.kid(0));
}

void ConstraintSystem::addBoolLit(const expr::Node* n, bool value) {
  auto [it, inserted] = boolLits_.emplace(n, value);
  if (!inserted && it->second != value) contradiction_ = true;
}

const expr::Node* ConstraintSystem::find(const expr::Node* n) {
  auto it = parent_.find(n);
  if (it == parent_.end()) return n;
  const expr::Node* root = find(it->second);
  it->second = root;
  return root;
}

Range& ConstraintSystem::rangeSlot(const expr::Node* n) {
  const expr::Node* rep = find(n);
  auto [it, inserted] = ranges_.try_emplace(rep, fullRange(n));
  if (inserted && rep != n) {
    const Range cap = fullRange(rep);
    it->second.lo = std::max(it->second.lo, cap.lo);
    it->second.hi = std::min(it->second.hi, cap.hi);
  } else if (!inserted) {
    // `n` joined a class whose slot predates it: apply n's width cap.
    const Range cap = fullRange(n);
    if (cap.hi < it->second.hi) {
      it->second.hi = cap.hi;
      changed_ = true;
    }
  }
  if (it->second.lo > it->second.hi) contradiction_ = true;
  return it->second;
}

void ConstraintSystem::narrow(const expr::Node* n, uint64_t lo, uint64_t hi) {
  Range& r = rangeSlot(n);
  if (lo > r.lo) {
    r.lo = lo;
    changed_ = true;
  }
  if (hi < r.hi) {
    r.hi = hi;
    changed_ = true;
  }
  if (r.lo > r.hi) contradiction_ = true;
}

void ConstraintSystem::unite(const expr::Node* a, const expr::Node* b) {
  const expr::Node* ra = find(a);
  const expr::Node* rb = find(b);
  if (ra == rb) return;
  const Range x = rangeSlot(ra);
  const Range y = rangeSlot(rb);
  const expr::Node* keep = ra->id <= rb->id ? ra : rb;
  const expr::Node* drop = keep == ra ? rb : ra;
  parent_[drop] = keep;
  ranges_.erase(drop);
  Range merged{std::max(x.lo, y.lo), std::min(x.hi, y.hi)};
  if (merged.lo > merged.hi) contradiction_ = true;
  ranges_[keep] = merged;
  changed_ = true;
}

AffineForm ConstraintSystem::resolve(const AffineForm& f) {
  AffineForm r{f.width, f.constant, {}};
  std::vector<AffineForm::Term> mapped;
  for (const AffineForm::Term& t : f.terms) {
    const Range& rng = rangeSlot(t.node);
    if (rng.lo == rng.hi) {
      r.constant = maskToWidth(r.constant + t.coeff * rng.lo, f.width);
      continue;
    }
    mapped.push_back({find(t.node), t.coeff});
  }
  std::sort(mapped.begin(), mapped.end(),
            [](const AffineForm::Term& a, const AffineForm::Term& b) {
              return a.node->id < b.node->id;
            });
  for (const AffineForm::Term& t : mapped) {
    if (!r.terms.empty() && r.terms.back().node == t.node) {
      const uint64_t c = maskToWidth(r.terms.back().coeff + t.coeff, f.width);
      if (c == 0)
        r.terms.pop_back();
      else
        r.terms.back().coeff = c;
    } else {
      r.terms.push_back(t);
    }
  }
  return r;
}

AffineForm ConstraintSystem::resolved(Expr e) { return resolve(ex_.extract(e)); }

std::pair<__int128, __int128> ConstraintSystem::intRange(const AffineForm& f) {
  __int128 lo = static_cast<__int128>(f.constant);
  __int128 hi = lo;
  bool ok = true;
  for (const AffineForm::Term& t : f.terms) {
    const Range r = rangeSlot(t.node);
    const __int128 sc = signedRep(t.coeff, f.width);
    const __int128 a = sc * static_cast<__int128>(r.lo);
    const __int128 b = sc * static_cast<__int128>(r.hi);
    ok = ok && checkedAdd(lo, sc >= 0 ? a : b) &&
         checkedAdd(hi, sc >= 0 ? b : a);
  }
  if (!ok) return {i128Min(), i128Max()};  // unbounded, conservatively
  return {lo, hi};
}

std::optional<Range> ConstraintSystem::noWrapRange(const AffineForm& f) {
  if (f.width > kMaxWidth) return std::nullopt;
  const auto [lo, hi] = intRange(f);
  const __int128 cap = f.width >= 64
                           ? static_cast<__int128>(UINT64_MAX)
                           : (static_cast<__int128>(1) << f.width) - 1;
  if (lo < 0 || hi > cap) return std::nullopt;
  return Range{static_cast<uint64_t>(lo), static_cast<uint64_t>(hi)};
}

std::optional<uint64_t> ConstraintSystem::minVal(Expr e) {
  const auto r = noWrapRange(resolved(e));
  if (!r) return std::nullopt;
  return r->lo;
}

std::optional<uint64_t> ConstraintSystem::maxVal(Expr e) {
  const auto r = noWrapRange(resolved(e));
  if (!r) return std::nullopt;
  return r->hi;
}

Range ConstraintSystem::rangeOf(const expr::Node* n) { return rangeSlot(n); }

bool ConstraintSystem::provablyDisjoint(Expr x, Expr y) {
  if (!x.sort().isBv() || x.sort() != y.sort() ||
      x.sort().width() > kMaxWidth)
    return false;
  const AffineForm f = resolve(afSub(resolved(x), resolved(y)));
  if (f.isConstant()) return f.constant != 0;
  const uint32_t w = f.width;
  // Interval rule: the difference's integer range contains no multiple of
  // 2^w, so the difference cannot be 0 modulo 2^w.
  const auto [lo, hi] = intRange(f);
  if (lo > i128Min() && hi < i128Max() &&
      !floorDivGeCeilDiv(hi, lo, static_cast<__int128>(1) << w))
    return true;
  // Stride/congruence rule: every coefficient is divisible by 2^K but the
  // constant is not, so the difference is nonzero modulo 2^K.
  uint32_t k = w;
  for (const AffineForm::Term& t : f.terms)
    k = std::min(k, static_cast<uint32_t>(__builtin_ctzll(t.coeff)));
  if (k > 0 && maskToWidth(f.constant, k) != 0) return true;
  return boundSeparates(x, y) || boundSeparates(y, x);
}

bool ConstraintSystem::boundSeparates(Expr x, Expr y) {
  // value(x) < value(u) (a mined symbolic bound) and value(y) >= value(u):
  // both sides are integer facts — Ult/Ule compare actual values, and the
  // >= side additionally needs y's affine form to be wrap-free.
  const AffineForm fx = resolved(x);
  if (!fx.isUnitTerm()) return false;
  const expr::Node* t = find(fx.terms[0].node);
  const AffineForm fy = resolved(y);
  if (!noWrapRange(fy)) return false;
  auto separates = [&](const expr::Node* u, uint64_t slack) {
    if (u->sort.width() > fy.width) return false;
    const AffineForm diff = resolve(afSub(fy, afTerm(u, fy.width)));
    const auto [lo, hi] = intRange(diff);
    (void)hi;
    return lo > i128Min() && lo >= static_cast<__int128>(slack);
  };
  for (const auto& [a, u] : boundsStrict_)
    if (find(a) == t && separates(find(u), 0)) return true;
  for (const auto& [a, u] : boundsLax_)
    if (find(a) == t && separates(find(u), 1)) return true;
  return false;
}

bool ConstraintSystem::provablyEqual(Expr x, Expr y) {
  return provablyEqualRec(x, y, 0);
}

bool ConstraintSystem::provablyEqualRec(Expr x, Expr y, int depth) {
  if (x == y) return true;
  if (x.sort() != y.sort()) return false;
  if (x.sort().isBv() && x.sort().width() <= kMaxWidth) {
    const AffineForm f = resolve(afSub(resolved(x), resolved(y)));
    if (f.isConstant() && f.constant == 0) return true;
  }
  if (depth >= kMaxEqDepth) return false;
  if (x.kind() != y.kind() || x.arity() != y.arity() || x.arity() == 0)
    return false;
  const expr::Node* nx = x.node();
  const expr::Node* ny = y.node();
  if (nx->a != ny->a || nx->b != ny->b || nx->cval != ny->cval) return false;
  if (x.kind() == Kind::Forall || x.kind() == Kind::Exists) return false;
  for (size_t i = 0; i < x.arity(); ++i)
    if (!provablyEqualRec(x.kid(i), y.kid(i), depth + 1)) return false;
  return true;
}

bool ConstraintSystem::refuted(Expr d) {
  switch (d.kind()) {
    case Kind::Not: {
      const Expr inner = d.kid(0);
      if (inner.kind() == Kind::Eq)
        return provablyEqual(inner.kid(0), inner.kid(1));
      if (inner.isVar()) {
        auto it = boolLits_.find(inner.node());
        return it != boolLits_.end() && it->second;
      }
      return false;
    }
    case Kind::Eq:
      return d.kid(0).sort().isBv() &&
             provablyDisjoint(d.kid(0), d.kid(1));
    case Kind::BvUlt: {  // refute x < y: min(x) >= max(y)
      const auto mx = minVal(d.kid(0));
      const auto my = maxVal(d.kid(1));
      return mx && my && *mx >= *my;
    }
    case Kind::BvUle: {  // refute x <= y: min(x) > max(y)
      const auto mx = minVal(d.kid(0));
      const auto my = maxVal(d.kid(1));
      return mx && my && *mx > *my;
    }
    case Kind::Var: {
      auto it = boolLits_.find(d.node());
      return it != boolLits_.end() && !it->second;
    }
    default:
      return false;
  }
}

bool ConstraintSystem::cmpImpossible(const Cmp& c) {
  const auto mx = minVal(c.x);
  const auto my = maxVal(c.y);
  if (!mx || !my) return false;
  return c.strict ? *mx >= *my : *mx > *my;
}

void ConstraintSystem::propagateEq(Expr x, Expr y) {
  const AffineForm f = resolve(afSub(resolved(x), resolved(y)));
  const uint32_t w = f.width;
  if (f.isConstant()) {
    if (f.constant != 0) contradiction_ = true;
    return;
  }
  if (f.terms.size() == 1 && (f.terms[0].coeff & 1) != 0) {
    // c*t + c0 == 0 with odd c pins t to exactly one residue, and a term's
    // value always fits its own width, so the residue is the value.
    const uint64_t v = maskToWidth(
        modInverse(f.terms[0].coeff, w) * maskToWidth(~f.constant + 1, w), w);
    narrow(f.terms[0].node, v, v);
    return;
  }
  if (f.terms.size() == 2 && f.constant == 0 &&
      maskToWidth(f.terms[0].coeff + f.terms[1].coeff, w) == 0 &&
      (f.terms[0].coeff & 1) != 0) {
    // c*(t1 - t2) == 0 with odd c: t1 == t2 modulo 2^w, and both values
    // fit below 2^w (term widths never exceed the form width), so the
    // values are equal as integers.
    unite(f.terms[0].node, f.terms[1].node);
  }
}

void ConstraintSystem::propagateCmp(const Cmp& c) {
  const AffineForm fx = resolved(c.x);
  const AffineForm fy = resolved(c.y);
  if (fx.isUnitTerm()) {
    if (const auto ry = noWrapRange(fy)) {
      if (c.strict && ry->hi == 0) {
        contradiction_ = true;  // x < 0 is unsatisfiable (unsigned)
        return;
      }
      narrow(fx.terms[0].node, 0, ry->hi - (c.strict ? 1 : 0));
    }
  }
  if (fy.isUnitTerm()) {
    if (const auto rx = noWrapRange(fx)) {
      if (c.strict && rx->lo == UINT64_MAX) {
        contradiction_ = true;
        return;
      }
      narrow(fy.terms[0].node, rx->lo + (c.strict ? 1 : 0), UINT64_MAX);
    }
  }
  if (fx.isUnitTerm() && fy.isUnitTerm())
    (c.strict ? boundsStrict_ : boundsLax_)
        .emplace_back(fx.terms[0].node, fy.terms[0].node);
}

void ConstraintSystem::congruenceRound() {
  // Gather the opaque terms feeding any atom, then (a) merge nodes pinned
  // to the same singleton value and (b) run one round of structural
  // congruence: same operator, pairwise provably-equal children.
  std::vector<const expr::Node*> cands;
  std::unordered_map<const expr::Node*, bool> seen;
  auto gather = [&](Expr e) {
    if (!e.sort().isBv() || e.sort().width() > kMaxWidth) return;
    for (const AffineForm::Term& t : ex_.extract(e).terms)
      if (seen.emplace(t.node, true).second) cands.push_back(t.node);
  };
  for (const auto& [x, y] : eqs_) gather(x), gather(y);
  for (const auto& [x, y] : diseqs_) gather(x), gather(y);
  for (const Cmp& c : cmps_) gather(c.x), gather(c.y);
  for (const auto& dis : ors_)
    for (Expr d : dis) {
      Expr atom = d.kind() == Kind::Not ? d.kid(0) : d;
      if (atom.arity() == 2 && atom.kid(0).sort().isBv())
        gather(atom.kid(0)), gather(atom.kid(1));
    }

  std::unordered_map<uint64_t, const expr::Node*> byValue;
  for (const expr::Node* n : cands) {
    const Range r = rangeSlot(n);
    if (r.lo != r.hi) continue;
    auto [it, inserted] = byValue.emplace(r.lo, n);
    if (!inserted) unite(it->second, n);
  }

  if (cands.size() > kMaxCongruenceCands) return;  // quadratic pass below

  auto kidEq = [&](Expr a, Expr b) {
    if (a == b) return true;
    if (!a.sort().isBv() || a.sort() != b.sort() ||
        a.sort().width() > kMaxWidth)
      return false;
    const AffineForm f = resolve(afSub(resolved(a), resolved(b)));
    return f.isConstant() && f.constant == 0;
  };
  for (size_t i = 0; i < cands.size(); ++i) {
    const expr::Node* a = cands[i];
    if (a->kind == Kind::Var || a->kids.empty()) continue;
    for (size_t j = i + 1; j < cands.size(); ++j) {
      const expr::Node* b = cands[j];
      if (find(a) == find(b)) continue;
      if (a->kind != b->kind || a->a != b->a || a->b != b->b ||
          a->cval != b->cval || a->sort != b->sort ||
          a->kids.size() != b->kids.size() || b->kids.empty())
        continue;
      bool eq = true;
      for (size_t k = 0; eq && k < a->kids.size(); ++k)
        eq = kidEq(Expr(a->kids[k]), Expr(b->kids[k]));
      if (eq) unite(a, b);
    }
  }
}

void ConstraintSystem::runFixpoint() {
  int round = 0;
  do {
    changed_ = false;
    boundsStrict_.clear();
    boundsLax_.clear();
    for (const auto& [n, cap] : pow2Caps_) narrow(n, 0, cap);
    for (const auto& [x, y] : eqs_) {
      propagateEq(x, y);
      if (contradiction_) return;
    }
    for (const Cmp& c : cmps_) {
      propagateCmp(c);
      if (contradiction_) return;
    }
    for (const auto& [x, y] : diseqs_) {
      // t != c shaves a matching range endpoint.
      const AffineForm fx = resolved(x);
      const AffineForm fy = resolved(y);
      const AffineForm* unit = fx.isUnitTerm() ? &fx : nullptr;
      const AffineForm* cst = fy.isConstant() ? &fy : nullptr;
      if (!unit && fy.isUnitTerm()) unit = &fy;
      if (!cst && fx.isConstant()) cst = &fx;
      if (!unit || !cst) continue;
      const Range r = rangeSlot(unit->terms[0].node);
      const uint64_t c = cst->constant;
      if (r.lo == c && r.hi == c) {
        contradiction_ = true;
        return;
      }
      if (r.lo == c) narrow(unit->terms[0].node, c + 1, r.hi);
      else if (r.hi == c) narrow(unit->terms[0].node, r.lo, c - 1);
    }
    congruenceRound();
    if (contradiction_) return;
  } while (changed_ && ++round < kMaxRounds);
}

bool ConstraintSystem::provesUnsat() {
  if (contradiction_) return true;
  if (oversize_) return false;
  runFixpoint();
  if (contradiction_) return true;
  for (const auto& [x, y] : eqs_)
    if (provablyDisjoint(x, y)) return true;
  for (const auto& [x, y] : diseqs_)
    if (provablyEqual(x, y)) return true;
  for (const Cmp& c : cmps_)
    if (cmpImpossible(c)) return true;
  for (const auto& disjuncts : ors_) {
    bool all = !disjuncts.empty();
    for (Expr d : disjuncts)
      if (!refuted(d)) {
        all = false;
        break;
      }
    if (all) return true;
  }
  return false;
}

}  // namespace pugpara::abstract
