// Affine-form extraction over the hash-consed expr DAG: every bit-vector
// expression is rendered as
//
//     c0 + c1*t1 + c2*t2 + ... (mod 2^w)
//
// where the coefficients are known constants and the terms t_i are opaque
// DAG nodes the extractor chose not to look inside (variables, products of
// two symbolic factors, URem nodes, selects, ...). The rendering is EXACT:
// because +, -, * and shift-by-constant are ring homomorphisms modulo 2^w,
// the affine form evaluates to the same value as the original expression
// under every assignment. Anything the extractor cannot distribute simply
// becomes a single opaque term with coefficient 1, so extraction never
// fails and never loses soundness — only precision.
//
// ZeroExt wrappers are stripped from opaque terms (the value is unchanged;
// the narrower node keeps its tighter implicit range [0, 2^narrow)), which
// is why a term's bit-width may be smaller than the form's width — never
// larger.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace pugpara::abstract {

struct AffineForm {
  struct Term {
    const expr::Node* node = nullptr;
    uint64_t coeff = 0;  // masked to `width`, never zero
  };

  uint32_t width = 0;
  uint64_t constant = 0;    // masked to `width`
  std::vector<Term> terms;  // sorted by node id, unique nodes

  /// Exactly `1*t` with no constant — the shape the domain's equality and
  /// bound rules key on.
  [[nodiscard]] bool isUnitTerm() const {
    return constant == 0 && terms.size() == 1 && terms[0].coeff == 1;
  }
  [[nodiscard]] bool isConstant() const { return terms.empty(); }
};

[[nodiscard]] AffineForm afConst(uint64_t v, uint32_t width);
[[nodiscard]] AffineForm afTerm(const expr::Node* n, uint32_t width);
[[nodiscard]] AffineForm afAdd(const AffineForm& a, const AffineForm& b);
[[nodiscard]] AffineForm afNeg(const AffineForm& a);
[[nodiscard]] AffineForm afSub(const AffineForm& a, const AffineForm& b);
[[nodiscard]] AffineForm afScale(const AffineForm& a, uint64_t c);

/// Memoizing extractor. The memo is environment-free (extraction depends
/// only on the node, and nodes are immutable), so one extractor can be
/// shared across every query of a whole check run.
class AffineExtractor {
 public:
  /// `e` must be bit-vector sorted.
  const AffineForm& extract(expr::Expr e);

 private:
  AffineForm compute(expr::Expr e);
  std::unordered_map<const expr::Node*, AffineForm> memo_;
};

}  // namespace pugpara::abstract
