// Interval x stride/congruence abstract domain over affine forms.
//
// A ConstraintSystem ingests the conjuncts of one query (prefix plus
// per-pair assumptions), mines them into atoms — equalities, disequalities,
// unsigned comparisons, disjunctions, boolean literals — and then tries to
// derive a contradiction:
//
//   * value ranges  [lo, hi]  per DAG node (from domains `t < bdim`, guard
//     bindings `t == c`, power-of-two loop invariants, ...),
//   * an equality union-find over nodes (from affine equations with an odd
//     cofactor and from one round of congruence closure),
//   * symbolic strict bounds `value(x) < value(u)` between opaque terms,
//   * exact mod-2^w reasoning on affine differences (a pair of addresses is
//     disjoint when the integer range of their difference contains no
//     multiple of 2^w, or when the difference's stride/congruence excludes
//     residue 0).
//
// The one soundness invariant: provesUnsat() may only return true when the
// conjunction is genuinely unsatisfiable. Ignoring an atom it cannot parse
// merely weakens the conjunction, and proving a weaker set unsatisfiable is
// still a proof — so unknown operators cost precision, never soundness.
// The domain never claims satisfiability.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "abstract/affine.h"
#include "expr/expr.h"

namespace pugpara::abstract {

/// Inclusive unsigned value interval of one DAG node.
struct Range {
  uint64_t lo = 0;
  uint64_t hi = UINT64_MAX;
};

class ConstraintSystem {
 public:
  explicit ConstraintSystem(AffineExtractor& ex) : ex_(ex) {}

  /// Ingest one conjunct (top-level Ands are flattened internally).
  void add(expr::Expr conjunct);

  /// Runs derivation to fixpoint and scans for a contradiction. True means
  /// the asserted conjunction is unsatisfiable (sound); false means "don't
  /// know" — never "satisfiable".
  [[nodiscard]] bool provesUnsat();

  // Exposed for the white-box unit tests.
  [[nodiscard]] bool provablyEqual(expr::Expr x, expr::Expr y);
  [[nodiscard]] bool provablyDisjoint(expr::Expr x, expr::Expr y);
  [[nodiscard]] Range rangeOf(const expr::Node* n);

 private:
  struct Cmp {
    expr::Expr x, y;
    bool strict = false;  // x < y vs x <= y (unsigned)
  };

  void mineEq(expr::Expr x, expr::Expr y);
  void minePow2(expr::Expr x, expr::Expr y);
  void addBoolLit(const expr::Node* n, bool value);

  const expr::Node* find(const expr::Node* n);
  void unite(const expr::Node* a, const expr::Node* b);
  Range& rangeSlot(const expr::Node* n);
  void narrow(const expr::Node* n, uint64_t lo, uint64_t hi);

  /// Affine form of `e` with terms mapped onto union-find representatives
  /// and singleton-range terms folded into the constant.
  [[nodiscard]] AffineForm resolved(expr::Expr e);
  [[nodiscard]] AffineForm resolve(const AffineForm& f);

  /// Integer range of a resolved form: each coefficient takes its
  /// minimum-magnitude signed representative, each term its value range.
  /// Saturating arithmetic keeps the bounds conservative.
  [[nodiscard]] std::pair<__int128, __int128> intRange(const AffineForm& f);
  /// The form's exact integer value range when it provably does not wrap
  /// modulo 2^width (so the mod is the identity).
  [[nodiscard]] std::optional<Range> noWrapRange(const AffineForm& f);
  [[nodiscard]] std::optional<uint64_t> minVal(expr::Expr e);
  [[nodiscard]] std::optional<uint64_t> maxVal(expr::Expr e);

  [[nodiscard]] bool provablyEqualRec(expr::Expr x, expr::Expr y, int depth);
  /// diff is provably nonzero via a strict bound x < u with y >= u.
  [[nodiscard]] bool boundSeparates(expr::Expr x, expr::Expr y);
  [[nodiscard]] bool refuted(expr::Expr disjunct);
  /// True when the asserted comparison cannot hold.
  [[nodiscard]] bool cmpImpossible(const Cmp& c);

  void runFixpoint();
  void propagateEq(expr::Expr x, expr::Expr y);
  void propagateCmp(const Cmp& c);
  void congruenceRound();

  AffineExtractor& ex_;
  bool contradiction_ = false;
  bool changed_ = false;
  // Atom budget: Tier 0 targets pair queries, not whole-kernel formulas.
  // Once the budget is blown, ingestion stops and provesUnsat() answers
  // "don't know" without running the fixpoint.
  size_t atoms_ = 0;
  bool oversize_ = false;

  std::vector<std::pair<expr::Expr, expr::Expr>> eqs_, diseqs_;
  std::vector<Cmp> cmps_;
  std::vector<std::vector<expr::Expr>> ors_;
  std::unordered_map<const expr::Node*, bool> boolLits_;
  std::vector<std::pair<const expr::Node*, uint64_t>> pow2Caps_;

  std::unordered_map<const expr::Node*, const expr::Node*> parent_;
  std::unordered_map<const expr::Node*, Range> ranges_;  // keyed by rep
  // value(first) < value(second) / <= , between opaque term nodes.
  std::vector<std::pair<const expr::Node*, const expr::Node*>> boundsStrict_,
      boundsLax_;
};

}  // namespace pugpara::abstract
