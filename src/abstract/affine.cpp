#include "abstract/affine.h"

#include "expr/context.h"

namespace pugpara::abstract {

namespace {

using expr::Expr;
using expr::Kind;
using expr::maskToWidth;

// Beyond this many terms the form stops paying for itself; collapse to one
// opaque term instead (still exact — just no visible structure).
constexpr size_t kMaxTerms = 12;

/// Opaque terms drop ZeroExt wrappers: the value is identical and the
/// narrower node carries a tighter implicit range.
const expr::Node* stripZeroExt(Expr e) {
  while (e.kind() == Kind::BvZeroExt) e = e.kid(0);
  return e.node();
}

}  // namespace

AffineForm afConst(uint64_t v, uint32_t width) {
  return {width, maskToWidth(v, width), {}};
}

AffineForm afTerm(const expr::Node* n, uint32_t width) {
  return {width, 0, {{n, 1}}};
}

AffineForm afAdd(const AffineForm& a, const AffineForm& b) {
  AffineForm r{a.width, maskToWidth(a.constant + b.constant, a.width), {}};
  size_t i = 0, j = 0;
  while (i < a.terms.size() || j < b.terms.size()) {
    if (j == b.terms.size() ||
        (i < a.terms.size() && a.terms[i].node->id < b.terms[j].node->id)) {
      r.terms.push_back(a.terms[i++]);
    } else if (i == a.terms.size() ||
               b.terms[j].node->id < a.terms[i].node->id) {
      r.terms.push_back(b.terms[j++]);
    } else {
      const uint64_t c =
          maskToWidth(a.terms[i].coeff + b.terms[j].coeff, a.width);
      if (c != 0) r.terms.push_back({a.terms[i].node, c});
      ++i, ++j;
    }
  }
  return r;
}

AffineForm afNeg(const AffineForm& a) {
  AffineForm r{a.width, maskToWidth(~a.constant + 1, a.width), a.terms};
  for (AffineForm::Term& t : r.terms)
    t.coeff = maskToWidth(~t.coeff + 1, a.width);
  return r;
}

AffineForm afSub(const AffineForm& a, const AffineForm& b) {
  return afAdd(a, afNeg(b));
}

AffineForm afScale(const AffineForm& a, uint64_t c) {
  c = maskToWidth(c, a.width);
  if (c == 0) return afConst(0, a.width);
  AffineForm r{a.width, maskToWidth(a.constant * c, a.width), {}};
  for (const AffineForm::Term& t : a.terms) {
    const uint64_t tc = maskToWidth(t.coeff * c, a.width);
    if (tc != 0) r.terms.push_back({t.node, tc});
  }
  return r;
}

const AffineForm& AffineExtractor::extract(Expr e) {
  auto it = memo_.find(e.node());
  if (it != memo_.end()) return it->second;
  AffineForm f = compute(e);
  if (f.terms.size() > kMaxTerms)
    f = afTerm(stripZeroExt(e), e.sort().width());
  return memo_.emplace(e.node(), std::move(f)).first->second;
}

AffineForm AffineExtractor::compute(Expr e) {
  const uint32_t w = e.sort().width();
  switch (e.kind()) {
    case Kind::BvConst:
      return afConst(e.bvValue(), w);
    case Kind::BvAdd:
      return afAdd(extract(e.kid(0)), extract(e.kid(1)));
    case Kind::BvSub:
      return afSub(extract(e.kid(0)), extract(e.kid(1)));
    case Kind::BvNeg:
      return afNeg(extract(e.kid(0)));
    case Kind::BvMul:
      if (e.kid(0).isBvConst())
        return afScale(extract(e.kid(1)), e.kid(0).bvValue());
      if (e.kid(1).isBvConst())
        return afScale(extract(e.kid(0)), e.kid(1).bvValue());
      break;
    case Kind::BvShl:
      // x << c is x * 2^c modulo 2^w (a shift of >= w bits zeroes out).
      if (e.kid(1).isBvConst()) {
        const uint64_t c = e.kid(1).bvValue();
        if (c >= w) return afConst(0, w);
        return afScale(extract(e.kid(0)), uint64_t{1} << c);
      }
      break;
    default:
      break;
  }
  return afTerm(stripZeroExt(e), w);
}

}  // namespace pugpara::abstract
