// Tier 0 / Tier 1 of the query-discharge pipeline.
//
// Prefilter answers "is prefix AND assumptions provably unsatisfiable?"
// using the abstract domain alone — zero solver calls. It is sound in one
// direction only (a true answer is a proof of Unsat; false means "ask the
// solver"), which is exactly the direction race/equivalence checking needs:
// a discharged pair is a proven non-race, and anything uncertain still
// reaches the solver.
//
// CoiSlicer implements Tier 1: the interval prefix's conjuncts are grouped
// into variable-connected components (a union-find over each conjunct's
// free-variable support set, computed once per interval), and a query only
// needs the components its own free variables touch. A sliced Unsat is
// final — the sliced formula is a subset of the full one. A sliced Sat or
// Unknown proves nothing and must be escalated to the full prefix by the
// caller, so any slicing heuristic is verdict-preserving.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "abstract/affine.h"
#include "expr/expr.h"

namespace pugpara::abstract {

/// Appends the And-flattened conjuncts of `e` to `out`, dropping literal
/// `true` and duplicate conjuncts.
void flattenAnd(expr::Expr e, std::vector<expr::Expr>& out);

class Prefilter {
 public:
  /// Replaces the shared prefix (already And-flattened).
  void setPrefix(std::span<const expr::Expr> prefixConjuncts);

  /// True when prefix AND assumptions is unsatisfiable in the abstract
  /// domain. Never claims satisfiability.
  [[nodiscard]] bool provesUnsat(std::span<const expr::Expr> assumptions);

 private:
  AffineExtractor ex_;  // memo persists across queries and prefixes
  std::vector<expr::Expr> prefix_;
};

class CoiSlicer {
 public:
  /// Computes the support set of every conjunct and unions the variables
  /// each non-disjunctive conjunct mentions into one component.
  /// Disjunctions (the thread-distinctness clause) span every thread
  /// variable and would otherwise glue all components together; they are
  /// kept out of the merge and simply included in any slice that touches
  /// one of their variables.
  void build(std::span<const expr::Expr> prefixConjuncts);

  /// Indices (sorted) of the prefix conjuncts in the cone of influence of
  /// `queryExprs`' free variables.
  [[nodiscard]] std::vector<size_t> relevant(
      std::span<const expr::Expr> queryExprs) const;

  [[nodiscard]] size_t size() const { return supports_.size(); }

 private:
  [[nodiscard]] const expr::Node* find(const expr::Node* n) const;

  std::vector<std::vector<const expr::Node*>> supports_;  // per conjunct
  mutable std::unordered_map<const expr::Node*, const expr::Node*> parent_;
};

}  // namespace pugpara::abstract
