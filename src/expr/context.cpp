#include "expr/context.h"

#include <algorithm>

#include "expr/simplify.h"
#include "support/diagnostics.h"

namespace pugpara::expr {

namespace {

uint64_t hashCombine(uint64_t h, uint64_t v) {
  // 64-bit FNV-ish mixing; quality is sufficient for bucketed interning.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

uint64_t nodeHash(Kind kind, Sort sort, std::span<const Expr> kids, uint32_t a,
                  uint32_t b, uint64_t cval, const std::string& name) {
  uint64_t h = hashCombine(static_cast<uint64_t>(kind), sort.hash());
  h = hashCombine(h, a);
  h = hashCombine(h, b);
  h = hashCombine(h, cval);
  for (char c : name) h = hashCombine(h, static_cast<uint64_t>(c));
  for (const Expr& k : kids)
    h = hashCombine(h, reinterpret_cast<uint64_t>(k.node()));
  return h;
}

bool nodeEquals(const Node& n, Kind kind, Sort sort, std::span<const Expr> kids,
                uint32_t a, uint32_t b, uint64_t cval,
                const std::string& name) {
  if (n.kind != kind || n.sort != sort || n.a != a || n.b != b ||
      n.cval != cval || n.name != name || n.kids.size() != kids.size())
    return false;
  for (size_t i = 0; i < kids.size(); ++i)
    if (n.kids[i] != kids[i].node()) return false;
  return true;
}

}  // namespace

Context::Context() = default;
Context::~Context() = default;

Expr Context::intern(Kind kind, Sort sort, std::span<const Expr> kids,
                     uint32_t a, uint32_t b, uint64_t cval,
                     const std::string& name) {
  for (const Expr& k : kids)
    require(!k.isNull() && k.node()->ctx == this,
            "expression children must be non-null and from the same Context");
  const uint64_t h = nodeHash(kind, sort, kids, a, b, cval, name);
  auto& bucket = buckets_[h];
  for (const Node* n : bucket)
    if (nodeEquals(*n, kind, sort, kids, a, b, cval, name)) return Expr(n);

  Node& n = nodes_.emplace_back();
  n.kind = kind;
  n.sort = sort;
  n.a = a;
  n.b = b;
  n.cval = cval;
  n.id = static_cast<uint32_t>(nodes_.size() - 1);
  n.ctx = this;
  n.name = name;
  n.kids.reserve(kids.size());
  for (const Expr& k : kids) n.kids.push_back(k.node());
  bucket.push_back(&n);
  return Expr(&n);
}

Expr Context::boolVal(bool v) {
  return intern(Kind::BoolConst, Sort::boolSort(), {}, v ? 1 : 0);
}

Expr Context::bvVal(uint64_t value, uint32_t width) {
  return intern(Kind::BvConst, Sort::bv(width), {}, 0, 0,
                maskToWidth(value, width));
}

Expr Context::var(const std::string& name, Sort sort) {
  require(!name.empty(), "variable name must be non-empty");
  auto it = varsByName_.find(name);
  if (it != varsByName_.end()) {
    require(it->second->sort == sort,
            "variable '" + name + "' re-declared at a different sort");
    return Expr(it->second);
  }
  Expr v = intern(Kind::Var, sort, {}, 0, 0, 0, name);
  varsByName_.emplace(name, v.node());
  return v;
}

Expr Context::freshVar(const std::string& hint, Sort sort) {
  for (;;) {
    std::string name = hint + "!" + std::to_string(freshCounter_++);
    if (!varsByName_.contains(name)) return var(name, sort);
  }
}

// ---- Builders: validate, simplify, intern ----------------------------------

namespace {
void requireBool(Expr x) {
  require(x.sort().isBool(), "expected Bool operand");
}
void requireBvPair(Expr x, Expr y) {
  require(x.sort().isBv() && x.sort() == y.sort(),
          "expected equal-width bit-vector operands");
}
}  // namespace

Expr Context::mkNot(Expr x) {
  requireBool(x);
  return detail::simplifyOrIntern(*this, Kind::Not, Sort::boolSort(), {x});
}

Expr Context::mkAnd(Expr x, Expr y) {
  requireBool(x);
  requireBool(y);
  return detail::simplifyOrIntern(*this, Kind::And, Sort::boolSort(),
                                  {x, y});
}

Expr Context::mkAnd(std::span<const Expr> xs) {
  Expr acc = top();
  for (Expr x : xs) acc = mkAnd(acc, x);
  return acc;
}

Expr Context::mkOr(Expr x, Expr y) {
  requireBool(x);
  requireBool(y);
  return detail::simplifyOrIntern(*this, Kind::Or, Sort::boolSort(), {x, y});
}

Expr Context::mkOr(std::span<const Expr> xs) {
  Expr acc = bot();
  for (Expr x : xs) acc = mkOr(acc, x);
  return acc;
}

Expr Context::mkXor(Expr x, Expr y) {
  requireBool(x);
  requireBool(y);
  return detail::simplifyOrIntern(*this, Kind::Xor, Sort::boolSort(),
                                  {x, y});
}

Expr Context::mkImplies(Expr x, Expr y) {
  requireBool(x);
  requireBool(y);
  return detail::simplifyOrIntern(*this, Kind::Implies, Sort::boolSort(),
                                  {x, y});
}

Expr Context::mkEq(Expr x, Expr y) {
  require(x.sort() == y.sort(), "Eq operands must have identical sorts");
  return detail::simplifyOrIntern(*this, Kind::Eq, Sort::boolSort(), {x, y});
}

Expr Context::mkIte(Expr c, Expr t, Expr e) {
  requireBool(c);
  require(t.sort() == e.sort(), "Ite branches must have identical sorts");
  return detail::simplifyOrIntern(*this, Kind::Ite, t.sort(), {c, t, e});
}

Expr Context::mkBvNeg(Expr x) {
  require(x.sort().isBv(), "BvNeg expects a bit-vector");
  return detail::simplifyOrIntern(*this, Kind::BvNeg, x.sort(), {x});
}

Expr Context::mkBvNot(Expr x) {
  require(x.sort().isBv(), "BvNot expects a bit-vector");
  return detail::simplifyOrIntern(*this, Kind::BvNot, x.sort(), {x});
}

Expr Context::mkBvBin(Kind k, Expr x, Expr y) {
  requireBvPair(x, y);
  return detail::simplifyOrIntern(*this, k, x.sort(), {x, y});
}

Expr Context::mkUlt(Expr x, Expr y) {
  requireBvPair(x, y);
  return detail::simplifyOrIntern(*this, Kind::BvUlt, Sort::boolSort(),
                                  {x, y});
}

Expr Context::mkUle(Expr x, Expr y) {
  requireBvPair(x, y);
  return detail::simplifyOrIntern(*this, Kind::BvUle, Sort::boolSort(),
                                  {x, y});
}

Expr Context::mkSlt(Expr x, Expr y) {
  requireBvPair(x, y);
  return detail::simplifyOrIntern(*this, Kind::BvSlt, Sort::boolSort(),
                                  {x, y});
}

Expr Context::mkSle(Expr x, Expr y) {
  requireBvPair(x, y);
  return detail::simplifyOrIntern(*this, Kind::BvSle, Sort::boolSort(),
                                  {x, y});
}

Expr Context::mkConcat(Expr hi, Expr lo) {
  require(hi.sort().isBv() && lo.sort().isBv(),
          "Concat expects bit-vector operands");
  const uint32_t w = hi.sort().width() + lo.sort().width();
  require(w <= 64, "Concat result exceeds 64 bits");
  return detail::simplifyOrIntern(*this, Kind::BvConcat, Sort::bv(w),
                                  {hi, lo});
}

Expr Context::mkExtract(Expr x, uint32_t hi, uint32_t lo) {
  require(x.sort().isBv(), "Extract expects a bit-vector");
  require(hi >= lo && hi < x.sort().width(), "Extract bounds out of range");
  return detail::simplifyOrIntern(*this, Kind::BvExtract,
                                  Sort::bv(hi - lo + 1), {x}, hi, lo);
}

Expr Context::mkZeroExt(Expr x, uint32_t by) {
  require(x.sort().isBv(), "ZeroExt expects a bit-vector");
  if (by == 0) return x;
  require(x.sort().width() + by <= 64, "ZeroExt result exceeds 64 bits");
  return detail::simplifyOrIntern(*this, Kind::BvZeroExt,
                                  Sort::bv(x.sort().width() + by), {x}, by);
}

Expr Context::mkSignExt(Expr x, uint32_t by) {
  require(x.sort().isBv(), "SignExt expects a bit-vector");
  if (by == 0) return x;
  require(x.sort().width() + by <= 64, "SignExt result exceeds 64 bits");
  return detail::simplifyOrIntern(*this, Kind::BvSignExt,
                                  Sort::bv(x.sort().width() + by), {x}, by);
}

Expr Context::mkResize(Expr x, uint32_t width, bool signExtend) {
  const uint32_t w = x.sort().width();
  if (width == w) return x;
  if (width < w) return mkExtract(x, width - 1, 0);
  return signExtend ? mkSignExt(x, width - w) : mkZeroExt(x, width - w);
}

Expr Context::mkSelect(Expr array, Expr index) {
  require(array.sort().isArray(), "Select expects an array");
  require(index.sort() == array.sort().indexSort(),
          "Select index width mismatch");
  return detail::simplifyOrIntern(*this, Kind::Select,
                                  array.sort().elemSort(), {array, index});
}

Expr Context::mkStore(Expr array, Expr index, Expr value) {
  require(array.sort().isArray(), "Store expects an array");
  require(index.sort() == array.sort().indexSort(),
          "Store index width mismatch");
  require(value.sort() == array.sort().elemSort(),
          "Store value width mismatch");
  return detail::simplifyOrIntern(*this, Kind::Store, array.sort(),
                                  {array, index, value});
}

Expr Context::mkForall(std::span<const Expr> bound, Expr body) {
  require(!bound.empty(), "Forall needs at least one bound variable");
  requireBool(body);
  std::vector<Expr> kids(bound.begin(), bound.end());
  for (Expr v : kids) require(v.isVar(), "quantifier binds non-variable");
  kids.push_back(body);
  if (body.isConst()) return body;  // ∀x. true == true, ∀x. false == false
  return intern(Kind::Forall, Sort::boolSort(), kids,
                static_cast<uint32_t>(bound.size()));
}

Expr Context::mkExists(std::span<const Expr> bound, Expr body) {
  require(!bound.empty(), "Exists needs at least one bound variable");
  requireBool(body);
  std::vector<Expr> kids(bound.begin(), bound.end());
  for (Expr v : kids) require(v.isVar(), "quantifier binds non-variable");
  kids.push_back(body);
  if (body.isConst()) return body;
  return intern(Kind::Exists, Sort::boolSort(), kids,
                static_cast<uint32_t>(bound.size()));
}

// ---- Expr member helpers ----------------------------------------------------

Context& Expr::ctx() const {
  require(n_ != nullptr, "null Expr");
  return *n_->ctx;
}

uint64_t Expr::bvValue() const {
  require(isBvConst(), "bvValue on non-constant");
  return n_->cval;
}

const std::string& Expr::varName() const {
  require(isVar(), "varName on non-variable");
  return n_->name;
}

// ---- Operator sugar ---------------------------------------------------------

Expr operator!(Expr x) { return x.ctx().mkNot(x); }
Expr operator&&(Expr x, Expr y) { return x.ctx().mkAnd(x, y); }
Expr operator||(Expr x, Expr y) { return x.ctx().mkOr(x, y); }
Expr operator+(Expr x, Expr y) { return x.ctx().mkAdd(x, y); }
Expr operator-(Expr x, Expr y) { return x.ctx().mkSub(x, y); }
Expr operator*(Expr x, Expr y) { return x.ctx().mkMul(x, y); }
Expr operator-(Expr x) { return x.ctx().mkBvNeg(x); }
Expr operator~(Expr x) { return x.ctx().mkBvNot(x); }
Expr operator&(Expr x, Expr y) { return x.ctx().mkBvAnd(x, y); }
Expr operator|(Expr x, Expr y) { return x.ctx().mkBvOr(x, y); }
Expr operator^(Expr x, Expr y) { return x.ctx().mkBvXor(x, y); }
Expr operator<<(Expr x, Expr y) { return x.ctx().mkShl(x, y); }
Expr operator>>(Expr x, Expr y) { return x.ctx().mkLShr(x, y); }

bool isCommutative(Kind k) {
  switch (k) {
    case Kind::And:
    case Kind::Or:
    case Kind::Xor:
    case Kind::Eq:
    case Kind::BvAdd:
    case Kind::BvMul:
    case Kind::BvAnd:
    case Kind::BvOr:
    case Kind::BvXor:
      return true;
    default:
      return false;
  }
}

const char* kindName(Kind k) {
  switch (k) {
    case Kind::BoolConst: return "bool";
    case Kind::BvConst: return "bv";
    case Kind::Var: return "var";
    case Kind::Not: return "not";
    case Kind::And: return "and";
    case Kind::Or: return "or";
    case Kind::Xor: return "xor";
    case Kind::Implies: return "=>";
    case Kind::Eq: return "=";
    case Kind::Ite: return "ite";
    case Kind::BvNeg: return "bvneg";
    case Kind::BvNot: return "bvnot";
    case Kind::BvAdd: return "bvadd";
    case Kind::BvSub: return "bvsub";
    case Kind::BvMul: return "bvmul";
    case Kind::BvUDiv: return "bvudiv";
    case Kind::BvURem: return "bvurem";
    case Kind::BvSDiv: return "bvsdiv";
    case Kind::BvSRem: return "bvsrem";
    case Kind::BvAnd: return "bvand";
    case Kind::BvOr: return "bvor";
    case Kind::BvXor: return "bvxor";
    case Kind::BvShl: return "bvshl";
    case Kind::BvLShr: return "bvlshr";
    case Kind::BvAShr: return "bvashr";
    case Kind::BvUlt: return "bvult";
    case Kind::BvUle: return "bvule";
    case Kind::BvSlt: return "bvslt";
    case Kind::BvSle: return "bvsle";
    case Kind::BvConcat: return "concat";
    case Kind::BvExtract: return "extract";
    case Kind::BvZeroExt: return "zero_extend";
    case Kind::BvSignExt: return "sign_extend";
    case Kind::Select: return "select";
    case Kind::Store: return "store";
    case Kind::Forall: return "forall";
    case Kind::Exists: return "exists";
  }
  return "?";
}

}  // namespace pugpara::expr
