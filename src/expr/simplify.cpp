#include "expr/simplify.h"

#include <array>

#include "expr/bv_ops.h"
#include "support/diagnostics.h"

namespace pugpara::expr::detail {

namespace {

bool isAllOnes(Expr e) {
  return e.isBvConst() &&
         e.bvValue() == maskToWidth(~uint64_t{0}, e.sort().width());
}

bool isZero(Expr e) { return e.isBvConst() && e.bvValue() == 0; }
bool isOne(Expr e) { return e.isBvConst() && e.bvValue() == 1; }

/// x and ¬x (either orientation).
bool areComplements(Expr x, Expr y) {
  return (x.kind() == Kind::Not && x.kid(0) == y) ||
         (y.kind() == Kind::Not && y.kid(0) == x);
}

Expr simplifyBool(Context& ctx, Kind kind, Expr x, Expr y) {
  switch (kind) {
    case Kind::And:
      if (x.isFalse() || y.isFalse()) return ctx.bot();
      if (x.isTrue()) return y;
      if (y.isTrue()) return x;
      if (x == y) return x;
      if (areComplements(x, y)) return ctx.bot();
      break;
    case Kind::Or:
      if (x.isTrue() || y.isTrue()) return ctx.top();
      if (x.isFalse()) return y;
      if (y.isFalse()) return x;
      if (x == y) return x;
      if (areComplements(x, y)) return ctx.top();
      break;
    case Kind::Xor:
      if (x.isFalse()) return y;
      if (y.isFalse()) return x;
      if (x.isTrue()) return ctx.mkNot(y);
      if (y.isTrue()) return ctx.mkNot(x);
      if (x == y) return ctx.bot();
      if (areComplements(x, y)) return ctx.top();
      break;
    case Kind::Implies:
      if (x.isFalse() || y.isTrue()) return ctx.top();
      if (x.isTrue()) return y;
      if (y.isFalse()) return ctx.mkNot(x);
      if (x == y) return ctx.top();
      break;
    default:
      break;
  }
  return Expr();
}

Expr simplifyEq(Context& ctx, Expr x, Expr y) {
  if (x == y) return ctx.top();
  if (x.isBvConst() && y.isBvConst())
    return ctx.boolVal(x.bvValue() == y.bvValue());  // distinct nodes -> false
  if (x.sort().isBool()) {
    if (x.isTrue()) return y;
    if (y.isTrue()) return x;
    if (x.isFalse()) return ctx.mkNot(y);
    if (y.isFalse()) return ctx.mkNot(x);
    if (areComplements(x, y)) return ctx.bot();
  }
  // (= (bvadd v c1) c2)  and friends are left to the solver; local rules
  // stay cheap and obviously sound.
  return Expr();
}

Expr simplifyIte(Context& ctx, Expr c, Expr t, Expr e) {
  if (c.isTrue()) return t;
  if (c.isFalse()) return e;
  if (t == e) return t;
  if (t.sort().isBool()) {
    if (t.isTrue() && e.isFalse()) return c;
    if (t.isFalse() && e.isTrue()) return ctx.mkNot(c);
    if (t.isTrue()) return ctx.mkOr(c, e);            // ite(c,T,e) = c ∨ e
    if (e.isFalse()) return ctx.mkAnd(c, t);          // ite(c,t,F) = c ∧ t
    if (t.isFalse()) return ctx.mkAnd(ctx.mkNot(c), e);
    if (e.isTrue()) return ctx.mkOr(ctx.mkNot(c), t);
  }
  if (c.kind() == Kind::Not) return ctx.mkIte(c.kid(0), e, t);
  // ite(c, x, ite(c, y, z)) -> ite(c, x, z)
  if (e.kind() == Kind::Ite && e.kid(0) == c) return ctx.mkIte(c, t, e.kid(2));
  if (t.kind() == Kind::Ite && t.kid(0) == c) return ctx.mkIte(c, t.kid(1), e);
  return Expr();
}

Expr simplifyBvBin(Context& ctx, Kind kind, Expr x, Expr y) {
  const uint32_t w = x.sort().width();
  if (x.isBvConst() && y.isBvConst())
    return ctx.bvVal(foldBvBin(kind, x.bvValue(), y.bvValue(), w), w);

  switch (kind) {
    case Kind::BvAdd:
      if (isZero(x)) return y;
      if (isZero(y)) return x;
      break;
    case Kind::BvSub:
      if (isZero(y)) return x;
      if (x == y) return ctx.bvVal(0, w);
      if (isZero(x)) return ctx.mkBvNeg(y);
      break;
    case Kind::BvMul:
      if (isZero(x) || isZero(y)) return ctx.bvVal(0, w);
      if (isOne(x)) return y;
      if (isOne(y)) return x;
      break;
    case Kind::BvUDiv:
      if (isOne(y)) return x;
      break;
    case Kind::BvURem:
      if (isOne(y)) return ctx.bvVal(0, w);
      break;
    case Kind::BvAnd:
      if (isZero(x) || isZero(y)) return ctx.bvVal(0, w);
      if (isAllOnes(x)) return y;
      if (isAllOnes(y)) return x;
      if (x == y) return x;
      break;
    case Kind::BvOr:
      if (isAllOnes(x) || isAllOnes(y))
        return ctx.bvVal(maskToWidth(~uint64_t{0}, w), w);
      if (isZero(x)) return y;
      if (isZero(y)) return x;
      if (x == y) return x;
      break;
    case Kind::BvXor:
      if (isZero(x)) return y;
      if (isZero(y)) return x;
      if (x == y) return ctx.bvVal(0, w);
      break;
    case Kind::BvShl:
    case Kind::BvLShr:
    case Kind::BvAShr:
      if (isZero(y)) return x;
      if (isZero(x)) return ctx.bvVal(0, w);
      if ((kind == Kind::BvShl || kind == Kind::BvLShr) && y.isBvConst() &&
          y.bvValue() >= w)
        return ctx.bvVal(0, w);
      break;
    default:
      break;
  }
  return Expr();
}

Expr simplifyCmp(Context& ctx, Kind kind, Expr x, Expr y) {
  const uint32_t w = x.sort().width();
  if (x.isBvConst() && y.isBvConst())
    return ctx.boolVal(foldBvCmp(kind, x.bvValue(), y.bvValue(), w));
  if (x == y)
    return ctx.boolVal(kind == Kind::BvUle || kind == Kind::BvSle);
  switch (kind) {
    case Kind::BvUlt:
      if (isZero(y)) return ctx.bot();                 // x < 0 is false
      if (isAllOnes(x)) return ctx.bot();              // max < y is false
      break;
    case Kind::BvUle:
      if (isZero(x)) return ctx.top();                 // 0 <= y
      if (isAllOnes(y)) return ctx.top();              // x <= max
      break;
    default:
      break;
  }
  return Expr();
}

Expr simplifySelect(Context& ctx, Expr array, Expr index) {
  // Distribute reads over array-valued ite: scalar ite chains are far
  // friendlier to solvers than array ites (Z3 4.8's default tactic degrades
  // badly on them), and the rewrite lets the store-chain resolution below
  // reach into both branches. DAG sharing keeps the expansion linear.
  if (array.kind() == Kind::Ite)
    return ctx.mkIte(array.kid(0), ctx.mkSelect(array.kid(1), index),
                     ctx.mkSelect(array.kid(2), index));
  // Read-over-write expansion, index-shape directed:
  //  * syntactically equal index — resolve to the stored value;
  //  * CONSTANT store index — expand to ite(index == i, v, rest): the
  //    equality is cheap and this removes the store/ite towers Z3 4.8's
  //    default tactic times out on (e.g. unrolled per-thread writes read
  //    back at a symbolic specification index);
  //  * symbolic store index — keep the select: the solver's lazy array
  //    instantiation beats eager expansion when store addresses carry
  //    multiplications (the transpose's width * y addresses).
  if (array.kind() == Kind::Store) {
    Expr i = array.kid(1);
    if (i == index) return array.kid(2);
    if (i.isBvConst() || index.isBvConst())
      return ctx.mkIte(ctx.mkEq(index, i), array.kid(2),
                       ctx.mkSelect(array.kid(0), index));
  }
  return Expr();
}

Expr simplifyStore(Context& ctx, Expr array, Expr index, Expr value) {
  // store(store(a, i, _), i, v) -> store(a, i, v)
  if (array.kind() == Kind::Store && array.kid(1) == index)
    return ctx.mkStore(array.kid(0), index, value);
  // store(a, i, select(a, i)) -> a
  if (value.kind() == Kind::Select && value.kid(0) == array &&
      value.kid(1) == index)
    return array;
  return Expr();
}

}  // namespace

Expr simplifyOrIntern(Context& ctx, Kind kind, Sort sort,
                      std::span<const Expr> kids, uint32_t a, uint32_t b) {
  Expr result;

  switch (kind) {
    case Kind::Not: {
      Expr x = kids[0];
      if (x.isBoolConst()) result = ctx.boolVal(x.isFalse());
      else if (x.kind() == Kind::Not) result = x.kid(0);
      // ¬(x < y) normalizations keep comparisons positive for readability.
      else if (x.kind() == Kind::BvUlt) result = ctx.mkUle(x.kid(1), x.kid(0));
      else if (x.kind() == Kind::BvUle) result = ctx.mkUlt(x.kid(1), x.kid(0));
      else if (x.kind() == Kind::BvSlt) result = ctx.mkSle(x.kid(1), x.kid(0));
      else if (x.kind() == Kind::BvSle) result = ctx.mkSlt(x.kid(1), x.kid(0));
      break;
    }
    case Kind::And:
    case Kind::Or:
    case Kind::Xor:
    case Kind::Implies:
      result = simplifyBool(ctx, kind, kids[0], kids[1]);
      break;
    case Kind::Eq:
      result = simplifyEq(ctx, kids[0], kids[1]);
      break;
    case Kind::Ite:
      result = simplifyIte(ctx, kids[0], kids[1], kids[2]);
      break;
    case Kind::BvNeg: {
      Expr x = kids[0];
      const uint32_t w = x.sort().width();
      if (x.isBvConst()) result = ctx.bvVal(~x.bvValue() + 1, w);
      else if (x.kind() == Kind::BvNeg) result = x.kid(0);
      break;
    }
    case Kind::BvNot: {
      Expr x = kids[0];
      const uint32_t w = x.sort().width();
      if (x.isBvConst()) result = ctx.bvVal(~x.bvValue(), w);
      else if (x.kind() == Kind::BvNot) result = x.kid(0);
      break;
    }
    case Kind::BvAdd:
    case Kind::BvSub:
    case Kind::BvMul:
    case Kind::BvUDiv:
    case Kind::BvURem:
    case Kind::BvSDiv:
    case Kind::BvSRem:
    case Kind::BvAnd:
    case Kind::BvOr:
    case Kind::BvXor:
    case Kind::BvShl:
    case Kind::BvLShr:
    case Kind::BvAShr:
      result = simplifyBvBin(ctx, kind, kids[0], kids[1]);
      break;
    case Kind::BvUlt:
    case Kind::BvUle:
    case Kind::BvSlt:
    case Kind::BvSle:
      result = simplifyCmp(ctx, kind, kids[0], kids[1]);
      break;
    case Kind::BvConcat: {
      Expr hi = kids[0], lo = kids[1];
      if (hi.isBvConst() && lo.isBvConst())
        result = ctx.bvVal((hi.bvValue() << lo.sort().width()) | lo.bvValue(),
                           sort.width());
      break;
    }
    case Kind::BvExtract: {
      Expr x = kids[0];
      if (a == x.sort().width() - 1 && b == 0) result = x;
      else if (x.isBvConst())
        result = ctx.bvVal(x.bvValue() >> b, a - b + 1);
      break;
    }
    case Kind::BvZeroExt: {
      Expr x = kids[0];
      if (x.isBvConst()) result = ctx.bvVal(x.bvValue(), sort.width());
      break;
    }
    case Kind::BvSignExt: {
      Expr x = kids[0];
      if (x.isBvConst())
        result = ctx.bvVal(
            static_cast<uint64_t>(toSigned(x.bvValue(), x.sort().width())),
            sort.width());
      break;
    }
    case Kind::Select:
      result = simplifySelect(ctx, kids[0], kids[1]);
      break;
    case Kind::Store:
      result = simplifyStore(ctx, kids[0], kids[1], kids[2]);
      break;
    default:
      break;
  }

  if (!result.isNull()) {
    require(result.sort() == sort, "simplifier changed the sort of a node");
    return result;
  }

  // Canonical operand order for commutative operators (by node id) improves
  // hash-consing hit rates across syntactically different build orders.
  if (isCommutative(kind) && kids.size() == 2 && kids[1] < kids[0]) {
    const std::array<Expr, 2> swapped = {kids[1], kids[0]};
    return ctx.intern(kind, sort, swapped, a, b);
  }
  return ctx.intern(kind, sort, kids, a, b);
}

}  // namespace pugpara::expr::detail
