// Sorts (types) of symbolic expressions: Bool, BitVec(w) and
// Array(BitVec(i) -> BitVec(e)). Small value type, cheap to copy.
#pragma once

#include <cstdint>
#include <string>

namespace pugpara::expr {

class Sort {
 public:
  enum class Tag : uint8_t { Bool, BitVec, Array };

  /// Default-constructed sort is Bool.
  Sort() = default;

  static Sort boolSort() { return Sort(Tag::Bool, 0, 0); }
  static Sort bv(uint32_t width);
  /// Array from BitVec(indexWidth) to BitVec(elemWidth).
  static Sort array(uint32_t indexWidth, uint32_t elemWidth);

  [[nodiscard]] Tag tag() const { return tag_; }
  [[nodiscard]] bool isBool() const { return tag_ == Tag::Bool; }
  [[nodiscard]] bool isBv() const { return tag_ == Tag::BitVec; }
  [[nodiscard]] bool isArray() const { return tag_ == Tag::Array; }

  /// Width of a BitVec sort.
  [[nodiscard]] uint32_t width() const;
  /// Index width of an Array sort.
  [[nodiscard]] uint32_t indexWidth() const;
  /// Element width of an Array sort.
  [[nodiscard]] uint32_t elemWidth() const;

  [[nodiscard]] Sort indexSort() const { return bv(indexWidth()); }
  [[nodiscard]] Sort elemSort() const { return bv(elemWidth()); }

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Sort&, const Sort&) = default;

  /// Stable hash usable for hash-consing keys.
  [[nodiscard]] uint64_t hash() const {
    return (static_cast<uint64_t>(tag_) << 56) ^
           (static_cast<uint64_t>(a_) << 28) ^ b_;
  }

 private:
  Sort(Tag tag, uint32_t a, uint32_t b) : tag_(tag), a_(a), b_(b) {}

  Tag tag_ = Tag::Bool;
  uint32_t a_ = 0;  // BitVec width, or array index width
  uint32_t b_ = 0;  // array element width
};

}  // namespace pugpara::expr
