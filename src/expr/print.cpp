#include "expr/print.h"

#include <sstream>
#include <unordered_set>
#include <vector>

#include "expr/walk.h"

namespace pugpara::expr {

namespace {

const char* infixOp(Kind k) {
  switch (k) {
    case Kind::And: return " && ";
    case Kind::Or: return " || ";
    case Kind::Xor: return " ^^ ";
    case Kind::Implies: return " => ";
    case Kind::Eq: return " == ";
    case Kind::BvAdd: return " + ";
    case Kind::BvSub: return " - ";
    case Kind::BvMul: return " * ";
    case Kind::BvUDiv: return " /u ";
    case Kind::BvURem: return " %u ";
    case Kind::BvSDiv: return " / ";
    case Kind::BvSRem: return " % ";
    case Kind::BvAnd: return " & ";
    case Kind::BvOr: return " | ";
    case Kind::BvXor: return " ^ ";
    case Kind::BvShl: return " << ";
    case Kind::BvLShr: return " >> ";
    case Kind::BvAShr: return " >>a ";
    case Kind::BvUlt: return " <u ";
    case Kind::BvUle: return " <=u ";
    case Kind::BvSlt: return " < ";
    case Kind::BvSle: return " <= ";
    default: return nullptr;
  }
}

void infix(std::ostream& os, Expr e) {
  switch (e.kind()) {
    case Kind::BoolConst:
      os << (e.isTrue() ? "true" : "false");
      return;
    case Kind::BvConst:
      os << e.bvValue();
      return;
    case Kind::Var:
      os << e.varName();
      return;
    case Kind::Not:
      os << '!';
      infix(os, e.kid(0));
      return;
    case Kind::BvNeg:
      os << '-';
      infix(os, e.kid(0));
      return;
    case Kind::BvNot:
      os << '~';
      infix(os, e.kid(0));
      return;
    case Kind::Ite:
      os << "ite(";
      infix(os, e.kid(0));
      os << ", ";
      infix(os, e.kid(1));
      os << ", ";
      infix(os, e.kid(2));
      os << ')';
      return;
    case Kind::Select:
      infix(os, e.kid(0));
      os << '[';
      infix(os, e.kid(1));
      os << ']';
      return;
    case Kind::Store:
      infix(os, e.kid(0));
      os << "[[";
      infix(os, e.kid(1));
      os << " := ";
      infix(os, e.kid(2));
      os << "]]";
      return;
    case Kind::BvExtract:
      infix(os, e.kid(0));
      os << '[' << e.extractHi() << ':' << e.extractLo() << ']';
      return;
    case Kind::BvZeroExt:
      os << "zext(";
      infix(os, e.kid(0));
      os << ", " << e.extendBy() << ')';
      return;
    case Kind::BvSignExt:
      os << "sext(";
      infix(os, e.kid(0));
      os << ", " << e.extendBy() << ')';
      return;
    case Kind::BvConcat:
      os << "concat(";
      infix(os, e.kid(0));
      os << ", ";
      infix(os, e.kid(1));
      os << ')';
      return;
    case Kind::Forall:
    case Kind::Exists: {
      os << (e.kind() == Kind::Forall ? "forall " : "exists ");
      for (uint32_t i = 0; i < e.boundCount(); ++i) {
        if (i) os << ", ";
        os << e.kid(i).varName();
      }
      os << ". ";
      infix(os, e.kid(e.boundCount()));
      return;
    }
    default: {
      const char* op = infixOp(e.kind());
      os << '(';
      infix(os, e.kid(0));
      os << (op ? op : " ? ");
      infix(os, e.kid(1));
      os << ')';
      return;
    }
  }
}

void sexpr(std::ostream& os, Expr e) {
  switch (e.kind()) {
    case Kind::BoolConst:
      os << (e.isTrue() ? "true" : "false");
      return;
    case Kind::BvConst:
      os << "(_ bv" << e.bvValue() << ' ' << e.sort().width() << ')';
      return;
    case Kind::Var:
      os << e.varName();
      return;
    case Kind::BvExtract:
      os << "((_ extract " << e.extractHi() << ' ' << e.extractLo() << ") ";
      sexpr(os, e.kid(0));
      os << ')';
      return;
    case Kind::BvZeroExt:
    case Kind::BvSignExt:
      os << "((_ " << kindName(e.kind()) << ' ' << e.extendBy() << ") ";
      sexpr(os, e.kid(0));
      os << ')';
      return;
    case Kind::Forall:
    case Kind::Exists: {
      os << '(' << kindName(e.kind()) << " (";
      for (uint32_t i = 0; i < e.boundCount(); ++i) {
        if (i) os << ' ';
        os << '(' << e.kid(i).varName() << ' ' << e.kid(i).sort().str() << ')';
      }
      os << ") ";
      sexpr(os, e.kid(e.boundCount()));
      os << ')';
      return;
    }
    default: {
      os << '(' << kindName(e.kind());
      for (size_t i = 0; i < e.arity(); ++i) {
        os << ' ';
        sexpr(os, e.kid(i));
      }
      os << ')';
      return;
    }
  }
}

}  // namespace

std::string toInfix(Expr e) {
  std::ostringstream os;
  infix(os, e);
  return os.str();
}

std::string toSmtLib(Expr e) {
  std::ostringstream os;
  sexpr(os, e);
  return os.str();
}

std::string toSmtLibScript(std::span<const Expr> assertions) {
  std::ostringstream os;
  os << "(set-logic ALL)\n";
  std::unordered_set<const Node*> declared;
  for (Expr a : assertions) {
    for (Expr v : freeVars(a)) {
      if (declared.insert(v.node()).second)
        os << "(declare-fun " << v.varName() << " () " << v.sort().str()
           << ")\n";
    }
  }
  for (Expr a : assertions) os << "(assert " << toSmtLib(a) << ")\n";
  os << "(check-sat)\n";
  return os.str();
}

std::string Expr::str() const { return toInfix(*this); }

}  // namespace pugpara::expr
