// Capture-avoiding-enough substitution of free variables by expressions.
// The encoders instantiate parametric thread variables (tid.x, ...) with
// fresh instance variables via this pass (Sec. IV-B of the paper).
//
// Quantified subterms: substitution descends into bodies but never replaces
// a variable bound by an enclosing quantifier. Replacement terms must not
// contain variables that are bound in the target (the encoders guarantee
// this by construction: bound variables are always fresh).
#pragma once

#include <unordered_map>

#include "expr/expr.h"

namespace pugpara::expr {

using SubstMap = std::unordered_map<const Node*, Expr>;

/// Rebuilds `e` with every free occurrence of a key variable replaced by the
/// mapped expression. The rebuild goes through the Context builders, so the
/// result is re-simplified (constant folding after concretization, etc.).
[[nodiscard]] Expr substitute(Expr e, const SubstMap& map);

/// Convenience overload for a single replacement.
[[nodiscard]] Expr substitute(Expr e, Expr var, Expr replacement);

/// Rebuilds a node of e's kind with new children through the Context
/// builders (re-simplifying). Children must match e's arity and sorts.
/// Quantifiers are not supported here.
[[nodiscard]] Expr rebuildWithKids(Expr e, std::span<const Expr> kids);

}  // namespace pugpara::expr
