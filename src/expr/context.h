// Context: owner and hash-consing factory for expression nodes.
//
// All builder methods validate sorts, apply local simplification rules
// (see simplify.cpp) and intern the result, so structurally equal
// expressions are pointer-equal.
#pragma once

#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace pugpara::expr {

class Context {
 public:
  Context();
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // ---- Leaves -------------------------------------------------------------
  Expr boolVal(bool v);
  Expr top() { return boolVal(true); }
  Expr bot() { return boolVal(false); }
  /// Bit-vector constant; `value` is masked to `width` bits.
  Expr bvVal(uint64_t value, uint32_t width);
  /// Free variable. The same (name, sort) pair always returns the same node;
  /// reusing a name at a different sort is a PugError.
  Expr var(const std::string& name, Sort sort);
  /// Fresh variable: name is `hint` + a unique numeric suffix.
  Expr freshVar(const std::string& hint, Sort sort);

  // ---- Boolean ------------------------------------------------------------
  Expr mkNot(Expr x);
  Expr mkAnd(Expr x, Expr y);
  Expr mkAnd(std::span<const Expr> xs);
  Expr mkOr(Expr x, Expr y);
  Expr mkOr(std::span<const Expr> xs);
  Expr mkXor(Expr x, Expr y);
  Expr mkImplies(Expr x, Expr y);

  // ---- Polymorphic ----------------------------------------------------------
  Expr mkEq(Expr x, Expr y);
  Expr mkNe(Expr x, Expr y) { return mkNot(mkEq(x, y)); }
  Expr mkIte(Expr c, Expr t, Expr e);

  // ---- Bit-vectors ----------------------------------------------------------
  Expr mkBvNeg(Expr x);
  Expr mkBvNot(Expr x);
  Expr mkBvBin(Kind k, Expr x, Expr y);  // generic same-width binary op
  Expr mkAdd(Expr x, Expr y) { return mkBvBin(Kind::BvAdd, x, y); }
  Expr mkSub(Expr x, Expr y) { return mkBvBin(Kind::BvSub, x, y); }
  Expr mkMul(Expr x, Expr y) { return mkBvBin(Kind::BvMul, x, y); }
  Expr mkUDiv(Expr x, Expr y) { return mkBvBin(Kind::BvUDiv, x, y); }
  Expr mkURem(Expr x, Expr y) { return mkBvBin(Kind::BvURem, x, y); }
  Expr mkSDiv(Expr x, Expr y) { return mkBvBin(Kind::BvSDiv, x, y); }
  Expr mkSRem(Expr x, Expr y) { return mkBvBin(Kind::BvSRem, x, y); }
  Expr mkBvAnd(Expr x, Expr y) { return mkBvBin(Kind::BvAnd, x, y); }
  Expr mkBvOr(Expr x, Expr y) { return mkBvBin(Kind::BvOr, x, y); }
  Expr mkBvXor(Expr x, Expr y) { return mkBvBin(Kind::BvXor, x, y); }
  Expr mkShl(Expr x, Expr y) { return mkBvBin(Kind::BvShl, x, y); }
  Expr mkLShr(Expr x, Expr y) { return mkBvBin(Kind::BvLShr, x, y); }
  Expr mkAShr(Expr x, Expr y) { return mkBvBin(Kind::BvAShr, x, y); }

  Expr mkUlt(Expr x, Expr y);
  Expr mkUle(Expr x, Expr y);
  Expr mkUgt(Expr x, Expr y) { return mkUlt(y, x); }
  Expr mkUge(Expr x, Expr y) { return mkUle(y, x); }
  Expr mkSlt(Expr x, Expr y);
  Expr mkSle(Expr x, Expr y);
  Expr mkSgt(Expr x, Expr y) { return mkSlt(y, x); }
  Expr mkSge(Expr x, Expr y) { return mkSle(y, x); }

  Expr mkConcat(Expr hi, Expr lo);
  /// Bits [hi..lo] inclusive, 0-based from the LSB.
  Expr mkExtract(Expr x, uint32_t hi, uint32_t lo);
  Expr mkZeroExt(Expr x, uint32_t by);
  Expr mkSignExt(Expr x, uint32_t by);
  /// Zero- or sign-extend / truncate `x` to exactly `width` bits.
  Expr mkResize(Expr x, uint32_t width, bool signExtend);

  // ---- Arrays ---------------------------------------------------------------
  Expr mkSelect(Expr array, Expr index);
  Expr mkStore(Expr array, Expr index, Expr value);

  // ---- Quantifiers ----------------------------------------------------------
  Expr mkForall(std::span<const Expr> bound, Expr body);
  Expr mkExists(std::span<const Expr> bound, Expr body);

  /// Number of live nodes (for tests and the micro bench).
  [[nodiscard]] size_t nodeCount() const { return nodes_.size(); }

  /// Interns a fully-validated node; used by the simplifier when it decides
  /// no rewrite applies. Not part of the public building API.
  Expr intern(Kind kind, Sort sort, std::span<const Expr> kids, uint32_t a = 0,
              uint32_t b = 0, uint64_t cval = 0, const std::string& name = {});

 private:
  struct Key;
  struct KeyHash;
  struct KeyEq;

  std::deque<Node> nodes_;  // stable addresses
  std::unordered_map<uint64_t, std::vector<const Node*>> buckets_;
  std::unordered_map<std::string, const Node*> varsByName_;
  uint64_t freshCounter_ = 0;
};

/// Masks `v` to the low `width` bits.
[[nodiscard]] inline uint64_t maskToWidth(uint64_t v, uint32_t width) {
  return width >= 64 ? v : (v & ((uint64_t{1} << width) - 1));
}

/// Sign-extends the `width`-bit value `v` to int64.
[[nodiscard]] inline int64_t toSigned(uint64_t v, uint32_t width) {
  if (width >= 64) return static_cast<int64_t>(v);
  const uint64_t sign = uint64_t{1} << (width - 1);
  return static_cast<int64_t>((v ^ sign) - sign);
}

}  // namespace pugpara::expr
