// Hash-consed symbolic expression DAG over Bool / BitVec / Array sorts.
//
// Nodes are immutable, owned by a Context, and unique up to structural
// equality: two structurally identical expressions built in the same Context
// compare equal by pointer. Expr is a cheap handle (one pointer).
//
// Bit-vector semantics follow SMT-LIB QF_ABV exactly (including division by
// zero), so that the Z3 backend and the from-scratch MiniSMT backend agree.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "expr/sort.h"

namespace pugpara::expr {

class Context;

enum class Kind : uint8_t {
  // Leaves
  BoolConst,  // value in `a` (0/1)
  BvConst,    // value in `cval`, width from sort
  Var,        // named free variable, any sort

  // Boolean connectives
  Not,
  And,
  Or,
  Xor,
  Implies,

  // Polymorphic
  Eq,   // both children same sort; result Bool
  Ite,  // children: cond(Bool), then, else (same sort)

  // Bit-vector arithmetic / bitwise (children same width)
  BvNeg,
  BvNot,
  BvAdd,
  BvSub,
  BvMul,
  BvUDiv,
  BvURem,
  BvSDiv,
  BvSRem,
  BvAnd,
  BvOr,
  BvXor,
  BvShl,
  BvLShr,
  BvAShr,

  // Comparisons (result Bool)
  BvUlt,
  BvUle,
  BvSlt,
  BvSle,

  // Structural
  BvConcat,   // width = sum of children widths
  BvExtract,  // bits [a_ .. b_] (hi..lo) of the single child
  BvZeroExt,  // extend child by `a` bits
  BvSignExt,  // extend child by `a` bits

  // Arrays
  Select,  // (array, index) -> element
  Store,   // (array, index, value) -> array

  // Quantifiers: children = [boundVar..., body]; `a` = number of bound vars.
  // MiniSMT rejects these (returns Unknown) — mirroring the paper's point
  // that quantified formulas defeat the solvers of the day; the Z3 backend
  // handles them natively.
  Forall,
  Exists,
};

/// True for kinds whose operands commute (used by the simplifier to
/// canonicalize operand order).
[[nodiscard]] bool isCommutative(Kind k);

/// Human-readable operator name (SMT-LIB style).
[[nodiscard]] const char* kindName(Kind k);

/// One immutable DAG node. Created only by Context.
struct Node {
  Kind kind;
  Sort sort;
  uint32_t a = 0;        // BoolConst value / extract hi / extend amount /
                         // quantifier bound count
  uint32_t b = 0;        // extract lo
  uint64_t cval = 0;     // BvConst value (masked to width)
  uint32_t id = 0;       // creation index within the Context (stable order)
  Context* ctx = nullptr;
  std::string name;      // Var name
  std::vector<const Node*> kids;
};

/// Lightweight handle to a Node. A default-constructed Expr is "null" and
/// must not be used except for comparisons / isNull().
class Expr {
 public:
  Expr() = default;
  explicit Expr(const Node* n) : n_(n) {}

  [[nodiscard]] bool isNull() const { return n_ == nullptr; }
  [[nodiscard]] const Node* node() const { return n_; }
  [[nodiscard]] Context& ctx() const;

  [[nodiscard]] Kind kind() const { return n_->kind; }
  [[nodiscard]] Sort sort() const { return n_->sort; }
  [[nodiscard]] uint32_t id() const { return n_->id; }

  [[nodiscard]] size_t arity() const { return n_->kids.size(); }
  [[nodiscard]] Expr kid(size_t i) const { return Expr(n_->kids[i]); }

  [[nodiscard]] bool isVar() const { return n_->kind == Kind::Var; }
  [[nodiscard]] bool isConst() const {
    return n_->kind == Kind::BoolConst || n_->kind == Kind::BvConst;
  }
  [[nodiscard]] bool isBoolConst() const { return n_->kind == Kind::BoolConst; }
  [[nodiscard]] bool isBvConst() const { return n_->kind == Kind::BvConst; }
  [[nodiscard]] bool isTrue() const {
    return isBoolConst() && n_->a == 1;
  }
  [[nodiscard]] bool isFalse() const {
    return isBoolConst() && n_->a == 0;
  }

  /// Value of a BvConst (masked to width).
  [[nodiscard]] uint64_t bvValue() const;
  /// Name of a Var.
  [[nodiscard]] const std::string& varName() const;

  /// Extract bounds; extend amounts.
  [[nodiscard]] uint32_t extractHi() const { return n_->a; }
  [[nodiscard]] uint32_t extractLo() const { return n_->b; }
  [[nodiscard]] uint32_t extendBy() const { return n_->a; }
  /// Number of bound variables of a quantifier.
  [[nodiscard]] uint32_t boundCount() const { return n_->a; }

  /// Pointer identity == structural equality (hash consing invariant).
  friend bool operator==(const Expr& x, const Expr& y) { return x.n_ == y.n_; }
  friend bool operator!=(const Expr& x, const Expr& y) { return x.n_ != y.n_; }
  /// Stable ordering by creation id (for canonical operand order).
  friend bool operator<(const Expr& x, const Expr& y) {
    return x.n_->id < y.n_->id;
  }

  /// Short infix rendering for debugging and reports (see print.h for the
  /// full SMT-LIB printer).
  [[nodiscard]] std::string str() const;

 private:
  const Node* n_ = nullptr;
};

struct ExprHash {
  size_t operator()(const Expr& e) const {
    return std::hash<const Node*>()(e.node());
  }
};

// ---- Operator sugar. All of these dispatch into the owning Context and
// apply the simplifier; mixing expressions from different Contexts is a
// PugError.
Expr operator!(Expr x);                // Bool not
Expr operator&&(Expr x, Expr y);       // Bool and
Expr operator||(Expr x, Expr y);       // Bool or
Expr operator+(Expr x, Expr y);        // BvAdd
Expr operator-(Expr x, Expr y);        // BvSub
Expr operator*(Expr x, Expr y);        // BvMul
Expr operator-(Expr x);                // BvNeg
Expr operator~(Expr x);                // BvNot
Expr operator&(Expr x, Expr y);        // BvAnd
Expr operator|(Expr x, Expr y);        // BvOr
Expr operator^(Expr x, Expr y);        // BvXor
Expr operator<<(Expr x, Expr y);       // BvShl
Expr operator>>(Expr x, Expr y);       // BvLShr (logical)

}  // namespace pugpara::expr
