#include "expr/sort.h"

#include <sstream>

#include "support/diagnostics.h"

namespace pugpara::expr {

Sort Sort::bv(uint32_t width) {
  require(width >= 1 && width <= 64, "bit-vector width must be in [1, 64]");
  return Sort(Tag::BitVec, width, 0);
}

Sort Sort::array(uint32_t indexWidth, uint32_t elemWidth) {
  require(indexWidth >= 1 && indexWidth <= 64 && elemWidth >= 1 &&
              elemWidth <= 64,
          "array index/element widths must be in [1, 64]");
  return Sort(Tag::Array, indexWidth, elemWidth);
}

uint32_t Sort::width() const {
  require(isBv(), "Sort::width on non-bitvector sort");
  return a_;
}

uint32_t Sort::indexWidth() const {
  require(isArray(), "Sort::indexWidth on non-array sort");
  return a_;
}

uint32_t Sort::elemWidth() const {
  require(isArray(), "Sort::elemWidth on non-array sort");
  return b_;
}

std::string Sort::str() const {
  std::ostringstream os;
  switch (tag_) {
    case Tag::Bool: os << "Bool"; break;
    case Tag::BitVec: os << "(_ BitVec " << a_ << ")"; break;
    case Tag::Array:
      os << "(Array (_ BitVec " << a_ << ") (_ BitVec " << b_ << "))";
      break;
  }
  return os.str();
}

}  // namespace pugpara::expr
