#include "expr/eval.h"

#include <unordered_map>

#include "expr/bv_ops.h"
#include "support/diagnostics.h"

namespace pugpara::expr {

void Env::bind(Expr var, Value value) {
  require(var.isVar(), "Env::bind expects a variable");
  map_[var.node()] = std::move(value);
}

const Value* Env::lookup(Expr var) const {
  auto it = map_.find(var.node());
  return it == map_.end() ? nullptr : &it->second;
}

namespace {

class Evaluator {
 public:
  Evaluator(const Env& env, bool requireBound)
      : env_(env), requireBound_(requireBound) {}

  Value eval(Expr e) {
    auto it = memo_.find(e.node());
    if (it != memo_.end()) return it->second;
    Value v = compute(e);
    memo_.emplace(e.node(), v);
    return v;
  }

 private:
  Value compute(Expr e) {
    switch (e.kind()) {
      case Kind::BoolConst: return Value::ofBool(e.isTrue());
      case Kind::BvConst: return Value::ofBv(e.bvValue());
      case Kind::Var: {
        if (const Value* v = env_.lookup(e)) return *v;
        require(!requireBound_, "unbound variable '" + e.varName() +
                                    "' during evaluation");
        if (e.sort().isArray()) return Value::ofArray(ArrayValue{});
        return Value::ofBv(0);
      }
      case Kind::Not: return Value::ofBool(!eval(e.kid(0)).asBool());
      case Kind::And:
        return Value::ofBool(eval(e.kid(0)).asBool() &&
                             eval(e.kid(1)).asBool());
      case Kind::Or:
        return Value::ofBool(eval(e.kid(0)).asBool() ||
                             eval(e.kid(1)).asBool());
      case Kind::Xor:
        return Value::ofBool(eval(e.kid(0)).asBool() !=
                             eval(e.kid(1)).asBool());
      case Kind::Implies:
        return Value::ofBool(!eval(e.kid(0)).asBool() ||
                             eval(e.kid(1)).asBool());
      case Kind::Eq: {
        Value x = eval(e.kid(0)), y = eval(e.kid(1));
        return Value::ofBool(x == y);
      }
      case Kind::Ite:
        return eval(e.kid(0)).asBool() ? eval(e.kid(1)) : eval(e.kid(2));
      case Kind::BvNeg:
        return Value::ofBv(
            maskToWidth(~eval(e.kid(0)).asBv() + 1, e.sort().width()));
      case Kind::BvNot:
        return Value::ofBv(
            maskToWidth(~eval(e.kid(0)).asBv(), e.sort().width()));
      case Kind::BvAdd:
      case Kind::BvSub:
      case Kind::BvMul:
      case Kind::BvUDiv:
      case Kind::BvURem:
      case Kind::BvSDiv:
      case Kind::BvSRem:
      case Kind::BvAnd:
      case Kind::BvOr:
      case Kind::BvXor:
      case Kind::BvShl:
      case Kind::BvLShr:
      case Kind::BvAShr:
        return Value::ofBv(foldBvBin(e.kind(), eval(e.kid(0)).asBv(),
                                     eval(e.kid(1)).asBv(), e.sort().width()));
      case Kind::BvUlt:
      case Kind::BvUle:
      case Kind::BvSlt:
      case Kind::BvSle:
        return Value::ofBool(foldBvCmp(e.kind(), eval(e.kid(0)).asBv(),
                                       eval(e.kid(1)).asBv(),
                                       e.kid(0).sort().width()));
      case Kind::BvConcat: {
        const uint64_t hi = eval(e.kid(0)).asBv();
        const uint64_t lo = eval(e.kid(1)).asBv();
        return Value::ofBv(
            maskToWidth((hi << e.kid(1).sort().width()) | lo,
                        e.sort().width()));
      }
      case Kind::BvExtract:
        return Value::ofBv(maskToWidth(
            eval(e.kid(0)).asBv() >> e.extractLo(), e.sort().width()));
      case Kind::BvZeroExt:
        return Value::ofBv(eval(e.kid(0)).asBv());
      case Kind::BvSignExt:
        return Value::ofBv(maskToWidth(
            static_cast<uint64_t>(
                toSigned(eval(e.kid(0)).asBv(), e.kid(0).sort().width())),
            e.sort().width()));
      case Kind::Select: {
        Value a = eval(e.kid(0));
        return Value::ofBv(a.asArray().get(eval(e.kid(1)).asBv()));
      }
      case Kind::Store: {
        Value a = eval(e.kid(0));
        ArrayValue out = a.asArray();
        out.set(eval(e.kid(1)).asBv(), eval(e.kid(2)).asBv());
        return Value::ofArray(std::move(out));
      }
      case Kind::Forall:
      case Kind::Exists:
        throw PugError("cannot concretely evaluate a quantified formula");
    }
    throw PugError("evaluate: unhandled expression kind");
  }

  const Env& env_;
  bool requireBound_;
  std::unordered_map<const Node*, Value> memo_;
};

}  // namespace

Value evaluate(Expr e, const Env& env, bool requireBound) {
  return Evaluator(env, requireBound).eval(e);
}

bool evalBool(Expr e, const Env& env) {
  require(e.sort().isBool(), "evalBool on non-Bool expression");
  return evaluate(e, env).asBool();
}

uint64_t evalBv(Expr e, const Env& env) {
  require(e.sort().isBv(), "evalBv on non-BitVec expression");
  return evaluate(e, env).asBv();
}

}  // namespace pugpara::expr
