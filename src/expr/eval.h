// Concrete evaluation of expressions under an assignment to free variables.
// Used to validate solver models, to cross-check the symbolic encoders
// against the concrete GPU VM, and in property tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <variant>

#include "expr/expr.h"

namespace pugpara::expr {

/// Concrete value of an array-sorted expression: a default element plus
/// explicit entries. Indices/elements are width-masked bit-vector values.
struct ArrayValue {
  uint64_t defaultValue = 0;
  std::map<uint64_t, uint64_t> elems;

  [[nodiscard]] uint64_t get(uint64_t index) const {
    auto it = elems.find(index);
    return it == elems.end() ? defaultValue : it->second;
  }
  void set(uint64_t index, uint64_t value) { elems[index] = value; }
  friend bool operator==(const ArrayValue&, const ArrayValue&) = default;
};

/// A concrete value of any sort. Bools are stored as 0/1 bit-vectors.
class Value {
 public:
  Value() : v_(uint64_t{0}) {}
  static Value ofBool(bool b) { return Value(uint64_t{b ? 1u : 0u}); }
  static Value ofBv(uint64_t x) { return Value(x); }
  static Value ofArray(ArrayValue a) { return Value(std::move(a)); }

  [[nodiscard]] bool isArray() const {
    return std::holds_alternative<ArrayValue>(v_);
  }
  [[nodiscard]] bool asBool() const { return scalar() != 0; }
  [[nodiscard]] uint64_t asBv() const { return scalar(); }
  [[nodiscard]] const ArrayValue& asArray() const {
    return std::get<ArrayValue>(v_);
  }
  [[nodiscard]] ArrayValue& asArray() { return std::get<ArrayValue>(v_); }

  friend bool operator==(const Value&, const Value&) = default;

 private:
  explicit Value(uint64_t x) : v_(x) {}
  explicit Value(ArrayValue a) : v_(std::move(a)) {}
  [[nodiscard]] uint64_t scalar() const { return std::get<uint64_t>(v_); }

  std::variant<uint64_t, ArrayValue> v_;
};

/// Assignment of concrete values to free variables.
class Env {
 public:
  void bind(Expr var, Value value);
  void bindBv(Expr var, uint64_t value) { bind(var, Value::ofBv(value)); }
  void bindBool(Expr var, bool value) { bind(var, Value::ofBool(value)); }

  [[nodiscard]] const Value* lookup(Expr var) const;

 private:
  std::unordered_map<const Node*, Value> map_;
};

/// Evaluates `e` under `env`. Unbound variables evaluate to zero /
/// all-zero arrays (convenient for model completion); pass
/// `requireBound = true` to make unbound variables a PugError instead.
/// Quantifiers are not evaluatable and raise PugError.
[[nodiscard]] Value evaluate(Expr e, const Env& env, bool requireBound = false);

/// Convenience: evaluates a Bool-sorted expression.
[[nodiscard]] bool evalBool(Expr e, const Env& env);
/// Convenience: evaluates a BitVec-sorted expression.
[[nodiscard]] uint64_t evalBv(Expr e, const Env& env);

}  // namespace pugpara::expr
