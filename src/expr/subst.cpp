#include "expr/subst.h"

#include <unordered_set>
#include <vector>

#include "expr/context.h"
#include "support/diagnostics.h"

namespace pugpara::expr {

namespace {

class Substituter {
 public:
  Substituter(Context& ctx, const SubstMap& map) : ctx_(ctx), map_(map) {}

  Expr run(Expr e) {
    if (bound_.empty()) {
      auto it = memo_.find(e.node());
      if (it != memo_.end()) return it->second;
    }
    Expr r = rebuild(e);
    if (bound_.empty()) memo_.emplace(e.node(), r);
    return r;
  }

 private:
  Expr rebuild(Expr e) {
    switch (e.kind()) {
      case Kind::BoolConst:
      case Kind::BvConst:
        return e;
      case Kind::Var: {
        if (bound_.contains(e.node())) return e;
        auto it = map_.find(e.node());
        if (it == map_.end()) return e;
        require(it->second.sort() == e.sort(),
                "substitution changes the sort of '" + e.varName() + "'");
        return it->second;
      }
      case Kind::Forall:
      case Kind::Exists: {
        std::vector<const Node*> added;
        std::vector<Expr> kids;
        for (uint32_t i = 0; i < e.boundCount(); ++i) {
          kids.push_back(e.kid(i));
          if (bound_.insert(e.kid(i).node()).second)
            added.push_back(e.kid(i).node());
        }
        Expr body = run(e.kid(e.boundCount()));
        for (const Node* n : added) bound_.erase(n);
        std::span<const Expr> bv(kids.data(), kids.size());
        return e.kind() == Kind::Forall ? ctx_.mkForall(bv, body)
                                        : ctx_.mkExists(bv, body);
      }
      default: {
        std::vector<Expr> kids;
        kids.reserve(e.arity());
        bool changed = false;
        for (size_t i = 0; i < e.arity(); ++i) {
          Expr k = run(e.kid(i));
          changed |= (k != e.kid(i));
          kids.push_back(k);
        }
        if (!changed) return e;
        return rebuildWithKids(e, kids);
      }
    }
  }

  Context& ctx_;
  const SubstMap& map_;
  std::unordered_set<const Node*> bound_;
  std::unordered_map<const Node*, Expr> memo_;
};

}  // namespace

Expr rebuildWithKids(Expr e, std::span<const Expr> kids) {
  Context& ctx_ = e.ctx();
  {
    switch (e.kind()) {
      case Kind::Not: return ctx_.mkNot(kids[0]);
      case Kind::And: return ctx_.mkAnd(kids[0], kids[1]);
      case Kind::Or: return ctx_.mkOr(kids[0], kids[1]);
      case Kind::Xor: return ctx_.mkXor(kids[0], kids[1]);
      case Kind::Implies: return ctx_.mkImplies(kids[0], kids[1]);
      case Kind::Eq: return ctx_.mkEq(kids[0], kids[1]);
      case Kind::Ite: return ctx_.mkIte(kids[0], kids[1], kids[2]);
      case Kind::BvNeg: return ctx_.mkBvNeg(kids[0]);
      case Kind::BvNot: return ctx_.mkBvNot(kids[0]);
      case Kind::BvUlt: return ctx_.mkUlt(kids[0], kids[1]);
      case Kind::BvUle: return ctx_.mkUle(kids[0], kids[1]);
      case Kind::BvSlt: return ctx_.mkSlt(kids[0], kids[1]);
      case Kind::BvSle: return ctx_.mkSle(kids[0], kids[1]);
      case Kind::BvConcat: return ctx_.mkConcat(kids[0], kids[1]);
      case Kind::BvExtract:
        return ctx_.mkExtract(kids[0], e.extractHi(), e.extractLo());
      case Kind::BvZeroExt: return ctx_.mkZeroExt(kids[0], e.extendBy());
      case Kind::BvSignExt: return ctx_.mkSignExt(kids[0], e.extendBy());
      case Kind::Select: return ctx_.mkSelect(kids[0], kids[1]);
      case Kind::Store: return ctx_.mkStore(kids[0], kids[1], kids[2]);
      default:
        // Remaining binary bit-vector operations share one builder.
        return ctx_.mkBvBin(e.kind(), kids[0], kids[1]);
    }
  }
}

Expr substitute(Expr e, const SubstMap& map) {
  if (map.empty()) return e;
  return Substituter(e.ctx(), map).run(e);
}

Expr substitute(Expr e, Expr var, Expr replacement) {
  require(var.isVar(), "substitute: key must be a variable");
  SubstMap m;
  m.emplace(var.node(), replacement);
  return substitute(e, m);
}

}  // namespace pugpara::expr
