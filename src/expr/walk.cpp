#include "expr/walk.h"

#include <unordered_set>

namespace pugpara::expr {

namespace {

// Collects free variables; `bound` carries quantifier-bound variables on the
// current path. Visited-node memoization is only sound for subterms outside
// any binder, so it applies only when `bound` is empty (the common case: the
// encoders produce mostly quantifier-free terms and always quantify fresh
// variables).
void collectFree(Expr e, std::unordered_set<const Node*>& bound,
                 std::unordered_set<const Node*>& seen,
                 std::unordered_set<const Node*>& outSet,
                 std::vector<Expr>& out) {
  if (bound.empty() && !seen.insert(e.node()).second) return;
  switch (e.kind()) {
    case Kind::Var:
      if (!bound.contains(e.node()) && outSet.insert(e.node()).second)
        out.push_back(e);
      return;
    case Kind::Forall:
    case Kind::Exists: {
      std::vector<const Node*> added;
      for (uint32_t i = 0; i < e.boundCount(); ++i)
        if (bound.insert(e.kid(i).node()).second)
          added.push_back(e.kid(i).node());
      collectFree(e.kid(e.boundCount()), bound, seen, outSet, out);
      for (const Node* n : added) bound.erase(n);
      return;
    }
    default:
      for (size_t i = 0; i < e.arity(); ++i)
        collectFree(e.kid(i), bound, seen, outSet, out);
      return;
  }
}

}  // namespace

std::vector<Expr> freeVars(Expr e) {
  std::unordered_set<const Node*> bound, seen, outSet;
  std::vector<Expr> out;
  collectFree(e, bound, seen, outSet, out);
  return out;
}

size_t nodeCount(Expr e) {
  size_t n = 0;
  postOrder(e, [&n](Expr) { ++n; });
  return n;
}

bool occursFree(Expr e, Expr var) {
  for (Expr v : freeVars(e))
    if (v == var) return true;
  return false;
}

void postOrder(Expr e, const std::function<void(Expr)>& visit) {
  std::unordered_set<const Node*> seen;
  // Explicit stack: encoder outputs can be deep ite chains.
  std::vector<std::pair<Expr, size_t>> stack;
  stack.emplace_back(e, 0);
  seen.insert(e.node());
  while (!stack.empty()) {
    auto& [cur, next] = stack.back();
    if (next < cur.arity()) {
      Expr kid = cur.kid(next++);
      if (seen.insert(kid.node()).second) stack.emplace_back(kid, 0);
    } else {
      visit(cur);
      stack.pop_back();
    }
  }
}

}  // namespace pugpara::expr
