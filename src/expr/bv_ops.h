// Concrete bit-vector operation semantics, shared by the constant folder,
// the evaluator and the MiniSMT model checker. Follows SMT-LIB QF_BV
// exactly, including the division-by-zero conventions.
#pragma once

#include <cstdint>

#include "expr/context.h"
#include "expr/expr.h"
#include "support/diagnostics.h"

namespace pugpara::expr {

/// Applies a binary bit-vector operation on `width`-bit values.
/// Inputs and output are masked to `width` bits.
[[nodiscard]] inline uint64_t foldBvBin(Kind k, uint64_t x, uint64_t y,
                                        uint32_t width) {
  x = maskToWidth(x, width);
  y = maskToWidth(y, width);
  const auto allOnes = maskToWidth(~uint64_t{0}, width);
  switch (k) {
    case Kind::BvAdd: return maskToWidth(x + y, width);
    case Kind::BvSub: return maskToWidth(x - y, width);
    case Kind::BvMul: return maskToWidth(x * y, width);
    case Kind::BvUDiv: return y == 0 ? allOnes : maskToWidth(x / y, width);
    case Kind::BvURem: return y == 0 ? x : maskToWidth(x % y, width);
    case Kind::BvSDiv: {
      const int64_t sx = toSigned(x, width), sy = toSigned(y, width);
      if (sy == 0) return sx < 0 ? 1 : allOnes;  // SMT-LIB bvsdiv-by-zero
      // INT_MIN / -1 overflows in C++; in wrap-around BV semantics the
      // result is INT_MIN again.
      if (sy == -1) return maskToWidth(static_cast<uint64_t>(-sx), width);
      return maskToWidth(static_cast<uint64_t>(sx / sy), width);
    }
    case Kind::BvSRem: {
      const int64_t sx = toSigned(x, width), sy = toSigned(y, width);
      if (sy == 0) return x;
      if (sy == -1) return 0;
      return maskToWidth(static_cast<uint64_t>(sx % sy), width);
    }
    case Kind::BvAnd: return x & y;
    case Kind::BvOr: return x | y;
    case Kind::BvXor: return x ^ y;
    case Kind::BvShl: return y >= width ? 0 : maskToWidth(x << y, width);
    case Kind::BvLShr: return y >= width ? 0 : x >> y;
    case Kind::BvAShr: {
      const bool neg = (x >> (width - 1)) & 1;
      if (y >= width) return neg ? allOnes : 0;
      uint64_t r = x >> y;
      // Guard y > 0: `allOnes << width` is UB on a 64-bit shift count.
      if (neg && y > 0) r |= maskToWidth(allOnes << (width - y), width);
      return r;
    }
    default: throw PugError("foldBvBin: not a binary bit-vector op");
  }
}

/// Applies a bit-vector comparison on `width`-bit values.
[[nodiscard]] inline bool foldBvCmp(Kind k, uint64_t x, uint64_t y,
                                    uint32_t width) {
  x = maskToWidth(x, width);
  y = maskToWidth(y, width);
  switch (k) {
    case Kind::BvUlt: return x < y;
    case Kind::BvUle: return x <= y;
    case Kind::BvSlt: return toSigned(x, width) < toSigned(y, width);
    case Kind::BvSle: return toSigned(x, width) <= toSigned(y, width);
    default: throw PugError("foldBvCmp: not a comparison");
  }
}

}  // namespace pugpara::expr
