// Local (single-node, bottom-up) simplification applied by every Context
// builder before interning. Children are already simplified, so rules only
// inspect one level (plus select/store chains, which recurse through
// Context builders and therefore stay simplified).
#pragma once

#include <initializer_list>
#include <span>

#include "expr/context.h"

namespace pugpara::expr::detail {

/// Applies rewrite rules for (kind, kids); falls back to interning the node
/// unchanged when no rule fires.
Expr simplifyOrIntern(Context& ctx, Kind kind, Sort sort,
                      std::span<const Expr> kids, uint32_t a = 0,
                      uint32_t b = 0);

inline Expr simplifyOrIntern(Context& ctx, Kind kind, Sort sort,
                             std::initializer_list<Expr> kids, uint32_t a = 0,
                             uint32_t b = 0) {
  return simplifyOrIntern(ctx, kind, sort,
                          std::span<const Expr>(kids.begin(), kids.size()), a,
                          b);
}

}  // namespace pugpara::expr::detail
