// Printers: compact infix rendering (debugging, reports) and a full
// SMT-LIB2 script printer (interoperability and golden tests).
#pragma once

#include <span>
#include <string>

#include "expr/expr.h"

namespace pugpara::expr {

/// Infix, human-oriented rendering. Shared subterms are not de-duplicated;
/// intended for small terms in reports and test failure messages.
[[nodiscard]] std::string toInfix(Expr e);

/// S-expression (SMT-LIB2 term syntax) rendering of one expression.
[[nodiscard]] std::string toSmtLib(Expr e);

/// A complete SMT-LIB2 script: declarations for every free variable in
/// `assertions`, one (assert ...) per entry, and (check-sat).
[[nodiscard]] std::string toSmtLibScript(std::span<const Expr> assertions);

}  // namespace pugpara::expr
