#include "expr/hash.h"

#include <unordered_map>
#include <vector>

namespace pugpara::expr {

namespace {

/// splitmix64 finalizer: full-avalanche mixing of one word.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t combine(uint64_t h, uint64_t v) { return mix(h ^ mix(v)); }

uint64_t hashString(const std::string& s, uint64_t h) {
  // FNV-1a over the bytes, then folded into the running digest.
  uint64_t f = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) f = (f ^ c) * 0x100000001b3ULL;
  return combine(h, f);
}

uint64_t hashSort(Sort s, uint64_t h) {
  if (s.isBool()) return combine(h, 1);
  if (s.isBv()) return combine(combine(h, 2), s.width());
  return combine(combine(combine(h, 3), s.indexWidth()), s.elemWidth());
}

class Hasher {
 public:
  explicit Hasher(uint64_t seed) : seed_(mix(seed ^ 0xa0761d6478bd642fULL)) {}

  uint64_t hash(Expr e) {
    auto it = memo_.find(e.node());
    if (it != memo_.end()) return it->second;

    // Explicit stack: VC DAGs can be deep enough to overflow recursion.
    std::vector<Expr> stack{e};
    while (!stack.empty()) {
      Expr cur = stack.back();
      if (memo_.count(cur.node())) {
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (size_t i = 0; i < cur.arity(); ++i) {
        if (!memo_.count(cur.kid(i).node())) {
          stack.push_back(cur.kid(i));
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();
      memo_.emplace(cur.node(), compute(cur));
    }
    return memo_.at(e.node());
  }

 private:
  uint64_t compute(Expr e) {
    uint64_t h = combine(seed_, static_cast<uint64_t>(e.kind()));
    h = hashSort(e.sort(), h);
    switch (e.kind()) {
      case Kind::BoolConst:
        h = combine(h, e.isTrue() ? 1 : 0);
        break;
      case Kind::BvConst:
        h = combine(h, e.bvValue());
        break;
      case Kind::Var:
        h = hashString(e.varName(), h);
        break;
      case Kind::BvExtract:
        h = combine(combine(h, e.extractHi()), e.extractLo());
        break;
      case Kind::BvZeroExt:
      case Kind::BvSignExt:
        h = combine(h, e.extendBy());
        break;
      case Kind::Forall:
      case Kind::Exists:
        h = combine(h, e.boundCount());
        break;
      default:
        break;
    }
    for (size_t i = 0; i < e.arity(); ++i)
      h = combine(h, memo_.at(e.kid(i).node()));
    return h;
  }

  uint64_t seed_;
  std::unordered_map<const Node*, uint64_t> memo_;
};

}  // namespace

uint64_t structuralHash(Expr e, uint64_t seed) {
  return Hasher(seed).hash(e);
}

uint64_t structuralHash(std::span<const Expr> exprs, uint64_t seed) {
  // Sum the per-assertion digests: insensitive to assertion order (a
  // conjunction is a set) but never self-cancelling — with XOR, a formula
  // appearing twice (e.g. once in the asserted prefix and once among the
  // assumptions of a combined key) would vanish from the digest entirely.
  Hasher hasher(seed);
  uint64_t acc = mix(seed ^ exprs.size());
  for (Expr e : exprs) acc += mix(hasher.hash(e));
  return mix(acc);
}

}  // namespace pugpara::expr
