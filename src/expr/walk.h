// DAG traversal utilities: free-variable collection, node counting and
// generic post-order visiting with per-node memoization.
#pragma once

#include <functional>
#include <vector>

#include "expr/expr.h"

namespace pugpara::expr {

/// Free variables of `e` in first-occurrence order. Variables bound by an
/// enclosing quantifier are excluded.
[[nodiscard]] std::vector<Expr> freeVars(Expr e);

/// Number of distinct DAG nodes reachable from `e` (a size measure used by
/// the encoding ablation bench and tests).
[[nodiscard]] size_t nodeCount(Expr e);

/// True when `var` occurs free in `e`.
[[nodiscard]] bool occursFree(Expr e, Expr var);

/// Visits each distinct node reachable from `e` exactly once, children
/// before parents.
void postOrder(Expr e, const std::function<void(Expr)>& visit);

}  // namespace pugpara::expr
