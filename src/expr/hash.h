// Context-independent structural hashing of expression DAGs.
//
// Hash-consing makes pointer identity equal structural identity *within* one
// Context, but the verification engine needs to recognize the same formula
// across Contexts (every check builds its own) and across processes (the
// persistent solver-query cache). structuralHash folds kind, sort, constants,
// variable names and children into a well-mixed 64-bit digest, memoized per
// node so shared subterms are hashed once.
#pragma once

#include <cstdint>
#include <span>

#include "expr/expr.h"

namespace pugpara::expr {

/// 64-bit structural digest of `e`, independent of the owning Context and of
/// node creation order. `seed` perturbs the whole digest, so two calls with
/// different seeds behave as independent hash functions (the query cache
/// combines two of them into a 128-bit key).
[[nodiscard]] uint64_t structuralHash(Expr e, uint64_t seed = 0);

/// Order-insensitive digest of an assertion *set* (conjunctive semantics:
/// the set {a, b} and {b, a} must key identically).
[[nodiscard]] uint64_t structuralHash(std::span<const Expr> exprs,
                                      uint64_t seed = 0);

}  // namespace pugpara::expr
