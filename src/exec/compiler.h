// AST -> bytecode compiler for the concrete GPU VM.
#pragma once

#include "exec/bytecode.h"
#include "lang/ast.h"

namespace pugpara::exec {

/// Compiles a sema-analyzed kernel. The kernel must outlive the result.
/// Postcond statements are collected for host-side checking, not compiled.
/// Throws PugError on internal inconsistencies (unresolved decls).
[[nodiscard]] CompiledKernel compile(const lang::Kernel& kernel);

}  // namespace pugpara::exec
