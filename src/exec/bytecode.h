// Bytecode for the concrete GPU virtual machine.
//
// Kernels compile to a flat stack-machine instruction stream; each thread
// carries its own program counter, operand stack and local slots, and the
// scheduler serializes threads between barriers (the paper's canonical
// schedule). This VM plays the role GKLEE's virtual machine plays in the
// paper's comparison and doubles as the counterexample replayer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace pugpara::exec {

enum class Op : uint8_t {
  PushConst,    // push imm
  LoadLocal,    // push locals[a]
  StoreLocal,   // locals[a] = pop
  LoadBuiltin,  // push builtin value (a = BuiltinVar)
  LoadArray,    // idx = pop; push array[a][idx]
  StoreArray,   // val = pop; idx = pop; array[a][idx] = val
  Binary,       // rhs = pop; lhs = pop; push lhs (op) rhs   (a = BinOp,
                // b = 1 when the unsigned variant applies)
  Unary,        // x = pop; push (op) x                      (a = UnOp)
  Select,       // e = pop; t = pop; c = pop; push c ? t : e
  Min,          // binary minimum (b = unsigned flag)
  Max,          // binary maximum (b = unsigned flag)
  Abs,
  Jump,         // pc = a
  JumpIfZero,   // c = pop; if (c == 0) pc = a
  Barrier,      // suspend until all live threads of the block arrive
  Halt,         // thread exits (return or end of kernel)
  Assert,       // c = pop; record violation if c == 0
  Assume,       // c = pop; mark thread infeasible if c == 0
};

struct Instr {
  Op op = Op::Halt;
  uint32_t a = 0;   // immediate: slot / array id / target / operator
  uint32_t b = 0;   // secondary: unsigned flag
  uint64_t imm = 0; // PushConst payload
  SourceLoc loc;
};

/// One array known to the VM: either a global pointer parameter or a
/// __shared__ per-block array. Shared-array extents are expressions over
/// launch-uniform values, evaluated once per launch.
struct ArrayInfo {
  std::string name;
  bool isShared = false;
  size_t paramIndex = 0;                  // globals: position in launch args
  const lang::VarDecl* decl = nullptr;    // shareds: dims to evaluate
};

struct CompiledKernel {
  const lang::Kernel* source = nullptr;   // must outlive the compiled form
  std::vector<Instr> code;
  std::vector<std::string> localNames;    // slot -> name (debugging)
  std::vector<ArrayInfo> arrays;          // LoadArray/StoreArray `a` operands
  std::vector<const lang::VarDecl*> scalarParams;  // order of scalar args
  std::vector<const lang::Stmt*> postconds;        // checked by the host

  [[nodiscard]] std::string disassemble() const;
};

}  // namespace pugpara::exec
