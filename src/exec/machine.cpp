#include "exec/machine.h"

#include <sstream>

#include "expr/bv_ops.h"
#include "lang/sema.h"

namespace pugpara::exec {

namespace {

using expr::maskToWidth;
using expr::toSigned;
using lang::BinOp;
using lang::BuiltinVar;
using lang::UnOp;

struct ThreadCtx {
  Dim3 tid;
  uint32_t linear = 0;
  uint32_t pc = 0;
  std::vector<uint64_t> stack;
  std::vector<uint64_t> locals;
  bool halted = false;
  bool atBarrier = false;
  uint64_t fuel = 0;
};

/// Evaluates a launch-uniform AST expression (shared-array extents) without
/// compiling it: only literals, scalar params, builtins and arithmetic.
uint64_t evalUniform(const lang::Expr& e, const LaunchParams& p,
                     const std::vector<uint64_t>& scalarSlots,
                     const std::unordered_map<const lang::VarDecl*, uint32_t>&
                         scalarIndex) {
  const uint32_t w = p.width;
  switch (e.kind) {
    case lang::Expr::Kind::IntLit: return maskToWidth(e.intValue, w);
    case lang::Expr::Kind::BoolLit: return e.boolValue ? 1 : 0;
    case lang::Expr::Kind::Builtin:
      switch (e.builtin) {
        case BuiltinVar::BdimX: return p.block.x;
        case BuiltinVar::BdimY: return p.block.y;
        case BuiltinVar::BdimZ: return p.block.z;
        case BuiltinVar::GdimX: return p.grid.x;
        case BuiltinVar::GdimY: return p.grid.y;
        default:
          throw PugError("array extent depends on a per-thread builtin");
      }
    case lang::Expr::Kind::VarRef: {
      auto it = scalarIndex.find(e.decl);
      require(it != scalarIndex.end(),
              "array extent reads non-parameter variable");
      return scalarSlots[it->second];
    }
    case lang::Expr::Kind::Unary: {
      uint64_t v = evalUniform(*e.args[0], p, scalarSlots, scalarIndex);
      switch (e.unop) {
        case UnOp::Neg: return maskToWidth(~v + 1, w);
        case UnOp::LNot: return v == 0 ? 1 : 0;
        case UnOp::BitNot: return maskToWidth(~v, w);
      }
      return 0;
    }
    case lang::Expr::Kind::Binary: {
      uint64_t a = evalUniform(*e.args[0], p, scalarSlots, scalarIndex);
      uint64_t b = evalUniform(*e.args[1], p, scalarSlots, scalarIndex);
      switch (e.binop) {
        case BinOp::Add: return maskToWidth(a + b, w);
        case BinOp::Sub: return maskToWidth(a - b, w);
        case BinOp::Mul: return maskToWidth(a * b, w);
        case BinOp::Div: return b ? a / b : 0;
        case BinOp::Rem: return b ? a % b : 0;
        case BinOp::Shl: return maskToWidth(a << b, w);
        case BinOp::Shr: return a >> b;
        default:
          throw PugError("unsupported operator in array extent");
      }
    }
    default:
      throw PugError("unsupported expression in array extent");
  }
}

class BlockRunner {
 public:
  BlockRunner(const CompiledKernel& k, const LaunchParams& p,
              std::vector<Buffer>& globals,
              const std::vector<size_t>& bufIndexByParam,
              LaunchResult& result, Monitors& monitors)
      : k_(k), p_(p), globals_(globals), bufIndexByParam_(bufIndexByParam),
        result_(result), monitors_(monitors) {}

  bool runBlock(Dim3 bid, uint32_t blockLinear) {
    bid_ = bid;
    blockLinear_ = blockLinear;
    if (!allocateShared()) return false;
    spawnThreads();

    // Canonical schedule: run each runnable thread to its next barrier or
    // halt; then release the barrier; repeat until every thread halts.
    for (;;) {
      for (auto& t : threads_)
        if (!t.halted && !t.atBarrier)
          if (!runThread(t)) return false;
      bool anyAtBarrier = false, anyHalted = false;
      for (const auto& t : threads_) {
        anyAtBarrier |= t.atBarrier;
        anyHalted |= t.halted;
      }
      if (!anyAtBarrier) break;  // everyone halted
      if (anyHalted && p_.strictBarrier) {
        fail("barrier divergence: some threads exited before a barrier "
             "other threads are waiting at (block " +
             std::to_string(blockLinear_) + ")");
        return false;
      }
      for (auto& t : threads_) t.atBarrier = false;
      monitors_.closeInterval();
    }
    monitors_.closeInterval();
    return true;
  }

 private:
  void fail(std::string message) {
    result_.completed = false;
    result_.error = std::move(message);
  }

  bool allocateShared() {
    shared_.clear();
    std::unordered_map<const lang::VarDecl*, uint32_t> scalarIndex;
    std::vector<uint64_t> scalarSlots;
    for (size_t i = 0; i < k_.scalarParams.size(); ++i) {
      scalarIndex.emplace(k_.scalarParams[i], static_cast<uint32_t>(i));
      scalarSlots.push_back(i < p_.scalarArgs.size() ? p_.scalarArgs[i] : 0);
    }
    for (const ArrayInfo& a : k_.arrays) {
      if (!a.isShared) {
        shared_.emplace_back();  // placeholder; globals indexed separately
        continue;
      }
      uint64_t total = 1;
      try {
        for (const auto& dim : a.decl->dims)
          total *= evalUniform(*dim, p_, scalarSlots, scalarIndex);
      } catch (const PugError& e) {
        fail(e.what());
        return false;
      }
      if (total == 0 || total > (uint64_t{1} << 24)) {
        fail("shared array '" + a.name + "' has invalid extent " +
             std::to_string(total));
        return false;
      }
      shared_.emplace_back(a.name, static_cast<size_t>(total));
    }
    return true;
  }

  void spawnThreads() {
    threads_.clear();
    const uint64_t n = p_.block.count();
    threads_.reserve(n);
    uint32_t linear = 0;
    for (uint32_t z = 0; z < p_.block.z; ++z)
      for (uint32_t y = 0; y < p_.block.y; ++y)
        for (uint32_t x = 0; x < p_.block.x; ++x) {
          ThreadCtx t;
          t.tid = {x, y, z};
          t.linear = linear++;
          t.locals.assign(k_.localNames.size(), 0);
          for (size_t i = 0;
               i < k_.scalarParams.size() && i < p_.scalarArgs.size(); ++i)
            t.locals[i] = maskToWidth(p_.scalarArgs[i], p_.width);
          t.fuel = p_.fuelPerThread;
          threads_.push_back(std::move(t));
        }
  }

  uint64_t builtinValue(const ThreadCtx& t, BuiltinVar v) const {
    switch (v) {
      case BuiltinVar::TidX: return t.tid.x;
      case BuiltinVar::TidY: return t.tid.y;
      case BuiltinVar::TidZ: return t.tid.z;
      case BuiltinVar::BidX: return bid_.x;
      case BuiltinVar::BidY: return bid_.y;
      case BuiltinVar::BdimX: return p_.block.x;
      case BuiltinVar::BdimY: return p_.block.y;
      case BuiltinVar::BdimZ: return p_.block.z;
      case BuiltinVar::GdimX: return p_.grid.x;
      case BuiltinVar::GdimY: return p_.grid.y;
    }
    return 0;
  }

  static uint64_t applyBinary(BinOp op, bool isUnsigned, uint64_t a,
                              uint64_t b, uint32_t w) {
    using expr::Kind;
    switch (op) {
      case BinOp::Add: return expr::foldBvBin(Kind::BvAdd, a, b, w);
      case BinOp::Sub: return expr::foldBvBin(Kind::BvSub, a, b, w);
      case BinOp::Mul: return expr::foldBvBin(Kind::BvMul, a, b, w);
      case BinOp::Div:
        return expr::foldBvBin(isUnsigned ? Kind::BvUDiv : Kind::BvSDiv, a, b,
                               w);
      case BinOp::Rem:
        return expr::foldBvBin(isUnsigned ? Kind::BvURem : Kind::BvSRem, a, b,
                               w);
      case BinOp::BitAnd: return a & b;
      case BinOp::BitOr: return a | b;
      case BinOp::BitXor: return a ^ b;
      case BinOp::Shl: return expr::foldBvBin(Kind::BvShl, a, b, w);
      case BinOp::Shr:
        return expr::foldBvBin(isUnsigned ? Kind::BvLShr : Kind::BvAShr, a, b,
                               w);
      case BinOp::Eq: return a == b ? 1 : 0;
      case BinOp::Ne: return a != b ? 1 : 0;
      case BinOp::Lt:
        return expr::foldBvCmp(isUnsigned ? Kind::BvUlt : Kind::BvSlt, a, b, w)
                   ? 1
                   : 0;
      case BinOp::Le:
        return expr::foldBvCmp(isUnsigned ? Kind::BvUle : Kind::BvSle, a, b, w)
                   ? 1
                   : 0;
      case BinOp::Gt:
        return expr::foldBvCmp(isUnsigned ? Kind::BvUlt : Kind::BvSlt, b, a, w)
                   ? 1
                   : 0;
      case BinOp::Ge:
        return expr::foldBvCmp(isUnsigned ? Kind::BvUle : Kind::BvSle, b, a, w)
                   ? 1
                   : 0;
      case BinOp::LAnd: return (a != 0 && b != 0) ? 1 : 0;
      case BinOp::LOr: return (a != 0 || b != 0) ? 1 : 0;
      case BinOp::Implies: return (a == 0 || b != 0) ? 1 : 0;
    }
    return 0;
  }

  /// Executes one thread until it blocks (barrier), halts or errors.
  bool runThread(ThreadCtx& t) {
    const uint32_t w = p_.width;
    auto pop = [&t]() {
      uint64_t v = t.stack.back();
      t.stack.pop_back();
      return v;
    };
    while (!t.halted && !t.atBarrier) {
      if (t.fuel-- == 0) {
        fail("thread " + std::to_string(t.linear) + " in block " +
             std::to_string(blockLinear_) +
             " exhausted its step budget (possible infinite loop)");
        return false;
      }
      ++result_.steps;
      require(t.pc < k_.code.size(), "VM: program counter out of range");
      const Instr& in = k_.code[t.pc++];
      switch (in.op) {
        case Op::PushConst:
          t.stack.push_back(maskToWidth(in.imm, w));
          break;
        case Op::LoadLocal:
          t.stack.push_back(t.locals[in.a]);
          break;
        case Op::StoreLocal:
          t.locals[in.a] = maskToWidth(pop(), w);
          break;
        case Op::LoadBuiltin:
          t.stack.push_back(maskToWidth(
              builtinValue(t, static_cast<BuiltinVar>(in.a)), w));
          break;
        case Op::LoadArray:
        case Op::StoreArray: {
          const bool isStore = in.op == Op::StoreArray;
          uint64_t value = isStore ? maskToWidth(pop(), w) : 0;
          uint64_t index = pop();
          const ArrayInfo& info = k_.arrays[in.a];
          Buffer& buf = info.isShared
                            ? shared_[in.a]
                            : globals_[bufIndexByParam_[info.paramIndex]];
          try {
            if (isStore) {
              buf.store(index, value);
            } else {
              value = buf.load(index);
              t.stack.push_back(value);
            }
          } catch (const PugError& e) {
            fail(std::string(e.what()) + " (thread " +
                 std::to_string(t.linear) + ", block " +
                 std::to_string(blockLinear_) + ", at " + in.loc.str() + ")");
            return false;
          }
          AccessRecord rec;
          rec.thread = t.linear;
          rec.arrayId = in.a;
          rec.isShared = info.isShared;
          rec.isWrite = isStore;
          rec.index = index;
          rec.value = value;
          rec.loc = in.loc;
          monitors_.record(rec);
          break;
        }
        case Op::Binary: {
          uint64_t b = pop(), a = pop();
          t.stack.push_back(
              applyBinary(static_cast<BinOp>(in.a), in.b != 0, a, b, w));
          break;
        }
        case Op::Unary: {
          uint64_t a = pop();
          switch (static_cast<UnOp>(in.a)) {
            case UnOp::Neg: t.stack.push_back(maskToWidth(~a + 1, w)); break;
            case UnOp::LNot: t.stack.push_back(a == 0 ? 1 : 0); break;
            case UnOp::BitNot: t.stack.push_back(maskToWidth(~a, w)); break;
          }
          break;
        }
        case Op::Select: {
          uint64_t e = pop(), th = pop(), c = pop();
          t.stack.push_back(c != 0 ? th : e);
          break;
        }
        case Op::Min:
        case Op::Max: {
          uint64_t b = pop(), a = pop();
          bool aLess = in.b != 0 ? a < b : toSigned(a, w) < toSigned(b, w);
          t.stack.push_back((in.op == Op::Min) == aLess ? a : b);
          break;
        }
        case Op::Abs: {
          uint64_t a = pop();
          t.stack.push_back(toSigned(a, w) < 0 ? maskToWidth(~a + 1, w) : a);
          break;
        }
        case Op::Jump:
          t.pc = in.a;
          break;
        case Op::JumpIfZero:
          if (pop() == 0) t.pc = in.a;
          break;
        case Op::Barrier:
          t.atBarrier = true;
          break;
        case Op::Halt:
          t.halted = true;
          break;
        case Op::Assert:
          if (pop() == 0)
            result_.assertFailures.push_back(
                {in.loc, blockLinear_, t.linear});
          break;
        case Op::Assume:
          if (pop() == 0) {
            result_.assumptionViolated = true;
            t.halted = true;  // infeasible thread stops contributing
          }
          break;
      }
    }
    return true;
  }

  const CompiledKernel& k_;
  const LaunchParams& p_;
  std::vector<Buffer>& globals_;
  const std::vector<size_t>& bufIndexByParam_;
  LaunchResult& result_;
  Monitors& monitors_;
  Dim3 bid_;
  uint32_t blockLinear_ = 0;
  std::vector<ThreadCtx> threads_;
  std::vector<Buffer> shared_;  // indexed by arrayId (globals: placeholder)
};

}  // namespace

std::string AssertFailure::str() const {
  std::ostringstream os;
  os << "assert failed at " << loc.str() << " (block " << block << ", thread "
     << thread << ")";
  return os.str();
}

LaunchResult launch(const CompiledKernel& kernel, const LaunchParams& params,
                    std::vector<Buffer>& globals) {
  LaunchResult result;
  result.completed = true;

  // Buffers arrive one per *pointer* parameter, in declaration order; map
  // each parameter ordinal to its buffer slot.
  std::vector<size_t> bufIndexByParam(kernel.source->params.size(), SIZE_MAX);
  size_t pointerParams = 0;
  for (const auto& p : kernel.source->params)
    if (p->type.isPointer) bufIndexByParam[p->paramIndex] = pointerParams++;
  require(globals.size() == pointerParams,
          "launch: one buffer per pointer parameter expected");
  require(params.block.count() >= 1 && params.grid.count() >= 1,
          "launch: empty grid or block");
  require(params.width >= 1 && params.width <= 64,
          "launch: width must be in [1, 64]");

  std::vector<std::string> arrayNames;
  arrayNames.reserve(kernel.arrays.size());
  for (const auto& a : kernel.arrays) arrayNames.push_back(a.name);
  Monitors monitors(params.monitors, std::move(arrayNames));

  // Mask the input buffers to the launch width so that narrow-width replays
  // of wide counterexamples stay consistent.
  for (auto& b : globals)
    for (auto& v : b.raw()) v = expr::maskToWidth(v, params.width);

  uint32_t blockLinear = 0;
  for (uint32_t by = 0; by < params.grid.y && result.completed; ++by)
    for (uint32_t bx = 0; bx < params.grid.x && result.completed; ++bx) {
      BlockRunner runner(kernel, params, globals, bufIndexByParam, result,
                         monitors);
      if (!runner.runBlock({bx, by, 0}, blockLinear++)) break;
    }

  result.races = monitors.races();
  result.bankConflicts = monitors.bankConflicts();
  result.uncoalesced = monitors.uncoalesced();
  return result;
}

}  // namespace pugpara::exec
