// Dynamic checkers attached to the VM, in the spirit of the instrumentation
// tools the paper compares against (Boyer et al., GRace): per-barrier-
// interval data-race detection, shared-memory bank-conflict detection and
// global-memory coalescing analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace pugpara::exec {

struct AccessRecord {
  uint32_t thread = 0;  // linear thread id within the block
  uint32_t arrayId = 0;
  bool isShared = false;
  bool isWrite = false;
  uint64_t index = 0;
  uint64_t value = 0;
  SourceLoc loc;  // source position of the access (instruction identity)
};

struct RaceReport {
  std::string array;
  uint64_t index = 0;
  uint32_t thread1 = 0;
  uint32_t thread2 = 0;
  bool writeWrite = false;  // false: read-write race
  SourceLoc loc1, loc2;

  [[nodiscard]] std::string str() const;
};

struct BankConflictReport {
  std::string array;
  uint32_t bank = 0;
  uint32_t degree = 0;     // number of threads hitting the bank together
  uint32_t halfWarp = 0;
  SourceLoc loc;

  [[nodiscard]] std::string str() const;
};

struct CoalescingReport {
  std::string array;
  uint32_t halfWarp = 0;
  SourceLoc loc;

  [[nodiscard]] std::string str() const;
};

struct MonitorConfig {
  bool enabled = false;
  uint32_t banks = 16;     // GPUs of the paper's era: 16 banks
  uint32_t halfWarp = 16;  // coalescing / conflict granularity
};

/// Collects the accesses of one barrier interval and analyzes them when the
/// interval closes (barrier release or block end).
class Monitors {
 public:
  Monitors(MonitorConfig config, std::vector<std::string> arrayNames)
      : config_(config), arrayNames_(std::move(arrayNames)) {}

  void record(AccessRecord rec) {
    if (config_.enabled) log_.push_back(rec);
  }

  /// Closes the current barrier interval: runs race / bank-conflict /
  /// coalescing analysis over the logged accesses, then clears the log.
  void closeInterval();

  [[nodiscard]] const std::vector<RaceReport>& races() const {
    return races_;
  }
  [[nodiscard]] const std::vector<BankConflictReport>& bankConflicts() const {
    return bankConflicts_;
  }
  [[nodiscard]] const std::vector<CoalescingReport>& uncoalesced() const {
    return uncoalesced_;
  }

 private:
  void detectRaces();
  void detectBankConflicts();
  void detectUncoalesced();

  MonitorConfig config_;
  std::vector<std::string> arrayNames_;
  std::vector<AccessRecord> log_;
  std::vector<RaceReport> races_;
  std::vector<BankConflictReport> bankConflicts_;
  std::vector<CoalescingReport> uncoalesced_;
};

}  // namespace pugpara::exec
