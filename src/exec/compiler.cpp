#include "exec/compiler.h"

#include <unordered_map>

#include "lang/sema.h"
#include "support/diagnostics.h"

namespace pugpara::exec {

namespace {

using lang::BinOp;
using lang::Expr;
using lang::Kernel;
using lang::MemSpace;
using lang::Stmt;
using lang::VarDecl;

class Compiler {
 public:
  explicit Compiler(const Kernel& kernel) : kernel_(kernel) {}

  CompiledKernel run() {
    out_.source = &kernel_;
    // Scalar parameters become local slots 0..k-1, loaded from launch args.
    for (const auto& p : kernel_.params) {
      if (p->type.isPointer) {
        registerArray(p.get());
      } else {
        allocLocal(p.get());
        out_.scalarParams.push_back(p.get());
      }
    }
    stmt(*kernel_.body);
    emit(Op::Halt, {});
    return std::move(out_);
  }

 private:
  void emit(Op op, SourceLoc loc, uint32_t a = 0, uint32_t b = 0,
            uint64_t imm = 0) {
    out_.code.push_back(Instr{op, a, b, imm, loc});
  }
  [[nodiscard]] uint32_t here() const {
    return static_cast<uint32_t>(out_.code.size());
  }

  uint32_t allocLocal(const VarDecl* d) {
    auto [it, inserted] =
        locals_.emplace(d, static_cast<uint32_t>(out_.localNames.size()));
    if (inserted) out_.localNames.push_back(d->name);
    return it->second;
  }

  uint32_t registerArray(const VarDecl* d) {
    auto [it, inserted] =
        arrays_.emplace(d, static_cast<uint32_t>(out_.arrays.size()));
    if (inserted) {
      ArrayInfo info;
      info.name = d->name;
      info.isShared = d->space == MemSpace::Shared;
      info.paramIndex = d->paramIndex;
      info.decl = d;
      out_.arrays.push_back(std::move(info));
    }
    return it->second;
  }

  [[nodiscard]] uint32_t localSlot(const VarDecl* d) {
    auto it = locals_.find(d);
    require(it != locals_.end(),
            "compile: use of variable '" + d->name + "' before declaration");
    return it->second;
  }

  // ---- Expressions ------------------------------------------------------------

  /// Emits the flattened (row-major) index for a possibly multi-dimensional
  /// access; extents come from the declaration and are launch-uniform.
  void flattenIndex(const Expr& e) {
    const VarDecl* d = e.decl;
    require(d != nullptr, "compile: unresolved array access");
    expr(*e.args[0]);
    for (size_t k = 1; k < e.args.size(); ++k) {
      expr(*d->dims[k]);  // extent of dimension k
      emit(Op::Binary, e.loc, static_cast<uint32_t>(BinOp::Mul), 1);
      expr(*e.args[k]);
      emit(Op::Binary, e.loc, static_cast<uint32_t>(BinOp::Add), 1);
    }
  }

  void expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        emit(Op::PushConst, e.loc, 0, 0, e.intValue);
        return;
      case Expr::Kind::BoolLit:
        emit(Op::PushConst, e.loc, 0, 0, e.boolValue ? 1 : 0);
        return;
      case Expr::Kind::VarRef:
        require(e.decl != nullptr, "compile: unresolved variable");
        emit(Op::LoadLocal, e.loc, localSlot(e.decl));
        return;
      case Expr::Kind::Builtin:
        emit(Op::LoadBuiltin, e.loc, static_cast<uint32_t>(e.builtin));
        return;
      case Expr::Kind::Index:
        flattenIndex(e);
        emit(Op::LoadArray, e.loc, registerArray(e.decl));
        return;
      case Expr::Kind::Unary:
        expr(*e.args[0]);
        emit(Op::Unary, e.loc, static_cast<uint32_t>(e.unop));
        return;
      case Expr::Kind::Binary: {
        // Short-circuit && and || compile to branches, matching C.
        if (e.binop == BinOp::LAnd || e.binop == BinOp::LOr) {
          expr(*e.args[0]);
          // Normalize to 0/1, duplicate via a scratch re-evaluation-free
          // pattern: jz/jump over the second operand.
          const bool isAnd = e.binop == BinOp::LAnd;
          uint32_t patch = here();
          emit(isAnd ? Op::JumpIfZero : Op::JumpIfZero, e.loc);  // placeholder
          if (isAnd) {
            expr(*e.args[1]);
            emit(Op::PushConst, e.loc, 0, 0, 0);
            emit(Op::Binary, e.loc, static_cast<uint32_t>(BinOp::Ne), 0);
            uint32_t done = here();
            emit(Op::Jump, e.loc);
            out_.code[patch].a = here();
            emit(Op::PushConst, e.loc, 0, 0, 0);
            out_.code[done].a = here();
          } else {
            // lhs == 0 -> evaluate rhs; else result 1.
            out_.code[patch].a = here() + 2;  // skip "push 1; jump done"
            emit(Op::PushConst, e.loc, 0, 0, 1);
            uint32_t done = here();
            emit(Op::Jump, e.loc);
            expr(*e.args[1]);
            emit(Op::PushConst, e.loc, 0, 0, 0);
            emit(Op::Binary, e.loc, static_cast<uint32_t>(BinOp::Ne), 0);
            out_.code[done].a = here();
          }
          return;
        }
        if (e.binop == BinOp::Implies) {
          // !a || b, evaluated eagerly (spec-only operator).
          expr(*e.args[0]);
          emit(Op::Unary, e.loc, static_cast<uint32_t>(lang::UnOp::LNot));
          expr(*e.args[1]);
          emit(Op::Binary, e.loc, static_cast<uint32_t>(BinOp::BitOr), 0);
          return;
        }
        expr(*e.args[0]);
        expr(*e.args[1]);
        emit(Op::Binary, e.loc, static_cast<uint32_t>(e.binop),
             lang::exprIsUnsigned(e) ||
                     (lang::isBoolOp(e.binop) &&
                      (lang::exprIsUnsigned(*e.args[0]) ||
                       lang::exprIsUnsigned(*e.args[1])))
                 ? 1
                 : 0);
        return;
      }
      case Expr::Kind::Ternary:
        expr(*e.args[0]);
        expr(*e.args[1]);
        expr(*e.args[2]);
        emit(Op::Select, e.loc);
        return;
      case Expr::Kind::Call: {
        for (const auto& a : e.args) expr(*a);
        const uint32_t uns = lang::exprIsUnsigned(e) ? 1 : 0;
        if (e.name == "min") emit(Op::Min, e.loc, 0, uns);
        else if (e.name == "max") emit(Op::Max, e.loc, 0, uns);
        else if (e.name == "abs") emit(Op::Abs, e.loc);
        else throw PugError("compile: unknown call '" + e.name + "'");
        return;
      }
    }
  }

  // ---- Statements --------------------------------------------------------------

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Decl: {
        const VarDecl* d = s.decl.get();
        if (d->space == MemSpace::Shared) {
          registerArray(d);
          return;
        }
        uint32_t slot = allocLocal(d);
        if (d->init) {
          expr(*d->init);
          emit(Op::StoreLocal, s.loc, slot);
        }
        return;
      }
      case Stmt::Kind::Assign: {
        const Expr& lhs = *s.lhs;
        if (lhs.kind == Expr::Kind::VarRef) {
          uint32_t slot = localSlot(lhs.decl);
          if (s.isCompound) {
            emit(Op::LoadLocal, s.loc, slot);
            expr(*s.rhs);
            emit(Op::Binary, s.loc, static_cast<uint32_t>(s.compoundOp),
                 lang::exprIsUnsigned(lhs) || lang::exprIsUnsigned(*s.rhs)
                     ? 1
                     : 0);
          } else {
            expr(*s.rhs);
          }
          emit(Op::StoreLocal, s.loc, slot);
        } else {
          uint32_t arr = registerArray(lhs.decl);
          flattenIndex(lhs);
          if (s.isCompound) {
            // idx is on the stack; we need arr[idx] (op) rhs.
            // Stash the index in a synthetic local to avoid stack gymnastics.
            uint32_t tmp = scratchSlot();
            emit(Op::StoreLocal, s.loc, tmp);
            emit(Op::LoadLocal, s.loc, tmp);
            emit(Op::LoadLocal, s.loc, tmp);
            emit(Op::LoadArray, s.loc, arr);
            expr(*s.rhs);
            emit(Op::Binary, s.loc, static_cast<uint32_t>(s.compoundOp),
                 lang::exprIsUnsigned(lhs) || lang::exprIsUnsigned(*s.rhs)
                     ? 1
                     : 0);
          } else {
            expr(*s.rhs);
          }
          emit(Op::StoreArray, s.loc, arr);
        }
        return;
      }
      case Stmt::Kind::If: {
        expr(*s.cond);
        uint32_t jz = here();
        emit(Op::JumpIfZero, s.loc);
        stmt(*s.thenStmt);
        if (s.elseStmt) {
          uint32_t jend = here();
          emit(Op::Jump, s.loc);
          out_.code[jz].a = here();
          stmt(*s.elseStmt);
          out_.code[jend].a = here();
        } else {
          out_.code[jz].a = here();
        }
        return;
      }
      case Stmt::Kind::For: {
        if (s.init) stmt(*s.init);
        uint32_t top = here();
        uint32_t jz = 0;
        bool hasCond = s.cond != nullptr;
        if (hasCond) {
          expr(*s.cond);
          jz = here();
          emit(Op::JumpIfZero, s.loc);
        }
        stmt(*s.body);
        if (s.step) stmt(*s.step);
        emit(Op::Jump, s.loc, top);
        if (hasCond) out_.code[jz].a = here();
        return;
      }
      case Stmt::Kind::While: {
        uint32_t top = here();
        expr(*s.cond);
        uint32_t jz = here();
        emit(Op::JumpIfZero, s.loc);
        stmt(*s.body);
        emit(Op::Jump, s.loc, top);
        out_.code[jz].a = here();
        return;
      }
      case Stmt::Kind::Block:
        for (const auto& st : s.stmts) stmt(*st);
        return;
      case Stmt::Kind::Barrier:
        emit(Op::Barrier, s.loc);
        return;
      case Stmt::Kind::Return:
        emit(Op::Halt, s.loc);
        return;
      case Stmt::Kind::Assert:
        expr(*s.cond);
        emit(Op::Assert, s.loc);
        return;
      case Stmt::Kind::Assume:
        expr(*s.cond);
        emit(Op::Assume, s.loc);
        return;
      case Stmt::Kind::Postcond:
        out_.postconds.push_back(&s);
        return;
    }
  }

  uint32_t scratchSlot() {
    if (scratch_ == UINT32_MAX) {
      scratch_ = static_cast<uint32_t>(out_.localNames.size());
      out_.localNames.push_back("$scratch");
    }
    return scratch_;
  }

  const Kernel& kernel_;
  CompiledKernel out_;
  std::unordered_map<const VarDecl*, uint32_t> locals_;
  std::unordered_map<const VarDecl*, uint32_t> arrays_;
  uint32_t scratch_ = UINT32_MAX;
};

}  // namespace

CompiledKernel compile(const Kernel& kernel) { return Compiler(kernel).run(); }

}  // namespace pugpara::exec
