// The GPU virtual machine: executes compiled kernels over a concrete grid,
// serializing threads between barriers (the canonical schedule). Blocks run
// sequentially; within a block, each thread runs until it reaches a barrier
// or halts, after which the barrier is released for all arrivals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/bytecode.h"
#include "exec/memory.h"
#include "exec/monitors.h"

namespace pugpara::exec {

struct Dim3 {
  uint32_t x = 1;
  uint32_t y = 1;
  uint32_t z = 1;

  [[nodiscard]] uint64_t count() const {
    return static_cast<uint64_t>(x) * y * z;
  }
};

struct LaunchParams {
  Dim3 grid;   // gdim (z unused: grids are at most 2-D)
  Dim3 block;  // bdim
  uint32_t width = 32;  // scalar bit-width (the paper's 8b/16b/32b knob)
  std::vector<uint64_t> scalarArgs;  // values of scalar params, decl order
  uint64_t fuelPerThread = 4'000'000;  // step budget (infinite-loop guard)
  bool strictBarrier = false;  // error when exited threads skip a barrier
  MonitorConfig monitors;
};

struct AssertFailure {
  SourceLoc loc;
  uint32_t block = 0;   // linear block id
  uint32_t thread = 0;  // linear thread id within the block

  [[nodiscard]] std::string str() const;
};

struct LaunchResult {
  bool completed = false;   // ran to the end (no fatal error)
  std::string error;        // fatal: divergence, fuel, bad memory access
  std::vector<AssertFailure> assertFailures;
  bool assumptionViolated = false;  // some assume(...) was false
  uint64_t steps = 0;

  std::vector<RaceReport> races;
  std::vector<BankConflictReport> bankConflicts;
  std::vector<CoalescingReport> uncoalesced;

  [[nodiscard]] bool clean() const {
    return completed && assertFailures.empty() && races.empty();
  }
};

/// Runs `kernel` on `globals` (one Buffer per pointer parameter, in
/// declaration order; modified in place).
[[nodiscard]] LaunchResult launch(const CompiledKernel& kernel,
                                  const LaunchParams& params,
                                  std::vector<Buffer>& globals);

}  // namespace pugpara::exec
