#include "exec/monitors.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace pugpara::exec {

std::string RaceReport::str() const {
  std::ostringstream os;
  os << (writeWrite ? "write-write" : "read-write") << " race on " << array
     << "[" << index << "] between threads " << thread1 << " (at "
     << loc1.str() << ") and " << thread2 << " (at " << loc2.str() << ")";
  return os.str();
}

std::string BankConflictReport::str() const {
  std::ostringstream os;
  os << degree << "-way bank conflict on " << array << " (bank " << bank
     << ", half-warp " << halfWarp << ") at " << loc.str();
  return os.str();
}

std::string CoalescingReport::str() const {
  std::ostringstream os;
  os << "non-coalesced global access to " << array << " by half-warp "
     << halfWarp << " at " << loc.str();
  return os.str();
}

void Monitors::closeInterval() {
  if (!config_.enabled || log_.empty()) {
    log_.clear();
    return;
  }
  require(config_.banks >= 1 && config_.halfWarp >= 1,
          "monitor configuration needs at least one bank and warp slot");
  detectRaces();
  detectBankConflicts();
  detectUncoalesced();
  log_.clear();
}

void Monitors::detectRaces() {
  // Group by (array, index); any pair of accesses from distinct threads with
  // at least one write races (there is no intra-BI synchronization).
  std::map<std::pair<uint32_t, uint64_t>, std::vector<const AccessRecord*>>
      byCell;
  for (const auto& a : log_) byCell[{a.arrayId, a.index}].push_back(&a);
  for (auto& [cell, accesses] : byCell) {
    const AccessRecord* firstWrite = nullptr;
    for (const AccessRecord* a : accesses)
      if (a->isWrite) {
        firstWrite = a;
        break;
      }
    if (firstWrite == nullptr) continue;
    for (const AccessRecord* a : accesses) {
      if (a->thread == firstWrite->thread) continue;
      RaceReport r;
      r.array = arrayNames_[cell.first];
      r.index = cell.second;
      r.thread1 = firstWrite->thread;
      r.thread2 = a->thread;
      r.writeWrite = a->isWrite;
      r.loc1 = firstWrite->loc;
      r.loc2 = a->loc;
      races_.push_back(std::move(r));
      break;  // one report per cell per interval keeps the output readable
    }
  }
}

void Monitors::detectBankConflicts() {
  // Same static access (source location), same half-warp, same bank,
  // different addresses -> conflict; degree = number of distinct addresses.
  struct Key {
    uint32_t line, col, arrayId, halfWarp, bank;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, std::set<uint64_t>> cells;
  for (const auto& a : log_) {
    if (!a.isShared) continue;
    Key k{a.loc.line, a.loc.col, a.arrayId,
          a.thread / config_.halfWarp,
          static_cast<uint32_t>(a.index % config_.banks)};
    cells[k].insert(a.index);
  }
  for (const auto& [k, addrs] : cells) {
    if (addrs.size() < 2) continue;
    BankConflictReport r;
    r.array = arrayNames_[k.arrayId];
    r.bank = k.bank;
    r.degree = static_cast<uint32_t>(addrs.size());
    r.halfWarp = k.halfWarp;
    r.loc = {k.line, k.col};
    bankConflicts_.push_back(std::move(r));
  }
}

void Monitors::detectUncoalesced() {
  // Per static access and half-warp: the set of global addresses must form
  // a contiguous ascending run in thread order (the strict coalescing rule
  // of compute capability 1.x, which the paper's optimizations target).
  struct Key {
    uint32_t line, col, arrayId, halfWarp;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, std::vector<std::pair<uint32_t, uint64_t>>> groups;
  for (const auto& a : log_) {
    if (a.isShared) continue;
    Key k{a.loc.line, a.loc.col, a.arrayId, a.thread / config_.halfWarp};
    groups[k].emplace_back(a.thread, a.index);
  }
  for (auto& [k, accesses] : groups) {
    if (accesses.size() < 2) continue;
    std::sort(accesses.begin(), accesses.end());
    bool coalesced = true;
    for (size_t i = 1; i < accesses.size(); ++i) {
      const auto& [t0, a0] = accesses[i - 1];
      const auto& [t1, a1] = accesses[i];
      if (a1 - a0 != t1 - t0) {
        coalesced = false;
        break;
      }
    }
    if (coalesced) continue;
    CoalescingReport r;
    r.array = arrayNames_[k.arrayId];
    r.halfWarp = k.halfWarp;
    r.loc = {k.line, k.col};
    uncoalesced_.push_back(std::move(r));
  }
}

}  // namespace pugpara::exec
