// Memory objects for the GPU VM: named flat buffers of width-masked words.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace pugpara::exec {

/// One flat array buffer (global memory region or a shared-memory tile).
/// Elements are stored as uint64_t and masked to the launch bit-width on
/// every store.
class Buffer {
 public:
  Buffer() = default;
  Buffer(std::string name, size_t size, uint64_t fill = 0)
      : name_(std::move(name)), data_(size, fill) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t size() const { return data_.size(); }

  [[nodiscard]] uint64_t load(uint64_t index) const {
    require(index < data_.size(), "out-of-bounds read from '" + name_ +
                                      "' at index " + std::to_string(index));
    return data_[index];
  }

  void store(uint64_t index, uint64_t value) {
    require(index < data_.size(), "out-of-bounds write to '" + name_ +
                                      "' at index " + std::to_string(index));
    data_[index] = value;
  }

  [[nodiscard]] std::vector<uint64_t>& raw() { return data_; }
  [[nodiscard]] const std::vector<uint64_t>& raw() const { return data_; }

  friend bool operator==(const Buffer&, const Buffer&) = default;

 private:
  std::string name_;
  std::vector<uint64_t> data_;
};

}  // namespace pugpara::exec
