#include "exec/bytecode.h"

#include <sstream>

namespace pugpara::exec {

namespace {

const char* opName(Op op) {
  switch (op) {
    case Op::PushConst: return "push";
    case Op::LoadLocal: return "ldloc";
    case Op::StoreLocal: return "stloc";
    case Op::LoadBuiltin: return "ldbuiltin";
    case Op::LoadArray: return "ldarr";
    case Op::StoreArray: return "starr";
    case Op::Binary: return "bin";
    case Op::Unary: return "un";
    case Op::Select: return "select";
    case Op::Min: return "min";
    case Op::Max: return "max";
    case Op::Abs: return "abs";
    case Op::Jump: return "jmp";
    case Op::JumpIfZero: return "jz";
    case Op::Barrier: return "barrier";
    case Op::Halt: return "halt";
    case Op::Assert: return "assert";
    case Op::Assume: return "assume";
  }
  return "?";
}

}  // namespace

std::string CompiledKernel::disassemble() const {
  std::ostringstream os;
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    os << i << ": " << opName(in.op);
    switch (in.op) {
      case Op::PushConst: os << ' ' << in.imm; break;
      case Op::LoadLocal:
      case Op::StoreLocal:
        os << ' ' << (in.a < localNames.size() ? localNames[in.a] : "?");
        break;
      case Op::LoadBuiltin:
        os << ' '
           << lang::builtinName(static_cast<lang::BuiltinVar>(in.a));
        break;
      case Op::LoadArray:
      case Op::StoreArray:
        os << ' ' << (in.a < arrays.size() ? arrays[in.a].name : "?");
        break;
      case Op::Binary:
        os << ' ' << lang::binOpName(static_cast<lang::BinOp>(in.a))
           << (in.b ? "u" : "");
        break;
      case Op::Unary:
        os << ' ' << lang::unOpName(static_cast<lang::UnOp>(in.a));
        break;
      case Op::Jump:
      case Op::JumpIfZero:
        os << " ->" << in.a;
        break;
      default:
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pugpara::exec
