// Hand-written lexer for the mini-CUDA language. Handles // and /* */
// comments, decimal and hex literals, and the full operator set including
// the specification implication "=>" / "==>".
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.h"
#include "support/diagnostics.h"

namespace pugpara::lang {

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Tokenizes the whole buffer; the last token is Tok::End. Lexical errors
  /// are reported to the DiagnosticEngine and the offending character is
  /// skipped, so the caller always gets a terminated stream.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  [[nodiscard]] bool atEnd() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  void skipWhitespaceAndComments();
  [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

  Token lexNumber();
  Token lexIdentOrKeyword();

  std::string_view src_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
};

}  // namespace pugpara::lang
