#include "lang/token.h"

namespace pugpara::lang {

const char* tokName(Tok t) {
  switch (t) {
    case Tok::End: return "<end>";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::KwVoid: return "void";
    case Tok::KwInt: return "int";
    case Tok::KwUnsigned: return "unsigned";
    case Tok::KwBool: return "bool";
    case Tok::KwIf: return "if";
    case Tok::KwElse: return "else";
    case Tok::KwFor: return "for";
    case Tok::KwWhile: return "while";
    case Tok::KwReturn: return "return";
    case Tok::KwTrue: return "true";
    case Tok::KwFalse: return "false";
    case Tok::KwGlobal: return "__global__";
    case Tok::KwDevice: return "__device__";
    case Tok::KwShared: return "__shared__";
    case Tok::KwSyncthreads: return "__syncthreads";
    case Tok::KwAssert: return "assert";
    case Tok::KwAssume: return "assume";
    case Tok::KwPostcond: return "postcond";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Comma: return ",";
    case Tok::Semi: return ";";
    case Tok::Dot: return ".";
    case Tok::Question: return "?";
    case Tok::Colon: return ":";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Amp: return "&";
    case Tok::Pipe: return "|";
    case Tok::Caret: return "^";
    case Tok::Tilde: return "~";
    case Tok::Bang: return "!";
    case Tok::Shl: return "<<";
    case Tok::Shr: return ">>";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::EqEq: return "==";
    case Tok::NotEq: return "!=";
    case Tok::AmpAmp: return "&&";
    case Tok::PipePipe: return "||";
    case Tok::Assign: return "=";
    case Tok::PlusAssign: return "+=";
    case Tok::MinusAssign: return "-=";
    case Tok::StarAssign: return "*=";
    case Tok::SlashAssign: return "/=";
    case Tok::PercentAssign: return "%=";
    case Tok::AmpAssign: return "&=";
    case Tok::PipeAssign: return "|=";
    case Tok::CaretAssign: return "^=";
    case Tok::ShlAssign: return "<<=";
    case Tok::ShrAssign: return ">>=";
    case Tok::PlusPlus: return "++";
    case Tok::MinusMinus: return "--";
    case Tok::Implies: return "=>";
  }
  return "?";
}

std::string Token::str() const {
  if (kind == Tok::Ident) return text;
  if (kind == Tok::Number) return std::to_string(number);
  return tokName(kind);
}

}  // namespace pugpara::lang
