// AST for the mini-CUDA kernel language.
//
// Design notes:
//  * Arrays are always accessed through a named base variable plus index
//    expressions (`block[tid.y][tid.x]`), which is exactly the shape the
//    paper's conditional-assignment extraction consumes; there is no
//    pointer arithmetic.
//  * Nodes carry SourceLoc for diagnostics and are deep-clonable (the
//    bug-injection mutator rewrites cloned kernels).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace pugpara::lang {

enum class BinOp {
  Add, Sub, Mul, Div, Rem,
  BitAnd, BitOr, BitXor, Shl, Shr,
  LAnd, LOr,
  Eq, Ne, Lt, Le, Gt, Ge,
  Implies,  // specification language only
};

enum class UnOp { Neg, LNot, BitNot };

/// The CUDA built-in coordinate variables (paper abbreviations:
/// tid = threadIdx, bid = blockIdx, bdim = blockDim, gdim = gridDim).
enum class BuiltinVar {
  TidX, TidY, TidZ,
  BidX, BidY,
  BdimX, BdimY, BdimZ,
  GdimX, GdimY,
};

[[nodiscard]] const char* binOpName(BinOp op);
[[nodiscard]] const char* unOpName(UnOp op);
[[nodiscard]] const char* builtinName(BuiltinVar v);
/// True for operators that yield a boolean (comparison / logical / implies).
[[nodiscard]] bool isBoolOp(BinOp op);

/// Scalar type of a declaration. Everything is a machine integer whose
/// bit-width is chosen by the checker (the paper's 8b/16b/32b experiments);
/// signedness affects division, remainder, shift-right and comparisons.
struct Type {
  bool isUnsigned = false;
  bool isPointer = false;  // pointer parameter == global 1-D array

  friend bool operator==(const Type&, const Type&) = default;
};

enum class MemSpace {
  Private,  // per-thread local
  Shared,   // per-block __shared__ array
  Global,   // grid-visible array (pointer parameter)
  Param,    // scalar kernel parameter (per-thread copy, writable)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct VarDecl {
  std::string name;
  SourceLoc loc;
  Type type;
  MemSpace space = MemSpace::Private;
  std::vector<ExprPtr> dims;  // array dimensions; empty for scalars/pointers
  ExprPtr init;               // optional initializer (private scalars)
  size_t paramIndex = 0;      // ordinal among kernel parameters

  [[nodiscard]] bool isArray() const {
    return type.isPointer || !dims.empty();
  }
  [[nodiscard]] std::unique_ptr<VarDecl> clone() const;
};

struct Expr {
  enum class Kind {
    IntLit,
    BoolLit,
    VarRef,   // `name` (+ resolved `decl`)
    Builtin,  // tid.x etc.
    Unary,    // args[0]
    Binary,   // args[0], args[1]
    Ternary,  // args[0] ? args[1] : args[2]
    Index,    // `name`[args...] — base is always a named array
    Call,     // min/max/abs(args...)
  };

  Kind kind = Kind::IntLit;
  SourceLoc loc;
  uint64_t intValue = 0;
  bool boolValue = false;
  std::string name;               // VarRef / Index base / Call callee
  const VarDecl* decl = nullptr;  // resolved by sema for VarRef / Index
  BuiltinVar builtin = BuiltinVar::TidX;
  UnOp unop = UnOp::Neg;
  BinOp binop = BinOp::Add;
  std::vector<ExprPtr> args;

  [[nodiscard]] ExprPtr clone() const;
};

// ---- Expression factory helpers (used by parser, tests and the mutator).
[[nodiscard]] ExprPtr mkIntLit(uint64_t v, SourceLoc loc = {});
[[nodiscard]] ExprPtr mkBoolLit(bool v, SourceLoc loc = {});
[[nodiscard]] ExprPtr mkVarRef(std::string name, SourceLoc loc = {});
[[nodiscard]] ExprPtr mkBuiltin(BuiltinVar v, SourceLoc loc = {});
[[nodiscard]] ExprPtr mkUnary(UnOp op, ExprPtr a, SourceLoc loc = {});
[[nodiscard]] ExprPtr mkBinary(BinOp op, ExprPtr a, ExprPtr b,
                               SourceLoc loc = {});
[[nodiscard]] ExprPtr mkTernary(ExprPtr c, ExprPtr t, ExprPtr e,
                                SourceLoc loc = {});
[[nodiscard]] ExprPtr mkIndex(std::string base, std::vector<ExprPtr> indices,
                              SourceLoc loc = {});
[[nodiscard]] ExprPtr mkCall(std::string callee, std::vector<ExprPtr> args,
                             SourceLoc loc = {});

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    Decl,
    Assign,   // lhs (VarRef or Index) op= rhs; ++/-- are compound adds
    If,
    For,
    While,
    Block,
    Barrier,  // __syncthreads()
    Return,
    Assert,
    Assume,
    Postcond,
  };

  Kind kind = Kind::Block;
  SourceLoc loc;
  std::unique_ptr<VarDecl> decl;  // Decl
  ExprPtr lhs;                    // Assign
  bool isCompound = false;        // Assign: lhs op= rhs
  BinOp compoundOp = BinOp::Add;  // Assign when isCompound
  ExprPtr rhs;                    // Assign
  ExprPtr cond;                   // If / While / For / Assert / Assume / Postcond
  StmtPtr init;                   // For
  StmtPtr step;                   // For
  StmtPtr thenStmt;               // If
  StmtPtr elseStmt;               // If (may be null)
  StmtPtr body;                   // For / While
  std::vector<StmtPtr> stmts;     // Block
  bool transparentScope = false;  // Block: synthetic, no new scope (e.g. the
                                  // expansion of "int i, j;")

  [[nodiscard]] StmtPtr clone() const;
};

struct Kernel {
  std::string name;
  SourceLoc loc;
  std::vector<std::unique_ptr<VarDecl>> params;
  StmtPtr body;  // Block

  // Filled in by sema:
  std::vector<const VarDecl*> sharedDecls;
  bool usesBarrier = false;

  [[nodiscard]] std::unique_ptr<Kernel> clone() const;
  /// Parameter lookup by name; nullptr when absent.
  [[nodiscard]] const VarDecl* findParam(const std::string& name) const;
};

struct Program {
  std::vector<std::unique_ptr<Kernel>> kernels;

  [[nodiscard]] const Kernel* findKernel(const std::string& name) const;
};

}  // namespace pugpara::lang
