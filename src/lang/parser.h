// Recursive-descent parser for the mini-CUDA language with C operator
// precedence plus the lowest-precedence, right-associative specification
// implication `=>`.
#pragma once

#include <memory>
#include <string_view>

#include "lang/ast.h"
#include "support/diagnostics.h"

namespace pugpara::lang {

/// Parses a whole translation unit (one or more kernels). On syntax errors,
/// diagnostics are reported to `diags` and the partially parsed program is
/// returned; check diags.hasErrors().
[[nodiscard]] std::unique_ptr<Program> parseProgram(std::string_view source,
                                                    DiagnosticEngine& diags);

/// Parses a single kernel and runs semantic analysis on it. Throws PugError
/// (with the collected diagnostics in the message) on any error. This is the
/// convenience entry point used by checkers, tests and examples.
[[nodiscard]] std::unique_ptr<Program> parseAndAnalyze(
    std::string_view source);

}  // namespace pugpara::lang
