#include "lang/ast_printer.h"

#include <sstream>

namespace pugpara::lang {

namespace {

void expr(std::ostream& os, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::IntLit: os << e.intValue; return;
    case Expr::Kind::BoolLit: os << (e.boolValue ? "true" : "false"); return;
    case Expr::Kind::VarRef: os << e.name; return;
    case Expr::Kind::Builtin: os << builtinName(e.builtin); return;
    case Expr::Kind::Unary:
      os << unOpName(e.unop);
      expr(os, *e.args[0]);
      return;
    case Expr::Kind::Binary:
      os << '(';
      expr(os, *e.args[0]);
      os << ' ' << binOpName(e.binop) << ' ';
      expr(os, *e.args[1]);
      os << ')';
      return;
    case Expr::Kind::Ternary:
      os << '(';
      expr(os, *e.args[0]);
      os << " ? ";
      expr(os, *e.args[1]);
      os << " : ";
      expr(os, *e.args[2]);
      os << ')';
      return;
    case Expr::Kind::Index:
      os << e.name;
      for (const auto& a : e.args) {
        os << '[';
        expr(os, *a);
        os << ']';
      }
      return;
    case Expr::Kind::Call: {
      os << e.name << '(';
      bool first = true;
      for (const auto& a : e.args) {
        if (!first) os << ", ";
        first = false;
        expr(os, *a);
      }
      os << ')';
      return;
    }
  }
}

void pad(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
}

void typePrefix(std::ostream& os, const VarDecl& d) {
  if (d.space == MemSpace::Shared) os << "__shared__ ";
  if (d.type.isUnsigned) os << "unsigned ";
  os << "int ";
  if (d.type.isPointer) os << '*';
}

void stmt(std::ostream& os, const Stmt& s, int indent) {
  switch (s.kind) {
    case Stmt::Kind::Decl: {
      pad(os, indent);
      typePrefix(os, *s.decl);
      os << s.decl->name;
      for (const auto& d : s.decl->dims) {
        os << '[';
        expr(os, *d);
        os << ']';
      }
      if (s.decl->init) {
        os << " = ";
        expr(os, *s.decl->init);
      }
      os << ";\n";
      return;
    }
    case Stmt::Kind::Assign:
      pad(os, indent);
      expr(os, *s.lhs);
      os << ' ';
      if (s.isCompound) os << binOpName(s.compoundOp);
      os << "= ";
      expr(os, *s.rhs);
      os << ";\n";
      return;
    case Stmt::Kind::If:
      pad(os, indent);
      os << "if (";
      expr(os, *s.cond);
      os << ")\n";
      stmt(os, *s.thenStmt, indent + 1);
      if (s.elseStmt) {
        pad(os, indent);
        os << "else\n";
        stmt(os, *s.elseStmt, indent + 1);
      }
      return;
    case Stmt::Kind::For: {
      pad(os, indent);
      os << "for (";
      // Inline renderings of init/step without trailing newlines.
      if (s.init) {
        std::string in = printStmt(*s.init, 0);
        while (!in.empty() && (in.back() == '\n' || in.back() == ';'))
          in.pop_back();
        os << in;
      }
      os << "; ";
      if (s.cond) expr(os, *s.cond);
      os << "; ";
      if (s.step) {
        std::string st = printStmt(*s.step, 0);
        while (!st.empty() && (st.back() == '\n' || st.back() == ';'))
          st.pop_back();
        os << st;
      }
      os << ")\n";
      stmt(os, *s.body, indent + 1);
      return;
    }
    case Stmt::Kind::While:
      pad(os, indent);
      os << "while (";
      expr(os, *s.cond);
      os << ")\n";
      stmt(os, *s.body, indent + 1);
      return;
    case Stmt::Kind::Block:
      pad(os, indent);
      os << "{\n";
      for (const auto& st : s.stmts) stmt(os, *st, indent + 1);
      pad(os, indent);
      os << "}\n";
      return;
    case Stmt::Kind::Barrier:
      pad(os, indent);
      os << "__syncthreads();\n";
      return;
    case Stmt::Kind::Return:
      pad(os, indent);
      os << "return;\n";
      return;
    case Stmt::Kind::Assert:
    case Stmt::Kind::Assume:
    case Stmt::Kind::Postcond:
      pad(os, indent);
      os << (s.kind == Stmt::Kind::Assert   ? "assert("
             : s.kind == Stmt::Kind::Assume ? "assume("
                                            : "postcond(");
      expr(os, *s.cond);
      os << ");\n";
      return;
  }
}

}  // namespace

std::string printExpr(const Expr& e) {
  std::ostringstream os;
  expr(os, e);
  return os.str();
}

std::string printStmt(const Stmt& s, int indent) {
  std::ostringstream os;
  stmt(os, s, indent);
  return os.str();
}

std::string printKernel(const Kernel& k) {
  std::ostringstream os;
  os << "__global__ void " << k.name << "(";
  bool first = true;
  for (const auto& p : k.params) {
    if (!first) os << ", ";
    first = false;
    typePrefix(os, *p);
    os << p->name;
  }
  os << ")\n";
  stmt(os, *k.body, 0);
  return os.str();
}

}  // namespace pugpara::lang
