#include "lang/parser.h"

#include <optional>
#include <unordered_map>

#include "lang/lexer.h"
#include "lang/sema.h"

namespace pugpara::lang {

namespace {

/// Internal unwinding token for panic-mode recovery; never escapes parse().
struct ParseBailout {};

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : toks_(std::move(tokens)), diags_(diags) {}

  std::unique_ptr<Program> parseProgram() {
    auto prog = std::make_unique<Program>();
    while (!at(Tok::End)) {
      try {
        prog->kernels.push_back(parseKernel());
      } catch (const ParseBailout&) {
        synchronizeToKernel();
      }
    }
    return prog;
  }

 private:
  // ---- Token plumbing -------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] const Token& peek(size_t ahead = 1) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  [[nodiscard]] bool at(Tok t) const { return cur().is(t); }
  Token advance() { return toks_[at(Tok::End) ? pos_ : pos_++]; }
  bool accept(Tok t) {
    if (!at(t)) return false;
    advance();
    return true;
  }
  Token expect(Tok t, const char* what) {
    if (at(t)) return advance();
    diags_.error(cur().loc, std::string("expected ") + tokName(t) + " " +
                                what + ", found '" + cur().str() + "'");
    throw ParseBailout{};
  }
  void synchronizeToKernel() {
    while (!at(Tok::End) && !at(Tok::KwGlobal) && !at(Tok::KwVoid)) advance();
  }

  // ---- Declarations ----------------------------------------------------------
  std::unique_ptr<Kernel> parseKernel() {
    accept(Tok::KwGlobal);
    accept(Tok::KwDevice);
    expect(Tok::KwVoid, "before kernel name");
    auto k = std::make_unique<Kernel>();
    Token name = expect(Tok::Ident, "as kernel name");
    k->name = name.text;
    k->loc = name.loc;
    expect(Tok::LParen, "to open the parameter list");
    if (!at(Tok::RParen)) {
      do {
        k->params.push_back(parseParam(k->params.size()));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "to close the parameter list");
    k->body = parseBlock();
    return k;
  }

  std::optional<Type> tryParseType() {
    Type t;
    if (accept(Tok::KwUnsigned)) {
      t.isUnsigned = true;
      accept(Tok::KwInt);  // "unsigned int" or bare "unsigned"
      return t;
    }
    if (accept(Tok::KwInt) || accept(Tok::KwBool)) return t;
    return std::nullopt;
  }

  std::unique_ptr<VarDecl> parseParam(size_t index) {
    auto ty = tryParseType();
    if (!ty) {
      diags_.error(cur().loc, "expected parameter type");
      throw ParseBailout{};
    }
    auto d = std::make_unique<VarDecl>();
    d->type = *ty;
    d->paramIndex = index;
    if (accept(Tok::Star)) d->type.isPointer = true;
    Token name = expect(Tok::Ident, "as parameter name");
    d->name = name.text;
    d->loc = name.loc;
    d->space = d->type.isPointer ? MemSpace::Global : MemSpace::Param;
    return d;
  }

  // ---- Statements -------------------------------------------------------------
  StmtPtr parseBlock() {
    Token open = expect(Tok::LBrace, "to open a block");
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Block;
    s->loc = open.loc;
    while (!at(Tok::RBrace) && !at(Tok::End)) {
      try {
        s->stmts.push_back(parseStmt());
      } catch (const ParseBailout&) {
        // Panic: skip to the next statement boundary inside this block.
        while (!at(Tok::End) && !at(Tok::Semi) && !at(Tok::RBrace)) advance();
        if (at(Tok::Semi)) advance();
      }
    }
    expect(Tok::RBrace, "to close the block");
    return s;
  }

  StmtPtr parseStmt() {
    switch (cur().kind) {
      case Tok::LBrace: return parseBlock();
      case Tok::KwIf: return parseIf();
      case Tok::KwFor: return parseFor();
      case Tok::KwWhile: return parseWhile();
      case Tok::KwSyncthreads: {
        Token t = advance();
        expect(Tok::LParen, "after __syncthreads");
        expect(Tok::RParen, "after __syncthreads(");
        expect(Tok::Semi, "after __syncthreads()");
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Barrier;
        s->loc = t.loc;
        return s;
      }
      case Tok::KwReturn: {
        Token t = advance();
        expect(Tok::Semi, "after return");
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Return;
        s->loc = t.loc;
        return s;
      }
      case Tok::KwAssert:
      case Tok::KwAssume:
      case Tok::KwPostcond: {
        Token t = advance();
        auto s = std::make_unique<Stmt>();
        s->kind = t.is(Tok::KwAssert)   ? Stmt::Kind::Assert
                  : t.is(Tok::KwAssume) ? Stmt::Kind::Assume
                                        : Stmt::Kind::Postcond;
        s->loc = t.loc;
        expect(Tok::LParen, "after specification keyword");
        s->cond = parseExpr();
        expect(Tok::RParen, "to close the specification");
        expect(Tok::Semi, "after specification statement");
        return s;
      }
      case Tok::KwShared:
      case Tok::KwUnsigned:
      case Tok::KwInt:
      case Tok::KwBool:
        return parseDecl();
      default:
        return parseExprStmt(/*needSemi=*/true);
    }
  }

  StmtPtr parseDecl() {
    SourceLoc loc = cur().loc;
    bool shared = accept(Tok::KwShared);
    auto ty = tryParseType();
    if (!ty) {
      diags_.error(cur().loc, "expected type in declaration");
      throw ParseBailout{};
    }
    // Multiple declarators expand into a Block of Decl statements.
    std::vector<StmtPtr> decls;
    do {
      Token name = expect(Tok::Ident, "as variable name");
      auto d = std::make_unique<VarDecl>();
      d->name = name.text;
      d->loc = name.loc;
      d->type = *ty;
      d->space = shared ? MemSpace::Shared : MemSpace::Private;
      while (accept(Tok::LBracket)) {
        d->dims.push_back(parseExpr());
        expect(Tok::RBracket, "to close array dimension");
      }
      if (shared && d->dims.empty())
        diags_.error(d->loc, "__shared__ variable must be an array");
      if (accept(Tok::Assign)) {
        if (!d->dims.empty())
          diags_.error(d->loc, "array declarations cannot have initializers");
        d->init = parseExpr();
      }
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::Decl;
      s->loc = d->loc;
      s->decl = std::move(d);
      decls.push_back(std::move(s));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "after declaration");
    if (decls.size() == 1) return std::move(decls.front());
    auto blk = std::make_unique<Stmt>();
    blk->kind = Stmt::Kind::Block;
    blk->loc = loc;
    blk->stmts = std::move(decls);
    blk->transparentScope = true;
    return blk;
  }

  StmtPtr parseIf() {
    Token t = advance();
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::If;
    s->loc = t.loc;
    expect(Tok::LParen, "after if");
    s->cond = parseExpr();
    expect(Tok::RParen, "to close the if condition");
    s->thenStmt = parseStmt();
    if (accept(Tok::KwElse)) s->elseStmt = parseStmt();
    return s;
  }

  StmtPtr parseFor() {
    Token t = advance();
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::For;
    s->loc = t.loc;
    expect(Tok::LParen, "after for");
    if (at(Tok::Semi)) {
      advance();
    } else if (at(Tok::KwInt) || at(Tok::KwUnsigned) || at(Tok::KwBool)) {
      s->init = parseDecl();  // consumes the ';'
    } else {
      s->init = parseExprStmt(/*needSemi=*/true);
    }
    if (!at(Tok::Semi)) s->cond = parseExpr();
    expect(Tok::Semi, "after for condition");
    if (!at(Tok::RParen)) s->step = parseExprStmt(/*needSemi=*/false);
    expect(Tok::RParen, "to close the for header");
    s->body = parseStmt();
    return s;
  }

  StmtPtr parseWhile() {
    Token t = advance();
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::While;
    s->loc = t.loc;
    expect(Tok::LParen, "after while");
    s->cond = parseExpr();
    expect(Tok::RParen, "to close the while condition");
    s->body = parseStmt();
    return s;
  }

  /// Assignment statement: `lvalue (op)= expr`, `lvalue++`, `lvalue--`.
  StmtPtr parseExprStmt(bool needSemi) {
    SourceLoc loc = cur().loc;
    ExprPtr lhs = parsePostfix();
    if (lhs->kind != Expr::Kind::VarRef && lhs->kind != Expr::Kind::Index) {
      diags_.error(loc, "statement must be an assignment to a variable or "
                        "array element");
      throw ParseBailout{};
    }
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Assign;
    s->loc = loc;

    static const std::unordered_map<Tok, BinOp> compound = {
        {Tok::PlusAssign, BinOp::Add},    {Tok::MinusAssign, BinOp::Sub},
        {Tok::StarAssign, BinOp::Mul},    {Tok::SlashAssign, BinOp::Div},
        {Tok::PercentAssign, BinOp::Rem}, {Tok::AmpAssign, BinOp::BitAnd},
        {Tok::PipeAssign, BinOp::BitOr},  {Tok::CaretAssign, BinOp::BitXor},
        {Tok::ShlAssign, BinOp::Shl},     {Tok::ShrAssign, BinOp::Shr},
    };

    if (accept(Tok::Assign)) {
      s->rhs = parseExpr();
    } else if (auto it = compound.find(cur().kind); it != compound.end()) {
      advance();
      s->isCompound = true;
      s->compoundOp = it->second;
      s->rhs = parseExpr();
    } else if (accept(Tok::PlusPlus)) {
      s->isCompound = true;
      s->compoundOp = BinOp::Add;
      s->rhs = mkIntLit(1, loc);
    } else if (accept(Tok::MinusMinus)) {
      s->isCompound = true;
      s->compoundOp = BinOp::Sub;
      s->rhs = mkIntLit(1, loc);
    } else {
      diags_.error(cur().loc, "expected assignment operator");
      throw ParseBailout{};
    }
    s->lhs = std::move(lhs);
    if (needSemi) expect(Tok::Semi, "after assignment");
    return s;
  }

  // ---- Expressions (C precedence; `=>` lowest, right-associative) ------------
  ExprPtr parseExpr() { return parseImplies(); }

  ExprPtr parseImplies() {
    ExprPtr lhs = parseTernary();
    if (accept(Tok::Implies)) {
      SourceLoc loc = lhs->loc;
      return mkBinary(BinOp::Implies, std::move(lhs), parseImplies(), loc);
    }
    return lhs;
  }

  ExprPtr parseTernary() {
    ExprPtr c = parseBinary(0);
    if (accept(Tok::Question)) {
      ExprPtr t = parseExpr();
      expect(Tok::Colon, "in ternary expression");
      SourceLoc loc = c->loc;
      return mkTernary(std::move(c), std::move(t), parseTernary(), loc);
    }
    return c;
  }

  struct OpInfo {
    BinOp op;
    int prec;
  };

  static std::optional<OpInfo> binOpInfo(Tok t) {
    switch (t) {
      case Tok::PipePipe: return OpInfo{BinOp::LOr, 1};
      case Tok::AmpAmp: return OpInfo{BinOp::LAnd, 2};
      case Tok::Pipe: return OpInfo{BinOp::BitOr, 3};
      case Tok::Caret: return OpInfo{BinOp::BitXor, 4};
      case Tok::Amp: return OpInfo{BinOp::BitAnd, 5};
      case Tok::EqEq: return OpInfo{BinOp::Eq, 6};
      case Tok::NotEq: return OpInfo{BinOp::Ne, 6};
      case Tok::Lt: return OpInfo{BinOp::Lt, 7};
      case Tok::Le: return OpInfo{BinOp::Le, 7};
      case Tok::Gt: return OpInfo{BinOp::Gt, 7};
      case Tok::Ge: return OpInfo{BinOp::Ge, 7};
      case Tok::Shl: return OpInfo{BinOp::Shl, 8};
      case Tok::Shr: return OpInfo{BinOp::Shr, 8};
      case Tok::Plus: return OpInfo{BinOp::Add, 9};
      case Tok::Minus: return OpInfo{BinOp::Sub, 9};
      case Tok::Star: return OpInfo{BinOp::Mul, 10};
      case Tok::Slash: return OpInfo{BinOp::Div, 10};
      case Tok::Percent: return OpInfo{BinOp::Rem, 10};
      default: return std::nullopt;
    }
  }

  ExprPtr parseBinary(int minPrec) {
    ExprPtr lhs = parseUnary();
    for (;;) {
      auto info = binOpInfo(cur().kind);
      if (!info || info->prec < minPrec) return lhs;
      advance();
      ExprPtr rhs = parseBinary(info->prec + 1);  // left-associative
      SourceLoc loc = lhs->loc;
      lhs = mkBinary(info->op, std::move(lhs), std::move(rhs), loc);
    }
  }

  ExprPtr parseUnary() {
    SourceLoc loc = cur().loc;
    if (accept(Tok::Minus)) return mkUnary(UnOp::Neg, parseUnary(), loc);
    if (accept(Tok::Bang)) return mkUnary(UnOp::LNot, parseUnary(), loc);
    if (accept(Tok::Tilde)) return mkUnary(UnOp::BitNot, parseUnary(), loc);
    if (accept(Tok::Plus)) return parseUnary();
    // C-style casts "(int)e" / "(unsigned int)e" are accepted and ignored
    // (all scalars share one checker-selected width).
    if (at(Tok::LParen) && (peek().is(Tok::KwInt) || peek().is(Tok::KwUnsigned))) {
      advance();
      while (at(Tok::KwInt) || at(Tok::KwUnsigned)) advance();
      expect(Tok::RParen, "to close the cast");
      return parseUnary();
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr e = parsePrimary();
    for (;;) {
      if (at(Tok::LBracket)) {
        if (e->kind != Expr::Kind::VarRef) {
          diags_.error(cur().loc, "only named arrays can be indexed");
          throw ParseBailout{};
        }
        std::string base = e->name;
        SourceLoc loc = e->loc;
        std::vector<ExprPtr> idx;
        while (accept(Tok::LBracket)) {
          idx.push_back(parseExpr());
          expect(Tok::RBracket, "to close index");
        }
        e = mkIndex(std::move(base), std::move(idx), loc);
      } else {
        return e;
      }
    }
  }

  ExprPtr parsePrimary() {
    SourceLoc loc = cur().loc;
    if (at(Tok::Number)) return mkIntLit(advance().number, loc);
    if (accept(Tok::KwTrue)) return mkBoolLit(true, loc);
    if (accept(Tok::KwFalse)) return mkBoolLit(false, loc);
    if (accept(Tok::LParen)) {
      ExprPtr e = parseExpr();
      expect(Tok::RParen, "to close the parenthesized expression");
      return e;
    }
    if (at(Tok::Ident)) {
      Token name = advance();
      if (accept(Tok::Dot)) return parseBuiltinMember(name);
      if (at(Tok::LParen)) {
        advance();
        std::vector<ExprPtr> args;
        if (!at(Tok::RParen)) {
          do {
            args.push_back(parseExpr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "to close the call");
        return mkCall(name.text, std::move(args), loc);
      }
      return mkVarRef(name.text, loc);
    }
    diags_.error(loc, "expected expression, found '" + cur().str() + "'");
    throw ParseBailout{};
  }

  ExprPtr parseBuiltinMember(const Token& base) {
    Token member = expect(Tok::Ident, "after '.'");
    static const std::unordered_map<std::string, int> bases = {
        {"tid", 0},  {"threadIdx", 0}, {"bid", 1},  {"blockIdx", 1},
        {"bdim", 2}, {"blockDim", 2},  {"gdim", 3}, {"gridDim", 3},
    };
    auto bit = bases.find(base.text);
    int axis = member.text == "x" ? 0 : member.text == "y" ? 1
               : member.text == "z" ? 2 : -1;
    if (bit == bases.end() || axis < 0) {
      diags_.error(base.loc,
                   "unknown builtin '" + base.text + "." + member.text + "'");
      throw ParseBailout{};
    }
    static const BuiltinVar table[4][3] = {
        {BuiltinVar::TidX, BuiltinVar::TidY, BuiltinVar::TidZ},
        {BuiltinVar::BidX, BuiltinVar::BidY, BuiltinVar::BidY /*no bid.z*/},
        {BuiltinVar::BdimX, BuiltinVar::BdimY, BuiltinVar::BdimZ},
        {BuiltinVar::GdimX, BuiltinVar::GdimY, BuiltinVar::GdimY /*no .z*/},
    };
    if ((bit->second == 1 || bit->second == 3) && axis == 2) {
      diags_.error(base.loc, "grids are at most 2-D: no '" + base.text +
                                 ".z' builtin");
      throw ParseBailout{};
    }
    return mkBuiltin(table[bit->second][axis], base.loc);
  }

  std::vector<Token> toks_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Program> parseProgram(std::string_view source,
                                      DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  auto tokens = lexer.tokenize();
  if (diags.hasErrors()) return std::make_unique<Program>();
  Parser parser(std::move(tokens), diags);
  return parser.parseProgram();
}

std::unique_ptr<Program> parseAndAnalyze(std::string_view source) {
  DiagnosticEngine diags;
  auto prog = parseProgram(source, diags);
  if (!diags.hasErrors()) {
    for (auto& k : prog->kernels) analyze(*k, diags);
  }
  if (diags.hasErrors())
    throw PugError("kernel front-end errors:\n" + diags.str());
  return prog;
}

}  // namespace pugpara::lang
