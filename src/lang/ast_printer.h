// Pretty-printer: renders an AST back to (normalized) kernel source.
// Used in reports, tests and to display mutated kernels.
#pragma once

#include <string>

#include "lang/ast.h"

namespace pugpara::lang {

[[nodiscard]] std::string printExpr(const Expr& e);
[[nodiscard]] std::string printStmt(const Stmt& s, int indent = 0);
[[nodiscard]] std::string printKernel(const Kernel& k);

}  // namespace pugpara::lang
