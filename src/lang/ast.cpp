#include "lang/ast.h"

namespace pugpara::lang {

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Rem: return "%";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Implies: return "=>";
  }
  return "?";
}

const char* unOpName(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::LNot: return "!";
    case UnOp::BitNot: return "~";
  }
  return "?";
}

const char* builtinName(BuiltinVar v) {
  switch (v) {
    case BuiltinVar::TidX: return "tid.x";
    case BuiltinVar::TidY: return "tid.y";
    case BuiltinVar::TidZ: return "tid.z";
    case BuiltinVar::BidX: return "bid.x";
    case BuiltinVar::BidY: return "bid.y";
    case BuiltinVar::BdimX: return "bdim.x";
    case BuiltinVar::BdimY: return "bdim.y";
    case BuiltinVar::BdimZ: return "bdim.z";
    case BuiltinVar::GdimX: return "gdim.x";
    case BuiltinVar::GdimY: return "gdim.y";
  }
  return "?";
}

bool isBoolOp(BinOp op) {
  switch (op) {
    case BinOp::LAnd:
    case BinOp::LOr:
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Implies:
      return true;
    default:
      return false;
  }
}

// ---- Factories --------------------------------------------------------------

ExprPtr mkIntLit(uint64_t v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::IntLit;
  e->intValue = v;
  e->loc = loc;
  return e;
}

ExprPtr mkBoolLit(bool v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::BoolLit;
  e->boolValue = v;
  e->loc = loc;
  return e;
}

ExprPtr mkVarRef(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::VarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr mkBuiltin(BuiltinVar v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Builtin;
  e->builtin = v;
  e->loc = loc;
  return e;
}

ExprPtr mkUnary(UnOp op, ExprPtr a, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Unary;
  e->unop = op;
  e->args.push_back(std::move(a));
  e->loc = loc;
  return e;
}

ExprPtr mkBinary(BinOp op, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Binary;
  e->binop = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  e->loc = loc;
  return e;
}

ExprPtr mkTernary(ExprPtr c, ExprPtr t, ExprPtr el, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Ternary;
  e->args.push_back(std::move(c));
  e->args.push_back(std::move(t));
  e->args.push_back(std::move(el));
  e->loc = loc;
  return e;
}

ExprPtr mkIndex(std::string base, std::vector<ExprPtr> indices, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Index;
  e->name = std::move(base);
  e->args = std::move(indices);
  e->loc = loc;
  return e;
}

ExprPtr mkCall(std::string callee, std::vector<ExprPtr> args, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Call;
  e->name = std::move(callee);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

// ---- Clones -----------------------------------------------------------------
// Clones carry no sema results (decl pointers, sharedDecls); re-run sema on
// the cloned kernel before using it.

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->intValue = intValue;
  e->boolValue = boolValue;
  e->name = name;
  e->builtin = builtin;
  e->unop = unop;
  e->binop = binop;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

std::unique_ptr<VarDecl> VarDecl::clone() const {
  auto d = std::make_unique<VarDecl>();
  d->name = name;
  d->loc = loc;
  d->type = type;
  d->space = space;
  d->paramIndex = paramIndex;
  d->dims.reserve(dims.size());
  for (const auto& e : dims) d->dims.push_back(e->clone());
  if (init) d->init = init->clone();
  return d;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  s->isCompound = isCompound;
  s->compoundOp = compoundOp;
  s->transparentScope = transparentScope;
  if (decl) s->decl = decl->clone();
  if (lhs) s->lhs = lhs->clone();
  if (rhs) s->rhs = rhs->clone();
  if (cond) s->cond = cond->clone();
  if (init) s->init = init->clone();
  if (step) s->step = step->clone();
  if (thenStmt) s->thenStmt = thenStmt->clone();
  if (elseStmt) s->elseStmt = elseStmt->clone();
  if (body) s->body = body->clone();
  s->stmts.reserve(stmts.size());
  for (const auto& st : stmts) s->stmts.push_back(st->clone());
  return s;
}

std::unique_ptr<Kernel> Kernel::clone() const {
  auto k = std::make_unique<Kernel>();
  k->name = name;
  k->loc = loc;
  k->params.reserve(params.size());
  for (const auto& p : params) k->params.push_back(p->clone());
  k->body = body->clone();
  return k;
}

const VarDecl* Kernel::findParam(const std::string& paramName) const {
  for (const auto& p : params)
    if (p->name == paramName) return p.get();
  return nullptr;
}

const Kernel* Program::findKernel(const std::string& kernelName) const {
  for (const auto& k : kernels)
    if (k->name == kernelName) return k.get();
  return nullptr;
}

}  // namespace pugpara::lang
