#include "lang/sema.h"

#include <unordered_map>
#include <vector>

namespace pugpara::lang {

namespace {

class Sema {
 public:
  Sema(Kernel& kernel, DiagnosticEngine& diags)
      : kernel_(kernel), diags_(diags) {}

  void run() {
    kernel_.sharedDecls.clear();
    kernel_.usesBarrier = false;
    pushScope();
    for (auto& p : kernel_.params) declare(p.get());
    visitStmt(*kernel_.body);
    popScope();
  }

 private:
  using Scope = std::unordered_map<std::string, const VarDecl*>;

  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }

  void declare(const VarDecl* d) {
    auto& scope = scopes_.back();
    if (scope.contains(d->name)) {
      diags_.error(d->loc, "redeclaration of '" + d->name + "'");
      return;
    }
    scope.emplace(d->name, d);
  }

  [[nodiscard]] const VarDecl* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    return nullptr;
  }

  void visitStmt(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Decl: {
        VarDecl* d = s.decl.get();
        // Dimension expressions may only mention parameters and builtins
        // (they must be block-uniform: evaluated once at launch).
        for (auto& dim : d->dims) {
          visitExpr(*dim);
          checkUniform(*dim, "array dimension");
        }
        if (d->init) visitExpr(*d->init);
        declare(d);
        if (d->space == MemSpace::Shared) kernel_.sharedDecls.push_back(d);
        return;
      }
      case Stmt::Kind::Assign: {
        visitExpr(*s.lhs);
        visitExpr(*s.rhs);
        const VarDecl* target = s.lhs->decl;
        if (target == nullptr) return;  // already diagnosed
        if (s.lhs->kind == Expr::Kind::VarRef && target->isArray())
          diags_.error(s.loc, "cannot assign to array '" + target->name +
                                  "' without an index");
        if (s.lhs->kind == Expr::Kind::Index && !target->isArray())
          diags_.error(s.loc, "cannot index scalar '" + target->name + "'");
        return;
      }
      case Stmt::Kind::If:
        visitExpr(*s.cond);
        visitStmt(*s.thenStmt);
        if (s.elseStmt) visitStmt(*s.elseStmt);
        return;
      case Stmt::Kind::For:
        pushScope();
        if (s.init) visitStmt(*s.init);
        if (s.cond) visitExpr(*s.cond);
        if (s.step) visitStmt(*s.step);
        visitStmt(*s.body);
        popScope();
        return;
      case Stmt::Kind::While:
        visitExpr(*s.cond);
        visitStmt(*s.body);
        return;
      case Stmt::Kind::Block:
        if (!s.transparentScope) pushScope();
        for (auto& st : s.stmts) visitStmt(*st);
        if (!s.transparentScope) popScope();
        return;
      case Stmt::Kind::Barrier:
        kernel_.usesBarrier = true;
        return;
      case Stmt::Kind::Return:
        return;
      case Stmt::Kind::Assert:
      case Stmt::Kind::Assume:
      case Stmt::Kind::Postcond:
        visitExpr(*s.cond);
        return;
    }
  }

  void visitExpr(Expr& e) {
    switch (e.kind) {
      case Expr::Kind::IntLit:
      case Expr::Kind::BoolLit:
      case Expr::Kind::Builtin:
        return;
      case Expr::Kind::VarRef: {
        const VarDecl* d = lookup(e.name);
        if (d == nullptr) {
          diags_.error(e.loc, "use of undeclared variable '" + e.name + "'");
          return;
        }
        e.decl = d;
        return;
      }
      case Expr::Kind::Index: {
        const VarDecl* d = lookup(e.name);
        if (d == nullptr) {
          diags_.error(e.loc, "use of undeclared array '" + e.name + "'");
        } else {
          e.decl = d;
          const size_t expected = d->type.isPointer ? 1 : d->dims.size();
          if (!d->isArray()) {
            diags_.error(e.loc, "'" + e.name + "' is not an array");
          } else if (e.args.size() != expected) {
            diags_.error(e.loc, "'" + e.name + "' expects " +
                                    std::to_string(expected) +
                                    " index(es), got " +
                                    std::to_string(e.args.size()));
          }
        }
        for (auto& a : e.args) visitExpr(*a);
        return;
      }
      case Expr::Kind::Unary:
        visitExpr(*e.args[0]);
        return;
      case Expr::Kind::Binary:
        visitExpr(*e.args[0]);
        visitExpr(*e.args[1]);
        return;
      case Expr::Kind::Ternary:
        visitExpr(*e.args[0]);
        visitExpr(*e.args[1]);
        visitExpr(*e.args[2]);
        return;
      case Expr::Kind::Call: {
        const bool known = e.name == "min" || e.name == "max";
        const bool unary = e.name == "abs";
        if (!known && !unary) {
          diags_.error(e.loc, "unknown function '" + e.name +
                                  "' (supported: min, max, abs)");
        } else if (known && e.args.size() != 2) {
          diags_.error(e.loc, "'" + e.name + "' expects 2 arguments");
        } else if (unary && e.args.size() != 1) {
          diags_.error(e.loc, "'abs' expects 1 argument");
        }
        for (auto& a : e.args) visitExpr(*a);
        return;
      }
    }
  }

  /// Rejects expressions that depend on per-thread state (tid.*, private
  /// variables) where block-uniform values are required.
  void checkUniform(const Expr& e, const char* what) {
    switch (e.kind) {
      case Expr::Kind::Builtin:
        if (e.builtin == BuiltinVar::TidX || e.builtin == BuiltinVar::TidY ||
            e.builtin == BuiltinVar::TidZ)
          diags_.error(e.loc, std::string(what) +
                                  " must be uniform across the block; it "
                                  "cannot mention tid");
        return;
      case Expr::Kind::VarRef:
        if (e.decl != nullptr && e.decl->space == MemSpace::Private)
          diags_.error(e.loc, std::string(what) +
                                  " must be uniform across the block; it "
                                  "cannot read private variable '" +
                                  e.name + "'");
        return;
      default:
        for (const auto& a : e.args) checkUniform(*a, what);
        return;
    }
  }

  Kernel& kernel_;
  DiagnosticEngine& diags_;
  std::vector<Scope> scopes_;
};

}  // namespace

void analyze(Kernel& kernel, DiagnosticEngine& diags) {
  Sema(kernel, diags).run();
}

bool exprIsUnsigned(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::IntLit:
    case Expr::Kind::BoolLit:
      return false;
    case Expr::Kind::Builtin:
      return true;  // uint3 threadIdx / blockIdx / blockDim / gridDim
    case Expr::Kind::VarRef:
      return e.decl != nullptr && e.decl->type.isUnsigned;
    case Expr::Kind::Index:
      return e.decl != nullptr && e.decl->type.isUnsigned;
    case Expr::Kind::Unary:
      return e.unop != UnOp::LNot && exprIsUnsigned(*e.args[0]);
    case Expr::Kind::Binary:
      if (isBoolOp(e.binop)) return false;  // comparisons yield bool/int
      return exprIsUnsigned(*e.args[0]) || exprIsUnsigned(*e.args[1]);
    case Expr::Kind::Ternary:
      return exprIsUnsigned(*e.args[1]) || exprIsUnsigned(*e.args[2]);
    case Expr::Kind::Call: {
      bool u = false;
      for (const auto& a : e.args) u = u || exprIsUnsigned(*a);
      return u;
    }
  }
  return false;
}

}  // namespace pugpara::lang
