// Token definitions for the mini-CUDA kernel language.
//
// The language is the C subset CUDA SDK 2.0-era kernels are written in:
// integer scalars and arrays, control flow, barriers, plus the
// specification statements assert / assume / postcond used by the paper.
#pragma once

#include <cstdint>
#include <string>

#include "support/diagnostics.h"

namespace pugpara::lang {

enum class Tok : uint8_t {
  End,
  Ident,
  Number,

  // Keywords
  KwVoid,
  KwInt,
  KwUnsigned,
  KwBool,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwReturn,
  KwTrue,
  KwFalse,
  KwGlobal,       // __global__
  KwDevice,       // __device__ (accepted, ignored)
  KwShared,       // __shared__
  KwSyncthreads,  // __syncthreads
  KwAssert,
  KwAssume,
  KwPostcond,

  // Punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Dot,
  Question,
  Colon,

  // Operators
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  AmpAssign,
  PipeAssign,
  CaretAssign,
  ShlAssign,
  ShrAssign,
  PlusPlus,
  MinusMinus,
  Implies,  // "=>" or "==>" (specification language only)
};

[[nodiscard]] const char* tokName(Tok t);

struct Token {
  Tok kind = Tok::End;
  SourceLoc loc;
  std::string text;     // identifier spelling
  uint64_t number = 0;  // numeric literal value

  [[nodiscard]] bool is(Tok t) const { return kind == t; }
  [[nodiscard]] std::string str() const;
};

}  // namespace pugpara::lang
