#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace pugpara::lang {

namespace {

const std::unordered_map<std::string_view, Tok>& keywordTable() {
  static const std::unordered_map<std::string_view, Tok> table = {
      {"void", Tok::KwVoid},
      {"int", Tok::KwInt},
      {"unsigned", Tok::KwUnsigned},
      {"uint", Tok::KwUnsigned},
      {"bool", Tok::KwBool},
      {"if", Tok::KwIf},
      {"else", Tok::KwElse},
      {"for", Tok::KwFor},
      {"while", Tok::KwWhile},
      {"return", Tok::KwReturn},
      {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},
      {"__global__", Tok::KwGlobal},
      {"__device__", Tok::KwDevice},
      {"__shared__", Tok::KwShared},
      {"__syncthreads", Tok::KwSyncthreads},
      {"assert", Tok::KwAssert},
      {"assume", Tok::KwAssume},
      {"postcond", Tok::KwPostcond},
      // "float" appears in some SDK kernel texts (e.g. the transpose tile);
      // the paper's tool is integer-only, so we read it as int.
      {"float", Tok::KwInt},
  };
  return table;
}

}  // namespace

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : src_(source), diags_(diags) {}

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (atEnd() || peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    if (atEnd()) return;
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLoc start = here();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/')) advance();
      if (atEnd()) {
        diags_.error(start, "unterminated block comment");
        return;
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::lexNumber() {
  Token t;
  t.kind = Tok::Number;
  t.loc = here();
  uint64_t value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    bool any = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char c = advance();
      uint64_t digit = std::isdigit(static_cast<unsigned char>(c))
                           ? static_cast<uint64_t>(c - '0')
                           : static_cast<uint64_t>(std::tolower(c) - 'a' + 10);
      value = value * 16 + digit;
      any = true;
    }
    if (!any) diags_.error(t.loc, "hex literal needs at least one digit");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      value = value * 10 + static_cast<uint64_t>(advance() - '0');
  }
  // Integer suffixes (u, U, l, L) are accepted and ignored.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
    advance();
  t.number = value;
  return t;
}

Token Lexer::lexIdentOrKeyword() {
  Token t;
  t.loc = here();
  std::string name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    name.push_back(advance());
  const auto& kw = keywordTable();
  auto it = kw.find(name);
  if (it != kw.end()) {
    t.kind = it->second;
  } else {
    t.kind = Tok::Ident;
    t.text = std::move(name);
  }
  return t;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    skipWhitespaceAndComments();
    if (atEnd()) break;
    char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(lexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(lexIdentOrKeyword());
      continue;
    }

    Token t;
    t.loc = here();
    advance();
    switch (c) {
      case '(': t.kind = Tok::LParen; break;
      case ')': t.kind = Tok::RParen; break;
      case '{': t.kind = Tok::LBrace; break;
      case '}': t.kind = Tok::RBrace; break;
      case '[': t.kind = Tok::LBracket; break;
      case ']': t.kind = Tok::RBracket; break;
      case ',': t.kind = Tok::Comma; break;
      case ';': t.kind = Tok::Semi; break;
      case '.': t.kind = Tok::Dot; break;
      case '?': t.kind = Tok::Question; break;
      case ':': t.kind = Tok::Colon; break;
      case '~': t.kind = Tok::Tilde; break;
      case '+':
        t.kind = match('+') ? Tok::PlusPlus
                            : (match('=') ? Tok::PlusAssign : Tok::Plus);
        break;
      case '-':
        t.kind = match('-') ? Tok::MinusMinus
                            : (match('=') ? Tok::MinusAssign : Tok::Minus);
        break;
      case '*': t.kind = match('=') ? Tok::StarAssign : Tok::Star; break;
      case '/': t.kind = match('=') ? Tok::SlashAssign : Tok::Slash; break;
      case '%': t.kind = match('=') ? Tok::PercentAssign : Tok::Percent; break;
      case '^': t.kind = match('=') ? Tok::CaretAssign : Tok::Caret; break;
      case '&':
        t.kind = match('&') ? Tok::AmpAmp
                            : (match('=') ? Tok::AmpAssign : Tok::Amp);
        break;
      case '|':
        t.kind = match('|') ? Tok::PipePipe
                            : (match('=') ? Tok::PipeAssign : Tok::Pipe);
        break;
      case '!': t.kind = match('=') ? Tok::NotEq : Tok::Bang; break;
      case '=':
        if (match('=')) {
          // "==>" is the spec-language implication; "==" is equality.
          t.kind = match('>') ? Tok::Implies : Tok::EqEq;
        } else if (match('>')) {
          t.kind = Tok::Implies;
        } else {
          t.kind = Tok::Assign;
        }
        break;
      case '<':
        if (match('<')) {
          t.kind = match('=') ? Tok::ShlAssign : Tok::Shl;
        } else {
          t.kind = match('=') ? Tok::Le : Tok::Lt;
        }
        break;
      case '>':
        if (match('>')) {
          t.kind = match('=') ? Tok::ShrAssign : Tok::Shr;
        } else {
          t.kind = match('=') ? Tok::Ge : Tok::Gt;
        }
        break;
      default:
        diags_.error(t.loc, std::string("unexpected character '") + c + "'");
        continue;
    }
    out.push_back(t);
  }
  Token end;
  end.kind = Tok::End;
  end.loc = here();
  out.push_back(end);
  return out;
}

}  // namespace pugpara::lang
