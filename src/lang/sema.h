// Semantic analysis: name resolution, array-shape checking, and collection
// of kernel-level facts (shared arrays, barrier usage).
#pragma once

#include "lang/ast.h"
#include "support/diagnostics.h"

namespace pugpara::lang {

/// Resolves every VarRef/Index to its declaration, validates shapes and
/// assignment targets, and fills Kernel::sharedDecls / usesBarrier.
/// Errors go to `diags`; the AST is usable only when !diags.hasErrors().
void analyze(Kernel& kernel, DiagnosticEngine& diags);

/// C-style signedness inference on a sema-resolved expression: an operation
/// is unsigned when either operand is unsigned. CUDA builtins (tid/bid/...)
/// are unsigned, literals signed. Division, remainder, shift-right and
/// comparisons consult this; the VM and the symbolic encoders share it so
/// concrete and symbolic semantics agree.
[[nodiscard]] bool exprIsUnsigned(const Expr& e);

}  // namespace pugpara::lang
