// The serve wire protocol: newline-delimited JSON over a byte stream.
//
// One JSON object per line in each direction. Client → server requests:
//
//   {"op":"check","id":"r1","source":"<mini-CUDA text>","kind":"races",
//    "kernel":"transposeOpt","kernel2":"","deadline_ms":0,
//    "options":{"method":"param","width":8,"backend":"z3",
//               "timeout_ms":20000,"prefilter":true,"replay":true,
//               "incremental":true}}
//   {"op":"ping","id":"p"}        liveness probe
//   {"op":"stats","id":"s"}       cache/queue/counter snapshot
//   {"op":"shutdown","id":"q"}    orderly daemon stop
//
// `kind` is one of races|asserts|postcond|equiv|perf|all; "all" expands to
// races+asserts+postcond for every kernel in `source` (the CLI's --all).
// Unknown option members are ignored (forward compatibility); a malformed
// line or unknown op yields an `error` event.
//
// Server → client events, streamed as they land (`id` echoes the request):
//
//   {"id":"r1","event":"result","seq":0,"cached":false,"result":{...}}
//   {"id":"r1","event":"done","checks":3,"memoHits":1,"elapsedMs":12.5,
//    "cache":{...}}                                    terminal on success
//   {"id":"r1","event":"overloaded","shed":3,"streamed":1,...}  terminal
//   {"id":"r1","event":"error","error":"..."}                   terminal
//   {"id":"p","event":"pong"} / {"id":"s","event":"stats",...} /
//   {"id":"q","event":"bye"}                                    terminal
//
// `result` embeds check::CheckResult::json() verbatim; `cached:true` marks
// a content-addressed memo hit that never touched a solver.
#pragma once

#include <cstdint>
#include <string>

#include "check/request.h"

namespace pugpara::serve {

struct Request {
  enum class Op { Check, Ping, Stats, Shutdown };

  Op op = Op::Check;
  std::string id;
  std::string source;
  std::string kind;  // races|asserts|postcond|equiv|perf|all
  std::string kernel;
  std::string kernel2;
  check::CheckOptions options;  // defaults overlaid with wire members
  uint32_t deadlineMs = 0;
};

/// Parses one request line. `defaults` seeds the options the wire may
/// override (the daemon's --backend/--timeout defaults). Returns false and
/// fills `err` on malformed JSON, unknown op, or unusable field values;
/// fills `out->id` when the line carried one (so the error can be
/// correlated).
bool parseRequest(const std::string& line, const check::CheckOptions& defaults,
                  Request* out, std::string* err);

/// Maps a wire `kind` string to a CheckKind. Returns false for "all" and
/// unknown strings ("all" is an expansion, not a kind).
bool parseKind(const std::string& kind, check::CheckKind* out);

/// Builds the request line the client sends (the inverse of parseRequest;
/// only wire-visible options are encoded).
[[nodiscard]] std::string encodeRequest(const Request& req);

// ---- Server → client events (each returns one full line, '\n' included) ---

[[nodiscard]] std::string resultEvent(const std::string& id, size_t seq,
                                      bool cached,
                                      const std::string& resultJson);
[[nodiscard]] std::string doneEvent(const std::string& id, size_t checks,
                                    size_t memoHits, double elapsedMs,
                                    const std::string& cacheStatsJson);
[[nodiscard]] std::string errorEvent(const std::string& id,
                                     const std::string& message);
[[nodiscard]] std::string overloadedEvent(const std::string& id, size_t shed,
                                          size_t streamed, size_t queueDepth,
                                          size_t capacity);
[[nodiscard]] std::string pongEvent(const std::string& id);
[[nodiscard]] std::string statsEvent(const std::string& id,
                                     const std::string& statsJson);
[[nodiscard]] std::string byeEvent(const std::string& id);

/// Canonical content-addressed identity of a check: the source text plus
/// every semantics-affecting option. Deliberately excludes time budgets
/// (solverTimeoutMs, deadlineMs) — a decided verdict is ground truth no
/// matter the budget that produced it — so a re-submission under a
/// different deadline still hits. Feeds the serve result memo's 128-bit key.
[[nodiscard]] std::string canonicalCheckString(const std::string& source,
                                               const check::CheckRequest& req);

}  // namespace pugpara::serve
