// Content-addressed full-check result memo.
//
// The query cache (smt/query_cache.h) reuses *per-query* Sat/Unsat answers,
// which is what makes the unchanged barrier intervals of an edited kernel
// cheap. This memo sits one level up: a byte-identical re-submission of a
// kernel with the same semantics-affecting options short-circuits the whole
// check — parse, VC generation, solving, replay — to a map lookup, which is
// what turns warm-path latency into microseconds.
//
// Keyed by a 128-bit digest of protocol::canonicalCheckString (source text
// plus every option that changes meaning; time budgets excluded). Only
// settled outcomes are remembered — Unknown depends on the budget of the
// run that produced it and is never memoized. Entries store the original
// CheckResult JSON verbatim, so a memo hit streams exactly the bytes the
// solving run produced.
//
// Persistence piggybacks on the same checksummed append-log as the query
// store (one `pqr1` record per entry, the JSON as payload tail), so a
// daemon restarted on the same cache directory serves identical
// re-submissions from disk without re-solving anything.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "check/request.h"
#include "smt/cache_store.h"

namespace pugpara::serve {

struct ResultKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const ResultKey& a, const ResultKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct ResultKeyHash {
  size_t operator()(const ResultKey& k) const {
    return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Digest of the canonical check identity (two seeded FNV streams).
[[nodiscard]] ResultKey resultKey(const std::string& source,
                                  const check::CheckRequest& req);

class ResultMemo {
 public:
  struct Entry {
    std::string outcome;     // check::toString(Outcome) token
    std::string resultJson;  // CheckResult::json() of the solving run
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t loaded = 0;   // entries replayed from disk
    uint64_t corrupt = 0;  // damaged disk records skipped
    bool persistent = false;
    bool writable = false;
  };

  ResultMemo() = default;
  ~ResultMemo();

  /// Optional persistence: replays surviving records, then journals every
  /// fresh entry write-behind. Without this the memo is process-local.
  bool openPersistent(const std::string& path);

  [[nodiscard]] std::optional<Entry> lookup(const ResultKey& key);

  /// Remembers a settled result. Unknown outcomes are dropped (they are a
  /// budget artifact, not ground truth). resultJson must be newline-free
  /// (CheckResult::json() is — the emitter escapes everything).
  void insert(const ResultKey& key, const std::string& outcome,
              const std::string& resultJson);

  void flush();
  void close();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<ResultKey, Entry, ResultKeyHash> entries_;
  smt::AppendLog log_;
  bool persistent_ = false;
  uint64_t hits_ = 0, misses_ = 0, insertions_ = 0, loaded_ = 0;
};

}  // namespace pugpara::serve
