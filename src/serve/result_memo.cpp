#include "serve/result_memo.h"

#include <cinttypes>

#include "serve/protocol.h"

namespace pugpara::serve {

namespace {

uint64_t seededFnv(std::string_view bytes, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Final avalanche (splitmix64) so the two seeds behave as independent
  // hash functions even on short inputs.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

ResultKey resultKey(const std::string& source,
                    const check::CheckRequest& req) {
  const std::string canon = canonicalCheckString(source, req);
  return {seededFnv(canon, 0x9ae16a3b2f90404fULL),
          seededFnv(canon, 0xc2b2ae3d27d4eb4fULL)};
}

ResultMemo::~ResultMemo() { close(); }

bool ResultMemo::openPersistent(const std::string& path) {
  std::lock_guard<std::mutex> guard(mu_);
  const bool ok =
      log_.open(path, "pqr1", [this](std::string_view payload) {
        // Payload: `<hi> <lo> <outcome> <json>` — json is the tail and may
        // contain spaces. Called from open() under mu_; direct map access.
        ResultKey key;
        char outcome[24] = {0};
        int consumed = 0;
        if (std::sscanf(std::string(payload.substr(0, 64)).c_str(),
                        "%16" SCNx64 " %16" SCNx64 " %23s%n", &key.hi,
                        &key.lo, outcome, &consumed) != 3)
          return;
        // Find the json tail: skip the three head tokens + separator.
        size_t pos = 0;
        for (int tok = 0; tok < 3; ++tok) {
          pos = payload.find(' ', pos);
          if (pos == std::string_view::npos) return;
          ++pos;
        }
        Entry e;
        e.outcome = outcome;
        e.resultJson = std::string(payload.substr(pos));
        if (e.resultJson.empty()) return;
        if (entries_.emplace(key, std::move(e)).second) ++loaded_;
      });
  persistent_ = ok;
  return ok;
}

std::optional<ResultMemo::Entry> ResultMemo::lookup(const ResultKey& key) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ResultMemo::insert(const ResultKey& key, const std::string& outcome,
                        const std::string& resultJson) {
  if (outcome == "unknown") return;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    fresh = entries_.emplace(key, Entry{outcome, resultJson}).second;
    if (fresh) ++insertions_;
  }
  if (!fresh || !persistent_) return;
  char head[80];
  std::snprintf(head, sizeof head, "%016" PRIx64 " %016" PRIx64 " %s", key.hi,
                key.lo, outcome.c_str());
  log_.append(std::string(head) + " " + resultJson);
}

void ResultMemo::flush() { log_.flush(); }

void ResultMemo::close() {
  log_.close();
  std::lock_guard<std::mutex> guard(mu_);
  persistent_ = false;
}

ResultMemo::Stats ResultMemo::stats() const {
  const smt::AppendLog::Stats ls = log_.stats();
  std::lock_guard<std::mutex> guard(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.loaded = loaded_;
  s.corrupt = ls.corrupt;
  s.persistent = persistent_;
  s.writable = ls.writable;
  return s;
}

size_t ResultMemo::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return entries_.size();
}

}  // namespace pugpara::serve
