// Minimal JSON reader for the serve wire protocol.
//
// support/json.h is emission-only by design; the daemon is the first place
// the tool *receives* JSON (one request object per line), so this header
// adds the matching reader. Strict RFC 8259 subset: no comments, no
// trailing commas; numbers parse as double (the protocol only carries small
// integers); \uXXXX escapes decode to UTF-8 including surrogate pairs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pugpara::serve::jsonp {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;  // insertion order

  [[nodiscard]] bool isObject() const { return kind == Kind::Object; }
  [[nodiscard]] bool isString() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Convenience accessors with defaults (wrong-typed members fall back).
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string fallback = "") const;
  [[nodiscard]] uint64_t getU64(std::string_view key,
                                uint64_t fallback = 0) const;
  [[nodiscard]] bool getBool(std::string_view key, bool fallback) const;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed). On failure returns false and fills `err`.
bool parse(std::string_view text, Value* out, std::string* err);

}  // namespace pugpara::serve::jsonp
