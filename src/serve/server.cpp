#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>

#include "support/diagnostics.h"
#include "support/json.h"

namespace pugpara::serve {

namespace {
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

std::string ServeStats::json() const {
  std::ostringstream os;
  os << "{\"connections\":" << connections << ",\"requests\":" << requests
     << ",\"checksRun\":" << checksRun << ",\"memoHits\":" << memoHits
     << ",\"shedChecks\":" << shedChecks << ",\"parseErrors\":" << parseErrors
     << ",\"sessionsParsed\":" << sessionsParsed
     << ",\"sessionHits\":" << sessionHits << ",\"queueDepth\":" << queueDepth
     << ",\"queryCache\":{\"hits\":" << queryCache.hits
     << ",\"misses\":" << queryCache.misses
     << ",\"insertions\":" << queryCache.insertions
     << ",\"evictions\":" << queryCache.evictions
     << "},\"resultMemo\":{\"hits\":" << memo.hits
     << ",\"misses\":" << memo.misses << ",\"insertions\":" << memo.insertions
     << ",\"loaded\":" << memo.loaded << ",\"corrupt\":" << memo.corrupt
     << ",\"persistent\":" << (memo.persistent ? "true" : "false")
     << ",\"writable\":" << (memo.writable ? "true" : "false")
     << "},\"queryStore\":{\"loaded\":" << queryStore.loaded
     << ",\"corrupt\":" << queryStore.corrupt
     << ",\"appended\":" << queryStore.appended
     << ",\"writable\":" << (queryStore.writable ? "true" : "false") << "}}";
  return os.str();
}

/// One client connection. Writes from workers and the reader interleave, so
/// every event goes out under the write mutex as one complete line.
struct Server::Conn {
  int fd = -1;
  std::mutex writeMu;
  std::atomic<bool> closed{false};

  void sendLine(const std::string& line) {
    std::lock_guard<std::mutex> guard(writeMu);
    if (closed.load(std::memory_order_acquire)) return;
    size_t off = 0;
    while (off < line.size()) {
      // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon.
      const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        closed.store(true, std::memory_order_release);
        return;
      }
      off += static_cast<size_t>(n);
    }
  }
};

/// One check request in flight: results stream as checks settle, the done
/// event fires when the last one lands, whichever thread that happens on.
struct Server::Group {
  std::string id;
  std::shared_ptr<Conn> conn;
  std::atomic<size_t> remaining{0};
  std::atomic<uint64_t> memoHits{0};
  size_t total = 0;
  Clock::time_point start = Clock::now();
};

struct Server::Job {
  std::shared_ptr<Group> group;
  std::shared_ptr<check::VerificationSession> session;
  std::string source;  // memo key input (the session cache key)
  check::CheckRequest request;
  size_t seq = 0;
};

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err) *err = why;
    for (int fd : listenFds_) ::close(fd);
    listenFds_.clear();
    return false;
  };

  cache_ = std::make_shared<smt::QueryCache>(options_.queryCacheCapacity);
  if (!options_.cacheDir.empty()) {
    if (::mkdir(options_.cacheDir.c_str(), 0755) != 0 && errno != EEXIST)
      return fail("cannot create cache dir '" + options_.cacheDir + "': " +
                  std::strerror(errno));
    const std::string qpath = options_.cacheDir + "/queries.pqc";
    if (!queryStore_.open(qpath, *cache_))
      return fail("cannot open query store '" + qpath + "'");
    const std::string rpath = options_.cacheDir + "/results.pqr";
    if (!memo_.openPersistent(rpath))
      return fail("cannot open result store '" + rpath + "'");
  }

  engine::EngineOptions eopts;
  eopts.jobs = 1;  // the serve pool schedules; the engine just wraps solvers
  eopts.portfolio = options_.portfolio;
  eopts.miniPortfolio = options_.miniPortfolio;
  eopts.defaultDeadlineMs = options_.defaultDeadlineMs;
  eopts.cache = cache_;
  engine_ = std::make_unique<engine::VerificationEngine>(eopts);

  if (!options_.socketPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path))
      return fail("socket path too long: " + options_.socketPath);
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return fail("socket(AF_UNIX) failed");
    ::unlink(options_.socketPath.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      return fail("cannot bind Unix socket '" + options_.socketPath + "': " +
                  std::strerror(errno));
    }
    listenFds_.push_back(fd);
  }
  if (options_.tcpPort != 0 || options_.socketPath.empty()) {
    // TCP is loopback-only; with no Unix path configured an ephemeral port
    // (tcpPort 0) still gives the daemon a listener.
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return fail("socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcpPort);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      return fail("cannot bind 127.0.0.1:" +
                  std::to_string(options_.tcpPort) + ": " +
                  std::strerror(errno));
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    boundTcpPort_ = ntohs(addr.sin_port);
    listenFds_.push_back(fd);
  }

  unsigned jobs = options_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i)
    workers_.emplace_back([this] { workerLoop(); });
  for (int fd : listenFds_)
    acceptThreads_.emplace_back([this, fd] { acceptLoop(fd); });
  return true;
}

void Server::acceptLoop(int listenFd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listenFd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> guard(connsMu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      conns_.push_back(conn);
      connThreads_.emplace_back([this, conn] { readerLoop(conn); });
    }
    std::lock_guard<std::mutex> guard(statsMu_);
    ++stats_.connections;
  }
}

void Server::readerLoop(std::shared_ptr<Conn> conn) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handleLine(conn, line);
    }
  }
  conn->closed.store(true, std::memory_order_release);
}

void Server::handleLine(const std::shared_ptr<Conn>& conn,
                        const std::string& line) {
  Request req;
  std::string err;
  if (!parseRequest(line, options_.defaults, &req, &err)) {
    {
      std::lock_guard<std::mutex> guard(statsMu_);
      ++stats_.parseErrors;
    }
    conn->sendLine(errorEvent(req.id, err));
    return;
  }
  switch (req.op) {
    case Request::Op::Ping:
      conn->sendLine(pongEvent(req.id));
      return;
    case Request::Op::Stats:
      conn->sendLine(statsEvent(req.id, stats().json()));
      return;
    case Request::Op::Shutdown: {
      conn->sendLine(byeEvent(req.id));
      std::lock_guard<std::mutex> guard(waitMu_);
      stopRequested_ = true;
      waitCv_.notify_all();
      return;
    }
    case Request::Op::Check:
      handleCheck(conn, std::move(req));
      return;
  }
}

std::shared_ptr<check::VerificationSession> Server::sessionFor(
    const std::string& source) {
  {
    std::lock_guard<std::mutex> guard(sessionsMu_);
    auto it = sessions_.find(source);
    if (it != sessions_.end()) {
      std::lock_guard<std::mutex> sguard(statsMu_);
      ++stats_.sessionHits;
      return it->second;
    }
  }
  // Parse outside the map lock: a slow parse must not serialize unrelated
  // readers. A racing duplicate parse is possible and harmless.
  auto session = std::make_shared<check::VerificationSession>(source);
  std::lock_guard<std::mutex> guard(sessionsMu_);
  if (sessions_.size() >= 64) sessions_.clear();  // crude but bounded
  sessions_.emplace(source, session);
  std::lock_guard<std::mutex> sguard(statsMu_);
  ++stats_.sessionsParsed;
  return session;
}

void Server::handleCheck(const std::shared_ptr<Conn>& conn, Request req) {
  std::shared_ptr<check::VerificationSession> session;
  try {
    session = sessionFor(req.source);
  } catch (const PugError& e) {
    {
      std::lock_guard<std::mutex> guard(statsMu_);
      ++stats_.parseErrors;
    }
    conn->sendLine(errorEvent(req.id, std::string("front-end: ") + e.what()));
    return;
  }

  // Expand to the concrete check list ("all" mirrors the CLI's --all).
  std::vector<check::CheckRequest> checks;
  auto push = [&](check::CheckKind kind, const std::string& a,
                  const std::string& b = "") {
    check::CheckRequest r;
    r.kind = kind;
    r.kernel = a;
    r.kernel2 = b;
    r.options = req.options;
    r.deadlineMs = req.deadlineMs;
    checks.push_back(std::move(r));
  };
  if (req.kind == "all") {
    for (const auto& k : session->program().kernels) {
      push(check::CheckKind::Races, k->name);
      push(check::CheckKind::Asserts, k->name);
      push(check::CheckKind::Postconditions, k->name);
    }
  } else {
    check::CheckKind kind;
    parseKind(req.kind, &kind);  // validated by parseRequest
    push(kind, req.kernel, req.kernel2);
  }
  if (checks.empty()) {
    conn->sendLine(errorEvent(req.id, "source has no kernels"));
    return;
  }
  {
    std::lock_guard<std::mutex> guard(statsMu_);
    ++stats_.requests;
  }

  auto group = std::make_shared<Group>();
  group->id = req.id;
  group->conn = conn;
  group->total = checks.size();
  group->remaining.store(checks.size(), std::memory_order_release);

  // Memo pass: identical re-submissions stream straight from the map — no
  // queue hop, no solver, microseconds. Only misses compete for capacity.
  std::vector<Job> jobs;
  size_t streamed = 0;
  for (size_t i = 0; i < checks.size(); ++i) {
    const ResultKey key = resultKey(req.source, checks[i]);
    if (auto hit = memo_.lookup(key)) {
      conn->sendLine(resultEvent(req.id, i, /*cached=*/true, hit->resultJson));
      group->memoHits.fetch_add(1, std::memory_order_relaxed);
      ++streamed;
      {
        std::lock_guard<std::mutex> guard(statsMu_);
        ++stats_.memoHits;
      }
      if (group->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        conn->sendLine(doneEvent(req.id, group->total,
                                 group->memoHits.load(), msSince(group->start),
                                 stats().json()));
        return;
      }
      continue;
    }
    Job job;
    job.group = group;
    job.session = session;
    job.source = req.source;
    job.request = checks[i];
    job.seq = i;
    jobs.push_back(std::move(job));
  }

  // Admission: all-or-nothing for the non-memoized remainder.
  {
    std::unique_lock<std::mutex> lk(queueMu_);
    if (queue_.size() + jobs.size() > options_.queueCapacity) {
      const size_t depth = queue_.size();
      lk.unlock();
      {
        std::lock_guard<std::mutex> guard(statsMu_);
        stats_.shedChecks += jobs.size();
      }
      conn->sendLine(overloadedEvent(req.id, jobs.size(), streamed, depth,
                                     options_.queueCapacity));
      return;
    }
    for (Job& j : jobs) queue_.push_back(std::move(j));
  }
  queueCv_.notify_all();
}

void Server::workerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(queueMu_);
      queueCv_.wait(lk, [&] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const check::CheckResult result =
        engine_->run(*job.session, job.request);
    {
      std::lock_guard<std::mutex> guard(statsMu_);
      ++stats_.checksRun;
    }
    finishCheck(job, check::toString(result.report.outcome), result.json(),
                /*cached=*/false);
  }
}

void Server::finishCheck(const Job& job, const std::string& outcome,
                         const std::string& resultJson, bool cached) {
  if (!cached)
    memo_.insert(resultKey(job.source, job.request), outcome, resultJson);
  job.group->conn->sendLine(
      resultEvent(job.group->id, job.seq, cached, resultJson));
  if (job.group->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    job.group->conn->sendLine(
        doneEvent(job.group->id, job.group->total, job.group->memoHits.load(),
                  msSince(job.group->start), stats().json()));
  }
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(waitMu_);
  waitCv_.wait(lk, [&] { return stopRequested_; });
}

bool Server::waitFor(uint32_t ms) {
  std::unique_lock<std::mutex> lk(waitMu_);
  return waitCv_.wait_for(lk, std::chrono::milliseconds(ms),
                          [&] { return stopRequested_; });
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> guard(waitMu_);
    stopRequested_ = true;
    waitCv_.notify_all();
  }
  // Wake workers (queued-but-unstarted checks are dropped — their
  // connections are about to close anyway).
  queueCv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Stop accepting, then unblock every reader.
  for (std::thread& t : acceptThreads_) t.join();
  acceptThreads_.clear();
  for (int fd : listenFds_) ::close(fd);
  listenFds_.clear();
  if (!options_.socketPath.empty()) ::unlink(options_.socketPath.c_str());
  {
    std::lock_guard<std::mutex> guard(connsMu_);
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (std::thread& t : connThreads_) t.join();
  {
    std::lock_guard<std::mutex> guard(connsMu_);
    for (const auto& c : conns_) ::close(c->fd);
    conns_.clear();
    connThreads_.clear();
  }
  // Settle the journals so a restart sees everything this run learned.
  memo_.flush();
  queryStore_.flush();
}

ServeStats Server::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> guard(statsMu_);
    s = stats_;
  }
  {
    std::lock_guard<std::mutex> guard(queueMu_);
    s.queueDepth = queue_.size();
  }
  if (cache_) s.queryCache = cache_->stats();
  s.memo = memo_.stats();
  s.queryStore = queryStore_.stats();
  return s;
}

}  // namespace pugpara::serve
