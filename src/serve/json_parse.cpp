#include "serve/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace pugpara::serve::jsonp {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

std::string Value::getString(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return v && v->kind == Kind::String ? v->str : std::move(fallback);
}

uint64_t Value::getU64(std::string_view key, uint64_t fallback) const {
  const Value* v = find(key);
  if (!v || v->kind != Kind::Number || v->number < 0) return fallback;
  return static_cast<uint64_t>(v->number);
}

bool Value::getBool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v && v->kind == Kind::Bool ? v->boolean : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  bool run(Value* out) {
    skipWs();
    if (!value(out)) return false;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing bytes after value");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (err_) *err_ = why + " at byte " + std::to_string(pos_);
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool expect(char c) {
    if (atEnd() || text_[pos_] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  bool literal(std::string_view word, Value* out, Value&& v) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    *out = std::move(v);
    return true;
  }

  bool value(Value* out) {
    if (atEnd()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        out->kind = Value::Kind::String;
        return string(&out->str);
      }
      case 't': {
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return literal("true", out, std::move(v));
      }
      case 'f': {
        Value v;
        v.kind = Value::Kind::Bool;
        return literal("false", out, std::move(v));
      }
      case 'n': return literal("null", out, Value{});
      default: return number(out);
    }
  }

  bool object(Value* out) {
    if (!expect('{')) return false;
    out->kind = Value::Kind::Object;
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      std::string key;
      if (!string(&key)) return false;
      skipWs();
      if (!expect(':')) return false;
      skipWs();
      Value v;
      if (!value(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (atEnd()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool array(Value* out) {
    if (!expect('[')) return false;
    out->kind = Value::Kind::Array;
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      Value v;
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skipWs();
      if (atEnd()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool hex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape digit");
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void appendUtf8(std::string* s, uint32_t cp) {
    if (cp < 0x80) {
      *s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *s += static_cast<char>(0xc0 | (cp >> 6));
      *s += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      *s += static_cast<char>(0xe0 | (cp >> 12));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      *s += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      *s += static_cast<char>(0xf0 | (cp >> 18));
      *s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      *s += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool string(std::string* out) {
    if (atEnd() || peek() != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (!atEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (atEnd()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          if (!hex4(&cp)) return false;
          if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t lo = 0;
              if (!hex4(&lo)) return false;
              if (lo >= 0xdc00 && lo <= 0xdfff)
                cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
              else
                return fail("unpaired surrogate");
            } else {
              return fail("unpaired surrogate");
            }
          }
          appendUtf8(out, cp);
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(Value* out) {
    const size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                        peek() == '.' || peek() == 'e' || peek() == 'E' ||
                        peek() == '+' || peek() == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("malformed number");
    out->kind = Value::Kind::Number;
    out->number = v;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string* err_;
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* err) {
  return Parser(text, err).run(out);
}

}  // namespace pugpara::serve::jsonp
