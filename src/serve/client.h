// Client side of the serve protocol: a blocking line-oriented socket
// wrapper plus a submit helper that drives one request to its terminal
// event. Used by `pugpara submit`, the serve bench and the smoke tests —
// external clients in any language can speak the protocol with nothing
// more than a socket and a JSON library (see serve/protocol.h).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/json_parse.h"
#include "serve/protocol.h"

namespace pugpara::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      buf_ = std::move(other.buf_);
      other.fd_ = -1;
    }
    return *this;
  }

  bool connectUnix(const std::string& path, std::string* err);
  bool connectTcp(const std::string& host, uint16_t port, std::string* err);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one line (appends '\n' if missing). False on a broken pipe.
  bool sendLine(const std::string& line);

  /// Blocks for the next full line; nullopt on EOF / error.
  std::optional<std::string> readLine();

  void close();

 private:
  int fd_ = -1;
  std::string buf_;
};

/// Everything one request produced, in arrival order.
struct SubmitOutcome {
  /// Parsed `result` events: .second is the embedded CheckResult object.
  std::vector<std::pair<bool, jsonp::Value>> results;  // (cached, result)
  jsonp::Value done;       // the done event (when terminal == "done")
  std::string terminal;    // "done" | "overloaded" | "error" | "eof"
  std::string error;       // message for "error"/"eof"
  size_t memoHits = 0;
  double elapsedMs = 0;

  /// Worst CLI exit code over the results: 0 clean, 1 bug found, 2 unknown,
  /// 3 transport/protocol failure.
  [[nodiscard]] int exitCode() const;
};

/// Sends `req` and pumps events until the request's terminal event.
/// `onEvent` (optional) sees every event as it arrives, parsed and raw —
/// the streaming hook the CLI uses to print results the moment they land.
using EventFn = std::function<void(const jsonp::Value&, const std::string&)>;
SubmitOutcome submit(Client& client, const Request& req,
                     const EventFn& onEvent = nullptr);

}  // namespace pugpara::serve
