#include "serve/protocol.h"

#include <algorithm>
#include <sstream>

#include "serve/json_parse.h"
#include "support/json.h"

namespace pugpara::serve {

namespace {

bool parseMethod(const std::string& m, check::Method* out) {
  if (m == "param" || m == "parameterized") *out = check::Method::Parameterized;
  else if (m == "bughunt" || m == "parameterized-bughunt")
    *out = check::Method::ParameterizedBugHunt;
  else if (m == "nonparam" || m == "non-parameterized")
    *out = check::Method::NonParameterized;
  else if (m == "auto") *out = check::Method::Auto;
  else return false;
  return true;
}

bool parseBackend(const std::string& b, smt::Backend* out) {
  if (b == "z3") *out = smt::Backend::Z3;
  else if (b == "mini") *out = smt::Backend::Mini;
  else return false;
  return true;
}

}  // namespace

bool parseKind(const std::string& kind, check::CheckKind* out) {
  if (kind == "races") *out = check::CheckKind::Races;
  else if (kind == "asserts") *out = check::CheckKind::Asserts;
  else if (kind == "postcond") *out = check::CheckKind::Postconditions;
  else if (kind == "equiv") *out = check::CheckKind::Equivalence;
  else if (kind == "perf") *out = check::CheckKind::Performance;
  else return false;
  return true;
}

bool parseRequest(const std::string& line, const check::CheckOptions& defaults,
                  Request* out, std::string* err) {
  jsonp::Value v;
  if (!jsonp::parse(line, &v, err)) return false;
  if (!v.isObject()) {
    if (err) *err = "request is not a JSON object";
    return false;
  }
  out->id = v.getString("id");
  const std::string op = v.getString("op", "check");
  if (op == "check") out->op = Request::Op::Check;
  else if (op == "ping") out->op = Request::Op::Ping;
  else if (op == "stats") out->op = Request::Op::Stats;
  else if (op == "shutdown") out->op = Request::Op::Shutdown;
  else {
    if (err) *err = "unknown op '" + op + "'";
    return false;
  }
  if (out->op != Request::Op::Check) return true;

  out->source = v.getString("source");
  if (out->source.empty()) {
    if (err) *err = "check request has no source";
    return false;
  }
  out->kind = v.getString("kind", "all");
  check::CheckKind ignored;
  if (out->kind != "all" && !parseKind(out->kind, &ignored)) {
    if (err) *err = "unknown kind '" + out->kind + "'";
    return false;
  }
  out->kernel = v.getString("kernel");
  out->kernel2 = v.getString("kernel2");
  if (out->kind != "all" && out->kernel.empty()) {
    if (err) *err = "kind '" + out->kind + "' requires a kernel";
    return false;
  }
  if (out->kind == "equiv" && out->kernel2.empty()) {
    if (err) *err = "kind 'equiv' requires kernel2";
    return false;
  }
  out->deadlineMs = static_cast<uint32_t>(v.getU64("deadline_ms", 0));

  out->options = defaults;
  if (const jsonp::Value* o = v.find("options")) {
    if (!o->isObject()) {
      if (err) *err = "'options' must be an object";
      return false;
    }
    if (const jsonp::Value* m = o->find("method")) {
      if (!m->isString() || !parseMethod(m->str, &out->options.method)) {
        if (err) *err = "bad options.method";
        return false;
      }
    }
    if (const jsonp::Value* b = o->find("backend")) {
      if (!b->isString() || !parseBackend(b->str, &out->options.backend)) {
        if (err) *err = "bad options.backend";
        return false;
      }
    }
    if (o->find("width"))
      out->options.width = static_cast<uint32_t>(o->getU64("width", 16));
    if (o->find("timeout_ms"))
      out->options.solverTimeoutMs =
          static_cast<uint32_t>(o->getU64("timeout_ms", 60000));
    out->options.prefilter = o->getBool("prefilter", out->options.prefilter);
    out->options.replayCounterexamples =
        o->getBool("replay", out->options.replayCounterexamples);
    out->options.incrementalSolving =
        o->getBool("incremental", out->options.incrementalSolving);
  }
  return true;
}

std::string encodeRequest(const Request& req) {
  std::ostringstream os;
  os << "{\"op\":";
  switch (req.op) {
    case Request::Op::Check: os << "\"check\""; break;
    case Request::Op::Ping: os << "\"ping\""; break;
    case Request::Op::Stats: os << "\"stats\""; break;
    case Request::Op::Shutdown: os << "\"shutdown\""; break;
  }
  os << ",\"id\":" << json::quote(req.id);
  if (req.op == Request::Op::Check) {
    os << ",\"source\":" << json::quote(req.source)
       << ",\"kind\":" << json::quote(req.kind)
       << ",\"kernel\":" << json::quote(req.kernel)
       << ",\"kernel2\":" << json::quote(req.kernel2)
       << ",\"deadline_ms\":" << req.deadlineMs << ",\"options\":{"
       << "\"method\":" << json::quote(toString(req.options.method))
       << ",\"backend\":"
       << (req.options.backend == smt::Backend::Z3 ? "\"z3\"" : "\"mini\"")
       << ",\"width\":" << req.options.width
       << ",\"timeout_ms\":" << req.options.solverTimeoutMs
       << ",\"prefilter\":" << (req.options.prefilter ? "true" : "false")
       << ",\"replay\":"
       << (req.options.replayCounterexamples ? "true" : "false")
       << ",\"incremental\":"
       << (req.options.incrementalSolving ? "true" : "false") << "}";
  }
  os << "}";
  return os.str();
}

std::string resultEvent(const std::string& id, size_t seq, bool cached,
                        const std::string& resultJson) {
  std::ostringstream os;
  os << "{\"id\":" << json::quote(id) << ",\"event\":\"result\",\"seq\":" << seq
     << ",\"cached\":" << (cached ? "true" : "false")
     << ",\"result\":" << resultJson << "}\n";
  return os.str();
}

std::string doneEvent(const std::string& id, size_t checks, size_t memoHits,
                      double elapsedMs, const std::string& cacheStatsJson) {
  std::ostringstream os;
  os << "{\"id\":" << json::quote(id) << ",\"event\":\"done\",\"checks\":"
     << checks << ",\"memoHits\":" << memoHits
     << ",\"elapsedMs\":" << json::number(elapsedMs)
     << ",\"cache\":" << cacheStatsJson << "}\n";
  return os.str();
}

std::string errorEvent(const std::string& id, const std::string& message) {
  return "{\"id\":" + json::quote(id) + ",\"event\":\"error\",\"error\":" +
         json::quote(message) + "}\n";
}

std::string overloadedEvent(const std::string& id, size_t shed,
                            size_t streamed, size_t queueDepth,
                            size_t capacity) {
  std::ostringstream os;
  os << "{\"id\":" << json::quote(id) << ",\"event\":\"overloaded\",\"shed\":"
     << shed << ",\"streamed\":" << streamed << ",\"queued\":" << queueDepth
     << ",\"capacity\":" << capacity << "}\n";
  return os.str();
}

std::string pongEvent(const std::string& id) {
  return "{\"id\":" + json::quote(id) + ",\"event\":\"pong\"}\n";
}

std::string statsEvent(const std::string& id, const std::string& statsJson) {
  return "{\"id\":" + json::quote(id) + ",\"event\":\"stats\",\"stats\":" +
         statsJson + "}\n";
}

std::string byeEvent(const std::string& id) {
  return "{\"id\":" + json::quote(id) + ",\"event\":\"bye\"}\n";
}

std::string canonicalCheckString(const std::string& source,
                                 const check::CheckRequest& req) {
  std::ostringstream os;
  // '\x1f' separators keep adjacent fields from gluing into ambiguity.
  const char sep = '\x1f';
  os << "v1" << sep << source << sep << check::toString(req.kind) << sep
     << req.kernel << sep << req.kernel2 << sep
     << toString(req.options.method) << sep << req.options.width << sep
     << (req.options.backend == smt::Backend::Z3 ? "z3" : "mini") << sep
     << static_cast<int>(req.options.frameMode) << sep
     << req.options.ssaEquations << req.options.incrementalSolving
     << req.options.prefilter << req.options.replayCounterexamples << sep
     << req.options.maxReplayThreads << sep;
  if (req.options.grid)
    os << req.options.grid->gdimX << ',' << req.options.grid->gdimY << ','
       << req.options.grid->bdimX << ',' << req.options.grid->bdimY << ','
       << req.options.grid->bdimZ;
  os << sep;
  // Order-insensitive encoding of the concretization map.
  std::vector<std::pair<std::string, uint64_t>> conc(
      req.options.concretize.begin(), req.options.concretize.end());
  std::sort(conc.begin(), conc.end());
  for (const auto& [k, val] : conc) os << k << '=' << val << ';';
  os << sep << req.options.mini.lbd << req.options.mini.chrono
     << req.options.mini.inprocess << req.options.mini.rewrite << sep
     << req.options.mini.portfolio << sep << req.options.mini.seed;
  return os.str();
}

}  // namespace pugpara::serve
