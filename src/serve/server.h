// `pugpara serve` — the long-running verification daemon.
//
// Keeps one engine process hot across many requests: parsed programs are
// reused through a content-addressed session cache, full check results
// through the result memo, and individual solver queries through the
// LRU-capped query cache — both caches optionally disk-backed under
// --cache-dir so warmth survives restarts.
//
// Threading model:
//   * one accept thread per listener (Unix socket and/or loopback TCP);
//   * one reader thread per connection: parses request lines, answers memo
//     hits inline (microsecond path, no queue hop), admits the rest;
//   * a fixed worker pool drains the bounded check queue, running each
//     check through engine::VerificationEngine::run (per-check deadlines,
//     cancellation, query cache — the same wrapping the batch CLI gets);
//   * results stream back the moment each check settles, serialized per
//     connection by a write mutex. Request order is NOT delivery order —
//     events carry the request id and a seq number instead.
//
// Admission control is a hard bound, not a queue: when a request's
// non-memoized checks don't all fit into the remaining queue capacity the
// whole remainder is shed with an `overloaded` event. Shedding beats
// unbounded queueing — the client knows immediately and can back off,
// retry elsewhere, or drop priority work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "check/session.h"
#include "engine/engine.h"
#include "serve/protocol.h"
#include "serve/result_memo.h"
#include "smt/cache_store.h"

namespace pugpara::serve {

struct ServeOptions {
  /// Unix-domain socket path ("" = no Unix listener). Unlinked on bind and
  /// on shutdown.
  std::string socketPath;
  /// TCP port on 127.0.0.1 (0 = no TCP listener). Loopback only — the
  /// daemon trusts its callers; put a real gateway in front for anything
  /// wider.
  uint16_t tcpPort = 0;

  /// Worker threads draining the check queue. 0 = one per hardware thread.
  unsigned jobs = 0;
  /// Bounded admission: maximum checks queued (not yet picked up by a
  /// worker). Requests whose expansion exceeds the free capacity are shed.
  size_t queueCapacity = 256;

  /// Cache directory ("" = in-memory only). Holds `queries.pqc` (query
  /// cache journal) and `results.pqr` (result memo journal) plus their
  /// .lock files.
  std::string cacheDir;
  /// LRU cap for the in-memory query cache (entries; 0 = unbounded).
  size_t queryCacheCapacity = 1 << 20;

  /// Default CheckOptions a wire request starts from before its own
  /// "options" member is overlaid.
  check::CheckOptions defaults;
  /// Deadline for requests that leave deadline_ms at 0 (0 = none).
  uint32_t defaultDeadlineMs = 0;
  /// Engine extras: cross-backend portfolio / MiniSMT seed portfolio.
  bool portfolio = false;
  unsigned miniPortfolio = 1;
};

struct ServeStats {
  uint64_t connections = 0;
  uint64_t requests = 0;      // check requests parsed OK
  uint64_t checksRun = 0;     // checks solved by workers
  uint64_t memoHits = 0;      // checks answered by the result memo
  uint64_t shedChecks = 0;    // checks rejected by admission control
  uint64_t parseErrors = 0;
  uint64_t sessionsParsed = 0;   // distinct sources parsed
  uint64_t sessionHits = 0;      // source re-submissions that reused a parse
  size_t queueDepth = 0;
  smt::QueryCache::Stats queryCache;
  ResultMemo::Stats memo;
  smt::AppendLog::Stats queryStore;

  [[nodiscard]] std::string json() const;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds listeners, opens the persistent stores, starts the pool. False
  /// (with `err` filled) when a listener or store cannot be set up.
  bool start(std::string* err);

  /// Blocks until stop() is called or a client sends `shutdown`.
  void wait();

  /// Bounded wait; true when shutdown was requested. Lets the CLI poll a
  /// signal flag (signal handlers cannot safely notify the condvar).
  bool waitFor(uint32_t ms);

  /// Orderly shutdown: stop accepting, unblock readers, drain workers,
  /// flush the stores. Idempotent; safe from any thread except a
  /// connection's own reader (the shutdown op instead signals wait()).
  void stop();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  /// Actual TCP port after start() (useful with an ephemeral request).
  [[nodiscard]] uint16_t boundTcpPort() const { return boundTcpPort_; }

 private:
  struct Conn;
  struct Group;
  struct Job;

  void acceptLoop(int listenFd);
  void readerLoop(std::shared_ptr<Conn> conn);
  void handleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  void handleCheck(const std::shared_ptr<Conn>& conn, Request req);
  void workerLoop();
  void finishCheck(const Job& job, const std::string& outcome,
                   const std::string& resultJson, bool cached);
  std::shared_ptr<check::VerificationSession> sessionFor(
      const std::string& source);

  ServeOptions options_;

  // Destruction order matters (reverse of declaration): the engine — and
  // with it every solver that can insert into the cache — dies first; then
  // the store, whose close() deregisters its sink from the cache; the
  // cache itself dies last, after nothing points into it anymore.
  std::shared_ptr<smt::QueryCache> cache_;
  smt::PersistentQueryStore queryStore_;
  ResultMemo memo_;
  std::unique_ptr<engine::VerificationEngine> engine_;

  // Content-addressed parse cache: source text → analyzed session. Bounded
  // crudely (cleared when oversized) — parses are cheap relative to solves;
  // the point is skipping re-parse/re-analysis on the hot resubmit path.
  std::mutex sessionsMu_;
  std::unordered_map<std::string, std::shared_ptr<check::VerificationSession>>
      sessions_;

  // Bounded check queue + worker pool.
  mutable std::mutex queueMu_;
  std::condition_variable queueCv_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;

  // Listeners and connections.
  std::vector<int> listenFds_;
  std::vector<std::thread> acceptThreads_;
  std::mutex connsMu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> connThreads_;
  uint16_t boundTcpPort_ = 0;

  std::atomic<bool> stopping_{false};
  std::mutex waitMu_;
  std::condition_variable waitCv_;
  bool stopRequested_ = false;

  mutable std::mutex statsMu_;
  ServeStats stats_;
};

}  // namespace pugpara::serve
