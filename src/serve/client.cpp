#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace pugpara::serve {

Client::~Client() { close(); }

bool Client::connectUnix(const std::string& path, std::string* err) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err) *err = "socket path too long: " + path;
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (err) *err = "socket(AF_UNIX) failed";
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (err) *err = "cannot connect to '" + path + "': " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::connectTcp(const std::string& host, uint16_t port,
                        std::string* err) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad IPv4 address '" + host + "'";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (err) *err = "socket(AF_INET) failed";
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (err)
      *err = "cannot connect to " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::sendLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string out = line;
  if (out.empty() || out.back() != '\n') out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::readLine() {
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    if (fd_ < 0) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return std::nullopt;
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

int SubmitOutcome::exitCode() const {
  if (terminal != "done") return 3;
  int worst = 0;
  for (const auto& [cached, result] : results) {
    const jsonp::Value* report = result.find("report");
    const std::string outcome =
        report ? report->getString("outcome", "unknown") : "unknown";
    int code = 2;
    if (outcome == "verified" || outcome == "no-bug-found") code = 0;
    else if (outcome == "bug-found") code = 1;
    worst = std::max(worst, code);
  }
  return worst;
}

SubmitOutcome submit(Client& client, const Request& req,
                     const EventFn& onEvent) {
  SubmitOutcome out;
  if (!client.sendLine(encodeRequest(req))) {
    out.terminal = "eof";
    out.error = "send failed";
    return out;
  }
  for (;;) {
    const std::optional<std::string> line = client.readLine();
    if (!line) {
      out.terminal = "eof";
      out.error = "connection closed before terminal event";
      return out;
    }
    jsonp::Value ev;
    std::string err;
    if (!jsonp::parse(*line, &ev, &err)) {
      out.terminal = "error";
      out.error = "unparseable event: " + err;
      return out;
    }
    // Cross-talk guard: multiplexed clients must filter by id themselves;
    // the submit helper drives exactly one request per connection.
    if (!req.id.empty() && ev.getString("id") != req.id) continue;
    if (onEvent) onEvent(ev, *line);
    const std::string event = ev.getString("event");
    if (event == "result") {
      const jsonp::Value* result = ev.find("result");
      if (result)
        out.results.emplace_back(ev.getBool("cached", false), *result);
      continue;
    }
    if (event == "done") {
      out.terminal = "done";
      out.memoHits = ev.getU64("memoHits", 0);
      const jsonp::Value* ms = ev.find("elapsedMs");
      if (ms && ms->kind == jsonp::Value::Kind::Number)
        out.elapsedMs = ms->number;
      out.done = ev;
      return out;
    }
    if (event == "overloaded" || event == "error" || event == "pong" ||
        event == "stats" || event == "bye") {
      out.terminal = event;
      out.error = ev.getString("error");
      out.done = ev;
      return out;
    }
  }
}

}  // namespace pugpara::serve
