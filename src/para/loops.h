// Loop alignment for the parameterized equivalence check (Sec. IV-E).
//
// Typical CUDA optimizations (memory coalescing, bank-conflict elimination)
// preserve loop structure, so the two kernels' barrier-carrying loops can be
// matched pairwise and their bodies compared per-iteration with a shared
// symbolic counter. When the headers differ only in iteration *order* (the
// paper's modulo-vs-strided reduction), alignment still goes through if both
// bodies are commutative-associative accumulations — this is recorded as a
// caveat because iteration-set equality is assumed, not proven.
#pragma once

#include "para/ca_extract.h"

namespace pugpara::para {

enum class HeaderAlignment {
  Identical,    // same init / guard / step after normalization
  Commutative,  // different headers, but both bodies are CA-accumulations
  Failed,
};

/// Compares two loop headers. `kS`/`kT` are the kernels' symbolic counters;
/// the target header is rebased onto the source counter before comparison.
[[nodiscard]] HeaderAlignment alignHeaders(expr::Context& ctx,
                                           const LoopSegment& src,
                                           const LoopSegment& tgt);

/// True when every CA in the loop body has the accumulator shape
/// v[e] = v[e] (op) w with a commutative-associative op — the paper's
/// precondition for reordering iterations.
[[nodiscard]] bool isCommutativeAccumulation(const LoopSegment& loop);

/// Over-approximation of the counter values the loop header can reach.
/// Recognized shapes: doubling from a power-of-two initial value (k *= 2 /
/// k <<= 1) and constant additive steps (k += c). Unrecognized shapes yield
/// `true` (sound for proving; may surface spurious counterexample
/// candidates, which replay filters).
[[nodiscard]] expr::Expr loopReachabilityInvariant(expr::Context& ctx,
                                                   const LoopSegment& loop,
                                                   uint32_t width);

}  // namespace pugpara::para
