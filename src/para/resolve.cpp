#include "para/resolve.h"

#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "expr/subst.h"
#include "expr/walk.h"
#include "support/diagnostics.h"

namespace pugpara::para {

using expr::Expr;
using lang::MemSpace;

const char* toString(FrameMode mode) {
  switch (mode) {
    case FrameMode::MonotoneQe: return "monotone-qe";
    case FrameMode::NativeForall: return "native-forall";
    case FrameMode::BugHunt: return "bug-hunt";
  }
  return "?";
}

Resolver::Resolver(expr::Context& ctx, const KernelSummary& summary,
                   FrameMode mode, MonotoneAnalyzer* mono)
    : ctx_(ctx), sum_(summary), mode_(mode), mono_(mono) {}

Expr Resolver::finalValue(const lang::VarDecl* array, Expr index) {
  auto it = sum_.versions.find(array);
  require(it != sum_.versions.end(),
          "finalValue: array was never seen during extraction");
  return resolveVar(it->second.back(), index, std::nullopt);
}

Expr Resolver::valueOf(Expr stateVar, Expr index) {
  return resolveVar(stateVar, index, std::nullopt);
}

Expr Resolver::valueOfInBlock(Expr stateVar, Expr index, Expr bx, Expr by) {
  return resolveVar(stateVar, index, ReaderBlock{bx, by});
}

Expr Resolver::resolveExpr(Expr e, Expr readerBx, Expr readerBy) {
  return resolveSelects(e, ReaderBlock{readerBx, readerBy});
}

Expr Resolver::resolveVar(Expr stateVar, Expr index,
                          const std::optional<ReaderBlock>& rb) {
  auto prod = sum_.producers.find(stateVar.node());
  if (prod == sum_.producers.end())
    return ctx_.mkSelect(stateVar, index);  // base state: stop here

  // Identical reads share one witness (race freedom: the writer is unique),
  // which also keeps the premise set linear in the number of distinct reads.
  const auto memoKey = std::make_tuple(
      stateVar.node(), index.node(), rb ? rb->bx.node() : nullptr,
      rb ? rb->by.node() : nullptr);
  if (auto it = varMemo_.find(memoKey); it != varMemo_.end())
    return it->second;

  const VersionInfo& info = prod->second;
  const bool isShared = info.array->space == MemSpace::Shared;

  // Else branch first: the state before this interval.
  Expr value = resolveVar(info.prev, index, rb);

  std::vector<Expr> matches;
  for (const ConditionalAssignment& ca : info.cas) {
    // Fresh writer instance (Fig. 2: one per read per CA).
    ThreadInstance inst = ThreadInstance::fresh(
        ctx_, sum_.cfg, sum_.width,
        "inst" + std::to_string(instanceCounter_++));
    ++stats_.instances;

    expr::SubstMap subst = inst.substFrom(sum_.canonical);
    // Thread-local junk values are per-thread: re-freshen per instance.
    for (Expr tl : sum_.threadLocalFresh)
      subst.emplace(tl.node(),
                    ctx_.freshVar(tl.varName() + "_i", tl.sort()));
    Expr domain = inst.domain;
    if (isShared && rb.has_value()) {
      // Writers of a __shared__ array live in the reader's block.
      subst[sum_.canonical.bx.node()] = rb->bx;
      subst[sum_.canonical.by.node()] = rb->by;
      domain = ctx_.mkAnd(
          ctx_.mkAnd(ctx_.mkUlt(inst.tx, sum_.cfg.bdimX),
                     ctx_.mkUlt(inst.ty, sum_.cfg.bdimY)),
          ctx_.mkUlt(inst.tz, sum_.cfg.bdimZ));
    }

    Expr guard = expr::substitute(ca.guard, subst);
    Expr addr = expr::substitute(ca.addr, subst);
    Expr raw = expr::substitute(ca.value, subst);

    // The writer's own reads recurse with the writer's block as reader.
    ReaderBlock writerBlock{isShared && rb.has_value() ? rb->bx : inst.bx,
                            isShared && rb.has_value() ? rb->by : inst.by};
    Expr written = resolveSelects(raw, writerBlock);

    Expr match = ctx_.mkAnd(domain, ctx_.mkAnd(guard, ctx_.mkEq(addr, index)));
    matches.push_back(match);
    value = ctx_.mkIte(match, written, value);
  }

  // Premise: some writer matched, or (exact modes) no thread writes here.
  Expr someMatch = ctx_.mkOr(matches);
  if (mode_ == FrameMode::BugHunt) {
    premises_.push_back(someMatch);
  } else {
    Expr noWriter = ctx_.top();
    for (const ConditionalAssignment& ca : info.cas) {
      Expr guard = ca.guard;
      Expr addr = ca.addr;
      if (isShared && rb.has_value()) {
        expr::SubstMap blockSubst;
        blockSubst.emplace(sum_.canonical.bx.node(), rb->bx);
        blockSubst.emplace(sum_.canonical.by.node(), rb->by);
        guard = expr::substitute(guard, blockSubst);
        addr = expr::substitute(addr, blockSubst);
      }
      noWriter = ctx_.mkAnd(noWriter, frameCertificate(ca, guard, addr, index));
    }
    premises_.push_back(ctx_.mkOr(someMatch, noWriter));
  }
  varMemo_.emplace(memoKey, value);
  return value;
}

Expr Resolver::frameCertificate(const ConditionalAssignment& ca, Expr guard,
                                Expr addr, Expr index) {
  const std::vector<Expr> coords = sum_.canonical.vars();
  const std::vector<Expr> extents = {sum_.cfg.bdimX, sum_.cfg.bdimY,
                                     sum_.cfg.bdimZ, sum_.cfg.gdimX,
                                     sum_.cfg.gdimY};

  if (mode_ == FrameMode::MonotoneQe) {
    // Which thread coordinates does the CA actually depend on?
    std::set<size_t> used;
    for (Expr part : {guard, addr})
      for (Expr v : expr::freeVars(part))
        for (size_t i = 0; i < coords.size(); ++i)
          if (v == coords[i]) used.insert(i);
    if (used.empty()) {
      // Thread-independent write: the frame needs no quantifier at all.
      ++stats_.uniformCerts;
      return ctx_.mkNot(ctx_.mkAnd(guard, ctx_.mkEq(addr, index)));
    }
    if (used.size() == 1 && mono_ != nullptr) {
      const size_t axis = *used.begin();
      auto cert =
          mono_->certificate(guard, addr, coords[axis], extents[axis], index);
      if (cert.has_value()) {
        ++stats_.qeCerts;
        return *cert;
      }
    }
  }

  // Native quantified premise: ∀ writer coords (and its junk values):
  // the writer does not hit `index`.
  ++stats_.forallCerts;
  ThreadInstance bound = ThreadInstance::fresh(
      ctx_, sum_.cfg, sum_.width,
      "fa" + std::to_string(instanceCounter_++));
  expr::SubstMap subst = bound.substFrom(sum_.canonical);
  std::vector<Expr> boundVars = bound.vars();
  for (Expr tl : sum_.threadLocalFresh) {
    Expr b = ctx_.freshVar(tl.varName() + "_fa", tl.sort());
    subst.emplace(tl.node(), b);
    boundVars.push_back(b);
  }
  Expr body = ctx_.mkNot(ctx_.mkAnd(
      bound.domain, ctx_.mkAnd(expr::substitute(guard, subst),
                               ctx_.mkEq(expr::substitute(addr, subst),
                                         index))));
  (void)ca;
  return ctx_.mkForall(boundVars, body);
}

Expr Resolver::resolveSelects(Expr e, const std::optional<ReaderBlock>& rb) {
  const auto key = std::make_tuple(
      e.node(), rb ? rb->bx.node() : nullptr, rb ? rb->by.node() : nullptr);
  if (auto it = selectMemo_.find(key); it != selectMemo_.end())
    return it->second;
  Expr result;
  switch (e.kind()) {
    case expr::Kind::Select: {
      Expr arr = e.kid(0);
      Expr idx = resolveSelects(e.kid(1), rb);
      if (arr.isVar() && sum_.producers.contains(arr.node()))
        result = resolveVar(arr, idx, rb);
      else
        result = ctx_.mkSelect(resolveSelects(arr, rb), idx);
      break;
    }
    case expr::Kind::Var:
    case expr::Kind::BoolConst:
    case expr::Kind::BvConst:
      result = e;
      break;
    default: {
      std::vector<Expr> kids;
      kids.reserve(e.arity());
      bool changed = false;
      for (size_t i = 0; i < e.arity(); ++i) {
        Expr k = resolveSelects(e.kid(i), rb);
        changed |= (k != e.kid(i));
        kids.push_back(k);
      }
      result = changed ? expr::rebuildWithKids(e, kids) : e;
      break;
    }
  }
  selectMemo_.emplace(key, result);
  return result;
}

}  // namespace pugpara::para
