#include "para/thread_dim.h"

#include "expr/subst.h"
#include "support/diagnostics.h"

namespace pugpara::para {

using expr::Expr;
using lang::BuiltinVar;

SymbolicConfig SymbolicConfig::create(expr::Context& ctx,
                                      const encode::EncodeOptions& options) {
  const uint32_t w = options.width;
  auto mk = [&](const char* key, const char* name) {
    if (auto it = options.concretize.find(key); it != options.concretize.end())
      return ctx.bvVal(it->second, w);
    return ctx.var(name, expr::Sort::bv(w));
  };
  SymbolicConfig cfg;
  cfg.bdimX = mk("bdim.x", "cfg_bdimX");
  cfg.bdimY = mk("bdim.y", "cfg_bdimY");
  cfg.bdimZ = mk("bdim.z", "cfg_bdimZ");
  cfg.gdimX = mk("gdim.x", "cfg_gdimX");
  cfg.gdimY = mk("gdim.y", "cfg_gdimY");
  Expr one = ctx.bvVal(1, w);
  cfg.constraints = ctx.mkAnd(
      ctx.mkAnd(ctx.mkUle(one, cfg.bdimX), ctx.mkUle(one, cfg.bdimY)),
      ctx.mkAnd(ctx.mkAnd(ctx.mkUle(one, cfg.bdimZ), ctx.mkUle(one, cfg.gdimX)),
                ctx.mkUle(one, cfg.gdimY)));

  // Valid-configuration axiom: the grid extents gdim.* x bdim.* are real
  // CUDA launch dimensions and never wrap at the modeling width. Without
  // this, an 8-bit encoding admits phantom configurations (e.g. 128 blocks
  // of 4 threads "covering" a width-0 matrix) that no GPU can launch —
  // the paper's "valid configurations" assumption. Checked exactly via
  // double-width products.
  if (2 * w <= 64) {
    auto noOverflow = [&](Expr a, Expr b) {
      Expr wideProd = ctx.mkMul(ctx.mkZeroExt(a, w), ctx.mkZeroExt(b, w));
      return ctx.mkUlt(wideProd, ctx.bvVal(uint64_t{1} << w, 2 * w));
    };
    cfg.constraints = ctx.mkAnd(
        cfg.constraints,
        ctx.mkAnd(noOverflow(cfg.gdimX, cfg.bdimX),
                  noOverflow(cfg.gdimY, cfg.bdimY)));
  }
  return cfg;
}

Expr SymbolicConfig::dim(BuiltinVar b) const {
  switch (b) {
    case BuiltinVar::BdimX: return bdimX;
    case BuiltinVar::BdimY: return bdimY;
    case BuiltinVar::BdimZ: return bdimZ;
    case BuiltinVar::GdimX: return gdimX;
    case BuiltinVar::GdimY: return gdimY;
    default:
      throw PugError("SymbolicConfig::dim: not a configuration builtin");
  }
}

ThreadInstance ThreadInstance::fresh(expr::Context& ctx,
                                     const SymbolicConfig& cfg, uint32_t width,
                                     const std::string& hint) {
  expr::Sort bv = expr::Sort::bv(width);
  ThreadInstance t;
  t.tx = ctx.freshVar(hint + "_tx", bv);
  t.ty = ctx.freshVar(hint + "_ty", bv);
  t.tz = ctx.freshVar(hint + "_tz", bv);
  t.bx = ctx.freshVar(hint + "_bx", bv);
  t.by = ctx.freshVar(hint + "_by", bv);
  t.domain = ctx.mkAnd(
      ctx.mkAnd(ctx.mkUlt(t.tx, cfg.bdimX), ctx.mkUlt(t.ty, cfg.bdimY)),
      ctx.mkAnd(ctx.mkAnd(ctx.mkUlt(t.tz, cfg.bdimZ),
                          ctx.mkUlt(t.bx, cfg.gdimX)),
                ctx.mkUlt(t.by, cfg.gdimY)));
  return t;
}

Expr ThreadInstance::coord(BuiltinVar b) const {
  switch (b) {
    case BuiltinVar::TidX: return tx;
    case BuiltinVar::TidY: return ty;
    case BuiltinVar::TidZ: return tz;
    case BuiltinVar::BidX: return bx;
    case BuiltinVar::BidY: return by;
    default:
      throw PugError("ThreadInstance::coord: not a thread builtin");
  }
}

expr::SubstMap ThreadInstance::substFrom(const ThreadInstance& c) const {
  expr::SubstMap m;
  m.emplace(c.tx.node(), tx);
  m.emplace(c.ty.node(), ty);
  m.emplace(c.tz.node(), tz);
  m.emplace(c.bx.node(), bx);
  m.emplace(c.by.node(), by);
  return m;
}

std::vector<Expr> ThreadInstance::vars() const { return {tx, ty, tz, bx, by}; }

Expr ThreadInstance::distinctFrom(const ThreadInstance& o) const {
  expr::Context& ctx = tx.ctx();
  return ctx.mkOr(
      ctx.mkOr(ctx.mkNe(tx, o.tx), ctx.mkNe(ty, o.ty)),
      ctx.mkOr(ctx.mkNe(tz, o.tz),
               ctx.mkOr(ctx.mkNe(bx, o.bx), ctx.mkNe(by, o.by))));
}

}  // namespace pugpara::para
