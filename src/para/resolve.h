// Backward value resolution (paper Sec. IV-A/B/C): the value of an array
// cell is tracked backwards through the barrier intervals. Each interval's
// CAs fold into one nested-ite per read (Sec. IV-C), every CA match is
// instantiated with a FRESH thread instance (Fig. 2), and the "no thread
// wrote this cell" premise is handled per FrameMode:
//
//  * MonotoneQe   — quantifier-free certificates when the monotonicity
//                   analysis applies (Sec. IV-D); per-CA fallback to a
//                   native quantifier.
//  * NativeForall — a genuine ∀ premise handed to Z3 (which the paper's
//                   generation of solvers could not digest; ours mostly can).
//  * BugHunt      — the premise "some writer matched" is *assumed*
//                   (Sec. IV-D "Fast Bug Hunting"): any SAT answer under
//                   these premises is a real counterexample candidate, but
//                   cells nobody wrote are not explored (under-approximate).
//
// Exactness: in MonotoneQe / NativeForall mode the generated premises make
// every solver model correspond to a real execution, so Unsat proves the
// property for ANY number of threads and Sat yields a genuine witness.
#pragma once

#include <map>
#include <optional>
#include <tuple>

#include "para/ca_extract.h"
#include "para/monotone.h"

namespace pugpara::para {

enum class FrameMode { MonotoneQe, NativeForall, BugHunt };

[[nodiscard]] const char* toString(FrameMode mode);

struct ResolveStats {
  size_t instances = 0;    // fresh thread instances created
  size_t qeCerts = 0;      // frames discharged by monotone QE
  size_t forallCerts = 0;  // frames requiring a native quantifier
  size_t uniformCerts = 0; // thread-independent frames (trivially QF)
};

class Resolver {
 public:
  /// `mono` may be null (then MonotoneQe degrades to NativeForall frames).
  Resolver(expr::Context& ctx, const KernelSummary& summary, FrameMode mode,
           MonotoneAnalyzer* mono);

  /// Value of `array`'s FINAL state at `index`.
  [[nodiscard]] expr::Expr finalValue(const lang::VarDecl* array,
                                      expr::Expr index);

  /// Value of the state held in version variable `stateVar` at `index`
  /// (used by the loop-aligned path to resolve within one interval range).
  [[nodiscard]] expr::Expr valueOf(expr::Expr stateVar, expr::Expr index);

  /// Same, but scoped to the block (bx, by): writers of __shared__ arrays
  /// are constrained to that block. Required whenever the observed state is
  /// per-block (shared-memory segment comparisons).
  [[nodiscard]] expr::Expr valueOfInBlock(expr::Expr stateVar,
                                          expr::Expr index, expr::Expr bx,
                                          expr::Expr by);

  /// Resolves every select-on-version-variable inside `e` (used for assert
  /// conditions and postconditions, which may read arrays mid-kernel). The
  /// reading thread's block coordinates scope __shared__ accesses.
  [[nodiscard]] expr::Expr resolveExpr(expr::Expr e, expr::Expr readerBx,
                                       expr::Expr readerBy);

  /// Premises to assert alongside the goal (witness axioms or, in BugHunt
  /// mode, the required matches).
  [[nodiscard]] const std::vector<expr::Expr>& premises() const {
    return premises_;
  }
  [[nodiscard]] const ResolveStats& stats() const { return stats_; }

 private:
  struct ReaderBlock {
    expr::Expr bx, by;
  };

  [[nodiscard]] expr::Expr resolveVar(expr::Expr stateVar, expr::Expr index,
                                      const std::optional<ReaderBlock>& rb);
  [[nodiscard]] expr::Expr resolveSelects(expr::Expr e,
                                          const std::optional<ReaderBlock>& rb);
  [[nodiscard]] expr::Expr frameCertificate(const ConditionalAssignment& ca,
                                            expr::Expr guard, expr::Expr addr,
                                            expr::Expr index);

  expr::Context& ctx_;
  const KernelSummary& sum_;
  FrameMode mode_;
  MonotoneAnalyzer* mono_;
  std::vector<expr::Expr> premises_;
  ResolveStats stats_;
  uint64_t instanceCounter_ = 0;

  using MemoKey = std::tuple<const expr::Node*, const expr::Node*,
                             const expr::Node*, const expr::Node*>;
  std::map<MemoKey, expr::Expr> varMemo_;
  using SelectKey =
      std::tuple<const expr::Node*, const expr::Node*, const expr::Node*>;
  std::map<SelectKey, expr::Expr> selectMemo_;
};

}  // namespace pugpara::para
