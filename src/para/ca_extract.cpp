#include "para/ca_extract.h"

#include <sstream>

#include "expr/subst.h"
#include "expr/walk.h"
#include "lang/sema.h"
#include "support/diagnostics.h"

namespace pugpara::para {

namespace {

using expr::Expr;
using lang::BuiltinVar;
using lang::MemSpace;
using lang::Stmt;
using lang::VarDecl;

bool containsBarrier(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::Barrier: return true;
    case Stmt::Kind::If:
      return containsBarrier(*s.thenStmt) ||
             (s.elseStmt && containsBarrier(*s.elseStmt));
    case Stmt::Kind::For:
    case Stmt::Kind::While:
      return containsBarrier(*s.body);
    case Stmt::Kind::Block:
      for (const auto& st : s.stmts)
        if (containsBarrier(*st)) return true;
      return false;
    default:
      return false;
  }
}

class CaExtractor {
 public:
  CaExtractor(expr::Context& ctx, const lang::Kernel& kernel,
              const SymbolicConfig& cfg, const encode::EncodeOptions& opt,
              std::string prefix)
      : ctx_(ctx), kernel_(kernel), opt_(opt), prefix_(std::move(prefix)) {
    out_.kernel = &kernel;
    out_.width = opt.width;
    out_.cfg = cfg;
    out_.canonical =
        ThreadInstance::fresh(ctx, cfg, opt.width, prefix_ + "_s");
    out_.assumptions = ctx.mkAnd(cfg.constraints, out_.canonical.domain);
    active_ = ctx.top();
    effectiveGuard_ = ctx.top();
  }

  KernelSummary run() {
    setupParams();
    walk(*kernel_.body, ctx_.top());
    closeBi();
    closeSegment();
    return std::move(out_);
  }

 private:
  [[nodiscard]] expr::Sort bvSort() const { return expr::Sort::bv(opt_.width); }
  [[nodiscard]] expr::Sort arraySort() const {
    return expr::Sort::array(opt_.width, opt_.width);
  }

  void setupParams() {
    size_t arrPos = 0, sclPos = 0;
    for (const auto& p : kernel_.params) {
      if (p->type.isPointer) {
        Expr a = ctx_.var("pp_arr" + std::to_string(arrPos++), arraySort());
        out_.arrayParams.push_back(p.get());
        out_.inputArrays.push_back(a);
        out_.versions[p.get()] = {a};
      } else {
        Expr v;
        if (auto c = opt_.concretize.find(p->name);
            c != opt_.concretize.end()) {
          v = ctx_.bvVal(c->second, opt_.width);
        } else {
          v = ctx_.var("pp_scl" + std::to_string(sclPos), bvSort());
        }
        ++sclPos;
        out_.scalarParams.push_back(p.get());
        out_.scalarInputs.push_back(v);
        params_[p.get()] = v;
      }
    }
  }

  /// The state of `A` before the barrier interval being built.
  Expr currentState(const VarDecl* A) {
    auto it = out_.versions.find(A);
    if (it == out_.versions.end()) {
      // First touch of a __shared__ array: unconstrained initial state.
      Expr v = ctx_.freshVar(prefix_ + "_" + A->name + "_v", arraySort());
      out_.versions[A] = {v};
      return v;
    }
    return it->second.back();
  }

  void closeBi() {
    // Advance every written array to a fresh version variable; untouched
    // arrays keep their variable (the resolver starts at the earliest index
    // a variable appears at).
    if (bi_.cas.empty() && bi_.reads.empty()) {
      // Empty interval (e.g. trailing barrier): nothing to record.
      bi_ = BiSummary{};
      overlays_.clear();
      return;
    }
    for (auto& [array, cas] : bi_.cas) {
      Expr next = ctx_.freshVar(prefix_ + "_" + array->name + "_v",
                                arraySort());
      out_.producers.emplace(
          next.node(), VersionInfo{array, cas, out_.versions[array].back()});
      out_.versions[array].push_back(next);
    }
    for (auto& [array, versions] : out_.versions) {
      if (!bi_.cas.contains(array)) versions.push_back(versions.back());
    }
    segmentBis_.push_back(std::move(bi_));
    bi_ = BiSummary{};
    overlays_.clear();
  }

  void closeSegment() {
    Segment seg;
    seg.bis = std::move(segmentBis_);
    segmentBis_.clear();
    fillBoundary(seg);
    out_.segments.push_back(std::move(seg));
  }

  /// Records every array's entry/exit state for the segment being closed
  /// and advances the entry snapshot.
  void fillBoundary(Segment& seg) {
    for (const auto& [array, versions] : out_.versions) {
      Expr start = segStart_.contains(array) ? segStart_.at(array)
                                             : versions.front();
      Expr end = versions.back();
      seg.startState[array] = start;
      seg.endState[array] = end;
      if (start != end) seg.writtenArrays.push_back(array);
      segStart_[array] = end;
    }
  }

  [[nodiscard]] encode::Translator makeTranslator() {
    encode::EnvCallbacks cbs;
    cbs.builtin = [this](BuiltinVar b) {
      switch (b) {
        case BuiltinVar::TidX:
        case BuiltinVar::TidY:
        case BuiltinVar::TidZ:
        case BuiltinVar::BidX:
        case BuiltinVar::BidY:
          return out_.canonical.coord(b);
        default:
          return out_.cfg.dim(b);
      }
    };
    cbs.readVar = [this](const VarDecl* d) { return readVar(d); };
    cbs.readArray = [this](const VarDecl* d, Expr idx) {
      return readArray(d, idx);
    };
    return encode::Translator(ctx_, opt_, std::move(cbs));
  }

  Expr readVar(const VarDecl* d) {
    if (d->space == MemSpace::Param) return params_.at(d);
    auto it = privates_.find(d);
    if (it != privates_.end()) return it->second;
    Expr fresh = ctx_.freshVar(prefix_ + "_" + d->name, bvSort());
    privates_[d] = fresh;
    out_.threadLocalFresh.push_back(fresh);
    return fresh;
  }

  Expr readArray(const VarDecl* d, Expr idx) {
    // Record the read (for race / coverage analysis)...
    bi_.reads.push_back({effectiveGuard_, d, idx, curLoc_});
    // ... and resolve through this thread's own earlier writes in this
    // interval (a thread always sees its own stores; cross-thread intra-BI
    // visibility would be a race).
    Expr value = ctx_.mkSelect(currentState(d), idx);
    auto ov = overlays_.find(d);
    if (ov != overlays_.end()) {
      for (const auto& w : ov->second)  // oldest..newest; newest wins
        value = ctx_.mkIte(ctx_.mkAnd(w.guard, ctx_.mkEq(idx, w.addr)),
                           w.value, value);
    }
    return value;
  }

  void writeArray(const VarDecl* d, Expr guard, Expr addr, Expr value,
                  SourceLoc loc) {
    (void)currentState(d);  // make sure version 0 exists
    bi_.cas[d].push_back({guard, addr, value, loc});
    overlays_[d].push_back({guard, addr, value, loc});
  }

  void walk(const Stmt& s, Expr guard) {
    effectiveGuard_ = ctx_.mkAnd(guard, active_);
    curLoc_ = s.loc;
    encode::Translator tr = makeTranslator();
    switch (s.kind) {
      case Stmt::Kind::Decl: {
        const VarDecl* d = s.decl.get();
        if (d->space == MemSpace::Shared) return;
        if (d->init) privates_[d] = tr.toBv(*d->init);
        return;
      }
      case Stmt::Kind::Assign: {
        Expr g = ctx_.mkAnd(guard, active_);
        Expr value = tr.toBv(*s.rhs);
        if (s.lhs->kind == lang::Expr::Kind::VarRef) {
          const VarDecl* d = s.lhs->decl;
          if (s.isCompound) value = compound(s, readVar(d), value);
          privates_[d] = ctx_.mkIte(g, value, readVar(d));
          return;
        }
        const VarDecl* d = s.lhs->decl;
        Expr idx = tr.flatIndex(*s.lhs);
        if (s.isCompound) {
          // Re-read through the overlay so `v[e] op= x` sees prior stores.
          effectiveGuard_ = g;
          Expr old = readArray(d, idx);
          value = compound(s, old, value);
        }
        writeArray(d, g, idx, value, s.loc);
        return;
      }
      case Stmt::Kind::If: {
        Expr c = tr.toBool(*s.cond);
        if (containsBarrier(s))
          throw PugError(
              "parameterized encoding: barrier under a condition is not "
              "supported (non-uniform barrier)");
        if (c.isTrue()) {
          walk(*s.thenStmt, guard);
        } else if (c.isFalse()) {
          if (s.elseStmt) walk(*s.elseStmt, guard);
        } else {
          walk(*s.thenStmt, ctx_.mkAnd(guard, c));
          if (s.elseStmt) walk(*s.elseStmt, ctx_.mkAnd(guard, ctx_.mkNot(c)));
        }
        return;
      }
      case Stmt::Kind::For:
        if (containsBarrier(s)) {
          extractLoopSegment(s, guard);
          return;
        }
        unrollLocally(s, guard);
        return;
      case Stmt::Kind::While:
        if (containsBarrier(s))
          throw PugError("parameterized encoding: barrier inside while loop "
                         "is not supported");
        unrollLocally(s, guard);
        return;
      case Stmt::Kind::Block:
        for (const auto& st : s.stmts) walk(*st, guard);
        return;
      case Stmt::Kind::Barrier:
        closeBi();
        return;
      case Stmt::Kind::Return:
        active_ = ctx_.mkAnd(active_, ctx_.mkNot(ctx_.mkAnd(guard, active_)));
        return;
      case Stmt::Kind::Assert:
        out_.asserts.push_back(
            {ctx_.mkAnd(guard, active_), tr.toBool(*s.cond), s.loc});
        return;
      case Stmt::Kind::Assume: {
        Expr cond = tr.toBool(*s.cond);
        // Uniform assumptions constrain the configuration; per-thread ones
        // are attached as implications over the canonical thread.
        out_.assumptions = ctx_.mkAnd(
            out_.assumptions,
            ctx_.mkImplies(ctx_.mkAnd(guard, active_), cond));
        return;
      }
      case Stmt::Kind::Postcond:
        out_.postconds.push_back(&s);
        return;
    }
  }

  /// Unrolls a barrier-free loop; the trip structure must fold to constants
  /// (typical case: bounds over concretized inputs or per-thread constants).
  void unrollLocally(const Stmt& s, Expr guard) {
    if (s.kind == Stmt::Kind::For && s.init) walk(*s.init, guard);
    const lang::Expr* cond =
        s.kind == Stmt::Kind::For ? s.cond.get() : s.cond.get();
    for (uint32_t iter = 0;; ++iter) {
      if (iter > opt_.maxUnroll)
        throw PugError("parameterized encoding: loop unrolling exceeded the "
                       "configured bound");
      if (cond) {
        Expr c = makeTranslator().toBool(*cond);
        if (!c.isConst())
          throw PugError(
              "parameterized encoding: loop bound does not fold; concretize "
              "the configuration or inputs it reads (+C)");
        if (c.isFalse()) break;
      }
      walk(*s.body, guard);
      if (s.kind == Stmt::Kind::For && s.step) walk(*s.step, guard);
      if (!cond) break;
    }
  }

  /// A barrier-carrying loop becomes a LoopSegment with a symbolic counter
  /// (consumed only by the loop-aligned equivalence path, Sec. IV-E).
  void extractLoopSegment(const Stmt& s, Expr guard) {
    require(guard.isTrue() && active_.isTrue(),
            "parameterized encoding: barrier-carrying loop under divergent "
            "control flow");
    require(!inLoopBody_,
            "parameterized encoding: nested barrier-carrying loops are not "
            "supported (concretize the configuration instead)");
    inLoopBody_ = true;
    closeBi();
    closeSegment();

    LoopSegment loop;
    encode::Translator tr = makeTranslator();

    // Counter identification mirrors the SSA encoder's rules.
    if (s.init && s.init->kind == Stmt::Kind::Decl) {
      loop.counter = s.init->decl.get();
      require(loop.counter->init != nullptr,
              "barrier-carrying loop needs an initialized counter");
      loop.initValue = tr.toBv(*loop.counter->init);
    } else if (s.init && s.init->kind == Stmt::Kind::Assign &&
               s.init->lhs->kind == lang::Expr::Kind::VarRef) {
      loop.counter = s.init->lhs->decl;
      loop.initValue = tr.toBv(*s.init->rhs);
    } else {
      throw PugError("unsupported barrier-carrying loop initializer");
    }
    require(s.cond != nullptr && s.step != nullptr,
            "barrier-carrying loop needs a condition and a step");

    loop.k = ctx_.freshVar(prefix_ + "_k", bvSort());
    privates_[loop.counter] = loop.k;
    loop.guard = makeTranslator().toBool(*s.cond);

    // The loop body runs against fresh "iteration input" states; give every
    // known array a fresh boundary version.
    for (auto& [array, versions] : out_.versions) {
      versions.push_back(
          ctx_.freshVar(prefix_ + "_" + array->name + "_loopin", arraySort()));
      segStart_[array] = versions.back();
    }

    // Extract the body intervals into the loop segment.
    auto savedSegment = std::move(segmentBis_);
    segmentBis_.clear();
    walk(*s.body, ctx_.top());
    closeBi();
    loop.bodyBis = std::move(segmentBis_);
    segmentBis_ = std::move(savedSegment);

    // Step: counter value after one iteration, as a function of k.
    require(s.step->kind == Stmt::Kind::Assign &&
                s.step->lhs->kind == lang::Expr::Kind::VarRef &&
                s.step->lhs->decl == loop.counter,
            "barrier-carrying loop must step its own counter");
    {
      encode::Translator str = makeTranslator();
      Expr rhs = str.toBv(*s.step->rhs);
      loop.stepNext =
          s.step->isCompound ? compound(*s.step, loop.k, rhs) : rhs;
    }

    Segment seg;
    seg.loop = std::move(loop);
    fillBoundary(seg);

    // After the loop the state is again unknown parametrically.
    for (auto& [array, versions] : out_.versions) {
      versions.push_back(
          ctx_.freshVar(prefix_ + "_" + array->name + "_loopout",
                        arraySort()));
      segStart_[array] = versions.back();
    }
    privates_.erase(seg.loop->counter);
    out_.segments.push_back(std::move(seg));
    inLoopBody_ = false;
  }

  Expr compound(const Stmt& s, Expr old, Expr rhs) {
    const bool uns =
        lang::exprIsUnsigned(*s.lhs) || lang::exprIsUnsigned(*s.rhs);
    switch (s.compoundOp) {
      case lang::BinOp::Add: return ctx_.mkAdd(old, rhs);
      case lang::BinOp::Sub: return ctx_.mkSub(old, rhs);
      case lang::BinOp::Mul: return ctx_.mkMul(old, rhs);
      case lang::BinOp::Div:
        return uns ? ctx_.mkUDiv(old, rhs) : ctx_.mkSDiv(old, rhs);
      case lang::BinOp::Rem:
        return uns ? ctx_.mkURem(old, rhs) : ctx_.mkSRem(old, rhs);
      case lang::BinOp::BitAnd: return ctx_.mkBvAnd(old, rhs);
      case lang::BinOp::BitOr: return ctx_.mkBvOr(old, rhs);
      case lang::BinOp::BitXor: return ctx_.mkBvXor(old, rhs);
      case lang::BinOp::Shl: return ctx_.mkShl(old, rhs);
      case lang::BinOp::Shr:
        return uns ? ctx_.mkLShr(old, rhs) : ctx_.mkAShr(old, rhs);
      default:
        throw PugError("unsupported compound assignment operator");
    }
  }

  expr::Context& ctx_;
  const lang::Kernel& kernel_;
  const encode::EncodeOptions& opt_;
  std::string prefix_;
  KernelSummary out_;

  std::unordered_map<const VarDecl*, Expr> params_;
  std::unordered_map<const VarDecl*, Expr> privates_;
  std::unordered_map<const VarDecl*, std::vector<ConditionalAssignment>>
      overlays_;
  Expr active_ = expr::Expr();
  Expr effectiveGuard_ = expr::Expr();
  SourceLoc curLoc_;

  BiSummary bi_;
  std::vector<BiSummary> segmentBis_;
  std::unordered_map<const VarDecl*, Expr> segStart_;
  bool inLoopBody_ = false;
};

}  // namespace

std::vector<const BiSummary*> KernelSummary::plainBis() const {
  std::vector<const BiSummary*> out;
  for (const auto& seg : segments) {
    require(!seg.loop.has_value(),
            "plainBis: summary contains a barrier-carrying loop; use the "
            "loop-aligned equivalence path");
    for (const auto& bi : seg.bis) out.push_back(&bi);
  }
  return out;
}

size_t KernelSummary::biCount() const {
  size_t n = 0;
  for (const auto& seg : segments) n += seg.bis.size();
  return n;
}

KernelSummary extractSummary(expr::Context& ctx, const lang::Kernel& kernel,
                             const SymbolicConfig& cfg,
                             const encode::EncodeOptions& options,
                             const std::string& prefix) {
  return CaExtractor(ctx, kernel, cfg, options, prefix).run();
}

}  // namespace pugpara::para
