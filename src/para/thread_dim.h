// Symbolic grid configuration and parametric thread variables for the
// parameterized encoding (paper Sec. IV): one arbitrary thread `s` is
// modelled by five coordinate variables with domain constraints
// s.tid.* < bdim.* and s.bid.* < gdim.*, over a fully symbolic
// configuration (bdim / gdim are themselves variables unless concretized).
#pragma once

#include <string>
#include <vector>

#include "encode/symbolic_env.h"
#include "expr/context.h"
#include "expr/subst.h"

namespace pugpara::para {

/// The (possibly symbolic) launch configuration shared by every thread
/// instance and, in equivalence mode, by both kernels.
struct SymbolicConfig {
  expr::Expr bdimX, bdimY, bdimZ, gdimX, gdimY;
  expr::Expr constraints;  // every dimension >= 1 (+ user concretizations)

  /// Creates the canonical configuration variables (cfg_*) in `ctx`.
  /// Dimensions named in `options.concretize` (keys "bdim.x", "gdim.y", ...)
  /// become constants — the paper's "+C" knob applied to the configuration.
  static SymbolicConfig create(expr::Context& ctx,
                               const encode::EncodeOptions& options);

  [[nodiscard]] expr::Expr dim(lang::BuiltinVar b) const;
};

/// One thread instance: five fresh coordinate variables plus the domain
/// constraint tying them to the configuration.
struct ThreadInstance {
  expr::Expr tx, ty, tz, bx, by;
  expr::Expr domain;  // tx < bdim.x && ... && by < gdim.y

  /// Fresh instance named `hint!k`.
  static ThreadInstance fresh(expr::Context& ctx, const SymbolicConfig& cfg,
                              uint32_t width, const std::string& hint);

  [[nodiscard]] expr::Expr coord(lang::BuiltinVar b) const;
  /// Substitution map from another instance's variables to this one's.
  [[nodiscard]] expr::SubstMap substFrom(const ThreadInstance& canonical) const;
  /// The five coordinate variables.
  [[nodiscard]] std::vector<expr::Expr> vars() const;
  /// "this and that are different threads" (some coordinate differs).
  [[nodiscard]] expr::Expr distinctFrom(const ThreadInstance& other) const;
};

}  // namespace pugpara::para
