#include "para/monotone.h"

#include "expr/subst.h"
#include "expr/walk.h"

namespace pugpara::para {

using expr::Expr;

MonotoneAnalyzer::MonotoneAnalyzer(expr::Context& ctx, Expr assumptions,
                                   uint32_t timeoutMs)
    : ctx_(ctx), assumptions_(assumptions), solver_(smt::makeZ3Solver()) {
  solver_->setTimeoutMs(timeoutMs);
  solver_->add(assumptions_);
}

bool MonotoneAnalyzer::refuted(Expr formula) {
  ++sideQueries_;
  solver_->push();
  solver_->add(formula);
  const bool unsat = solver_->check() == smt::CheckResult::Unsat;
  solver_->pop();
  return unsat;
}

std::optional<size_t> singleAxis(Expr guard, Expr addr,
                                 const std::vector<Expr>& threadVars) {
  std::optional<size_t> axis;
  auto scan = [&](Expr e) -> bool {
    for (Expr v : expr::freeVars(e)) {
      for (size_t i = 0; i < threadVars.size(); ++i) {
        if (v != threadVars[i]) continue;
        if (axis.has_value() && *axis != i) return false;  // second axis
        axis = i;
      }
    }
    return true;
  };
  if (!scan(guard) || !scan(addr)) return std::nullopt;
  return axis;  // may be nullopt: thread-independent CA (uniform write)
}

std::optional<Expr> MonotoneAnalyzer::certificate(Expr guard, Expr addr,
                                                  Expr axis, Expr extent,
                                                  Expr readAddr) {
  const uint32_t w = axis.sort().width();
  Expr zero = ctx_.bvVal(0, w);
  Expr one = ctx_.bvVal(1, w);

  auto p = [&](Expr t) { return expr::substitute(guard, axis, t); };
  auto g = [&](Expr t) { return expr::substitute(addr, axis, t); };

  Expr u = ctx_.freshVar("mono_u", axis.sort());
  Expr u2 = ctx_.mkAdd(u, one);
  // An adjacent guarded pair inside the domain. The explicit u < u+1
  // excludes the phantom wraparound pair (u = 2^w-1, u+1 = 0), which cannot
  // arise for real thread ids (u < extent <= 2^w - 1 already).
  Expr adjacent =
      ctx_.mkAnd(ctx_.mkAnd(ctx_.mkUlt(u, u2), ctx_.mkUlt(u2, extent)),
                 ctx_.mkAnd(p(u), p(u2)));

  // Side condition 1: strict monotonicity over adjacent guarded indices.
  const bool increasing =
      refuted(ctx_.mkAnd(adjacent, ctx_.mkNot(ctx_.mkUlt(g(u), g(u2)))));
  bool decreasing = false;
  if (!increasing)
    decreasing =
        refuted(ctx_.mkAnd(adjacent, ctx_.mkNot(ctx_.mkUlt(g(u2), g(u)))));
  if (!increasing && !decreasing) return std::nullopt;

  // Side condition 2: the guard carves a contiguous prefix of [0, extent):
  // if index u is guarded then so is every smaller index v.
  Expr v = ctx_.freshVar("mono_v", axis.sort());
  Expr prefixBroken =
      ctx_.mkAnd(ctx_.mkAnd(ctx_.mkUlt(v, u), ctx_.mkUlt(u, extent)),
                 ctx_.mkAnd(p(u), ctx_.mkNot(p(v))));
  if (!refuted(prefixBroken)) return std::nullopt;

  // "x strictly before y in write order" (flips for decreasing g).
  auto before = [&](Expr x, Expr y) {
    return increasing ? ctx_.mkUlt(x, y) : ctx_.mkUlt(y, x);
  };

  // Certificate with ONE fresh witness t0 (the paper's construction):
  //   - no thread is guarded at all, or
  //   - readAddr lies before the first write, or
  //   - t0 is the last guarded thread and readAddr lies after its write, or
  //   - t0, t0+1 are both guarded and readAddr falls strictly between.
  Expr t0 = ctx_.freshVar("fr_t", axis.sort());
  Expr t1 = ctx_.mkAdd(t0, one);

  Expr noneAtAll = ctx_.mkNot(p(zero));
  Expr belowFirst = ctx_.mkAnd(p(zero), before(readAddr, g(zero)));
  Expr lastGuarded =
      ctx_.mkAnd(ctx_.mkUlt(t0, extent),
                 ctx_.mkAnd(p(t0), ctx_.mkOr(ctx_.mkEq(t1, extent),
                                             ctx_.mkNot(p(t1)))));
  Expr aboveLast = ctx_.mkAnd(lastGuarded, before(g(t0), readAddr));
  Expr inGap = ctx_.mkAnd(
      ctx_.mkAnd(ctx_.mkUlt(t1, extent), ctx_.mkAnd(p(t0), p(t1))),
      ctx_.mkAnd(before(g(t0), readAddr), before(readAddr, g(t1))));

  return ctx_.mkOr(ctx_.mkOr(noneAtAll, belowFirst),
                   ctx_.mkOr(aboveLast, inGap));
}

}  // namespace pugpara::para
