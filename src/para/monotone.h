// Quantifier elimination for the no-writer ("frame") premises, Sec. IV-D.
//
// The quantified premise  (∀t: ¬(a = g(t) ∧ p(t)))  is replaced by a
// quantifier-free certificate when the CA's address function g is provably
// strictly monotone over the guarded thread range and the guard p carves a
// contiguous prefix of the thread domain:
//
//   cert(a) :=  ¬p(0)                                        (no writer at all)
//            ∨  a < g(0)                                     (below the range)
//            ∨  p(t0) ∧ lastGuarded(t0) ∧ g(t0) < a          (above the range)
//            ∨  p(t0) ∧ p(t0+1) ∧ t0+1 < D ∧ g(t0) < a < g(t0+1)  (in a gap)
//
// with ONE fresh witness variable t0 (the paper's construction). The three
// side conditions — strict monotonicity, prefix-shaped guard, and their
// decreasing-order duals — are discharged by SMT side queries.
//
// When elimination does not apply, the caller falls back to a native
// quantified premise (Z3 only) or to bug-hunting mode.
#pragma once

#include <optional>

#include "para/ca_extract.h"
#include "smt/solver.h"

namespace pugpara::para {

class MonotoneAnalyzer {
 public:
  /// `assumptions` are in force for every side query (configuration
  /// constraints, kernel assume()s). Side queries run on a private Z3
  /// solver with `timeoutMs` per check.
  MonotoneAnalyzer(expr::Context& ctx, expr::Expr assumptions,
                   uint32_t timeoutMs = 2000);

  /// Quantifier-free certificate that no thread writes `readAddr`, for a CA
  /// with guard p(axis) and address g(axis). `axis` is the single thread-
  /// coordinate variable the CA depends on and `extent` its domain bound
  /// (coordinates range over [0, extent)). Returns nullopt when the side
  /// conditions cannot be discharged. The certificate contains fresh witness
  /// variables; asserting it in a disjunction keeps the query exact (see
  /// resolve.cpp).
  [[nodiscard]] std::optional<expr::Expr> certificate(expr::Expr guard,
                                                      expr::Expr addr,
                                                      expr::Expr axis,
                                                      expr::Expr extent,
                                                      expr::Expr readAddr);

  /// Number of SMT side queries issued (for the encoding ablation bench).
  [[nodiscard]] size_t sideQueries() const { return sideQueries_; }

 private:
  /// True when `formula` is unsatisfiable together with the assumptions.
  [[nodiscard]] bool refuted(expr::Expr formula);

  expr::Context& ctx_;
  expr::Expr assumptions_;
  std::unique_ptr<smt::Solver> solver_;
  size_t sideQueries_ = 0;
};

/// Finds the unique thread-coordinate variable among `threadVars` that
/// occurs in `guard` or `addr`; nullopt when zero or several occur.
[[nodiscard]] std::optional<size_t> singleAxis(
    expr::Expr guard, expr::Expr addr, const std::vector<expr::Expr>& threadVars);

}  // namespace pugpara::para
