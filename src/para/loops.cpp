#include "para/loops.h"

#include "expr/subst.h"
#include "expr/walk.h"

namespace pugpara::para {

using expr::Expr;
using expr::Kind;

HeaderAlignment alignHeaders(expr::Context& ctx, const LoopSegment& src,
                             const LoopSegment& tgt) {
  (void)ctx;
  // Rebase the target header onto the source counter; thanks to hash
  // consing, structural equality is pointer equality.
  Expr guardT = expr::substitute(tgt.guard, tgt.k, src.k);
  Expr stepT = expr::substitute(tgt.stepNext, tgt.k, src.k);
  if (src.initValue == tgt.initValue && src.guard == guardT &&
      src.stepNext == stepT)
    return HeaderAlignment::Identical;
  if (isCommutativeAccumulation(src) && isCommutativeAccumulation(tgt))
    return HeaderAlignment::Commutative;
  return HeaderAlignment::Failed;
}

namespace {

/// v[e] = select(v_prev, e) (op) w — possibly wrapped in the extraction's
/// own-write overlay ites. We look for a top-level commutative-associative
/// operator with a select at the written address on either side.
bool isAccumulatorValue(const ConditionalAssignment& ca) {
  Expr v = ca.value;
  switch (v.kind()) {
    case Kind::BvAdd:
    case Kind::BvMul:
    case Kind::BvAnd:
    case Kind::BvOr:
    case Kind::BvXor:
      break;
    default:
      return false;
  }
  for (size_t i = 0; i < 2; ++i) {
    Expr side = v.kid(i);
    // Accept select(..., addr) or an overlay ite whose default is one.
    while (side.kind() == Kind::Ite) side = side.kid(2);
    if (side.kind() == Kind::Select && side.kid(1) == ca.addr) return true;
  }
  return false;
}

}  // namespace

Expr loopReachabilityInvariant(expr::Context& ctx, const LoopSegment& loop,
                               uint32_t width) {
  Expr k = loop.k;
  Expr zero = ctx.bvVal(0, width);
  // k *= 2 (also written k << 1).
  if (loop.stepNext == ctx.mkMul(k, ctx.bvVal(2, width)) ||
      loop.stepNext == ctx.mkShl(k, ctx.bvVal(1, width))) {
    if (loop.initValue.isBvConst()) {
      const uint64_t init = loop.initValue.bvValue();
      if (init != 0 && (init & (init - 1)) == 0) {
        Expr pow2 = ctx.mkAnd(
            ctx.mkNe(k, zero),
            ctx.mkEq(ctx.mkBvAnd(k, ctx.mkSub(k, ctx.bvVal(1, width))),
                     zero));
        return ctx.mkAnd(pow2, ctx.mkUle(loop.initValue, k));
      }
    }
  }
  // k += c with a constant c (either operand order after canonicalization).
  if (loop.stepNext.kind() == Kind::BvAdd &&
      ((loop.stepNext.kid(0) == k && loop.stepNext.kid(1).isBvConst()) ||
       (loop.stepNext.kid(1) == k && loop.stepNext.kid(0).isBvConst()))) {
    Expr c = loop.stepNext.kid(0) == k ? loop.stepNext.kid(1)
                                       : loop.stepNext.kid(0);
    return ctx.mkAnd(
        ctx.mkUle(loop.initValue, k),
        ctx.mkEq(ctx.mkURem(ctx.mkSub(k, loop.initValue), c), zero));
  }
  return ctx.top();
}

bool isCommutativeAccumulation(const LoopSegment& loop) {
  bool sawCa = false;
  for (const BiSummary& bi : loop.bodyBis) {
    for (const auto& [array, cas] : bi.cas) {
      (void)array;
      for (const ConditionalAssignment& ca : cas) {
        sawCa = true;
        if (!isAccumulatorValue(ca)) return false;
      }
    }
  }
  return sawCa;
}

}  // namespace pugpara::para
