#include "para/vcgen.h"

#include <sstream>

#include "expr/subst.h"
#include "lang/ast.h"
#include "support/diagnostics.h"

namespace pugpara::para {

namespace {

using expr::Expr;
using lang::VarDecl;

/// Correspondence between the two kernels' arrays: pointer parameters by
/// position, __shared__ declarations by declaration order.
std::unordered_map<const VarDecl*, const VarDecl*> arrayCorrespondence(
    const KernelSummary& src, const KernelSummary& tgt) {
  require(src.arrayParams.size() == tgt.arrayParams.size(),
          "equivalence: kernels have different pointer-parameter counts");
  std::unordered_map<const VarDecl*, const VarDecl*> map;  // tgt -> src
  for (size_t i = 0; i < src.arrayParams.size(); ++i)
    map.emplace(tgt.arrayParams[i], src.arrayParams[i]);
  const auto& ss = src.kernel->sharedDecls;
  const auto& ts = tgt.kernel->sharedDecls;
  for (size_t i = 0; i < ts.size() && i < ss.size(); ++i)
    map.emplace(ts[i], ss[i]);
  return map;
}

void accumulate(ResolveStats& into, const ResolveStats& from) {
  into.instances += from.instances;
  into.qeCerts += from.qeCerts;
  into.forallCerts += from.forallCerts;
  into.uniformCerts += from.uniformCerts;
}

class EquivalenceBuilder {
 public:
  EquivalenceBuilder(expr::Context& ctx, const KernelSummary& src,
                     const KernelSummary& tgt, FrameMode mode,
                     uint32_t monoTimeoutMs)
      : ctx_(ctx), src_(src), tgt_(tgt), mode_(mode),
        base_(ctx.mkAnd(src.assumptions, tgt.assumptions)),
        mono_(ctx, base_, monoTimeoutMs),
        corr_(arrayCorrespondence(src, tgt)) {
    for (size_t i = 0; i < src.inputArrays.size(); ++i)
      require(src.inputArrays[i] == tgt.inputArrays[i],
              "equivalence: kernels do not share input arrays");
    out_.exact = mode != FrameMode::BugHunt;
  }

  ParamVcSet run() {
    if (!src_.hasLoops() && !tgt_.hasLoops()) {
      wholeKernelVc();
      return std::move(out_);
    }
    segmentwiseVcs();
    return std::move(out_);
  }

 private:
  [[nodiscard]] expr::Sort idxSort() const {
    return expr::Sort::bv(src_.width);
  }

  /// Loop-free case: one VC comparing every output array cellwise.
  void wholeKernelVc() {
    Resolver rs(ctx_, src_, mode_, &mono_);
    Resolver rt(ctx_, tgt_, mode_, &mono_);
    Expr differ = ctx_.bot();
    std::vector<Expr> witnesses;
    for (size_t i = 0; i < src_.arrayParams.size(); ++i) {
      Expr idx = ctx_.freshVar("eq_idx", idxSort());
      witnesses.push_back(idx);
      Expr vs = rs.finalValue(src_.arrayParams[i], idx);
      Expr vt = rt.finalValue(tgt_.arrayParams[i], idx);
      differ = ctx_.mkOr(differ, ctx_.mkNe(vs, vt));
    }
    Expr formula = base_;
    for (Expr p : rs.premises()) formula = ctx_.mkAnd(formula, p);
    for (Expr p : rt.premises()) formula = ctx_.mkAnd(formula, p);
    accumulate(out_.stats, rs.stats());
    accumulate(out_.stats, rt.stats());
    out_.vcs.push_back({"whole-kernel output equality",
                        ctx_.mkAnd(formula, differ), ctx_.mkNot(differ),
                        std::move(witnesses)});
  }

  /// Kernels with barrier-carrying loops: align segments pairwise and
  /// compare each as a state transformer over shared entry states.
  void segmentwiseVcs() {
    require(src_.segments.size() == tgt_.segments.size(),
            "loop alignment: kernels have different segment counts");
    for (size_t i = 0; i < src_.segments.size(); ++i) {
      const Segment& ss = src_.segments[i];
      const Segment& ts = tgt_.segments[i];
      require(ss.loop.has_value() == ts.loop.has_value(),
              "loop alignment: segment kinds differ at position " +
                  std::to_string(i));
      if (ss.loop.has_value()) {
        loopSegmentVc(i, ss, ts);
      } else {
        plainSegmentVc(i, ss, ts);
      }
    }
  }

  /// Substitution identifying the target's segment-entry state (and
  /// counter, if any) with the source's.
  expr::SubstMap entrySubst(const Segment& ss, const Segment& ts) {
    expr::SubstMap m;
    for (const auto& [tArray, tVar] : ts.startState) {
      const VarDecl* sArray = correspond(tArray);
      if (sArray == nullptr) continue;
      auto it = ss.startState.find(sArray);
      if (it != ss.startState.end() && tVar != it->second)
        m.emplace(tVar.node(), it->second);
    }
    return m;
  }

  [[nodiscard]] const VarDecl* correspond(const VarDecl* tgtArray) const {
    auto it = corr_.find(tgtArray);
    return it == corr_.end() ? nullptr : it->second;
  }

  void compareSegmentOutputs(size_t segIdx, const Segment& ss,
                             const Segment& ts, Expr extraAssumption,
                             expr::SubstMap tgtSubst,
                             std::vector<Expr> extraWitnesses,
                             const char* kindLabel) {
    Resolver rs(ctx_, src_, mode_, &mono_);
    Resolver rt(ctx_, tgt_, mode_, &mono_);

    // Written arrays, matched across kernels (union of both sides).
    std::vector<std::pair<const VarDecl*, const VarDecl*>> pairs;  // (s, t)
    for (const VarDecl* sA : ss.writtenArrays) {
      const VarDecl* tA = nullptr;
      for (const auto& [t, s] : corr_)
        if (s == sA) tA = t;
      require(tA != nullptr || sA->space != lang::MemSpace::Global,
              "loop alignment: source writes an array with no counterpart");
      if (tA != nullptr) pairs.emplace_back(sA, tA);
    }
    for (const VarDecl* tA : ts.writtenArrays) {
      const VarDecl* sA = correspond(tA);
      bool seen = false;
      for (const auto& pr : pairs) seen |= (pr.second == tA);
      if (!seen && sA != nullptr) pairs.emplace_back(sA, tA);
    }

    // Shared-memory state is per-block: compare both kernels' view of ONE
    // arbitrary observer block.
    Expr obx = ctx_.freshVar("obs_bx", idxSort());
    Expr oby = ctx_.freshVar("obs_by", idxSort());
    Expr obsDomain = ctx_.mkAnd(ctx_.mkUlt(obx, src_.cfg.gdimX),
                                ctx_.mkUlt(oby, src_.cfg.gdimY));

    Expr differ = ctx_.bot();
    std::vector<Expr> witnesses = std::move(extraWitnesses);
    bool usedObserver = false;
    for (const auto& [sA, tA] : pairs) {
      Expr idx = ctx_.freshVar("seg_idx", idxSort());
      witnesses.push_back(idx);
      const bool shared = sA->space == lang::MemSpace::Shared;
      usedObserver |= shared;
      Expr vs = shared ? rs.valueOfInBlock(ss.endState.at(sA), idx, obx, oby)
                       : rs.valueOf(ss.endState.at(sA), idx);
      Expr vt = shared ? rt.valueOfInBlock(ts.endState.at(tA), idx, obx, oby)
                       : rt.valueOf(ts.endState.at(tA), idx);
      vt = expr::substitute(vt, tgtSubst);
      differ = ctx_.mkOr(differ, ctx_.mkNe(vs, vt));
    }
    if (usedObserver) {
      witnesses.push_back(obx);
      witnesses.push_back(oby);
    }

    Expr formula = ctx_.mkAnd(base_, extraAssumption);
    if (usedObserver) formula = ctx_.mkAnd(formula, obsDomain);
    for (Expr p : rs.premises()) formula = ctx_.mkAnd(formula, p);
    for (Expr p : rt.premises())
      formula = ctx_.mkAnd(formula, expr::substitute(p, tgtSubst));
    accumulate(out_.stats, rs.stats());
    accumulate(out_.stats, rt.stats());

    std::ostringstream name;
    name << "segment " << segIdx << " (" << kindLabel << ") state equality";
    out_.vcs.push_back({name.str(), ctx_.mkAnd(formula, differ),
                        ctx_.mkNot(differ), std::move(witnesses)});
  }

  void plainSegmentVc(size_t segIdx, const Segment& ss, const Segment& ts) {
    compareSegmentOutputs(segIdx, ss, ts, ctx_.top(), entrySubst(ss, ts), {},
                          "plain");
  }

  void loopSegmentVc(size_t segIdx, const Segment& ss, const Segment& ts) {
    const LoopSegment& ls = *ss.loop;
    const LoopSegment& lt = *ts.loop;
    HeaderAlignment ha = alignHeaders(ctx_, ls, lt);
    require(ha != HeaderAlignment::Failed,
            "loop alignment: headers differ and the bodies are not "
            "commutative accumulations (segment " + std::to_string(segIdx) +
                ")");
    if (ha == HeaderAlignment::Commutative) {
      out_.caveats.push_back(
          "segment " + std::to_string(segIdx) +
          ": loop headers differ; equivalence holds modulo the "
          "commutative-associative reordering argument (iteration-set "
          "equality is assumed, as in the paper's Sec. IV-E)");
      out_.exact = false;
    }
    // Per-iteration body equivalence with a shared symbolic counter: rebase
    // the target's counter and entry state onto the source's, and assume the
    // iteration is active (source loop guard).
    expr::SubstMap subst = entrySubst(ss, ts);
    subst.emplace(lt.k.node(), ls.k);
    Expr active = ctx_.mkAnd(
        ls.guard, loopReachabilityInvariant(ctx_, ls, src_.width));
    compareSegmentOutputs(segIdx, ss, ts, active, std::move(subst), {ls.k},
                          "loop body");
  }

  expr::Context& ctx_;
  const KernelSummary& src_;
  const KernelSummary& tgt_;
  FrameMode mode_;
  Expr base_;
  MonotoneAnalyzer mono_;
  std::unordered_map<const VarDecl*, const VarDecl*> corr_;  // tgt -> src
  ParamVcSet out_;
};

}  // namespace

ParamVcSet buildEquivalenceVcs(expr::Context& ctx, const KernelSummary& src,
                               const KernelSummary& tgt, FrameMode mode,
                               uint32_t monoTimeoutMs) {
  return EquivalenceBuilder(ctx, src, tgt, mode, monoTimeoutMs).run();
}

ParamVcSet buildPostcondVcs(expr::Context& ctx, const KernelSummary& summary,
                            const encode::EncodeOptions& options,
                            FrameMode mode, uint32_t monoTimeoutMs) {
  require(!summary.hasLoops(),
          "parameterized postcondition checking requires a loop-free "
          "barrier structure (concretize the configuration instead)");
  ParamVcSet out;
  out.exact = mode != FrameMode::BugHunt;
  MonotoneAnalyzer mono(ctx, summary.assumptions, monoTimeoutMs);
  Resolver resolver(ctx, summary, mode, &mono);

  for (const lang::Stmt* pc : summary.postconds) {
    // Translate the postcondition: spec variables are fresh (hence
    // universal under the unsat check), arrays resolve to final state.
    std::unordered_map<const VarDecl*, Expr> specEnv;
    std::vector<Expr> specVars;
    std::unordered_map<const VarDecl*, Expr> paramEnv;
    for (size_t i = 0; i < summary.scalarParams.size(); ++i)
      paramEnv[summary.scalarParams[i]] = summary.scalarInputs[i];

    encode::EnvCallbacks cbs;
    cbs.builtin = [&](lang::BuiltinVar b) { return summary.cfg.dim(b); };
    cbs.readVar = [&](const VarDecl* d) {
      if (auto it = paramEnv.find(d); it != paramEnv.end()) return it->second;
      if (auto it = specEnv.find(d); it != specEnv.end()) return it->second;
      Expr v = ctx.freshVar("spec_" + d->name, expr::Sort::bv(summary.width));
      specEnv[d] = v;
      specVars.push_back(v);
      return v;
    };
    cbs.readArray = [&](const VarDecl* d, Expr idx) {
      return resolver.finalValue(d, idx);
    };
    encode::Translator tr(ctx, options, std::move(cbs));
    Expr post = tr.toBool(*pc->cond);

    Expr formula = summary.assumptions;
    for (Expr p : resolver.premises()) formula = ctx.mkAnd(formula, p);
    out.vcs.push_back({"postcondition at " + pc->loc.str(),
                       ctx.mkAnd(formula, ctx.mkNot(post)), post,
                       std::move(specVars)});
  }
  out.stats = resolver.stats();
  return out;
}

ParamVcSet buildAssertVcs(expr::Context& ctx, const KernelSummary& summary,
                          FrameMode mode, uint32_t monoTimeoutMs) {
  ParamVcSet out;
  out.exact = mode != FrameMode::BugHunt;
  MonotoneAnalyzer mono(ctx, summary.assumptions, monoTimeoutMs);
  Resolver resolver(ctx, summary, mode, &mono);
  for (const auto& ob : summary.asserts) {
    Expr guard = resolver.resolveExpr(ob.guard, summary.canonical.bx,
                                      summary.canonical.by);
    Expr cond = resolver.resolveExpr(ob.cond, summary.canonical.bx,
                                     summary.canonical.by);
    Expr formula = summary.assumptions;
    for (Expr p : resolver.premises()) formula = ctx.mkAnd(formula, p);
    formula = ctx.mkAnd(formula, ctx.mkAnd(guard, ctx.mkNot(cond)));
    out.vcs.push_back({"assert at " + ob.loc.str(), formula, cond,
                       summary.canonical.vars()});
  }
  out.stats = resolver.stats();
  return out;
}

}  // namespace pugpara::para
