// Verification-condition generation for the parameterized checker: the
// public face of the `para` module. Produces solver-ready formulas whose
// SAT answer is a candidate bug (with witness variables for replay) and
// whose UNSAT answer — in an exact FrameMode — proves the property for an
// arbitrary number of threads.
#pragma once

#include <string>
#include <vector>

#include "para/loops.h"
#include "para/resolve.h"

namespace pugpara::para {

struct ParamVc {
  std::string name;      // human-readable: what this VC establishes
  expr::Expr formula;    // assumptions ∧ premises ∧ ¬goal
  expr::Expr goal;       // the property (for reporting)
  /// Free variables a model assigns that identify the disagreement
  /// (output index variables, iteration counter, ...).
  std::vector<expr::Expr> witnesses;
};

struct ParamVcSet {
  std::vector<ParamVc> vcs;
  bool exact = true;  // false: BugHunt premises or commutative alignment
  std::vector<std::string> caveats;
  ResolveStats stats;
};

/// Equivalence VCs for two kernels extracted in the same Context (shared
/// inputs / configuration). Loop-free kernels yield one whole-kernel VC per
/// output array; kernels with barrier-carrying loops go through segmentwise
/// loop alignment (Sec. IV-E). Throws PugError when the kernels cannot be
/// aligned.
[[nodiscard]] ParamVcSet buildEquivalenceVcs(expr::Context& ctx,
                                             const KernelSummary& src,
                                             const KernelSummary& tgt,
                                             FrameMode mode,
                                             uint32_t monoTimeoutMs = 2000);

/// Postcondition VCs (loop-free kernels only).
[[nodiscard]] ParamVcSet buildPostcondVcs(expr::Context& ctx,
                                          const KernelSummary& summary,
                                          const encode::EncodeOptions& options,
                                          FrameMode mode,
                                          uint32_t monoTimeoutMs = 2000);

/// Assertion VCs: one per assert(), over the canonical parametric thread.
[[nodiscard]] ParamVcSet buildAssertVcs(expr::Context& ctx,
                                        const KernelSummary& summary,
                                        FrameMode mode,
                                        uint32_t monoTimeoutMs = 2000);

}  // namespace pugpara::para
