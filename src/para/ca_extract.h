// Conditional-assignment (CA) extraction for the parameterized encoding
// (paper Sec. IV-A/B): one parametric thread is symbolically executed per
// barrier interval; every shared/global write becomes a CA
// ⟨guard c(s), array, address e(s), value w(s)⟩ over the canonical thread
// variables, and every read is recorded for race analysis.
//
// Values read from arrays refer to *version variables*: V(A, j) is the
// symbolic state of array A after barrier interval j (V(A, 0) is the input
// state). The resolver (para/resolve.h) later replaces selects on version
// variables by instantiated CA chains.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "encode/ssa_encoder.h"
#include "para/thread_dim.h"

namespace pugpara::para {

struct ConditionalAssignment {
  expr::Expr guard;  // over canonical thread vars, config and scalar inputs
  expr::Expr addr;
  expr::Expr value;  // may select version variables of the previous interval
  SourceLoc loc;
};

struct ReadRecord {
  expr::Expr guard;
  const lang::VarDecl* array = nullptr;
  expr::Expr addr;
  SourceLoc loc;
};

struct BiSummary {
  /// CAs per array, in program order (later CAs come from later statements).
  std::unordered_map<const lang::VarDecl*, std::vector<ConditionalAssignment>>
      cas;
  std::vector<ReadRecord> reads;
};

/// A barrier-carrying loop kept symbolic for loop-aligned equivalence
/// checking (Sec. IV-E). The loop counter is replaced by the fresh symbolic
/// variable `k` throughout `bodyBis`.
struct LoopSegment {
  const lang::VarDecl* counter = nullptr;
  expr::Expr k;          // symbolic iteration variable
  expr::Expr initValue;  // uniform initial counter value
  expr::Expr guard;      // loop condition as a predicate over k
  expr::Expr stepNext;   // counter value after one iteration, over k
  std::vector<BiSummary> bodyBis;
};

struct Segment {
  std::vector<BiSummary> bis;       // plain run of barrier intervals
  std::optional<LoopSegment> loop;  // or one barrier-carrying loop

  /// State variable of every array at segment entry / exit. For a loop
  /// segment, endState is the state after ONE body iteration (entry state =
  /// the fresh iteration-input variables).
  std::unordered_map<const lang::VarDecl*, expr::Expr> startState;
  std::unordered_map<const lang::VarDecl*, expr::Expr> endState;
  /// Arrays written inside the segment (startState != endState).
  std::vector<const lang::VarDecl*> writtenArrays;
};

/// Provenance of one array-version variable: the CAs of the interval that
/// produced it and the version variable holding the state before that
/// interval. Version variables without an entry are *base states* (kernel
/// inputs, fresh shared memory, loop boundaries) and resolution stops there.
struct VersionInfo {
  const lang::VarDecl* array = nullptr;
  std::vector<ConditionalAssignment> cas;
  expr::Expr prev;
};

struct KernelSummary {
  const lang::Kernel* kernel = nullptr;
  uint32_t width = 0;
  ThreadInstance canonical;  // the parametric thread `s`
  SymbolicConfig cfg;
  expr::Expr assumptions;  // cfg constraints + uniform assume() statements

  std::vector<Segment> segments;

  /// Version variables: versions[A] is the chronological sequence of A's
  /// state variables (index 0 = initial, back() = final).
  std::unordered_map<const lang::VarDecl*, std::vector<expr::Expr>> versions;

  /// Provenance per version variable (see VersionInfo).
  std::unordered_map<const expr::Node*, VersionInfo> producers;

  /// Fresh variables standing for a thread-local uninitialized read; these
  /// must be re-freshened per thread instance during resolution.
  std::vector<expr::Expr> threadLocalFresh;

  std::vector<const lang::VarDecl*> arrayParams;
  std::vector<expr::Expr> inputArrays;
  std::vector<const lang::VarDecl*> scalarParams;
  std::vector<expr::Expr> scalarInputs;

  std::vector<encode::Obligation> asserts;  // over the canonical thread
  std::vector<const lang::Stmt*> postconds;

  [[nodiscard]] bool hasLoops() const {
    for (const auto& s : segments)
      if (s.loop.has_value()) return true;
    return false;
  }
  /// Flattened intervals of a loop-free summary (PugError if it has loops).
  [[nodiscard]] std::vector<const BiSummary*> plainBis() const;
  /// Total number of plain intervals.
  [[nodiscard]] size_t biCount() const;
};

/// Extracts the summary of a sema-analyzed kernel. Inputs are named by
/// position ("pp_arr0", ...), so two kernels extracted in one Context share
/// them. Barrier-carrying loops become LoopSegments (only the loop-aligned
/// equivalence path can consume those).
[[nodiscard]] KernelSummary extractSummary(expr::Context& ctx,
                                           const lang::Kernel& kernel,
                                           const SymbolicConfig& cfg,
                                           const encode::EncodeOptions& options,
                                           const std::string& prefix);

}  // namespace pugpara::para
