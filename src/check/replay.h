// Counterexample replay: a SAT model is materialized into a concrete launch
// (dims, scalar arguments, input buffers) and executed on the VM. For
// equivalence, the two kernels' outputs must actually differ; for
// postconditions, the condition must actually fail. This preserves the
// paper's guarantee that reported bugs are real even in bug-hunt mode.
#pragma once

#include "check/options.h"
#include "check/report.h"
#include "lang/ast.h"
#include "para/thread_dim.h"
#include "smt/solver.h"

namespace pugpara::check {

/// What the model must be projected on.
struct ReplayInputs {
  expr::Expr bdimX, bdimY, bdimZ, gdimX, gdimY;  // config (vars or consts)
  std::vector<expr::Expr> scalarInputs;
  std::vector<expr::Expr> inputArrays;
  std::vector<expr::Expr> witnesses;
};

/// Projects the model onto a Counterexample. Array contents are
/// materialized up to `maxCells` cells per array.
[[nodiscard]] Counterexample extractCounterexample(const smt::Model& model,
                                                   const ReplayInputs& inputs,
                                                   expr::Context& ctx,
                                                   uint32_t width,
                                                   uint64_t maxCells);

/// Replays an equivalence counterexample: runs both kernels on the witness
/// inputs; sets cex.replayed/replayConfirmed/replayDetail. Returns
/// replayConfirmed.
bool replayEquivalence(const lang::Kernel& a, const lang::Kernel& b,
                       Counterexample& cex, uint32_t width,
                       uint64_t maxThreads);

/// Replays a postcondition counterexample: runs the kernel, then evaluates
/// every postcondition concretely (spec variables come from the witness
/// values, in the order the VC reported them).
bool replayPostcondition(const lang::Kernel& kernel, Counterexample& cex,
                         uint32_t width, uint64_t maxThreads);

}  // namespace pugpara::check
