// Functional-correctness checking against postcond(...) specifications.
#pragma once

#include "check/options.h"
#include "check/report.h"
#include "lang/ast.h"

namespace pugpara::check {

/// Checks every postcondition of `kernel`. Parameterized methods prove the
/// property for all configurations; the non-parameterized method for the
/// concrete grid in `options.grid`.
[[nodiscard]] Report checkPostconditions(const lang::Kernel& kernel,
                                         const CheckOptions& options);

/// Checks every assert(...) statement (safety obligations per thread).
[[nodiscard]] Report checkAsserts(const lang::Kernel& kernel,
                                  const CheckOptions& options);

}  // namespace pugpara::check
