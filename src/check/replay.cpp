#include "check/replay.h"

#include <sstream>

#include "encode/symbolic_env.h"
#include "exec/compiler.h"
#include "exec/machine.h"
#include "expr/bv_ops.h"
#include "expr/eval.h"
#include "support/rng.h"

namespace pugpara::check {

using expr::Expr;

Counterexample extractCounterexample(const smt::Model& model,
                                     const ReplayInputs& inputs,
                                     expr::Context& ctx, uint32_t width,
                                     uint64_t maxCells) {
  Counterexample cex;
  cex.bdimX = std::max<uint64_t>(1, model.evalBv(inputs.bdimX));
  cex.bdimY = std::max<uint64_t>(1, model.evalBv(inputs.bdimY));
  cex.bdimZ = std::max<uint64_t>(1, model.evalBv(inputs.bdimZ));
  cex.gdimX = std::max<uint64_t>(1, model.evalBv(inputs.gdimX));
  cex.gdimY = std::max<uint64_t>(1, model.evalBv(inputs.gdimY));
  for (Expr s : inputs.scalarInputs) cex.scalarArgs.push_back(model.evalBv(s));
  for (Expr w : inputs.witnesses) {
    if (w.sort().isBv()) cex.witnessValues.push_back(model.evalBv(w));
  }
  const uint64_t cells =
      std::min<uint64_t>(maxCells, width >= 63 ? maxCells
                                               : (uint64_t{1} << width));
  for (Expr arr : inputs.inputArrays) {
    std::vector<uint64_t> contents;
    contents.reserve(cells);
    for (uint64_t i = 0; i < cells; ++i)
      contents.push_back(
          model.evalBv(ctx.mkSelect(arr, ctx.bvVal(i, width))));
    cex.inputArrays.push_back(std::move(contents));
  }
  return cex;
}

namespace {

struct LaunchPieces {
  exec::LaunchParams params;
  std::vector<exec::Buffer> buffers;
};

/// Builds launch parameters and buffers for `kernel` from the witness.
/// Buffers get one slot per representable address so no in-range access can
/// trap (bounded by the cells we materialized).
LaunchPieces prepare(const lang::Kernel& kernel, const Counterexample& cex,
                     uint32_t width) {
  LaunchPieces lp;
  lp.params.grid = {static_cast<uint32_t>(cex.gdimX),
                    static_cast<uint32_t>(cex.gdimY), 1};
  lp.params.block = {static_cast<uint32_t>(cex.bdimX),
                     static_cast<uint32_t>(cex.bdimY),
                     static_cast<uint32_t>(cex.bdimZ)};
  lp.params.width = width;
  size_t scalarIdx = 0, arrayIdx = 0;
  for (const auto& p : kernel.params) {
    if (p->type.isPointer) {
      const auto& contents = arrayIdx < cex.inputArrays.size()
                                 ? cex.inputArrays[arrayIdx]
                                 : std::vector<uint64_t>{};
      ++arrayIdx;
      exec::Buffer buf(p->name, std::max<size_t>(contents.size(), 1));
      for (size_t i = 0; i < contents.size(); ++i)
        buf.store(i, contents[i]);
      lp.buffers.push_back(std::move(buf));
    } else {
      lp.params.scalarArgs.push_back(
          scalarIdx < cex.scalarArgs.size() ? cex.scalarArgs[scalarIdx] : 0);
      ++scalarIdx;
    }
  }
  return lp;
}

uint64_t totalThreads(const Counterexample& cex) {
  return cex.bdimX * cex.bdimY * cex.bdimZ * cex.gdimX * cex.gdimY;
}

}  // namespace

bool replayEquivalence(const lang::Kernel& a, const lang::Kernel& b,
                       Counterexample& cex, uint32_t width,
                       uint64_t maxThreads) {
  cex.replayed = true;
  cex.replayConfirmed = false;
  if (totalThreads(cex) > maxThreads) {
    cex.replayed = false;
    cex.replayDetail = "witness grid too large for replay (" +
                       std::to_string(totalThreads(cex)) + " threads)";
    return false;
  }
  try {
    auto ca = exec::compile(a);
    auto cb = exec::compile(b);

    // One attempt with the model's inputs, then a few with random refills:
    // a genuinely inequivalent pair disagrees on almost any input, while the
    // model's array completion is often all-zeros and can mask the bug.
    for (uint64_t attempt = 0; attempt < 4; ++attempt) {
      Counterexample trial = cex;
      if (attempt > 0) {
        SplitMix64 rng(0xC0FFEE + attempt);
        for (auto& arr : trial.inputArrays)
          for (auto& v : arr) v = expr::maskToWidth(rng.next(), width);
      }
      LaunchPieces la = prepare(a, trial, width);
      LaunchPieces lb = prepare(b, trial, width);
      auto ra = exec::launch(ca, la.params, la.buffers);
      auto rb = exec::launch(cb, lb.params, lb.buffers);
      if (ra.completed != rb.completed) {
        // One kernel crashes (e.g. out-of-bounds shared access) where the
        // other runs: a confirmed behavioral difference.
        cex.replayDetail = "one kernel faults under this configuration: " +
                           (ra.completed ? rb.error : ra.error);
        cex.replayConfirmed = true;
        return true;
      }
      if (!ra.completed) {
        cex.replayDetail = "both kernels fault in replay: " + ra.error;
        return false;
      }
      for (size_t i = 0; i < la.buffers.size(); ++i) {
        const auto& xa = la.buffers[i].raw();
        const auto& xb = lb.buffers[i].raw();
        for (size_t j = 0; j < std::min(xa.size(), xb.size()); ++j) {
          if (xa[j] != xb[j]) {
            std::ostringstream os;
            os << "outputs differ at " << la.buffers[i].name() << "[" << j
               << "]: " << xa[j] << " vs " << xb[j]
               << (attempt ? " (randomized inputs)" : "");
            cex.replayDetail = os.str();
            cex.replayConfirmed = true;
            return true;
          }
        }
      }
    }
    cex.replayDetail = "replay executed both kernels; outputs agree "
                       "(spurious candidate)";
    return false;
  } catch (const PugError& e) {
    cex.replayDetail = std::string("replay error: ") + e.what();
    return false;
  }
}

bool replayPostcondition(const lang::Kernel& kernel, Counterexample& cex,
                         uint32_t width, uint64_t maxThreads) {
  cex.replayed = true;
  cex.replayConfirmed = false;
  if (totalThreads(cex) > maxThreads) {
    cex.replayed = false;
    cex.replayDetail = "witness grid too large for replay";
    return false;
  }
  try {
    auto ck = exec::compile(kernel);
    LaunchPieces lp = prepare(kernel, cex, width);
    auto r = exec::launch(ck, lp.params, lp.buffers);
    if (!r.completed) {
      cex.replayDetail = "replay failed: " + r.error;
      return false;
    }

    // Evaluate the postconditions concretely: build expressions over the
    // final buffers and the witness spec values, then fold them.
    expr::Context ctx;
    encode::EncodeOptions eo;
    eo.width = width;
    expr::Env env;
    std::unordered_map<const lang::VarDecl*, Expr> arrays;
    size_t bufIdx = 0, sclIdx = 0;
    std::unordered_map<const lang::VarDecl*, Expr> scalars;
    for (const auto& p : kernel.params) {
      if (p->type.isPointer) {
        Expr v = ctx.var("arr" + std::to_string(bufIdx),
                         expr::Sort::array(width, width));
        expr::ArrayValue av;
        for (size_t i = 0; i < lp.buffers[bufIdx].size(); ++i)
          av.set(i, lp.buffers[bufIdx].raw()[i]);
        env.bind(v, expr::Value::ofArray(std::move(av)));
        arrays[p.get()] = v;
        ++bufIdx;
      } else {
        scalars[p.get()] = ctx.bvVal(
            sclIdx < lp.params.scalarArgs.size()
                ? lp.params.scalarArgs[sclIdx]
                : 0,
            width);
        ++sclIdx;
      }
    }

    std::unordered_map<const lang::VarDecl*, Expr> specEnv;
    size_t nextWitness = 0;
    encode::EnvCallbacks cbs;
    cbs.builtin = [&](lang::BuiltinVar b) {
      switch (b) {
        case lang::BuiltinVar::BdimX: return ctx.bvVal(cex.bdimX, width);
        case lang::BuiltinVar::BdimY: return ctx.bvVal(cex.bdimY, width);
        case lang::BuiltinVar::BdimZ: return ctx.bvVal(cex.bdimZ, width);
        case lang::BuiltinVar::GdimX: return ctx.bvVal(cex.gdimX, width);
        case lang::BuiltinVar::GdimY: return ctx.bvVal(cex.gdimY, width);
        default:
          throw PugError("postcondition mentions tid/bid");
      }
    };
    cbs.readVar = [&](const lang::VarDecl* d) {
      if (auto it = scalars.find(d); it != scalars.end()) return it->second;
      if (auto it = specEnv.find(d); it != specEnv.end()) return it->second;
      const uint64_t v = nextWitness < cex.witnessValues.size()
                             ? cex.witnessValues[nextWitness++]
                             : 0;
      Expr c = ctx.bvVal(v, width);
      specEnv[d] = c;
      return c;
    };
    cbs.readArray = [&](const lang::VarDecl* d, Expr idx) {
      return ctx.mkSelect(arrays.at(d), idx);
    };
    encode::Translator tr(ctx, eo, std::move(cbs));

    std::function<bool(const lang::Stmt&)> scan =
        [&](const lang::Stmt& s) -> bool {
      switch (s.kind) {
        case lang::Stmt::Kind::Postcond: {
          Expr f = tr.toBool(*s.cond);
          if (!expr::evalBool(f, env)) {
            cex.replayDetail = "postcondition at " + s.loc.str() +
                               " concretely violated";
            return true;
          }
          return false;
        }
        case lang::Stmt::Kind::If:
          return scan(*s.thenStmt) || (s.elseStmt && scan(*s.elseStmt));
        case lang::Stmt::Kind::For:
        case lang::Stmt::Kind::While:
          return scan(*s.body);
        case lang::Stmt::Kind::Block:
          for (const auto& st : s.stmts)
            if (scan(*st)) return true;
          return false;
        default:
          return false;
      }
    };
    if (scan(*kernel.body)) {
      cex.replayConfirmed = true;
      return true;
    }
    cex.replayDetail = "replay executed the kernel; all postconditions hold "
                       "(spurious candidate)";
    return false;
  } catch (const PugError& e) {
    cex.replayDetail = std::string("replay error: ") + e.what();
    return false;
  }
}

}  // namespace pugpara::check
