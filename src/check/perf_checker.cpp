#include "check/perf_checker.h"

#include "expr/subst.h"
#include "para/loops.h"
#include "para/vcgen.h"
#include "support/timer.h"

namespace pugpara::check {

namespace {

using expr::Expr;
using lang::MemSpace;
using para::ConditionalAssignment;

class PerfChecker {
 public:
  PerfChecker(const lang::Kernel& kernel, const CheckOptions& options,
              const PerfOptions& perf)
      : kernel_(kernel), options_(options), perf_(perf) {}

  Report run() {
    WallTimer total;
    report_.method = "parameterized-perf";
    const encode::EncodeOptions eo = options_.encodeOptions();
    try {
      cfg_ = para::SymbolicConfig::create(ctx_, eo);
      sum_ = para::extractSummary(ctx_, kernel_, cfg_, eo, "k");
    } catch (const PugError& e) {
      report_.outcome = Outcome::Unsupported;
      report_.detail = e.what();
      return report_;
    }

    for (const para::Segment& seg : sum_.segments) {
      if (seg.loop.has_value()) {
        Expr active = ctx_.mkAnd(
            seg.loop->guard,
            para::loopReachabilityInvariant(ctx_, *seg.loop, sum_.width));
        for (const para::BiSummary& bi : seg.loop->bodyBis)
          checkInterval(bi, active);
      } else {
        for (const para::BiSummary& bi : seg.bis)
          checkInterval(bi, ctx_.top());
      }
    }

    if (report_.outcome != Outcome::BugFound) {
      report_.outcome = Outcome::Verified;
      report_.detail = "no bank conflicts or uncoalesced accesses, for any "
                       "number of threads";
    }
    report_.totalSeconds = total.seconds();
    return report_;
  }

 private:
  struct Access {
    Expr guard, addr;
    const lang::VarDecl* array;
    SourceLoc loc;
  };

  /// Every static shared/global access site of an interval (reads + writes).
  std::vector<Access> accesses(const para::BiSummary& bi, bool shared) {
    std::vector<Access> out;
    for (const auto& [array, cas] : bi.cas) {
      if ((array->space == MemSpace::Shared) != shared) continue;
      for (const auto& ca : cas) out.push_back({ca.guard, ca.addr, array, ca.loc});
    }
    for (const auto& rd : bi.reads) {
      if ((rd.array->space == MemSpace::Shared) != shared) continue;
      out.push_back({rd.guard, rd.addr, rd.array, rd.loc});
    }
    return out;
  }

  expr::SubstMap instMap(const para::ThreadInstance& inst) {
    expr::SubstMap m = inst.substFrom(sum_.canonical);
    for (Expr tl : sum_.threadLocalFresh)
      m.emplace(tl.node(), ctx_.freshVar(tl.varName() + "_pf", tl.sort()));
    return m;
  }

  bool satisfiable(Expr constraint, double* seconds) {
    auto solver = options_.makeSolver();
    solver->setTimeoutMs(options_.solverTimeoutMs);
    solver->add(sum_.assumptions);
    solver->add(constraint);
    WallTimer t;
    smt::CheckResult r = solver->check();
    *seconds = t.seconds();
    return r == smt::CheckResult::Sat;
  }

  /// Same half-warp slice: equal block, equal (ty, tz) row, tx in the same
  /// group of `halfWarp` threads.
  Expr sameHalfWarp(const para::ThreadInstance& a,
                    const para::ThreadInstance& b) {
    const uint32_t w = sum_.width;
    Expr hw = ctx_.bvVal(perf_.halfWarp, w);
    return ctx_.mkAnd(
        ctx_.mkAnd(ctx_.mkEq(a.bx, b.bx), ctx_.mkEq(a.by, b.by)),
        ctx_.mkAnd(ctx_.mkAnd(ctx_.mkEq(a.ty, b.ty), ctx_.mkEq(a.tz, b.tz)),
                   ctx_.mkEq(ctx_.mkUDiv(a.tx, hw), ctx_.mkUDiv(b.tx, hw))));
  }

  void checkInterval(const para::BiSummary& bi, Expr active) {
    const uint32_t w = sum_.width;

    // Bank conflicts: same access site, same half-warp, same bank,
    // different addresses.
    for (const Access& acc : accesses(bi, /*shared=*/true)) {
      para::ThreadInstance a =
          para::ThreadInstance::fresh(ctx_, cfg_, w, "pf_a");
      para::ThreadInstance b =
          para::ThreadInstance::fresh(ctx_, cfg_, w, "pf_b");
      expr::SubstMap ma = instMap(a), mb = instMap(b);
      Expr ga = expr::substitute(acc.guard, ma);
      Expr gb = expr::substitute(acc.guard, mb);
      Expr aa = expr::substitute(acc.addr, ma);
      Expr ab = expr::substitute(acc.addr, mb);
      Expr banks = ctx_.bvVal(perf_.banks, w);
      Expr conflict = ctx_.mkAnd(
          ctx_.mkAnd(a.domain, b.domain),
          ctx_.mkAnd(
              ctx_.mkAnd(ga, gb),
              ctx_.mkAnd(sameHalfWarp(a, b),
                         ctx_.mkAnd(ctx_.mkEq(ctx_.mkURem(aa, banks),
                                              ctx_.mkURem(ab, banks)),
                                    ctx_.mkNe(aa, ab)))));
      conflict = ctx_.mkAnd(conflict, active);
      double sec = 0;
      if (satisfiable(conflict, &sec))
        record("bank conflict on '" + acc.array->name + "' at " +
               acc.loc.str());
      report_.solveSeconds += sec;
    }

    // Coalescing: adjacent threads of a half-warp must touch adjacent
    // global addresses (strict 1.x rule).
    for (const Access& acc : accesses(bi, /*shared=*/false)) {
      para::ThreadInstance a =
          para::ThreadInstance::fresh(ctx_, cfg_, w, "pf_c");
      para::ThreadInstance b =
          para::ThreadInstance::fresh(ctx_, cfg_, w, "pf_d");
      expr::SubstMap ma = instMap(a), mb = instMap(b);
      Expr one = ctx_.bvVal(1, w);
      Expr adjacent = ctx_.mkEq(b.tx, ctx_.mkAdd(a.tx, one));
      Expr ga = expr::substitute(acc.guard, ma);
      Expr gb = expr::substitute(acc.guard, mb);
      Expr aa = expr::substitute(acc.addr, ma);
      Expr ab = expr::substitute(acc.addr, mb);
      Expr bad = ctx_.mkAnd(
          ctx_.mkAnd(a.domain, b.domain),
          ctx_.mkAnd(ctx_.mkAnd(ga, gb),
                     ctx_.mkAnd(ctx_.mkAnd(adjacent, sameHalfWarp(a, b)),
                                ctx_.mkNe(ab, ctx_.mkAdd(aa, one)))));
      bad = ctx_.mkAnd(bad, active);
      double sec = 0;
      if (satisfiable(bad, &sec))
        record("non-coalesced access to '" + acc.array->name + "' at " +
               acc.loc.str());
      report_.solveSeconds += sec;
    }
  }

  void record(std::string what) {
    report_.outcome = Outcome::BugFound;
    if (!report_.detail.empty()) report_.detail += "; ";
    report_.detail += what;
  }

  const lang::Kernel& kernel_;
  const CheckOptions& options_;
  const PerfOptions& perf_;
  expr::Context ctx_;
  para::SymbolicConfig cfg_;
  para::KernelSummary sum_;
  Report report_;
};

}  // namespace

Report checkPerformance(const lang::Kernel& kernel,
                        const CheckOptions& options,
                        const PerfOptions& perf) {
  return PerfChecker(kernel, options, perf).run();
}

}  // namespace pugpara::check
