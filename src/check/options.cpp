#include "check/options.h"

namespace pugpara::check {

const char* toString(Method m) {
  switch (m) {
    case Method::Auto: return "auto";
    case Method::Parameterized: return "parameterized";
    case Method::ParameterizedBugHunt: return "parameterized-bughunt";
    case Method::NonParameterized: return "non-parameterized";
  }
  return "?";
}

}  // namespace pugpara::check
