// The uniform check API: one request/result pair for every property the
// tool can verify.
//
// CheckRequest subsumes the five historical VerificationSession entry points
// (equivalence / postconditions / asserts / races / performance). A request
// is a plain value — cheap to copy, trivially batched — and is consumed in
// two ways:
//   * one at a time:   session.run(request)
//   * in batches:      engine.runAll(session, requests)   (src/engine)
// The old named methods survive as thin deprecated wrappers over run().
#pragma once

#include <cstdint>
#include <string>

#include "check/options.h"
#include "check/perf_checker.h"
#include "check/report.h"
#include "lang/ast.h"

namespace pugpara::check {

enum class CheckKind {
  Equivalence,     // kernel vs kernel2
  Postconditions,  // postcond(...) specs of kernel
  Asserts,         // assert(...) statements of kernel
  Races,           // data races in kernel
  Performance,     // bank conflicts / non-coalesced accesses in kernel
};

[[nodiscard]] const char* toString(CheckKind k);

struct CheckRequest {
  CheckKind kind = CheckKind::Postconditions;
  std::string kernel;   // primary kernel name
  std::string kernel2;  // equivalence target (Equivalence only)
  CheckOptions options;
  PerfOptions perf;  // Performance only

  /// Per-check wall-clock deadline enforced by the engine (milliseconds,
  /// 0 = none beyond options.solverTimeoutMs). A check that overruns it
  /// surfaces Outcome::Unknown; sibling checks in the batch are unaffected.
  uint32_t deadlineMs = 0;

  /// Display label, e.g. "races(histogram)" or "equiv(a, b)".
  [[nodiscard]] std::string label() const;
};

struct CheckResult {
  CheckKind kind = CheckKind::Postconditions;
  std::string kernel;
  std::string kernel2;
  Report report;

  [[nodiscard]] std::string label() const;
  [[nodiscard]] bool ok() const { return report.ok(); }
  /// One JSON object: {"kind", "kernel", ..., "report": Report::json()}.
  [[nodiscard]] std::string json() const;
};

/// Executes one request against an analyzed program. Front-end problems
/// (unknown kernel name, shape outside the fragment) come back as
/// Outcome::Unsupported instead of throwing, so one bad request never
/// poisons a batch.
[[nodiscard]] CheckResult runCheck(const lang::Program& program,
                                   const CheckRequest& request);

}  // namespace pugpara::check
