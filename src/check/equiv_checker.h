// Equivalence checking of two kernels: the tool's flagship use
// (debugging memory-coalescing / bank-conflict optimizations).
#pragma once

#include "check/options.h"
#include "check/report.h"
#include "lang/ast.h"

namespace pugpara::check {

/// Checks that `src` and `tgt` produce identical outputs for all inputs —
/// and, with the parameterized methods, for every launch configuration.
/// The kernels must have the same parameter shape.
[[nodiscard]] Report checkEquivalence(const lang::Kernel& src,
                                      const lang::Kernel& tgt,
                                      const CheckOptions& options);

}  // namespace pugpara::check
