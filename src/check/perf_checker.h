// Parameterized performance-bug detection: shared-memory bank conflicts and
// non-coalesced global accesses — the two bug classes whose *fixes* (the
// optimized kernels) PUGpara's equivalence checking validates. The warp
// model is the paper-era one: 16 banks, half-warps of 16 threads, strict
// sequential coalescing (compute capability 1.x).
#pragma once

#include "check/options.h"
#include "check/report.h"
#include "lang/ast.h"

namespace pugpara::check {

struct PerfOptions {
  uint32_t banks = 16;
  uint32_t halfWarp = 16;
};

/// Reports a bug when some configuration and input produce a shared-memory
/// bank conflict or a non-coalesced global access. 1-D thread blocks are
/// modeled precisely; higher dimensions treat each (tid.y, tid.z) row as a
/// separate warp slice.
[[nodiscard]] Report checkPerformance(const lang::Kernel& kernel,
                                      const CheckOptions& options,
                                      const PerfOptions& perf = {});

}  // namespace pugpara::check
