// User-facing configuration of the checkers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "encode/ssa_encoder.h"
#include "para/resolve.h"
#include "smt/solver.h"

namespace pugpara::check {

enum class Method {
  Auto,              // parameterized when possible, else non-parameterized
  Parameterized,     // Sec. IV (exact frame handling)
  ParameterizedBugHunt,  // Sec. IV-D fast bug hunting (under-approximate)
  NonParameterized,  // Sec. III (requires a concrete grid)
};

[[nodiscard]] const char* toString(Method m);

struct CheckOptions {
  Method method = Method::Auto;
  uint32_t width = 16;  // scalar bit-width (Table II's 8b/16b/32b knob)
  smt::Backend backend = smt::Backend::Z3;
  /// MiniSMT raw-speed technique toggles and seed-portfolio width; ignored
  /// by the Z3 backend. Defaults: every technique on, portfolio off.
  smt::MiniTuning mini;
  para::FrameMode frameMode = para::FrameMode::MonotoneQe;
  uint32_t solverTimeoutMs = 300000;  // the paper's 5-minute T.O.
  uint32_t monoTimeoutMs = 2000;

  /// Concrete grid for the non-parameterized method (and for replay when a
  /// parameterized counterexample does not determine the configuration).
  std::optional<encode::GridConfig> grid;

  /// "+C" concretizations: "bdim.x"/"gdim.y"/... and scalar parameter names.
  std::unordered_map<std::string, uint64_t> concretize;

  /// Non-parameterized encoding style: emit the paper's Sec. III SSA
  /// equations instead of substituted store chains (see EncodeOptions).
  bool ssaEquations = false;

  /// Incremental solving: the checkers keep one solver alive per barrier
  /// interval (or VC batch), assert the shared prefix once and pose each
  /// query through checkAssuming(). Off = the pre-incremental behavior of
  /// one fresh solver per query (kept for the ablation bench and for
  /// verdict cross-checks; both modes must agree on every corpus kernel).
  bool incrementalSolving = true;

  /// Tiered query discharge: Tier 0 proves pair queries unsatisfiable in
  /// the abstract interval/stride domain (zero solver calls), Tier 1 poses
  /// surviving queries against a cone-of-influence slice of the prefix
  /// (escalating to the full prefix whenever the slice fails to prove
  /// Unsat). Both tiers only ever shortcut Unsat answers, so verdicts are
  /// identical with the pipeline off — that equivalence is enforced by
  /// bench/ablate_prefilter across the corpus and the injected-bug mutants.
  bool prefilter = true;

  /// Validate counterexamples by concrete replay in the VM (on by default;
  /// this is what keeps bug-hunt mode's reports real).
  bool replayCounterexamples = true;
  /// Replay budget: skip validation when the witness grid is larger.
  uint64_t maxReplayThreads = 1 << 16;

  /// Solver construction override. The checkers obtain every solver through
  /// makeSolver() below; the verification engine injects caching, portfolio
  /// racing, deadlines and cancellation here without the checkers knowing.
  /// Null (the default) means a plain `backend` solver.
  std::function<std::unique_ptr<smt::Solver>()> solverFactory;

  /// The one way checkers create solvers (honors `solverFactory`).
  [[nodiscard]] std::unique_ptr<smt::Solver> makeSolver() const {
    return solverFactory ? solverFactory() : smt::makeSolver(backend, mini);
  }

  [[nodiscard]] encode::EncodeOptions encodeOptions() const {
    encode::EncodeOptions eo;
    eo.width = width;
    eo.concretize = concretize;
    eo.ssaEquations = ssaEquations;
    return eo;
  }
};

}  // namespace pugpara::check
