// VerificationSession: the library's convenience facade. Owns the parsed
// program and executes CheckRequests against it. This is the API the
// examples, benches and most downstream users go through; batches of
// requests go through engine::VerificationEngine instead, which runs them
// on a worker pool with a shared solver-query cache.
#pragma once

#include <memory>
#include <string>

#include "check/equiv_checker.h"
#include "check/perf_checker.h"
#include "check/postcond_checker.h"
#include "check/race_checker.h"
#include "check/request.h"
#include "lang/parser.h"

namespace pugpara::check {

class VerificationSession {
 public:
  /// Parses and analyzes a translation unit (one or more kernels).
  /// Throws PugError with diagnostics on front-end errors.
  explicit VerificationSession(std::string_view source)
      : program_(lang::parseAndAnalyze(source)) {}

  /// Takes ownership of an externally built program (e.g. mutated kernels).
  explicit VerificationSession(std::unique_ptr<lang::Program> program)
      : program_(std::move(program)) {}

  [[nodiscard]] const lang::Kernel& kernel(const std::string& name) const {
    const lang::Kernel* k = program_->findKernel(name);
    require(k != nullptr, "no kernel named '" + name + "'");
    return *k;
  }
  [[nodiscard]] const lang::Program& program() const { return *program_; }

  /// The uniform entry point: executes one CheckRequest. Thread-safe for
  /// concurrent calls (the program is read-only after construction and every
  /// check builds its own expression context and solver).
  [[nodiscard]] CheckResult run(const CheckRequest& request) const {
    return runCheck(*program_, request);
  }

  // ---- Deprecated named entry points ---------------------------------------
  // Thin wrappers over run(), kept so existing callers compile unchanged.
  // New code should build a CheckRequest (and batch them via the engine).

  /// \deprecated Use run() with CheckKind::Equivalence.
  [[nodiscard]] Report equivalence(const std::string& source,
                                   const std::string& target,
                                   const CheckOptions& options = {}) const {
    return run({CheckKind::Equivalence, source, target, options, {}, 0})
        .report;
  }
  /// \deprecated Use run() with CheckKind::Postconditions.
  [[nodiscard]] Report postconditions(const std::string& name,
                                      const CheckOptions& options = {}) const {
    return run({CheckKind::Postconditions, name, "", options, {}, 0}).report;
  }
  /// \deprecated Use run() with CheckKind::Asserts.
  [[nodiscard]] Report asserts(const std::string& name,
                               const CheckOptions& options = {}) const {
    return run({CheckKind::Asserts, name, "", options, {}, 0}).report;
  }
  /// \deprecated Use run() with CheckKind::Races.
  [[nodiscard]] Report races(const std::string& name,
                             const CheckOptions& options = {}) const {
    return run({CheckKind::Races, name, "", options, {}, 0}).report;
  }
  /// \deprecated Use run() with CheckKind::Performance.
  [[nodiscard]] Report performance(const std::string& name,
                                   const CheckOptions& options = {},
                                   const PerfOptions& perf = {}) const {
    return run({CheckKind::Performance, name, "", options, perf, 0}).report;
  }

 private:
  std::unique_ptr<lang::Program> program_;
};

}  // namespace pugpara::check
