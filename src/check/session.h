// VerificationSession: the library's convenience facade. Owns the parsed
// program and dispatches to the checkers by kernel name. This is the API
// the examples, benches and most downstream users go through.
#pragma once

#include <memory>
#include <string>

#include "check/equiv_checker.h"
#include "check/perf_checker.h"
#include "check/postcond_checker.h"
#include "check/race_checker.h"
#include "lang/parser.h"

namespace pugpara::check {

class VerificationSession {
 public:
  /// Parses and analyzes a translation unit (one or more kernels).
  /// Throws PugError with diagnostics on front-end errors.
  explicit VerificationSession(std::string_view source)
      : program_(lang::parseAndAnalyze(source)) {}

  /// Takes ownership of an externally built program (e.g. mutated kernels).
  explicit VerificationSession(std::unique_ptr<lang::Program> program)
      : program_(std::move(program)) {}

  [[nodiscard]] const lang::Kernel& kernel(const std::string& name) const {
    const lang::Kernel* k = program_->findKernel(name);
    require(k != nullptr, "no kernel named '" + name + "'");
    return *k;
  }
  [[nodiscard]] const lang::Program& program() const { return *program_; }

  [[nodiscard]] Report equivalence(const std::string& source,
                                   const std::string& target,
                                   const CheckOptions& options = {}) const {
    return checkEquivalence(kernel(source), kernel(target), options);
  }
  [[nodiscard]] Report postconditions(const std::string& name,
                                      const CheckOptions& options = {}) const {
    return checkPostconditions(kernel(name), options);
  }
  [[nodiscard]] Report asserts(const std::string& name,
                               const CheckOptions& options = {}) const {
    return checkAsserts(kernel(name), options);
  }
  [[nodiscard]] Report races(const std::string& name,
                             const CheckOptions& options = {}) const {
    return checkRaces(kernel(name), options);
  }
  [[nodiscard]] Report performance(const std::string& name,
                                   const CheckOptions& options = {},
                                   const PerfOptions& perf = {}) const {
    return checkPerformance(kernel(name), options, perf);
  }

 private:
  std::unique_ptr<lang::Program> program_;
};

}  // namespace pugpara::check
