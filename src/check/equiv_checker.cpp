#include "check/equiv_checker.h"

#include "abstract/prefilter.h"
#include "check/replay.h"
#include "encode/equivalence.h"
#include "para/vcgen.h"
#include "support/timer.h"

namespace pugpara::check {

namespace {

using expr::Expr;

uint64_t replayCells(uint32_t width) {
  return std::min<uint64_t>(uint64_t{1} << std::min<uint32_t>(width, 62),
                            uint64_t{1} << 16);
}

Report runParameterized(const lang::Kernel& src, const lang::Kernel& tgt,
                        const CheckOptions& options, para::FrameMode mode) {
  WallTimer total;
  Report report;
  report.method = mode == para::FrameMode::BugHunt
                      ? "parameterized-bughunt"
                      : std::string("parameterized(") + para::toString(mode) +
                            ")";
  expr::Context ctx;
  const encode::EncodeOptions eo = options.encodeOptions();

  para::ParamVcSet vcs;
  para::SymbolicConfig cfg;
  para::KernelSummary sumS, sumT;
  try {
    cfg = para::SymbolicConfig::create(ctx, eo);
    sumS = para::extractSummary(ctx, src, cfg, eo, "s");
    sumT = para::extractSummary(ctx, tgt, cfg, eo, "t");
    vcs = para::buildEquivalenceVcs(ctx, sumS, sumT, mode,
                                    options.monoTimeoutMs);
  } catch (const PugError& e) {
    report.outcome = Outcome::Unsupported;
    report.detail = e.what();
    report.totalSeconds = total.seconds();
    return report;
  }
  report.caveats = vcs.caveats;
  report.stats = vcs.stats;

  bool anyUnknown = false;
  // Tier 0: each VC is a standalone conjunction (no shared prefix), so the
  // abstract domain gets one shot at proving it unsatisfiable — i.e. the
  // VC holds — before any solver sees it.
  abstract::Prefilter prefilter;
  // Incremental mode: one solver serves the whole VC batch. The VCs share
  // summary subterms, so the backend encodes them once; each VC is posed
  // as a single assumption and retracts itself.
  std::unique_ptr<smt::Solver> shared;
  if (options.incrementalSolving) {
    shared = options.makeSolver();
    shared->setTimeoutMs(options.solverTimeoutMs);
  }
  for (const auto& vc : vcs.vcs) {
    if (options.prefilter) {
      WallTimer pre;
      const bool discharged =
          prefilter.provesUnsat(std::span<const Expr>(&vc.formula, 1));
      report.solveSeconds += pre.seconds();
      if (discharged) {
        ++report.discharge.tier0;
        continue;
      }
    }
    std::unique_ptr<smt::Solver> fresh;
    if (shared == nullptr) {
      fresh = options.makeSolver();
      fresh->setTimeoutMs(options.solverTimeoutMs);
      fresh->add(vc.formula);
    }
    smt::Solver* solver = shared != nullptr ? shared.get() : fresh.get();
    WallTimer solve;
    smt::CheckResult r =
        shared != nullptr
            ? solver->checkAssuming(std::span<const Expr>(&vc.formula, 1))
            : solver->check();
    report.solveSeconds += solve.seconds();
    ++report.discharge.solverCalls;
    ++report.discharge.fullSmt;
    if (r == smt::CheckResult::Unknown) {
      anyUnknown = true;
      continue;
    }
    if (r == smt::CheckResult::Unsat) continue;

    // SAT: candidate bug. Extract and (optionally) replay.
    auto model = solver->model();
    ReplayInputs ri{cfg.bdimX, cfg.bdimY, cfg.bdimZ,
                    cfg.gdimX, cfg.gdimY, sumS.scalarInputs,
                    sumS.inputArrays, vc.witnesses};
    Counterexample cex = extractCounterexample(*model, ri, ctx, eo.width,
                                               replayCells(eo.width));
    if (options.replayCounterexamples)
      replayEquivalence(src, tgt, cex, eo.width, options.maxReplayThreads);
    report.counterexamples.push_back(std::move(cex));
    const Counterexample& back = report.counterexamples.back();
    if (!options.replayCounterexamples || back.replayConfirmed ||
        !back.replayed) {
      report.outcome = Outcome::BugFound;
      report.detail = "kernels disagree (" + vc.name + ")";
      report.totalSeconds = total.seconds();
      return report;
    }
    // Replay rejected the witness: with caveats/bug-hunt this can happen.
    anyUnknown = true;
    report.detail = "candidate from '" + vc.name +
                    "' did not replay; result inconclusive";
  }

  if (anyUnknown) {
    report.outcome = Outcome::Unknown;
  } else if (mode == para::FrameMode::BugHunt) {
    report.outcome = Outcome::NoBugFound;
    report.detail = "no bug found (bug-hunt is under-approximate)";
  } else {
    report.outcome = Outcome::Verified;
    report.detail = vcs.exact
                        ? "equivalent for any number of threads"
                        : "equivalent modulo the recorded alignment caveats";
  }
  report.totalSeconds = total.seconds();
  return report;
}

Report runNonParameterized(const lang::Kernel& src, const lang::Kernel& tgt,
                           const CheckOptions& options) {
  WallTimer total;
  Report report;
  report.method = "non-parameterized";
  if (!options.grid.has_value()) {
    report.outcome = Outcome::Unsupported;
    report.detail = "non-parameterized checking needs a concrete grid";
    return report;
  }
  const encode::GridConfig& grid = *options.grid;
  expr::Context ctx;
  const encode::EncodeOptions eo = options.encodeOptions();

  encode::EncodedKernel encS, encT;
  try {
    encS = encode::encodeSsa(ctx, src, grid, eo, "s");
    encT = encode::encodeSsa(ctx, tgt, grid, eo, "t");
  } catch (const PugError& e) {
    report.outcome = Outcome::Unsupported;
    report.detail = e.what();
    report.totalSeconds = total.seconds();
    return report;
  }
  encode::EquivalenceQuery q = encode::buildEquivalenceQuery(ctx, encS, encT);

  if (options.prefilter) {
    WallTimer pre;
    abstract::Prefilter prefilter;
    const Expr parts[] = {q.assumptions, q.outputsDiffer};
    const bool discharged = prefilter.provesUnsat(parts);
    report.solveSeconds = pre.seconds();
    if (discharged) {
      ++report.discharge.tier0;
      report.outcome = Outcome::Verified;
      report.detail = "equivalent for the " + grid.str() + " configuration";
      report.totalSeconds = total.seconds();
      return report;
    }
  }
  auto solver = options.makeSolver();
  solver->setTimeoutMs(options.solverTimeoutMs);
  solver->add(q.assumptions);
  solver->add(q.outputsDiffer);
  WallTimer solve;
  smt::CheckResult r = solver->check();
  report.solveSeconds += solve.seconds();
  ++report.discharge.solverCalls;
  ++report.discharge.fullSmt;

  switch (r) {
    case smt::CheckResult::Unsat:
      report.outcome = Outcome::Verified;
      report.detail = "equivalent for the " + grid.str() + " configuration";
      break;
    case smt::CheckResult::Unknown:
      report.outcome = Outcome::Unknown;
      report.detail = "solver timeout / gave up";
      break;
    case smt::CheckResult::Sat: {
      auto model = solver->model();
      ReplayInputs ri;
      ri.bdimX = ctx.bvVal(grid.bdimX, eo.width);
      ri.bdimY = ctx.bvVal(grid.bdimY, eo.width);
      ri.bdimZ = ctx.bvVal(grid.bdimZ, eo.width);
      ri.gdimX = ctx.bvVal(grid.gdimX, eo.width);
      ri.gdimY = ctx.bvVal(grid.gdimY, eo.width);
      ri.scalarInputs = encS.scalarInputs;
      ri.inputArrays = encS.inputArrays;
      ri.witnesses = q.indexVars;
      Counterexample cex = extractCounterexample(*model, ri, ctx, eo.width,
                                                 replayCells(eo.width));
      if (options.replayCounterexamples)
        replayEquivalence(src, tgt, cex, eo.width, options.maxReplayThreads);
      report.counterexamples.push_back(std::move(cex));
      report.outcome = Outcome::BugFound;
      report.detail = "kernels disagree under " + grid.str();
      break;
    }
  }
  report.totalSeconds = total.seconds();
  return report;
}

}  // namespace

Report checkEquivalence(const lang::Kernel& src, const lang::Kernel& tgt,
                        const CheckOptions& options) {
  switch (options.method) {
    case Method::Parameterized:
      return runParameterized(src, tgt, options, options.frameMode);
    case Method::ParameterizedBugHunt:
      return runParameterized(src, tgt, options, para::FrameMode::BugHunt);
    case Method::NonParameterized:
      return runNonParameterized(src, tgt, options);
    case Method::Auto: {
      Report r = runParameterized(src, tgt, options, options.frameMode);
      if (r.outcome == Outcome::Unsupported && options.grid.has_value()) {
        Report fallback = runNonParameterized(src, tgt, options);
        fallback.caveats.push_back(
            "parameterized method unsupported here (" + r.detail +
            "); fell back to a fixed configuration");
        return fallback;
      }
      return r;
    }
  }
  throw PugError("unknown method");
}

}  // namespace pugpara::check
