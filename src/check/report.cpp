#include "check/report.h"

#include <sstream>

#include "check/options.h"
#include "support/json.h"

namespace pugpara::check {

const char* toString(Outcome o) {
  switch (o) {
    case Outcome::Verified: return "verified";
    case Outcome::BugFound: return "bug-found";
    case Outcome::NoBugFound: return "no-bug-found";
    case Outcome::Unknown: return "unknown";
    case Outcome::Unsupported: return "unsupported";
  }
  return "?";
}

std::string Counterexample::str() const {
  std::ostringstream os;
  os << "grid(" << gdimX << "x" << gdimY << ") block(" << bdimX << "x"
     << bdimY << "x" << bdimZ << ")";
  if (!scalarArgs.empty()) {
    os << " args(";
    for (size_t i = 0; i < scalarArgs.size(); ++i)
      os << (i ? ", " : "") << scalarArgs[i];
    os << ")";
  }
  if (!witnessValues.empty()) {
    os << " witness(";
    for (size_t i = 0; i < witnessValues.size(); ++i)
      os << (i ? ", " : "") << witnessValues[i];
    os << ")";
  }
  if (replayed)
    os << (replayConfirmed ? " [replay: CONFIRMED]" : " [replay: rejected]");
  return os.str();
}

std::string Counterexample::json() const {
  std::ostringstream os;
  os << "{\"grid\":[" << gdimX << ',' << gdimY << "],\"block\":[" << bdimX
     << ',' << bdimY << ',' << bdimZ << "],\"scalarArgs\":[";
  for (size_t i = 0; i < scalarArgs.size(); ++i)
    os << (i ? "," : "") << scalarArgs[i];
  os << "],\"witnessValues\":[";
  for (size_t i = 0; i < witnessValues.size(); ++i)
    os << (i ? "," : "") << witnessValues[i];
  os << "],\"inputArrays\":[";
  for (size_t i = 0; i < inputArrays.size(); ++i) {
    os << (i ? ",[" : "[");
    for (size_t j = 0; j < inputArrays[i].size(); ++j)
      os << (j ? "," : "") << inputArrays[i][j];
    os << ']';
  }
  os << "],\"replayed\":" << (replayed ? "true" : "false")
     << ",\"replayConfirmed\":" << (replayConfirmed ? "true" : "false")
     << ",\"replayDetail\":" << json::quote(replayDetail) << '}';
  return os.str();
}

std::string Report::json() const {
  std::ostringstream os;
  os << "{\"outcome\":" << json::quote(toString(outcome))
     << ",\"method\":" << json::quote(method)
     << ",\"detail\":" << json::quote(detail)
     << ",\"solveSeconds\":" << json::number(solveSeconds)
     << ",\"totalSeconds\":" << json::number(totalSeconds) << ",\"caveats\":[";
  for (size_t i = 0; i < caveats.size(); ++i)
    os << (i ? "," : "") << json::quote(caveats[i]);
  os << "],\"stats\":{\"instances\":" << stats.instances
     << ",\"qeCerts\":" << stats.qeCerts
     << ",\"forallCerts\":" << stats.forallCerts
     << ",\"uniformCerts\":" << stats.uniformCerts
     << ",\"tier0Discharged\":" << discharge.tier0
     << ",\"slicedQueries\":" << discharge.sliced
     << ",\"fullSmtQueries\":" << discharge.fullSmt
     << ",\"solverCalls\":" << discharge.solverCalls
     << "},\"counterexamples\":[";
  for (size_t i = 0; i < counterexamples.size(); ++i)
    os << (i ? "," : "") << counterexamples[i].json();
  os << "]}";
  return os.str();
}

std::string Report::str() const {
  std::ostringstream os;
  os << toString(outcome) << " (" << method << ", " << solveSeconds
     << "s solve)";
  if (!detail.empty()) os << ": " << detail;
  for (const auto& c : caveats) os << "\n  caveat: " << c;
  for (const auto& cx : counterexamples) os << "\n  cex: " << cx.str();
  return os.str();
}

}  // namespace pugpara::check
