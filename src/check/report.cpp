#include "check/report.h"

#include <sstream>

#include "check/options.h"

namespace pugpara::check {

const char* toString(Outcome o) {
  switch (o) {
    case Outcome::Verified: return "verified";
    case Outcome::BugFound: return "bug-found";
    case Outcome::NoBugFound: return "no-bug-found";
    case Outcome::Unknown: return "unknown";
    case Outcome::Unsupported: return "unsupported";
  }
  return "?";
}

std::string Counterexample::str() const {
  std::ostringstream os;
  os << "grid(" << gdimX << "x" << gdimY << ") block(" << bdimX << "x"
     << bdimY << "x" << bdimZ << ")";
  if (!scalarArgs.empty()) {
    os << " args(";
    for (size_t i = 0; i < scalarArgs.size(); ++i)
      os << (i ? ", " : "") << scalarArgs[i];
    os << ")";
  }
  if (!witnessValues.empty()) {
    os << " witness(";
    for (size_t i = 0; i < witnessValues.size(); ++i)
      os << (i ? ", " : "") << witnessValues[i];
    os << ")";
  }
  if (replayed)
    os << (replayConfirmed ? " [replay: CONFIRMED]" : " [replay: rejected]");
  return os.str();
}

std::string Report::str() const {
  std::ostringstream os;
  os << toString(outcome) << " (" << method << ", " << solveSeconds
     << "s solve)";
  if (!detail.empty()) os << ": " << detail;
  for (const auto& c : caveats) os << "\n  caveat: " << c;
  for (const auto& cx : counterexamples) os << "\n  cex: " << cx.str();
  return os.str();
}

}  // namespace pugpara::check
