// Check outcomes and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "para/resolve.h"

namespace pugpara::check {

enum class Outcome {
  Verified,     // property proven (for the method's scope)
  BugFound,     // counterexample found (replay-confirmed when enabled)
  NoBugFound,   // under-approximate search found nothing (bug-hunt mode)
  Unknown,      // solver gave up / timed out
  Unsupported,  // kernel shape outside the method's fragment
};

[[nodiscard]] const char* toString(Outcome o);

/// A concrete disagreement witness extracted from a SAT model.
struct Counterexample {
  uint64_t bdimX = 1, bdimY = 1, bdimZ = 1, gdimX = 1, gdimY = 1;
  std::vector<uint64_t> scalarArgs;
  /// Input array contents (only cells the replay materializes).
  std::vector<std::vector<uint64_t>> inputArrays;
  std::vector<uint64_t> witnessValues;  // VC witness vars (indices, k, ...)
  bool replayed = false;
  bool replayConfirmed = false;
  std::string replayDetail;

  [[nodiscard]] std::string str() const;
  /// Machine-readable form (one JSON object).
  [[nodiscard]] std::string json() const;
};

struct Report {
  Outcome outcome = Outcome::Unknown;
  std::string method;      // which encoding ran ("parameterized", ...)
  std::string detail;      // free-form explanation
  double solveSeconds = 0;
  double totalSeconds = 0;
  std::vector<std::string> caveats;
  para::ResolveStats stats;
  std::vector<Counterexample> counterexamples;

  [[nodiscard]] bool ok() const { return outcome == Outcome::Verified; }
  /// Human-readable rendering (unchanged, the CLI default).
  [[nodiscard]] std::string str() const;
  /// Machine-readable rendering: outcome, method, timings, caveats, stats
  /// and counterexamples as one JSON object (the CLI's --json format).
  [[nodiscard]] std::string json() const;
};

}  // namespace pugpara::check
