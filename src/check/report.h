// Check outcomes and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "para/resolve.h"

namespace pugpara::check {

enum class Outcome {
  Verified,     // property proven (for the method's scope)
  BugFound,     // counterexample found (replay-confirmed when enabled)
  NoBugFound,   // under-approximate search found nothing (bug-hunt mode)
  Unknown,      // solver gave up / timed out
  Unsupported,  // kernel shape outside the method's fragment
};

[[nodiscard]] const char* toString(Outcome o);

/// A concrete disagreement witness extracted from a SAT model.
struct Counterexample {
  uint64_t bdimX = 1, bdimY = 1, bdimZ = 1, gdimX = 1, gdimY = 1;
  std::vector<uint64_t> scalarArgs;
  /// Input array contents (only cells the replay materializes).
  std::vector<std::vector<uint64_t>> inputArrays;
  std::vector<uint64_t> witnessValues;  // VC witness vars (indices, k, ...)
  bool replayed = false;
  bool replayConfirmed = false;
  std::string replayDetail;

  [[nodiscard]] std::string str() const;
  /// Machine-readable form (one JSON object).
  [[nodiscard]] std::string json() const;
};

/// Where each checker query was settled by the tiered discharge pipeline.
struct DischargeStats {
  uint64_t tier0 = 0;        // settled by the abstract domain, no solver call
  uint64_t sliced = 0;       // settled by a cone-of-influence sliced query
  uint64_t fullSmt = 0;      // needed the full formula
  uint64_t solverCalls = 0;  // backend check()/checkAssuming() invocations

  [[nodiscard]] uint64_t queries() const { return tier0 + sliced + fullSmt; }
};

struct Report {
  Outcome outcome = Outcome::Unknown;
  std::string method;      // which encoding ran ("parameterized", ...)
  std::string detail;      // free-form explanation
  double solveSeconds = 0;
  double totalSeconds = 0;
  std::vector<std::string> caveats;
  para::ResolveStats stats;
  DischargeStats discharge;
  std::vector<Counterexample> counterexamples;

  [[nodiscard]] bool ok() const { return outcome == Outcome::Verified; }
  /// Human-readable rendering (unchanged, the CLI default).
  [[nodiscard]] std::string str() const;
  /// Machine-readable rendering: outcome, method, timings, caveats, stats
  /// and counterexamples as one JSON object (the CLI's --json format).
  [[nodiscard]] std::string json() const;
};

}  // namespace pugpara::check
