#include "check/request.h"

#include "check/equiv_checker.h"
#include "check/postcond_checker.h"
#include "check/race_checker.h"
#include "support/diagnostics.h"
#include "support/json.h"

namespace pugpara::check {

const char* toString(CheckKind k) {
  switch (k) {
    case CheckKind::Equivalence: return "equivalence";
    case CheckKind::Postconditions: return "postconditions";
    case CheckKind::Asserts: return "asserts";
    case CheckKind::Races: return "races";
    case CheckKind::Performance: return "performance";
  }
  return "?";
}

namespace {

std::string makeLabel(CheckKind kind, const std::string& kernel,
                      const std::string& kernel2) {
  std::string out = toString(kind);
  out += '(';
  out += kernel;
  if (kind == CheckKind::Equivalence) {
    out += ", ";
    out += kernel2;
  }
  out += ')';
  return out;
}

}  // namespace

std::string CheckRequest::label() const {
  return makeLabel(kind, kernel, kernel2);
}

std::string CheckResult::label() const {
  return makeLabel(kind, kernel, kernel2);
}

std::string CheckResult::json() const {
  std::string out = "{\"kind\":";
  out += json::quote(toString(kind));
  out += ",\"kernel\":";
  out += json::quote(kernel);
  if (kind == CheckKind::Equivalence) {
    out += ",\"kernel2\":";
    out += json::quote(kernel2);
  }
  out += ",\"report\":";
  out += report.json();
  out += '}';
  return out;
}

CheckResult runCheck(const lang::Program& program,
                     const CheckRequest& request) {
  CheckResult result;
  result.kind = request.kind;
  result.kernel = request.kernel;
  result.kernel2 = request.kernel2;

  auto find = [&](const std::string& name) -> const lang::Kernel* {
    return program.findKernel(name);
  };

  try {
    const lang::Kernel* k1 = find(request.kernel);
    if (k1 == nullptr)
      throw PugError("no kernel named '" + request.kernel + "'");
    switch (request.kind) {
      case CheckKind::Equivalence: {
        const lang::Kernel* k2 = find(request.kernel2);
        if (k2 == nullptr)
          throw PugError("no kernel named '" + request.kernel2 + "'");
        result.report = checkEquivalence(*k1, *k2, request.options);
        break;
      }
      case CheckKind::Postconditions:
        result.report = checkPostconditions(*k1, request.options);
        break;
      case CheckKind::Asserts:
        result.report = checkAsserts(*k1, request.options);
        break;
      case CheckKind::Races:
        result.report = checkRaces(*k1, request.options);
        break;
      case CheckKind::Performance:
        result.report =
            checkPerformance(*k1, request.options, request.perf);
        break;
    }
  } catch (const PugError& e) {
    result.report.outcome = Outcome::Unsupported;
    result.report.method = "none";
    result.report.detail = e.what();
  }
  return result;
}

}  // namespace pugpara::check
