// Parameterized data-race detection: two symbolic thread instances within
// one barrier interval, overlapping accesses with at least one write. This
// is the analysis the paper says "the techniques used in PUG can easily
// accommodate" with symbolic thread identifiers — and the precondition for
// the serialization both encoders rely on.
#pragma once

#include "check/options.h"
#include "check/report.h"
#include "lang/ast.h"

namespace pugpara::check {

/// Races that change values (write-write with different values, or
/// read-write) make the kernel non-deterministic and are reported as bugs;
/// same-value write-write overlaps are recorded as caveats (benign for the
/// determinism property the tool targets).
[[nodiscard]] Report checkRaces(const lang::Kernel& kernel,
                                const CheckOptions& options);

}  // namespace pugpara::check
