#include "check/race_checker.h"

#include <sstream>

#include "expr/subst.h"
#include "para/loops.h"
#include "para/vcgen.h"
#include "support/timer.h"

namespace pugpara::check {

namespace {

using expr::Expr;
using lang::MemSpace;
using lang::VarDecl;
using para::ConditionalAssignment;

class RaceChecker {
 public:
  RaceChecker(const lang::Kernel& kernel, const CheckOptions& options)
      : kernel_(kernel), options_(options) {}

  Report run() {
    WallTimer total;
    report_.method = "parameterized-race";
    const encode::EncodeOptions eo = options_.encodeOptions();
    try {
      cfg_ = para::SymbolicConfig::create(ctx_, eo);
      sum_ = para::extractSummary(ctx_, kernel_, cfg_, eo, "k");
    } catch (const PugError& e) {
      report_.outcome = Outcome::Unsupported;
      report_.detail = e.what();
      return report_;
    }

    for (const para::Segment& seg : sum_.segments) {
      if (seg.loop.has_value()) {
        report_.caveats.push_back(
            "barrier-carrying loop: loop entry/exit are modeled as interval "
            "boundaries, so races between pre-loop writes and first-"
            "iteration reads require an explicit barrier before the loop");
        Expr active = ctx_.mkAnd(
            seg.loop->guard,
            para::loopReachabilityInvariant(ctx_, *seg.loop, sum_.width));
        for (const para::BiSummary& bi : seg.loop->bodyBis)
          checkInterval(bi, active);
      } else {
        for (const para::BiSummary& bi : seg.bis)
          checkInterval(bi, ctx_.top());
      }
    }

    if (report_.outcome != Outcome::BugFound) {
      report_.outcome = Outcome::Verified;
      report_.detail = benignOverlaps_ == 0
                           ? "race-free for any number of threads"
                           : "no value-changing races; " +
                                 std::to_string(benignOverlaps_) +
                                 " benign same-value overlap(s)";
    }
    report_.totalSeconds = total.seconds();
    return report_;
  }

 private:
  struct Instantiated {
    para::ThreadInstance inst;
    Expr guard, addr, value;
  };

  Instantiated instantiate(const ConditionalAssignment& ca,
                           const char* hint) {
    para::ThreadInstance inst = para::ThreadInstance::fresh(
        ctx_, cfg_, sum_.width, std::string("rc_") + hint);
    expr::SubstMap m = inst.substFrom(sum_.canonical);
    for (Expr tl : sum_.threadLocalFresh)
      m.emplace(tl.node(), ctx_.freshVar(tl.varName() + "_rc", tl.sort()));
    return {inst, expr::substitute(ca.guard, m),
            expr::substitute(ca.addr, m),
            ca.value.isNull() ? Expr() : expr::substitute(ca.value, m)};
  }

  /// Sat-checks `constraint` under the kernel assumptions; on Sat, records a
  /// finding with the witness threads.
  bool satisfiable(Expr constraint, double* seconds) {
    auto solver = options_.makeSolver();
    solver->setTimeoutMs(options_.solverTimeoutMs);
    solver->add(sum_.assumptions);
    solver->add(constraint);
    WallTimer t;
    smt::CheckResult r = solver->check();
    *seconds = t.seconds();
    return r == smt::CheckResult::Sat;
  }

  Expr sameBlock(const para::ThreadInstance& a,
                 const para::ThreadInstance& b) {
    return ctx_.mkAnd(ctx_.mkEq(a.bx, b.bx), ctx_.mkEq(a.by, b.by));
  }

  void checkInterval(const para::BiSummary& bi, Expr active) {
    for (const auto& [array, cas] : bi.cas) {
      // Write-write: every CA pair, including a CA against itself.
      for (size_t i = 0; i < cas.size(); ++i) {
        for (size_t j = i; j < cas.size(); ++j) {
          Instantiated a = instantiate(cas[i], "w1");
          Instantiated b = instantiate(cas[j], "w2");
          Expr overlap = ctx_.mkAnd(
              ctx_.mkAnd(a.inst.domain, b.inst.domain),
              ctx_.mkAnd(ctx_.mkAnd(a.guard, b.guard),
                         ctx_.mkAnd(ctx_.mkEq(a.addr, b.addr),
                                    a.inst.distinctFrom(b.inst))));
          if (array->space == MemSpace::Shared)
            overlap = ctx_.mkAnd(overlap, sameBlock(a.inst, b.inst));
          overlap = ctx_.mkAnd(overlap, active);

          double sec = 0;
          // Value-changing write-write race.
          if (satisfiable(ctx_.mkAnd(overlap, ctx_.mkNe(a.value, b.value)),
                          &sec)) {
            record("write-write race on '" + array->name + "' (" +
                   cas[i].loc.str() + " vs " + cas[j].loc.str() + ")");
          } else if (satisfiable(overlap, &sec)) {
            ++benignOverlaps_;
          }
          report_.solveSeconds += sec;
        }
        // Read-write against every recorded read.
        for (const para::ReadRecord& rd : bi.reads) {
          if (rd.array != array) continue;
          Instantiated w = instantiate(cas[i], "w");
          para::ThreadInstance r = para::ThreadInstance::fresh(
              ctx_, cfg_, sum_.width, "rc_r");
          expr::SubstMap m = r.substFrom(sum_.canonical);
          for (Expr tl : sum_.threadLocalFresh)
            m.emplace(tl.node(),
                      ctx_.freshVar(tl.varName() + "_rcr", tl.sort()));
          Expr rguard = expr::substitute(rd.guard, m);
          Expr raddr = expr::substitute(rd.addr, m);
          Expr overlap = ctx_.mkAnd(
              ctx_.mkAnd(w.inst.domain, r.domain),
              ctx_.mkAnd(ctx_.mkAnd(w.guard, rguard),
                         ctx_.mkAnd(ctx_.mkEq(w.addr, raddr),
                                    w.inst.distinctFrom(r))));
          if (array->space == MemSpace::Shared)
            overlap = ctx_.mkAnd(overlap, sameBlock(w.inst, r));
          overlap = ctx_.mkAnd(overlap, active);
          double sec = 0;
          if (satisfiable(overlap, &sec))
            record("read-write race on '" + array->name + "' (write at " +
                   cas[i].loc.str() + ")");
          report_.solveSeconds += sec;
        }
      }
    }
  }

  void record(std::string what) {
    report_.outcome = Outcome::BugFound;
    if (!report_.detail.empty()) report_.detail += "; ";
    report_.detail += what;
  }

  const lang::Kernel& kernel_;
  const CheckOptions& options_;
  expr::Context ctx_;
  para::SymbolicConfig cfg_;
  para::KernelSummary sum_;
  Report report_;
  size_t benignOverlaps_ = 0;
};

}  // namespace

Report checkRaces(const lang::Kernel& kernel, const CheckOptions& options) {
  return RaceChecker(kernel, options).run();
}

}  // namespace pugpara::check
