#include "check/race_checker.h"

#include <sstream>

#include "abstract/prefilter.h"
#include "expr/subst.h"
#include "para/loops.h"
#include "para/vcgen.h"
#include "support/timer.h"

namespace pugpara::check {

namespace {

using expr::Expr;
using lang::MemSpace;
using lang::VarDecl;
using para::ConditionalAssignment;

class RaceChecker {
 public:
  RaceChecker(const lang::Kernel& kernel, const CheckOptions& options)
      : kernel_(kernel), options_(options) {}

  Report run() {
    WallTimer total;
    report_.method = "parameterized-race";
    const encode::EncodeOptions eo = options_.encodeOptions();
    try {
      cfg_ = para::SymbolicConfig::create(ctx_, eo);
      sum_ = para::extractSummary(ctx_, kernel_, cfg_, eo, "k");
    } catch (const PugError& e) {
      report_.outcome = Outcome::Unsupported;
      report_.detail = e.what();
      return report_;
    }

    for (const para::Segment& seg : sum_.segments) {
      if (seg.loop.has_value()) {
        report_.caveats.push_back(
            "barrier-carrying loop: loop entry/exit are modeled as interval "
            "boundaries, so races between pre-loop writes and first-"
            "iteration reads require an explicit barrier before the loop");
        Expr active = ctx_.mkAnd(
            seg.loop->guard,
            para::loopReachabilityInvariant(ctx_, *seg.loop, sum_.width));
        for (const para::BiSummary& bi : seg.loop->bodyBis)
          checkInterval(bi, active);
      } else {
        for (const para::BiSummary& bi : seg.bis)
          checkInterval(bi, ctx_.top());
      }
    }

    if (report_.outcome != Outcome::BugFound) {
      if (unknownQueries_ > 0) {
        // An undecided pair query means the race-freedom claim has a hole;
        // never silently fold it into "race-free".
        report_.outcome = Outcome::Unknown;
        report_.detail = std::to_string(unknownQueries_) +
                         " pair quer" + (unknownQueries_ == 1 ? "y" : "ies") +
                         " undecided (timeout/fragment); race freedom not "
                         "established";
      } else {
        report_.outcome = Outcome::Verified;
        report_.detail = benignOverlaps_ == 0
                             ? "race-free for any number of threads"
                             : "no value-changing races; " +
                                   std::to_string(benignOverlaps_) +
                                   " benign same-value overlap(s)";
      }
    }
    report_.totalSeconds = total.seconds();
    return report_;
  }

 private:
  /// A symbolic thread bound to one side of every pair query, with the
  /// substitution that maps canonical-thread summaries onto it
  /// (thread-local temporaries re-freshened per instance).
  struct Instance {
    para::ThreadInstance inst;
    expr::SubstMap map;
  };

  /// A conditional access (write or read) substituted onto an instance.
  struct Access {
    Expr guard, addr, value;  // value stays null for reads
  };

  Instance makeInstance(const std::string& hint) {
    para::ThreadInstance inst =
        para::ThreadInstance::fresh(ctx_, cfg_, sum_.width, "rc_" + hint);
    expr::SubstMap m = inst.substFrom(sum_.canonical);
    for (Expr tl : sum_.threadLocalFresh)
      m.emplace(tl.node(),
                ctx_.freshVar(tl.varName() + "_" + hint, tl.sort()));
    return {inst, std::move(m)};
  }

  /// One substitution path for both the write and the read side.
  Access bind(Expr guard, Expr addr, Expr value, const Instance& in) {
    return {expr::substitute(guard, in.map), expr::substitute(addr, in.map),
            value.isNull() ? Expr() : expr::substitute(value, in.map)};
  }
  Access bind(const ConditionalAssignment& ca, const Instance& in) {
    return bind(ca.guard, ca.addr, ca.value, in);
  }
  Access bind(const para::ReadRecord& rd, const Instance& in) {
    return bind(rd.guard, rd.addr, Expr(), in);
  }

  Expr sameBlock(const para::ThreadInstance& a,
                 const para::ThreadInstance& b) {
    return ctx_.mkAnd(ctx_.mkEq(a.bx, b.bx), ctx_.mkEq(a.by, b.by));
  }

  /// The per-pair part of a query: both accesses happen and hit the same
  /// address (same block too, for block-shared memory). Everything
  /// pair-independent — kernel assumptions, interval activation, thread
  /// domains, distinctness — lives in the interval prefix instead.
  Expr overlapAssumption(const Access& x, const Access& y,
                         const VarDecl* array) {
    Expr o = ctx_.mkAnd(ctx_.mkAnd(x.guard, y.guard),
                        ctx_.mkEq(x.addr, y.addr));
    if (array->space == MemSpace::Shared) o = ctx_.mkAnd(o, sameBlockAb_);
    return o;
  }

  /// Decides prefix ∧ assumptions through the tiered pipeline: Tier 0
  /// (abstract domain, zero solver calls), Tier 1 (cone-of-influence slice
  /// of the prefix), full SMT. Both shortcut tiers only ever settle Unsat;
  /// anything else escalates, so verdicts match the unfiltered path.
  /// Incremental mode poses queries as assumption-only checks on the
  /// interval's long-lived solver; fresh mode rebuilds a solver per query
  /// (the pre-incremental baseline). The timer wraps the whole pipeline so
  /// prefilter overhead is charged to solveSeconds honestly.
  smt::CheckResult query(std::initializer_list<Expr> assumptions) {
    WallTimer t;
    smt::CheckResult r = queryTiered(std::vector<Expr>(assumptions));
    report_.solveSeconds += t.seconds();
    if (r == smt::CheckResult::Unknown) noteUnknown();
    return r;
  }

  smt::CheckResult queryTiered(const std::vector<Expr>& asms) {
    if (prefilter_ != nullptr && prefilter_->provesUnsat(asms)) {
      ++report_.discharge.tier0;
      return smt::CheckResult::Unsat;
    }
    // Tier 1: try the cone-of-influence slice first. Unsat under a subset
    // of the prefix is Unsat under all of it; Sat/Unknown proves nothing
    // and falls through to the full query.
    std::vector<size_t> rel;
    bool trySlice = false;
    if (prefilter_ != nullptr) {
      rel = slicer_.relevant(asms);
      trySlice = rel.size() < prefixConjuncts_.size();
    }
    if (solver_ != nullptr) {
      if (prefilter_ != nullptr) {
        if (trySlice) {
          std::vector<Expr> lits;
          for (size_t i : rel) lits.push_back(selectors_[i]);
          lits.insert(lits.end(), asms.begin(), asms.end());
          ++report_.discharge.solverCalls;
          if (solver_->checkAssuming(lits) == smt::CheckResult::Unsat) {
            ++report_.discharge.sliced;
            return smt::CheckResult::Unsat;
          }
        }
        std::vector<Expr> lits(selectors_);
        lits.insert(lits.end(), asms.begin(), asms.end());
        ++report_.discharge.solverCalls;
        ++report_.discharge.fullSmt;
        return solver_->checkAssuming(lits);
      }
      ++report_.discharge.solverCalls;
      ++report_.discharge.fullSmt;
      return solver_->checkAssuming(asms);
    }
    if (trySlice) {
      auto s = options_.makeSolver();
      s->setTimeoutMs(options_.solverTimeoutMs);
      for (size_t i : rel) s->add(prefixConjuncts_[i]);
      for (Expr a : asms) s->add(a);
      ++report_.discharge.solverCalls;
      if (s->check() == smt::CheckResult::Unsat) {
        ++report_.discharge.sliced;
        return smt::CheckResult::Unsat;
      }
    }
    auto s = options_.makeSolver();
    s->setTimeoutMs(options_.solverTimeoutMs);
    for (Expr p : prefix_) s->add(p);
    for (Expr a : asms) s->add(a);
    ++report_.discharge.solverCalls;
    ++report_.discharge.fullSmt;
    return s->check();
  }

  void noteUnknown() {
    if (unknownQueries_++ == 0)
      report_.caveats.push_back(
          "at least one pair query returned unknown; the verdict is "
          "downgraded to unknown unless a race is found elsewhere");
  }

  /// Lower bound on the interval's query count (the weak overlap queries;
  /// Sat answers add refinement queries on top).
  static size_t plannedQueries(const para::BiSummary& bi) {
    size_t n = 0;
    for (const auto& [array, cas] : bi.cas) {
      n += cas.size() * (cas.size() + 1) / 2;  // write-write incl. self
      for (const para::ReadRecord& rd : bi.reads)
        if (rd.array == array) n += cas.size();
    }
    return n;
  }

  void checkInterval(const para::BiSummary& bi, Expr active) {
    // Two shared thread instances serve every pair of this interval: the
    // instances are just symbolic names, and each pair query is an
    // independent assumption set, so reusing them is sound and lets the
    // prefix (assumptions + activation + domains + distinctness) be
    // asserted once per interval instead of once per query.
    Instance a = makeInstance("a");
    Instance b = makeInstance("b");
    sameBlockAb_ = sameBlock(a.inst, b.inst);
    prefix_ = {sum_.assumptions, active, a.inst.domain, b.inst.domain,
               a.inst.distinctFrom(b.inst)};
    prefixConjuncts_.clear();
    for (Expr p : prefix_) abstract::flattenAnd(p, prefixConjuncts_);
    if (options_.prefilter) {
      if (prefilter_ == nullptr)
        prefilter_ = std::make_unique<abstract::Prefilter>();
      prefilter_->setPrefix(prefixConjuncts_);
      slicer_.build(prefixConjuncts_);
    }
    selectors_.clear();
    solver_.reset();
    // A long-lived solver pays off through reuse: the prefix is encoded
    // once and everything learned transfers to the next pair query. An
    // interval that poses a single query has nothing to reuse — and a
    // query posed as an assumption is slightly harder than the same
    // formula asserted outright (learnt clauses drag the assumption
    // literal along; no top-level simplification) — so such intervals
    // stay on the fresh-per-query path even in incremental mode.
    if (options_.incrementalSolving && plannedQueries(bi) >= 2) {
      solver_ = options_.makeSolver();
      solver_->setTimeoutMs(options_.solverTimeoutMs);
      if (options_.prefilter) {
        // Selector-guarded prefix: each conjunct is asserted behind a fresh
        // boolean, so a query can enable just its cone-of-influence slice
        // (or all of them for the full formula) via assumptions while the
        // solver's learnt state still persists across queries.
        for (Expr c : prefixConjuncts_) {
          Expr s = ctx_.freshVar("sel", expr::Sort::boolSort());
          selectors_.push_back(s);
          solver_->add(ctx_.mkImplies(s, c));
        }
      } else {
        for (Expr p : prefix_) solver_->add(p);
      }
    }

    for (const auto& [array, cas] : bi.cas) {
      for (size_t i = 0; i < cas.size(); ++i) {
        const Access wa = bind(cas[i], a);
        // Write-write: every CA pair, including a CA against itself.
        for (size_t j = i; j < cas.size(); ++j) {
          const Access wb = bind(cas[j], b);
          const Expr overlap = overlapAssumption(wa, wb, array);
          // The weak overlap query runs first: disjoint pairs — the common
          // case — are settled by its single Unsat. Only an overlapping
          // pair pays for the value-difference refinement, posed as one
          // extra assumption on the same prefix.
          if (query({overlap}) != smt::CheckResult::Sat) continue;
          switch (query({overlap, ctx_.mkNe(wa.value, wb.value)})) {
            case smt::CheckResult::Sat:
              record("write-write race on '" + array->name + "' (" +
                     cas[i].loc.str() + " vs " + cas[j].loc.str() + ")");
              break;
            case smt::CheckResult::Unsat:
              ++benignOverlaps_;
              break;
            case smt::CheckResult::Unknown:
              break;  // counted by query()
          }
        }
        // Read-write against every recorded read.
        for (const para::ReadRecord& rd : bi.reads) {
          if (rd.array != array) continue;
          const Access rb = bind(rd, b);
          if (query({overlapAssumption(wa, rb, array)}) ==
              smt::CheckResult::Sat)
            record("read-write race on '" + array->name + "' (write at " +
                   cas[i].loc.str() + ")");
        }
      }
    }
    solver_.reset();
  }

  void record(std::string what) {
    report_.outcome = Outcome::BugFound;
    if (!report_.detail.empty()) report_.detail += "; ";
    report_.detail += what;
  }

  const lang::Kernel& kernel_;
  const CheckOptions& options_;
  expr::Context ctx_;
  para::SymbolicConfig cfg_;
  para::KernelSummary sum_;
  Report report_;
  size_t benignOverlaps_ = 0;
  size_t unknownQueries_ = 0;

  // Per-interval query state (set by checkInterval).
  std::unique_ptr<smt::Solver> solver_;  // null in fresh-per-query mode
  std::vector<Expr> prefix_;
  Expr sameBlockAb_;

  // Tiered-discharge state. prefilter_ is null when options_.prefilter is
  // off; its affine memo persists across intervals.
  std::unique_ptr<abstract::Prefilter> prefilter_;
  abstract::CoiSlicer slicer_;
  std::vector<Expr> prefixConjuncts_;
  std::vector<Expr> selectors_;  // parallel to prefixConjuncts_
};

}  // namespace

Report checkRaces(const lang::Kernel& kernel, const CheckOptions& options) {
  return RaceChecker(kernel, options).run();
}

}  // namespace pugpara::check
