#include "check/postcond_checker.h"

#include "abstract/prefilter.h"
#include "check/replay.h"
#include "para/vcgen.h"
#include "support/timer.h"

namespace pugpara::check {

namespace {

using expr::Expr;

uint64_t replayCells(uint32_t width) {
  return std::min<uint64_t>(uint64_t{1} << std::min<uint32_t>(width, 62),
                            uint64_t{1} << 16);
}

Report solveParamVcs(const lang::Kernel& kernel, expr::Context& ctx,
                     const para::SymbolicConfig& cfg,
                     const para::KernelSummary& summary,
                     const para::ParamVcSet& vcs, const CheckOptions& options,
                     bool postcondReplay, const char* methodName) {
  WallTimer total;
  Report report;
  report.method = methodName;
  report.caveats = vcs.caveats;
  report.stats = vcs.stats;
  const uint32_t width = options.width;

  bool anyUnknown = false;
  // Tier 0: a VC the abstract domain proves unsatisfiable holds outright.
  abstract::Prefilter prefilter;
  // Incremental mode: one solver serves the whole VC batch (the VCs share
  // summary subterms); each VC is a single self-retracting assumption.
  std::unique_ptr<smt::Solver> shared;
  if (options.incrementalSolving) {
    shared = options.makeSolver();
    shared->setTimeoutMs(options.solverTimeoutMs);
  }
  for (const auto& vc : vcs.vcs) {
    if (options.prefilter) {
      WallTimer pre;
      const bool discharged =
          prefilter.provesUnsat(std::span<const Expr>(&vc.formula, 1));
      report.solveSeconds += pre.seconds();
      if (discharged) {
        ++report.discharge.tier0;
        continue;
      }
    }
    std::unique_ptr<smt::Solver> fresh;
    if (shared == nullptr) {
      fresh = options.makeSolver();
      fresh->setTimeoutMs(options.solverTimeoutMs);
      fresh->add(vc.formula);
    }
    smt::Solver* solver = shared != nullptr ? shared.get() : fresh.get();
    WallTimer solve;
    smt::CheckResult r =
        shared != nullptr
            ? solver->checkAssuming(std::span<const Expr>(&vc.formula, 1))
            : solver->check();
    report.solveSeconds += solve.seconds();
    ++report.discharge.solverCalls;
    ++report.discharge.fullSmt;
    if (r == smt::CheckResult::Unknown) {
      anyUnknown = true;
      continue;
    }
    if (r == smt::CheckResult::Unsat) continue;

    auto model = solver->model();
    ReplayInputs ri{cfg.bdimX, cfg.bdimY, cfg.bdimZ,
                    cfg.gdimX, cfg.gdimY, summary.scalarInputs,
                    summary.inputArrays, vc.witnesses};
    Counterexample cex =
        extractCounterexample(*model, ri, ctx, width, replayCells(width));
    if (options.replayCounterexamples && postcondReplay)
      replayPostcondition(kernel, cex, width, options.maxReplayThreads);
    report.counterexamples.push_back(std::move(cex));
    const Counterexample& back = report.counterexamples.back();
    if (!options.replayCounterexamples || !postcondReplay ||
        back.replayConfirmed || !back.replayed) {
      report.outcome = Outcome::BugFound;
      report.detail = "violated: " + vc.name;
      report.totalSeconds = total.seconds();
      return report;
    }
    anyUnknown = true;
    report.detail =
        "candidate for '" + vc.name + "' did not replay; inconclusive";
  }

  if (anyUnknown) {
    report.outcome = Outcome::Unknown;
  } else if (!vcs.exact) {
    report.outcome = Outcome::NoBugFound;
    report.detail = "no violation found (under-approximate premises)";
  } else {
    report.outcome = Outcome::Verified;
    report.detail = "holds for any number of threads";
  }
  report.totalSeconds = total.seconds();
  return report;
}

Report runNonParamPostcond(const lang::Kernel& kernel,
                           const CheckOptions& options) {
  WallTimer total;
  Report report;
  report.method = "non-parameterized";
  if (!options.grid.has_value()) {
    report.outcome = Outcome::Unsupported;
    report.detail = "non-parameterized checking needs a concrete grid";
    return report;
  }
  const encode::GridConfig& grid = *options.grid;
  expr::Context ctx;
  const encode::EncodeOptions eo = options.encodeOptions();

  encode::EncodedKernel enc;
  try {
    enc = encode::encodeSsa(ctx, kernel, grid, eo, "k");
  } catch (const PugError& e) {
    report.outcome = Outcome::Unsupported;
    report.detail = e.what();
    return report;
  }
  if (enc.postconds.empty()) {
    report.outcome = Outcome::Verified;
    report.detail = "kernel declares no postconditions";
    return report;
  }

  Expr violated = ctx.bot();
  std::vector<Expr> witnesses;
  for (const auto& pc : enc.postconds) {
    violated = ctx.mkOr(violated, ctx.mkNot(pc.formula));
    for (Expr v : pc.specVars) witnesses.push_back(v);
  }
  if (options.prefilter) {
    WallTimer pre;
    abstract::Prefilter prefilter;
    const Expr parts[] = {enc.assumptions, violated};
    const bool discharged = prefilter.provesUnsat(parts);
    report.solveSeconds = pre.seconds();
    if (discharged) {
      ++report.discharge.tier0;
      report.outcome = Outcome::Verified;
      report.detail = "holds for the " + grid.str() + " configuration";
      report.totalSeconds = total.seconds();
      return report;
    }
  }
  auto solver = options.makeSolver();
  solver->setTimeoutMs(options.solverTimeoutMs);
  solver->add(enc.assumptions);
  solver->add(violated);
  WallTimer solve;
  smt::CheckResult r = solver->check();
  report.solveSeconds += solve.seconds();
  ++report.discharge.solverCalls;
  ++report.discharge.fullSmt;

  switch (r) {
    case smt::CheckResult::Unsat:
      report.outcome = Outcome::Verified;
      report.detail = "holds for the " + grid.str() + " configuration";
      break;
    case smt::CheckResult::Unknown:
      report.outcome = Outcome::Unknown;
      report.detail = "solver timeout / gave up";
      break;
    case smt::CheckResult::Sat: {
      auto model = solver->model();
      ReplayInputs ri;
      ri.bdimX = ctx.bvVal(grid.bdimX, eo.width);
      ri.bdimY = ctx.bvVal(grid.bdimY, eo.width);
      ri.bdimZ = ctx.bvVal(grid.bdimZ, eo.width);
      ri.gdimX = ctx.bvVal(grid.gdimX, eo.width);
      ri.gdimY = ctx.bvVal(grid.gdimY, eo.width);
      ri.scalarInputs = enc.scalarInputs;
      ri.inputArrays = enc.inputArrays;
      ri.witnesses = witnesses;
      Counterexample cex = extractCounterexample(*model, ri, ctx, eo.width,
                                                 replayCells(eo.width));
      if (options.replayCounterexamples)
        replayPostcondition(kernel, cex, eo.width, options.maxReplayThreads);
      report.counterexamples.push_back(std::move(cex));
      report.outcome = Outcome::BugFound;
      report.detail = "postcondition violated under " + grid.str();
      break;
    }
  }
  report.totalSeconds = total.seconds();
  return report;
}

Report runParamCheck(const lang::Kernel& kernel, const CheckOptions& options,
                     para::FrameMode mode, bool asserts) {
  Report report;
  expr::Context ctx;
  const encode::EncodeOptions eo = options.encodeOptions();
  try {
    para::SymbolicConfig cfg = para::SymbolicConfig::create(ctx, eo);
    para::KernelSummary sum =
        para::extractSummary(ctx, kernel, cfg, eo, "k");
    para::ParamVcSet vcs =
        asserts ? para::buildAssertVcs(ctx, sum, mode, options.monoTimeoutMs)
                : para::buildPostcondVcs(ctx, sum, eo, mode,
                                         options.monoTimeoutMs);
    return solveParamVcs(kernel, ctx, cfg, sum, vcs, options,
                         /*postcondReplay=*/!asserts,
                         mode == para::FrameMode::BugHunt
                             ? "parameterized-bughunt"
                             : "parameterized");
  } catch (const PugError& e) {
    report.method = "parameterized";
    report.outcome = Outcome::Unsupported;
    report.detail = e.what();
    return report;
  }
}

}  // namespace

Report checkPostconditions(const lang::Kernel& kernel,
                           const CheckOptions& options) {
  switch (options.method) {
    case Method::Parameterized:
      return runParamCheck(kernel, options, options.frameMode, false);
    case Method::ParameterizedBugHunt:
      return runParamCheck(kernel, options, para::FrameMode::BugHunt, false);
    case Method::NonParameterized:
      return runNonParamPostcond(kernel, options);
    case Method::Auto: {
      Report r = runParamCheck(kernel, options, options.frameMode, false);
      if (r.outcome == Outcome::Unsupported && options.grid.has_value()) {
        Report fb = runNonParamPostcond(kernel, options);
        fb.caveats.push_back("parameterized method unsupported (" + r.detail +
                             "); fell back to a fixed configuration");
        return fb;
      }
      return r;
    }
  }
  throw PugError("unknown method");
}

Report checkAsserts(const lang::Kernel& kernel, const CheckOptions& options) {
  if (options.method == Method::NonParameterized) {
    // Assert obligations ride along the SSA encoding.
    WallTimer total;
    Report report;
    report.method = "non-parameterized";
    if (!options.grid.has_value()) {
      report.outcome = Outcome::Unsupported;
      report.detail = "non-parameterized checking needs a concrete grid";
      return report;
    }
    expr::Context ctx;
    const encode::EncodeOptions eo = options.encodeOptions();
    encode::EncodedKernel enc;
    try {
      enc = encode::encodeSsa(ctx, kernel, *options.grid, eo, "k");
    } catch (const PugError& e) {
      report.outcome = Outcome::Unsupported;
      report.detail = e.what();
      return report;
    }
    Expr bad = ctx.bot();
    for (const auto& ob : enc.asserts)
      bad = ctx.mkOr(bad, ctx.mkAnd(ob.guard, ctx.mkNot(ob.cond)));
    auto solver = options.makeSolver();
    solver->setTimeoutMs(options.solverTimeoutMs);
    solver->add(enc.assumptions);
    solver->add(bad);
    WallTimer solve;
    smt::CheckResult r = solver->check();
    report.solveSeconds = solve.seconds();
    ++report.discharge.solverCalls;
    ++report.discharge.fullSmt;
    report.totalSeconds = total.seconds();
    report.outcome = r == smt::CheckResult::Unsat  ? Outcome::Verified
                     : r == smt::CheckResult::Sat ? Outcome::BugFound
                                                  : Outcome::Unknown;
    return report;
  }
  return runParamCheck(kernel, options,
                       options.method == Method::ParameterizedBugHunt
                           ? para::FrameMode::BugHunt
                           : options.frameMode,
                       true);
}

}  // namespace pugpara::check
