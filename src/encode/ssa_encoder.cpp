#include "encode/ssa_encoder.h"

#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "expr/bv_ops.h"
#include "lang/sema.h"
#include "support/diagnostics.h"

namespace pugpara::encode {

namespace {

using expr::Expr;
using lang::BuiltinVar;
using lang::MemSpace;
using lang::Stmt;
using lang::VarDecl;

std::string locSuffix(SourceLoc loc) {
  return "@" + std::to_string(loc.line) + "_" + std::to_string(loc.col);
}

bool containsBarrier(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::Barrier: return true;
    case Stmt::Kind::If:
      return containsBarrier(*s.thenStmt) ||
             (s.elseStmt && containsBarrier(*s.elseStmt));
    case Stmt::Kind::For:
    case Stmt::Kind::While:
      return containsBarrier(*s.body);
    case Stmt::Kind::Block:
      for (const auto& st : s.stmts)
        if (containsBarrier(*st)) return true;
      return false;
    default:
      return false;
  }
}

bool assignsTo(const Stmt& s, const VarDecl* d) {
  switch (s.kind) {
    case Stmt::Kind::Assign:
      return s.lhs->kind == lang::Expr::Kind::VarRef && s.lhs->decl == d;
    case Stmt::Kind::If:
      return assignsTo(*s.thenStmt, d) ||
             (s.elseStmt && assignsTo(*s.elseStmt, d));
    case Stmt::Kind::For:
      return assignsTo(*s.body, d) || (s.step && assignsTo(*s.step, d)) ||
             (s.init && assignsTo(*s.init, d));
    case Stmt::Kind::While:
      return assignsTo(*s.body, d);
    case Stmt::Kind::Block:
      for (const auto& st : s.stmts)
        if (assignsTo(*st, d)) return true;
      return false;
    default:
      return false;
  }
}

/// One element of a flattened barrier interval: either an original statement
/// or a launch-uniform binding produced by Pass A's loop unrolling.
struct BiItem {
  const Stmt* stmt = nullptr;
  const VarDecl* bind = nullptr;
  uint64_t bindValue = 0;
};

using BarrierInterval = std::vector<BiItem>;

// ---- Pass A: split into barrier intervals, unrolling barrier-loops ----------

class BarrierFlattener {
 public:
  BarrierFlattener(const lang::Kernel& kernel, const GridConfig& grid,
                   const EncodeOptions& opt)
      : kernel_(kernel), grid_(grid), opt_(opt) {}

  std::vector<BarrierInterval> run() {
    bis_.emplace_back();
    walk(*kernel_.body);
    return std::move(bis_);
  }

 private:
  void emit(BiItem item) { bis_.back().push_back(item); }

  [[nodiscard]] std::optional<uint64_t> tryEval(const lang::Expr& e) const {
    using K = lang::Expr::Kind;
    const uint32_t w = opt_.width;
    switch (e.kind) {
      case K::IntLit: return expr::maskToWidth(e.intValue, w);
      case K::BoolLit: return e.boolValue ? 1 : 0;
      case K::Builtin:
        switch (e.builtin) {
          case BuiltinVar::BdimX: return grid_.bdimX;
          case BuiltinVar::BdimY: return grid_.bdimY;
          case BuiltinVar::BdimZ: return grid_.bdimZ;
          case BuiltinVar::GdimX: return grid_.gdimX;
          case BuiltinVar::GdimY: return grid_.gdimY;
          default: return std::nullopt;  // tid/bid are not uniform
        }
      case K::VarRef: {
        if (auto it = uniform_.find(e.decl); it != uniform_.end())
          return it->second;
        if (e.decl != nullptr && e.decl->space == MemSpace::Param) {
          if (auto c = opt_.concretize.find(e.decl->name);
              c != opt_.concretize.end())
            return expr::maskToWidth(c->second, w);
        }
        return std::nullopt;
      }
      case K::Unary: {
        auto a = tryEval(*e.args[0]);
        if (!a) return std::nullopt;
        switch (e.unop) {
          case lang::UnOp::Neg: return expr::maskToWidth(~*a + 1, w);
          case lang::UnOp::LNot: return *a == 0 ? 1 : 0;
          case lang::UnOp::BitNot: return expr::maskToWidth(~*a, w);
        }
        return std::nullopt;
      }
      case K::Binary: {
        if (e.binop == lang::BinOp::LAnd) {
          auto a = tryEval(*e.args[0]);
          if (a && *a == 0) return 0;
          auto b = tryEval(*e.args[1]);
          if (!a || !b) return std::nullopt;
          return (*a != 0 && *b != 0) ? 1 : 0;
        }
        if (e.binop == lang::BinOp::LOr) {
          auto a = tryEval(*e.args[0]);
          if (a && *a != 0) return 1;
          auto b = tryEval(*e.args[1]);
          if (!a || !b) return std::nullopt;
          return (*a != 0 || *b != 0) ? 1 : 0;
        }
        auto a = tryEval(*e.args[0]);
        auto b = tryEval(*e.args[1]);
        if (!a || !b) return std::nullopt;
        return foldBinary(e, *a, *b);
      }
      case K::Ternary: {
        auto c = tryEval(*e.args[0]);
        if (!c) return std::nullopt;
        return tryEval(*c != 0 ? *e.args[1] : *e.args[2]);
      }
      default:
        return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<uint64_t> foldBinary(const lang::Expr& e,
                                                   uint64_t a,
                                                   uint64_t b) const {
    using expr::Kind;
    const uint32_t w = opt_.width;
    const bool uns = lang::exprIsUnsigned(*e.args[0]) ||
                     lang::exprIsUnsigned(*e.args[1]);
    switch (e.binop) {
      case lang::BinOp::Add: return expr::foldBvBin(Kind::BvAdd, a, b, w);
      case lang::BinOp::Sub: return expr::foldBvBin(Kind::BvSub, a, b, w);
      case lang::BinOp::Mul: return expr::foldBvBin(Kind::BvMul, a, b, w);
      case lang::BinOp::Div:
        return expr::foldBvBin(uns ? Kind::BvUDiv : Kind::BvSDiv, a, b, w);
      case lang::BinOp::Rem:
        return expr::foldBvBin(uns ? Kind::BvURem : Kind::BvSRem, a, b, w);
      case lang::BinOp::BitAnd: return a & b;
      case lang::BinOp::BitOr: return a | b;
      case lang::BinOp::BitXor: return a ^ b;
      case lang::BinOp::Shl: return expr::foldBvBin(Kind::BvShl, a, b, w);
      case lang::BinOp::Shr:
        return expr::foldBvBin(uns ? Kind::BvLShr : Kind::BvAShr, a, b, w);
      case lang::BinOp::Eq: return a == b ? 1 : 0;
      case lang::BinOp::Ne: return a != b ? 1 : 0;
      case lang::BinOp::Lt:
        return expr::foldBvCmp(uns ? Kind::BvUlt : Kind::BvSlt, a, b, w);
      case lang::BinOp::Le:
        return expr::foldBvCmp(uns ? Kind::BvUle : Kind::BvSle, a, b, w);
      case lang::BinOp::Gt:
        return expr::foldBvCmp(uns ? Kind::BvUlt : Kind::BvSlt, b, a, w);
      case lang::BinOp::Ge:
        return expr::foldBvCmp(uns ? Kind::BvUle : Kind::BvSle, b, a, w);
      default:
        return std::nullopt;
    }
  }

  [[nodiscard]] uint64_t evalOrFail(const lang::Expr& e, const char* what) {
    auto v = tryEval(e);
    if (!v)
      throw PugError(std::string(what) +
                     " in a barrier-carrying loop must be launch-uniform and "
                     "concrete; concretize the inputs it reads (+C)");
    return *v;
  }

  void walk(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Barrier:
        bis_.emplace_back();
        return;
      case Stmt::Kind::Block:
        for (const auto& st : s.stmts) walk(*st);
        return;
      case Stmt::Kind::If:
        if (!containsBarrier(s)) {
          emit({&s, nullptr, 0});
          return;
        }
        if (evalOrFail(*s.cond, "an if condition") != 0) {
          walk(*s.thenStmt);
        } else if (s.elseStmt) {
          walk(*s.elseStmt);
        }
        return;
      case Stmt::Kind::For: {
        if (!containsBarrier(s)) {
          emit({&s, nullptr, 0});
          return;
        }
        unrollFor(s);
        return;
      }
      case Stmt::Kind::While:
        if (!containsBarrier(s)) {
          emit({&s, nullptr, 0});
          return;
        }
        throw PugError("barriers inside while loops are not supported; "
                       "rewrite as a for loop with a uniform counter");
      default:
        emit({&s, nullptr, 0});
        return;
    }
  }

  void unrollFor(const Stmt& s) {
    // Identify the loop counter and its initial value.
    const VarDecl* counter = nullptr;
    if (s.init != nullptr) {
      if (s.init->kind == Stmt::Kind::Decl) {
        counter = s.init->decl.get();
        require(counter->init != nullptr,
                "barrier-carrying for loop needs an initialized counter");
        uniform_[counter] = evalOrFail(*counter->init, "a loop bound");
        emit({s.init.get(), nullptr, 0});  // declare it for Pass B
        emit({nullptr, counter, uniform_[counter]});
      } else if (s.init->kind == Stmt::Kind::Assign &&
                 s.init->lhs->kind == lang::Expr::Kind::VarRef) {
        counter = s.init->lhs->decl;
        uniform_[counter] = evalOrFail(*s.init->rhs, "a loop bound");
        emit({nullptr, counter, uniform_[counter]});
      } else {
        throw PugError("unsupported barrier-carrying for-loop initializer");
      }
    }
    require(counter != nullptr,
            "barrier-carrying for loop needs a counter variable");
    require(!assignsTo(*s.body, counter),
            "barrier-carrying loop must not modify its counter in the body");
    require(s.cond != nullptr && s.step != nullptr,
            "barrier-carrying for loop needs a condition and a step");
    require(s.step->kind == Stmt::Kind::Assign &&
                s.step->lhs->kind == lang::Expr::Kind::VarRef &&
                s.step->lhs->decl == counter,
            "barrier-carrying for loop must step its own counter");

    for (uint32_t iter = 0;; ++iter) {
      if (iter > opt_.maxUnroll)
        throw PugError("loop unrolling exceeded the configured bound");
      if (evalOrFail(*s.cond, "a loop condition") == 0) break;
      walk(*s.body);
      // Apply the step uniformly and re-bind for the next iteration.
      uint64_t rhs = evalOrFail(*s.step->rhs, "a loop step");
      uint64_t next = rhs;
      if (s.step->isCompound) {
        lang::Expr synth;  // only used to query signedness of the operands
        synth.kind = lang::Expr::Kind::Binary;
        synth.binop = s.step->compoundOp;
        synth.args.push_back(s.step->lhs->clone());
        synth.args.push_back(s.step->rhs->clone());
        auto folded = foldBinary(synth, uniform_[counter], rhs);
        require(folded.has_value(), "unsupported loop step operator");
        next = *folded;
      }
      uniform_[counter] = next;
      emit({nullptr, counter, next});
    }
    uniform_.erase(counter);
  }

  const lang::Kernel& kernel_;
  const GridConfig& grid_;
  const EncodeOptions& opt_;
  std::vector<BarrierInterval> bis_;
  std::unordered_map<const VarDecl*, uint64_t> uniform_;
};

// ---- Pass B: natural-order symbolic execution over the intervals -----------

struct ThreadState {
  uint32_t tx = 0, ty = 0, tz = 0;
  std::unordered_map<const VarDecl*, Expr> privates;
  Expr active;  // false once the thread returned
};

class SsaEncoder {
 public:
  SsaEncoder(expr::Context& ctx, const lang::Kernel& kernel,
             const GridConfig& grid, const EncodeOptions& opt,
             std::string prefix)
      : ctx_(ctx), kernel_(kernel), grid_(grid), opt_(opt),
        prefix_(std::move(prefix)) {}

  EncodedKernel run() {
    out_.width = opt_.width;
    out_.assumptions = ctx_.top();
    setupParams();

    const auto bis = BarrierFlattener(kernel_, grid_, opt_).run();

    for (uint32_t by = 0; by < grid_.gdimY; ++by)
      for (uint32_t bx = 0; bx < grid_.gdimX; ++bx) runBlock(bx, by, bis);

    for (const VarDecl* p : out_.arrayParams)
      out_.finalArrays.push_back(arrays_.at(p));

    collectPostconds(*kernel_.body);
    return std::move(out_);
  }

 private:
  [[nodiscard]] Expr bv(uint64_t v) const {
    return ctx_.bvVal(v, opt_.width);
  }
  [[nodiscard]] expr::Sort arraySort() const {
    return expr::Sort::array(opt_.width, opt_.width);
  }

  void setupParams() {
    size_t arrPos = 0, sclPos = 0;
    for (const auto& p : kernel_.params) {
      if (p->type.isPointer) {
        Expr a = ctx_.var("pp_arr" + std::to_string(arrPos++), arraySort());
        out_.arrayParams.push_back(p.get());
        out_.inputArrays.push_back(a);
        arrays_[p.get()] = a;
      } else {
        Expr v;
        if (auto c = opt_.concretize.find(p->name);
            c != opt_.concretize.end()) {
          v = bv(c->second);
        } else {
          v = ctx_.var("pp_scl" + std::to_string(sclPos), bvSortName());
        }
        ++sclPos;
        out_.scalarParams.push_back(p.get());
        out_.scalarInputs.push_back(v);
        paramValue_[p.get()] = v;
      }
    }
  }

  [[nodiscard]] expr::Sort bvSortName() const {
    return expr::Sort::bv(opt_.width);
  }

  void runBlock(uint32_t bx, uint32_t by,
                const std::vector<BarrierInterval>& bis) {
    bx_ = bx;
    by_ = by;
    // Fresh per-block instances of the shared arrays, arbitrary initial
    // contents (reading them before writing is unconstrained, as on a GPU).
    for (const VarDecl* sd : kernel_.sharedDecls)
      arrays_[sd] = ctx_.freshVar(
          prefix_ + "_" + sd->name + "_b" + std::to_string(by * grid_.gdimX + bx),
          arraySort());

    // Per-thread persistent private state across the block's intervals.
    threads_.clear();
    for (uint32_t tz = 0; tz < grid_.bdimZ; ++tz)
      for (uint32_t ty = 0; ty < grid_.bdimY; ++ty)
        for (uint32_t tx = 0; tx < grid_.bdimX; ++tx) {
          ThreadState t;
          t.tx = tx;
          t.ty = ty;
          t.tz = tz;
          t.active = ctx_.top();
          threads_.push_back(std::move(t));
        }

    for (const BarrierInterval& bi : bis)
      for (ThreadState& t : threads_) runInterval(t, bi);
  }

  void runInterval(ThreadState& t, const BarrierInterval& bi) {
    cur_ = &t;
    for (const BiItem& item : bi) {
      if (item.bind != nullptr) {
        t.privates[item.bind] = bv(item.bindValue);
        continue;
      }
      exec(*item.stmt, ctx_.top());
    }
  }

  [[nodiscard]] Translator makeTranslator() {
    EnvCallbacks cbs;
    cbs.builtin = [this](BuiltinVar b) { return builtinValue(b); };
    cbs.readVar = [this](const VarDecl* d) { return readVar(d); };
    cbs.readArray = [this](const VarDecl* d, Expr idx) {
      return ctx_.mkSelect(arrays_.at(d), idx);
    };
    return Translator(ctx_, opt_, std::move(cbs));
  }

  Expr builtinValue(BuiltinVar b) {
    switch (b) {
      case BuiltinVar::TidX: return bv(cur_->tx);
      case BuiltinVar::TidY: return bv(cur_->ty);
      case BuiltinVar::TidZ: return bv(cur_->tz);
      case BuiltinVar::BidX: return bv(bx_);
      case BuiltinVar::BidY: return bv(by_);
      case BuiltinVar::BdimX: return bv(grid_.bdimX);
      case BuiltinVar::BdimY: return bv(grid_.bdimY);
      case BuiltinVar::BdimZ: return bv(grid_.bdimZ);
      case BuiltinVar::GdimX: return bv(grid_.gdimX);
      case BuiltinVar::GdimY: return bv(grid_.gdimY);
    }
    throw PugError("unknown builtin");
  }

  Expr readVar(const VarDecl* d) {
    if (d->space == MemSpace::Param) return paramValue_.at(d);
    auto it = cur_->privates.find(d);
    if (it != cur_->privates.end()) return it->second;
    // First read of an uninitialized private: a fresh unconstrained value
    // (this is also how postcondition spec variables come to life).
    Expr fresh = ctx_.freshVar(prefix_ + "_" + d->name, bvSortName());
    cur_->privates[d] = fresh;
    return fresh;
  }

  void exec(const Stmt& s, Expr guard) {
    Translator tr = makeTranslator();
    switch (s.kind) {
      case Stmt::Kind::Decl: {
        const VarDecl* d = s.decl.get();
        if (d->space == MemSpace::Shared) return;  // allocated per block
        if (d->init) cur_->privates[d] = tr.toBv(*d->init);
        return;
      }
      case Stmt::Kind::Assign: {
        Expr g = effective(guard);
        Expr value = tr.toBv(*s.rhs);
        if (s.lhs->kind == lang::Expr::Kind::VarRef) {
          const VarDecl* d = s.lhs->decl;
          if (s.isCompound)
            value = applyCompound(tr, s, readVar(d), value);
          // Writes to scalar params shadow the launch value thread-locally
          // via the privates map, so the same ite-merge applies everywhere.
          Expr old = readVar(d);
          cur_->privates[d] = ctx_.mkIte(g, value, old);
          return;
        }
        const VarDecl* d = s.lhs->decl;
        Expr arr = arrays_.at(d);
        Expr idx = tr.flatIndex(*s.lhs);
        if (s.isCompound)
          value = applyCompound(tr, s, ctx_.mkSelect(arr, idx), value);
        Expr next = ctx_.mkIte(g, ctx_.mkStore(arr, idx, value), arr);
        if (opt_.ssaEquations) {
          // Paper-faithful TRANS: fresh SSA version + defining equation.
          Expr ssa = ctx_.freshVar(prefix_ + "_" + d->name + "_ssa",
                                   arraySort());
          out_.assumptions =
              ctx_.mkAnd(out_.assumptions, ctx_.mkEq(ssa, next));
          next = ssa;
        }
        arrays_[d] = next;
        return;
      }
      case Stmt::Kind::If: {
        Expr c = tr.toBool(*s.cond);
        if (c.isTrue()) {
          exec(*s.thenStmt, guard);
        } else if (c.isFalse()) {
          if (s.elseStmt) exec(*s.elseStmt, guard);
        } else {
          exec(*s.thenStmt, ctx_.mkAnd(guard, c));
          if (s.elseStmt) exec(*s.elseStmt, ctx_.mkAnd(guard, ctx_.mkNot(c)));
        }
        return;
      }
      case Stmt::Kind::For: {
        if (s.init) exec(*s.init, guard);
        for (uint32_t iter = 0;; ++iter) {
          if (iter > opt_.maxUnroll)
            throw PugError("per-thread loop unrolling exceeded the bound");
          if (s.cond) {
            Expr c = makeTranslator().toBool(*s.cond);
            if (!c.isConst())
              throw PugError(
                  "loop condition does not fold to a constant at encode "
                  "time; concretize the inputs it reads (+C)");
            if (c.isFalse()) break;
          }
          exec(*s.body, guard);
          if (s.step) exec(*s.step, guard);
          if (!s.cond) break;
        }
        return;
      }
      case Stmt::Kind::While: {
        for (uint32_t iter = 0;; ++iter) {
          if (iter > opt_.maxUnroll)
            throw PugError("per-thread loop unrolling exceeded the bound");
          Expr c = makeTranslator().toBool(*s.cond);
          if (!c.isConst())
            throw PugError(
                "while condition does not fold to a constant at encode "
                "time; concretize the inputs it reads (+C)");
          if (c.isFalse()) break;
          exec(*s.body, guard);
        }
        return;
      }
      case Stmt::Kind::Block:
        for (const auto& st : s.stmts) exec(*st, guard);
        return;
      case Stmt::Kind::Barrier:
        throw PugError(
            "barrier in a non-uniform position (inside divergent control "
            "flow or an unsupported loop shape)");
      case Stmt::Kind::Return:
        cur_->active = ctx_.mkAnd(cur_->active,
                                  ctx_.mkNot(effective(guard)));
        return;
      case Stmt::Kind::Assert:
        out_.asserts.push_back(
            {effective(guard), tr.toBool(*s.cond), s.loc});
        return;
      case Stmt::Kind::Assume:
        out_.assumptions = ctx_.mkAnd(
            out_.assumptions,
            ctx_.mkImplies(effective(guard), tr.toBool(*s.cond)));
        return;
      case Stmt::Kind::Postcond:
        return;  // handled once, after execution (collectPostconds)
    }
  }

  Expr applyCompound(Translator& tr, const Stmt& s, Expr old, Expr rhs) {
    const bool uns =
        lang::exprIsUnsigned(*s.lhs) || lang::exprIsUnsigned(*s.rhs);
    switch (s.compoundOp) {
      case lang::BinOp::Add: return ctx_.mkAdd(old, rhs);
      case lang::BinOp::Sub: return ctx_.mkSub(old, rhs);
      case lang::BinOp::Mul: return ctx_.mkMul(old, rhs);
      case lang::BinOp::Div:
        return uns ? ctx_.mkUDiv(old, rhs) : ctx_.mkSDiv(old, rhs);
      case lang::BinOp::Rem:
        return uns ? ctx_.mkURem(old, rhs) : ctx_.mkSRem(old, rhs);
      case lang::BinOp::BitAnd: return ctx_.mkBvAnd(old, rhs);
      case lang::BinOp::BitOr: return ctx_.mkBvOr(old, rhs);
      case lang::BinOp::BitXor: return ctx_.mkBvXor(old, rhs);
      case lang::BinOp::Shl: return ctx_.mkShl(old, rhs);
      case lang::BinOp::Shr:
        return uns ? ctx_.mkLShr(old, rhs) : ctx_.mkAShr(old, rhs);
      default:
        throw PugError("unsupported compound assignment operator");
      }
    (void)tr;
  }

  [[nodiscard]] Expr effective(Expr guard) {
    return ctx_.mkAnd(guard, cur_->active);
  }

  /// Translates postcondition statements once, with spec variables (the
  /// uninitialized privates they mention) as fresh universal variables and
  /// arrays bound to their final state.
  void collectPostconds(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Postcond: {
        std::unordered_map<const VarDecl*, Expr> specEnv;
        std::vector<Expr> specVars;
        EnvCallbacks cbs;
        cbs.builtin = [this](BuiltinVar b) {
          // Postconditions speak about the whole grid, not one thread.
          switch (b) {
            case BuiltinVar::BdimX: return bv(grid_.bdimX);
            case BuiltinVar::BdimY: return bv(grid_.bdimY);
            case BuiltinVar::BdimZ: return bv(grid_.bdimZ);
            case BuiltinVar::GdimX: return bv(grid_.gdimX);
            case BuiltinVar::GdimY: return bv(grid_.gdimY);
            default:
              throw PugError("postcondition cannot mention tid/bid");
          }
        };
        cbs.readVar = [this, &specEnv, &specVars](const VarDecl* d) {
          if (d->space == MemSpace::Param) return paramValue_.at(d);
          auto it = specEnv.find(d);
          if (it != specEnv.end()) return it->second;
          Expr v = ctx_.freshVar(prefix_ + "_spec_" + d->name, bvSortName());
          specEnv[d] = v;
          specVars.push_back(v);
          return v;
        };
        cbs.readArray = [this](const VarDecl* d, Expr idx) {
          return ctx_.mkSelect(arrays_.at(d), idx);  // final state
        };
        Translator tr(ctx_, opt_, std::move(cbs));
        out_.postconds.push_back({tr.toBool(*s.cond), specVars, s.loc});
        return;
      }
      case Stmt::Kind::If:
        collectPostconds(*s.thenStmt);
        if (s.elseStmt) collectPostconds(*s.elseStmt);
        return;
      case Stmt::Kind::For:
      case Stmt::Kind::While:
        collectPostconds(*s.body);
        return;
      case Stmt::Kind::Block:
        for (const auto& st : s.stmts) collectPostconds(*st);
        return;
      default:
        return;
    }
  }

  expr::Context& ctx_;
  const lang::Kernel& kernel_;
  const GridConfig& grid_;
  const EncodeOptions& opt_;
  std::string prefix_;
  EncodedKernel out_;

  std::unordered_map<const VarDecl*, Expr> arrays_;     // current SSA value
  std::unordered_map<const VarDecl*, Expr> paramValue_; // scalar params
  std::vector<ThreadState> threads_;
  ThreadState* cur_ = nullptr;
  uint32_t bx_ = 0, by_ = 0;
};

}  // namespace

std::string GridConfig::str() const {
  std::ostringstream os;
  os << "grid(" << gdimX << "x" << gdimY << ") block(" << bdimX << "x"
     << bdimY << "x" << bdimZ << ")";
  return os.str();
}

EncodedKernel encodeSsa(expr::Context& ctx, const lang::Kernel& kernel,
                        const GridConfig& grid, const EncodeOptions& options,
                        const std::string& prefix) {
  require(grid.totalThreads() >= 1, "empty grid");
  require((uint64_t{1} << options.width) > grid.threadsPerBlock(),
          "bit-width too small to address the block");
  return SsaEncoder(ctx, kernel, grid, options, prefix).run();
}

}  // namespace pugpara::encode
