// Non-parameterized encoder (paper Sec. III): enumerates every thread of a
// concrete grid and serializes their shared-memory accesses in the natural
// order (tid-major) per barrier interval, producing store-chain expressions
// that play the role of the SSA-indexed TRANS(t, n) relation.
//
// Two passes:
//  * Pass A (barrier flattening): splits the kernel into barrier intervals,
//    statically unrolling any loop that contains a barrier. Such loops must
//    have launch-uniform, concretely foldable bounds — when a bound reads a
//    symbolic scalar parameter the encoder demands a "+C" concretization,
//    exactly the paper's Table II workaround.
//  * Pass B (symbolic execution): runs every thread through each interval in
//    natural order. Branches merge via ite (no path explosion); loops
//    without barriers unroll per-thread (bounds fold after substituting the
//    concrete thread coordinates).
#pragma once

#include <string>
#include <vector>

#include "encode/symbolic_env.h"
#include "expr/context.h"
#include "lang/ast.h"

namespace pugpara::encode {

struct GridConfig {
  uint32_t gdimX = 1, gdimY = 1;
  uint32_t bdimX = 1, bdimY = 1, bdimZ = 1;

  [[nodiscard]] uint64_t threadsPerBlock() const {
    return static_cast<uint64_t>(bdimX) * bdimY * bdimZ;
  }
  [[nodiscard]] uint64_t blocks() const {
    return static_cast<uint64_t>(gdimX) * gdimY;
  }
  [[nodiscard]] uint64_t totalThreads() const {
    return threadsPerBlock() * blocks();
  }
  [[nodiscard]] std::string str() const;
};

/// `guard => cond` must be valid for the assertion to hold.
struct Obligation {
  expr::Expr guard;
  expr::Expr cond;
  SourceLoc loc;
};

/// A translated postcondition. `specVars` are the kernel's uninitialized
/// specification variables (the paper's `int i, j;` idiom); they are free in
/// `formula` and therefore universally interpreted when the negation is
/// checked for unsatisfiability.
struct Postcondition {
  expr::Expr formula;
  std::vector<expr::Expr> specVars;
  SourceLoc loc;
};

struct EncodedKernel {
  uint32_t width = 0;
  expr::Expr assumptions;  // config constraints plus assume(...) statements

  std::vector<Obligation> asserts;
  std::vector<Postcondition> postconds;

  // Pointer parameters, in declaration order.
  std::vector<const lang::VarDecl*> arrayParams;
  std::vector<expr::Expr> inputArrays;  // initial symbolic state
  std::vector<expr::Expr> finalArrays;  // state after all threads ran

  // Scalar parameters, in declaration order.
  std::vector<const lang::VarDecl*> scalarParams;
  std::vector<expr::Expr> scalarInputs;
};

/// Encodes `kernel` for the concrete grid. Inputs are named by parameter
/// *position* ("pp_arr0", "pp_scl0", ...), so two kernels encoded in the same
/// Context automatically share their inputs — which is exactly what the
/// equivalence query needs. `prefix` namespaces kernel-internal variables.
/// Throws PugError when the kernel is not encodable for this configuration.
[[nodiscard]] EncodedKernel encodeSsa(expr::Context& ctx,
                                      const lang::Kernel& kernel,
                                      const GridConfig& grid,
                                      const EncodeOptions& options,
                                      const std::string& prefix);

}  // namespace pugpara::encode
