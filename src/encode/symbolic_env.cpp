#include "encode/symbolic_env.h"

#include "lang/sema.h"
#include "support/diagnostics.h"

namespace pugpara::encode {

using expr::Expr;
using lang::BinOp;
using lang::UnOp;

Expr Translator::coerceBv(Expr e) {
  if (e.sort().isBv()) return e;
  require(e.sort().isBool(), "cannot coerce array to scalar");
  return ctx_.mkIte(e, ctx_.bvVal(1, opt_.width), ctx_.bvVal(0, opt_.width));
}

Expr Translator::coerceBool(Expr e) {
  if (e.sort().isBool()) return e;
  require(e.sort().isBv(), "cannot coerce array to Bool");
  return ctx_.mkNe(e, ctx_.bvVal(0, e.sort().width()));
}

Expr Translator::toBv(const lang::Expr& e) { return coerceBv(translate(e)); }

Expr Translator::toBool(const lang::Expr& e) {
  return coerceBool(translate(e));
}

Expr Translator::flatIndex(const lang::Expr& e) {
  require(e.kind == lang::Expr::Kind::Index && e.decl != nullptr,
          "flatIndex expects a resolved array access");
  const lang::VarDecl* d = e.decl;
  Expr idx = toBv(*e.args[0]);
  for (size_t k = 1; k < e.args.size(); ++k) {
    Expr extent = toBv(*d->dims[k]);
    idx = ctx_.mkAdd(ctx_.mkMul(idx, extent), toBv(*e.args[k]));
  }
  return idx;
}

Expr Translator::binary(const lang::Expr& e) {
  const BinOp op = e.binop;

  // Logical operators work on Bool.
  if (op == BinOp::LAnd || op == BinOp::LOr || op == BinOp::Implies) {
    Expr a = toBool(*e.args[0]);
    Expr b = toBool(*e.args[1]);
    switch (op) {
      case BinOp::LAnd: return ctx_.mkAnd(a, b);
      case BinOp::LOr: return ctx_.mkOr(a, b);
      default: return ctx_.mkImplies(a, b);
    }
  }

  Expr a = toBv(*e.args[0]);
  Expr b = toBv(*e.args[1]);
  // Signedness: C-style inference shared with the VM.
  const bool uns = lang::exprIsUnsigned(*e.args[0]) ||
                   lang::exprIsUnsigned(*e.args[1]);
  switch (op) {
    case BinOp::Add: return ctx_.mkAdd(a, b);
    case BinOp::Sub: return ctx_.mkSub(a, b);
    case BinOp::Mul: return ctx_.mkMul(a, b);
    case BinOp::Div: return uns ? ctx_.mkUDiv(a, b) : ctx_.mkSDiv(a, b);
    case BinOp::Rem: return uns ? ctx_.mkURem(a, b) : ctx_.mkSRem(a, b);
    case BinOp::BitAnd: return ctx_.mkBvAnd(a, b);
    case BinOp::BitOr: return ctx_.mkBvOr(a, b);
    case BinOp::BitXor: return ctx_.mkBvXor(a, b);
    case BinOp::Shl: return ctx_.mkShl(a, b);
    case BinOp::Shr: return uns ? ctx_.mkLShr(a, b) : ctx_.mkAShr(a, b);
    case BinOp::Eq: return ctx_.mkEq(a, b);
    case BinOp::Ne: return ctx_.mkNe(a, b);
    case BinOp::Lt: return uns ? ctx_.mkUlt(a, b) : ctx_.mkSlt(a, b);
    case BinOp::Le: return uns ? ctx_.mkUle(a, b) : ctx_.mkSle(a, b);
    case BinOp::Gt: return uns ? ctx_.mkUgt(a, b) : ctx_.mkSgt(a, b);
    case BinOp::Ge: return uns ? ctx_.mkUge(a, b) : ctx_.mkSge(a, b);
    default:
      throw PugError("binary: unhandled operator");
  }
}

Expr Translator::translate(const lang::Expr& e) {
  switch (e.kind) {
    case lang::Expr::Kind::IntLit:
      return ctx_.bvVal(e.intValue, opt_.width);
    case lang::Expr::Kind::BoolLit:
      return ctx_.boolVal(e.boolValue);
    case lang::Expr::Kind::Builtin:
      return cbs_.builtin(e.builtin);
    case lang::Expr::Kind::VarRef:
      require(e.decl != nullptr, "translate: unresolved variable");
      require(!e.decl->isArray(),
              "translate: array '" + e.name + "' used as a scalar");
      return cbs_.readVar(e.decl);
    case lang::Expr::Kind::Index:
      return cbs_.readArray(e.decl, flatIndex(e));
    case lang::Expr::Kind::Unary: {
      if (e.unop == UnOp::LNot) return ctx_.mkNot(toBool(*e.args[0]));
      Expr a = toBv(*e.args[0]);
      return e.unop == UnOp::Neg ? ctx_.mkBvNeg(a) : ctx_.mkBvNot(a);
    }
    case lang::Expr::Kind::Binary:
      return binary(e);
    case lang::Expr::Kind::Ternary: {
      Expr c = toBool(*e.args[0]);
      // Branches are coerced to a common scalar sort.
      Expr t = toBv(*e.args[1]);
      Expr el = toBv(*e.args[2]);
      return ctx_.mkIte(c, t, el);
    }
    case lang::Expr::Kind::Call: {
      const bool uns = lang::exprIsUnsigned(e);
      if (e.name == "abs") {
        Expr a = toBv(*e.args[0]);
        Expr zero = ctx_.bvVal(0, opt_.width);
        return ctx_.mkIte(ctx_.mkSlt(a, zero), ctx_.mkBvNeg(a), a);
      }
      Expr a = toBv(*e.args[0]);
      Expr b = toBv(*e.args[1]);
      Expr aLess = uns ? ctx_.mkUlt(a, b) : ctx_.mkSlt(a, b);
      if (e.name == "min") return ctx_.mkIte(aLess, a, b);
      if (e.name == "max") return ctx_.mkIte(aLess, b, a);
      throw PugError("translate: unknown call '" + e.name + "'");
    }
  }
  throw PugError("translate: unhandled expression kind");
}

}  // namespace pugpara::encode
