#include "encode/equivalence.h"

#include "support/diagnostics.h"

namespace pugpara::encode {

using expr::Expr;

EquivalenceQuery buildEquivalenceQuery(expr::Context& ctx,
                                       const EncodedKernel& src,
                                       const EncodedKernel& tgt) {
  require(src.width == tgt.width,
          "equivalence: kernels encoded at different bit-widths");
  require(src.arrayParams.size() == tgt.arrayParams.size() &&
              src.scalarParams.size() == tgt.scalarParams.size(),
          "equivalence: kernels have different parameter shapes");
  for (size_t i = 0; i < src.inputArrays.size(); ++i)
    require(src.inputArrays[i] == tgt.inputArrays[i],
            "equivalence: kernels do not share input arrays (encode them in "
            "one Context)");

  EquivalenceQuery q;
  q.assumptions = ctx.mkAnd(src.assumptions, tgt.assumptions);
  q.outputsDiffer = ctx.bot();
  for (size_t i = 0; i < src.finalArrays.size(); ++i) {
    Expr idx = ctx.freshVar("eq_idx" + std::to_string(i),
                            expr::Sort::bv(src.width));
    q.indexVars.push_back(idx);
    q.outputs.emplace_back(src.finalArrays[i], tgt.finalArrays[i]);
    Expr differ = ctx.mkNe(ctx.mkSelect(src.finalArrays[i], idx),
                           ctx.mkSelect(tgt.finalArrays[i], idx));
    q.outputsDiffer = ctx.mkOr(q.outputsDiffer, differ);
  }
  return q;
}

}  // namespace pugpara::encode
