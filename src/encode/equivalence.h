// Builds the equivalence query of Sec. III: two kernels encoded over the
// same inputs are equivalent iff no output array can differ at any index.
// The query is the *negation* — assumptions ∧ (∃ index: outputs differ) —
// so Unsat means equivalent and a model is a concrete disagreement witness.
#pragma once

#include "encode/ssa_encoder.h"

namespace pugpara::encode {

struct EquivalenceQuery {
  expr::Expr assumptions;    // both kernels' assumptions, conjoined
  expr::Expr outputsDiffer;  // ∨ over outputs: source[i_k] != target[i_k]
  /// One fresh index variable per compared output array (free in
  /// outputsDiffer; a model assigns the witness index).
  std::vector<expr::Expr> indexVars;
  /// The compared output pairs (source final, target final), for reporting.
  std::vector<std::pair<expr::Expr, expr::Expr>> outputs;
};

/// Both kernels must have been encoded in the same Context with matching
/// parameter shapes (same pointer/scalar positions), which makes them share
/// input variables by construction.
[[nodiscard]] EquivalenceQuery buildEquivalenceQuery(expr::Context& ctx,
                                                     const EncodedKernel& src,
                                                     const EncodedKernel& tgt);

}  // namespace pugpara::encode
