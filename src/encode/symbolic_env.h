// Shared translation layer from mini-CUDA AST expressions to symbolic
// bit-vector expressions. Both the non-parameterized SSA encoder (Sec. III)
// and the parameterized CA extractor (Sec. IV) instantiate this with their
// own variable/array/builtin bindings.
//
// Sort discipline: the kernel language is integer-typed; comparisons and
// logical operators produce Bool-sorted expressions, everything else
// BitVec(width). toBool / toBv coerce at the boundaries (C's "nonzero is
// true" convention).
#pragma once

#include <functional>
#include <string>

#include "expr/context.h"
#include "lang/ast.h"

namespace pugpara::encode {

struct EncodeOptions {
  uint32_t width = 16;          // bit-width of every scalar (paper's knob)
  uint32_t maxUnroll = 4096;    // safety cap for symbolic-executor unrolling
  /// "+C" concretizations: scalar parameter name -> concrete value
  /// (Sec. V: "we must concretize some of the symbolic variables").
  std::unordered_map<std::string, uint64_t> concretize;
  /// Non-parameterized encoding style. `false` (default) substitutes array
  /// states through, letting the simplifier discharge concrete-address
  /// kernels outright; `true` emits the paper's Sec. III TRANS relation —
  /// one fresh SSA array variable plus one defining equation per update —
  /// which hands all the work to the solver (and reproduces the paper's
  /// blow-up numbers).
  bool ssaEquations = false;
};

/// Callbacks a translation environment must provide.
struct EnvCallbacks {
  /// Value of a CUDA builtin (tid.x, bdim.y, ...), BitVec(width)-sorted.
  std::function<expr::Expr(lang::BuiltinVar)> builtin;
  /// Current value of a private scalar / scalar parameter.
  std::function<expr::Expr(const lang::VarDecl*)> readVar;
  /// Element read from an array at a flattened index.
  std::function<expr::Expr(const lang::VarDecl*, expr::Expr flatIndex)>
      readArray;
};

class Translator {
 public:
  Translator(expr::Context& ctx, EncodeOptions options, EnvCallbacks cbs)
      : ctx_(ctx), opt_(std::move(options)), cbs_(std::move(cbs)) {}

  [[nodiscard]] expr::Context& ctx() const { return ctx_; }
  [[nodiscard]] const EncodeOptions& options() const { return opt_; }
  [[nodiscard]] expr::Sort bvSort() const { return expr::Sort::bv(opt_.width); }

  /// Translates to a BitVec(width) value (bools become 0/1).
  [[nodiscard]] expr::Expr toBv(const lang::Expr& e);
  /// Translates to a Bool value (bit-vectors become `!= 0`).
  [[nodiscard]] expr::Expr toBool(const lang::Expr& e);

  /// Row-major flattened index of a (possibly multi-dimensional) access.
  [[nodiscard]] expr::Expr flatIndex(const lang::Expr& indexExpr);

  /// Coercions on already-translated expressions.
  [[nodiscard]] expr::Expr coerceBv(expr::Expr e);
  [[nodiscard]] expr::Expr coerceBool(expr::Expr e);

 private:
  [[nodiscard]] expr::Expr translate(const lang::Expr& e);  // natural sort
  [[nodiscard]] expr::Expr binary(const lang::Expr& e);

  expr::Context& ctx_;
  EncodeOptions opt_;
  EnvCallbacks cbs_;
};

}  // namespace pugpara::encode
