// Diagnostics: source locations, errors and warnings collected during
// parsing, semantic analysis and verification.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pugpara {

/// A position in a kernel source buffer (1-based line and column).
struct SourceLoc {
  uint32_t line = 0;
  uint32_t col = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class Severity { Note, Warning, Error };

/// One diagnostic message attached to a source location.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics produced by a front-end pass. Errors are recorded
/// rather than thrown so a pass can report several problems at once; callers
/// check hasErrors() at pass boundaries.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] size_t errorCount() const { return errorCount_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics joined with newlines (for error messages and tests).
  [[nodiscard]] std::string str() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  size_t errorCount_ = 0;
};

/// Fatal, non-recoverable misuse of the library (internal invariant breaks,
/// ill-sorted expressions, ...). Front-end errors in *user kernels* go
/// through DiagnosticEngine instead.
class PugError : public std::runtime_error {
 public:
  explicit PugError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws PugError with the given message when `cond` is false.
void require(bool cond, const std::string& message);

}  // namespace pugpara
