// Minimal JSON emission helpers for the machine-readable report format.
// Emission only — the tool never parses JSON, so no parser lives here.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace pugpara::json {

/// Escapes and double-quotes a string per RFC 8259.
inline std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

/// Doubles render with enough digits to round-trip; JSON has no Inf/NaN, so
/// those degrade to null.
inline std::string number(double v) {
  if (v != v || v > 1.7e308 || v < -1.7e308) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace pugpara::json
