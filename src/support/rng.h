// Small deterministic RNG (SplitMix64) for workload generation in tests and
// benches. Deterministic across platforms, unlike std::mt19937 distributions.
#pragma once

#include <cstdint>

namespace pugpara {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  uint64_t state_;
};

}  // namespace pugpara
