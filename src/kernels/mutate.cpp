#include "kernels/mutate.h"

#include <functional>
#include <sstream>

#include "lang/ast_printer.h"
#include "lang/sema.h"
#include "support/diagnostics.h"

namespace pugpara::kernels {

namespace {

using lang::BinOp;
using lang::Expr;
using lang::Stmt;

/// Walks a kernel's statements/expressions in a deterministic order,
/// calling `onExpr` / `onStmt` on each mutation-relevant node. The walk is
/// identical for counting and for applying, which keeps site indices stable.
class Walker {
 public:
  std::function<void(Expr&)> onExpr;
  std::function<void(Stmt&)> onStmt;

  void stmt(Stmt& s) {
    if (onStmt) onStmt(s);
    switch (s.kind) {
      case Stmt::Kind::Decl:
        for (auto& d : s.decl->dims) expr(*d);
        if (s.decl->init) expr(*s.decl->init);
        return;
      case Stmt::Kind::Assign:
        expr(*s.lhs);
        expr(*s.rhs);
        return;
      case Stmt::Kind::If:
        expr(*s.cond);
        stmt(*s.thenStmt);
        if (s.elseStmt) stmt(*s.elseStmt);
        return;
      case Stmt::Kind::For:
        if (s.init) stmt(*s.init);
        if (s.cond) expr(*s.cond);
        if (s.step) stmt(*s.step);
        stmt(*s.body);
        return;
      case Stmt::Kind::While:
        expr(*s.cond);
        stmt(*s.body);
        return;
      case Stmt::Kind::Block:
        for (auto& st : s.stmts) stmt(*st);
        return;
      case Stmt::Kind::Assert:
      case Stmt::Kind::Assume:
      case Stmt::Kind::Postcond:
        return;  // never mutate the specification
      default:
        return;
    }
  }

  void expr(Expr& e) {
    if (onExpr) onExpr(e);
    for (auto& a : e.args) expr(*a);
  }
};

bool isComparison(BinOp op) {
  return op == BinOp::Lt || op == BinOp::Le || op == BinOp::Gt ||
         op == BinOp::Ge;
}

BinOp swappedComparison(BinOp op) {
  switch (op) {
    case BinOp::Lt: return BinOp::Le;
    case BinOp::Le: return BinOp::Lt;
    case BinOp::Gt: return BinOp::Ge;
    case BinOp::Ge: return BinOp::Gt;
    default: return op;
  }
}

/// Visits the kernel and fires `apply` on the `target`-th applicable site.
/// Returns the number of applicable sites seen (and the description when a
/// mutation fired).
size_t visitSites(lang::Kernel& kernel, MutationKind kind, size_t target,
                  bool apply, std::string* description) {
  size_t count = 0;
  bool done = false;
  auto hit = [&](const std::function<void()>& fire,
                 const std::string& what) {
    if (apply && count == target && !done) {
      fire();
      done = true;
      if (description) *description = what;
    }
    ++count;
  };

  Walker w;
  switch (kind) {
    case MutationKind::AddressOffByOne:
      w.onExpr = [&](Expr& e) {
        if (e.kind != Expr::Kind::Index) return;
        std::ostringstream os;
        os << e.name << "[...] index +1 at " << e.loc.str();
        hit(
            [&e]() {
              auto& idx = e.args.front();
              idx = lang::mkBinary(BinOp::Add, std::move(idx),
                                   lang::mkIntLit(1, e.loc), e.loc);
            },
            os.str());
      };
      break;
    case MutationKind::GuardNegate:
      w.onStmt = [&](Stmt& s) {
        if (s.kind != Stmt::Kind::If) return;
        std::ostringstream os;
        os << "negated if-guard at " << s.loc.str();
        hit(
            [&s]() {
              s.cond = lang::mkUnary(lang::UnOp::LNot, std::move(s.cond),
                                     s.loc);
            },
            os.str());
      };
      break;
    case MutationKind::CompareSwap:
      w.onExpr = [&](Expr& e) {
        if (e.kind != Expr::Kind::Binary || !isComparison(e.binop)) return;
        std::ostringstream os;
        os << lang::binOpName(e.binop) << " -> "
           << lang::binOpName(swappedComparison(e.binop)) << " at "
           << e.loc.str();
        hit([&e]() { e.binop = swappedComparison(e.binop); }, os.str());
      };
      break;
    case MutationKind::ArithSwap:
      w.onExpr = [&](Expr& e) {
        if (e.kind != Expr::Kind::Binary ||
            (e.binop != BinOp::Add && e.binop != BinOp::Mul))
          return;
        BinOp to = e.binop == BinOp::Add ? BinOp::Sub : BinOp::Add;
        std::ostringstream os;
        os << lang::binOpName(e.binop) << " -> " << lang::binOpName(to)
           << " at " << e.loc.str();
        hit([&e, to]() { e.binop = to; }, os.str());
      };
      break;
    case MutationKind::ConstantTweak:
      w.onExpr = [&](Expr& e) {
        if (e.kind != Expr::Kind::IntLit) return;
        std::ostringstream os;
        os << "literal " << e.intValue << " -> " << e.intValue + 1 << " at "
           << e.loc.str();
        hit([&e]() { e.intValue += 1; }, os.str());
      };
      break;
  }
  w.stmt(*kernel.body);
  return count;
}

}  // namespace

const char* toString(MutationKind kind) {
  switch (kind) {
    case MutationKind::AddressOffByOne: return "address-off-by-one";
    case MutationKind::GuardNegate: return "guard-negate";
    case MutationKind::CompareSwap: return "compare-swap";
    case MutationKind::ArithSwap: return "arith-swap";
    case MutationKind::ConstantTweak: return "constant-tweak";
  }
  return "?";
}

size_t countSites(const lang::Kernel& kernel, MutationKind kind) {
  // Counting must not mutate; clone and do a dry pass.
  auto clone = kernel.clone();
  return visitSites(*clone, kind, SIZE_MAX, /*apply=*/false, nullptr);
}

Mutant mutateAt(const lang::Kernel& kernel, MutationKind kind, size_t site) {
  auto clone = kernel.clone();
  std::string description;
  const size_t sites = visitSites(*clone, kind, site, /*apply=*/true,
                                  &description);
  require(site < sites, "mutateAt: site index out of range");
  clone->name = kernel.name + "_mut_" + toString(kind) + "_" +
                std::to_string(site);
  DiagnosticEngine diags;
  lang::analyze(*clone, diags);
  require(!diags.hasErrors(),
          "mutant failed semantic analysis: " + diags.str());
  Mutant m;
  m.kernel = std::move(clone);
  m.kind = kind;
  m.description = description;
  return m;
}

std::vector<Mutant> enumerateMutants(const lang::Kernel& kernel,
                                     size_t maxPerKind) {
  std::vector<Mutant> out;
  for (MutationKind kind :
       {MutationKind::AddressOffByOne, MutationKind::GuardNegate,
        MutationKind::CompareSwap, MutationKind::ArithSwap,
        MutationKind::ConstantTweak}) {
    const size_t sites = countSites(kernel, kind);
    for (size_t i = 0; i < std::min(sites, maxPerKind); ++i)
      out.push_back(mutateAt(kernel, kind, i));
  }
  return out;
}

}  // namespace pugpara::kernels
