// Built-in kernel corpus: the CUDA SDK 2.0-style kernels the paper
// evaluates (transpose, reduction, scan, scalar product, bitonic sort,
// matrix multiply) plus small teaching kernels. Sources may contain the
// placeholder `$B`, replaced per bit-width by the largest matrix extent the
// width can model without address aliasing (2^(w/2) - 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encode/ssa_encoder.h"

namespace pugpara::kernels {

struct CorpusEntry {
  std::string name;         // kernel name as declared in `source`
  std::string family;       // "transpose", "reduction", ...
  std::string description;
  std::string source;       // mini-CUDA text (may contain $B)
  bool paramFriendly;       // parameterized methods apply directly
  encode::GridConfig defaultGrid;  // sensible non-parameterized config
};

/// All corpus entries.
[[nodiscard]] const std::vector<CorpusEntry>& corpus();

/// Lookup by kernel name; PugError when absent.
[[nodiscard]] const CorpusEntry& entry(const std::string& name);

/// Source text with `$B` substituted for the given bit-width.
[[nodiscard]] std::string sourceFor(const CorpusEntry& e, uint32_t width);

/// Concatenated, width-substituted sources of several entries (to parse as
/// one translation unit, as the equivalence checkers need).
[[nodiscard]] std::string combinedSource(
    const std::vector<std::string>& names, uint32_t width);

}  // namespace pugpara::kernels
