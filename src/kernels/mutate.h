// Bug-injection mutator: produces the paper's Table III "buggy versions" —
// "bugs intentionally introduced within correct kernels, e.g. by modifying
// the addresses of accesses on shared variables or the guards of
// conditional statements".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "support/rng.h"

namespace pugpara::kernels {

enum class MutationKind {
  AddressOffByOne,  // v[e] -> v[e + 1] (the paper's address modification)
  GuardNegate,      // if (c) -> if (!c) (the paper's guard modification)
  CompareSwap,      // < -> <=, > -> >=, ...
  ArithSwap,        // + -> -, * -> +
  ConstantTweak,    // literal c -> c + 1
};

[[nodiscard]] const char* toString(MutationKind kind);

struct Mutant {
  std::unique_ptr<lang::Kernel> kernel;  // sema-analyzed, renamed
  MutationKind kind;
  std::string description;  // what changed, with the source location
};

/// Number of applicable sites for `kind` in the kernel.
[[nodiscard]] size_t countSites(const lang::Kernel& kernel,
                                MutationKind kind);

/// Applies `kind` at the `site`-th applicable location of a clone named
/// `<kernel>_mut<N>`. Throws PugError when the site index is out of range
/// or the mutant fails semantic analysis.
[[nodiscard]] Mutant mutateAt(const lang::Kernel& kernel, MutationKind kind,
                              size_t site);

/// Up to `maxPerKind` mutants per kind (sites chosen from the front).
[[nodiscard]] std::vector<Mutant> enumerateMutants(const lang::Kernel& kernel,
                                                   size_t maxPerKind = 4);

}  // namespace pugpara::kernels
