#include "kernels/corpus.h"

#include "support/diagnostics.h"

namespace pugpara::kernels {

namespace {

// ---- Transpose family (paper Sec. II) ---------------------------------------

constexpr const char* kTransposeNaive = R"(
// Naive matrix transpose (CUDA SDK 2.0 "transpose_naive"), with the paper's
// functional-correctness postcondition. Global writes are not coalesced.
void transposeNaive(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.z == 1);
  assume(width >= 0 && width <= $B && height >= 0 && height <= $B);
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if (xIndex < width && yIndex < height) {
    int index_in = xIndex + width * yIndex;
    int index_out = yIndex + height * xIndex;
    odata[index_out] = idata[index_in];
  }
  int i, j;
  postcond(i >= 0 && j >= 0 && i < width && j < height =>
           odata[i * height + j] == idata[j * width + i]);
}
)";

constexpr const char* kTransposeOpt = R"(
// Optimized transpose: coalesced global accesses through a padded shared
// tile (the +1 avoids bank conflicts). Correct only for square blocks —
// hence the bdim.x == bdim.y validity assumption.
void transposeOpt(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.x == bdim.y && bdim.z == 1);
  assume(width >= 0 && width <= $B && height >= 0 && height <= $B);
  __shared__ int block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}
)";

constexpr const char* kTransposeOptNoSquare = R"(
// The optimized transpose WITHOUT the square-block validity assumption:
// PUGpara reveals the hidden assumption (the paper's '*' configurations).
void transposeOptNoSquare(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.z == 1);
  assume(width >= 0 && width <= $B && height >= 0 && height <= $B);
  __shared__ int block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}
)";

// ---- Reduction family (paper Sec. IV-E) -------------------------------------

constexpr const char* kReduceMod = R"(
// Interleaved reduction with the slow modulo test (SDK "reduce0").
void reduceMod(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1 && bdim.x <= $B);
  assume((bdim.x & (bdim.x - 1)) == 0);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";

constexpr const char* kReduceStrided = R"(
// Interleaved reduction with strided indexing: the modulo is gone but the
// access pattern causes shared-memory bank conflicts (SDK "reduce1").
void reduceStrided(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1 && bdim.x <= $B);
  assume((bdim.x & (bdim.x - 1)) == 0);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    int index = 2 * k * tid.x;
    if (index < bdim.x)
      sdata[index] += sdata[index + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";

constexpr const char* kReduceSequential = R"(
// Sequential-addressing reduction (SDK "reduce2"): conflict-free and
// coalesced; iterates the stride DOWNWARDS, so equivalence against the
// interleaved versions needs the commutativity argument of Sec. IV-E.
void reduceSequential(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1 && bdim.x <= $B);
  assume((bdim.x & (bdim.x - 1)) == 0);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = bdim.x / 2; k > 0; k = k / 2) {
    if (tid.x < k)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";

// ---- Scan (parallel prefix sum) ----------------------------------------------

constexpr const char* kScanNaive = R"(
// Hillis-Steele scan with double buffering (SDK "scan_naive"); exclusive
// prefix sum of one block. The buffer-flip variable defeats parameterized
// loop alignment, so this one exercises the non-parameterized path.
void scanNaive(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.x == 1 && gdim.y == 1);
  __shared__ int temp[2 * bdim.x];
  int pout = 0;
  int pin = 1;
  if (tid.x > 0) temp[tid.x] = g_idata[tid.x - 1]; else temp[tid.x] = 0;
  __syncthreads();
  for (unsigned int offset = 1; offset < bdim.x; offset *= 2) {
    pout = 1 - pout;
    pin = 1 - pout;
    if (tid.x >= offset)
      temp[pout * bdim.x + tid.x] =
          temp[pin * bdim.x + tid.x] + temp[pin * bdim.x + tid.x - offset];
    else
      temp[pout * bdim.x + tid.x] = temp[pin * bdim.x + tid.x];
    __syncthreads();
  }
  g_odata[tid.x] = temp[pout * bdim.x + tid.x];
}
)";

// ---- Scalar product -----------------------------------------------------------

constexpr const char* kScalarProd = R"(
// Per-block dot product (simplified SDK "scalarProd"): elementwise products
// into shared accumulators, then a downward tree reduction.
void scalarProd(int *d_C, int *d_A, int *d_B) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1 && bdim.x <= $B);
  assume((bdim.x & (bdim.x - 1)) == 0);
  __shared__ int accum[bdim.x];
  accum[tid.x] = d_A[bid.x * bdim.x + tid.x] * d_B[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int stride = bdim.x / 2; stride > 0; stride = stride / 2) {
    if (tid.x < stride)
      accum[tid.x] += accum[tid.x + stride];
    __syncthreads();
  }
  if (tid.x == 0) d_C[bid.x] = accum[0];
}
)";

// ---- Bitonic sort --------------------------------------------------------------

constexpr const char* kBitonicSort = R"(
// In-shared-memory bitonic sort of one block (SDK "bitonic"); the nested
// barrier-carrying loops make this the example where fixed-thread tools
// blow up (the paper notes GKLEE's state explosion beyond 8 threads).
void bitonicSort(int *values) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.x == 1 && gdim.y == 1);
  __shared__ int shared[bdim.x];
  shared[tid.x] = values[tid.x];
  __syncthreads();
  for (unsigned int k = 2; k <= bdim.x; k *= 2) {
    for (unsigned int j = k / 2; j > 0; j = j / 2) {
      unsigned int ixj = tid.x ^ j;
      if (ixj > tid.x) {
        if ((tid.x & k) == 0) {
          if (shared[tid.x] > shared[ixj]) {
            int t = shared[tid.x];
            shared[tid.x] = shared[ixj];
            shared[ixj] = t;
          }
        } else {
          if (shared[tid.x] < shared[ixj]) {
            int t = shared[tid.x];
            shared[tid.x] = shared[ixj];
            shared[ixj] = t;
          }
        }
      }
      __syncthreads();
    }
  }
  values[tid.x] = shared[tid.x];
}
)";

// ---- Matrix multiply ------------------------------------------------------------

constexpr const char* kMatMulNaive = R"(
// Naive matrix multiply: every thread walks a full row/column pair.
void matMulNaive(int *C, int *A, int *B, int wA, int wB) {
  assume(wB == gdim.x * bdim.x && bdim.z == 1);
  int row = bid.y * bdim.y + tid.y;
  int col = bid.x * bdim.x + tid.x;
  int acc = 0;
  for (int k = 0; k < wA; k++)
    acc += A[row * wA + k] * B[k * wB + col];
  C[row * wB + col] = acc;
}
)";

constexpr const char* kMatMulTiled = R"(
// Tiled matrix multiply (CUDA programming guide, Sec. 6.2): square tiles
// staged through shared memory with barrier-separated phases.
void matMulTiled(int *C, int *A, int *B, int wA, int wB) {
  assume(wB == gdim.x * bdim.x && bdim.x == bdim.y && bdim.z == 1);
  __shared__ int As[bdim.x][bdim.x];
  __shared__ int Bs[bdim.x][bdim.x];
  int row = bid.y * bdim.y + tid.y;
  int col = bid.x * bdim.x + tid.x;
  int acc = 0;
  for (int m = 0; m < wA / bdim.x; m++) {
    As[tid.y][tid.x] = A[row * wA + (m * bdim.x + tid.x)];
    Bs[tid.y][tid.x] = B[(m * bdim.x + tid.y) * wB + col];
    __syncthreads();
    for (int k = 0; k < bdim.x; k++)
      acc += As[tid.y][k] * Bs[k][tid.x];
    __syncthreads();
  }
  C[row * wB + col] = acc;
}
)";


// ---- Array reversal -------------------------------------------------------------

constexpr const char* kReverseNaive = R"(
// Naive array reversal: reversed (hence uncoalesced) global writes.
void reverseNaive(int *out, int *in, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) out[n - 1 - i] = in[i];
  int j;
  postcond(j >= 0 && j < n => out[j] == in[n - 1 - j]);
}
)";

constexpr const char* kReverseOpt = R"(
// Optimized reversal: reverse within a shared tile, then write the tiles
// out in reverse block order — every global access coalesced. Linear
// addressing keeps this pair parameterized-checkable without any
// concretization (unlike the transpose).
void reverseOpt(int *out, int *in, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  __shared__ int tile[bdim.x];
  int i = bid.x * bdim.x + tid.x;
  if (i < n) tile[bdim.x - 1 - tid.x] = in[i];
  __syncthreads();
  int o = (gdim.x - 1 - bid.x) * bdim.x + tid.x;
  if (o < n) out[o] = tile[tid.x];
  int j;
  postcond(j >= 0 && j < n => out[j] == in[n - 1 - j]);
}
)";

// ---- Small teaching kernels ------------------------------------------------------

constexpr const char* kVecAdd = R"(
// Elementwise vector addition: the quickstart kernel.
void vecAdd(int *c, int *a, int *b, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) c[i] = a[i] + b[i];
  int j;
  postcond(j >= 0 && j < n => c[j] == a[j] + b[j]);
}
)";

constexpr const char* kSaxpy = R"(
// saxpy: c = alpha * a + b.
void saxpy(int *c, int *a, int *b, int alpha, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) c[i] = alpha * a[i] + b[i];
  int j;
  postcond(j >= 0 && j < n => c[j] == alpha * a[j] + b[j]);
}
)";

constexpr const char* kRacyHistogram = R"(
// Histogram without atomics: two threads hitting the same bin race. A
// deliberately racy kernel for exercising the race checkers.
void racyHistogram(int *bins, int *data) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.x == 1 && gdim.y == 1);
  bins[data[tid.x] % 64] += 1;
}
)";

std::vector<CorpusEntry> buildCorpus() {
  std::vector<CorpusEntry> out;
  auto add = [&out](std::string name, std::string family, std::string desc,
                    const char* src, bool paramFriendly,
                    encode::GridConfig grid) {
    out.push_back({std::move(name), std::move(family), std::move(desc), src,
                   paramFriendly, grid});
  };
  add("transposeNaive", "transpose", "naive transpose (uncoalesced writes)",
      kTransposeNaive, true, {2, 2, 2, 2, 1});
  add("transposeOpt", "transpose", "optimized transpose (tiled, padded)",
      kTransposeOpt, true, {2, 2, 2, 2, 1});
  add("transposeOptNoSquare", "transpose",
      "optimized transpose without the square-block assumption",
      kTransposeOptNoSquare, true, {1, 2, 4, 2, 1});
  add("reduceMod", "reduction", "interleaved reduction, modulo test",
      kReduceMod, true, {2, 1, 8, 1, 1});
  add("reduceStrided", "reduction", "interleaved reduction, strided index",
      kReduceStrided, true, {2, 1, 8, 1, 1});
  add("reduceSequential", "reduction", "sequential-addressing reduction",
      kReduceSequential, true, {2, 1, 8, 1, 1});
  add("scanNaive", "scan", "Hillis-Steele scan, double-buffered", kScanNaive,
      false, {1, 1, 8, 1, 1});
  add("scalarProd", "scalarprod", "per-block dot product", kScalarProd, true,
      {2, 1, 8, 1, 1});
  add("bitonicSort", "sort", "bitonic sort of one block", kBitonicSort,
      false, {1, 1, 8, 1, 1});
  add("matMulNaive", "matmul", "naive matrix multiply", kMatMulNaive, false,
      {2, 2, 2, 2, 1});
  add("matMulTiled", "matmul", "tiled matrix multiply", kMatMulTiled, false,
      {2, 2, 2, 2, 1});
  add("reverseNaive", "reverse", "array reversal (uncoalesced writes)",
      kReverseNaive, true, {2, 1, 8, 1, 1});
  add("reverseOpt", "reverse", "array reversal via reversed shared tiles",
      kReverseOpt, true, {2, 1, 8, 1, 1});
  add("vecAdd", "teaching", "vector addition with postcondition", kVecAdd,
      true, {2, 1, 8, 1, 1});
  add("saxpy", "teaching", "saxpy with postcondition", kSaxpy, true,
      {2, 1, 8, 1, 1});
  add("racyHistogram", "teaching", "deliberately racy histogram",
      kRacyHistogram, true, {1, 1, 8, 1, 1});
  return out;
}

}  // namespace

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> entries = buildCorpus();
  return entries;
}

const CorpusEntry& entry(const std::string& name) {
  for (const CorpusEntry& e : corpus())
    if (e.name == name) return e;
  throw PugError("no corpus kernel named '" + name + "'");
}

std::string sourceFor(const CorpusEntry& e, uint32_t width) {
  require(width >= 4 && width <= 64, "corpus: width out of range");
  // Largest extent so that a $B x $B matrix (and the padded tile) stays
  // inside the addressable range: 2^(w/2) - 1.
  const uint64_t bound = (uint64_t{1} << (width / 2)) - 1;
  std::string src = e.source;
  const std::string key = "$B";
  for (size_t pos = src.find(key); pos != std::string::npos;
       pos = src.find(key, pos))
    src.replace(pos, key.size(), std::to_string(bound));
  return src;
}

std::string combinedSource(const std::vector<std::string>& names,
                           uint32_t width) {
  std::string out;
  for (const auto& n : names) out += sourceFor(entry(n), width);
  return out;
}

}  // namespace pugpara::kernels
