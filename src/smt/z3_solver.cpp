// Z3 backend: translates the hash-consed Expr DAG into z3::expr with
// per-node memoization, so shared subterms are translated once.
#include <z3++.h>

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"
#include "smt/solver.h"
#include "support/diagnostics.h"

namespace pugpara::smt {

namespace {

using expr::Expr;
using expr::Kind;
using expr::Node;

class Z3Translator {
 public:
  explicit Z3Translator(z3::context& z3) : z3_(z3) {}

  z3::expr translate(Expr e) {
    auto it = cache_.find(e.node());
    if (it != cache_.end()) return it->second;
    z3::expr r = build(e);
    cache_.emplace(e.node(), r);
    return r;
  }

 private:
  z3::sort sortOf(expr::Sort s) {
    if (s.isBool()) return z3_.bool_sort();
    if (s.isBv()) return z3_.bv_sort(s.width());
    return z3_.array_sort(z3_.bv_sort(s.indexWidth()),
                          z3_.bv_sort(s.elemWidth()));
  }

  z3::expr build(Expr e) {
    switch (e.kind()) {
      case Kind::BoolConst: return z3_.bool_val(e.isTrue());
      case Kind::BvConst:
        return z3_.bv_val(static_cast<uint64_t>(e.bvValue()),
                          e.sort().width());
      case Kind::Var:
        return z3_.constant(e.varName().c_str(), sortOf(e.sort()));
      case Kind::Not: return !translate(e.kid(0));
      case Kind::And: return translate(e.kid(0)) && translate(e.kid(1));
      case Kind::Or: return translate(e.kid(0)) || translate(e.kid(1));
      case Kind::Xor:
        return translate(e.kid(0)) != translate(e.kid(1));
      case Kind::Implies:
        return z3::implies(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::Eq: return translate(e.kid(0)) == translate(e.kid(1));
      case Kind::Ite:
        return z3::ite(translate(e.kid(0)), translate(e.kid(1)),
                       translate(e.kid(2)));
      case Kind::BvNeg: return -translate(e.kid(0));
      case Kind::BvNot: return ~translate(e.kid(0));
      case Kind::BvAdd: return translate(e.kid(0)) + translate(e.kid(1));
      case Kind::BvSub: return translate(e.kid(0)) - translate(e.kid(1));
      case Kind::BvMul: return translate(e.kid(0)) * translate(e.kid(1));
      case Kind::BvUDiv:
        return z3::udiv(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvURem:
        return z3::urem(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvSDiv: return translate(e.kid(0)) / translate(e.kid(1));
      case Kind::BvSRem:
        return z3::srem(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvAnd: return translate(e.kid(0)) & translate(e.kid(1));
      case Kind::BvOr: return translate(e.kid(0)) | translate(e.kid(1));
      case Kind::BvXor: return translate(e.kid(0)) ^ translate(e.kid(1));
      case Kind::BvShl:
        return z3::shl(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvLShr:
        return z3::lshr(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvAShr:
        return z3::ashr(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvUlt:
        return z3::ult(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvUle:
        return z3::ule(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvSlt: return translate(e.kid(0)) < translate(e.kid(1));
      case Kind::BvSle: return translate(e.kid(0)) <= translate(e.kid(1));
      case Kind::BvConcat:
        return z3::concat(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::BvExtract:
        return translate(e.kid(0)).extract(e.extractHi(), e.extractLo());
      case Kind::BvZeroExt:
        return z3::zext(translate(e.kid(0)), e.extendBy());
      case Kind::BvSignExt:
        return z3::sext(translate(e.kid(0)), e.extendBy());
      case Kind::Select:
        return z3::select(translate(e.kid(0)), translate(e.kid(1)));
      case Kind::Store:
        return z3::store(translate(e.kid(0)), translate(e.kid(1)),
                         translate(e.kid(2)));
      case Kind::Forall:
      case Kind::Exists: {
        z3::expr_vector bound(z3_);
        for (uint32_t i = 0; i < e.boundCount(); ++i)
          bound.push_back(translate(e.kid(i)));
        z3::expr body = translate(e.kid(e.boundCount()));
        return e.kind() == Kind::Forall ? z3::forall(bound, body)
                                        : z3::exists(bound, body);
      }
    }
    throw PugError("Z3 translation: unhandled expression kind");
  }

  z3::context& z3_;
  std::unordered_map<const Node*, z3::expr> cache_;
};

class Z3Model final : public Model {
 public:
  Z3Model(std::shared_ptr<z3::context> z3, z3::model m,
          std::shared_ptr<Z3Translator> tr)
      : z3_(std::move(z3)), model_(std::move(m)), tr_(std::move(tr)) {}

  [[nodiscard]] uint64_t evalBv(Expr e) const override {
    require(e.sort().isBv(), "Z3Model::evalBv on non-bitvector expression");
    z3::expr v = model_.eval(tr_->translate(e), /*model_completion=*/true);
    uint64_t out = 0;
    require(v.is_numeral_u64(out), "Z3 model value is not a numeral");
    return out;
  }

  [[nodiscard]] bool evalBool(Expr e) const override {
    require(e.sort().isBool(), "Z3Model::evalBool on non-Bool expression");
    z3::expr v = model_.eval(tr_->translate(e), /*model_completion=*/true);
    return v.is_true();
  }

 private:
  std::shared_ptr<z3::context> z3_;
  z3::model model_;
  std::shared_ptr<Z3Translator> tr_;
};

class Z3Solver final : public Solver {
 public:
  Z3Solver()
      : z3_(std::make_shared<z3::context>()),
        solver_(*z3_),
        tr_(std::make_shared<Z3Translator>(*z3_)) {}

  void push() override { solver_.push(); }
  void pop() override { solver_.pop(); }

  void add(Expr assertion) override {
    require(assertion.sort().isBool(), "asserted expression must be Bool");
    solver_.add(tr_->translate(assertion));
  }

  CheckResult check() override {
    if (stopped_.load(std::memory_order_acquire)) return CheckResult::Unknown;
    switch (solver_.check()) {
      case z3::sat: return CheckResult::Sat;
      case z3::unsat: return CheckResult::Unsat;
      default: return CheckResult::Unknown;
    }
  }

  CheckResult checkAssuming(
      std::span<const expr::Expr> assumptions) override {
    if (stopped_.load(std::memory_order_acquire)) return CheckResult::Unknown;
    z3::expr_vector asms(*z3_);
    for (expr::Expr a : assumptions) {
      require(a.sort().isBool(), "assumption must be Bool");
      asms.push_back(tr_->translate(a));
    }
    switch (solver_.check(asms)) {
      case z3::sat: return CheckResult::Sat;
      case z3::unsat: return CheckResult::Unsat;
      default: return CheckResult::Unknown;
    }
  }

  [[nodiscard]] std::unique_ptr<Model> model() override {
    return std::make_unique<Z3Model>(z3_, solver_.get_model(), tr_);
  }

  void setTimeoutMs(uint32_t ms) override {
    z3::params p(*z3_);
    p.set("timeout", ms == 0 ? 4294967295u : ms);
    solver_.set(p);
  }

  void requestStop() override {
    stopped_.store(true, std::memory_order_release);
    z3_->interrupt();  // Z3's documented cross-thread cancellation entry
  }

  [[nodiscard]] std::string name() const override { return "z3"; }

 private:
  std::atomic<bool> stopped_{false};
  std::shared_ptr<z3::context> z3_;
  z3::solver solver_;
  std::shared_ptr<Z3Translator> tr_;
};

}  // namespace

std::unique_ptr<Solver> makeZ3Solver() { return std::make_unique<Z3Solver>(); }

}  // namespace pugpara::smt
