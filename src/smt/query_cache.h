// Thread-safe solver-query cache.
//
// Verification runs pose highly repetitive queries: the same VC shows up
// across methods, width sweeps re-derive shared obligations, and batch
// re-runs of a corpus repeat entire assertion sets verbatim. The cache keys
// a query by a 128-bit structural digest of its asserted expression set
// (context-independent, see expr/hash.h) and remembers *ground-truth*
// results only: Sat and Unsat. Unknown is never cached — it depends on the
// timeout budget of the run that produced it and would poison later runs.
//
// A cached Unsat short-circuits the solver entirely (no model is needed).
// A cached Sat is advisory: the caller still solves to obtain a model, but
// the hit is counted and the entry keeps the persistent file warm.
//
// Memory is bounded: setCapacity() caps the entry count and evicts in LRU
// order (a lookup refreshes recency), so a long-running server can keep the
// cache hot for days without unbounded growth. The optional sink fires once
// per newly inserted entry — the persistent store (smt/cache_store.h) hooks
// it to journal fresh results to disk without the solver hot path ever
// waiting on I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "expr/expr.h"
#include "smt/solver.h"

namespace pugpara::smt {

/// 128-bit structural digest of an assertion set. Two independently seeded
/// 64-bit digests make accidental collisions (which would silently flip a
/// verdict) astronomically unlikely.
struct QueryKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const QueryKey& a, const QueryKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct QueryKeyHash {
  size_t operator()(const QueryKey& k) const {
    return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Computes the cache key for an asserted expression set (order-insensitive).
[[nodiscard]] QueryKey queryKey(std::span<const expr::Expr> assertions);

/// Key for a prefix + assumptions query, i.e. checkAssuming(assumptions) on
/// a solver holding `assertions`. Semantically the query decides the
/// conjunction of both sets, so the key is the order-insensitive digest of
/// their union: the same Sat/Unsat entry answers the query no matter how
/// the formulas are split between prefix and assumptions.
[[nodiscard]] QueryKey queryKey(std::span<const expr::Expr> assertions,
                                std::span<const expr::Expr> assumptions);

class QueryCache {
 public:
  struct Stats {
    uint64_t hits = 0;        // lookups answered from the cache
    uint64_t misses = 0;      // lookups that fell through to the solver
    uint64_t insertions = 0;  // distinct entries stored
    uint64_t evictions = 0;   // entries dropped by the LRU capacity cap
  };

  /// Called once per *newly stored* entry (insertions, not refreshes),
  /// outside the cache lock. The persistent store uses this to append the
  /// entry to its write-behind journal.
  using Sink = std::function<void(const QueryKey&, CheckResult)>;

  QueryCache() = default;
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result and counts a hit (refreshing the entry's LRU
  /// position); counts a miss otherwise.
  [[nodiscard]] std::optional<CheckResult> lookup(const QueryKey& key);

  /// Stores a ground-truth result. Unknown is silently dropped. Evicts the
  /// least recently used entry when the capacity cap is exceeded.
  void insert(const QueryKey& key, CheckResult result);

  /// Like insert but never notifies the sink — for replaying entries that
  /// already live on disk (QueryCache::load, PersistentQueryStore::open).
  void prime(const QueryKey& key, CheckResult result);

  /// Caps the entry count; 0 (the default) = unbounded. Shrinking below the
  /// current size evicts immediately, coldest first.
  void setCapacity(size_t maxEntries);

  /// Registers the new-entry sink (replacing any previous one). The sink
  /// target must outlive the cache or be cleared with setSink(nullptr)
  /// before it dies.
  void setSink(Sink sink);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] size_t size() const;

  /// Best-effort persistence (one `hi lo result` line per entry). Merges
  /// into the current contents on load; returns false when the file is
  /// missing or malformed (the cache is then left unchanged or partially
  /// merged — never corrupted). The richer checksummed, crash-tolerant
  /// on-disk format lives in smt/cache_store.h; this plain format is kept
  /// for the CLI's --cache flag.
  bool load(const std::string& path);
  [[nodiscard]] bool save(const std::string& path) const;

 private:
  struct Entry {
    QueryKey key;
    CheckResult result;
  };

  /// Inserts under mu_; returns true when the entry is new. Caller decides
  /// whether to notify the sink.
  bool store(const QueryKey& key, CheckResult result);
  void evictOverCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_ = 0;  // 0 = unbounded
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<QueryKey, std::list<Entry>::iterator, QueryKeyHash>
      index_;
  Stats stats_;
  Sink sink_;  // guarded by mu_ for assignment; invoked outside the lock
};

/// Wraps `inner` with the cache: check() first consults `cache` with the key
/// of everything asserted so far, short-circuiting on a cached Unsat and
/// recording fresh Sat/Unsat answers. The wrapper forwards assertions to the
/// inner solver lazily, so a fully cached query never touches the backend.
/// `cache` must outlive the returned solver.
[[nodiscard]] std::unique_ptr<Solver> makeCachingSolver(
    std::unique_ptr<Solver> inner, QueryCache& cache);

}  // namespace pugpara::smt
