// Thread-safe solver-query cache.
//
// Verification runs pose highly repetitive queries: the same VC shows up
// across methods, width sweeps re-derive shared obligations, and batch
// re-runs of a corpus repeat entire assertion sets verbatim. The cache keys
// a query by a 128-bit structural digest of its asserted expression set
// (context-independent, see expr/hash.h) and remembers *ground-truth*
// results only: Sat and Unsat. Unknown is never cached — it depends on the
// timeout budget of the run that produced it and would poison later runs.
//
// A cached Unsat short-circuits the solver entirely (no model is needed).
// A cached Sat is advisory: the caller still solves to obtain a model, but
// the hit is counted and the entry keeps the persistent file warm.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "expr/expr.h"
#include "smt/solver.h"

namespace pugpara::smt {

/// 128-bit structural digest of an assertion set. Two independently seeded
/// 64-bit digests make accidental collisions (which would silently flip a
/// verdict) astronomically unlikely.
struct QueryKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const QueryKey& a, const QueryKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct QueryKeyHash {
  size_t operator()(const QueryKey& k) const {
    return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Computes the cache key for an asserted expression set (order-insensitive).
[[nodiscard]] QueryKey queryKey(std::span<const expr::Expr> assertions);

/// Key for a prefix + assumptions query, i.e. checkAssuming(assumptions) on
/// a solver holding `assertions`. Semantically the query decides the
/// conjunction of both sets, so the key is the order-insensitive digest of
/// their union: the same Sat/Unsat entry answers the query no matter how
/// the formulas are split between prefix and assumptions.
[[nodiscard]] QueryKey queryKey(std::span<const expr::Expr> assertions,
                                std::span<const expr::Expr> assumptions);

class QueryCache {
 public:
  struct Stats {
    uint64_t hits = 0;        // lookups answered from the cache
    uint64_t misses = 0;      // lookups that fell through to the solver
    uint64_t insertions = 0;  // distinct entries stored
  };

  /// Returns the cached result and counts a hit; counts a miss otherwise.
  [[nodiscard]] std::optional<CheckResult> lookup(const QueryKey& key);

  /// Stores a ground-truth result. Unknown is silently dropped.
  void insert(const QueryKey& key, CheckResult result);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] size_t size() const;

  /// Best-effort persistence (one `hi lo result` line per entry). Merges
  /// into the current contents on load; returns false when the file is
  /// missing or malformed (the cache is then left unchanged or partially
  /// merged — never corrupted).
  bool load(const std::string& path);
  [[nodiscard]] bool save(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<QueryKey, CheckResult, QueryKeyHash> entries_;
  Stats stats_;
};

/// Wraps `inner` with the cache: check() first consults `cache` with the key
/// of everything asserted so far, short-circuiting on a cached Unsat and
/// recording fresh Sat/Unsat answers. The wrapper forwards assertions to the
/// inner solver lazily, so a fully cached query never touches the backend.
/// `cache` must outlive the returned solver.
[[nodiscard]] std::unique_ptr<Solver> makeCachingSolver(
    std::unique_ptr<Solver> inner, QueryCache& cache);

}  // namespace pugpara::smt
