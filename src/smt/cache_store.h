// Disk-persistent, content-addressed backing for the solver-query cache.
//
// The serve daemon (src/serve) keeps its query cache warm across process
// restarts by journaling every fresh Sat/Unsat entry to an append-only log.
// The format is built for crash tolerance, not elegance:
//
//   * One record per line:  `<magic> <crc16hex> <payload>`. The CRC (FNV-1a
//     over the payload bytes) makes a torn or truncated tail line — the only
//     kind of damage an append-only writer can leave behind — detectable:
//     such records degrade to a cache miss, never to a wrong verdict.
//   * Appends go through a write-behind thread: the solver hot path only
//     enqueues a formatted line under a queue mutex; file writes and flushes
//     happen on the journal thread. flush() exists for shutdown and tests.
//   * A sidecar flock (`<path>.lock`) makes the writer exclusive. A second
//     process (or store instance) opening the same path gets a read-only
//     view: it loads the snapshot but its appends are dropped, so two
//     daemons pointed at one cache directory coexist without interleaving
//     torn writes. stats().writable reports which side of the lock you got.
//
// Records are only ever appended, so the file is a grow-only superset of
// every entry the cache held; LRU eviction in memory never loses disk state.
#pragma once

#include <cstdint>
#include <cstdio>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "smt/query_cache.h"

namespace pugpara::smt {

/// FNV-1a 64-bit — the record checksum. Exposed for tests that forge
/// corrupt records.
[[nodiscard]] uint64_t fnv1a64(std::string_view bytes);

/// Generic checksummed append-only record log. Line format:
///   `<magic> <crc%016x> <payload>\n`
/// Payload must be newline-free; everything else (spaces included) is the
/// front-end's business. Unparseable or checksum-failing lines are counted
/// and skipped on load — a reader never trusts a damaged record.
class AppendLog {
 public:
  struct Stats {
    uint64_t loaded = 0;    // valid records replayed by open()
    uint64_t corrupt = 0;   // damaged/torn records skipped by open()
    uint64_t appended = 0;  // records the journal thread wrote
    uint64_t dropped = 0;   // appends ignored (read-only / closed)
    bool open = false;
    bool writable = false;  // false = another writer holds the flock
  };

  using RecordFn = std::function<void(std::string_view payload)>;

  AppendLog() = default;
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Loads existing records (invoking `onRecord` per valid payload), then
  /// acquires the writer flock and starts the journal thread. When another
  /// writer holds the lock the store still loads but stays read-only.
  /// Returns false only when the file exists and cannot be read, or a
  /// missing file cannot be created.
  bool open(const std::string& path, std::string magic, RecordFn onRecord);

  /// Enqueues one record for the journal thread. Never blocks on I/O.
  /// Silently dropped (and counted) when read-only or closed.
  void append(std::string payload);

  /// Blocks until every queued record reached the OS (fflush; no fsync —
  /// crash tolerance comes from the record CRCs, not from durability
  /// ceremony).
  void flush();

  /// Drains the queue, stops the journal thread, releases the flock.
  void close();

  [[nodiscard]] Stats stats() const;

 private:
  void journalLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes the journal thread
  std::condition_variable drained_;  // wakes flush()/close() waiters
  std::deque<std::string> queue_;    // formatted full lines
  bool stop_ = false;
  bool writing_ = false;  // journal thread holds a batch outside mu_
  std::thread journal_;
  std::FILE* file_ = nullptr;
  int lockFd_ = -1;
  std::string magic_;
  Stats stats_;
};

/// The query cache's disk mirror. open() replays surviving records into the
/// cache (prime — no sink echo), then registers itself as the cache's sink
/// so every fresh Sat/Unsat entry is journaled write-behind. Keyed by the
/// same 128-bit structural digests as the in-memory cache, so entries are
/// valid across processes, machines and runs.
class PersistentQueryStore {
 public:
  PersistentQueryStore() = default;
  ~PersistentQueryStore();

  /// Loads `path` into `cache` and wires the sink. The store must outlive
  /// the cache's last insert (Server destroys the engine first); close()
  /// detaches the sink.
  bool open(const std::string& path, QueryCache& cache);

  void flush();
  void close();

  [[nodiscard]] AppendLog::Stats stats() const { return log_.stats(); }

 private:
  AppendLog log_;
  QueryCache* cache_ = nullptr;
};

}  // namespace pugpara::smt
