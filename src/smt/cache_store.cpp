#include "smt/cache_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace pugpara::smt {

uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

AppendLog::~AppendLog() { close(); }

bool AppendLog::open(const std::string& path, std::string magic,
                     RecordFn onRecord) {
  close();
  std::lock_guard<std::mutex> guard(mu_);
  magic_ = std::move(magic);
  stats_ = {};

  // Replay phase: every surviving record, skipping anything damaged. A torn
  // tail (the crash case), a hand-edited line, or bytes from a rogue second
  // writer all fail the CRC or the shape check and degrade to a miss.
  {
    std::ifstream in(path);
    if (in) {
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        // `<magic> <crc> <payload>`
        const std::string prefix = magic_ + ' ';
        if (line.rfind(prefix, 0) != 0) {
          ++stats_.corrupt;
          continue;
        }
        const size_t crcBegin = prefix.size();
        const size_t crcEnd = line.find(' ', crcBegin);
        if (crcEnd == std::string::npos || crcEnd - crcBegin != 16) {
          ++stats_.corrupt;
          continue;
        }
        uint64_t crc = 0;
        if (std::sscanf(line.c_str() + crcBegin, "%16" SCNx64, &crc) != 1) {
          ++stats_.corrupt;
          continue;
        }
        const std::string_view payload =
            std::string_view(line).substr(crcEnd + 1);
        if (fnv1a64(payload) != crc) {
          ++stats_.corrupt;
          continue;
        }
        ++stats_.loaded;
        if (onRecord) onRecord(payload);
      }
    }
  }

  // Writer lock: exclusive, non-blocking. Losing it is not an error — the
  // store degrades to a read-only snapshot so two daemons on one cache
  // directory coexist safely instead of interleaving appends.
  const std::string lockPath = path + ".lock";
  lockFd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  bool writable = false;
  if (lockFd_ >= 0 && ::flock(lockFd_, LOCK_EX | LOCK_NB) == 0) {
    writable = true;
  } else if (lockFd_ >= 0) {
    ::close(lockFd_);
    lockFd_ = -1;
  }

  if (writable) {
    file_ = std::fopen(path.c_str(), "a");
    if (!file_) {
      if (lockFd_ >= 0) ::close(lockFd_);
      lockFd_ = -1;
      return false;
    }
    stop_ = false;
    journal_ = std::thread([this] { journalLoop(); });
  }
  stats_.open = true;
  stats_.writable = writable;
  return true;
}

void AppendLog::append(std::string payload) {
  std::lock_guard<std::mutex> guard(mu_);
  if (!stats_.open || !stats_.writable || stop_) {
    ++stats_.dropped;
    return;
  }
  char crc[20];
  std::snprintf(crc, sizeof crc, "%016" PRIx64, fnv1a64(payload));
  std::string line = magic_;
  line += ' ';
  line += crc;
  line += ' ';
  line += payload;
  line += '\n';
  queue_.push_back(std::move(line));
  cv_.notify_one();
}

void AppendLog::journalLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty() && stop_) return;
    std::deque<std::string> batch;
    batch.swap(queue_);
    writing_ = true;
    lk.unlock();
    for (const std::string& line : batch)
      std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
    lk.lock();
    writing_ = false;
    stats_.appended += batch.size();
    if (queue_.empty()) drained_.notify_all();
  }
}

void AppendLog::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!stats_.writable) return;
  drained_.wait(lk, [&] { return queue_.empty() && !writing_; });
}

void AppendLog::close() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!stats_.open) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (journal_.joinable()) journal_.join();
  std::lock_guard<std::mutex> guard(mu_);
  // The journal thread exits only once the queue is drained, so no queued
  // record is lost on an orderly close.
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (lockFd_ >= 0) {
    ::close(lockFd_);  // releases the flock
    lockFd_ = -1;
  }
  stats_.open = false;
  stats_.writable = false;
}

AppendLog::Stats AppendLog::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

// ---- PersistentQueryStore --------------------------------------------------

namespace {

/// Query record payload: `<hi> <lo> <sat|unsat>` (hex keys).
std::string queryPayload(const QueryKey& key, CheckResult result) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%016" PRIx64 " %016" PRIx64 " %s", key.hi,
                key.lo, toString(result));
  return buf;
}

bool parseQueryPayload(std::string_view payload, QueryKey* key,
                       CheckResult* result) {
  char res[16] = {0};
  if (std::sscanf(std::string(payload).c_str(),
                  "%16" SCNx64 " %16" SCNx64 " %15s", &key->hi, &key->lo,
                  res) != 3)
    return false;
  if (std::strcmp(res, "sat") == 0) *result = CheckResult::Sat;
  else if (std::strcmp(res, "unsat") == 0) *result = CheckResult::Unsat;
  else return false;
  return true;
}

}  // namespace

PersistentQueryStore::~PersistentQueryStore() { close(); }

bool PersistentQueryStore::open(const std::string& path, QueryCache& cache) {
  cache_ = &cache;
  const bool ok = log_.open(path, "pqc1", [&cache](std::string_view payload) {
    QueryKey key;
    CheckResult result;
    // A payload that passed the CRC but fails the shape check was written
    // by a different format revision; skip it (miss, never a verdict).
    if (parseQueryPayload(payload, &key, &result)) cache.prime(key, result);
  });
  if (!ok) {
    cache_ = nullptr;
    return false;
  }
  cache.setSink([this](const QueryKey& key, CheckResult result) {
    log_.append(queryPayload(key, result));
  });
  return true;
}

void PersistentQueryStore::flush() { log_.flush(); }

void PersistentQueryStore::close() {
  if (cache_) {
    cache_->setSink(nullptr);
    cache_ = nullptr;
  }
  log_.close();
}

}  // namespace pugpara::smt
