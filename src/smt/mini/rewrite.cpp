#include "smt/mini/rewrite.h"

#include <algorithm>
#include <vector>

namespace pugpara::smt::mini {

using expr::Expr;
using expr::Kind;
using expr::maskToWidth;

namespace {
constexpr size_t kMaxSumTerms = 32;  // bail out of flattening beyond this

/// log2 of an exact power of two, or -1.
int powerOfTwo(uint64_t v) {
  if (v == 0 || (v & (v - 1)) != 0) return -1;
  int k = 0;
  while ((v >> k) != 1) ++k;
  return k;
}
}  // namespace

Expr Rewriter::rewrite(Expr e) {
  // Iterative post-order over the DAG (SSA store chains nest deeply).
  std::vector<const expr::Node*> stack{e.node()};
  std::vector<Expr> kids;
  while (!stack.empty()) {
    const expr::Node* n = stack.back();
    if (memo_.count(n)) {
      stack.pop_back();
      continue;
    }
    // Quantified subtrees pass through untouched: rebuilding under binders
    // is not worth the care (MiniSMT rejects quantifiers anyway).
    if (n->kind == Kind::Forall || n->kind == Kind::Exists ||
        n->kids.empty()) {
      memo_.emplace(n, Expr(n));
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const expr::Node* k : n->kids)
      if (!memo_.count(k)) {
        stack.push_back(k);
        ready = false;
      }
    if (!ready) continue;
    stack.pop_back();
    kids.clear();
    for (const expr::Node* k : n->kids) kids.push_back(memo_.at(k));
    const Expr out = rebuild(Expr(n), kids);
    if (out != Expr(n)) ++rewrites_;
    memo_.emplace(n, out);
  }
  return memo_.at(e.node());
}

Expr Rewriter::rebuild(Expr e, const std::vector<Expr>& k) {
  switch (e.kind()) {
    case Kind::Not:
      return ctx_.mkNot(k[0]);
    case Kind::And:
      return ctx_.mkAnd(k);
    case Kind::Or:
      return ctx_.mkOr(k);
    case Kind::Xor:
      return ctx_.mkXor(k[0], k[1]);
    case Kind::Implies:
      return ctx_.mkImplies(k[0], k[1]);
    case Kind::Eq:
      return normalizeEq(k[0], k[1]);
    case Kind::Ite:
      return ctx_.mkIte(k[0], k[1], k[2]);
    case Kind::BvNeg:
      return ctx_.mkBvNeg(k[0]);
    case Kind::BvNot:
      return ctx_.mkBvNot(k[0]);
    case Kind::BvAdd:
      return normalizeSum(e.sort().width(), k[0], k[1], /*subtract=*/false);
    case Kind::BvSub:
      return normalizeSum(e.sort().width(), k[0], k[1], /*subtract=*/true);
    case Kind::BvMul:
      return normalizeMul(e.sort().width(), k[0], k[1]);
    case Kind::BvUDiv:
    case Kind::BvURem:
    case Kind::BvSDiv:
    case Kind::BvSRem:
    case Kind::BvAnd:
    case Kind::BvOr:
    case Kind::BvXor:
    case Kind::BvShl:
    case Kind::BvLShr:
    case Kind::BvAShr:
      return ctx_.mkBvBin(e.kind(), k[0], k[1]);
    case Kind::BvUlt:
      return ctx_.mkUlt(k[0], k[1]);
    case Kind::BvUle:
      return ctx_.mkUle(k[0], k[1]);
    case Kind::BvSlt:
      return ctx_.mkSlt(k[0], k[1]);
    case Kind::BvSle:
      return ctx_.mkSle(k[0], k[1]);
    case Kind::BvConcat:
      return ctx_.mkConcat(k[0], k[1]);
    case Kind::BvExtract:
      return ctx_.mkExtract(k[0], e.extractHi(), e.extractLo());
    case Kind::BvZeroExt:
      return ctx_.mkZeroExt(k[0], e.extendBy());
    case Kind::BvSignExt:
      return ctx_.mkSignExt(k[0], e.extendBy());
    case Kind::Select:
      return ctx_.mkSelect(k[0], k[1]);
    case Kind::Store:
      return ctx_.mkStore(k[0], k[1], k[2]);
    default:
      return e;  // leaves and quantifiers never reach here
  }
}

Expr Rewriter::normalizeMul(uint32_t width, Expr x, Expr y) {
  // x * 2^k  ->  x << k: the bit-blaster wires constant shifts directly,
  // versus w/2 adder stages for a general product.
  if (x.isBvConst() && !y.isBvConst()) std::swap(x, y);
  if (y.isBvConst()) {
    const int k = powerOfTwo(y.bvValue());
    if (k > 0)
      return ctx_.mkShl(x, ctx_.bvVal(static_cast<uint64_t>(k), width));
  }
  return ctx_.mkMul(x, y);
}

void Rewriter::flattenSum(Expr e, bool neg,
                          std::vector<std::pair<Expr, bool>>& terms,
                          uint64_t& c, bool& bail) {
  if (bail) return;
  switch (e.kind()) {
    case Kind::BvConst:
      c += neg ? ~e.bvValue() + 1 : e.bvValue();
      return;
    case Kind::BvAdd:
      flattenSum(e.kid(0), neg, terms, c, bail);
      flattenSum(e.kid(1), neg, terms, c, bail);
      return;
    case Kind::BvSub:
      flattenSum(e.kid(0), neg, terms, c, bail);
      flattenSum(e.kid(1), !neg, terms, c, bail);
      return;
    case Kind::BvNeg:
      flattenSum(e.kid(0), !neg, terms, c, bail);
      return;
    default:
      if (terms.size() >= kMaxSumTerms) {
        bail = true;
        return;
      }
      terms.emplace_back(e, neg);
  }
}

void Rewriter::cancelTerms(std::vector<std::pair<Expr, bool>>& terms) {
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  // For each run of the same subterm, net out +t against -t occurrences.
  std::vector<std::pair<Expr, bool>> out;
  size_t i = 0;
  while (i < terms.size()) {
    size_t j = i;
    int net = 0;
    while (j < terms.size() && terms[j].first == terms[i].first) {
      net += terms[j].second ? -1 : 1;
      ++j;
    }
    for (int n = 0; n < std::abs(net); ++n)
      out.emplace_back(terms[i].first, net < 0);
    i = j;
  }
  terms = std::move(out);
}

Expr Rewriter::buildSum(uint32_t width,
                        std::span<const std::pair<Expr, bool>> terms,
                        uint64_t c) {
  const uint64_t cm = maskToWidth(c, width);
  Expr acc;
  for (const auto& [t, neg] : terms) {
    if (acc.isNull())
      acc = neg ? ctx_.mkBvNeg(t) : t;
    else
      acc = neg ? ctx_.mkSub(acc, t) : ctx_.mkAdd(acc, t);
  }
  if (acc.isNull()) return ctx_.bvVal(cm, width);
  if (cm != 0) acc = ctx_.mkAdd(acc, ctx_.bvVal(cm, width));
  return acc;
}

Expr Rewriter::normalizeSum(uint32_t width, Expr x, Expr y, bool subtract) {
  std::vector<std::pair<Expr, bool>> terms;
  uint64_t c = 0;
  bool bail = false;
  flattenSum(x, false, terms, c, bail);
  flattenSum(y, subtract, terms, c, bail);
  if (bail) return subtract ? ctx_.mkSub(x, y) : ctx_.mkAdd(x, y);
  cancelTerms(terms);
  return buildSum(width, terms, c);
}

Expr Rewriter::normalizeEq(Expr l, Expr r) {
  if (!l.sort().isBv()) return ctx_.mkEq(l, r);
  const uint32_t width = l.sort().width();
  // Treat the equality as l - r == 0, cancel across sides, then split the
  // surviving terms back: positives (plus the constant) left, negatives
  // right. Sound in Z/2^w: adding the same term to both sides is an
  // equivalence.
  std::vector<std::pair<Expr, bool>> terms;
  uint64_t c = 0;
  bool bail = false;
  flattenSum(l, false, terms, c, bail);
  flattenSum(r, true, terms, c, bail);
  if (bail) return ctx_.mkEq(l, r);
  cancelTerms(terms);
  std::vector<std::pair<Expr, bool>> lhs, rhs;
  for (const auto& [t, neg] : terms)
    (neg ? rhs : lhs).emplace_back(t, false);
  return ctx_.mkEq(buildSum(width, lhs, c), buildSum(width, rhs, 0));
}

}  // namespace pugpara::smt::mini
