// Array elimination for MiniSMT: read-over-write pushing followed by
// Ackermann reduction. After lowering, the formula mentions no Select /
// Store nodes; each surviving read of a base array variable becomes a fresh
// scalar with pairwise functional-consistency constraints.
#pragma once

#include <vector>

#include "expr/context.h"

namespace pugpara::smt::mini {

struct AckermannRead {
  expr::Expr array;  // base array variable
  expr::Expr index;  // lowered (array-free) index expression
  expr::Expr value;  // the fresh scalar standing for array[index]
};

struct ArrayLowering {
  std::vector<expr::Expr> formulas;     // lowered assertions
  std::vector<expr::Expr> constraints;  // functional-consistency axioms
  std::vector<AckermannRead> reads;     // for model reconstruction
};

/// Lowers `assertions`. Throws PugError on array equalities or other shapes
/// outside the select/store fragment (the caller reports Unknown).
[[nodiscard]] ArrayLowering lowerArrays(expr::Context& ctx,
                                        std::span<const expr::Expr> assertions);

}  // namespace pugpara::smt::mini
