// Array elimination for MiniSMT: read-over-write pushing followed by
// Ackermann reduction. After lowering, the formula mentions no Select /
// Store nodes; each surviving read of a base array variable becomes a fresh
// scalar with pairwise functional-consistency constraints.
//
// ArrayLowerer is incremental: one instance lowers assertion after
// assertion, reusing the rewrite memo and the (array, index) -> scalar map
// across calls, and emits only the NEW consistency constraints each time.
// The constraints are theory-valid Ackermann axioms, so they may be
// asserted permanently even when the assertion that introduced a read is
// later retracted.
//
// Reads come in two flavors. Reads introduced by lower() (asserted
// formulas) are PERMANENT: they are pairwise-axiomatized against every
// other permanent read, forever. Reads introduced by lowerTransient()
// (per-query assumption formulas) are live only for the current query
// (delimited by beginQuery()): they are axiomatized against the permanent
// reads and against the other reads of the same query, but NOT against
// reads of earlier, dead queries — those can never co-occur with the live
// query in one solving context, so pairing them would grow the CNF
// quadratically in the query count for no information. All emitted axioms
// are theory-valid either way, so the SAT layer may keep them permanently.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "expr/context.h"

namespace pugpara::smt::mini {

struct AckermannRead {
  expr::Expr array;  // base array variable
  expr::Expr index;  // lowered (array-free) index expression
  expr::Expr value;  // the fresh scalar standing for array[index]
};

class ArrayLowerer {
 public:
  explicit ArrayLowerer(expr::Context& ctx);
  ~ArrayLowerer();
  ArrayLowerer(ArrayLowerer&&) noexcept;
  ArrayLowerer& operator=(ArrayLowerer&&) noexcept;

  /// Lowers one asserted formula. Reads it references become permanent;
  /// the consistency axioms newly required (new permanent pairs) are
  /// appended to `newConstraints`. Throws PugError on array equalities or
  /// other shapes outside the select/store fragment.
  [[nodiscard]] expr::Expr lower(expr::Expr e,
                                 std::vector<expr::Expr>& newConstraints);

  /// Lowers one assumption formula of the current query. Reads it
  /// references are live until the next beginQuery(); axioms pairing them
  /// with the permanent reads and with this query's other reads are
  /// appended to `newConstraints` (each pair emitted at most once, ever).
  [[nodiscard]] expr::Expr lowerTransient(
      expr::Expr e, std::vector<expr::Expr>& newConstraints);

  /// Starts a new query: reads of the previous query's assumptions stop
  /// being live (their axioms remain — they are valid — but no new pairs
  /// will be emitted against them).
  void beginQuery();

  /// Every read ever introduced (for model reconstruction).
  [[nodiscard]] const std::vector<AckermannRead>& reads() const;

  /// Whether reads()[i] is live for the current query: permanent, or
  /// referenced by an assumption since the last beginQuery(). Model
  /// reconstruction must take array cells from live reads only — dead
  /// reads lack axioms against the live set, so their (unconstrained)
  /// values may contradict the cells the live query pins down.
  [[nodiscard]] bool readActive(size_t i) const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

struct ArrayLowering {
  std::vector<expr::Expr> formulas;     // lowered assertions
  std::vector<expr::Expr> constraints;  // functional-consistency axioms
  std::vector<AckermannRead> reads;     // for model reconstruction
};

/// One-shot convenience over ArrayLowerer. Throws PugError on shapes
/// outside the select/store fragment (the caller reports Unknown).
[[nodiscard]] ArrayLowering lowerArrays(expr::Context& ctx,
                                        std::span<const expr::Expr> assertions);

}  // namespace pugpara::smt::mini
