// A compact CDCL SAT solver: two-watched-literal propagation, first-UIP
// conflict analysis with non-chronological backjumping, EVSIDS branching,
// phase saving, Luby restarts and activity-based learnt-clause reduction.
//
// Incremental, MiniSat-style: solve() may be called repeatedly, clauses may
// be added between calls, and solve(assumptions) decides the instance under
// a set of assumption literals enqueued as pseudo-decisions at the root
// decision levels. Learnt clauses, variable activities and saved phases
// persist across calls, which is what makes a long run of structurally
// similar queries (the race checker's per-pair flood) cheap.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "smt/mini/sat_types.h"

namespace pugpara::smt::mini {

enum class SatResult { Sat, Unsat, Aborted };

class SatSolver {
 public:
  /// Creates a fresh variable and returns it.
  Var newVar();
  [[nodiscard]] size_t numVars() const { return watches_.size() / 2; }

  /// Adds a clause (empty clause makes the instance trivially unsat).
  /// Returns false if the solver is already unsat. Must be called between
  /// solve() calls (the solver is at decision level 0 there); literals
  /// already decided at the top level are simplified away.
  bool addClause(std::vector<Lit> lits);

  /// Budget: abort after this many conflicts PER solve() call (0 =
  /// unlimited). The caller converts wall-clock budgets into conflict
  /// budgets via the callback.
  void setConflictBudget(uint64_t conflicts) { conflictBudget_ = conflicts; }
  /// Optional periodic callback (every ~2048 conflicts); return false to
  /// abort (wall-clock timeouts).
  void setInterrupt(std::function<bool()> keepGoing) {
    keepGoing_ = std::move(keepGoing);
  }

  /// Decides the clause set under `assumptions` (may be empty). Assumptions
  /// constrain only this call; everything learned persists. Unsat means
  /// "unsat under these assumptions" unless the clause set itself is
  /// contradictory (then every later call is Unsat too).
  [[nodiscard]] SatResult solve(std::span<const Lit> assumptions = {});

  /// Value of a variable in the model (snapshot of the last Sat solve();
  /// variables created after that solve read as false).
  [[nodiscard]] bool modelValue(Var v) const {
    return v < model_.size() && model_[v] == LBool::True;
  }

  // Statistics (exposed for the micro bench and tests).
  struct Stats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learnts = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0;
  };
  using ClauseRef = uint32_t;
  static constexpr ClauseRef kNoReason = UINT32_MAX;

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  [[nodiscard]] LBool value(Lit l) const {
    return assigns_[l.var()] ^ l.negated();
  }
  [[nodiscard]] bool assigned(Var v) const {
    return assigns_[v] != LBool::Undef;
  }

  void enqueue(Lit l, ClauseRef reason);
  [[nodiscard]] ClauseRef propagate();  // kNoReason when no conflict
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backLevel);
  void backtrack(int level);
  [[nodiscard]] Lit pickBranch();
  void heapSiftUp(Var v);
  void bumpVar(Var v);
  void bumpClause(Clause& c);
  void decayActivities();
  void reduceLearnts();
  void attach(ClauseRef cr);
  [[nodiscard]] static uint64_t luby(uint64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::code
  std::vector<LBool> assigns_;
  std::vector<bool> savedPhase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<size_t> trailLim_;
  size_t qhead_ = 0;

  std::vector<double> activity_;
  double varInc_ = 1.0;
  double clauseInc_ = 1.0;
  std::vector<uint32_t> heapPos_;  // lazy: linear scan fallback; see .cpp
  std::vector<Var> order_;

  std::vector<Lit> units_;     // top-level units not yet enqueued
  std::vector<LBool> model_;   // snapshot of the last Sat solve()
  bool unsatAtTopLevel_ = false;
  uint64_t conflictBudget_ = 0;
  std::function<bool()> keepGoing_;
  Stats stats_;

  // Scratch for analyze().
  std::vector<uint8_t> seen_;
};

}  // namespace pugpara::smt::mini
