// A compact CDCL SAT solver: two-watched-literal propagation, first-UIP
// conflict analysis with non-chronological backjumping, EVSIDS branching on
// an indexed binary max-heap, phase saving, Luby restarts, LBD (glue) based
// learnt-clause management, chronological backtracking for shallow
// conflicts, and root-level inprocessing (subsumption, self-subsuming
// resolution and bounded variable elimination) between solve() calls.
//
// Incremental, MiniSat-style: solve() may be called repeatedly, clauses may
// be added between calls, and solve(assumptions) decides the instance under
// a set of assumption literals enqueued as pseudo-decisions at the root
// decision levels. Learnt clauses, variable activities and saved phases
// persist across calls, which is what makes a long run of structurally
// similar queries (the race checker's per-pair flood) cheap.
//
// Inprocessing is made safe for incremental use by (a) freezing interface
// variables (setFrozen) so they are never eliminated, and (b) restoring an
// eliminated variable's clauses whenever a new clause or an assumption
// mentions it again (see DESIGN.md §9 for the full argument).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "smt/mini/sat_types.h"
#include "support/rng.h"

namespace pugpara::smt::mini {

enum class SatResult { Sat, Unsat, Aborted };

/// Per-solver tuning knobs. Every technique is individually toggleable so
/// the ablation bench and the fuzz suite can cross-check each one; the seed
/// fields diversify portfolio clones racing on the same CNF.
struct SatConfig {
  bool lbdReduce = true;    // LBD-driven learnt DB reduction (else activity)
  bool chrono = true;       // chronological backtracking for shallow conflicts
  bool inprocess = true;    // root-level subsumption + variable elimination
  uint32_t glueLbd = 2;     // learnts with lbd <= this are never deleted
  uint32_t chronoDistance = 64;  // min backjump distance to go chronological
  uint32_t shareLbdMax = 4;      // export learnts with lbd <= this
  uint64_t restartBase = 64;     // Luby restart unit (in conflicts)
  uint64_t seed = 0;             // PRNG seed (random decisions, portfolio)
  double randomFreq = 0.0;       // fraction of decisions made at random
  bool initialPhase = false;     // default saved phase for fresh variables
};

class SatSolver {
 public:
  SatSolver() = default;
  explicit SatSolver(const SatConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}
  [[nodiscard]] const SatConfig& config() const { return cfg_; }

  /// Creates a fresh variable and returns it.
  Var newVar();
  [[nodiscard]] size_t numVars() const { return watches_.size() / 2; }

  /// Adds a clause (empty clause makes the instance trivially unsat).
  /// Returns false if the solver is already unsat. Must be called between
  /// solve() calls (the solver is at decision level 0 there); literals
  /// already decided at the top level are simplified away. Mentioning an
  /// eliminated variable restores its clauses first.
  bool addClause(std::vector<Lit> lits);

  /// Frozen variables are never eliminated by inprocessing. The SMT layer
  /// freezes everything it can mention later: blasted input-variable bits,
  /// scope selectors, assumption roots and the constant-true variable.
  void setFrozen(Var v, bool frozen = true);
  [[nodiscard]] bool isFrozen(Var v) const { return frozen_[v]; }
  /// True while the variable's clauses live in the elimination store
  /// (exposed for the fuzz suite's incremental-safety checks).
  [[nodiscard]] bool isEliminated(Var v) const { return eliminated_[v]; }

  /// Budget: abort after this many conflicts PER solve() call (0 =
  /// unlimited). The caller converts wall-clock budgets into conflict
  /// budgets via the callback.
  void setConflictBudget(uint64_t conflicts) { conflictBudget_ = conflicts; }
  /// Optional periodic callback (every ~2048 conflicts); return false to
  /// abort (wall-clock timeouts, portfolio losers).
  void setInterrupt(std::function<bool()> keepGoing) {
    keepGoing_ = std::move(keepGoing);
  }

  /// Portfolio clause sharing. Export is invoked on every learnt clause
  /// with lbd <= config().shareLbdMax; import is drained at solve() entry
  /// and at every restart — it should fill `lits` and return true, or
  /// return false when no clause is pending. Imported clauses are added at
  /// the root as learnts (they must be implied by the clause set, which
  /// holds for learnts shared between solvers working on the same CNF even
  /// under assumptions: assumption literals are decisions, so they are
  /// never resolved away and end up negated inside the learnt).
  void setClauseExport(std::function<void(const std::vector<Lit>&, uint32_t)> f) {
    exportFn_ = std::move(f);
  }
  void setClauseImport(std::function<bool(std::vector<Lit>&)> f) {
    importFn_ = std::move(f);
  }

  /// Portfolio CNF mirroring: every newVar()/addClause()/setFrozen() on
  /// this solver is replayed into `clone` (same variable numbering), so N
  /// clones built behind one encoder race on the same CNF. Clauses are
  /// forwarded pre-simplification — each clone simplifies against its own
  /// root state. Shared learnts travel through the import hook instead and
  /// are NOT mirrored.
  void addClone(SatSolver* clone) { clones_.push_back(clone); }
  /// Copies another solver's Sat model snapshot (the portfolio winner's)
  /// so modelValue() on this solver answers from the winning run.
  void adoptModelFrom(const SatSolver& winner) { model_ = winner.model_; }

  /// Decides the clause set under `assumptions` (may be empty). Assumptions
  /// constrain only this call; everything learned persists. Unsat means
  /// "unsat under these assumptions" unless the clause set itself is
  /// contradictory (then every later call is Unsat too). Assumption
  /// variables are temporarily frozen, so inprocessing can never delete a
  /// clause an assumption still needs.
  [[nodiscard]] SatResult solve(std::span<const Lit> assumptions = {});

  /// Value of a variable in the model (snapshot of the last Sat solve();
  /// variables created after that solve read as false). Variables that
  /// were eliminated are patched back in by model extension, so the
  /// snapshot satisfies every clause ever added.
  [[nodiscard]] bool modelValue(Var v) const {
    return v < model_.size() && model_[v] == LBool::True;
  }

  // Statistics (exposed for the micro bench, the ablation bench and the
  // engine's --json block).
  struct Stats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learnts = 0;
    // LBD histogram of learnt clauses at learn time.
    uint64_t lbdGlue = 0;   // lbd <= 2
    uint64_t lbdMid = 0;    // 3..6
    uint64_t lbdLarge = 0;  // > 6
    uint64_t learntsDeleted = 0;
    uint64_t chronoBacktracks = 0;
    // Inprocessing.
    uint64_t inprocessRuns = 0;
    uint64_t subsumed = 0;       // clauses removed by backward subsumption
    uint64_t strengthened = 0;   // literals removed by self-subsumption
    uint64_t eliminatedVars = 0;
    uint64_t restoredVars = 0;
    // Portfolio clause sharing.
    uint64_t exportedClauses = 0;
    uint64_t importedClauses = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    uint32_t lbd = 0;  // glue of learnt clauses (0 for originals)
    double activity = 0;
  };
  using ClauseRef = uint32_t;
  static constexpr ClauseRef kNoReason = UINT32_MAX;

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  [[nodiscard]] LBool value(Lit l) const {
    return assigns_[l.var()] ^ l.negated();
  }
  [[nodiscard]] bool assigned(Var v) const {
    return assigns_[v] != LBool::Undef;
  }
  [[nodiscard]] bool clauseLive(ClauseRef cr) const {
    return !clauses_[cr].lits.empty();
  }

  void enqueue(Lit l, ClauseRef reason);
  [[nodiscard]] ClauseRef propagate();  // kNoReason when no conflict
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backLevel);
  void backtrack(int level);
  [[nodiscard]] Lit pickBranch();
  void bumpVar(Var v);
  void bumpClause(ClauseRef cr);
  void decayActivities();
  [[nodiscard]] uint32_t computeLbd(std::span<const Lit> lits);
  void recordLbd(uint32_t lbd);
  void reduceLearnts();
  void attach(ClauseRef cr);
  [[nodiscard]] static uint64_t luby(uint64_t i);

  // Root-level clause addition shared by addClause, clause restoration and
  // clause import; enqueues units directly (the solver is at level 0) and
  // restores eliminated variables the clause mentions. Never mirrors into
  // clones.
  bool addClauseRoot(std::vector<Lit> lits, bool learnt, uint32_t lbd);
  void drainImports();

  // Inprocessing (all run at decision level 0 with a fully propagated
  // trail; watches are rebuilt from scratch afterwards).
  void maybeInprocess(std::span<const Lit> assumptions);
  void inprocess(std::span<const Lit> assumptions);
  void subsumptionPass(std::vector<std::vector<ClauseRef>>& occ,
                       std::vector<uint64_t>& sig,
                       std::vector<Lit>& pendingUnits);
  void eliminatePass(std::vector<std::vector<ClauseRef>>& occ,
                     std::vector<uint64_t>& sig);
  void restoreVar(Var v);
  void rebuildWatches();
  void extendModel();

  // ---- Branching order: indexed binary max-heap on activity ----
  // order_ is the heap array, heapPos_[v] the index of v in it (UINT32_MAX
  // when v is not in the heap). Variables are re-inserted on backtrack.
  void heapInsert(Var v);
  void heapSiftUp(uint32_t pos);
  void heapSiftDown(uint32_t pos);
  [[nodiscard]] Var heapPop();

  SatConfig cfg_;

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::code
  std::vector<LBool> assigns_;
  std::vector<bool> savedPhase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<size_t> trailLim_;
  size_t qhead_ = 0;

  std::vector<double> activity_;
  double varInc_ = 1.0;
  double clauseInc_ = 1.0;
  std::vector<uint32_t> heapPos_;
  std::vector<Var> order_;

  std::vector<LBool> model_;   // snapshot of the last Sat solve()
  bool unsatAtTopLevel_ = false;
  uint64_t conflictBudget_ = 0;
  std::function<bool()> keepGoing_;
  Stats stats_;

  // Inprocessing state.
  std::vector<bool> frozen_;
  std::vector<bool> eliminated_;
  std::vector<std::vector<std::vector<Lit>>> elimStore_;  // clauses by var
  std::vector<Var> elimOrder_;  // elimination order (for model extension)
  std::vector<Lit> elimUnits_;  // unit resolvents pending application
  size_t inprocessNextAt_ = 1;  // run when clauses_.size() reaches this

  // Portfolio plumbing.
  std::vector<SatSolver*> clones_;
  std::function<void(const std::vector<Lit>&, uint32_t)> exportFn_;
  std::function<bool(std::vector<Lit>&)> importFn_;

  SplitMix64 rng_{0};

  // Scratch for analyze() / computeLbd().
  std::vector<uint8_t> seen_;
  std::vector<uint64_t> lbdStamp_;
  uint64_t lbdStampGen_ = 0;
};

}  // namespace pugpara::smt::mini
