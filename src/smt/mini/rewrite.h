// MiniSMT word-level rewriter: a structural simplification pass applied to
// every assertion before bit-blasting, so fewer and smaller circuits reach
// the CNF layer.
//
// The Context builders already fold constants and apply local identities at
// every node (see expr/simplify.cpp); this pass adds the multi-level rules
// the builders cannot see:
//   - multiplication by a power-of-two constant becomes a constant shift
//     (the bit-blaster wires constant shifts directly, no barrel circuit),
//   - add/sub chains are flattened, constants gathered and x/-x pairs
//     cancelled (sound in modular arithmetic),
//   - bit-vector equalities cancel common addends and migrate constants to
//     one side: x + c1 == y + c2 becomes x + (c1-c2) == y,
//   - rebuilding through the hash-consing builders re-shares common
//     subterms and re-runs every local rule on the rewritten children.
// Every rule is a semantic equality (not mere equisatisfiability), so the
// pass is valid for assertions and assumptions alike.
//
// The rewriter is incremental: one instance memoizes across calls, matching
// the solver's per-scope assertion stream.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "expr/context.h"

namespace pugpara::smt::mini {

class Rewriter {
 public:
  explicit Rewriter(expr::Context& ctx) : ctx_(ctx) {}

  /// Rewrites `e` (memoized across calls; same Context required).
  [[nodiscard]] expr::Expr rewrite(expr::Expr e);

  /// Number of nodes the pass actually changed (for stats/bench output).
  [[nodiscard]] uint64_t rewritesApplied() const { return rewrites_; }

 private:
  [[nodiscard]] expr::Expr rebuild(expr::Expr e,
                                   const std::vector<expr::Expr>& kids);
  [[nodiscard]] expr::Expr normalizeMul(uint32_t width, expr::Expr x,
                                        expr::Expr y);
  [[nodiscard]] expr::Expr normalizeSum(uint32_t width, expr::Expr x,
                                        expr::Expr y, bool subtract);
  [[nodiscard]] expr::Expr normalizeEq(expr::Expr l, expr::Expr r);

  // Flattens an add/sub/neg chain into +/- terms and a constant
  // accumulator; sets `bail` when the chain is too large to be worth it.
  void flattenSum(expr::Expr e, bool neg,
                  std::vector<std::pair<expr::Expr, bool>>& terms,
                  uint64_t& c, bool& bail);
  [[nodiscard]] expr::Expr buildSum(uint32_t width,
                                    std::span<const std::pair<expr::Expr, bool>> terms,
                                    uint64_t c);
  // Sorts terms by node id and cancels t/-t pairs in place.
  static void cancelTerms(std::vector<std::pair<expr::Expr, bool>>& terms);

  expr::Context& ctx_;
  std::unordered_map<const expr::Node*, expr::Expr> memo_;
  uint64_t rewrites_ = 0;
};

}  // namespace pugpara::smt::mini
