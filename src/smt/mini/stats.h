// Process-wide MiniSMT counters. Each MiniSolver aggregates its SAT
// solvers' statistics (primary plus portfolio clones) and its rewriter's
// work here when it is destroyed; the CLI --json block and the ablation
// bench read a snapshot. Atomic because engine worker threads destroy
// solvers concurrently.
#pragma once

#include <atomic>
#include <cstdint>

namespace pugpara::smt::mini {

struct MiniGlobalStats {
  std::atomic<uint64_t> conflicts{0};
  std::atomic<uint64_t> decisions{0};
  std::atomic<uint64_t> propagations{0};
  std::atomic<uint64_t> restarts{0};
  std::atomic<uint64_t> learnts{0};
  // LBD histogram of learnt clauses (glue <= 2 / 3..6 / > 6).
  std::atomic<uint64_t> lbdGlue{0};
  std::atomic<uint64_t> lbdMid{0};
  std::atomic<uint64_t> lbdLarge{0};
  std::atomic<uint64_t> learntsDeleted{0};
  std::atomic<uint64_t> chronoBacktracks{0};
  std::atomic<uint64_t> inprocessRuns{0};
  std::atomic<uint64_t> subsumed{0};
  std::atomic<uint64_t> strengthened{0};
  std::atomic<uint64_t> eliminatedVars{0};
  std::atomic<uint64_t> restoredVars{0};
  std::atomic<uint64_t> exportedClauses{0};
  std::atomic<uint64_t> importedClauses{0};
  std::atomic<uint64_t> rewrites{0};        // word-level rewriter hits
  std::atomic<uint64_t> portfolioRaces{0};  // seed-portfolio checkAssuming calls
  std::atomic<uint64_t> winnerSeed{0};      // seed of the latest race winner
};

inline MiniGlobalStats& miniGlobalStats() {
  static MiniGlobalStats s;
  return s;
}

/// Plain-value copy for printing.
struct MiniStatsSnapshot {
  uint64_t conflicts, decisions, propagations, restarts, learnts;
  uint64_t lbdGlue, lbdMid, lbdLarge, learntsDeleted, chronoBacktracks;
  uint64_t inprocessRuns, subsumed, strengthened, eliminatedVars,
      restoredVars;
  uint64_t exportedClauses, importedClauses, rewrites, portfolioRaces,
      winnerSeed;
};

inline MiniStatsSnapshot snapshotMiniStats() {
  const MiniGlobalStats& g = miniGlobalStats();
  return {g.conflicts.load(),       g.decisions.load(),
          g.propagations.load(),    g.restarts.load(),
          g.learnts.load(),         g.lbdGlue.load(),
          g.lbdMid.load(),          g.lbdLarge.load(),
          g.learntsDeleted.load(),  g.chronoBacktracks.load(),
          g.inprocessRuns.load(),   g.subsumed.load(),
          g.strengthened.load(),    g.eliminatedVars.load(),
          g.restoredVars.load(),    g.exportedClauses.load(),
          g.importedClauses.load(), g.rewrites.load(),
          g.portfolioRaces.load(),  g.winnerSeed.load()};
}

inline void resetMiniStats() {
  MiniGlobalStats& g = miniGlobalStats();
  g.conflicts = 0;
  g.decisions = 0;
  g.propagations = 0;
  g.restarts = 0;
  g.learnts = 0;
  g.lbdGlue = 0;
  g.lbdMid = 0;
  g.lbdLarge = 0;
  g.learntsDeleted = 0;
  g.chronoBacktracks = 0;
  g.inprocessRuns = 0;
  g.subsumed = 0;
  g.strengthened = 0;
  g.eliminatedVars = 0;
  g.restoredVars = 0;
  g.exportedClauses = 0;
  g.importedClauses = 0;
  g.rewrites = 0;
  g.portfolioRaces = 0;
  g.winnerSeed = 0;
}

}  // namespace pugpara::smt::mini
