#include "smt/mini/bitblast.h"

#include "support/diagnostics.h"

namespace pugpara::smt::mini {

using expr::Expr;
using expr::Kind;

Lit BitBlaster::constLit(bool b) {
  if (!haveTrue_) {
    true_ = fresh();
    sat_.addClause({true_});
    haveTrue_ = true;
  }
  return b ? true_ : ~true_;
}

bool BitBlaster::litConst(Lit l, bool& out) const {
  if (!haveTrue_) return false;
  if (l == true_) {
    out = true;
    return true;
  }
  if (l == ~true_) {
    out = false;
    return true;
  }
  return false;
}

void BitBlaster::freezeInterface() {
  if (haveTrue_) sat_.setFrozen(true_.var());
  for (expr::Expr v : vars_) {
    if (v.sort().isBv()) {
      for (Lit l : bits(v)) sat_.setFrozen(l.var());
    } else {
      sat_.setFrozen(boolLit(v).var());
    }
  }
}

// ---- Gates -------------------------------------------------------------------

Lit BitBlaster::gAnd(Lit a, Lit b) {
  if (haveTrue_) {
    if (a == constLit(false) || b == constLit(false)) return constLit(false);
    if (a == constLit(true)) return b;
    if (b == constLit(true)) return a;
  }
  if (a == b) return a;
  if (a == ~b) return constLit(false);
  Lit o = fresh();
  sat_.addClause({~o, a});
  sat_.addClause({~o, b});
  sat_.addClause({o, ~a, ~b});
  return o;
}

Lit BitBlaster::gOr(Lit a, Lit b) { return ~gAnd(~a, ~b); }

Lit BitBlaster::gXor(Lit a, Lit b) {
  if (haveTrue_) {
    if (a == constLit(false)) return b;
    if (b == constLit(false)) return a;
    if (a == constLit(true)) return ~b;
    if (b == constLit(true)) return ~a;
  }
  if (a == b) return constLit(false);
  if (a == ~b) return constLit(true);
  Lit o = fresh();
  sat_.addClause({~o, a, b});
  sat_.addClause({~o, ~a, ~b});
  sat_.addClause({o, ~a, b});
  sat_.addClause({o, a, ~b});
  return o;
}

Lit BitBlaster::gIte(Lit c, Lit t, Lit e) {
  if (t == e) return t;
  if (haveTrue_) {
    if (c == constLit(true)) return t;
    if (c == constLit(false)) return e;
  }
  Lit o = fresh();
  sat_.addClause({~o, ~c, t});
  sat_.addClause({~o, c, e});
  sat_.addClause({o, ~c, ~t});
  sat_.addClause({o, c, ~e});
  return o;
}

Lit BitBlaster::gAndMany(const std::vector<Lit>& ls) {
  Lit acc = constLit(true);
  for (Lit l : ls) acc = gAnd(acc, l);
  return acc;
}

// ---- Vector circuits -----------------------------------------------------------

std::vector<Lit> BitBlaster::vAdd(const std::vector<Lit>& a,
                                  const std::vector<Lit>& b, Lit carryIn) {
  std::vector<Lit> out(a.size());
  Lit carry = carryIn;
  for (size_t i = 0; i < a.size(); ++i) {
    Lit axb = gXor(a[i], b[i]);
    out[i] = gXor(axb, carry);
    carry = gOr(gAnd(a[i], b[i]), gAnd(axb, carry));
  }
  return out;
}

std::vector<Lit> BitBlaster::vNeg(const std::vector<Lit>& a) {
  std::vector<Lit> inv(a.size());
  for (size_t i = 0; i < a.size(); ++i) inv[i] = ~a[i];
  std::vector<Lit> one(a.size(), constLit(false));
  one[0] = constLit(true);
  return vAdd(inv, one, constLit(false));
}

std::vector<Lit> BitBlaster::vMul(const std::vector<Lit>& a,
                                  const std::vector<Lit>& b) {
  // Shift-and-add multiplier. Rows gated by a constant bit need no gates:
  // a zero row skips its adder entirely, a one row adds `a` shifted as-is.
  std::vector<Lit> acc(a.size(), constLit(false));
  for (size_t i = 0; i < b.size(); ++i) {
    bool bi = false;
    const bool isConst = litConst(b[i], bi);
    if (isConst && !bi) continue;
    std::vector<Lit> partial(a.size(), constLit(false));
    for (size_t j = 0; i + j < a.size(); ++j)
      partial[i + j] = isConst ? a[j] : gAnd(a[j], b[i]);
    acc = vAdd(acc, partial, constLit(false));
  }
  return acc;
}

std::vector<Lit> BitBlaster::vIte(Lit c, const std::vector<Lit>& t,
                                  const std::vector<Lit>& e) {
  std::vector<Lit> out(t.size());
  for (size_t i = 0; i < t.size(); ++i) out[i] = gIte(c, t[i], e[i]);
  return out;
}

std::vector<Lit> BitBlaster::vShift(const std::vector<Lit>& a,
                                    const std::vector<Lit>& by, bool left) {
  // Barrel shifter: stages cover every in-range distance (< w); the exact
  // numeric test `by >= w` zeroes the out-of-range amounts (SMT-LIB shift
  // semantics).
  const size_t w = a.size();
  // Constant shift amount: wire the result directly, no barrel stages.
  {
    uint64_t amt = 0;
    bool allConst = true;
    for (size_t i = 0; i < by.size(); ++i) {
      bool bit = false;
      if (!litConst(by[i], bit)) {
        allConst = false;
        break;
      }
      if (bit) amt = i >= 63 ? uint64_t{w} : amt | (uint64_t{1} << i);
    }
    if (allConst) {
      std::vector<Lit> out(w, constLit(false));
      if (amt < w) {
        for (size_t i = 0; i < w; ++i) {
          if (left) {
            if (i >= amt) out[i] = a[i - amt];
          } else {
            if (i + amt < w) out[i] = a[i + amt];
          }
        }
      }
      return out;
    }
  }
  std::vector<Lit> cur = a;
  for (size_t s = 0; s < by.size() && (size_t{1} << s) < w; ++s) {
    const size_t dist = size_t{1} << s;
    std::vector<Lit> shifted(w, constLit(false));
    for (size_t i = 0; i < w; ++i) {
      if (left) {
        if (i >= dist) shifted[i] = cur[i - dist];
      } else {
        if (i + dist < w) shifted[i] = cur[i + dist];
      }
    }
    cur = vIte(by[s], shifted, cur);
  }
  std::vector<Lit> wval(by.size(), constLit(false));
  for (size_t i = 0; i < by.size() && i < 63; ++i)
    if ((w >> i) & 1) wval[i] = constLit(true);
  Lit tooBig = ~vUlt(by, wval, false);  // by >= w
  std::vector<Lit> zero(w, constLit(false));
  return vIte(tooBig, zero, cur);
}

Lit BitBlaster::vUlt(const std::vector<Lit>& a, const std::vector<Lit>& b,
                     bool orEqual) {
  // MSB-first lexicographic comparison.
  Lit result = orEqual ? constLit(true) : constLit(false);
  for (size_t i = 0; i < a.size(); ++i) {
    Lit ai = a[i], bi = b[i];
    // result' = (!ai && bi) || (ai == bi && result)
    result = gOr(gAnd(~ai, bi), gAnd(gIff(ai, bi), result));
  }
  return result;
}

Lit BitBlaster::vEq(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  Lit acc = constLit(true);
  for (size_t i = 0; i < a.size(); ++i) acc = gAnd(acc, gIff(a[i], b[i]));
  return acc;
}

// ---- Expression dispatch ----------------------------------------------------------

std::vector<Lit> BitBlaster::blastBv(Expr e) {
  auto it = bvMemo_.find(e.node());
  if (it != bvMemo_.end()) return it->second;
  require(e.sort().isBv(), "bitblast: expected a bit-vector term");
  const uint32_t w = e.sort().width();
  std::vector<Lit> out;

  switch (e.kind()) {
    case Kind::BvConst: {
      out.resize(w);
      for (uint32_t i = 0; i < w; ++i)
        out[i] = constLit((e.bvValue() >> i) & 1);
      break;
    }
    case Kind::Var: {
      out.resize(w);
      for (uint32_t i = 0; i < w; ++i) out[i] = fresh();
      vars_.push_back(e);
      break;
    }
    case Kind::Ite:
      out = vIte(blastBool(e.kid(0)), blastBv(e.kid(1)), blastBv(e.kid(2)));
      break;
    case Kind::BvNot: {
      out = blastBv(e.kid(0));
      for (Lit& l : out) l = ~l;
      break;
    }
    case Kind::BvNeg:
      out = vNeg(blastBv(e.kid(0)));
      break;
    case Kind::BvAdd:
      out = vAdd(blastBv(e.kid(0)), blastBv(e.kid(1)), constLit(false));
      break;
    case Kind::BvSub: {
      std::vector<Lit> binv = blastBv(e.kid(1));
      for (Lit& l : binv) l = ~l;
      out = vAdd(blastBv(e.kid(0)), binv, constLit(true));
      break;
    }
    case Kind::BvMul:
      out = vMul(blastBv(e.kid(0)), blastBv(e.kid(1)));
      break;
    case Kind::BvAnd:
    case Kind::BvOr:
    case Kind::BvXor: {
      std::vector<Lit> a = blastBv(e.kid(0));
      std::vector<Lit> b = blastBv(e.kid(1));
      out.resize(w);
      for (uint32_t i = 0; i < w; ++i)
        out[i] = e.kind() == Kind::BvAnd  ? gAnd(a[i], b[i])
                 : e.kind() == Kind::BvOr ? gOr(a[i], b[i])
                                          : gXor(a[i], b[i]);
      break;
    }
    case Kind::BvShl:
      out = vShift(blastBv(e.kid(0)), blastBv(e.kid(1)), /*left=*/true);
      break;
    case Kind::BvLShr:
      out = vShift(blastBv(e.kid(0)), blastBv(e.kid(1)), /*left=*/false);
      break;
    case Kind::BvConcat: {
      std::vector<Lit> lo = blastBv(e.kid(1));
      std::vector<Lit> hi = blastBv(e.kid(0));
      out = lo;
      out.insert(out.end(), hi.begin(), hi.end());
      break;
    }
    case Kind::BvExtract: {
      std::vector<Lit> x = blastBv(e.kid(0));
      out.assign(x.begin() + e.extractLo(), x.begin() + e.extractHi() + 1);
      break;
    }
    case Kind::BvZeroExt: {
      out = blastBv(e.kid(0));
      out.resize(w, constLit(false));
      break;
    }
    case Kind::BvSignExt: {
      out = blastBv(e.kid(0));
      Lit sign = out.back();
      out.resize(w, sign);
      break;
    }
    default:
      throw PugError(std::string("bitblast: unsupported bit-vector operator "
                                 "'") +
                     expr::kindName(e.kind()) +
                     "' (should have been lowered)");
  }
  require(out.size() == w, "bitblast: width mismatch");
  return bvMemo_.emplace(e.node(), std::move(out)).first->second;
}

Lit BitBlaster::blastBool(Expr e) {
  auto it = boolMemo_.find(e.node());
  if (it != boolMemo_.end()) return it->second;
  require(e.sort().isBool(), "bitblast: expected a Bool term");
  Lit out;
  switch (e.kind()) {
    case Kind::BoolConst:
      out = constLit(e.isTrue());
      break;
    case Kind::Var:
      out = fresh();
      vars_.push_back(e);
      break;
    case Kind::Not:
      out = ~blastBool(e.kid(0));
      break;
    case Kind::And:
      out = gAnd(blastBool(e.kid(0)), blastBool(e.kid(1)));
      break;
    case Kind::Or:
      out = gOr(blastBool(e.kid(0)), blastBool(e.kid(1)));
      break;
    case Kind::Xor:
      out = gXor(blastBool(e.kid(0)), blastBool(e.kid(1)));
      break;
    case Kind::Implies:
      out = gOr(~blastBool(e.kid(0)), blastBool(e.kid(1)));
      break;
    case Kind::Ite:
      out = gIte(blastBool(e.kid(0)), blastBool(e.kid(1)),
                 blastBool(e.kid(2)));
      break;
    case Kind::Eq:
      if (e.kid(0).sort().isBool())
        out = gIff(blastBool(e.kid(0)), blastBool(e.kid(1)));
      else
        out = vEq(blastBv(e.kid(0)), blastBv(e.kid(1)));
      break;
    case Kind::BvUlt:
      out = vUlt(blastBv(e.kid(0)), blastBv(e.kid(1)), false);
      break;
    case Kind::BvUle:
      out = vUlt(blastBv(e.kid(0)), blastBv(e.kid(1)), true);
      break;
    default:
      throw PugError(std::string("bitblast: unsupported Bool operator '") +
                     expr::kindName(e.kind()) +
                     "' (should have been lowered)");
  }
  return boolMemo_.emplace(e.node(), out).first->second;
}

void BitBlaster::assertTrue(Expr e) { sat_.addClause({blastBool(e)}); }

void BitBlaster::assertTrueUnderSelector(Expr e, Lit selector) {
  sat_.addClause({blastBool(e), ~selector});
}

Lit BitBlaster::boolLit(Expr e) { return blastBool(e); }

const std::vector<Lit>& BitBlaster::bits(Expr e) {
  (void)blastBv(e);
  return bvMemo_.at(e.node());
}

uint64_t BitBlaster::modelBv(Expr e) {
  const std::vector<Lit>& bs = bits(e);
  uint64_t v = 0;
  for (size_t i = 0; i < bs.size(); ++i) {
    const bool bit = sat_.modelValue(bs[i].var()) != bs[i].negated();
    if (bit) v |= uint64_t{1} << i;
  }
  return v;
}

bool BitBlaster::modelBool(Expr e) {
  Lit l = blastBool(e);
  return sat_.modelValue(l.var()) != l.negated();
}

}  // namespace pugpara::smt::mini
