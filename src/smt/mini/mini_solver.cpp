// MiniSMT: the from-scratch QF_ABV solver backend. Pipeline per check():
// quantifier screen -> array lowering (read-over-write + Ackermann) ->
// signed/division elimination -> Tseitin bit-blasting -> CDCL.
//
// Faithful to the paper's era in one deliberate way: quantified formulas
// are rejected with Unknown, which is exactly the solver limitation that
// motivates PUGpara's quantifier-elimination machinery (Sec. IV-D). The
// MonotoneQe frame mode produces quantifier-free VCs this backend can
// decide; NativeForall VCs it cannot.
#include <atomic>
#include <memory>

#include "expr/eval.h"
#include "expr/walk.h"
#include "smt/mini/array_lower.h"
#include "smt/mini/bitblast.h"
#include "smt/mini/preprocess.h"
#include "smt/solver.h"
#include "support/diagnostics.h"
#include "support/timer.h"

namespace pugpara::smt {

namespace {

using expr::Expr;
using mini::BitBlaster;
using mini::SatSolver;

bool containsQuantifier(Expr e) {
  bool found = false;
  expr::postOrder(e, [&found](Expr n) {
    if (n.kind() == expr::Kind::Forall || n.kind() == expr::Kind::Exists)
      found = true;
  });
  return found;
}

class MiniModel final : public Model {
 public:
  explicit MiniModel(expr::Env env) : env_(std::move(env)) {}

  [[nodiscard]] uint64_t evalBv(Expr e) const override {
    return expr::evalBv(e, env_);
  }
  [[nodiscard]] bool evalBool(Expr e) const override {
    return expr::evalBool(e, env_);
  }

 private:
  expr::Env env_;
};

class MiniSolver final : public Solver {
 public:
  void push() override { scopes_.push_back(assertions_.size()); }

  void pop() override {
    require(!scopes_.empty(), "MiniSolver::pop without push");
    assertions_.resize(scopes_.back());
    scopes_.pop_back();
  }

  void add(Expr assertion) override {
    require(assertion.sort().isBool(), "asserted expression must be Bool");
    assertions_.push_back(assertion);
  }

  CheckResult check() override {
    model_.reset();
    if (stopped_.load(std::memory_order_acquire)) return CheckResult::Unknown;
    if (assertions_.empty()) {
      model_ = std::make_unique<MiniModel>(expr::Env{});
      return CheckResult::Sat;
    }
    expr::Context& ctx = assertions_.front().ctx();

    for (Expr a : assertions_)
      if (containsQuantifier(a)) return CheckResult::Unknown;

    mini::ArrayLowering arrays;
    mini::Preprocessed pre;
    try {
      arrays = mini::lowerArrays(ctx, assertions_);
      std::vector<Expr> all = arrays.formulas;
      all.insert(all.end(), arrays.constraints.begin(),
                 arrays.constraints.end());
      pre = mini::preprocess(ctx, all);
    } catch (const PugError&) {
      return CheckResult::Unknown;  // outside the supported fragment
    }

    SatSolver sat;
    BitBlaster bb(sat);
    std::vector<Expr> final = pre.formulas;
    final.insert(final.end(), pre.constraints.begin(),
                 pre.constraints.end());
    try {
      for (Expr f : final) bb.assertTrue(f);
    } catch (const PugError&) {
      return CheckResult::Unknown;
    }

    WallTimer timer;
    const uint32_t budget = timeoutMs_;
    sat.setInterrupt([this, &timer, budget]() {
      if (stopped_.load(std::memory_order_acquire)) return false;
      return budget == 0 || timer.millis() < budget;
    });

    switch (sat.solve()) {
      case mini::SatResult::Unsat:
        return CheckResult::Unsat;
      case mini::SatResult::Aborted:
        return CheckResult::Unknown;
      case mini::SatResult::Sat:
        break;
    }

    // Build the model environment: scalar variables from their bits, array
    // variables from the Ackermann reads.
    expr::Env env;
    std::unordered_map<const expr::Node*, expr::ArrayValue> arrayVals;
    for (Expr f : final) {
      for (Expr v : expr::freeVars(f)) {
        if (v.sort().isBool()) {
          env.bindBool(v, bb.modelBool(v));
        } else if (v.sort().isBv()) {
          env.bindBv(v, bb.modelBv(v));
        }
      }
    }
    for (const mini::AckermannRead& rd : arrays.reads) {
      // The recorded index is select-free and its scalar leaves are bound
      // above, so the concrete evaluator computes it directly.
      const uint64_t idx = expr::evalBv(rd.index, env);
      const uint64_t val = expr::evalBv(rd.value, env);
      arrayVals[rd.array.node()].set(idx, val);
    }
    (void)ctx;
    for (auto& [node, av] : arrayVals)
      env.bind(Expr(node), expr::Value::ofArray(std::move(av)));

    model_ = std::make_unique<MiniModel>(std::move(env));
    return CheckResult::Sat;
  }

  [[nodiscard]] std::unique_ptr<Model> model() override {
    require(model_ != nullptr, "MiniSolver::model: last check was not sat");
    return std::move(model_);
  }

  void setTimeoutMs(uint32_t ms) override { timeoutMs_ = ms; }

  void requestStop() override {
    stopped_.store(true, std::memory_order_release);
  }

  [[nodiscard]] std::string name() const override { return "minismt"; }

 private:
  std::vector<Expr> assertions_;
  std::vector<size_t> scopes_;
  std::atomic<bool> stopped_{false};
  uint32_t timeoutMs_ = 0;
  std::unique_ptr<MiniModel> model_;
};

}  // namespace

std::unique_ptr<Solver> makeMiniSolver() {
  return std::make_unique<MiniSolver>();
}

}  // namespace pugpara::smt
