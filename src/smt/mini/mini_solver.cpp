// MiniSMT: the from-scratch QF_ABV solver backend. Pipeline per assertion:
// quantifier screen -> array lowering (read-over-write + Ackermann) ->
// signed/division elimination -> word-level rewriting -> Tseitin
// bit-blasting -> CDCL.
//
// The backend is incremental in the MiniSat style. One SatSolver, one
// BitBlaster and one lowering pipeline live for the lifetime of the
// MiniSolver, so a DAG node is lowered and bit-blasted exactly once no
// matter how many check() calls see it, and learnt clauses / variable
// activities carry over between queries. Retraction works through scope
// selector literals: an assertion added at push depth d > 0 lands as the
// clause `root ∨ ¬a_d`, the per-check solve assumes every live scope's
// a_d, and pop() retires the scope by adding the permanent unit `¬a_d`
// (which also silently disables every learnt clause derived from the
// scope, since resolution drags ¬a_d along). Tseitin gate clauses,
// Ackermann consistency axioms and division definitions are definitional
// or theory-valid, so they stay asserted permanently — sound across pops.
//
// Raw-speed techniques (all toggleable through MiniTuning):
//  * the SAT core's LBD clause management, chronological backtracking and
//    root-level inprocessing (sat_solver.cpp);
//  * a structural word-level rewriter applied before bit-blasting
//    (rewrite.cpp) — every rule is a semantic equality, so it is sound
//    for assertions and assumptions alike;
//  * an in-process seed portfolio: N-1 SatSolver clones mirror the
//    primary's CNF (newVar/addClause/setFrozen fan out at encode time)
//    and race the primary on each query under diverse restart/branching/
//    phase seeds, exchanging low-LBD learnt clauses through a shared
//    pool. Only SAT solvers are cloned — expr::Context and the lowering
//    pipeline are single-threaded and stay on the caller's thread.
//
// Inprocessing may eliminate variables, so everything the outside world
// can still name is frozen: blasted input-variable bits and the constant
// true literal (BitBlaster::freezeInterface), scope selectors (frozen at
// creation), and assumption root literals (frozen inside solve() for the
// duration of inprocessing; eliminated assumption variables are restored
// at solve entry).
//
// Faithful to the paper's era in one deliberate way: quantified formulas
// are rejected with Unknown, which is exactly the solver limitation that
// motivates PUGpara's quantifier-elimination machinery (Sec. IV-D). The
// MonotoneQe frame mode produces quantifier-free VCs this backend can
// decide; NativeForall VCs it cannot.
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

#include "expr/eval.h"
#include "expr/walk.h"
#include "smt/mini/array_lower.h"
#include "smt/mini/bitblast.h"
#include "smt/mini/preprocess.h"
#include "smt/mini/rewrite.h"
#include "smt/mini/share.h"
#include "smt/mini/stats.h"
#include "smt/solver.h"
#include "support/diagnostics.h"
#include "support/timer.h"

namespace pugpara::smt {

namespace {

using expr::Expr;
using mini::BitBlaster;
using mini::Lit;
using mini::SatSolver;

bool containsQuantifier(Expr e) {
  bool found = false;
  expr::postOrder(e, [&found](Expr n) {
    if (n.kind() == expr::Kind::Forall || n.kind() == expr::Kind::Exists)
      found = true;
  });
  return found;
}

/// Per-participant SAT configuration: participant 0 is the primary with
/// the vanilla configuration, clones get diverse restart cadences, phase
/// polarities and random-decision rates so the race explores different
/// parts of the search tree. The technique toggles apply uniformly.
mini::SatConfig satConfigFor(const MiniTuning& t, unsigned i) {
  mini::SatConfig c;
  c.lbdReduce = t.lbd;
  c.chrono = t.chrono;
  c.inprocess = t.inprocess;
  c.seed = t.seed + i;
  switch (i == 0 ? 0u : 1u + (i - 1) % 4) {
    case 0:  // primary: defaults
      break;
    case 1:  // opposite phase, slower restarts
      c.initialPhase = true;
      c.restartBase = 128;
      break;
    case 2:  // jittery: fast restarts plus random decisions
      c.randomFreq = 0.02;
      c.restartBase = 32;
      break;
    case 3:  // deep runs, opposite phase, eager chronological backtracking
      c.initialPhase = true;
      c.randomFreq = 0.01;
      c.restartBase = 256;
      c.chronoDistance = 16;
      break;
    case 4:  // heavy diversification for wide portfolios
      c.randomFreq = 0.05;
      c.restartBase = 1024;
      break;
  }
  return c;
}

class MiniModel final : public Model {
 public:
  explicit MiniModel(expr::Env env) : env_(std::move(env)) {}

  [[nodiscard]] uint64_t evalBv(Expr e) const override {
    return expr::evalBv(e, env_);
  }
  [[nodiscard]] bool evalBool(Expr e) const override {
    return expr::evalBool(e, env_);
  }

 private:
  expr::Env env_;
};

class MiniSolver final : public Solver {
 public:
  MiniSolver() = default;
  explicit MiniSolver(const MiniTuning& tuning) : tuning_(tuning) {}

  ~MiniSolver() override { flushStats(); }

  void push() override {
    scopes_.push_back({assertions_.size(), Lit(), false});
  }

  void pop() override {
    require(!scopes_.empty(), "MiniSolver::pop without push");
    const Scope s = scopes_.back();
    scopes_.pop_back();
    assertions_.resize(s.numAssertions);
    assertionDepth_.resize(s.numAssertions);
    if (encoded_ > s.numAssertions) encoded_ = s.numAssertions;
    // Retire the scope's clauses for good: every clause it owns carries
    // ¬selector, so this unit satisfies (deactivates) all of them, learnt
    // descendants included.
    if (s.hasSelector && eng_) eng_->sat.addClause({~s.selector});
  }

  void add(Expr assertion) override {
    require(assertion.sort().isBool(), "asserted expression must be Bool");
    assertions_.push_back(assertion);
    assertionDepth_.push_back(static_cast<uint32_t>(scopes_.size()));
  }

  CheckResult check() override { return checkAssuming({}); }

  CheckResult checkAssuming(std::span<const expr::Expr> assumptions) override {
    model_.reset();
    if (stopped_.load(std::memory_order_acquire)) return CheckResult::Unknown;
    for (Expr a : assertions_)
      if (hasQuantifier(a)) return CheckResult::Unknown;
    for (Expr a : assumptions) {
      require(a.sort().isBool(), "assumption must be Bool");
      if (hasQuantifier(a)) return CheckResult::Unknown;
    }

    if (eng_ == nullptr) {
      if (assertions_.empty() && assumptions.empty()) {
        model_ = std::make_unique<MiniModel>(expr::Env{});
        return CheckResult::Sat;
      }
      expr::Context& ctx = assertions_.empty() ? assumptions.front().ctx()
                                               : assertions_.front().ctx();
      eng_ = std::make_unique<Engine>(ctx, tuning_);
    }

    std::vector<Lit> assume;
    try {
      encodePending();
      eng_->arrays.beginQuery();
      for (const Scope& s : scopes_)
        if (s.hasSelector) assume.push_back(s.selector);
      for (Expr a : assumptions) assume.push_back(assumptionLit(a));
      // Everything blasted so far is now part of the external interface;
      // exempt it from variable elimination (idempotent, cheap).
      eng_->bb.freezeInterface();
    } catch (const PugError&) {
      return CheckResult::Unknown;  // outside the supported fragment
    }

    WallTimer timer;
    const uint32_t budget = timeoutMs_;
    mini::SatResult r;
    if (!eng_->clones.empty()) {
      r = raceSolve(assume, timer, budget);
    } else {
      eng_->sat.setInterrupt([this, &timer, budget]() {
        if (stopped_.load(std::memory_order_acquire)) return false;
        return budget == 0 || timer.millis() < budget;
      });
      r = eng_->sat.solve(assume);
      eng_->sat.setInterrupt({});  // the timer dies with this frame
    }

    switch (r) {
      case mini::SatResult::Unsat:
        return CheckResult::Unsat;
      case mini::SatResult::Aborted:
        return CheckResult::Unknown;
      case mini::SatResult::Sat:
        break;
    }

    // Build the model environment: every blasted scalar variable from its
    // bits, array variables from the Ackermann reads. Only reads live for
    // this query (permanent ones plus this query's assumption reads)
    // contribute cells — dead queries' reads carry no axioms against the
    // live set, so their values could contradict the cells this query
    // pins down.
    expr::Env env;
    for (Expr v : eng_->bb.blastedVars()) {
      if (v.sort().isBool()) {
        env.bindBool(v, eng_->bb.modelBool(v));
      } else {
        env.bindBv(v, eng_->bb.modelBv(v));
      }
    }
    std::unordered_map<const expr::Node*, expr::ArrayValue> arrayVals;
    const std::vector<mini::AckermannRead>& reads = eng_->arrays.reads();
    for (size_t i = 0; i < reads.size(); ++i) {
      if (!eng_->arrays.readActive(i)) continue;
      const mini::AckermannRead& rd = reads[i];
      // The recorded index is select-free and its scalar leaves are bound
      // above, so the concrete evaluator computes it directly.
      const uint64_t idx = expr::evalBv(rd.index, env);
      const uint64_t val = expr::evalBv(rd.value, env);
      arrayVals[rd.array.node()].set(idx, val);
    }
    for (auto& [node, av] : arrayVals)
      env.bind(Expr(node), expr::Value::ofArray(std::move(av)));

    model_ = std::make_unique<MiniModel>(std::move(env));
    return CheckResult::Sat;
  }

  [[nodiscard]] std::unique_ptr<Model> model() override {
    require(model_ != nullptr, "MiniSolver::model: last check was not sat");
    return std::move(model_);
  }

  void setTimeoutMs(uint32_t ms) override { timeoutMs_ = ms; }

  void requestStop() override {
    stopped_.store(true, std::memory_order_release);
  }

  [[nodiscard]] std::string name() const override { return "minismt"; }

 private:
  struct Scope {
    size_t numAssertions;
    Lit selector;  // created lazily when the scope's first clause lands
    bool hasSelector;
  };

  // The persistent solving state; created at the first non-trivial check
  // (lowering needs the expression context, which assertions carry).
  struct Engine {
    SatSolver sat;
    BitBlaster bb{sat};
    mini::ArrayLowerer arrays;
    mini::Preprocessor pre;
    mini::Rewriter rw;
    // Seed portfolio: clones_ mirror the primary's CNF and race it on
    // every query; the exchange carries low-LBD learnts between all
    // participants (primary is participant 0).
    std::vector<std::unique_ptr<SatSolver>> clones;
    std::unique_ptr<mini::ClauseExchange> exchange;

    Engine(expr::Context& ctx, const MiniTuning& t)
        : sat(satConfigFor(t, 0)), arrays(ctx), pre(ctx), rw(ctx) {
      const unsigned n = t.portfolio;
      if (n <= 1) return;
      exchange = std::make_unique<mini::ClauseExchange>(n);
      for (unsigned i = 1; i < n; ++i)
        clones.push_back(std::make_unique<SatSolver>(satConfigFor(t, i)));
      for (auto& c : clones) sat.addClone(c.get());
      mini::ClauseExchange* ex = exchange.get();
      auto wire = [ex](SatSolver& s, size_t idx) {
        s.setClauseExport(
            [ex, idx](const std::vector<Lit>& lits, uint32_t /*lbd*/) {
              ex->publish(idx, lits);
            });
        s.setClauseImport(
            [ex, idx](std::vector<Lit>& out) { return ex->pull(idx, out); });
      };
      wire(sat, 0);
      for (size_t i = 0; i < clones.size(); ++i) wire(*clones[i], i + 1);
    }
  };

  bool hasQuantifier(Expr e) {
    auto [it, inserted] = quantMemo_.try_emplace(e.node(), false);
    if (inserted) it->second = containsQuantifier(e);
    return it->second;
  }

  Expr wordRewrite(Expr e) {
    return tuning_.rewrite ? eng_->rw.rewrite(e) : e;
  }

  /// Lowers one formula through the pipeline. Side constraints (Ackermann
  /// axioms, division definitions) produced along the way are asserted
  /// permanently — they are valid in every model, so they survive pops.
  Expr lowerFormula(Expr e) {
    std::vector<Expr> axioms;
    Expr f = eng_->arrays.lower(e, axioms);
    std::vector<Expr> side;
    Expr g = eng_->pre.rewrite(f, side);
    for (Expr ax : axioms) side.push_back(eng_->pre.rewrite(ax, side));
    for (Expr c : side) eng_->bb.assertTrue(wordRewrite(c));
    return wordRewrite(g);
  }

  /// Encodes assertions added since the last check. On PugError the
  /// high-water mark stays at the failing assertion: this check reports
  /// Unknown, and once a pop() removes the offender the remainder encodes
  /// normally (partially emitted gate clauses are definitional, so an
  /// aborted encode leaves no trace in the solution space).
  void encodePending() {
    for (; encoded_ < assertions_.size(); ++encoded_) {
      Expr g = lowerFormula(assertions_[encoded_]);
      const uint32_t depth = assertionDepth_[encoded_];
      if (depth == 0) {
        eng_->bb.assertTrue(g);
      } else {
        Scope& s = scopes_[depth - 1];
        if (!s.hasSelector) {
          s.selector = Lit(eng_->sat.newVar(), false);
          // The selector is assumed on every future query and its negation
          // is added at pop — never let elimination touch it.
          eng_->sat.setFrozen(s.selector.var());
          s.hasSelector = true;
        }
        eng_->bb.assertTrueUnderSelector(g, s.selector);
      }
    }
  }

  /// The root literal standing for an assumption formula. Lowered through
  /// the transient path EVERY call (the pipeline's internal memos make a
  /// repeat nearly free) so the array lowerer re-registers the reads the
  /// assumption references as live for this query and emits any pairing
  /// axioms the new combination of live reads needs.
  Lit assumptionLit(Expr a) {
    std::vector<Expr> axioms;
    Expr f = eng_->arrays.lowerTransient(a, axioms);
    std::vector<Expr> side;
    Expr g = eng_->pre.rewrite(f, side);
    for (Expr ax : axioms) side.push_back(eng_->pre.rewrite(ax, side));
    for (Expr c : side) eng_->bb.assertTrue(wordRewrite(c));
    return eng_->bb.boolLit(wordRewrite(g));
  }

  /// Runs the primary and all clones on the same assumptions, first
  /// decisive answer wins. The primary occupies the caller's thread.
  /// Soundness: all participants decide the same CNF ∧ assumptions, so
  /// Sat/Unsat answers can never disagree; the losers are interrupted and
  /// report Aborted, which is discarded. On a clone Sat, the primary
  /// adopts the winner's full model (extended over its eliminated
  /// variables by the clone itself before it returned).
  mini::SatResult raceSolve(const std::vector<Lit>& assume, WallTimer& timer,
                            uint32_t budget) {
    auto& clones = eng_->clones;
    const size_t n = clones.size() + 1;
    std::vector<mini::SatResult> results(n, mini::SatResult::Aborted);
    std::atomic<bool> raceDone{false};
    std::atomic<int> winner{-1};

    auto keepGoing = [this, &timer, budget, &raceDone]() {
      if (raceDone.load(std::memory_order_acquire)) return false;
      if (stopped_.load(std::memory_order_acquire)) return false;
      return budget == 0 || timer.millis() < budget;
    };
    eng_->sat.setInterrupt(keepGoing);
    for (auto& c : clones) c->setInterrupt(keepGoing);

    auto finish = [&](size_t idx, mini::SatResult r) {
      results[idx] = r;
      if (r != mini::SatResult::Aborted) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, static_cast<int>(idx)))
          raceDone.store(true, std::memory_order_release);
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(clones.size());
    for (size_t i = 0; i < clones.size(); ++i)
      threads.emplace_back(
          [&, i]() { finish(i + 1, clones[i]->solve(assume)); });
    finish(0, eng_->sat.solve(assume));
    for (std::thread& th : threads) th.join();

    // Clear the interrupts: they capture this stack frame.
    eng_->sat.setInterrupt({});
    for (auto& c : clones) c->setInterrupt({});

    auto& g = mini::miniGlobalStats();
    g.portfolioRaces.fetch_add(1, std::memory_order_relaxed);
    const int w = winner.load(std::memory_order_acquire);
    if (w < 0) return mini::SatResult::Aborted;  // timeout / stop everywhere
    const SatSolver& ws = w == 0 ? eng_->sat : *clones[w - 1];
    g.winnerSeed.store(ws.config().seed, std::memory_order_relaxed);
    if (results[w] == mini::SatResult::Sat && w != 0)
      eng_->sat.adoptModelFrom(*clones[w - 1]);
    return results[static_cast<size_t>(w)];
  }

  /// Folds this solver's lifetime counters (primary, clones, rewriter)
  /// into the process-wide MiniSMT statistics.
  void flushStats() {
    if (eng_ == nullptr) return;
    auto& g = mini::miniGlobalStats();
    auto acc = [&g](const SatSolver::Stats& s) {
      g.conflicts += s.conflicts;
      g.decisions += s.decisions;
      g.propagations += s.propagations;
      g.restarts += s.restarts;
      g.learnts += s.learnts;
      g.lbdGlue += s.lbdGlue;
      g.lbdMid += s.lbdMid;
      g.lbdLarge += s.lbdLarge;
      g.learntsDeleted += s.learntsDeleted;
      g.chronoBacktracks += s.chronoBacktracks;
      g.inprocessRuns += s.inprocessRuns;
      g.subsumed += s.subsumed;
      g.strengthened += s.strengthened;
      g.eliminatedVars += s.eliminatedVars;
      g.restoredVars += s.restoredVars;
      g.exportedClauses += s.exportedClauses;
      g.importedClauses += s.importedClauses;
    };
    acc(eng_->sat.stats());
    for (const auto& c : eng_->clones) acc(c->stats());
    g.rewrites += eng_->rw.rewritesApplied();
  }

  MiniTuning tuning_;
  std::vector<Expr> assertions_;
  std::vector<uint32_t> assertionDepth_;  // scope depth at add() time
  std::vector<Scope> scopes_;
  size_t encoded_ = 0;  // assertions_[0, encoded_) are in the CNF
  std::unique_ptr<Engine> eng_;
  std::unordered_map<const expr::Node*, bool> quantMemo_;
  std::atomic<bool> stopped_{false};
  uint32_t timeoutMs_ = 0;
  std::unique_ptr<MiniModel> model_;
};

}  // namespace

std::unique_ptr<Solver> makeMiniSolver() {
  return std::make_unique<MiniSolver>();
}

std::unique_ptr<Solver> makeMiniSolver(const MiniTuning& tuning) {
  return std::make_unique<MiniSolver>(tuning);
}

}  // namespace pugpara::smt
