// Tseitin bit-blasting of quantifier-free, array-free, unsigned-only
// bit-vector formulas into CNF. Signed operations, division and arrays are
// eliminated beforehand (see preprocess.h / array_lower.h).
#pragma once

#include <unordered_map>
#include <vector>

#include "expr/expr.h"
#include "smt/mini/sat_solver.h"

namespace pugpara::smt::mini {

class BitBlaster {
 public:
  explicit BitBlaster(SatSolver& sat) : sat_(sat) {}

  /// Asserts a Bool-sorted expression at the top level.
  void assertTrue(expr::Expr e);

  /// Asserts a Bool-sorted expression guarded by a selector literal: the
  /// CNF clause is `root ∨ ¬selector`, so the assertion is active only
  /// while `selector` is assumed and can be retracted permanently by
  /// adding the unit `¬selector`. The Tseitin gate clauses defining `root`
  /// are unguarded — they are definitional and satisfiable in every model.
  void assertTrueUnderSelector(expr::Expr e, Lit selector);

  /// The literal of a Bool expression / the bit vector (LSB first) of a
  /// bit-vector expression — used for model extraction.
  [[nodiscard]] Lit boolLit(expr::Expr e);
  [[nodiscard]] const std::vector<Lit>& bits(expr::Expr e);

  /// Every variable expression ever assigned SAT bits, in first-blasted
  /// order — the support over which a model environment is built.
  [[nodiscard]] const std::vector<expr::Expr>& blastedVars() const {
    return vars_;
  }

  /// Value of a blasted expression under the SAT model.
  [[nodiscard]] uint64_t modelBv(expr::Expr e);
  [[nodiscard]] bool modelBool(expr::Expr e);

  /// Marks every variable the outside world can still name — the constant
  /// true literal and all bits of blasted input variables — as frozen in
  /// the SAT solver, exempting them from variable elimination. Called after
  /// each encoding batch; idempotent.
  void freezeInterface();

 private:
  Lit fresh() { return Lit(sat_.newVar(), false); }
  Lit constLit(bool b);
  /// True iff `l` is the constant-true/false literal; sets `out` to its value.
  [[nodiscard]] bool litConst(Lit l, bool& out) const;

  // Gate constructors (with constant folding and structural sharing at the
  // Expr layer already done, these stay simple Tseitin encodings).
  Lit gAnd(Lit a, Lit b);
  Lit gOr(Lit a, Lit b);
  Lit gXor(Lit a, Lit b);
  Lit gIff(Lit a, Lit b) { return ~gXor(a, b); }
  Lit gIte(Lit c, Lit t, Lit e);
  Lit gAndMany(const std::vector<Lit>& ls);

  // Vector circuits.
  std::vector<Lit> vAdd(const std::vector<Lit>& a, const std::vector<Lit>& b,
                        Lit carryIn);
  std::vector<Lit> vNeg(const std::vector<Lit>& a);
  std::vector<Lit> vMul(const std::vector<Lit>& a, const std::vector<Lit>& b);
  std::vector<Lit> vIte(Lit c, const std::vector<Lit>& t,
                        const std::vector<Lit>& e);
  std::vector<Lit> vShift(const std::vector<Lit>& a,
                          const std::vector<Lit>& by, bool left);
  Lit vUlt(const std::vector<Lit>& a, const std::vector<Lit>& b,
           bool orEqual);
  Lit vEq(const std::vector<Lit>& a, const std::vector<Lit>& b);

  std::vector<Lit> blastBv(expr::Expr e);
  Lit blastBool(expr::Expr e);

  SatSolver& sat_;
  Lit true_;  // lazily created constant-true literal
  bool haveTrue_ = false;
  std::unordered_map<const expr::Node*, Lit> boolMemo_;
  std::unordered_map<const expr::Node*, std::vector<Lit>> bvMemo_;
  std::vector<expr::Expr> vars_;  // blasted Var expressions
};

}  // namespace pugpara::smt::mini
