#include "smt/mini/sat_solver.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"

namespace pugpara::smt::mini {

// ---- Variable order: indexed binary max-heap on activity --------------------
// Kept inside the .cpp: the header exposes only order_/heapPos_ storage.

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescale = 1e100;
}  // namespace

Var SatSolver::newVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  savedPhase_.push_back(false);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heapPos_.push_back(static_cast<uint32_t>(order_.size()));
  order_.push_back(v);
  // Sift up is unnecessary (activity 0 <= everything).
  return v;
}

// heap helpers ---------------------------------------------------------------

namespace {
inline size_t heapLeft(size_t i) { return 2 * i + 1; }
inline size_t heapParent(size_t i) { return (i - 1) / 2; }
}  // namespace

void SatSolver::heapSiftUp(Var v) {
  uint32_t pos = heapPos_[v];
  if (pos == UINT32_MAX) return;
  while (pos > 0) {
    size_t parent = heapParent(pos);
    if (activity_[order_[parent]] >= activity_[v]) break;
    order_[pos] = order_[parent];
    heapPos_[order_[pos]] = pos;
    pos = static_cast<uint32_t>(parent);
  }
  order_[pos] = v;
  heapPos_[v] = pos;
}

void SatSolver::bumpVar(Var v) {
  activity_[v] += varInc_;
  if (activity_[v] > kRescale) {
    for (double& a : activity_) a /= kRescale;
    varInc_ /= kRescale;
  }
  heapSiftUp(v);
}

Lit SatSolver::pickBranch() {
  while (!order_.empty()) {
    Var v = order_.front();
    // Pop max.
    Var last = order_.back();
    order_.pop_back();
    heapPos_[v] = UINT32_MAX;
    if (!order_.empty()) {
      // Sift `last` down from the root.
      size_t pos = 0;
      for (;;) {
        size_t child = heapLeft(pos);
        if (child >= order_.size()) break;
        if (child + 1 < order_.size() &&
            activity_[order_[child + 1]] > activity_[order_[child]])
          ++child;
        if (activity_[order_[child]] <= activity_[last]) break;
        order_[pos] = order_[child];
        heapPos_[order_[pos]] = static_cast<uint32_t>(pos);
        pos = child;
      }
      order_[pos] = last;
      heapPos_[last] = static_cast<uint32_t>(pos);
    }
    if (!assigned(v)) return Lit(v, !savedPhase_[v]);
  }
  return Lit();  // undefined: everything assigned
}

// clause management -----------------------------------------------------------

bool SatSolver::addClause(std::vector<Lit> lits) {
  if (unsatAtTopLevel_) return false;
  require(trailLim_.empty(), "SatSolver::addClause during solve");
  // Normalize: sort, dedupe, drop tautologies.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i].var() == lits[i + 1].var()) return true;  // l ∨ ¬l
  // Simplify against the top level: between solve() calls every assignment
  // is a permanent (level-0) consequence, so satisfied clauses vanish and
  // falsified literals drop — which also keeps the watch invariant intact
  // for clauses added to an incrementally solved instance.
  size_t keep = 0;
  for (const Lit l : lits) {
    const LBool v = value(l);
    if (v == LBool::True) return true;
    if (v == LBool::Undef) lits[keep++] = l;
  }
  lits.resize(keep);
  if (lits.empty()) {
    unsatAtTopLevel_ = true;
    return false;
  }
  if (lits.size() == 1) {
    units_.push_back(lits[0]);
    return true;
  }
  Clause c;
  c.lits = std::move(lits);
  clauses_.push_back(std::move(c));
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void SatSolver::attach(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  watches_[(~c.lits[0]).code()].push_back({cr, c.lits[1]});
  watches_[(~c.lits[1]).code()].push_back({cr, c.lits[0]});
}

// trail / propagation -----------------------------------------------------------

void SatSolver::enqueue(Lit l, ClauseRef reason) {
  assigns_[l.var()] = l.negated() ? LBool::False : LBool::True;
  savedPhase_[l.var()] = !l.negated();
  level_[l.var()] = static_cast<int>(trailLim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.code()];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Ensure c.lits[1] is the falsified watch (~p).
      if (c.lits[0] == ~p) std::swap(c.lits[0], c.lits[1]);
      if (value(c.lits[0]) == LBool::True) {
        ws[keep++] = {w.clause, c.lits[0]};
        continue;
      }
      // Find a replacement watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back({w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      ws[keep++] = w;
      if (value(c.lits[0]) == LBool::False) {
        // Conflict: keep the remaining watchers and report.
        for (size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(c.lits[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void SatSolver::backtrack(int targetLevel) {
  if (static_cast<int>(trailLim_.size()) <= targetLevel) return;
  const size_t bound = trailLim_[targetLevel];
  for (size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    assigns_[v] = LBool::Undef;
    reason_[v] = kNoReason;
    if (heapPos_[v] == UINT32_MAX) {
      heapPos_[v] = static_cast<uint32_t>(order_.size());
      order_.push_back(v);
      heapSiftUp(v);
    }
  }
  trail_.resize(bound);
  trailLim_.resize(targetLevel);
  qhead_ = trail_.size();
}

// conflict analysis ---------------------------------------------------------------

void SatSolver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                        int& backLevel) {
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  int counter = 0;
  Lit p;
  bool first = true;
  size_t index = trail_.size();
  const int curLevel = static_cast<int>(trailLim_.size());

  ClauseRef cr = conflict;
  do {
    Clause& c = clauses_[cr];
    if (c.learnt) bumpClause(c);
    for (size_t i = first ? 0 : 1; i < c.lits.size(); ++i) {
      const Lit q = c.lits[i];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      seen_[q.var()] = 1;
      bumpVar(q.var());
      if (level_[q.var()] >= curLevel) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Next literal on the trail to resolve on.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    seen_[p.var()] = 0;
    cr = reason_[p.var()];
    first = false;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Cheap self-subsumption minimization: drop literals whose reason clause
  // is entirely covered by the learnt set.
  auto redundant = [&](Lit l) {
    const ClauseRef r = reason_[l.var()];
    if (r == kNoReason) return false;
    const Clause& rc = clauses_[r];
    for (size_t i = 1; i < rc.lits.size(); ++i) {
      const Lit q = rc.lits[i];
      if (!seen_[q.var()] && level_[q.var()] != 0) return false;
    }
    return true;
  };
  // The seen_ marks must stay valid while redundant() runs and must ALL be
  // cleared afterwards — including those of dropped literals, which the
  // in-place compaction overwrites.
  const std::vector<Lit> original(learnt.begin() + 1, learnt.end());
  size_t keep = 1;
  for (size_t i = 1; i < learnt.size(); ++i)
    if (!redundant(learnt[i])) learnt[keep++] = learnt[i];
  for (const Lit l : original) seen_[l.var()] = 0;
  learnt.resize(keep);

  // Backjump level: highest level among the non-asserting literals.
  backLevel = 0;
  for (size_t i = 1; i < learnt.size(); ++i) {
    backLevel = std::max(backLevel, level_[learnt[i].var()]);
    if (level_[learnt[i].var()] == backLevel) std::swap(learnt[1], learnt[i]);
  }
}

void SatSolver::bumpClause(Clause& c) {
  c.activity += clauseInc_;
  if (c.activity > kRescale) {
    for (Clause& cl : clauses_)
      if (cl.learnt) cl.activity /= kRescale;
    clauseInc_ /= kRescale;
  }
}

void SatSolver::decayActivities() {
  varInc_ /= kVarDecay;
  clauseInc_ /= kClauseDecay;
}

void SatSolver::reduceLearnts() {
  // Drop the less active half of the learnt clauses that are not reasons.
  std::vector<ClauseRef> learnts;
  for (ClauseRef i = 0; i < clauses_.size(); ++i)
    if (clauses_[i].learnt) learnts.push_back(i);
  if (learnts.size() < 64) return;
  std::sort(learnts.begin(), learnts.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  std::vector<bool> isReason(clauses_.size(), false);
  for (const Lit l : trail_)
    if (reason_[l.var()] != kNoReason) isReason[reason_[l.var()]] = true;

  std::vector<bool> drop(clauses_.size(), false);
  for (size_t i = 0; i < learnts.size() / 2; ++i)
    if (!isReason[learnts[i]] && clauses_[learnts[i]].lits.size() > 2)
      drop[learnts[i]] = true;

  // Rebuild watches without the dropped clauses. Clause refs must stay
  // stable (reasons point into clauses_), so we only clear bodies.
  for (auto& ws : watches_) {
    size_t keep = 0;
    for (const Watcher& w : ws)
      if (!drop[w.clause]) ws[keep++] = w;
    ws.resize(keep);
  }
  for (ClauseRef i = 0; i < clauses_.size(); ++i)
    if (drop[i]) clauses_[i].lits.clear(), clauses_[i].learnt = false;
}

uint64_t SatSolver::luby(uint64_t i) {
  // Knuth's formula for the Luby sequence.
  uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

SatResult SatSolver::solve(std::span<const Lit> assumptions) {
  if (unsatAtTopLevel_) return SatResult::Unsat;
  backtrack(0);
  // Top-level units added since the last call.
  for (const Lit u : units_) {
    if (value(u) == LBool::False) {
      unsatAtTopLevel_ = true;
      return SatResult::Unsat;
    }
    if (value(u) == LBool::Undef) enqueue(u, kNoReason);
  }
  units_.clear();
  if (propagate() != kNoReason) {
    unsatAtTopLevel_ = true;
    return SatResult::Unsat;
  }

  std::vector<Lit> learnt;
  uint64_t restartBase = 64;
  uint64_t conflictsAtRestart = 0;
  uint64_t restartBudget = restartBase * luby(stats_.restarts);
  uint64_t reduceBudget = stats_.learnts + 2000;
  const uint64_t conflictsAtEntry = stats_.conflicts;

  // `done` backtracks to the top level on every exit so the solver is ready
  // for more clauses / another solve; a Sat model is snapshotted first.
  const auto done = [this](SatResult r) {
    if (r == SatResult::Sat) model_.assign(assigns_.begin(), assigns_.end());
    backtrack(0);
    return r;
  };

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflictsAtRestart;
      if (trailLim_.empty()) {
        unsatAtTopLevel_ = true;
        return done(SatResult::Unsat);
      }
      int backLevel = 0;
      analyze(conflict, learnt, backLevel);
      backtrack(backLevel);
      if (learnt.size() == 1) {
        if (!trailLim_.empty()) backtrack(0);
        if (value(learnt[0]) == LBool::False) {
          unsatAtTopLevel_ = true;
          return done(SatResult::Unsat);
        }
        if (value(learnt[0]) == LBool::Undef) enqueue(learnt[0], kNoReason);
      } else {
        Clause c;
        c.lits = learnt;
        c.learnt = true;
        clauses_.push_back(std::move(c));
        const auto cr = static_cast<ClauseRef>(clauses_.size() - 1);
        attach(cr);
        bumpClause(clauses_[cr]);
        ++stats_.learnts;
        enqueue(learnt[0], cr);
      }
      decayActivities();

      if (conflictBudget_ != 0 &&
          stats_.conflicts - conflictsAtEntry >= conflictBudget_)
        return done(SatResult::Aborted);
      if ((stats_.conflicts & 2047) == 0 && keepGoing_ && !keepGoing_())
        return done(SatResult::Aborted);
      if (stats_.learnts > reduceBudget) {
        reduceLearnts();
        reduceBudget += reduceBudget / 2;
      }
      if (conflictsAtRestart >= restartBudget) {
        ++stats_.restarts;
        conflictsAtRestart = 0;
        restartBudget = restartBase * luby(stats_.restarts);
        backtrack(0);
      }
    } else {
      // Re-establish the assumptions as pseudo-decisions at the root
      // decision levels (restarts and backjumps may have undone them).
      Lit next = Lit();
      while (trailLim_.size() < assumptions.size()) {
        const Lit p = assumptions[trailLim_.size()];
        if (value(p) == LBool::True) {
          trailLim_.push_back(trail_.size());  // satisfied: dummy level
        } else if (value(p) == LBool::False) {
          // An earlier assumption (or the clause set) implies ¬p: unsat
          // under these assumptions, but the clause set itself lives on.
          return done(SatResult::Unsat);
        } else {
          next = p;
          break;
        }
      }
      if (next == Lit()) {
        next = pickBranch();
        if (next == Lit()) return done(SatResult::Sat);
      }
      ++stats_.decisions;
      trailLim_.push_back(trail_.size());
      enqueue(next, kNoReason);
    }
  }
}

}  // namespace pugpara::smt::mini
