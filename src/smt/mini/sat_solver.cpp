#include "smt/mini/sat_solver.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"

namespace pugpara::smt::mini {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescale = 1e100;
constexpr size_t kShareMaxSize = 32;       // never export longer clauses
constexpr size_t kImportBatch = 256;       // imported clauses per drain
constexpr size_t kMaxSubsumerSize = 16;    // subsumers longer than this skip
constexpr size_t kMaxOccScan = 400;        // skip huge occurrence lists
constexpr size_t kElimMaxOcc = 10;         // |pos| + |neg| cap for BVE
constexpr size_t kElimMaxResolvent = 16;   // literal cap per resolvent
}  // namespace

Var SatSolver::newVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  savedPhase_.push_back(cfg_.initialPhase);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0);
  seen_.push_back(0);
  frozen_.push_back(false);
  eliminated_.push_back(false);
  elimStore_.emplace_back();
  watches_.emplace_back();
  watches_.emplace_back();
  heapPos_.push_back(static_cast<uint32_t>(order_.size()));
  order_.push_back(v);
  // Sift up is unnecessary (activity 0 <= everything).
  for (SatSolver* c : clones_) (void)c->newVar();
  return v;
}

void SatSolver::setFrozen(Var v, bool frozen) {
  frozen_[v] = frozen;
  // Freezing an already-eliminated variable means the caller is about to
  // rely on it again: bring its clauses back.
  if (frozen && eliminated_[v]) restoreVar(v);
  for (SatSolver* c : clones_) c->setFrozen(v, frozen);
}

// heap helpers ---------------------------------------------------------------
// order_ is a binary max-heap on activity_; heapPos_[v] indexes v's slot
// (UINT32_MAX when absent). backtrack() re-inserts unassigned variables so
// they are immediately eligible again.

void SatSolver::heapSiftUp(uint32_t pos) {
  const Var v = order_[pos];
  while (pos > 0) {
    const uint32_t parent = (pos - 1) / 2;
    if (activity_[order_[parent]] >= activity_[v]) break;
    order_[pos] = order_[parent];
    heapPos_[order_[pos]] = pos;
    pos = parent;
  }
  order_[pos] = v;
  heapPos_[v] = pos;
}

void SatSolver::heapSiftDown(uint32_t pos) {
  const Var v = order_[pos];
  for (;;) {
    uint32_t child = 2 * pos + 1;
    if (child >= order_.size()) break;
    if (child + 1 < order_.size() &&
        activity_[order_[child + 1]] > activity_[order_[child]])
      ++child;
    if (activity_[order_[child]] <= activity_[v]) break;
    order_[pos] = order_[child];
    heapPos_[order_[pos]] = pos;
    pos = child;
  }
  order_[pos] = v;
  heapPos_[v] = pos;
}

void SatSolver::heapInsert(Var v) {
  if (heapPos_[v] != UINT32_MAX) return;
  heapPos_[v] = static_cast<uint32_t>(order_.size());
  order_.push_back(v);
  heapSiftUp(heapPos_[v]);
}

Var SatSolver::heapPop() {
  const Var v = order_.front();
  heapPos_[v] = UINT32_MAX;
  const Var last = order_.back();
  order_.pop_back();
  if (!order_.empty()) {
    order_[0] = last;
    heapPos_[last] = 0;
    heapSiftDown(0);
  }
  return v;
}

void SatSolver::bumpVar(Var v) {
  activity_[v] += varInc_;
  if (activity_[v] > kRescale) {
    for (double& a : activity_) a /= kRescale;
    varInc_ /= kRescale;
  }
  if (heapPos_[v] != UINT32_MAX) heapSiftUp(heapPos_[v]);
}

Lit SatSolver::pickBranch() {
  // Occasional random decisions diversify portfolio clones searching the
  // same CNF (harmless at the default frequency of 0).
  if (cfg_.randomFreq > 0 && !order_.empty() &&
      rng_.below(1u << 20) < static_cast<uint64_t>(cfg_.randomFreq * (1u << 20))) {
    for (int tries = 0; tries < 8; ++tries) {
      const Var v = order_[rng_.below(order_.size())];
      if (!assigned(v) && !eliminated_[v]) return Lit(v, !savedPhase_[v]);
    }
  }
  while (!order_.empty()) {
    const Var v = heapPop();
    if (!assigned(v) && !eliminated_[v]) return Lit(v, !savedPhase_[v]);
  }
  return Lit();  // undefined: everything assigned
}

// clause management -----------------------------------------------------------

bool SatSolver::addClause(std::vector<Lit> lits) {
  // Mirror the original clause into portfolio clones before local
  // simplification (each clone simplifies against its own root state).
  for (SatSolver* c : clones_) (void)c->addClause(lits);
  if (unsatAtTopLevel_) return false;
  require(trailLim_.empty(), "SatSolver::addClause during solve");
  return addClauseRoot(std::move(lits), /*learnt=*/false, /*lbd=*/0);
}

bool SatSolver::addClauseRoot(std::vector<Lit> lits, bool learnt,
                              uint32_t lbd) {
  if (unsatAtTopLevel_) return false;
  // Restore-on-mention: a clause naming an eliminated variable re-activates
  // it (recursively — restored clauses may name other eliminated vars).
  for (const Lit l : lits)
    if (eliminated_[l.var()]) restoreVar(l.var());
  if (unsatAtTopLevel_) return false;
  // Normalize: sort, dedupe, drop tautologies.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i].var() == lits[i + 1].var()) return true;  // l ∨ ¬l
  // Simplify against the top level: between solve() calls every assignment
  // is a permanent (level-0) consequence, so satisfied clauses vanish and
  // falsified literals drop — which also keeps the watch invariant intact
  // for clauses added to an incrementally solved instance.
  size_t keep = 0;
  for (const Lit l : lits) {
    const LBool v = value(l);
    if (v == LBool::True) return true;
    if (v == LBool::Undef) lits[keep++] = l;
  }
  lits.resize(keep);
  if (lits.empty()) {
    unsatAtTopLevel_ = true;
    return false;
  }
  if (lits.size() == 1) {
    // At decision level 0 units go straight onto the trail; the next
    // propagate() (solve entry or restart) spreads the consequences.
    enqueue(lits[0], kNoReason);
    return true;
  }
  Clause c;
  c.lits = std::move(lits);
  c.learnt = learnt;
  c.lbd = learnt && lbd == 0 ? static_cast<uint32_t>(c.lits.size()) : lbd;
  clauses_.push_back(std::move(c));
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void SatSolver::restoreVar(Var v) {
  eliminated_[v] = false;
  ++stats_.restoredVars;
  if (!assigned(v)) heapInsert(v);
  std::vector<std::vector<Lit>> stored = std::move(elimStore_[v]);
  elimStore_[v].clear();
  for (auto& lits : stored)
    addClauseRoot(std::move(lits), /*learnt=*/false, /*lbd=*/0);
}

void SatSolver::attach(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  watches_[(~c.lits[0]).code()].push_back({cr, c.lits[1]});
  watches_[(~c.lits[1]).code()].push_back({cr, c.lits[0]});
}

void SatSolver::drainImports() {
  if (!importFn_ || unsatAtTopLevel_) return;
  std::vector<Lit> lits;
  for (size_t n = 0; n < kImportBatch && importFn_(lits); ++n) {
    ++stats_.importedClauses;
    addClauseRoot(std::move(lits), /*learnt=*/true, /*lbd=*/0);
    lits.clear();
    if (unsatAtTopLevel_) return;
  }
}

// trail / propagation -----------------------------------------------------------

void SatSolver::enqueue(Lit l, ClauseRef reason) {
  assigns_[l.var()] = l.negated() ? LBool::False : LBool::True;
  savedPhase_[l.var()] = !l.negated();
  level_[l.var()] = static_cast<int>(trailLim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.code()];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Ensure c.lits[1] is the falsified watch (~p).
      if (c.lits[0] == ~p) std::swap(c.lits[0], c.lits[1]);
      if (value(c.lits[0]) == LBool::True) {
        ws[keep++] = {w.clause, c.lits[0]};
        continue;
      }
      // Find a replacement watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back({w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      ws[keep++] = w;
      if (value(c.lits[0]) == LBool::False) {
        // Conflict: keep the remaining watchers and report.
        for (size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(c.lits[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void SatSolver::backtrack(int targetLevel) {
  if (static_cast<int>(trailLim_.size()) <= targetLevel) return;
  const size_t bound = trailLim_[targetLevel];
  for (size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    assigns_[v] = LBool::Undef;
    reason_[v] = kNoReason;
    heapInsert(v);
  }
  trail_.resize(bound);
  trailLim_.resize(targetLevel);
  qhead_ = trail_.size();
}

// conflict analysis ---------------------------------------------------------------

void SatSolver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                        int& backLevel) {
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  int counter = 0;
  Lit p;
  bool first = true;
  size_t index = trail_.size();
  const int curLevel = static_cast<int>(trailLim_.size());

  ClauseRef cr = conflict;
  do {
    Clause& c = clauses_[cr];
    if (c.learnt) bumpClause(cr);
    for (size_t i = first ? 0 : 1; i < c.lits.size(); ++i) {
      const Lit q = c.lits[i];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      seen_[q.var()] = 1;
      bumpVar(q.var());
      if (level_[q.var()] >= curLevel) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Next literal on the trail to resolve on.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    seen_[p.var()] = 0;
    cr = reason_[p.var()];
    first = false;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Cheap self-subsumption minimization: drop literals whose reason clause
  // is entirely covered by the learnt set.
  auto redundant = [&](Lit l) {
    const ClauseRef r = reason_[l.var()];
    if (r == kNoReason) return false;
    const Clause& rc = clauses_[r];
    for (size_t i = 1; i < rc.lits.size(); ++i) {
      const Lit q = rc.lits[i];
      if (!seen_[q.var()] && level_[q.var()] != 0) return false;
    }
    return true;
  };
  // The seen_ marks must stay valid while redundant() runs and must ALL be
  // cleared afterwards — including those of dropped literals, which the
  // in-place compaction overwrites.
  const std::vector<Lit> original(learnt.begin() + 1, learnt.end());
  size_t keep = 1;
  for (size_t i = 1; i < learnt.size(); ++i)
    if (!redundant(learnt[i])) learnt[keep++] = learnt[i];
  for (const Lit l : original) seen_[l.var()] = 0;
  learnt.resize(keep);

  // Backjump level: highest level among the non-asserting literals.
  backLevel = 0;
  for (size_t i = 1; i < learnt.size(); ++i) {
    backLevel = std::max(backLevel, level_[learnt[i].var()]);
    if (level_[learnt[i].var()] == backLevel) std::swap(learnt[1], learnt[i]);
  }
}

uint32_t SatSolver::computeLbd(std::span<const Lit> lits) {
  // Number of distinct decision levels among the (assigned) literals.
  ++lbdStampGen_;
  if (lbdStamp_.size() < trailLim_.size() + 1)
    lbdStamp_.resize(trailLim_.size() + 1, 0);
  uint32_t n = 0;
  for (const Lit l : lits) {
    const int lev = level_[l.var()];
    if (lev <= 0) continue;
    if (lbdStamp_[static_cast<size_t>(lev)] != lbdStampGen_) {
      lbdStamp_[static_cast<size_t>(lev)] = lbdStampGen_;
      ++n;
    }
  }
  return n;
}

void SatSolver::recordLbd(uint32_t lbd) {
  if (lbd <= 2)
    ++stats_.lbdGlue;
  else if (lbd <= 6)
    ++stats_.lbdMid;
  else
    ++stats_.lbdLarge;
}

void SatSolver::bumpClause(ClauseRef cr) {
  Clause& c = clauses_[cr];
  c.activity += clauseInc_;
  if (c.activity > kRescale) {
    for (Clause& cl : clauses_)
      if (cl.learnt) cl.activity /= kRescale;
    clauseInc_ /= kRescale;
  }
  // Glucose-style dynamic glue: a learnt clause active in conflict analysis
  // has all literals assigned, so its LBD can be refreshed (kept minimal).
  if (c.learnt && c.lbd > 1) {
    const uint32_t l = computeLbd(c.lits);
    if (l > 0 && l < c.lbd) c.lbd = l;
  }
}

void SatSolver::decayActivities() {
  varInc_ /= kVarDecay;
  clauseInc_ /= kClauseDecay;
}

void SatSolver::reduceLearnts() {
  std::vector<ClauseRef> learnts;
  for (ClauseRef i = 0; i < clauses_.size(); ++i)
    if (clauses_[i].learnt) learnts.push_back(i);
  if (learnts.size() < 64) return;
  std::vector<bool> isReason(clauses_.size(), false);
  for (const Lit l : trail_)
    if (reason_[l.var()] != kNoReason) isReason[reason_[l.var()]] = true;

  std::vector<bool> drop(clauses_.size(), false);
  uint64_t dropped = 0;
  if (cfg_.lbdReduce) {
    // LBD-driven: delete the worst (highest-glue, then least active) half,
    // protecting glue clauses (lbd <= glueLbd), binaries and reasons.
    std::sort(learnts.begin(), learnts.end(),
              [this](ClauseRef a, ClauseRef b) {
                if (clauses_[a].lbd != clauses_[b].lbd)
                  return clauses_[a].lbd > clauses_[b].lbd;
                return clauses_[a].activity < clauses_[b].activity;
              });
    const size_t target = learnts.size() / 2;
    for (const ClauseRef cr : learnts) {
      if (dropped >= target) break;
      const Clause& c = clauses_[cr];
      if (isReason[cr] || c.lits.size() <= 2 || c.lbd <= cfg_.glueLbd)
        continue;
      drop[cr] = true;
      ++dropped;
    }
  } else {
    // Activity-based fallback: drop the less active half.
    std::sort(learnts.begin(), learnts.end(),
              [this](ClauseRef a, ClauseRef b) {
                return clauses_[a].activity < clauses_[b].activity;
              });
    for (size_t i = 0; i < learnts.size() / 2; ++i)
      if (!isReason[learnts[i]] && clauses_[learnts[i]].lits.size() > 2) {
        drop[learnts[i]] = true;
        ++dropped;
      }
  }
  stats_.learntsDeleted += dropped;

  // Rebuild watches without the dropped clauses. Clause refs must stay
  // stable (reasons point into clauses_), so we only clear bodies.
  for (auto& ws : watches_) {
    size_t keep = 0;
    for (const Watcher& w : ws)
      if (!drop[w.clause]) ws[keep++] = w;
    ws.resize(keep);
  }
  for (ClauseRef i = 0; i < clauses_.size(); ++i)
    if (drop[i]) clauses_[i].lits.clear(), clauses_[i].learnt = false;
}

// inprocessing -----------------------------------------------------------------

void SatSolver::maybeInprocess(std::span<const Lit> assumptions) {
  if (!cfg_.inprocess || unsatAtTopLevel_) return;
  if (clauses_.size() < inprocessNextAt_) return;
  inprocess(assumptions);
  inprocessNextAt_ =
      clauses_.size() + std::max<size_t>(2000, clauses_.size() / 4);
}

void SatSolver::inprocess(std::span<const Lit> assumptions) {
  ++stats_.inprocessRuns;
  // Freeze this call's assumption variables for the duration of the pass:
  // inprocessing must never delete a clause an assumption still needs.
  std::vector<Var> thaw;
  for (const Lit a : assumptions)
    if (!frozen_[a.var()]) {
      frozen_[a.var()] = true;
      thaw.push_back(a.var());
    }

  // Root reasons are never dereferenced once the trail is final at level 0;
  // clear them so clause deletion cannot leave dangling references.
  for (const Lit l : trail_) reason_[l.var()] = kNoReason;

  // 1. Top-level simplification: drop satisfied clauses, strip falsified
  // literals, and sort each survivor (the subset tests below and the
  // resolvent merges rely on sorted literals).
  std::vector<Lit> pendingUnits;
  bool ok = true;
  for (ClauseRef i = 0; i < clauses_.size() && ok; ++i) {
    Clause& c = clauses_[i];
    if (c.lits.empty()) continue;
    bool sat = false;
    size_t keep = 0;
    for (const Lit l : c.lits) {
      const LBool v = value(l);
      if (v == LBool::True) {
        sat = true;
        break;
      }
      if (v == LBool::Undef) c.lits[keep++] = l;
    }
    if (sat) {
      c.lits.clear();
      c.learnt = false;
      continue;
    }
    c.lits.resize(keep);
    if (c.lits.empty()) {
      ok = false;
      break;
    }
    if (c.lits.size() == 1) {
      pendingUnits.push_back(c.lits[0]);
      c.lits.clear();
      c.learnt = false;
      continue;
    }
    std::sort(c.lits.begin(), c.lits.end());
  }

  if (ok) {
    // Occurrence lists and variable signatures over the live clauses.
    std::vector<std::vector<ClauseRef>> occ(watches_.size());
    std::vector<uint64_t> sig(clauses_.size(), 0);
    for (ClauseRef i = 0; i < clauses_.size(); ++i) {
      if (!clauseLive(i)) continue;
      uint64_t s = 0;
      for (const Lit l : clauses_[i].lits) {
        occ[l.code()].push_back(i);
        s |= uint64_t{1} << (l.var() & 63);
      }
      sig[i] = s;
    }
    subsumptionPass(occ, sig, pendingUnits);
    eliminatePass(occ, sig);
    // eliminatePass routes unit resolvents through elimUnits_ (below).
    pendingUnits.insert(pendingUnits.end(), elimUnits_.begin(),
                        elimUnits_.end());
    elimUnits_.clear();
  }

  for (const Var v : thaw) frozen_[v] = false;

  if (!ok) {
    unsatAtTopLevel_ = true;
    return;
  }

  // Watches were invalidated wholesale (clauses dropped, strengthened,
  // sorted); rebuild them, apply the pending units and re-propagate the
  // entire root trail against the new clause database.
  rebuildWatches();
  for (const Lit u : pendingUnits) {
    if (value(u) == LBool::False) {
      unsatAtTopLevel_ = true;
      return;
    }
    if (value(u) == LBool::Undef) enqueue(u, kNoReason);
  }
  qhead_ = 0;
  if (propagate() != kNoReason) unsatAtTopLevel_ = true;
}

void SatSolver::subsumptionPass(std::vector<std::vector<ClauseRef>>& occ,
                                std::vector<uint64_t>& sig,
                                std::vector<Lit>& pendingUnits) {
  // Is `a` ⊆ `b`? Both sorted by literal code.
  const auto subset = [](const std::vector<Lit>& a,
                         const std::vector<Lit>& b) {
    size_t j = 0;
    for (const Lit l : a) {
      while (j < b.size() && b[j] < l) ++j;
      if (j >= b.size() || b[j] != l) return false;
      ++j;
    }
    return true;
  };
  std::vector<Lit> flipped;
  const size_t fixedEnd = clauses_.size();
  for (ClauseRef cr = 0; cr < fixedEnd; ++cr) {
    const Clause& c = clauses_[cr];
    if (!clauseLive(cr) || c.learnt || c.lits.size() > kMaxSubsumerSize)
      continue;
    // Backward subsumption: c kills every superset. Scan the occurrence
    // list of c's least-occurring literal (every superset contains it).
    Lit best = c.lits[0];
    for (const Lit l : c.lits)
      if (occ[l.code()].size() < occ[best.code()].size()) best = l;
    if (occ[best.code()].size() <= kMaxOccScan) {
      for (const ClauseRef dr : occ[best.code()]) {
        if (dr == cr || !clauseLive(dr)) continue;
        Clause& d = clauses_[dr];
        if (d.lits.size() < c.lits.size()) continue;
        if (sig[cr] & ~sig[dr]) continue;
        if (!subset(c.lits, d.lits)) continue;
        d.lits.clear();
        d.learnt = false;
        ++stats_.subsumed;
      }
    }
    // Self-subsuming resolution: if c with one literal l flipped is a
    // subset of d, resolving removes ~l from d (d gets strictly stronger).
    for (const Lit l : c.lits) {
      if (occ[(~l).code()].size() > kMaxOccScan) continue;
      flipped = c.lits;
      *std::find(flipped.begin(), flipped.end(), l) = ~l;
      std::sort(flipped.begin(), flipped.end());
      for (const ClauseRef dr : occ[(~l).code()]) {
        if (dr == cr || !clauseLive(dr)) continue;
        Clause& d = clauses_[dr];
        if (d.lits.size() < c.lits.size()) continue;
        if (sig[cr] & ~sig[dr]) continue;  // var signatures ignore polarity
        if (!subset(flipped, d.lits)) continue;
        d.lits.erase(std::find(d.lits.begin(), d.lits.end(), ~l));
        ++stats_.strengthened;
        uint64_t s = 0;
        for (const Lit q : d.lits) s |= uint64_t{1} << (q.var() & 63);
        sig[dr] = s;
        if (d.lits.size() == 1) {
          pendingUnits.push_back(d.lits[0]);
          d.lits.clear();
          d.learnt = false;
        }
      }
    }
  }
}

void SatSolver::eliminatePass(std::vector<std::vector<ClauseRef>>& occ,
                              std::vector<uint64_t>& sig) {
  const auto contains = [this](ClauseRef cr, Lit l) {
    const auto& lits = clauses_[cr].lits;
    return std::binary_search(lits.begin(), lits.end(), l);
  };
  const size_t nv = numVars();
  std::vector<ClauseRef> pos, neg;
  for (Var v = 0; v < nv; ++v) {
    if (frozen_[v] || eliminated_[v] || assigned(v)) continue;
    const Lit pl(v, false), nl(v, true);
    // Live original clauses actually containing each polarity (occurrence
    // entries go stale when clauses are dropped or strengthened).
    pos.clear();
    neg.clear();
    for (const ClauseRef cr : occ[pl.code()])
      if (clauseLive(cr) && !clauses_[cr].learnt && contains(cr, pl))
        pos.push_back(cr);
    for (const ClauseRef cr : occ[nl.code()])
      if (clauseLive(cr) && !clauses_[cr].learnt && contains(cr, nl))
        neg.push_back(cr);
    const size_t budget = pos.size() + neg.size();
    if (budget == 0 || budget > kElimMaxOcc) continue;
    // Build all non-tautological resolvents; give up unless the clause
    // count does not grow (MiniSat's no-growth rule) and every resolvent
    // stays short.
    std::vector<std::vector<Lit>> resolvents;
    bool tooBig = false;
    for (const ClauseRef p : pos) {
      for (const ClauseRef n : neg) {
        std::vector<Lit> merged;
        bool taut = false;
        for (const Lit l : clauses_[p].lits)
          if (l != pl) merged.push_back(l);
        for (const Lit l : clauses_[n].lits)
          if (l != nl) merged.push_back(l);
        std::sort(merged.begin(), merged.end());
        merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
        for (size_t i = 0; i + 1 < merged.size(); ++i)
          if (merged[i].var() == merged[i + 1].var()) {
            taut = true;
            break;
          }
        if (taut) continue;
        if (merged.size() > kElimMaxResolvent ||
            resolvents.size() >= budget) {
          tooBig = true;
          break;
        }
        resolvents.push_back(std::move(merged));
      }
      if (tooBig) break;
    }
    if (tooBig) continue;
    // Commit: move the variable's clauses to the elimination store (they
    // fuel restore-on-mention and model extension), purge learnts that
    // mention it (a stale learnt could otherwise re-assign the variable
    // inconsistently with the stored clauses), then add the resolvents.
    auto& store = elimStore_[v];
    for (const ClauseRef cr : pos) {
      store.push_back(std::move(clauses_[cr].lits));
      clauses_[cr].lits.clear();
    }
    for (const ClauseRef cr : neg) {
      store.push_back(std::move(clauses_[cr].lits));
      clauses_[cr].lits.clear();
    }
    for (const Lit l : {pl, nl})
      for (const ClauseRef cr : occ[l.code()])
        if (clauseLive(cr) && clauses_[cr].learnt && contains(cr, l)) {
          clauses_[cr].lits.clear();
          clauses_[cr].learnt = false;
          ++stats_.learntsDeleted;
        }
    eliminated_[v] = true;
    elimOrder_.push_back(v);
    ++stats_.eliminatedVars;
    for (auto& r : resolvents) {
      if (r.size() == 1) {
        elimUnits_.push_back(r[0]);
        continue;
      }
      Clause nc;
      nc.lits = std::move(r);
      clauses_.push_back(std::move(nc));
      const auto cr = static_cast<ClauseRef>(clauses_.size() - 1);
      uint64_t s = 0;
      for (const Lit l : clauses_[cr].lits) {
        occ[l.code()].push_back(cr);
        s |= uint64_t{1} << (l.var() & 63);
      }
      sig.push_back(s);
    }
  }
}

void SatSolver::rebuildWatches() {
  for (auto& ws : watches_) ws.clear();
  // Every live clause has >= 2 literals, all unassigned at the root (the
  // simplification pass stripped the rest), so any two watches are valid.
  for (ClauseRef cr = 0; cr < clauses_.size(); ++cr)
    if (clauseLive(cr)) attach(cr);
}

void SatSolver::extendModel() {
  // Patch eliminated variables into the model, newest elimination first:
  // a variable's stored clauses only mention variables eliminated earlier
  // (or never), which are patched later/already correct. The value is
  // forced true iff some stored clause with the positive literal has no
  // other satisfied literal; false satisfies all remaining clauses (both
  // forced at once would contradict a resolvent the model satisfies).
  if (elimOrder_.empty()) return;
  const auto litTrue = [this](Lit l) {
    return l.var() < model_.size() &&
           (model_[l.var()] ^ l.negated()) == LBool::True;
  };
  std::vector<uint8_t> done(numVars(), 0);
  for (auto it = elimOrder_.rbegin(); it != elimOrder_.rend(); ++it) {
    const Var v = *it;
    if (v >= model_.size() || done[v] || !eliminated_[v]) continue;
    done[v] = 1;
    bool mustTrue = false;
    for (const auto& cl : elimStore_[v]) {
      bool satisfied = false, hasPos = false;
      for (const Lit l : cl) {
        if (l.var() == v) {
          hasPos = hasPos || !l.negated();
          continue;
        }
        if (litTrue(l)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && hasPos) {
        mustTrue = true;
        break;
      }
    }
    model_[v] = mustTrue ? LBool::True : LBool::False;
  }
}

// solving -----------------------------------------------------------------------

uint64_t SatSolver::luby(uint64_t i) {
  // Knuth's formula for the Luby sequence.
  uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

SatResult SatSolver::solve(std::span<const Lit> assumptions) {
  if (unsatAtTopLevel_) return SatResult::Unsat;
  backtrack(0);
  // Assumptions naming eliminated variables re-activate them first.
  for (const Lit a : assumptions)
    if (a.var() < eliminated_.size() && eliminated_[a.var()])
      restoreVar(a.var());
  const auto rootOk = [this] {
    if (unsatAtTopLevel_) return false;
    if (propagate() != kNoReason) {
      unsatAtTopLevel_ = true;
      return false;
    }
    return true;
  };
  if (!rootOk()) return SatResult::Unsat;
  drainImports();
  if (!rootOk()) return SatResult::Unsat;
  maybeInprocess(assumptions);
  if (unsatAtTopLevel_) return SatResult::Unsat;

  std::vector<Lit> learnt;
  const uint64_t restartBase = cfg_.restartBase == 0 ? 64 : cfg_.restartBase;
  uint64_t conflictsAtRestart = 0;
  uint64_t restartBudget = restartBase * luby(stats_.restarts);
  uint64_t reduceBudget = stats_.learnts + 2000;
  const uint64_t conflictsAtEntry = stats_.conflicts;

  // `done` backtracks to the top level on every exit so the solver is ready
  // for more clauses / another solve; a Sat model is snapshotted (and
  // extended over eliminated variables) first.
  const auto done = [this](SatResult r) {
    if (r == SatResult::Sat) {
      model_.assign(assigns_.begin(), assigns_.end());
      extendModel();
    }
    backtrack(0);
    return r;
  };

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflictsAtRestart;
      if (trailLim_.empty()) {
        unsatAtTopLevel_ = true;
        return done(SatResult::Unsat);
      }
      int backLevel = 0;
      analyze(conflict, learnt, backLevel);
      // Glue of the fresh learnt (levels are still assigned here).
      const uint32_t lbd = computeLbd(learnt);
      recordLbd(lbd);
      if (exportFn_ && learnt.size() <= kShareMaxSize &&
          (learnt.size() == 1 || lbd <= cfg_.shareLbdMax)) {
        exportFn_(learnt, lbd);
        ++stats_.exportedClauses;
      }
      // Chronological backtracking: when the backjump would discard many
      // levels of (often still useful) assignments, step back one level
      // instead. The asserting literal is enqueued there with its reason;
      // levels stay trail-consistent because enqueue stamps the current
      // level, so analyze() needs no changes. Missed lower-level
      // propagations are sound: the watchers still fire on any falsifying
      // assignment, so no conflict is ever missed.
      const int curLevel = static_cast<int>(trailLim_.size());
      int target = backLevel;
      if (cfg_.chrono && learnt.size() > 1 &&
          curLevel - backLevel >= static_cast<int>(cfg_.chronoDistance) &&
          curLevel - 1 > backLevel) {
        target = curLevel - 1;
        ++stats_.chronoBacktracks;
      }
      backtrack(target);
      if (learnt.size() == 1) {
        if (!trailLim_.empty()) backtrack(0);
        if (value(learnt[0]) == LBool::False) {
          unsatAtTopLevel_ = true;
          return done(SatResult::Unsat);
        }
        if (value(learnt[0]) == LBool::Undef) enqueue(learnt[0], kNoReason);
      } else {
        Clause c;
        c.lits = learnt;
        c.learnt = true;
        c.lbd = lbd;
        clauses_.push_back(std::move(c));
        const auto cr = static_cast<ClauseRef>(clauses_.size() - 1);
        attach(cr);
        bumpClause(cr);
        ++stats_.learnts;
        enqueue(learnt[0], cr);
      }
      decayActivities();

      if (conflictBudget_ != 0 &&
          stats_.conflicts - conflictsAtEntry >= conflictBudget_)
        return done(SatResult::Aborted);
      if ((stats_.conflicts & 2047) == 0 && keepGoing_ && !keepGoing_())
        return done(SatResult::Aborted);
      if (stats_.learnts > reduceBudget) {
        reduceLearnts();
        reduceBudget += reduceBudget / 2;
      }
      if (conflictsAtRestart >= restartBudget) {
        ++stats_.restarts;
        conflictsAtRestart = 0;
        restartBudget = restartBase * luby(stats_.restarts);
        backtrack(0);
        drainImports();
        if (unsatAtTopLevel_) return done(SatResult::Unsat);
      }
    } else {
      // Re-establish the assumptions as pseudo-decisions at the root
      // decision levels (restarts and backjumps may have undone them).
      Lit next = Lit();
      while (trailLim_.size() < assumptions.size()) {
        const Lit p = assumptions[trailLim_.size()];
        if (value(p) == LBool::True) {
          trailLim_.push_back(trail_.size());  // satisfied: dummy level
        } else if (value(p) == LBool::False) {
          // An earlier assumption (or the clause set) implies ¬p: unsat
          // under these assumptions, but the clause set itself lives on.
          return done(SatResult::Unsat);
        } else {
          next = p;
          break;
        }
      }
      if (next == Lit()) {
        next = pickBranch();
        if (next == Lit()) return done(SatResult::Sat);
      }
      ++stats_.decisions;
      trailLim_.push_back(trail_.size());
      enqueue(next, kNoReason);
    }
  }
}

}  // namespace pugpara::smt::mini
