#include "smt/mini/share.h"

namespace pugpara::smt::mini {

void ClauseExchange::publish(size_t origin, const std::vector<Lit>& lits) {
  std::lock_guard<std::mutex> lock(mu_);
  buf_.push_back({static_cast<uint32_t>(origin), lits});
  ++total_;
  if (buf_.size() > kCapacity) {
    buf_.pop_front();
    ++base_;
  }
}

bool ClauseExchange::pull(size_t consumer, std::vector<Lit>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t cur = std::max(cursor_[consumer], base_);
  const uint64_t end = base_ + buf_.size();
  while (cur < end) {
    const Entry& e = buf_[static_cast<size_t>(cur - base_)];
    ++cur;
    if (e.origin != consumer) {
      out = e.lits;
      cursor_[consumer] = cur;
      return true;
    }
  }
  cursor_[consumer] = cur;
  return false;
}

uint64_t ClauseExchange::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace pugpara::smt::mini
