// Core SAT types: variables, literals and the three-valued assignment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pugpara::smt::mini {

using Var = uint32_t;
constexpr Var kNoVar = UINT32_MAX;

/// A literal encodes (variable, sign) as var*2 + (negated ? 1 : 0).
class Lit {
 public:
  Lit() = default;
  Lit(Var v, bool negated) : code_(v * 2 + (negated ? 1 : 0)) {}

  [[nodiscard]] Var var() const { return code_ / 2; }
  [[nodiscard]] bool negated() const { return code_ & 1; }
  [[nodiscard]] uint32_t code() const { return code_; }
  [[nodiscard]] Lit operator~() const {
    Lit l;
    l.code_ = code_ ^ 1;
    return l;
  }
  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }
  friend bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

  [[nodiscard]] std::string str() const {
    return (negated() ? "-" : "") + std::to_string(var() + 1);
  }

 private:
  uint32_t code_ = UINT32_MAX;
};

enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool operator^(LBool b, bool flip) {
  if (b == LBool::Undef) return b;
  return (b == LBool::True) != flip ? LBool::True : LBool::False;
}

}  // namespace pugpara::smt::mini
