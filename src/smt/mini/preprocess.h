// MiniSMT preprocessing: rewrites signed operations into the unsigned core
// (SMT-LIB's defining expansions) and eliminates division/remainder by
// introducing fresh quotient/remainder variables with exact double-width
// defining constraints.
//
// Preprocessor is incremental: one instance rewrites assertion after
// assertion, sharing the rewrite and division memos, and emits only the
// defining constraints for quotient/remainder pairs first introduced by
// each call. The definitions are valid for every model that extends it, so
// they may be asserted permanently even when the assertion that introduced
// them is later retracted.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "expr/context.h"

namespace pugpara::smt::mini {

class Preprocessor {
 public:
  explicit Preprocessor(expr::Context& ctx);
  ~Preprocessor();
  Preprocessor(Preprocessor&&) noexcept;
  Preprocessor& operator=(Preprocessor&&) noexcept;

  /// Rewrites one assertion. Defining constraints for fresh
  /// quotient/remainder pairs (themselves rewritten to a fixpoint, so they
  /// are division-free) are appended to `newConstraints`. Throws PugError
  /// when a division at width > 32 appears (the exact definition needs a
  /// 2w-bit product).
  [[nodiscard]] expr::Expr rewrite(expr::Expr e,
                                   std::vector<expr::Expr>& newConstraints);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

struct Preprocessed {
  std::vector<expr::Expr> formulas;
  std::vector<expr::Expr> constraints;  // division/remainder definitions
};

/// One-shot convenience over Preprocessor.
[[nodiscard]] Preprocessed preprocess(expr::Context& ctx,
                                      std::span<const expr::Expr> assertions);

}  // namespace pugpara::smt::mini
