// MiniSMT preprocessing: rewrites signed operations into the unsigned core
// (SMT-LIB's defining expansions) and eliminates division/remainder by
// introducing fresh quotient/remainder variables with exact double-width
// defining constraints.
#pragma once

#include <vector>

#include "expr/context.h"

namespace pugpara::smt::mini {

struct Preprocessed {
  std::vector<expr::Expr> formulas;
  std::vector<expr::Expr> constraints;  // division/remainder definitions
};

/// Rewrites `assertions`. Throws PugError when a division at width > 32
/// appears (the exact definition needs a 2w-bit product).
[[nodiscard]] Preprocessed preprocess(expr::Context& ctx,
                                      std::span<const expr::Expr> assertions);

}  // namespace pugpara::smt::mini
