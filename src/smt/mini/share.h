// Thread-safe learnt-clause pool for the in-process seed portfolio: N
// SatSolver clones racing on the same CNF publish their low-LBD learnts
// here and periodically (at solve entry and at restarts) pull what the
// other clones found. Sharing is sound even under assumptions: assumption
// literals are decisions during conflict analysis, so they are never
// resolved away — a learnt that depends on an assumption carries its
// negation and is implied by the clause set alone.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "smt/mini/sat_types.h"

namespace pugpara::smt::mini {

class ClauseExchange {
 public:
  explicit ClauseExchange(size_t participants) : cursor_(participants, 0) {}

  /// Publishes a clause learnt by participant `origin`.
  void publish(size_t origin, const std::vector<Lit>& lits);

  /// Pulls the next clause some OTHER participant published; returns false
  /// when `consumer` has drained the pool. Consumers that fall behind the
  /// ring capacity simply miss the oldest clauses (sharing is best-effort).
  bool pull(size_t consumer, std::vector<Lit>& out);

  [[nodiscard]] uint64_t published() const;

 private:
  struct Entry {
    uint32_t origin;
    std::vector<Lit> lits;
  };
  static constexpr size_t kCapacity = 1 << 14;

  mutable std::mutex mu_;
  std::deque<Entry> buf_;
  uint64_t base_ = 0;  // sequence number of buf_.front()
  uint64_t total_ = 0;
  std::vector<uint64_t> cursor_;  // next sequence each consumer reads
};

}  // namespace pugpara::smt::mini
