#include "smt/mini/preprocess.h"

#include <unordered_map>

#include "expr/subst.h"
#include "support/diagnostics.h"

namespace pugpara::smt::mini {

using expr::Expr;
using expr::Kind;

class Preprocessor::Impl {
 public:
  explicit Impl(expr::Context& ctx) : ctx_(ctx) {}

  /// Rewrites `e` and drains the pending division definitions (themselves
  /// rewritten to a fixpoint; divRem memoization guarantees termination)
  /// into `newConstraints`.
  Expr rewrite(Expr e, std::vector<Expr>& newConstraints) {
    Expr r = rewrite(e);
    while (!constraints_.empty()) {
      std::vector<Expr> pending = std::move(constraints_);
      constraints_.clear();
      for (Expr c : pending) newConstraints.push_back(rewrite(c));
    }
    return r;
  }

 private:
  Expr rewrite(Expr e) {
    auto it = memo_.find(e.node());
    if (it != memo_.end()) return it->second;
    Expr r = compute(e);
    memo_.emplace(e.node(), r);
    return r;
  }

  Expr msbSet(Expr x) {
    const uint32_t w = x.sort().width();
    return ctx_.mkEq(ctx_.mkExtract(x, w - 1, w - 1), ctx_.bvVal(1, 1));
  }

  /// Fresh (q, r) with zext(q)*zext(b) + zext(r) == zext(a) at 2w bits and
  /// r < b, plus SMT-LIB's division-by-zero cases.
  std::pair<Expr, Expr> divRem(Expr a, Expr b) {
    const auto key = std::make_pair(a.node(), b.node());
    if (auto it = divMemo_.find(key); it != divMemo_.end()) return it->second;
    const uint32_t w = a.sort().width();
    require(w <= 32, "MiniSMT: division above 32 bits is not supported");
    Expr q = ctx_.freshVar("mini_q", a.sort());
    Expr r = ctx_.freshVar("mini_r", a.sort());
    Expr zero = ctx_.bvVal(0, w);
    Expr allOnes = ctx_.bvVal(expr::maskToWidth(~uint64_t{0}, w), w);

    Expr wideEq = ctx_.mkEq(
        ctx_.mkAdd(ctx_.mkMul(ctx_.mkZeroExt(q, w), ctx_.mkZeroExt(b, w)),
                   ctx_.mkZeroExt(r, w)),
        ctx_.mkZeroExt(a, w));
    Expr nonZero = ctx_.mkImplies(
        ctx_.mkNe(b, zero), ctx_.mkAnd(wideEq, ctx_.mkUlt(r, b)));
    Expr zeroCase = ctx_.mkImplies(
        ctx_.mkEq(b, zero),
        ctx_.mkAnd(ctx_.mkEq(q, allOnes), ctx_.mkEq(r, a)));
    constraints_.push_back(ctx_.mkAnd(nonZero, zeroCase));
    auto qr = std::make_pair(q, r);
    divMemo_.emplace(key, qr);
    return qr;
  }

  Expr compute(Expr e) {
    switch (e.kind()) {
      case Kind::Var:
      case Kind::BoolConst:
      case Kind::BvConst:
        return e;
      case Kind::BvUDiv: {
        Expr a = rewrite(e.kid(0)), b = rewrite(e.kid(1));
        if (a.isBvConst() && b.isBvConst()) return ctx_.mkUDiv(a, b);
        return divRem(a, b).first;
      }
      case Kind::BvURem: {
        Expr a = rewrite(e.kid(0)), b = rewrite(e.kid(1));
        if (a.isBvConst() && b.isBvConst()) return ctx_.mkURem(a, b);
        return divRem(a, b).second;
      }
      case Kind::BvSDiv:
      case Kind::BvSRem: {
        // SMT-LIB expansion via unsigned division on magnitudes.
        Expr a = rewrite(e.kid(0)), b = rewrite(e.kid(1));
        Expr negA = msbSet(a), negB = msbSet(b);
        Expr absA = ctx_.mkIte(negA, ctx_.mkBvNeg(a), a);
        Expr absB = ctx_.mkIte(negB, ctx_.mkBvNeg(b), b);
        if (e.kind() == Kind::BvSDiv) {
          Expr q = rewrite(ctx_.mkUDiv(absA, absB));
          return ctx_.mkIte(ctx_.mkXor(negA, negB), ctx_.mkBvNeg(q), q);
        }
        Expr r = rewrite(ctx_.mkURem(absA, absB));
        return ctx_.mkIte(negA, ctx_.mkBvNeg(r), r);  // sign of the dividend
      }
      case Kind::BvAShr: {
        Expr a = rewrite(e.kid(0)), s = rewrite(e.kid(1));
        Expr shifted = ctx_.mkLShr(a, s);
        Expr filled =
            ctx_.mkBvNot(ctx_.mkLShr(ctx_.mkBvNot(a), s));
        return ctx_.mkIte(msbSet(a), filled, shifted);
      }
      case Kind::BvSlt:
      case Kind::BvSle: {
        // Signed comparison == unsigned comparison with flipped sign bits.
        Expr a = rewrite(e.kid(0)), b = rewrite(e.kid(1));
        const uint32_t w = a.sort().width();
        Expr flip = ctx_.bvVal(uint64_t{1} << (w - 1), w);
        Expr fa = ctx_.mkBvXor(a, flip);
        Expr fb = ctx_.mkBvXor(b, flip);
        return e.kind() == Kind::BvSlt ? ctx_.mkUlt(fa, fb)
                                       : ctx_.mkUle(fa, fb);
      }
      default: {
        std::vector<Expr> kids;
        kids.reserve(e.arity());
        bool changed = false;
        for (size_t i = 0; i < e.arity(); ++i) {
          Expr k = rewrite(e.kid(i));
          changed |= (k != e.kid(i));
          kids.push_back(k);
        }
        return changed ? expr::rebuildWithKids(e, kids) : e;
      }
    }
  }

  struct PairHash {
    size_t operator()(
        const std::pair<const expr::Node*, const expr::Node*>& p) const {
      return std::hash<const expr::Node*>()(p.first) * 31 ^
             std::hash<const expr::Node*>()(p.second);
    }
  };

  expr::Context& ctx_;
  std::unordered_map<const expr::Node*, Expr> memo_;
  std::unordered_map<std::pair<const expr::Node*, const expr::Node*>,
                     std::pair<Expr, Expr>, PairHash>
      divMemo_;
  std::vector<Expr> constraints_;
};

Preprocessor::Preprocessor(expr::Context& ctx)
    : impl_(std::make_unique<Impl>(ctx)) {}
Preprocessor::~Preprocessor() = default;
Preprocessor::Preprocessor(Preprocessor&&) noexcept = default;
Preprocessor& Preprocessor::operator=(Preprocessor&&) noexcept = default;

Expr Preprocessor::rewrite(Expr e, std::vector<Expr>& newConstraints) {
  return impl_->rewrite(e, newConstraints);
}

Preprocessed preprocess(expr::Context& ctx,
                        std::span<const expr::Expr> assertions) {
  Preprocessor pre(ctx);
  Preprocessed out;
  out.formulas.reserve(assertions.size());
  for (Expr a : assertions)
    out.formulas.push_back(pre.rewrite(a, out.constraints));
  return out;
}

}  // namespace pugpara::smt::mini
