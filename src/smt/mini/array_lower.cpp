#include "smt/mini/array_lower.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "expr/subst.h"
#include "support/diagnostics.h"

namespace pugpara::smt::mini {

using expr::Expr;
using expr::Kind;

class ArrayLowerer::Impl {
 public:
  explicit Impl(expr::Context& ctx) : ctx_(ctx) {}

  Expr lower(Expr e, std::vector<Expr>& newConstraints) {
    touched_.clear();
    Expr r = lowerRec(e);
    for (uint32_t j : touched_) {
      if (isPerm_[j]) continue;
      for (uint32_t i : permReads_) emitPair(i, j, newConstraints);
      isPerm_[j] = true;
      permReads_.push_back(j);
    }
    return r;
  }

  Expr lowerTransient(Expr e, std::vector<Expr>& newConstraints) {
    touched_.clear();
    Expr r = lowerRec(e);
    for (uint32_t j : touched_) {
      if (isPerm_[j] || inQuery_[j]) continue;
      for (uint32_t i : permReads_) emitPair(i, j, newConstraints);
      for (uint32_t i : queryReads_) emitPair(i, j, newConstraints);
      inQuery_[j] = true;
      queryReads_.push_back(j);
    }
    return r;
  }

  void beginQuery() {
    for (uint32_t i : queryReads_) inQuery_[i] = false;
    queryReads_.clear();
  }

  [[nodiscard]] const std::vector<AckermannRead>& reads() const {
    return reads_;
  }

  [[nodiscard]] bool readActive(size_t i) const {
    return isPerm_[i] || inQuery_[i];
  }

 private:
  /// Functional consistency per base array: equal indices read equal
  /// values (Ackermann's reduction). Each unordered pair is emitted at
  /// most once over the lowerer's lifetime.
  void emitPair(uint32_t i, uint32_t j, std::vector<Expr>& cs) {
    if (reads_[i].array.node() != reads_[j].array.node()) return;
    const uint64_t key =
        (uint64_t{std::min(i, j)} << 32) | uint64_t{std::max(i, j)};
    if (!emittedPairs_.insert(key).second) return;
    cs.push_back(ctx_.mkImplies(ctx_.mkEq(reads_[i].index, reads_[j].index),
                                ctx_.mkEq(reads_[i].value, reads_[j].value)));
  }

  Expr lowerRec(Expr e) {
    auto it = memo_.find(e.node());
    if (it != memo_.end()) {
      // Memo hit: the reads beneath this node are referenced again and
      // must count as touched by the current formula.
      auto ru = readsUnder_.find(e.node());
      if (ru != readsUnder_.end())
        touched_.insert(touched_.end(), ru->second.begin(), ru->second.end());
      return it->second;
    }
    const size_t touchedBefore = touched_.size();
    Expr r = compute(e);
    if (touched_.size() > touchedBefore) {
      std::vector<uint32_t> under(touched_.begin() + touchedBefore,
                                  touched_.end());
      std::sort(under.begin(), under.end());
      under.erase(std::unique(under.begin(), under.end()), under.end());
      readsUnder_.emplace(e.node(), std::move(under));
    }
    memo_.emplace(e.node(), r);
    return r;
  }

  Expr compute(Expr e) {
    switch (e.kind()) {
      case Kind::Var:
      case Kind::BoolConst:
      case Kind::BvConst:
        return e;
      case Kind::Select:
        return lowerSelect(e.kid(0), lowerRec(e.kid(1)));
      case Kind::Store:
        throw PugError("MiniSMT: store outside a select (array equality?) "
                       "is not supported");
      case Kind::Eq:
        if (e.kid(0).sort().isArray())
          throw PugError("MiniSMT: array equality is not supported");
        [[fallthrough]];
      default: {
        std::vector<Expr> kids;
        kids.reserve(e.arity());
        bool changed = false;
        for (size_t i = 0; i < e.arity(); ++i) {
          Expr k = lowerRec(e.kid(i));
          changed |= (k != e.kid(i));
          kids.push_back(k);
        }
        return changed ? expr::rebuildWithKids(e, kids) : e;
      }
    }
  }

  /// Resolves select(arrayTerm, index) where index is already lowered.
  Expr lowerSelect(Expr arrayTerm, Expr index) {
    switch (arrayTerm.kind()) {
      case Kind::Store: {
        Expr i = lowerRec(arrayTerm.kid(1));
        Expr v = lowerRec(arrayTerm.kid(2));
        Expr rest = lowerSelect(arrayTerm.kid(0), index);
        return ctx_.mkIte(ctx_.mkEq(i, index), v, rest);
      }
      case Kind::Ite: {
        Expr c = lowerRec(arrayTerm.kid(0));
        Expr t = lowerSelect(arrayTerm.kid(1), index);
        Expr f = lowerSelect(arrayTerm.kid(2), index);
        return ctx_.mkIte(c, t, f);
      }
      case Kind::Var: {
        // Reuse the scalar when the same (array, index) was read before.
        const auto key = std::make_pair(arrayTerm.node(), index.node());
        auto it = readMemo_.find(key);
        if (it != readMemo_.end()) {
          touched_.push_back(it->second);
          return reads_[it->second].value;
        }
        Expr fresh = ctx_.freshVar(
            "ack_" + arrayTerm.varName(),
            expr::Sort::bv(arrayTerm.sort().elemWidth()));
        const uint32_t idx = static_cast<uint32_t>(reads_.size());
        reads_.push_back({arrayTerm, index, fresh});
        isPerm_.push_back(false);
        inQuery_.push_back(false);
        readMemo_.emplace(key, idx);
        touched_.push_back(idx);
        return fresh;
      }
      default:
        throw PugError("MiniSMT: unsupported array term shape");
    }
  }

  struct PairHash {
    size_t operator()(
        const std::pair<const expr::Node*, const expr::Node*>& p) const {
      return std::hash<const expr::Node*>()(p.first) * 31 ^
             std::hash<const expr::Node*>()(p.second);
    }
  };

  expr::Context& ctx_;
  std::unordered_map<const expr::Node*, Expr> memo_;
  // Read indices referenced beneath an already-lowered node (only nodes
  // with at least one read get an entry; most nodes have none).
  std::unordered_map<const expr::Node*, std::vector<uint32_t>> readsUnder_;
  std::unordered_map<std::pair<const expr::Node*, const expr::Node*>,
                     uint32_t, PairHash>
      readMemo_;
  std::vector<AckermannRead> reads_;
  std::vector<bool> isPerm_;     // indexed like reads_
  std::vector<bool> inQuery_;    // indexed like reads_
  std::vector<uint32_t> permReads_;
  std::vector<uint32_t> queryReads_;
  std::unordered_set<uint64_t> emittedPairs_;
  std::vector<uint32_t> touched_;  // scratch of the in-flight lower call
};

ArrayLowerer::ArrayLowerer(expr::Context& ctx)
    : impl_(std::make_unique<Impl>(ctx)) {}
ArrayLowerer::~ArrayLowerer() = default;
ArrayLowerer::ArrayLowerer(ArrayLowerer&&) noexcept = default;
ArrayLowerer& ArrayLowerer::operator=(ArrayLowerer&&) noexcept = default;

Expr ArrayLowerer::lower(Expr e, std::vector<Expr>& newConstraints) {
  return impl_->lower(e, newConstraints);
}

Expr ArrayLowerer::lowerTransient(Expr e,
                                  std::vector<Expr>& newConstraints) {
  return impl_->lowerTransient(e, newConstraints);
}

void ArrayLowerer::beginQuery() { impl_->beginQuery(); }

const std::vector<AckermannRead>& ArrayLowerer::reads() const {
  return impl_->reads();
}

bool ArrayLowerer::readActive(size_t i) const { return impl_->readActive(i); }

ArrayLowering lowerArrays(expr::Context& ctx,
                          std::span<const expr::Expr> assertions) {
  ArrayLowerer lw(ctx);
  ArrayLowering out;
  out.formulas.reserve(assertions.size());
  for (Expr a : assertions) out.formulas.push_back(lw.lower(a, out.constraints));
  out.reads = lw.reads();
  return out;
}

}  // namespace pugpara::smt::mini
