#include "smt/mini/array_lower.h"

#include <unordered_map>

#include "expr/subst.h"
#include "support/diagnostics.h"

namespace pugpara::smt::mini {

using expr::Expr;
using expr::Kind;

namespace {

class Lowerer {
 public:
  explicit Lowerer(expr::Context& ctx) : ctx_(ctx) {}

  Expr lower(Expr e) {
    auto it = memo_.find(e.node());
    if (it != memo_.end()) return it->second;
    Expr r = compute(e);
    memo_.emplace(e.node(), r);
    return r;
  }

  ArrayLowering finish(std::vector<Expr> formulas) {
    ArrayLowering out;
    out.formulas = std::move(formulas);
    out.reads = reads_;
    // Functional consistency per base array: equal indices read equal
    // values (Ackermann's reduction; quadratic in the read count).
    std::unordered_map<const expr::Node*, std::vector<size_t>> byArray;
    for (size_t i = 0; i < reads_.size(); ++i)
      byArray[reads_[i].array.node()].push_back(i);
    for (const auto& [arr, idxs] : byArray) {
      (void)arr;
      for (size_t i = 0; i < idxs.size(); ++i)
        for (size_t j = i + 1; j < idxs.size(); ++j) {
          const AckermannRead& a = reads_[idxs[i]];
          const AckermannRead& b = reads_[idxs[j]];
          out.constraints.push_back(
              ctx_.mkImplies(ctx_.mkEq(a.index, b.index),
                             ctx_.mkEq(a.value, b.value)));
        }
    }
    return out;
  }

 private:
  Expr compute(Expr e) {
    switch (e.kind()) {
      case Kind::Var:
      case Kind::BoolConst:
      case Kind::BvConst:
        return e;
      case Kind::Select:
        return lowerSelect(e.kid(0), lower(e.kid(1)));
      case Kind::Store:
        throw PugError("MiniSMT: store outside a select (array equality?) "
                       "is not supported");
      case Kind::Eq:
        if (e.kid(0).sort().isArray())
          throw PugError("MiniSMT: array equality is not supported");
        [[fallthrough]];
      default: {
        std::vector<Expr> kids;
        kids.reserve(e.arity());
        bool changed = false;
        for (size_t i = 0; i < e.arity(); ++i) {
          Expr k = lower(e.kid(i));
          changed |= (k != e.kid(i));
          kids.push_back(k);
        }
        return changed ? expr::rebuildWithKids(e, kids) : e;
      }
    }
  }

  /// Resolves select(arrayTerm, index) where index is already lowered.
  Expr lowerSelect(Expr arrayTerm, Expr index) {
    switch (arrayTerm.kind()) {
      case Kind::Store: {
        Expr i = lower(arrayTerm.kid(1));
        Expr v = lower(arrayTerm.kid(2));
        Expr rest = lowerSelect(arrayTerm.kid(0), index);
        return ctx_.mkIte(ctx_.mkEq(i, index), v, rest);
      }
      case Kind::Ite: {
        Expr c = lower(arrayTerm.kid(0));
        Expr t = lowerSelect(arrayTerm.kid(1), index);
        Expr f = lowerSelect(arrayTerm.kid(2), index);
        return ctx_.mkIte(c, t, f);
      }
      case Kind::Var: {
        // Reuse the scalar when the same (array, index) was read before.
        const auto key = std::make_pair(arrayTerm.node(), index.node());
        auto it = readMemo_.find(key);
        if (it != readMemo_.end()) return it->second;
        Expr fresh = ctx_.freshVar(
            "ack_" + arrayTerm.varName(),
            expr::Sort::bv(arrayTerm.sort().elemWidth()));
        reads_.push_back({arrayTerm, index, fresh});
        readMemo_.emplace(key, fresh);
        return fresh;
      }
      default:
        throw PugError("MiniSMT: unsupported array term shape");
    }
  }

  struct PairHash {
    size_t operator()(
        const std::pair<const expr::Node*, const expr::Node*>& p) const {
      return std::hash<const expr::Node*>()(p.first) * 31 ^
             std::hash<const expr::Node*>()(p.second);
    }
  };

  expr::Context& ctx_;
  std::unordered_map<const expr::Node*, Expr> memo_;
  std::unordered_map<std::pair<const expr::Node*, const expr::Node*>, Expr,
                     PairHash>
      readMemo_;
  std::vector<AckermannRead> reads_;
};

}  // namespace

ArrayLowering lowerArrays(expr::Context& ctx,
                          std::span<const expr::Expr> assertions) {
  Lowerer lw(ctx);
  std::vector<Expr> lowered;
  lowered.reserve(assertions.size());
  for (Expr a : assertions) lowered.push_back(lw.lower(a));
  return lw.finish(std::move(lowered));
}

}  // namespace pugpara::smt::mini
