#include "smt/query_cache.h"

#include <fstream>
#include <vector>

#include "expr/hash.h"
#include "support/diagnostics.h"

namespace pugpara::smt {

QueryKey queryKey(std::span<const expr::Expr> assertions) {
  return {expr::structuralHash(assertions, 0x5851f42d4c957f2dULL),
          expr::structuralHash(assertions, 0x14057b7ef767814fULL)};
}

QueryKey queryKey(std::span<const expr::Expr> assertions,
                  std::span<const expr::Expr> assumptions) {
  // The query decides the conjunction of the union, so key the union: an
  // incremental checkAssuming query and the equivalent one-shot assertion
  // set share an entry.
  std::vector<expr::Expr> all;
  all.reserve(assertions.size() + assumptions.size());
  all.insert(all.end(), assertions.begin(), assertions.end());
  all.insert(all.end(), assumptions.begin(), assumptions.end());
  return queryKey(all);
}

std::optional<CheckResult> QueryCache::lookup(const QueryKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->result;
}

bool QueryCache::store(const QueryKey& key, CheckResult result) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  lru_.push_front({key, result});
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  evictOverCapacityLocked();
  return true;
}

void QueryCache::evictOverCapacityLocked() {
  if (capacity_ == 0) return;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void QueryCache::insert(const QueryKey& key, CheckResult result) {
  if (result == CheckResult::Unknown) return;
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!store(key, result)) return;
    sink = sink_;
  }
  // Outside the lock: the sink may take its own locks (the persistent
  // store's journal queue) and must never serialize the solver hot path
  // behind cache bookkeeping.
  if (sink) sink(key, result);
}

void QueryCache::prime(const QueryKey& key, CheckResult result) {
  if (result == CheckResult::Unknown) return;
  std::lock_guard<std::mutex> lock(mu_);
  store(key, result);
}

void QueryCache::setCapacity(size_t maxEntries) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = maxEntries;
  evictOverCapacityLocked();
}

void QueryCache::setSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

bool QueryCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t hi = 0, lo = 0;
  std::string res;
  while (in >> std::hex >> hi >> lo >> res) {
    CheckResult r;
    if (res == "sat") r = CheckResult::Sat;
    else if (res == "unsat") r = CheckResult::Unsat;
    else return false;
    store(QueryKey{hi, lo}, r);  // no sink: the entry came from disk
  }
  return in.eof();
}

bool QueryCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  std::lock_guard<std::mutex> lock(mu_);
  out << std::hex;
  for (const Entry& e : lru_)
    out << e.key.hi << ' ' << e.key.lo << ' ' << toString(e.result) << '\n';
  return static_cast<bool>(out);
}

namespace {

class CachingSolver final : public Solver {
 public:
  CachingSolver(std::unique_ptr<Solver> inner, QueryCache& cache)
      : inner_(std::move(inner)), cache_(cache) {}

  void push() override {
    flush();
    scopes_.push_back(assertions_.size());
    inner_->push();
  }

  void pop() override {
    require(!scopes_.empty(), "CachingSolver::pop without push");
    flush();
    assertions_.resize(scopes_.back());
    flushed_ = assertions_.size();
    scopes_.pop_back();
    inner_->pop();
  }

  void add(expr::Expr assertion) override {
    require(assertion.sort().isBool(), "asserted expression must be Bool");
    assertions_.push_back(assertion);
  }

  CheckResult check() override {
    const QueryKey key = queryKey(assertions_);
    if (auto cached = cache_.lookup(key)) {
      // Unsat needs no model: the backend never sees the query. Sat still
      // solves (the caller will want the model) but the hit is recorded.
      if (*cached == CheckResult::Unsat) return CheckResult::Unsat;
    }
    flush();
    CheckResult r = inner_->check();
    cache_.insert(key, r);
    return r;
  }

  CheckResult checkAssuming(std::span<const expr::Expr> assumptions) override {
    const QueryKey key = queryKey(assertions_, assumptions);
    if (auto cached = cache_.lookup(key)) {
      if (*cached == CheckResult::Unsat) return CheckResult::Unsat;
    }
    flush();
    CheckResult r = inner_->checkAssuming(assumptions);
    cache_.insert(key, r);
    return r;
  }

  [[nodiscard]] std::unique_ptr<Model> model() override {
    return inner_->model();
  }

  void setTimeoutMs(uint32_t ms) override { inner_->setTimeoutMs(ms); }
  void requestStop() override { inner_->requestStop(); }

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+cache";
  }

 private:
  void flush() {
    for (; flushed_ < assertions_.size(); ++flushed_)
      inner_->add(assertions_[flushed_]);
  }

  std::unique_ptr<Solver> inner_;
  QueryCache& cache_;
  std::vector<expr::Expr> assertions_;
  std::vector<size_t> scopes_;
  size_t flushed_ = 0;
};

}  // namespace

std::unique_ptr<Solver> makeCachingSolver(std::unique_ptr<Solver> inner,
                                          QueryCache& cache) {
  return std::make_unique<CachingSolver>(std::move(inner), cache);
}

}  // namespace pugpara::smt
