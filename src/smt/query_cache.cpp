#include "smt/query_cache.h"

#include <fstream>
#include <vector>

#include "expr/hash.h"
#include "support/diagnostics.h"

namespace pugpara::smt {

QueryKey queryKey(std::span<const expr::Expr> assertions) {
  return {expr::structuralHash(assertions, 0x5851f42d4c957f2dULL),
          expr::structuralHash(assertions, 0x14057b7ef767814fULL)};
}

QueryKey queryKey(std::span<const expr::Expr> assertions,
                  std::span<const expr::Expr> assumptions) {
  // The query decides the conjunction of the union, so key the union: an
  // incremental checkAssuming query and the equivalent one-shot assertion
  // set share an entry.
  std::vector<expr::Expr> all;
  all.reserve(assertions.size() + assumptions.size());
  all.insert(all.end(), assertions.begin(), assertions.end());
  all.insert(all.end(), assumptions.begin(), assumptions.end());
  return queryKey(all);
}

std::optional<CheckResult> QueryCache::lookup(const QueryKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void QueryCache::insert(const QueryKey& key, CheckResult result) {
  if (result == CheckResult::Unknown) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.emplace(key, result).second) ++stats_.insertions;
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool QueryCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t hi = 0, lo = 0;
  std::string res;
  while (in >> std::hex >> hi >> lo >> res) {
    CheckResult r;
    if (res == "sat") r = CheckResult::Sat;
    else if (res == "unsat") r = CheckResult::Unsat;
    else return false;
    if (entries_.emplace(QueryKey{hi, lo}, r).second) ++stats_.insertions;
  }
  return in.eof();
}

bool QueryCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  std::lock_guard<std::mutex> lock(mu_);
  out << std::hex;
  for (const auto& [key, result] : entries_)
    out << key.hi << ' ' << key.lo << ' ' << toString(result) << '\n';
  return static_cast<bool>(out);
}

namespace {

class CachingSolver final : public Solver {
 public:
  CachingSolver(std::unique_ptr<Solver> inner, QueryCache& cache)
      : inner_(std::move(inner)), cache_(cache) {}

  void push() override {
    flush();
    scopes_.push_back(assertions_.size());
    inner_->push();
  }

  void pop() override {
    require(!scopes_.empty(), "CachingSolver::pop without push");
    flush();
    assertions_.resize(scopes_.back());
    flushed_ = assertions_.size();
    scopes_.pop_back();
    inner_->pop();
  }

  void add(expr::Expr assertion) override {
    require(assertion.sort().isBool(), "asserted expression must be Bool");
    assertions_.push_back(assertion);
  }

  CheckResult check() override {
    const QueryKey key = queryKey(assertions_);
    if (auto cached = cache_.lookup(key)) {
      // Unsat needs no model: the backend never sees the query. Sat still
      // solves (the caller will want the model) but the hit is recorded.
      if (*cached == CheckResult::Unsat) return CheckResult::Unsat;
    }
    flush();
    CheckResult r = inner_->check();
    cache_.insert(key, r);
    return r;
  }

  CheckResult checkAssuming(std::span<const expr::Expr> assumptions) override {
    const QueryKey key = queryKey(assertions_, assumptions);
    if (auto cached = cache_.lookup(key)) {
      if (*cached == CheckResult::Unsat) return CheckResult::Unsat;
    }
    flush();
    CheckResult r = inner_->checkAssuming(assumptions);
    cache_.insert(key, r);
    return r;
  }

  [[nodiscard]] std::unique_ptr<Model> model() override {
    return inner_->model();
  }

  void setTimeoutMs(uint32_t ms) override { inner_->setTimeoutMs(ms); }
  void requestStop() override { inner_->requestStop(); }

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+cache";
  }

 private:
  void flush() {
    for (; flushed_ < assertions_.size(); ++flushed_)
      inner_->add(assertions_[flushed_]);
  }

  std::unique_ptr<Solver> inner_;
  QueryCache& cache_;
  std::vector<expr::Expr> assertions_;
  std::vector<size_t> scopes_;
  size_t flushed_ = 0;
};

}  // namespace

std::unique_ptr<Solver> makeCachingSolver(std::unique_ptr<Solver> inner,
                                          QueryCache& cache) {
  return std::make_unique<CachingSolver>(std::move(inner), cache);
}

}  // namespace pugpara::smt
