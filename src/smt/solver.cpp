#include "smt/solver.h"

#include "support/diagnostics.h"

namespace pugpara::smt {

CheckResult Solver::checkAssuming(std::span<const expr::Expr> assumptions) {
  push();
  for (expr::Expr a : assumptions) add(a);
  CheckResult r = check();
  pop();
  return r;
}

const char* toString(CheckResult r) {
  switch (r) {
    case CheckResult::Sat: return "sat";
    case CheckResult::Unsat: return "unsat";
    case CheckResult::Unknown: return "unknown";
  }
  return "?";
}

std::unique_ptr<Solver> makeSolver(Backend backend) {
  switch (backend) {
    case Backend::Z3: return makeZ3Solver();
    case Backend::Mini: return makeMiniSolver();  // NOLINT
  }
  throw PugError("unknown solver backend");
}

std::unique_ptr<Solver> makeSolver(Backend backend, const MiniTuning& tuning) {
  switch (backend) {
    case Backend::Z3: return makeZ3Solver();
    case Backend::Mini: return makeMiniSolver(tuning);  // NOLINT
  }
  throw PugError("unknown solver backend");
}

// makeMiniSolver is defined in smt/mini/mini_solver.cpp.

}  // namespace pugpara::smt
