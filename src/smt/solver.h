// Backend-independent SMT solver interface.
//
// Two implementations exist:
//  * Z3Solver (z3_solver.cpp)  — the solver the paper used; supports
//    quantified formulas natively.
//  * MiniSolver (smt/mini/...) — a from-scratch bit-blasting CDCL solver;
//    rejects quantifiers with Unknown, which mirrors the paper's observation
//    that quantified formulas defeat the SMT solvers of the day and motivates
//    PUGpara's quantifier-elimination machinery (Sec. IV-D).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "expr/expr.h"

namespace pugpara::smt {

enum class CheckResult { Sat, Unsat, Unknown };

[[nodiscard]] const char* toString(CheckResult r);

/// A satisfying assignment. Valid until the owning Solver is mutated
/// (add/push/pop/check) or destroyed.
class Model {
 public:
  virtual ~Model() = default;

  /// Evaluates an arbitrary bit-vector expression under the model
  /// (model-completion semantics: unconstrained subterms get some value).
  [[nodiscard]] virtual uint64_t evalBv(expr::Expr e) const = 0;
  /// Evaluates an arbitrary Bool expression under the model.
  [[nodiscard]] virtual bool evalBool(expr::Expr e) const = 0;
};

class Solver {
 public:
  virtual ~Solver() = default;

  virtual void push() = 0;
  virtual void pop() = 0;
  /// Asserts a Bool-sorted expression.
  virtual void add(expr::Expr assertion) = 0;
  virtual CheckResult check() = 0;

  /// MiniSat-style solve-under-assumptions: checks the asserted formulas
  /// conjoined with `assumptions` WITHOUT making the assumptions part of the
  /// solver state. Incremental backends keep everything learned from the
  /// asserted prefix (learnt clauses, variable activities, bit-blasting)
  /// across calls, so a long-lived solver answering many assumption-only
  /// queries over one shared prefix is far cheaper than a fresh solver per
  /// query. Every assumption must be Bool-sorted. After a Sat answer model()
  /// reflects prefix ∧ assumptions. The default implementation falls back to
  /// push/add/check/pop for backends without native support.
  virtual CheckResult checkAssuming(std::span<const expr::Expr> assumptions);

  /// Returns the model after a Sat check(). PugError otherwise.
  [[nodiscard]] virtual std::unique_ptr<Model> model() = 0;

  /// Soft wall-clock budget per check() call; 0 = unlimited.
  virtual void setTimeoutMs(uint32_t ms) = 0;

  /// Cooperative cancellation: asks an in-flight check() to give up and
  /// return Unknown as soon as it can. The ONLY Solver method that may be
  /// called from a different thread than the one running check(). Sticky —
  /// a stopped solver stays stopped (portfolio losers are discarded, never
  /// reused). Default: no-op for backends without an interrupt mechanism.
  virtual void requestStop() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

enum class Backend { Z3, Mini };

/// MiniSMT tuning: every raw-speed technique individually toggleable (the
/// ablation bench and the fuzz suite flip them one at a time), plus the
/// in-process seed portfolio width. Ignored by the Z3 backend.
struct MiniTuning {
  bool lbd = true;        // LBD-driven learnt-clause management
  bool chrono = true;     // chronological backtracking for shallow conflicts
  bool inprocess = true;  // root-level subsumption + variable elimination
  bool rewrite = true;    // word-level rewriter before bit-blasting
  /// Number of SAT solver clones racing on the shared CNF with diverse
  /// restart/branching/phase seeds and learnt-clause sharing; <= 1 = off.
  unsigned portfolio = 1;
  uint64_t seed = 0;  // base seed for clone diversification
};

/// Factory. Every solver instance is single-threaded and owns its backend
/// state; create one per verification task. (The seed portfolio races its
/// clones on internal threads, but the Solver object itself must still be
/// driven from one thread.)
[[nodiscard]] std::unique_ptr<Solver> makeSolver(Backend backend);
[[nodiscard]] std::unique_ptr<Solver> makeSolver(Backend backend,
                                                 const MiniTuning& tuning);
[[nodiscard]] std::unique_ptr<Solver> makeZ3Solver();
[[nodiscard]] std::unique_ptr<Solver> makeMiniSolver();
[[nodiscard]] std::unique_ptr<Solver> makeMiniSolver(const MiniTuning& tuning);

}  // namespace pugpara::smt
