// Race and performance-bug checking, symbolically (any #threads) AND
// dynamically (the VM's GRace-style monitors) — the two methodology rows of
// the paper's Table I, side by side on the same kernels.
//
// Build & run:   cmake --build build && ./build/examples/race_and_banks
#include <cstdio>

#include "check/session.h"
#include "exec/compiler.h"
#include "exec/machine.h"
#include "kernels/corpus.h"
#include "support/rng.h"

namespace {

using namespace pugpara;

/// Dynamic check: run on ONE concrete configuration with monitors armed.
void dynamicCheck(const char* name, uint32_t width) {
  const auto& e = kernels::entry(name);
  auto prog = lang::parseAndAnalyze(kernels::sourceFor(e, width));
  auto compiled = exec::compile(*prog->kernels[0]);

  exec::LaunchParams p;
  p.grid = {e.defaultGrid.gdimX, e.defaultGrid.gdimY, 1};
  p.block = {e.defaultGrid.bdimX, e.defaultGrid.bdimY, e.defaultGrid.bdimZ};
  p.width = width;
  p.monitors.enabled = true;

  SplitMix64 rng(99);
  std::vector<exec::Buffer> bufs;
  for (const auto& param : prog->kernels[0]->params) {
    if (param->type.isPointer) {
      exec::Buffer b(param->name, 512);
      for (size_t i = 0; i < b.size(); ++i) b.store(i, rng.below(64));
      bufs.push_back(std::move(b));
    } else {
      p.scalarArgs.push_back(e.defaultGrid.gdimX * e.defaultGrid.bdimX);
    }
  }
  auto r = exec::launch(compiled, p, bufs);
  std::printf("  dynamic  (%s): %zu race(s), %zu bank conflict(s), %zu "
              "uncoalesced access(es)%s\n",
              e.defaultGrid.str().c_str(), r.races.size(),
              r.bankConflicts.size(), r.uncoalesced.size(),
              r.completed ? "" : (" [" + r.error + "]").c_str());
  for (const auto& race : r.races)
    std::printf("           %s\n", race.str().c_str());
}

void symbolicCheck(const char* name, uint32_t width,
                   const check::CheckOptions& opts) {
  check::VerificationSession session(kernels::combinedSource({name}, width));
  check::Report races = session.races(name, opts);
  check::Report perf = session.performance(name, opts);
  std::printf("  symbolic (any #threads): races: %s | perf: %s\n",
              check::toString(races.outcome), perf.detail.c_str());
}

}  // namespace

int main() {
  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;
  opts.width = 8;

  std::printf("== racyHistogram: a real race ==\n");
  symbolicCheck("racyHistogram", 8, opts);
  dynamicCheck("racyHistogram", 8);

  std::printf("\n== transposeNaive: race-free but uncoalesced ==\n");
  symbolicCheck("transposeNaive", 8, opts);
  dynamicCheck("transposeNaive", 8);

  std::printf("\n== reduceStrided: race-free, bank conflicts at 64 threads "
              "==\n");
  check::CheckOptions wide = opts;
  wide.width = 16;
  wide.concretize = {{"bdim.x", 64}, {"bdim.y", 1}, {"bdim.z", 1}};
  symbolicCheck("reduceStrided", 16, wide);

  std::printf("\nNote how the dynamic monitors see only the one executed\n"
              "configuration, while the symbolic checkers quantify over all "
              "of them\n(Table I of the paper).\n");
  return 0;
}
