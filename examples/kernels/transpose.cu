
// Naive matrix transpose (CUDA SDK 2.0 "transpose_naive"), with the paper's
// functional-correctness postcondition. Global writes are not coalesced.
void transposeNaive(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.z == 1);
  assume(width >= 0 && width <= 15 && height >= 0 && height <= 15);
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if (xIndex < width && yIndex < height) {
    int index_in = xIndex + width * yIndex;
    int index_out = yIndex + height * xIndex;
    odata[index_out] = idata[index_in];
  }
  int i, j;
  postcond(i >= 0 && j >= 0 && i < width && j < height =>
           odata[i * height + j] == idata[j * width + i]);
}

// Optimized transpose: coalesced global accesses through a padded shared
// tile (the +1 avoids bank conflicts). Correct only for square blocks —
// hence the bdim.x == bdim.y validity assumption.
void transposeOpt(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.x == bdim.y && bdim.z == 1);
  assume(width >= 0 && width <= 15 && height >= 0 && height <= 15);
  __shared__ int block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}

// The optimized transpose WITHOUT the square-block validity assumption:
// PUGpara reveals the hidden assumption (the paper's '*' configurations).
void transposeOptNoSquare(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  assume(bdim.z == 1);
  assume(width >= 0 && width <= 15 && height >= 0 && height <= 15);
  __shared__ int block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}
