
// Elementwise vector addition: the quickstart kernel.
void vecAdd(int *c, int *a, int *b, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) c[i] = a[i] + b[i];
  int j;
  postcond(j >= 0 && j < n => c[j] == a[j] + b[j]);
}

// saxpy: c = alpha * a + b.
void saxpy(int *c, int *a, int *b, int alpha, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) c[i] = alpha * a[i] + b[i];
  int j;
  postcond(j >= 0 && j < n => c[j] == alpha * a[j] + b[j]);
}

// Histogram without atomics: two threads hitting the same bin race. A
// deliberately racy kernel for exercising the race checkers.
void racyHistogram(int *bins, int *data) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.x == 1 && gdim.y == 1);
  bins[data[tid.x] % 64] += 1;
}
