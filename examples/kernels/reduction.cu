
// Interleaved reduction with the slow modulo test (SDK "reduce0").
void reduceMod(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1 && bdim.x <= 15);
  assume((bdim.x & (bdim.x - 1)) == 0);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}

// Interleaved reduction with strided indexing: the modulo is gone but the
// access pattern causes shared-memory bank conflicts (SDK "reduce1").
void reduceStrided(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1 && bdim.x <= 15);
  assume((bdim.x & (bdim.x - 1)) == 0);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    int index = 2 * k * tid.x;
    if (index < bdim.x)
      sdata[index] += sdata[index + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}

// Sequential-addressing reduction (SDK "reduce2"): conflict-free and
// coalesced; iterates the stride DOWNWARDS, so equivalence against the
// interleaved versions needs the commutativity argument of Sec. IV-E.
void reduceSequential(int *g_odata, int *g_idata) {
  assume(bdim.y == 1 && bdim.z == 1 && gdim.y == 1 && bdim.x <= 15);
  assume((bdim.x & (bdim.x - 1)) == 0);
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = bdim.x / 2; k > 0; k = k / 2) {
    if (tid.x < k)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
