// The paper's flagship scenario (Sec. II): check that the memory-coalescing
// optimization of the matrix transpose preserves semantics — for any number
// of threads — and reveal the optimized kernel's hidden square-block
// assumption.
//
// Build & run:   cmake --build build && ./build/examples/equivalence_transpose
#include <cstdio>

#include "check/session.h"
#include "kernels/corpus.h"

int main() {
  using namespace pugpara;
  constexpr uint32_t kWidth = 8;

  check::VerificationSession session(kernels::combinedSource(
      {"transposeNaive", "transposeOpt", "transposeOptNoSquare"}, kWidth));

  // 1. naive vs optimized, "+C": the block extent is pinned to 4x4 but the
  //    grid — and with it the thread count — stays symbolic.
  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;
  opts.width = kWidth;
  opts.concretize = {{"bdim.x", 4}, {"bdim.y", 4}, {"bdim.z", 1}};

  std::printf("== transposeNaive vs transposeOpt (+C, any grid) ==\n");
  check::Report ok = session.equivalence("transposeNaive", "transposeOpt",
                                         opts);
  std::printf("%s\n\n", ok.str().c_str());

  // 2. Drop the square-block assumption: PUGpara finds a non-square
  //    configuration on which the optimization is wrong, and the VM replay
  //    demonstrates the disagreement concretely.
  check::CheckOptions hunt;
  hunt.method = check::Method::ParameterizedBugHunt;
  hunt.width = kWidth;

  std::printf("== transposeNaive vs transposeOptNoSquare (bug hunt) ==\n");
  check::Report bug = session.equivalence("transposeNaive",
                                          "transposeOptNoSquare", hunt);
  std::printf("%s\n\n", bug.str().c_str());
  if (!bug.counterexamples.empty()) {
    const auto& cex = bug.counterexamples[0];
    std::printf("hidden assumption revealed: the optimized transpose needs "
                "square blocks;\nwitness block is %llux%llu\n",
                static_cast<unsigned long long>(cex.bdimX),
                static_cast<unsigned long long>(cex.bdimY));
  }

  // 3. The same question answered the old-fashioned way, for one concrete
  //    4x4-blocks configuration (Sec. III) — what PUG could do.
  check::CheckOptions fixed;
  fixed.method = check::Method::NonParameterized;
  fixed.width = 16;
  fixed.grid = encode::GridConfig{2, 2, 4, 4, 1};

  std::printf("== non-parameterized cross-check (64 threads) ==\n");
  check::VerificationSession session16(kernels::combinedSource(
      {"transposeNaive", "transposeOpt"}, 16));
  check::Report np = session16.equivalence("transposeNaive", "transposeOpt",
                                           fixed);
  std::printf("%s\n", np.str().c_str());

  return ok.outcome == check::Outcome::Verified &&
                 bug.outcome == check::Outcome::BugFound &&
                 np.outcome == check::Outcome::Verified
             ? 0
             : 1;
}
