// Quickstart: verify the functional correctness of a small kernel for an
// ARBITRARY number of threads, then break it and watch the checker produce
// a replay-confirmed counterexample.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "check/session.h"

int main() {
  using namespace pugpara;

  // A kernel with its specification: every thread writes one cell, and the
  // postcondition pins the whole output. `n` and the launch configuration
  // stay symbolic — the proof covers every grid and every input.
  const char* source = R"(
void vecAdd(int *c, int *a, int *b, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) c[i] = a[i] + b[i];
  int j;
  postcond(j >= 0 && j < n => c[j] == a[j] + b[j]);
}

void vecAddBroken(int *c, int *a, int *b, int n) {
  assume(n == gdim.x * bdim.x && bdim.y == 1 && bdim.z == 1 && gdim.y == 1);
  int i = bid.x * bdim.x + tid.x;
  if (i < n) c[i] = a[i] - b[i];   // oops
  int j;
  postcond(j >= 0 && j < n => c[j] == a[j] + b[j]);
}
)";

  check::VerificationSession session(source);

  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;
  opts.width = 8;  // bit-width of the symbolic model

  std::printf("== checking vecAdd (parameterized: any #threads) ==\n");
  check::Report good = session.postconditions("vecAdd", opts);
  std::printf("%s\n\n", good.str().c_str());

  std::printf("== checking vecAddBroken ==\n");
  check::Report bad = session.postconditions("vecAddBroken", opts);
  std::printf("%s\n\n", bad.str().c_str());

  std::printf("== and their equivalence ==\n");
  check::Report eq = session.equivalence("vecAdd", "vecAddBroken", opts);
  std::printf("%s\n", eq.str().c_str());

  return good.outcome == check::Outcome::Verified &&
                 bad.outcome == check::Outcome::BugFound &&
                 eq.outcome == check::Outcome::BugFound
             ? 0
             : 1;
}
