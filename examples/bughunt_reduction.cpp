// Bug hunting across a mutant population (the paper's Table III workflow):
// inject address/guard bugs into the strided reduction and check each
// mutant against the original, parametrically.
//
// Build & run:   cmake --build build && ./build/examples/bughunt_reduction
#include <cstdio>

#include "check/session.h"
#include "kernels/corpus.h"
#include "kernels/mutate.h"

int main() {
  using namespace pugpara;
  constexpr uint32_t kWidth = 8;

  auto base = lang::parseAndAnalyze(
      kernels::combinedSource({"reduceStrided"}, kWidth));
  const lang::Kernel& original = *base->kernels[0];

  auto mutants = kernels::enumerateMutants(original, /*maxPerKind=*/2);
  std::printf("generated %zu mutants of reduceStrided\n\n", mutants.size());

  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;  // exact frames: misses nothing
  opts.width = kWidth;
  opts.solverTimeoutMs = 60000;

  int caught = 0, equivalent = 0, inconclusive = 0;
  for (auto& m : mutants) {
    // Build a session holding the original and this mutant.
    auto prog = lang::parseAndAnalyze(
        kernels::combinedSource({"reduceStrided"}, kWidth));
    std::string mutantName = m.kernel->name;
    prog->kernels.push_back(std::move(m.kernel));
    check::VerificationSession session(std::move(prog));

    check::Report r = session.equivalence("reduceStrided", mutantName, opts);
    const char* verdict = "?";
    switch (r.outcome) {
      case check::Outcome::BugFound:
        verdict = "BUG";
        ++caught;
        break;
      case check::Outcome::Verified:
        // Some mutations are semantics-preserving (e.g. <= where < cannot
        // be reached) — proving THAT is also useful information.
        verdict = "equivalent";
        ++equivalent;
        break;
      default:
        verdict = "inconclusive";
        ++inconclusive;
        break;
    }
    std::printf("%-14s %-38s %.2fs  %s\n", verdict, m.description.c_str(),
                r.solveSeconds,
                r.counterexamples.empty()
                    ? ""
                    : r.counterexamples[0].str().c_str());
  }

  std::printf("\n%d bugs found, %d proved equivalent, %d inconclusive "
              "(of %zu mutants)\n",
              caught, equivalent, inconclusive, mutants.size());
  return caught > 0 ? 0 : 1;
}
