// Table III reproduction: time to FIND the bug when checking a correct
// kernel against a buggy version (address off-by-one on a shared access —
// the paper's injected-bug class), non-parameterized at n = 4 / 8 / 16
// versus the parameterized method.
//
// Expected shape: every method finds the bug, but the non-parameterized
// cost grows with n while the parameterized time is flat and small.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "kernels/mutate.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

struct Row {
  const char* label;
  const char* base;     // correct kernel (compared against its mutant)
  uint32_t width;
  bool transpose;
  kernels::MutationKind kind;
  size_t site;
};

std::unique_ptr<lang::Program> withMutant(const Row& row,
                                          std::string* mutantName) {
  auto prog = lang::parseAndAnalyze(
      kernels::combinedSource({row.base}, row.width));
  auto mutant = kernels::mutateAt(*prog->kernels[0], row.kind, row.site);
  *mutantName = mutant.kernel->name;
  prog->kernels.push_back(std::move(mutant.kernel));
  return prog;
}

}  // namespace

int main() {
  const Row rows[] = {
      {"Transpose (16b)", "transposeOpt", 16, true,
       kernels::MutationKind::AddressOffByOne, 3},
      {"Transpose (32b)", "transposeOpt", 32, true,
       kernels::MutationKind::AddressOffByOne, 3},
      {"Reduction (8b)", "reduceStrided", 8, false,
       kernels::MutationKind::AddressOffByOne, 2},
      {"Reduction (16b)", "reduceStrided", 16, false,
       kernels::MutationKind::AddressOffByOne, 2},
      {"Reduction (32b)", "reduceStrided", 32, false,
       kernels::MutationKind::AddressOffByOne, 2},
  };

  std::printf("Table III: equivalence checking, buggy versions "
              "(seconds to find the bug; * = found; T.O > %.0fs)\n\n",
              timeoutMs() / 1000.0);
  printRow("Kernel", {"NP n=4", "NP n=8", "NP n=16", "Param", "Param-hunt"});

  // One engine batch for the whole table (see table2). Inapplicable cells
  // ("n/a") are decided statically and skipped in the batch.
  std::vector<std::unique_ptr<check::VerificationSession>> sessions;
  std::vector<engine::BoundCheck> checks;
  std::vector<std::vector<int>> cellIndex;  // row -> col -> batch pos / -1
  for (const Row& row : rows) {
    std::string mutantName;
    sessions.push_back(std::make_unique<check::VerificationSession>(
        withMutant(row, &mutantName)));
    const check::VerificationSession* s = sessions.back().get();

    std::vector<int> cols;
    auto push = [&](const check::CheckOptions& o) {
      cols.push_back(static_cast<int>(checks.size()));
      checks.push_back({s, {check::CheckKind::Equivalence, row.base,
                            mutantName, o, {}, 0}});
    };
    for (uint32_t n : {4u, 8u, 16u}) {
      // The corpus kernels carry a width-scaled validity bound on bdim.x;
      // grids beyond it are vacuous, so mark them inapplicable.
      if (!row.transpose && n > (uint64_t{1} << (row.width / 2)) - 1) {
        cols.push_back(-1);
        continue;
      }
      check::CheckOptions o;
      o.method = check::Method::NonParameterized;
      o.width = row.width;
      o.solverTimeoutMs = timeoutMs();
      o.grid = row.transpose ? transposeGrid(n) : reductionGrid(n);
      o.replayCounterexamples = false;
      push(o);
    }
    // Exact parameterized check (proves OR finds, any #threads) and the
    // paper's fast bug-hunting configuration (Sec. IV-D, frames dropped).
    // Their strengths are complementary: write-set-shifting bugs need the
    // exact frames, while bug-hunting scales to widths where the exact
    // check times out.
    for (auto method : {check::Method::Parameterized,
                        check::Method::ParameterizedBugHunt}) {
      check::CheckOptions o;
      o.method = method;
      o.width = row.width;
      o.solverTimeoutMs = timeoutMs();
      o.replayCounterexamples = false;
      push(o);
    }
    cellIndex.push_back(std::move(cols));
  }

  engine::VerificationEngine eng(benchEngineOptions());
  const std::vector<check::CheckResult> results = eng.runAll(checks);

  for (size_t r = 0; r < std::size(rows); ++r) {
    std::vector<std::string> cells;
    for (int pos : cellIndex[r])
      cells.push_back(pos < 0 ? "n/a" : cell(results[pos].report));
    printRow(rows[r].label, cells);
  }

  std::printf("\nPaper's Table III shape: every injected bug is exposed by "
              "some method and the\nparameterized times are n-independent. "
              "The two parameterized columns show the\nSec. IV-D trade-off: "
              "bug-hunt mode is fast but misses write-set-shifting bugs\n"
              "(no '*'), while the exact frames catch everything at the "
              "price of timing out\non the widest transpose.\n");
  return 0;
}
