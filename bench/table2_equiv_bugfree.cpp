// Table II reproduction: SMT time for equivalence checking of bug-free SDK
// kernel pairs — the non-parameterized method at n = 4 / 8 / 16(+C) / 32(+C)
// threads versus the parameterized method with (-C) fully symbolic and (+C)
// concretized configurations.
//
// Expected shape (the paper's, modulo hardware): non-parameterized cost
// explodes with n and bit-width into timeouts; the parameterized method is
// n-independent, times out on the fully symbolic transpose, and is rescued
// by "+C" concretization.
#include <memory>
#include <vector>

#include "bench_util.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

struct Pair {
  const char* label;
  const char* src;
  const char* tgt;
  uint32_t width;
  bool transpose;  // grid family
};

check::CheckRequest nonParam(const Pair& p, uint32_t threads,
                             bool concretizeSizes) {
  check::CheckOptions o;
  o.method = check::Method::NonParameterized;
  o.width = p.width;
  o.solverTimeoutMs = timeoutMs();
  o.grid = p.transpose ? transposeGrid(threads) : reductionGrid(threads);
  // Paper-faithful Sec. III encoding: one SSA array variable and one
  // defining equation per update (our default substitution encoding is
  // stronger; ablate_thread_scaling compares the two styles).
  o.ssaEquations = true;
  if (concretizeSizes && p.transpose) {
    o.concretize["width"] =
        static_cast<uint64_t>(o.grid->gdimX) * o.grid->bdimX;
    o.concretize["height"] =
        static_cast<uint64_t>(o.grid->gdimY) * o.grid->bdimY;
  }
  o.replayCounterexamples = false;  // measure pure solving, as the paper did
  return {check::CheckKind::Equivalence, p.src, p.tgt, o, {}, 0};
}

check::CheckRequest param(const Pair& p, bool concretizeConfig) {
  check::CheckOptions o;
  o.method = check::Method::Parameterized;
  o.width = p.width;
  o.solverTimeoutMs = timeoutMs();
  if (concretizeConfig) {
    if (p.transpose) {
      // The paper's "+C": concretize enough symbolic inputs for the solver
      // to cope — here the block extent and the matrix sizes (the grid
      // stays symbolic; the no-overflow axiom pins it via the assumes).
      o.concretize = {{"bdim.x", 4}, {"bdim.y", 4}, {"bdim.z", 1},
                      {"width", 8},  {"height", 8}};
    } else {
      o.concretize = {{"bdim.x", 8}, {"bdim.y", 1}, {"bdim.z", 1}};
    }
  }
  o.replayCounterexamples = false;
  return {check::CheckKind::Equivalence, p.src, p.tgt, o, {}, 0};
}

}  // namespace

int main() {
  const Pair pairs[] = {
      {"Transpose (8b)", "transposeNaive", "transposeOpt", 8, true},
      {"Transpose (16b)", "transposeNaive", "transposeOpt", 16, true},
      {"Transpose (32b)", "transposeNaive", "transposeOpt", 32, true},
      {"Reduction (8b)", "reduceMod", "reduceStrided", 8, false},
      {"Reduction (12b)", "reduceMod", "reduceStrided", 12, false},
  };

  std::printf("Table II: equivalence checking, bug-free kernels "
              "(seconds; T.O > %.0fs; * = difference found)\n\n",
              timeoutMs() / 1000.0);
  printRow("Kernel", {"NP n=4", "NP n=8", "NP n=16+C", "NP n=32+C",
                      "Param -C", "Param +C"});

  // The whole table is one engine batch: every (pair, column) cell is an
  // independent check, so the 30 solver runs fan out across the pool.
  std::vector<std::unique_ptr<check::VerificationSession>> sessions;
  std::vector<engine::BoundCheck> checks;
  for (const Pair& p : pairs) {
    sessions.push_back(std::make_unique<check::VerificationSession>(
        kernels::combinedSource({p.src, p.tgt}, p.width)));
    const check::VerificationSession* s = sessions.back().get();
    checks.push_back({s, nonParam(p, 4, false)});
    checks.push_back({s, nonParam(p, 8, false)});
    checks.push_back({s, nonParam(p, 16, true)});
    checks.push_back({s, nonParam(p, 32, true)});
    checks.push_back({s, param(p, false)});
    checks.push_back({s, param(p, true)});
  }
  engine::VerificationEngine eng(benchEngineOptions());
  const std::vector<check::CheckResult> results = eng.runAll(checks);

  constexpr size_t kCols = 6;
  for (size_t row = 0; row < std::size(pairs); ++row) {
    std::vector<std::string> cells;
    for (size_t col = 0; col < kCols; ++col)
      cells.push_back(cell(results[row * kCols + col].report));
    printRow(pairs[row].label, cells);
  }

  std::printf("\nPaper's Table II shape, reproduced: the parameterized "
              "method cannot digest the\nfully symbolic transpose (-C "
              "times out, as in the paper) but +C concretization\nrescues "
              "it; the reduction is parameterized-checkable outright via "
              "loop\nalignment, n-independently. One deviation: 2026-era "
              "Z3 solves the fixed-n\nnon-parameterized instances quickly "
              "where the paper's 2012 solver timed out —\nthe blow-up "
              "survives in formula size (see ablate_thread_scaling), not "
              "in\nwall-clock.\n");
  return 0;
}
