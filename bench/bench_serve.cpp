// Serve-mode benchmark: quantifies what the daemon buys over one-shot CLI
// invocations on the built-in corpus, and gates the two properties the
// daemon must not lose — verdict equality with the batch path and a >=10x
// latency win on warm re-submission.
//
// Four phases, identical check options throughout:
//   cold      one-shot baseline: fresh session + fresh engine per task
//             (what `pugpara FILE --all` pays every invocation)
//   serveCold first submission to a freshly started daemon (empty cache dir)
//   warm      same daemon, same requests again — result-memo hot path
//   diskWarm  daemon restarted on the same cache dir — persistence hot path
//
// Emits BENCH_serve.json. Exit 1 when a gate fails:
//   * any verdict differs between the one-shot baseline and any serve phase
//   * warm or disk-warm total latency is not >=10x below the cold total
//
// Env: PUGPARA_TIMEOUT_MS (solver budget, default 20000),
//      PUGPARA_SERVE_BACKEND=z3|mini (default mini),
//      PUGPARA_SERVE_WIDTH (default 8).
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace pugpara;
using Clock = std::chrono::steady_clock;

struct TaskRun {
  std::string kernel;
  double coldMs = 0, serveColdMs = 0, warmMs = 0, diskWarmMs = 0;
  // Canonical "kind=outcome;..." string per phase, for the equality gate.
  std::string coldVerdicts, serveColdVerdicts, warmVerdicts, diskWarmVerdicts;
};

struct Percentiles {
  double p50 = 0, p90 = 0, max = 0;
};

Percentiles percentiles(std::vector<double> ms) {
  Percentiles p;
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  p.p50 = ms[ms.size() / 2];
  p.p90 = ms[std::min(ms.size() - 1, (ms.size() * 9) / 10)];
  p.max = ms.back();
  return p;
}

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string percentilesJson(const Percentiles& p) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "{\"p50\":%.3f,\"p90\":%.3f,\"max\":%.3f}",
                p.p50, p.p90, p.max);
  return buf;
}

/// Canonical verdict string of a finished check list, sorted so streaming
/// order (serve) and request order (batch) compare equal.
std::string verdictString(std::vector<std::string> parts) {
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ';';
    out += p;
  }
  return out;
}

check::CheckOptions benchCheckOptions() {
  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;
  opts.solverTimeoutMs = bench::timeoutMs();
  opts.backend = smt::Backend::Mini;
  if (const char* env = std::getenv("PUGPARA_SERVE_BACKEND"))
    if (std::string(env) == "z3") opts.backend = smt::Backend::Z3;
  opts.width = 8;
  if (const char* env = std::getenv("PUGPARA_SERVE_WIDTH"))
    opts.width = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  return opts;
}

/// One-shot baseline for a single task: a brand-new session and engine, the
/// way every separate CLI invocation starts.
std::pair<double, std::string> runColdTask(const kernels::CorpusEntry& e,
                                           const check::CheckOptions& opts) {
  const Clock::time_point t0 = Clock::now();
  check::VerificationSession session(kernels::sourceFor(e, opts.width));
  std::vector<check::CheckRequest> requests;
  for (const check::CheckKind kind :
       {check::CheckKind::Races, check::CheckKind::Asserts,
        check::CheckKind::Postconditions}) {
    check::CheckRequest r;
    r.kind = kind;
    r.kernel = e.name;
    r.options = opts;
    requests.push_back(std::move(r));
  }
  engine::EngineOptions eopts;
  eopts.jobs = 1;
  engine::VerificationEngine engine(eopts);
  const std::vector<check::CheckResult> results =
      engine.runAll(session, requests);
  std::vector<std::string> parts;
  for (const auto& r : results)
    parts.push_back(std::string(check::toString(r.kind)) + "=" +
                    check::toString(r.report.outcome));
  return {msSince(t0), verdictString(parts)};
}

/// Submits one task over the socket; returns (latencyMs, verdicts, memoHits).
struct ServeRun {
  double ms = 0;
  std::string verdicts;
  size_t memoHits = 0;
  bool ok = false;
};

ServeRun runServeTask(serve::Client& client, const kernels::CorpusEntry& e,
                      const check::CheckOptions& opts) {
  serve::Request req;
  req.id = "bench-" + e.name;
  req.kind = "all";
  req.source = kernels::sourceFor(e, opts.width);
  req.options = opts;
  const Clock::time_point t0 = Clock::now();
  const serve::SubmitOutcome out = serve::submit(client, req);
  ServeRun run;
  run.ms = msSince(t0);
  run.memoHits = out.memoHits;
  run.ok = out.terminal == "done";
  if (!run.ok) {
    std::fprintf(stderr, "bench_serve: %s: terminal=%s %s\n", e.name.c_str(),
                 out.terminal.c_str(), out.error.c_str());
    return run;
  }
  std::vector<std::string> parts;
  for (const auto& [cached, result] : out.results) {
    const serve::jsonp::Value* report = result.find("report");
    parts.push_back(result.getString("kind", "?") + "=" +
                    (report ? report->getString("outcome", "?") : "?"));
  }
  run.verdicts = verdictString(parts);
  return run;
}

}  // namespace

int main() {
  const check::CheckOptions opts = benchCheckOptions();
  const std::string cacheDir = "bench_serve_cache.tmp";
  const std::string socketPath = "bench_serve.sock";
  std::remove((cacheDir + "/queries.pqc").c_str());
  std::remove((cacheDir + "/queries.pqc.lock").c_str());
  std::remove((cacheDir + "/results.pqr").c_str());
  std::remove((cacheDir + "/results.pqr.lock").c_str());
  ::rmdir(cacheDir.c_str());

  const std::vector<kernels::CorpusEntry>& entries = kernels::corpus();
  std::vector<TaskRun> tasks(entries.size());

  std::printf("== serve bench: %zu corpus tasks, backend=%s width=%u "
              "timeout=%ums ==\n",
              entries.size(), opts.backend == smt::Backend::Mini ? "mini" : "z3",
              opts.width, opts.solverTimeoutMs);

  // Phase 1: one-shot cold baseline.
  for (size_t i = 0; i < entries.size(); ++i) {
    tasks[i].kernel = entries[i].name;
    const auto [ms, verdicts] = runColdTask(entries[i], opts);
    tasks[i].coldMs = ms;
    tasks[i].coldVerdicts = verdicts;
    std::printf("  cold      %-22s %9.2f ms\n", entries[i].name.c_str(), ms);
  }

  serve::ServeOptions sopts;
  sopts.socketPath = socketPath;
  sopts.jobs = 1;  // latency bench: no cross-task parallelism noise
  sopts.cacheDir = cacheDir;
  sopts.defaults = opts;

  auto servePhase = [&](serve::Server& server, const char* label,
                        double TaskRun::*msField,
                        std::string TaskRun::*verdictField) -> size_t {
    serve::Client client;
    std::string err;
    if (!client.connectUnix(socketPath, &err)) {
      std::fprintf(stderr, "bench_serve: connect: %s\n", err.c_str());
      std::exit(1);
    }
    size_t memoHits = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const ServeRun run = runServeTask(client, entries[i], opts);
      if (!run.ok) std::exit(1);
      tasks[i].*msField = run.ms;
      tasks[i].*verdictField = run.verdicts;
      memoHits += run.memoHits;
      std::printf("  %-9s %-22s %9.2f ms  (%zu memo hit(s))\n", label,
                  entries[i].name.c_str(), run.ms, run.memoHits);
    }
    (void)server;
    return memoHits;
  };

  // Phases 2+3: fresh daemon — cold submission, then warm re-submission.
  size_t warmMemoHits = 0;
  {
    serve::Server server(sopts);
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "bench_serve: start: %s\n", err.c_str());
      return 1;
    }
    servePhase(server, "serveCold", &TaskRun::serveColdMs,
               &TaskRun::serveColdVerdicts);
    warmMemoHits =
        servePhase(server, "warm", &TaskRun::warmMs, &TaskRun::warmVerdicts);
    server.stop();
  }

  // Phase 4: new daemon process-equivalent on the same cache dir.
  size_t diskMemoHits = 0;
  smt::AppendLog::Stats diskQueryStore;
  {
    serve::Server server(sopts);
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "bench_serve: restart: %s\n", err.c_str());
      return 1;
    }
    diskMemoHits = servePhase(server, "diskWarm", &TaskRun::diskWarmMs,
                              &TaskRun::diskWarmVerdicts);
    diskQueryStore = server.stats().queryStore;
    server.stop();
  }

  // Totals, percentiles, gates.
  double coldTotal = 0, serveColdTotal = 0, warmTotal = 0, diskWarmTotal = 0;
  std::vector<double> coldMs, serveColdMs, warmMs, diskWarmMs;
  bool verdictEquality = true;
  for (const TaskRun& t : tasks) {
    coldTotal += t.coldMs;
    serveColdTotal += t.serveColdMs;
    warmTotal += t.warmMs;
    diskWarmTotal += t.diskWarmMs;
    coldMs.push_back(t.coldMs);
    serveColdMs.push_back(t.serveColdMs);
    warmMs.push_back(t.warmMs);
    diskWarmMs.push_back(t.diskWarmMs);
    if (t.serveColdVerdicts != t.coldVerdicts ||
        t.warmVerdicts != t.coldVerdicts ||
        t.diskWarmVerdicts != t.coldVerdicts) {
      verdictEquality = false;
      std::fprintf(stderr,
                   "bench_serve: VERDICT MISMATCH %s\n  cold:     %s\n"
                   "  serveCold:%s\n  warm:     %s\n  diskWarm: %s\n",
                   t.kernel.c_str(), t.coldVerdicts.c_str(),
                   t.serveColdVerdicts.c_str(), t.warmVerdicts.c_str(),
                   t.diskWarmVerdicts.c_str());
    }
  }
  const size_t checks = entries.size() * 3;
  const double warmSpeedup = warmTotal > 0 ? coldTotal / warmTotal : 0;
  const double diskSpeedup = diskWarmTotal > 0 ? coldTotal / diskWarmTotal : 0;
  const bool warm10x = warmSpeedup >= 10.0;
  const bool disk10x = diskSpeedup >= 10.0;

  std::printf(
      "\ntotals: cold %.1f ms, serveCold %.1f ms, warm %.1f ms (%.1fx), "
      "diskWarm %.1f ms (%.1fx)\n",
      coldTotal, serveColdTotal, warmTotal, warmSpeedup, diskWarmTotal,
      diskSpeedup);
  std::printf("memo hits: warm %zu/%zu, diskWarm %zu/%zu\n", warmMemoHits,
              checks, diskMemoHits, checks);

  std::ofstream json("BENCH_serve.json");
  json << "{\"bench\":\"serve\",\"config\":{\"tasks\":" << entries.size()
       << ",\"checksPerTask\":3,\"backend\":\""
       << (opts.backend == smt::Backend::Mini ? "mini" : "z3")
       << "\",\"width\":" << opts.width
       << ",\"timeoutMs\":" << opts.solverTimeoutMs << "},\"tasks\":[";
  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskRun& t = tasks[i];
    json << (i ? "," : "") << "{\"kernel\":\"" << t.kernel << "\",\"coldMs\":"
         << t.coldMs << ",\"serveColdMs\":" << t.serveColdMs
         << ",\"warmMs\":" << t.warmMs << ",\"diskWarmMs\":" << t.diskWarmMs
         << ",\"verdicts\":\"" << t.coldVerdicts << "\"}";
  }
  json << "],\"summary\":{\"checks\":" << checks
       << ",\"coldTotalMs\":" << coldTotal
       << ",\"serveColdTotalMs\":" << serveColdTotal
       << ",\"warmTotalMs\":" << warmTotal
       << ",\"diskWarmTotalMs\":" << diskWarmTotal
       << ",\"latencyMs\":{\"cold\":" << percentilesJson(percentiles(coldMs))
       << ",\"serveCold\":" << percentilesJson(percentiles(serveColdMs))
       << ",\"warm\":" << percentilesJson(percentiles(warmMs))
       << ",\"diskWarm\":" << percentilesJson(percentiles(diskWarmMs))
       << "},\"throughputChecksPerSec\":{\"cold\":"
       << (coldTotal > 0 ? 1000.0 * checks / coldTotal : 0)
       << ",\"serveCold\":"
       << (serveColdTotal > 0 ? 1000.0 * checks / serveColdTotal : 0)
       << ",\"warm\":" << (warmTotal > 0 ? 1000.0 * checks / warmTotal : 0)
       << ",\"diskWarm\":"
       << (diskWarmTotal > 0 ? 1000.0 * checks / diskWarmTotal : 0)
       << "},\"cache\":{\"warmMemoHits\":" << warmMemoHits
       << ",\"warmMemoHitRate\":" << (checks ? 1.0 * warmMemoHits / checks : 0)
       << ",\"diskWarmMemoHits\":" << diskMemoHits
       << ",\"diskWarmMemoHitRate\":"
       << (checks ? 1.0 * diskMemoHits / checks : 0)
       << ",\"queryStoreLoaded\":" << diskQueryStore.loaded
       << ",\"queryStoreCorrupt\":" << diskQueryStore.corrupt
       << "},\"speedup\":{\"warmVsCold\":" << warmSpeedup
       << ",\"diskWarmVsCold\":" << diskSpeedup
       << "},\"gates\":{\"verdictEquality\":"
       << (verdictEquality ? "true" : "false")
       << ",\"warm10x\":" << (warm10x ? "true" : "false")
       << ",\"diskWarm10x\":" << (disk10x ? "true" : "false") << "}}}\n";
  json.close();

  if (!verdictEquality) {
    std::fprintf(stderr, "bench_serve: FAIL: verdict equality gate\n");
    return 1;
  }
  if (!warm10x || !disk10x) {
    std::fprintf(stderr,
                 "bench_serve: FAIL: 10x gate (warm %.1fx, diskWarm %.1fx)\n",
                 warmSpeedup, diskSpeedup);
    return 1;
  }
  std::printf("bench_serve: PASS (warm %.1fx, diskWarm %.1fx, verdicts "
              "equal)\n",
              warmSpeedup, diskSpeedup);
  return 0;
}
