// Table I reproduction: the paper's comparison of formal GPU-program
// checkers by methodology. We implement all three methodology rows inside
// this repository and demonstrate each live:
//
//   * PUGpara        — parameterized symbolic analysis (src/para, src/check)
//   * GKLEE-style    — fixed-thread symbolic execution: our non-parameterized
//                      encoder plays this role (concrete grid, symbolic data)
//   * GRace-style    — dynamic instrumentation: the VM's access monitors
//                      (concrete grid, concrete data)
//
// Each methodology is run against the same bug zoo; the matrix shows which
// bugs each finds and whether the verdict covers all configurations.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "exec/compiler.h"
#include "exec/machine.h"
#include "support/rng.h"
#include "support/timer.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

struct Verdict {
  bool found = false;
  bool applicable = true;
  double seconds = 0;
};

std::string mark(const Verdict& v) {
  if (!v.applicable) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s (%.2fs)", v.found ? "yes" : "no",
                v.seconds);
  return buf;
}

Verdict fromReport(const check::Report& r) {
  return {r.outcome == check::Outcome::BugFound,
          r.outcome != check::Outcome::Unsupported, r.totalSeconds};
}

/// Dynamic (GRace-style): one concrete run with monitors; concrete inputs.
Verdict dynamicRun(const std::string& name, uint32_t width,
                   bool lookForRace, bool lookForPerf) {
  const auto& e = kernels::entry(name);
  auto prog = lang::parseAndAnalyze(kernels::sourceFor(e, width));
  auto compiled = exec::compile(*prog->kernels[0]);
  exec::LaunchParams p;
  p.grid = {e.defaultGrid.gdimX, e.defaultGrid.gdimY, 1};
  p.block = {e.defaultGrid.bdimX, e.defaultGrid.bdimY, e.defaultGrid.bdimZ};
  p.width = width;
  p.monitors.enabled = true;
  SplitMix64 rng(4);
  std::vector<exec::Buffer> bufs;
  for (const auto& param : prog->kernels[0]->params) {
    if (param->type.isPointer) {
      exec::Buffer b(param->name, 512);
      for (size_t i = 0; i < b.size(); ++i) b.store(i, rng.below(8));
      bufs.push_back(std::move(b));
    } else {
      p.scalarArgs.push_back(e.defaultGrid.gdimX * e.defaultGrid.bdimX);
    }
  }
  WallTimer t;
  auto r = exec::launch(compiled, p, bufs);
  Verdict v;
  v.seconds = t.seconds();
  v.found = (lookForRace && !r.races.empty()) ||
            (lookForPerf && (!r.bankConflicts.empty() ||
                             !r.uncoalesced.empty()));
  return v;
}

}  // namespace

int main() {
  std::printf("Table I: comparison of GPU-program checking methodologies\n");
  std::printf("(all three implemented in this repository and run live)\n\n");
  std::printf("%-34s %-10s %-12s %-12s\n", "", "PUGpara", "fixed-thread",
              "dynamic");
  std::printf("%-34s %-10s %-12s %-12s\n", "Methodology", "symbolic",
              "symbolic", "instrument.");
  std::printf("%-34s %-10s %-12s %-12s\n", "Program inputs", "symbolic",
              "symbolic", "concrete");
  std::printf("%-34s %-10s %-12s %-12s\n", "Parameterized in #threads?",
              "yes", "no", "no");
  std::printf("\nBug detection on the corpus:\n");

  const uint32_t kTo = timeoutMs();

  // The six symbolic checks (PUGpara + fixed-thread columns of each row)
  // run as one engine batch; the dynamic column is a concrete VM run and
  // stays inline.
  std::vector<std::unique_ptr<check::VerificationSession>> sessions;
  std::vector<engine::BoundCheck> checks;
  auto bind = [&](const std::string& source, check::CheckKind kind,
                  const std::string& k1, const std::string& k2,
                  const check::CheckOptions& o) {
    sessions.push_back(std::make_unique<check::VerificationSession>(source));
    checks.push_back({sessions.back().get(), {kind, k1, k2, o, {}, 0}});
  };

  // Row 1: data race (racyHistogram), parameterized then fixed-thread.
  {
    const std::string src = kernels::combinedSource({"racyHistogram"}, 8);
    check::CheckOptions para;
    para.method = check::Method::Parameterized;
    para.width = 8;
    para.solverTimeoutMs = kTo;
    bind(src, check::CheckKind::Races, "racyHistogram", "", para);
    // Fixed-thread symbolic race check = the same query on one config.
    check::CheckOptions fixedOpt = para;
    fixedOpt.concretize = {{"bdim.x", 8},  {"bdim.y", 1}, {"bdim.z", 1},
                           {"gdim.x", 1},  {"gdim.y", 1}};
    bind(src, check::CheckKind::Races, "racyHistogram", "", fixedOpt);
  }

  // Row 2: performance bug (transposeNaive, uncoalesced).
  {
    const std::string src = kernels::combinedSource({"transposeNaive"}, 8);
    check::CheckOptions para;
    para.method = check::Method::Parameterized;
    para.width = 8;
    para.solverTimeoutMs = kTo;
    bind(src, check::CheckKind::Performance, "transposeNaive", "", para);
    check::CheckOptions fixedOpt = para;
    fixedOpt.concretize = {{"bdim.x", 2}, {"bdim.y", 2}, {"bdim.z", 1},
                           {"gdim.x", 2}, {"gdim.y", 2}};
    bind(src, check::CheckKind::Performance, "transposeNaive", "", fixedOpt);
  }

  // Row 3: functional equivalence bug (non-square transpose) — only the
  // symbolic methods can even pose the question; the dynamic row needs the
  // lucky configuration AND input.
  {
    const std::string src = kernels::combinedSource(
        {"transposeNaive", "transposeOptNoSquare"}, 8);
    check::CheckOptions para;
    para.method = check::Method::ParameterizedBugHunt;
    para.width = 8;
    para.solverTimeoutMs = kTo;
    bind(src, check::CheckKind::Equivalence, "transposeNaive",
         "transposeOptNoSquare", para);
    check::CheckOptions np;
    np.method = check::Method::NonParameterized;
    np.width = 8;
    np.solverTimeoutMs = kTo;
    np.grid = encode::GridConfig{1, 2, 4, 2, 1};  // happens to be non-square
    bind(src, check::CheckKind::Equivalence, "transposeNaive",
         "transposeOptNoSquare", np);
  }

  engine::VerificationEngine eng(benchEngineOptions());
  const std::vector<check::CheckResult> r = eng.runAll(checks);

  {
    Verdict vDyn = dynamicRun("racyHistogram", 8, true, false);
    std::printf("  %-32s %-10s %-12s %-12s\n", "data race (racyHistogram)",
                mark(fromReport(r[0].report)).c_str(),
                mark(fromReport(r[1].report)).c_str(), mark(vDyn).c_str());
  }
  {
    Verdict vDyn = dynamicRun("transposeNaive", 8, false, true);
    std::printf("  %-32s %-10s %-12s %-12s\n",
                "non-coalesced (transposeNaive)",
                mark(fromReport(r[2].report)).c_str(),
                mark(fromReport(r[3].report)).c_str(), mark(vDyn).c_str());
  }
  {
    Verdict vDyn;
    vDyn.applicable = false;  // no oracle without a specification
    std::printf("  %-32s %-10s %-12s %-12s\n",
                "equivalence bug (non-square)",
                mark(fromReport(r[4].report)).c_str(),
                mark(fromReport(r[5].report)).c_str(), mark(vDyn).c_str());
  }

  std::printf("\nNote: the fixed-thread column only covers the one launch "
              "configuration it was\ngiven; the dynamic column additionally "
              "fixes the inputs. Only the PUGpara\ncolumn quantifies over "
              "both (the paper's Table I).\n");
  return 0;
}
