// Table I reproduction: the paper's comparison of formal GPU-program
// checkers by methodology. We implement all three methodology rows inside
// this repository and demonstrate each live:
//
//   * PUGpara        — parameterized symbolic analysis (src/para, src/check)
//   * GKLEE-style    — fixed-thread symbolic execution: our non-parameterized
//                      encoder plays this role (concrete grid, symbolic data)
//   * GRace-style    — dynamic instrumentation: the VM's access monitors
//                      (concrete grid, concrete data)
//
// Each methodology is run against the same bug zoo; the matrix shows which
// bugs each finds and whether the verdict covers all configurations.
#include "bench_util.h"
#include "exec/compiler.h"
#include "exec/machine.h"
#include "support/rng.h"
#include "support/timer.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

struct Verdict {
  bool found = false;
  bool applicable = true;
  double seconds = 0;
};

std::string mark(const Verdict& v) {
  if (!v.applicable) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s (%.2fs)", v.found ? "yes" : "no",
                v.seconds);
  return buf;
}

Verdict fromReport(const check::Report& r) {
  return {r.outcome == check::Outcome::BugFound,
          r.outcome != check::Outcome::Unsupported, r.totalSeconds};
}

/// Dynamic (GRace-style): one concrete run with monitors; concrete inputs.
Verdict dynamicRun(const std::string& name, uint32_t width,
                   bool lookForRace, bool lookForPerf) {
  const auto& e = kernels::entry(name);
  auto prog = lang::parseAndAnalyze(kernels::sourceFor(e, width));
  auto compiled = exec::compile(*prog->kernels[0]);
  exec::LaunchParams p;
  p.grid = {e.defaultGrid.gdimX, e.defaultGrid.gdimY, 1};
  p.block = {e.defaultGrid.bdimX, e.defaultGrid.bdimY, e.defaultGrid.bdimZ};
  p.width = width;
  p.monitors.enabled = true;
  SplitMix64 rng(4);
  std::vector<exec::Buffer> bufs;
  for (const auto& param : prog->kernels[0]->params) {
    if (param->type.isPointer) {
      exec::Buffer b(param->name, 512);
      for (size_t i = 0; i < b.size(); ++i) b.store(i, rng.below(8));
      bufs.push_back(std::move(b));
    } else {
      p.scalarArgs.push_back(e.defaultGrid.gdimX * e.defaultGrid.bdimX);
    }
  }
  WallTimer t;
  auto r = exec::launch(compiled, p, bufs);
  Verdict v;
  v.seconds = t.seconds();
  v.found = (lookForRace && !r.races.empty()) ||
            (lookForPerf && (!r.bankConflicts.empty() ||
                             !r.uncoalesced.empty()));
  return v;
}

}  // namespace

int main() {
  std::printf("Table I: comparison of GPU-program checking methodologies\n");
  std::printf("(all three implemented in this repository and run live)\n\n");
  std::printf("%-34s %-10s %-12s %-12s\n", "", "PUGpara", "fixed-thread",
              "dynamic");
  std::printf("%-34s %-10s %-12s %-12s\n", "Methodology", "symbolic",
              "symbolic", "instrument.");
  std::printf("%-34s %-10s %-12s %-12s\n", "Program inputs", "symbolic",
              "symbolic", "concrete");
  std::printf("%-34s %-10s %-12s %-12s\n", "Parameterized in #threads?",
              "yes", "no", "no");
  std::printf("\nBug detection on the corpus:\n");

  const uint32_t kTo = timeoutMs();

  // Row 1: data race (racyHistogram).
  {
    check::VerificationSession s(
        kernels::combinedSource({"racyHistogram"}, 8));
    check::CheckOptions para;
    para.method = check::Method::Parameterized;
    para.width = 8;
    para.solverTimeoutMs = kTo;
    Verdict vPara = fromReport(s.races("racyHistogram", para));
    // Fixed-thread symbolic race check = the same query on one config.
    check::CheckOptions fixedOpt = para;
    fixedOpt.concretize = {{"bdim.x", 8},  {"bdim.y", 1}, {"bdim.z", 1},
                           {"gdim.x", 1},  {"gdim.y", 1}};
    Verdict vFixed = fromReport(s.races("racyHistogram", fixedOpt));
    Verdict vDyn = dynamicRun("racyHistogram", 8, true, false);
    std::printf("  %-32s %-10s %-12s %-12s\n", "data race (racyHistogram)",
                mark(vPara).c_str(), mark(vFixed).c_str(),
                mark(vDyn).c_str());
  }

  // Row 2: performance bug (transposeNaive, uncoalesced).
  {
    check::VerificationSession s(
        kernels::combinedSource({"transposeNaive"}, 8));
    check::CheckOptions para;
    para.method = check::Method::Parameterized;
    para.width = 8;
    para.solverTimeoutMs = kTo;
    Verdict vPara = fromReport(s.performance("transposeNaive", para));
    check::CheckOptions fixedOpt = para;
    fixedOpt.concretize = {{"bdim.x", 2}, {"bdim.y", 2}, {"bdim.z", 1},
                           {"gdim.x", 2}, {"gdim.y", 2}};
    Verdict vFixed = fromReport(s.performance("transposeNaive", fixedOpt));
    Verdict vDyn = dynamicRun("transposeNaive", 8, false, true);
    std::printf("  %-32s %-10s %-12s %-12s\n",
                "non-coalesced (transposeNaive)", mark(vPara).c_str(),
                mark(vFixed).c_str(), mark(vDyn).c_str());
  }

  // Row 3: functional equivalence bug (non-square transpose) — only the
  // symbolic methods can even pose the question; the dynamic row needs the
  // lucky configuration AND input.
  {
    check::VerificationSession s(kernels::combinedSource(
        {"transposeNaive", "transposeOptNoSquare"}, 8));
    check::CheckOptions para;
    para.method = check::Method::ParameterizedBugHunt;
    para.width = 8;
    para.solverTimeoutMs = kTo;
    Verdict vPara = fromReport(
        s.equivalence("transposeNaive", "transposeOptNoSquare", para));
    check::CheckOptions np;
    np.method = check::Method::NonParameterized;
    np.width = 8;
    np.solverTimeoutMs = kTo;
    np.grid = encode::GridConfig{1, 2, 4, 2, 1};  // happens to be non-square
    Verdict vFixed = fromReport(
        s.equivalence("transposeNaive", "transposeOptNoSquare", np));
    Verdict vDyn;
    vDyn.applicable = false;  // no oracle without a specification
    std::printf("  %-32s %-10s %-12s %-12s\n",
                "equivalence bug (non-square)", mark(vPara).c_str(),
                mark(vFixed).c_str(), mark(vDyn).c_str());
  }

  std::printf("\nNote: the fixed-thread column only covers the one launch "
              "configuration it was\ngiven; the dynamic column additionally "
              "fixes the inputs. Only the PUGpara\ncolumn quantifies over "
              "both (the paper's Table I).\n");
  return 0;
}
