// Shared helpers for the table-reproduction benches: environment-tunable
// solver timeout, paper-style cell formatting ("T.O", '*' for found bugs),
// and grid construction per thread count.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "check/session.h"
#include "engine/engine.h"
#include "kernels/corpus.h"

namespace pugpara::bench {

/// Per-check solver budget. The paper used 5 minutes; the default here is
/// 20 s so a full bench sweep stays interactive. Override with
/// PUGPARA_TIMEOUT_MS=300000 for a paper-faithful run.
inline uint32_t timeoutMs() {
  if (const char* env = std::getenv("PUGPARA_TIMEOUT_MS"))
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  return 20000;
}

/// Worker threads for regenerating a table (PUGPARA_JOBS; default: one per
/// hardware thread). The engine guarantees outcomes identical to jobs=1 —
/// only the wall-clock changes — so the tables parallelize freely. The
/// *measured* per-cell solve times do gain scheduling noise under load;
/// set PUGPARA_JOBS=1 for paper-grade timing columns.
inline unsigned benchJobs() {
  if (const char* env = std::getenv("PUGPARA_JOBS"))
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Engine configuration every table bench runs its batch with
/// (PUGPARA_JOBS / PUGPARA_PORTFOLIO).
inline engine::EngineOptions benchEngineOptions() {
  engine::EngineOptions eo;
  eo.jobs = benchJobs();
  if (const char* env = std::getenv("PUGPARA_PORTFOLIO"))
    eo.portfolio = env[0] != '\0' && env[0] != '0';
  return eo;
}

/// Formats one result cell the way the paper's tables do:
///   seconds        — check finished (Verified / NoBugFound)
///   seconds*       — a real difference / bug was found ('*' rows)
///   T.O            — solver exceeded its budget
///   n/a            — method does not apply to this kernel shape
inline std::string cell(const check::Report& r) {
  char buf[32];
  switch (r.outcome) {
    case check::Outcome::Verified:
    case check::Outcome::NoBugFound:
      std::snprintf(buf, sizeof buf, "%.2f", r.solveSeconds);
      return buf;
    case check::Outcome::BugFound:
      std::snprintf(buf, sizeof buf, "%.2f*", r.solveSeconds);
      return buf;
    case check::Outcome::Unknown:
      return "T.O";
    case check::Outcome::Unsupported:
      return "n/a";
  }
  return "?";
}

inline void printRow(const std::string& label,
                     const std::vector<std::string>& cells) {
  std::printf("%-22s", label.c_str());
  for (const auto& c : cells) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

/// Square-block transpose grid for a total thread count (2x2 blocks).
inline encode::GridConfig transposeGrid(uint32_t threads) {
  switch (threads) {
    case 4: return {1, 1, 2, 2, 1};
    case 8: return {2, 1, 2, 2, 1};
    case 16: return {2, 2, 2, 2, 1};
    case 32: return {4, 2, 2, 2, 1};
    case 64: return {4, 4, 2, 2, 1};
    case 128: return {8, 4, 2, 2, 1};
    default: return {threads / 4, 1, 2, 2, 1};
  }
}

/// Single-block 1-D reduction grid.
inline encode::GridConfig reductionGrid(uint32_t threads) {
  return {1, 1, threads, 1, 1};
}

}  // namespace pugpara::bench
