// Ablation B: the frame-handling modes of Sec. IV-D — monotonicity-based
// quantifier elimination vs native quantifiers vs fast bug-hunting — on
// postcondition proofs that genuinely need frame reasoning, plus a buggy
// variant to show what each mode finds.
#include "bench_util.h"
#include "para/vcgen.h"
#include "support/timer.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

void runRow(const char* label, const std::string& src, const char* kernel,
            para::FrameMode mode) {
  check::VerificationSession s(src);
  check::CheckOptions o;
  o.method = mode == para::FrameMode::BugHunt
                 ? check::Method::ParameterizedBugHunt
                 : check::Method::Parameterized;
  o.frameMode = mode;
  o.width = 8;
  o.solverTimeoutMs = timeoutMs();
  check::Report r = s.postconditions(kernel, o);
  std::printf("  %-16s %-13s %8s   qe=%zu forall=%zu uniform=%zu inst=%zu\n",
              para::toString(mode), check::toString(r.outcome),
              cell(r).c_str(), r.stats.qeCerts, r.stats.forallCerts,
              r.stats.uniformCerts, r.stats.instances);
}

}  // namespace

int main() {
  // A kernel whose postcondition needs the FRAME: cells >= n keep their
  // old value; proving that requires knowing nobody wrote them.
  const char* frameKernel = R"(
void prefixInit(int *a, int n) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  assume(n >= 0 && n <= bdim.x);
  if (tid.x < n) a[tid.x] = 7;
  int i;
  postcond(i >= 0 && i < n => a[i] == 7);
}
)";
  // Its buggy sibling (writes one cell short). This is a FRAME bug: the
  // postcondition fails on the one cell nobody wrote, which is precisely
  // the class of bugs bug-hunt mode gives up on (Sec. IV-D's
  // under-approximation) — expect it to miss.
  const char* buggyKernel = R"(
void prefixInit(int *a, int n) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  assume(n >= 0 && n <= bdim.x);
  if (tid.x < n - 1) a[tid.x] = 7;
  int i;
  postcond(i >= 0 && i < n => a[i] == 7);
}
)";

  std::printf("Ablation: frame-premise handling (Sec. IV-D), postcondition "
              "checking\n\n");
  std::printf("correct kernel (expect verified in exact modes, no-bug-found "
              "in bug-hunt):\n");
  for (auto mode : {para::FrameMode::MonotoneQe, para::FrameMode::NativeForall,
                    para::FrameMode::BugHunt})
    runRow("prefixInit", frameKernel, "prefixInit", mode);

  std::printf("\nbuggy kernel — a frame bug (expect bug-found in the exact "
              "modes and\nno-bug-found in bug-hunt, the paper's "
              "under-approximation):\n");
  for (auto mode : {para::FrameMode::MonotoneQe, para::FrameMode::NativeForall,
                    para::FrameMode::BugHunt})
    runRow("prefixInit-bug", buggyKernel, "prefixInit", mode);

  std::printf("\nTakeaway: monotone QE discharges the frames without "
              "quantifiers (qe > 0),\nwhich is what lets quantifier-free "
              "backends participate; the paper's\ngeneration of solvers "
              "required exactly this.\n");
  return 0;
}
