// Ablation D: the Z3 backend versus the from-scratch MiniSMT backend
// (CDCL + bit-blasting) on the same verification tasks. MiniSMT handles the
// quantifier-free fragment — which is precisely what the monotone QE of
// Sec. IV-D produces — and rejects quantified frames with Unknown, as the
// paper's generation of solvers did.
#include "bench_util.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

void row(const char* label, const std::string& src, const char* kernel,
         bool equivalence, const char* tgt) {
  std::vector<std::string> cells;
  for (smt::Backend backend : {smt::Backend::Z3, smt::Backend::Mini}) {
    check::VerificationSession s(src);
    check::CheckOptions o;
    o.method = check::Method::Parameterized;
    o.width = 8;
    o.backend = backend;
    o.solverTimeoutMs = timeoutMs();
    o.replayCounterexamples = false;
    check::Report r = equivalence ? s.equivalence(kernel, tgt, o)
                                  : s.postconditions(kernel, o);
    cells.push_back(cell(r) + " (" + check::toString(r.outcome) + ")");
  }
  printRow(label, cells);
}

}  // namespace

int main() {
  std::printf("Ablation: solver backends on parameterized checks (8b)\n\n");
  printRow("Task", {"Z3", "MiniSMT"});

  const char* fill = R"(
void fill(int *a) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  a[tid.x] = tid.x + 1;
  int i;
  postcond(i < bdim.x => a[i] == i + 1);
}
)";
  const char* fillBug = R"(
void fill(int *a) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  a[tid.x] = tid.x + 2;
  int i;
  postcond(i < bdim.x => a[i] == i + 1);
}
)";
  row("postcond (QE frames)", fill, "fill", false, nullptr);
  row("postcond bug (QE frames)", fillBug, "fill", false, nullptr);
  // vecAdd's frames keep a quantifier: MiniSMT answers Unknown (T.O cell).
  row("postcond (forall frames)",
      kernels::combinedSource({"vecAdd"}, 8), "vecAdd", false, nullptr);
  // Loop-aligned reduction equivalence: single-axis CAs, QE applies.
  row("reduce equivalence", kernels::combinedSource(
          {"reduceMod", "reduceStrided"}, 8),
      "reduceMod", true, "reduceStrided");

  std::printf("\nMiniSMT (a from-scratch CDCL + bit-blaster) matches Z3 on "
              "every quantifier-free\ntask; the quantified-frame row shows "
              "why the paper needed Sec. IV-D's quantifier\nelimination in "
              "the first place.\n");
  return 0;
}
