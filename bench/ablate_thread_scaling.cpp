// Ablation C: the non-parameterized method's blow-up in the thread count —
// the paper's core motivation ("PUG often times out on four threads" for
// functional checking; GKLEE "exceeds limits at about 2K threads").
// We sweep n and report encoding size and solving time; the parameterized
// row at the bottom is n-independent by construction.
#include "bench_util.h"
#include "encode/equivalence.h"
#include "expr/walk.h"
#include "para/vcgen.h"
#include "support/timer.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

}  // namespace

namespace {

void sweep(const char* label, const char* srcName, const char* tgtName,
           uint32_t kWidth, bool transpose, bool ssaEquations,
           const std::vector<uint32_t>& ns) {
  std::printf("%s (%ub, %s encoding):\n", label, kWidth,
              ssaEquations ? "SSA-equation" : "substitution");
  std::printf("%8s %16s %14s %10s\n", "threads", "formula nodes",
              "encode (s)", "solve");

  for (uint32_t n : ns) {
    auto prog = lang::parseAndAnalyze(
        kernels::combinedSource({srcName, tgtName}, kWidth));
    expr::Context ctx;
    encode::EncodeOptions eo;
    eo.width = kWidth;
    eo.ssaEquations = ssaEquations;
    encode::GridConfig grid = transpose ? transposeGrid(n) : reductionGrid(n);

    WallTimer enc;
    auto a = encode::encodeSsa(ctx, *prog->kernels[0], grid, eo, "s");
    auto b = encode::encodeSsa(ctx, *prog->kernels[1], grid, eo, "t");
    auto q = encode::buildEquivalenceQuery(ctx, a, b);
    const double encodeSeconds = enc.seconds();

    expr::Expr whole = ctx.mkAnd(q.assumptions, q.outputsDiffer);
    const size_t nodes = expr::nodeCount(whole);

    auto solver = smt::makeZ3Solver();
    solver->setTimeoutMs(timeoutMs());
    solver->add(whole);
    WallTimer solve;
    smt::CheckResult r = solver->check();
    char solveCell[32];
    if (r == smt::CheckResult::Unknown)
      std::snprintf(solveCell, sizeof solveCell, "T.O");
    else
      std::snprintf(solveCell, sizeof solveCell, "%.2f%s", solve.seconds(),
                    r == smt::CheckResult::Sat ? "*" : "");
    std::printf("%8u %16zu %14.3f %10s\n", n, nodes, encodeSeconds,
                solveCell);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Ablation: non-parameterized scaling in the thread count\n\n");
  sweep("Transpose equivalence", "transposeNaive", "transposeOpt", 32, true,
        true, {4, 8, 16, 32, 64, 128});
  sweep("Reduction equivalence", "reduceMod", "reduceStrided", 16, false,
        true, {4, 8, 16, 32, 64});
  sweep("Reduction equivalence", "reduceMod", "reduceStrided", 16, false,
        false, {4, 8, 16, 32, 64});
  constexpr uint32_t kWidth = 16;

  // The parameterized encoding for comparison: its size is constant.
  {
    auto prog = lang::parseAndAnalyze(
        kernels::combinedSource({"transposeNaive", "transposeOpt"}, kWidth));
    expr::Context ctx;
    encode::EncodeOptions eo;
    eo.width = kWidth;
    eo.concretize = {{"bdim.x", 4}, {"bdim.y", 4}, {"bdim.z", 1}};
    WallTimer enc;
    auto cfg = para::SymbolicConfig::create(ctx, eo);
    auto s = para::extractSummary(ctx, *prog->kernels[0], cfg, eo, "s");
    auto t = para::extractSummary(ctx, *prog->kernels[1], cfg, eo, "t");
    auto vcs = para::buildEquivalenceVcs(ctx, s, t,
                                         para::FrameMode::MonotoneQe);
    const double encodeSeconds = enc.seconds();
    size_t nodes = 0;
    for (const auto& vc : vcs.vcs) nodes += expr::nodeCount(vc.formula);
    std::printf("%8s %16zu %14.3f %10s   <- parameterized (+C), any n\n",
                "any", nodes, encodeSeconds, "-");
  }
  return 0;
}
