// Ablation G: the MiniSMT raw-speed push — LBD clause management,
// chronological backtracking, inprocessing, word-level rewriting and the
// in-process seed portfolio. Three claims, measured separately:
//
//  * Agreement — on the full corpus race workload plus injected-bug
//    mutants, all techniques OFF versus all ON must return identical
//    verdicts (every technique is solution-preserving; any disagreement
//    is a soundness bug and fails the run).
//  * Ablation — leave-one-out timings on a multi-query workload: total
//    MiniSMT solve time with each technique disabled in turn, plus the
//    everything-off configuration (the PR-3-era SAT core) as baseline.
//    The net all-on vs all-off ratio is the raw-speed claim.
//  * Equivalence — the Table II "+C" parameterized equivalence pairs at
//    full width (transpose 32b, reduction 12b): Z3 versus MiniSMT versus
//    the MiniSMT seed portfolio. The acceptance bar is MiniSMT within 2x
//    of Z3 wall-clock. PUGPARA_MINI_FAST=1 shrinks the widths for CI.
//
// Emits BENCH_minismt.json next to the table for machine consumption.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "kernels/mutate.h"
#include "smt/mini/stats.h"
#include "support/json.h"
#include "support/timer.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

struct Task {
  std::string label;
  const check::VerificationSession* session;
  std::string kernel;
  uint32_t width;
};

struct ModeRun {
  double solveSeconds = 0;
  std::vector<check::Outcome> outcomes;
};

ModeRun runRaces(const std::vector<Task>& tasks, const smt::MiniTuning& mini,
                 unsigned miniPortfolio = 1) {
  std::vector<engine::BoundCheck> checks;
  for (const Task& t : tasks) {
    check::CheckOptions o;
    o.method = check::Method::Parameterized;
    o.width = t.width;
    o.backend = smt::Backend::Mini;
    o.mini = mini;
    o.solverTimeoutMs = timeoutMs();
    o.replayCounterexamples = false;
    checks.push_back(
        {t.session, {check::CheckKind::Races, t.kernel, "", o, {}, 0}});
  }
  engine::EngineOptions eo = benchEngineOptions();
  eo.miniPortfolio = miniPortfolio;
  engine::VerificationEngine eng(eo);
  std::vector<check::CheckResult> results = eng.runAll(checks);
  ModeRun run;
  for (const check::CheckResult& r : results) {
    run.solveSeconds += r.report.solveSeconds;
    run.outcomes.push_back(r.report.outcome);
  }
  return run;
}

struct EquivPair {
  const char* label;
  const char* src;
  const char* tgt;
  uint32_t width;
  bool transpose;
};

/// One Table II "+C" parameterized equivalence check on a given backend.
ModeRun runEquiv(const check::VerificationSession* session,
                 const EquivPair& p, smt::Backend backend,
                 const smt::MiniTuning& mini, unsigned miniPortfolio = 1) {
  check::CheckOptions o;
  o.method = check::Method::Parameterized;
  o.width = p.width;
  o.backend = backend;
  o.mini = mini;
  o.solverTimeoutMs = timeoutMs();
  if (p.transpose) {
    o.concretize = {{"bdim.x", 4}, {"bdim.y", 4}, {"bdim.z", 1},
                    {"width", 8},  {"height", 8}};
  } else {
    o.concretize = {{"bdim.x", 8}, {"bdim.y", 1}, {"bdim.z", 1}};
  }
  o.replayCounterexamples = false;
  engine::EngineOptions eo = benchEngineOptions();
  eo.miniPortfolio = miniPortfolio;
  engine::VerificationEngine eng(eo);
  std::vector<engine::BoundCheck> checks = {
      {session, {check::CheckKind::Equivalence, p.src, p.tgt, o, {}, 0}}};
  std::vector<check::CheckResult> results = eng.runAll(checks);
  ModeRun run;
  run.solveSeconds = results[0].report.solveSeconds;
  run.outcomes.push_back(results[0].report.outcome);
  return run;
}

}  // namespace

int main() {
  const bool fast = std::getenv("PUGPARA_MINI_FAST") != nullptr;
  std::printf("Ablation: MiniSMT raw-speed techniques (LBD / chrono / "
              "inprocess / rewrite / seed portfolio)%s\n\n",
              fast ? "  [fast widths]" : "");

  std::vector<std::unique_ptr<check::VerificationSession>> sessions;
  auto corpusSession = [&](uint32_t width) {
    std::vector<std::string> names;
    for (const auto& e : kernels::corpus()) names.push_back(e.name);
    sessions.push_back(std::make_unique<check::VerificationSession>(
        kernels::combinedSource(names, width)));
    return sessions.back().get();
  };
  struct MutantSpec {
    const char* base;
    kernels::MutationKind kind;
    size_t site;
  };
  const MutantSpec mutantSpecs[] = {
      {"transposeOpt", kernels::MutationKind::AddressOffByOne, 3},
      {"reduceStrided", kernels::MutationKind::AddressOffByOne, 2},
  };
  auto mutantTask = [&](const MutantSpec& m, uint32_t width) {
    auto prog =
        lang::parseAndAnalyze(kernels::combinedSource({m.base}, width));
    auto mutant = kernels::mutateAt(*prog->kernels[0], m.kind, m.site);
    std::string mutantName = mutant.kernel->name;
    prog->kernels.push_back(std::move(mutant.kernel));
    sessions.push_back(
        std::make_unique<check::VerificationSession>(std::move(prog)));
    return Task{std::string(m.base) + "+bug", sessions.back().get(),
                mutantName, width};
  };

  smt::MiniTuning allOn;  // defaults
  smt::MiniTuning allOff;
  allOff.lbd = allOff.chrono = allOff.inprocess = allOff.rewrite = false;

  // ---- Agreement: full corpus + mutants, all-off vs all-on ----------------
  const check::VerificationSession* agree8 = corpusSession(8);
  std::vector<Task> agreeTasks;
  for (const auto& e : kernels::corpus())
    agreeTasks.push_back({e.name, agree8, e.name, 8});
  for (const MutantSpec& m : mutantSpecs)
    agreeTasks.push_back(mutantTask(m, 8));

  const ModeRun aOff = runRaces(agreeTasks, allOff);
  const ModeRun aOn = runRaces(agreeTasks, allOn);
  const ModeRun aPort = runRaces(agreeTasks, allOn, 3);
  const bool agree =
      aOff.outcomes == aOn.outcomes && aOn.outcomes == aPort.outcomes;
  std::printf("agreement (corpus w8 + mutants, %zu tasks): %s\n",
              agreeTasks.size(),
              agree ? "all-off == all-on == portfolio" : "DISAGREE");
  if (!agree)
    for (size_t i = 0; i < agreeTasks.size(); ++i)
      if (aOff.outcomes[i] != aOn.outcomes[i] ||
          aOn.outcomes[i] != aPort.outcomes[i])
        std::printf("  %s: off=%s on=%s portfolio=%s\n",
                    agreeTasks[i].label.c_str(),
                    check::toString(aOff.outcomes[i]),
                    check::toString(aOn.outcomes[i]),
                    check::toString(aPort.outcomes[i]));

  // ---- Leave-one-out ablation on the multi-query speed workload -----------
  const uint32_t speedWidth = fast ? 8 : 16;
  const check::VerificationSession* speedS = corpusSession(speedWidth);
  std::vector<Task> speedTasks;
  for (const char* name : {"reduceMod", "reduceStrided", "reduceSequential",
                           "scanNaive", "scalarProd", "racyHistogram"})
    speedTasks.push_back({name, speedS, name, speedWidth});

  struct Ablation {
    const char* name;
    smt::MiniTuning tuning;
  };
  smt::MiniTuning noLbd = allOn;
  noLbd.lbd = false;
  smt::MiniTuning noChrono = allOn;
  noChrono.chrono = false;
  smt::MiniTuning noInproc = allOn;
  noInproc.inprocess = false;
  smt::MiniTuning noRewrite = allOn;
  noRewrite.rewrite = false;
  const Ablation ablations[] = {
      {"all-on", allOn},         {"no-lbd", noLbd},
      {"no-chrono", noChrono},   {"no-inprocess", noInproc},
      {"no-rewrite", noRewrite}, {"all-off", allOff},
  };

  std::printf("\nleave-one-out ablation (race workload, w=%u, seconds):\n",
              speedWidth);
  printRow("Config", {"solve (s)", "verdicts"});
  std::string jsonAblations;
  double onSeconds = 0, offSeconds = 0;
  bool ablAgree = true;
  std::vector<check::Outcome> onOutcomes;
  for (const Ablation& a : ablations) {
    const ModeRun r = runRaces(speedTasks, a.tuning);
    if (std::string(a.name) == "all-on") {
      onSeconds = r.solveSeconds;
      onOutcomes = r.outcomes;
    }
    if (std::string(a.name) == "all-off") offSeconds = r.solveSeconds;
    const bool same = onOutcomes.empty() || r.outcomes == onOutcomes;
    ablAgree = ablAgree && same;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", r.solveSeconds);
    printRow(a.name, {buf, same ? "agree" : "DISAGREE"});
    if (!jsonAblations.empty()) jsonAblations += ",";
    jsonAblations += "{\"config\":" + json::quote(a.name) +
                     ",\"solve_seconds\":" + json::number(r.solveSeconds) +
                     ",\"verdicts_agree\":" + (same ? "true" : "false") + "}";
  }
  const double netSpeedup = onSeconds > 0 ? offSeconds / onSeconds : 0;
  std::printf("net all-on vs all-off: %.2fx\n", netSpeedup);

  // ---- Equivalence at full width: Z3 vs MiniSMT vs seed portfolio ---------
  const EquivPair equivPairs[] = {
      {"Transpose", "transposeNaive", "transposeOpt",
       fast ? 8u : 32u, true},
      {"Reduction", "reduceMod", "reduceStrided", fast ? 8u : 12u, false},
  };
  std::printf("\nparameterized +C equivalence (solve seconds):\n");
  printRow("Pair", {"Z3", "MiniSMT", "Mini-pf3", "verdicts"});
  std::string jsonEquiv;
  double z3Total = 0, miniTotal = 0, portTotal = 0;
  bool equivAgree = true;
  for (const EquivPair& p : equivPairs) {
    sessions.push_back(std::make_unique<check::VerificationSession>(
        kernels::combinedSource({p.src, p.tgt}, p.width)));
    const check::VerificationSession* s = sessions.back().get();
    const ModeRun rz = runEquiv(s, p, smt::Backend::Z3, allOn);
    const ModeRun rm = runEquiv(s, p, smt::Backend::Mini, allOn);
    const ModeRun rp = runEquiv(s, p, smt::Backend::Mini, allOn, 3);
    z3Total += rz.solveSeconds;
    miniTotal += rm.solveSeconds;
    portTotal += rp.solveSeconds;
    const bool same = rz.outcomes == rm.outcomes && rm.outcomes == rp.outcomes;
    equivAgree = equivAgree && same;
    char bz[32], bm[32], bp[32];
    std::snprintf(bz, sizeof bz, "%.3f", rz.solveSeconds);
    std::snprintf(bm, sizeof bm, "%.3f", rm.solveSeconds);
    std::snprintf(bp, sizeof bp, "%.3f", rp.solveSeconds);
    char label[64];
    std::snprintf(label, sizeof label, "%s (%ub)", p.label, p.width);
    printRow(label, {bz, bm, bp, same ? "agree" : "DISAGREE"});
    if (!jsonEquiv.empty()) jsonEquiv += ",";
    jsonEquiv += "{\"pair\":" + json::quote(label) +
                 ",\"width\":" + std::to_string(p.width) +
                 ",\"z3_seconds\":" + json::number(rz.solveSeconds) +
                 ",\"mini_seconds\":" + json::number(rm.solveSeconds) +
                 ",\"mini_portfolio_seconds\":" + json::number(rp.solveSeconds) +
                 ",\"z3_outcome\":" +
                 json::quote(check::toString(rz.outcomes[0])) +
                 ",\"mini_outcome\":" +
                 json::quote(check::toString(rm.outcomes[0])) +
                 ",\"verdicts_agree\":" + (same ? "true" : "false") + "}";
  }
  const bool within2x = miniTotal <= 2.0 * z3Total || z3Total == 0;
  std::printf("equivalence totals: Z3 %.3fs, MiniSMT %.3fs (%.2fx of Z3, "
              "bar: 2x), portfolio %.3fs\n",
              z3Total, miniTotal, z3Total > 0 ? miniTotal / z3Total : 0,
              portTotal);

  // ---- Emit ---------------------------------------------------------------
  const smt::mini::MiniStatsSnapshot ms = smt::mini::snapshotMiniStats();
  std::string perTask;
  for (size_t i = 0; i < agreeTasks.size(); ++i) {
    if (i != 0) perTask += ",";
    perTask += "{\"task\":" + json::quote(agreeTasks[i].label) +
               ",\"off\":" + json::quote(check::toString(aOff.outcomes[i])) +
               ",\"on\":" + json::quote(check::toString(aOn.outcomes[i])) +
               ",\"portfolio\":" +
               json::quote(check::toString(aPort.outcomes[i])) + "}";
  }
  std::string out =
      "{\"bench\":\"minismt\",\"fast\":" + std::string(fast ? "true" : "false") +
      ",\"timeout_ms\":" + std::to_string(timeoutMs()) +
      ",\"jobs\":" + std::to_string(benchJobs()) +
      ",\"agreement_tasks\":" + std::to_string(agreeTasks.size()) +
      ",\"verdicts_agree\":" + (agree && ablAgree && equivAgree ? "true"
                                                                : "false") +
      ",\"net_speedup_all_on_vs_all_off\":" + json::number(netSpeedup) +
      ",\"ablations\":[" + jsonAblations + "]" +
      ",\"equivalence\":[" + jsonEquiv + "]" +
      ",\"equiv_z3_seconds\":" + json::number(z3Total) +
      ",\"equiv_mini_seconds\":" + json::number(miniTotal) +
      ",\"equiv_mini_portfolio_seconds\":" + json::number(portTotal) +
      ",\"mini_within_2x_of_z3\":" + (within2x ? "true" : "false") +
      ",\"agreement_verdicts\":[" + perTask + "]" +
      ",\"mini_stats\":{\"conflicts\":" + std::to_string(ms.conflicts) +
      ",\"learnts\":" + std::to_string(ms.learnts) +
      ",\"lbd_glue\":" + std::to_string(ms.lbdGlue) +
      ",\"lbd_mid\":" + std::to_string(ms.lbdMid) +
      ",\"lbd_large\":" + std::to_string(ms.lbdLarge) +
      ",\"learnts_deleted\":" + std::to_string(ms.learntsDeleted) +
      ",\"chrono_backtracks\":" + std::to_string(ms.chronoBacktracks) +
      ",\"inprocess_runs\":" + std::to_string(ms.inprocessRuns) +
      ",\"subsumed\":" + std::to_string(ms.subsumed) +
      ",\"strengthened\":" + std::to_string(ms.strengthened) +
      ",\"eliminated_vars\":" + std::to_string(ms.eliminatedVars) +
      ",\"restored_vars\":" + std::to_string(ms.restoredVars) +
      ",\"exported_clauses\":" + std::to_string(ms.exportedClauses) +
      ",\"imported_clauses\":" + std::to_string(ms.importedClauses) +
      ",\"rewrites\":" + std::to_string(ms.rewrites) +
      ",\"portfolio_races\":" + std::to_string(ms.portfolioRaces) +
      ",\"winner_seed\":" + std::to_string(ms.winnerSeed) + "}}";
  if (std::FILE* f = std::fopen("BENCH_minismt.json", "w")) {
    std::fprintf(f, "%s\n", out.c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_minismt.json\n");
  } else {
    std::printf("\ncould not write BENCH_minismt.json\n");
  }

  const bool ok = agree && ablAgree && equivAgree;
  std::printf("verdicts %s; net speedup %.2fx; MiniSMT %s the 2x-of-Z3 "
              "bar\n",
              ok ? "agree across every configuration" : "DISAGREE",
              netSpeedup, within2x ? "meets" : "MISSES");
  // CI contract: identical verdicts under every technique combination are
  // a hard failure if violated (every technique must be solution-
  // preserving). Timing bars are reported, not enforced — CI machines are
  // noisy; BENCH_minismt.json carries the measurements.
  return ok ? 0 : 1;
}
