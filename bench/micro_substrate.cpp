// Microbenchmarks of the substrates (google-benchmark): expression
// construction/simplification/substitution throughput, VM execution rate,
// and end-to-end encoding costs.
#include <benchmark/benchmark.h>

#include "encode/ssa_encoder.h"
#include "exec/compiler.h"
#include "exec/machine.h"
#include "expr/subst.h"
#include "expr/walk.h"
#include "kernels/corpus.h"
#include "lang/parser.h"
#include "para/vcgen.h"
#include "support/rng.h"

namespace {

using namespace pugpara;

void BM_ExprBuildChain(benchmark::State& state) {
  for (auto _ : state) {
    expr::Context ctx;
    expr::Expr x = ctx.var("x", expr::Sort::bv(32));
    expr::Expr acc = ctx.bvVal(0, 32);
    for (int i = 0; i < state.range(0); ++i)
      acc = ctx.mkAdd(ctx.mkMul(acc, x), ctx.bvVal(i, 32));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExprBuildChain)->Arg(256)->Arg(4096);

void BM_HashConsingHit(benchmark::State& state) {
  expr::Context ctx;
  expr::Expr x = ctx.var("x", expr::Sort::bv(32));
  expr::Expr y = ctx.var("y", expr::Sort::bv(32));
  for (auto _ : state) {
    // Every build after the first is a pure cache hit.
    benchmark::DoNotOptimize(ctx.mkAdd(ctx.mkMul(x, y), x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashConsingHit);

void BM_Substitution(benchmark::State& state) {
  expr::Context ctx;
  expr::Expr x = ctx.var("x", expr::Sort::bv(32));
  expr::Expr acc = x;
  for (int i = 0; i < 200; ++i) acc = ctx.mkAdd(ctx.mkMul(acc, x), acc);
  expr::Expr replacement = ctx.var("z", expr::Sort::bv(32));
  for (auto _ : state)
    benchmark::DoNotOptimize(expr::substitute(acc, x, replacement));
}
BENCHMARK(BM_Substitution);

void BM_VmTranspose(benchmark::State& state) {
  auto prog = lang::parseAndAnalyze(
      kernels::sourceFor(kernels::entry("transposeOpt"), 32));
  auto compiled = exec::compile(*prog->kernels[0]);
  const uint32_t side = static_cast<uint32_t>(state.range(0));
  exec::LaunchParams p;
  p.grid = {side / 4, side / 4, 1};
  p.block = {4, 4, 1};
  p.width = 32;
  p.scalarArgs = {side, side};
  SplitMix64 rng(1);
  exec::Buffer in("idata", side * side);
  for (uint64_t i = 0; i < in.size(); ++i) in.store(i, rng.next());
  for (auto _ : state) {
    std::vector<exec::Buffer> bufs = {exec::Buffer("odata", side * side), in};
    auto r = exec::launch(compiled, p, bufs);
    if (!r.completed) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(bufs);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_VmTranspose)->Arg(16)->Arg(64);

void BM_SsaEncodeTranspose(benchmark::State& state) {
  auto prog = lang::parseAndAnalyze(
      kernels::sourceFor(kernels::entry("transposeOpt"), 16));
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  encode::GridConfig grid{n / 4, 1, 2, 2, 1};
  for (auto _ : state) {
    expr::Context ctx;
    encode::EncodeOptions eo;
    eo.width = 16;
    auto enc = encode::encodeSsa(ctx, *prog->kernels[0], grid, eo, "k");
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_SsaEncodeTranspose)->Arg(16)->Arg(64);

void BM_ParamExtractTranspose(benchmark::State& state) {
  auto prog = lang::parseAndAnalyze(
      kernels::sourceFor(kernels::entry("transposeOpt"), 16));
  for (auto _ : state) {
    expr::Context ctx;
    encode::EncodeOptions eo;
    eo.width = 16;
    auto cfg = para::SymbolicConfig::create(ctx, eo);
    auto sum = para::extractSummary(ctx, *prog->kernels[0], cfg, eo, "k");
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ParamExtractTranspose);

}  // namespace

BENCHMARK_MAIN();
