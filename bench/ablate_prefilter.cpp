// Ablation F: the tiered query-discharge pipeline (abstract-domain Tier 0
// plus cone-of-influence slicing Tier 1) versus posing every pair query to
// the solver directly. Three claims, measured separately:
//
//  * Discharge rate — on the full corpus race workload, the share of pair
//    queries Tier 0 retires with zero solver calls. The pipeline pays for
//    itself only if this is substantial (the acceptance bar is 40%).
//  * Speedup — on the multi-query width-16 race workload, total solve time
//    (which charges the prefilter's own cost honestly) must not regress on
//    either backend.
//  * Agreement — on the FULL corpus plus injected-bug mutants, prefilter
//    on and off must return identical verdicts on both backends. The
//    domain only ever proves Unsat, so any disagreement is a soundness bug
//    and fails the run.
//
// Emits BENCH_prefilter.json next to the table for machine consumption.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "kernels/mutate.h"
#include "support/json.h"
#include "support/timer.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

struct Task {
  std::string label;  // display + JSON name
  const check::VerificationSession* session;
  std::string kernel;  // kernel to race-check inside `session`
  uint32_t width;
};

struct ModeRun {
  double solveSeconds = 0;
  check::DischargeStats discharge;
  std::vector<check::Outcome> outcomes;
  std::vector<double> taskSeconds;
};

ModeRun runMode(const std::vector<Task>& tasks, smt::Backend backend,
                bool prefilter) {
  std::vector<engine::BoundCheck> checks;
  for (const Task& t : tasks) {
    check::CheckOptions o;
    o.method = check::Method::Parameterized;
    o.width = t.width;
    o.backend = backend;
    o.solverTimeoutMs = timeoutMs();
    o.replayCounterexamples = false;
    o.prefilter = prefilter;
    checks.push_back(
        {t.session, {check::CheckKind::Races, t.kernel, "", o, {}, 0}});
  }
  engine::VerificationEngine eng(benchEngineOptions());
  std::vector<check::CheckResult> results = eng.runAll(checks);
  ModeRun run;
  for (const check::CheckResult& r : results) {
    run.solveSeconds += r.report.solveSeconds;
    run.discharge.tier0 += r.report.discharge.tier0;
    run.discharge.sliced += r.report.discharge.sliced;
    run.discharge.fullSmt += r.report.discharge.fullSmt;
    run.discharge.solverCalls += r.report.discharge.solverCalls;
    run.outcomes.push_back(r.report.outcome);
    run.taskSeconds.push_back(r.report.solveSeconds);
  }
  return run;
}

}  // namespace

int main() {
  std::printf("Ablation: tiered query discharge (Tier 0 abstract domain + "
              "Tier 1 slicing) vs direct solving\n\n");

  // Sessions live for the whole run; tasks reference into them.
  std::vector<std::unique_ptr<check::VerificationSession>> sessions;
  auto corpusSession = [&](uint32_t width) {
    std::vector<std::string> names;
    for (const auto& e : kernels::corpus()) names.push_back(e.name);
    sessions.push_back(std::make_unique<check::VerificationSession>(
        kernels::combinedSource(names, width)));
    return sessions.back().get();
  };
  struct MutantSpec {
    const char* base;
    kernels::MutationKind kind;
    size_t site;
  };
  const MutantSpec mutantSpecs[] = {
      {"transposeOpt", kernels::MutationKind::AddressOffByOne, 3},
      {"reduceStrided", kernels::MutationKind::AddressOffByOne, 2},
  };
  auto mutantTask = [&](const MutantSpec& m, uint32_t width) {
    auto prog =
        lang::parseAndAnalyze(kernels::combinedSource({m.base}, width));
    auto mutant = kernels::mutateAt(*prog->kernels[0], m.kind, m.site);
    std::string mutantName = mutant.kernel->name;
    prog->kernels.push_back(std::move(mutant.kernel));
    sessions.push_back(
        std::make_unique<check::VerificationSession>(std::move(prog)));
    return Task{std::string(m.base) + "+bug", sessions.back().get(),
                mutantName, width};
  };

  // Speedup workload: the multi-query race checks (several pair queries
  // per interval — where discharged queries actually buy wall-clock time)
  // at the paper's default 16-bit width, plus the racy reduceStrided
  // mutant so the Sat path (where Tier 0 can only cost) is priced in.
  const check::VerificationSession* speed16 = corpusSession(16);
  std::vector<Task> speedTasks;
  for (const char* name : {"reduceMod", "reduceStrided", "reduceSequential",
                           "scanNaive", "scalarProd", "racyHistogram"})
    speedTasks.push_back({name, speed16, name, 16});
  speedTasks.push_back(mutantTask(mutantSpecs[1], 8));

  // Agreement + discharge-rate workload: the full corpus at 8 bits plus
  // the mutants. The discharge rate is measured here, across every race
  // pair query the corpus poses.
  const check::VerificationSession* agree8 = corpusSession(8);
  std::vector<Task> agreeTasks;
  for (const auto& e : kernels::corpus())
    agreeTasks.push_back({e.name, agree8, e.name, 8});
  for (const MutantSpec& m : mutantSpecs)
    agreeTasks.push_back(mutantTask(m, 8));

  const bool verbose = std::getenv("PUGPARA_BENCH_VERBOSE") != nullptr;
  printRow("Backend", {"off (s)", "on (s)", "speedup", "tier0", "verdicts"});
  bool allAgree = true;
  double bestSpeedup = 0;
  double corpusTier0Rate = 0;
  std::string jsonBackends;
  for (smt::Backend backend : {smt::Backend::Z3, smt::Backend::Mini}) {
    const char* bname = backend == smt::Backend::Z3 ? "Z3" : "MiniSMT";
    const ModeRun sOff = runMode(speedTasks, backend, false);
    const ModeRun sOn = runMode(speedTasks, backend, true);
    const ModeRun aOff = runMode(agreeTasks, backend, false);
    const ModeRun aOn = runMode(agreeTasks, backend, true);

    const bool agree =
        sOff.outcomes == sOn.outcomes && aOff.outcomes == aOn.outcomes;
    allAgree = allAgree && agree;
    const double speedup =
        sOn.solveSeconds > 0 ? sOff.solveSeconds / sOn.solveSeconds : 0;
    bestSpeedup = std::max(bestSpeedup, speedup);
    const uint64_t queries = aOn.discharge.queries();
    const double tier0Rate =
        queries > 0 ? static_cast<double>(aOn.discharge.tier0) / queries : 0;
    corpusTier0Rate = std::max(corpusTier0Rate, tier0Rate);
    char off[32], on[32], sp[32], t0[32];
    std::snprintf(off, sizeof off, "%.3f", sOff.solveSeconds);
    std::snprintf(on, sizeof on, "%.3f", sOn.solveSeconds);
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    std::snprintf(t0, sizeof t0, "%.0f%%", 100 * tier0Rate);
    printRow(bname, {off, on, sp, t0, agree ? "agree" : "DISAGREE"});
    if (verbose)
      for (size_t i = 0; i < speedTasks.size(); ++i)
        std::printf("  %-22s off %7.3fs  on %7.3fs\n",
                    speedTasks[i].label.c_str(), sOff.taskSeconds[i],
                    sOn.taskSeconds[i]);
    auto reportDisagreements = [&](const std::vector<Task>& tasks,
                                   const ModeRun& f, const ModeRun& p) {
      for (size_t i = 0; i < tasks.size(); ++i)
        if (f.outcomes[i] != p.outcomes[i])
          std::printf("  %s (w=%u): off=%s on=%s\n", tasks[i].label.c_str(),
                      tasks[i].width, check::toString(f.outcomes[i]),
                      check::toString(p.outcomes[i]));
    };
    if (!agree) {
      reportDisagreements(speedTasks, sOff, sOn);
      reportDisagreements(agreeTasks, aOff, aOn);
    }

    std::string perTask;
    for (size_t i = 0; i < agreeTasks.size(); ++i) {
      if (i != 0) perTask += ",";
      perTask += "{\"task\":" + json::quote(agreeTasks[i].label) +
                 ",\"off\":" + json::quote(check::toString(aOff.outcomes[i])) +
                 ",\"on\":" + json::quote(check::toString(aOn.outcomes[i])) +
                 "}";
    }
    if (!jsonBackends.empty()) jsonBackends += ",";
    jsonBackends +=
        "{\"backend\":" + json::quote(bname) +
        ",\"off_solve_seconds\":" + json::number(sOff.solveSeconds) +
        ",\"on_solve_seconds\":" + json::number(sOn.solveSeconds) +
        ",\"speedup\":" + json::number(speedup) +
        ",\"corpus_queries\":" + std::to_string(queries) +
        ",\"corpus_tier0_discharged\":" +
        std::to_string(aOn.discharge.tier0) +
        ",\"corpus_tier0_rate\":" + json::number(tier0Rate) +
        ",\"corpus_sliced\":" + std::to_string(aOn.discharge.sliced) +
        ",\"corpus_full_smt\":" + std::to_string(aOn.discharge.fullSmt) +
        ",\"corpus_solver_calls_on\":" +
        std::to_string(aOn.discharge.solverCalls) +
        ",\"corpus_solver_calls_off\":" +
        std::to_string(aOff.discharge.solverCalls) +
        ",\"verdicts_agree\":" + (agree ? "true" : "false") +
        ",\"corpus_verdicts\":[" + perTask + "]}";
  }

  std::string out =
      "{\"bench\":\"prefilter\",\"speedup_width\":16,"
      "\"agreement_width\":8,\"timeout_ms\":" +
      std::to_string(timeoutMs()) + ",\"jobs\":" +
      std::to_string(benchJobs()) + ",\"speedup_tasks\":" +
      std::to_string(speedTasks.size()) + ",\"agreement_tasks\":" +
      std::to_string(agreeTasks.size()) +
      ",\"corpus_tier0_rate\":" + json::number(corpusTier0Rate) +
      ",\"backends\":[" + jsonBackends + "]}";
  if (std::FILE* f = std::fopen("BENCH_prefilter.json", "w")) {
    std::fprintf(f, "%s\n", out.c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_prefilter.json\n");
  } else {
    std::printf("\ncould not write BENCH_prefilter.json\n");
  }

  std::printf("tier0 discharge rate: %.0f%%; best speedup: %.2fx; "
              "verdicts %s\n",
              100 * corpusTier0Rate, bestSpeedup,
              allAgree ? "agree on every task (both backends)"
                       : "DISAGREE — the abstract domain is unsound");
  // CI contract: identical verdicts are a hard failure if violated (the
  // domain may only ever prove Unsat). The discharge rate and speedup are
  // reported; BENCH_prefilter.json carries the measurements.
  return allAgree ? 0 : 1;
}
