// Ablation E: incremental solving (one long-lived solver per barrier
// interval, shared prefix asserted once, every pair query posed through
// checkAssuming) versus the pre-incremental baseline of a fresh solver per
// query. Two claims, measured separately:
//
//  * Speedup — on race checks that pose several pair queries per interval
//    (the quadratic access-pair flood incremental solving exists for), the
//    long-lived solver must be at least ~2x faster on at least one backend.
//    Kernels whose whole race check is a single hard query are excluded
//    from the timing aggregate: both modes pose the identical one query
//    there (the checker falls back to the fresh path below the reuse
//    threshold), so they only dilute the ratio with equal noise.
//  * Agreement — on the FULL corpus plus injected-bug mutants, both modes
//    must return identical verdicts on both backends. A mode that is fast
//    because it misses races (or invents them) must fail here.
//
// Emits BENCH_incremental.json next to the table for machine consumption.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "kernels/mutate.h"
#include "support/json.h"
#include "support/timer.h"

namespace {

using namespace pugpara;
using namespace pugpara::bench;

struct Task {
  std::string label;  // display + JSON name
  const check::VerificationSession* session;
  std::string kernel;  // kernel to race-check inside `session`
  uint32_t width;
};

struct ModeRun {
  double solveSeconds = 0;
  std::vector<check::Outcome> outcomes;
  std::vector<double> taskSeconds;
};

ModeRun runMode(const std::vector<Task>& tasks, smt::Backend backend,
                bool incremental) {
  std::vector<engine::BoundCheck> checks;
  for (const Task& t : tasks) {
    check::CheckOptions o;
    o.method = check::Method::Parameterized;
    o.width = t.width;
    o.backend = backend;
    o.solverTimeoutMs = timeoutMs();
    o.replayCounterexamples = false;
    o.incrementalSolving = incremental;
    checks.push_back(
        {t.session, {check::CheckKind::Races, t.kernel, "", o, {}, 0}});
  }
  engine::VerificationEngine eng(benchEngineOptions());
  std::vector<check::CheckResult> results = eng.runAll(checks);
  ModeRun run;
  for (const check::CheckResult& r : results) {
    run.solveSeconds += r.report.solveSeconds;
    run.outcomes.push_back(r.report.outcome);
    run.taskSeconds.push_back(r.report.solveSeconds);
  }
  return run;
}

}  // namespace

int main() {
  std::printf("Ablation: incremental vs fresh-per-query solving "
              "(parameterized race checks)\n\n");

  // Sessions live for the whole run; tasks reference into them.
  std::vector<std::unique_ptr<check::VerificationSession>> sessions;
  auto corpusSession = [&](uint32_t width) {
    std::vector<std::string> names;
    for (const auto& e : kernels::corpus()) names.push_back(e.name);
    sessions.push_back(std::make_unique<check::VerificationSession>(
        kernels::combinedSource(names, width)));
    return sessions.back().get();
  };
  struct MutantSpec {
    const char* base;
    kernels::MutationKind kind;
    size_t site;
  };
  const MutantSpec mutantSpecs[] = {
      {"transposeOpt", kernels::MutationKind::AddressOffByOne, 3},
      {"reduceStrided", kernels::MutationKind::AddressOffByOne, 2},
  };
  auto mutantTask = [&](const MutantSpec& m, uint32_t width) {
    auto prog =
        lang::parseAndAnalyze(kernels::combinedSource({m.base}, width));
    auto mutant = kernels::mutateAt(*prog->kernels[0], m.kind, m.site);
    std::string mutantName = mutant.kernel->name;
    prog->kernels.push_back(std::move(mutant.kernel));
    sessions.push_back(
        std::make_unique<check::VerificationSession>(std::move(prog)));
    return Task{std::string(m.base) + "+bug", sessions.back().get(),
                mutantName, width};
  };

  // Speedup workload: every corpus kernel whose race analysis floods the
  // solver with pair queries (several conditional accesses per interval),
  // at the paper's default 16-bit width, plus the racy reduceStrided
  // mutant (whose Sat weak-overlap queries trigger refinement queries).
  // The remaining corpus kernels pose one query per interval, and the
  // transposeOpt mutant spends its whole budget inside one hard
  // multiplication query — neither leaves anything to amortize, so they
  // live in the agreement set only.
  const check::VerificationSession* speed16 = corpusSession(16);
  std::vector<Task> speedTasks;
  for (const char* name : {"reduceMod", "reduceStrided", "reduceSequential",
                           "scanNaive", "scalarProd", "racyHistogram"})
    speedTasks.push_back({name, speed16, name, 16});
  speedTasks.push_back(mutantTask(mutantSpecs[1], 8));

  // Agreement workload: the full corpus at 8 bits (wide enough to decide,
  // narrow enough that the single-hard-query kernels finish) plus the
  // mutants again.
  const check::VerificationSession* agree8 = corpusSession(8);
  std::vector<Task> agreeTasks;
  for (const auto& e : kernels::corpus())
    agreeTasks.push_back({e.name, agree8, e.name, 8});
  for (const MutantSpec& m : mutantSpecs)
    agreeTasks.push_back(mutantTask(m, 8));

  const bool verbose = std::getenv("PUGPARA_BENCH_VERBOSE") != nullptr;
  printRow("Backend", {"fresh (s)", "incr (s)", "speedup", "verdicts"});
  bool allAgree = true;
  double bestSpeedup = 0;
  std::string jsonBackends;
  for (smt::Backend backend : {smt::Backend::Z3, smt::Backend::Mini}) {
    const char* bname = backend == smt::Backend::Z3 ? "Z3" : "MiniSMT";
    const ModeRun sFresh = runMode(speedTasks, backend, false);
    const ModeRun sIncr = runMode(speedTasks, backend, true);
    const ModeRun aFresh = runMode(agreeTasks, backend, false);
    const ModeRun aIncr = runMode(agreeTasks, backend, true);

    const bool agree = sFresh.outcomes == sIncr.outcomes &&
                       aFresh.outcomes == aIncr.outcomes;
    allAgree = allAgree && agree;
    const double speedup = sIncr.solveSeconds > 0
                               ? sFresh.solveSeconds / sIncr.solveSeconds
                               : 0;
    bestSpeedup = std::max(bestSpeedup, speedup);
    char fs[32], is[32], sp[32];
    std::snprintf(fs, sizeof fs, "%.3f", sFresh.solveSeconds);
    std::snprintf(is, sizeof is, "%.3f", sIncr.solveSeconds);
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    printRow(bname, {fs, is, sp, agree ? "agree" : "DISAGREE"});
    if (verbose)
      for (size_t i = 0; i < speedTasks.size(); ++i)
        std::printf("  %-22s fresh %7.3fs  incr %7.3fs\n",
                    speedTasks[i].label.c_str(), sFresh.taskSeconds[i],
                    sIncr.taskSeconds[i]);
    auto reportDisagreements = [&](const std::vector<Task>& tasks,
                                   const ModeRun& f, const ModeRun& i2) {
      for (size_t i = 0; i < tasks.size(); ++i)
        if (f.outcomes[i] != i2.outcomes[i])
          std::printf("  %s (w=%u): fresh=%s incremental=%s\n",
                      tasks[i].label.c_str(), tasks[i].width,
                      check::toString(f.outcomes[i]),
                      check::toString(i2.outcomes[i]));
    };
    if (!agree) {
      reportDisagreements(speedTasks, sFresh, sIncr);
      reportDisagreements(agreeTasks, aFresh, aIncr);
    }

    std::string perTask;
    for (size_t i = 0; i < agreeTasks.size(); ++i) {
      if (i != 0) perTask += ",";
      perTask += "{\"task\":" + json::quote(agreeTasks[i].label) +
                 ",\"fresh\":" +
                 json::quote(check::toString(aFresh.outcomes[i])) +
                 ",\"incremental\":" +
                 json::quote(check::toString(aIncr.outcomes[i])) + "}";
    }
    if (!jsonBackends.empty()) jsonBackends += ",";
    jsonBackends += "{\"backend\":" + json::quote(bname) +
                    ",\"fresh_solve_seconds\":" +
                    json::number(sFresh.solveSeconds) +
                    ",\"incremental_solve_seconds\":" +
                    json::number(sIncr.solveSeconds) +
                    ",\"speedup\":" + json::number(speedup) +
                    ",\"verdicts_agree\":" + (agree ? "true" : "false") +
                    ",\"corpus_verdicts\":[" + perTask + "]}";
  }

  std::string out =
      "{\"bench\":\"incremental\",\"speedup_width\":16,"
      "\"agreement_width\":8,\"timeout_ms\":" +
      std::to_string(timeoutMs()) + ",\"jobs\":" +
      std::to_string(benchJobs()) + ",\"speedup_tasks\":" +
      std::to_string(speedTasks.size()) + ",\"agreement_tasks\":" +
      std::to_string(agreeTasks.size()) + ",\"backends\":[" + jsonBackends +
      "]}";
  if (std::FILE* f = std::fopen("BENCH_incremental.json", "w")) {
    std::fprintf(f, "%s\n", out.c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_incremental.json\n");
  } else {
    std::printf("\ncould not write BENCH_incremental.json\n");
  }

  std::printf("best speedup: %.2fx; verdicts %s\n", bestSpeedup,
              allAgree ? "agree on every task (both backends)"
                       : "DISAGREE — incremental mode is unsound or stale");
  // CI contract: identical verdicts are a hard failure if violated. The
  // 2x speedup target is reported but not asserted (machine-load
  // dependent); BENCH_incremental.json carries the measurement.
  return allAgree ? 0 : 1;
}
