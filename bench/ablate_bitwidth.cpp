// Ablation A: sensitivity to the bit-vector width — the paper: "Z3's
// expressions are based on bit vectors; thus the solving time depends on
// the number of bits" (the kernels multiply extensively).
#include "bench_util.h"

int main() {
  using namespace pugpara;
  using namespace pugpara::bench;

  std::printf("Ablation: bit-width sensitivity (transpose equivalence, "
              "parameterized +C)\n\n");
  std::printf("%8s %12s %10s\n", "width", "outcome", "solve (s)");

  for (uint32_t width : {6u, 8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
    check::VerificationSession s(kernels::combinedSource(
        {"transposeNaive", "transposeOpt"}, width));
    check::CheckOptions o;
    o.method = check::Method::Parameterized;
    o.width = width;
    o.solverTimeoutMs = timeoutMs();
    o.concretize = {{"bdim.x", 4}, {"bdim.y", 4}, {"bdim.z", 1},
                    {"width", 8},  {"height", 8}};
    o.replayCounterexamples = false;
    check::Report r = s.equivalence("transposeNaive", "transposeOpt", o);
    std::printf("%8u %12s %10s\n", width, check::toString(r.outcome),
                cell(r).c_str());
  }

  std::printf("\nReduction pair for comparison (loop-aligned, fully "
              "symbolic config):\n");
  std::printf("%8s %12s %10s\n", "width", "outcome", "solve (s)");
  for (uint32_t width : {8u, 10u, 12u, 14u, 16u}) {
    check::VerificationSession s(
        kernels::combinedSource({"reduceMod", "reduceStrided"}, width));
    check::CheckOptions o;
    o.method = check::Method::Parameterized;
    o.width = width;
    o.solverTimeoutMs = timeoutMs();
    o.replayCounterexamples = false;
    check::Report r = s.equivalence("reduceMod", "reduceStrided", o);
    std::printf("%8u %12s %10s\n", width, check::toString(r.outcome),
                cell(r).c_str());
  }
  return 0;
}
