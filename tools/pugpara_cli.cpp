// pugpara — command-line driver for the PUGpara checkers.
//
//   pugpara FILE [--list] [--dump AST]
//   pugpara FILE --postcond K | --asserts K | --races K | --perf K
//   pugpara FILE --equiv A B
//   common flags: --method param|bughunt|nonparam|auto   (default: param)
//                 --width N                              (default: 16)
//                 --backend z3|mini                      (default: z3)
//                 --grid GX,GY,BX,BY,BZ   (enables the nonparam method)
//                 --concretize name=value (repeatable; "+C" knob)
//                 --timeout MS            (default: 60000)
//                 --no-replay
//
// Exit code: 0 verified / no bug found, 1 bug found, 2 unknown, 3 usage or
// front-end error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "check/session.h"
#include "lang/ast_printer.h"

namespace {

using namespace pugpara;

void usage() {
  std::fprintf(stderr,
               "usage: pugpara FILE [--list|--dump] "
               "[--postcond K|--asserts K|--races K|--perf K|--equiv A B]\n"
               "       [--method param|bughunt|nonparam|auto] [--width N]\n"
               "       [--backend z3|mini] [--grid GX,GY,BX,BY,BZ]\n"
               "       [--concretize name=value]... [--timeout MS] "
               "[--no-replay]\n");
}

int outcomeCode(const check::Report& r) {
  std::printf("%s\n", r.str().c_str());
  switch (r.outcome) {
    case check::Outcome::Verified:
    case check::Outcome::NoBugFound:
      return 0;
    case check::Outcome::BugFound:
      return 1;
    default:
      return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 3;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "pugpara: cannot open '%s'\n", argv[1]);
    return 3;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;
  opts.solverTimeoutMs = 60000;

  enum class Action { Summary, List, Dump, Postcond, Asserts, Races, Perf,
                      Equiv };
  Action action = Action::Summary;
  std::string k1, k2;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pugpara: %s expects an argument\n", what);
        std::exit(3);
      }
      return argv[++i];
    };
    if (arg == "--list") action = Action::List;
    else if (arg == "--dump") action = Action::Dump;
    else if (arg == "--postcond") { action = Action::Postcond; k1 = next("--postcond"); }
    else if (arg == "--asserts") { action = Action::Asserts; k1 = next("--asserts"); }
    else if (arg == "--races") { action = Action::Races; k1 = next("--races"); }
    else if (arg == "--perf") { action = Action::Perf; k1 = next("--perf"); }
    else if (arg == "--equiv") {
      action = Action::Equiv;
      k1 = next("--equiv");
      k2 = next("--equiv");
    } else if (arg == "--method") {
      const std::string m = next("--method");
      if (m == "param") opts.method = check::Method::Parameterized;
      else if (m == "bughunt") opts.method = check::Method::ParameterizedBugHunt;
      else if (m == "nonparam") opts.method = check::Method::NonParameterized;
      else if (m == "auto") opts.method = check::Method::Auto;
      else { usage(); return 3; }
    } else if (arg == "--width") {
      opts.width = static_cast<uint32_t>(std::stoul(next("--width")));
    } else if (arg == "--backend") {
      const std::string b = next("--backend");
      if (b == "z3") opts.backend = smt::Backend::Z3;
      else if (b == "mini") opts.backend = smt::Backend::Mini;
      else { usage(); return 3; }
    } else if (arg == "--grid") {
      const std::string g = next("--grid");
      encode::GridConfig grid;
      if (std::sscanf(g.c_str(), "%u,%u,%u,%u,%u", &grid.gdimX, &grid.gdimY,
                      &grid.bdimX, &grid.bdimY, &grid.bdimZ) != 5) {
        std::fprintf(stderr, "pugpara: --grid expects GX,GY,BX,BY,BZ\n");
        return 3;
      }
      opts.grid = grid;
    } else if (arg == "--concretize") {
      const std::string kv = next("--concretize");
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "pugpara: --concretize expects name=value\n");
        return 3;
      }
      opts.concretize[kv.substr(0, eq)] = std::stoull(kv.substr(eq + 1));
    } else if (arg == "--timeout") {
      opts.solverTimeoutMs =
          static_cast<uint32_t>(std::stoul(next("--timeout")));
    } else if (arg == "--no-replay") {
      opts.replayCounterexamples = false;
    } else {
      std::fprintf(stderr, "pugpara: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }

  try {
    check::VerificationSession session(buffer.str());

    switch (action) {
      case Action::List:
        for (const auto& k : session.program().kernels)
          std::printf("%s  (%zu params%s)\n", k->name.c_str(),
                      k->params.size(),
                      k->usesBarrier ? ", uses barriers" : "");
        return 0;
      case Action::Dump:
        for (const auto& k : session.program().kernels)
          std::printf("%s\n", lang::printKernel(*k).c_str());
        return 0;
      case Action::Postcond:
        return outcomeCode(session.postconditions(k1, opts));
      case Action::Asserts:
        return outcomeCode(session.asserts(k1, opts));
      case Action::Races:
        return outcomeCode(session.races(k1, opts));
      case Action::Perf:
        return outcomeCode(session.performance(k1, opts));
      case Action::Equiv:
        return outcomeCode(session.equivalence(k1, k2, opts));
      case Action::Summary: {
        // Default: postconditions + asserts + races for every kernel.
        int worst = 0;
        for (const auto& k : session.program().kernels) {
          std::printf("== %s ==\n", k->name.c_str());
          std::printf("  races:    ");
          worst = std::max(worst, outcomeCode(session.races(k->name, opts)));
          std::printf("  asserts:  ");
          worst = std::max(worst, outcomeCode(session.asserts(k->name, opts)));
          std::printf("  postcond: ");
          worst = std::max(worst,
                           outcomeCode(session.postconditions(k->name, opts)));
        }
        return worst;
      }
    }
  } catch (const PugError& e) {
    std::fprintf(stderr, "pugpara: %s\n", e.what());
    return 3;
  }
  return 3;
}
