// pugpara — command-line driver for the PUGpara checkers.
//
//   pugpara FILE [--list] [--dump]
//   pugpara FILE --postcond K | --asserts K | --races K | --perf K
//   pugpara FILE --equiv A B
//   pugpara FILE --all                 (races+asserts+postcond, every kernel)
// common flags:   --method param|bughunt|nonparam|auto   (default: param)
//                 --width N                              (default: 16)
//                 --backend z3|mini                      (default: z3)
//                 --grid GX,GY,BX,BY,BZ   (enables the nonparam method)
//                 --concretize name=value (repeatable; "+C" knob)
//                 --timeout MS            (default: 60000)
//                 --no-replay
//                 --no-prefilter  disable the tiered query-discharge
//                                 pipeline (abstract-domain Tier 0 +
//                                 cone-of-influence slicing Tier 1)
// MiniSMT flags:  --no-lbd        disable LBD learnt-clause management
//                 --no-chrono     disable chronological backtracking
//                 --no-inprocess  disable subsumption/variable elimination
//                 --no-rewrite    disable the word-level rewriter
//                 --mini-seed N   base seed for portfolio diversification
// engine flags:   --jobs N      worker threads for batches (0 = auto, default 1)
//                 --portfolio   race Z3 vs MiniSMT per query, first answer wins
//                 --mini-portfolio N  race N MiniSMT seed clones per query
//                               (forces --backend mini; excludes --portfolio)
//                 --json        machine-readable results on stdout
//                 --deadline MS per-check wall-clock budget (overruns -> unknown)
//                 --cache FILE  persistent solver-query cache (loaded+saved)
//
// Exit code: 0 verified / no bug found, 1 bug found, 2 unknown, 3 usage or
// front-end error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/session.h"
#include "engine/engine.h"
#include "lang/ast_printer.h"
#include "smt/mini/stats.h"

namespace {

using namespace pugpara;

void usage() {
  std::fprintf(stderr,
               "usage: pugpara FILE [--list|--dump] [--all] "
               "[--postcond K|--asserts K|--races K|--perf K|--equiv A B]\n"
               "       [--method param|bughunt|nonparam|auto] [--width N]\n"
               "       [--backend z3|mini] [--grid GX,GY,BX,BY,BZ]\n"
               "       [--concretize name=value]... [--timeout MS] "
               "[--no-replay] [--no-prefilter]\n"
               "       [--no-lbd] [--no-chrono] [--no-inprocess] "
               "[--no-rewrite] [--mini-seed N]\n"
               "       [--jobs N] [--portfolio] [--mini-portfolio N] [--json] "
               "[--deadline MS] [--cache FILE]\n");
}

int outcomeCode(const check::Report& r) {
  switch (r.outcome) {
    case check::Outcome::Verified:
    case check::Outcome::NoBugFound:
      return 0;
    case check::Outcome::BugFound:
      return 1;
    default:
      return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 3;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "pugpara: cannot open '%s'\n", argv[1]);
    return 3;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;
  opts.solverTimeoutMs = 60000;

  enum class Action { Summary, List, Dump, Postcond, Asserts, Races, Perf,
                      Equiv };
  Action action = Action::Summary;
  std::string k1, k2;

  engine::EngineOptions eopts;
  bool jsonOut = false;
  uint32_t deadlineMs = 0;
  std::string cachePath;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pugpara: %s expects an argument\n", what);
        std::exit(3);
      }
      return argv[++i];
    };
    auto nextNum = [&](const char* what) -> uint64_t {
      const std::string v = next(what);
      try {
        size_t pos = 0;
        const uint64_t n = std::stoull(v, &pos);
        if (pos == v.size()) return n;
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "pugpara: %s expects a number, got '%s'\n", what,
                   v.c_str());
      std::exit(3);
    };
    if (arg == "--list") action = Action::List;
    else if (arg == "--dump") action = Action::Dump;
    else if (arg == "--all") action = Action::Summary;
    else if (arg == "--postcond") { action = Action::Postcond; k1 = next("--postcond"); }
    else if (arg == "--asserts") { action = Action::Asserts; k1 = next("--asserts"); }
    else if (arg == "--races") { action = Action::Races; k1 = next("--races"); }
    else if (arg == "--perf") { action = Action::Perf; k1 = next("--perf"); }
    else if (arg == "--equiv") {
      action = Action::Equiv;
      k1 = next("--equiv");
      k2 = next("--equiv");
    } else if (arg == "--method") {
      const std::string m = next("--method");
      if (m == "param") opts.method = check::Method::Parameterized;
      else if (m == "bughunt") opts.method = check::Method::ParameterizedBugHunt;
      else if (m == "nonparam") opts.method = check::Method::NonParameterized;
      else if (m == "auto") opts.method = check::Method::Auto;
      else { usage(); return 3; }
    } else if (arg == "--width") {
      opts.width = static_cast<uint32_t>(nextNum("--width"));
    } else if (arg == "--backend") {
      const std::string b = next("--backend");
      if (b == "z3") opts.backend = smt::Backend::Z3;
      else if (b == "mini") opts.backend = smt::Backend::Mini;
      else { usage(); return 3; }
    } else if (arg == "--grid") {
      const std::string g = next("--grid");
      encode::GridConfig grid;
      if (std::sscanf(g.c_str(), "%u,%u,%u,%u,%u", &grid.gdimX, &grid.gdimY,
                      &grid.bdimX, &grid.bdimY, &grid.bdimZ) != 5) {
        std::fprintf(stderr, "pugpara: --grid expects GX,GY,BX,BY,BZ\n");
        return 3;
      }
      opts.grid = grid;
    } else if (arg == "--concretize") {
      const std::string kv = next("--concretize");
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "pugpara: --concretize expects name=value\n");
        return 3;
      }
      const std::string val = kv.substr(eq + 1);
      try {
        size_t pos = 0;
        opts.concretize[kv.substr(0, eq)] = std::stoull(val, &pos);
        if (pos != val.size()) throw std::invalid_argument(val);
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "pugpara: --concretize expects name=value, got '%s'\n",
                     kv.c_str());
        return 3;
      }
    } else if (arg == "--timeout") {
      opts.solverTimeoutMs = static_cast<uint32_t>(nextNum("--timeout"));
    } else if (arg == "--no-replay") {
      opts.replayCounterexamples = false;
    } else if (arg == "--no-prefilter") {
      opts.prefilter = false;
    } else if (arg == "--no-lbd") {
      opts.mini.lbd = false;
    } else if (arg == "--no-chrono") {
      opts.mini.chrono = false;
    } else if (arg == "--no-inprocess") {
      opts.mini.inprocess = false;
    } else if (arg == "--no-rewrite") {
      opts.mini.rewrite = false;
    } else if (arg == "--mini-seed") {
      opts.mini.seed = nextNum("--mini-seed");
    } else if (arg == "--jobs") {
      eopts.jobs = static_cast<unsigned>(nextNum("--jobs"));
    } else if (arg == "--portfolio") {
      eopts.portfolio = true;
    } else if (arg == "--mini-portfolio") {
      eopts.miniPortfolio = static_cast<unsigned>(nextNum("--mini-portfolio"));
    } else if (arg == "--json") {
      jsonOut = true;
    } else if (arg == "--deadline") {
      deadlineMs = static_cast<uint32_t>(nextNum("--deadline"));
    } else if (arg == "--cache") {
      cachePath = next("--cache");
    } else {
      std::fprintf(stderr, "pugpara: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }

  if (eopts.portfolio && eopts.miniPortfolio > 1) {
    std::fprintf(stderr,
                 "pugpara: --portfolio and --mini-portfolio are mutually "
                 "exclusive\n");
    return 3;
  }

  try {
    check::VerificationSession session(buffer.str());

    switch (action) {
      case Action::List:
        for (const auto& k : session.program().kernels)
          std::printf("%s  (%zu params%s)\n", k->name.c_str(),
                      k->params.size(),
                      k->usesBarrier ? ", uses barriers" : "");
        return 0;
      case Action::Dump:
        for (const auto& k : session.program().kernels)
          std::printf("%s\n", lang::printKernel(*k).c_str());
        return 0;
      default:
        break;
    }

    // Every checking action runs through the engine: build the batch, run
    // it on the worker pool, print in deterministic request order.
    std::vector<check::CheckRequest> requests;
    auto push = [&](check::CheckKind kind, const std::string& a,
                    const std::string& b = "") {
      check::CheckRequest r;
      r.kind = kind;
      r.kernel = a;
      r.kernel2 = b;
      r.options = opts;
      r.deadlineMs = deadlineMs;
      requests.push_back(std::move(r));
    };
    switch (action) {
      case Action::Postcond: push(check::CheckKind::Postconditions, k1); break;
      case Action::Asserts: push(check::CheckKind::Asserts, k1); break;
      case Action::Races: push(check::CheckKind::Races, k1); break;
      case Action::Perf: push(check::CheckKind::Performance, k1); break;
      case Action::Equiv: push(check::CheckKind::Equivalence, k1, k2); break;
      case Action::Summary:
        for (const auto& k : session.program().kernels) {
          push(check::CheckKind::Races, k->name);
          push(check::CheckKind::Asserts, k->name);
          push(check::CheckKind::Postconditions, k->name);
        }
        break;
      default:
        break;
    }

    eopts.cache = std::make_shared<smt::QueryCache>();
    if (!cachePath.empty()) eopts.cache->load(cachePath);

    engine::VerificationEngine engine(eopts);
    std::vector<check::CheckResult> results =
        engine.runAll(session, requests);

    int worst = 0;
    if (jsonOut) {
      std::printf("{\"results\":[");
      for (size_t i = 0; i < results.size(); ++i) {
        std::printf("%s%s", i ? "," : "", results[i].json().c_str());
        worst = std::max(worst, outcomeCode(results[i].report));
      }
      const smt::QueryCache::Stats cs = engine.cache().stats();
      check::DischargeStats total;
      for (const auto& r : results) {
        total.tier0 += r.report.discharge.tier0;
        total.sliced += r.report.discharge.sliced;
        total.fullSmt += r.report.discharge.fullSmt;
        total.solverCalls += r.report.discharge.solverCalls;
      }
      std::printf(
          "],\"engine\":{\"jobs\":%u,\"portfolio\":%s,\"miniPortfolio\":%u,"
          "\"prefilter\":%s,"
          "\"cacheHits\":%llu,\"cacheMisses\":%llu,\"cacheInsertions\":%llu,"
          "\"tier0Discharged\":%llu,\"slicedQueries\":%llu,"
          "\"fullSmtQueries\":%llu,\"solverCalls\":%llu},",
          eopts.jobs, eopts.portfolio ? "true" : "false", eopts.miniPortfolio,
          opts.prefilter ? "true" : "false",
          static_cast<unsigned long long>(cs.hits),
          static_cast<unsigned long long>(cs.misses),
          static_cast<unsigned long long>(cs.insertions),
          static_cast<unsigned long long>(total.tier0),
          static_cast<unsigned long long>(total.sliced),
          static_cast<unsigned long long>(total.fullSmt),
          static_cast<unsigned long long>(total.solverCalls));
      const smt::mini::MiniStatsSnapshot ms = smt::mini::snapshotMiniStats();
      std::printf(
          "\"minismt\":{\"conflicts\":%llu,\"decisions\":%llu,"
          "\"propagations\":%llu,\"restarts\":%llu,\"learnts\":%llu,"
          "\"lbdHistogram\":{\"glue\":%llu,\"mid\":%llu,\"large\":%llu},"
          "\"learntsDeleted\":%llu,\"chronoBacktracks\":%llu,"
          "\"inprocessRuns\":%llu,\"subsumed\":%llu,\"strengthened\":%llu,"
          "\"eliminatedVars\":%llu,\"restoredVars\":%llu,"
          "\"exportedClauses\":%llu,\"importedClauses\":%llu,"
          "\"rewrites\":%llu,\"portfolioRaces\":%llu,\"winnerSeed\":%llu}}\n",
          static_cast<unsigned long long>(ms.conflicts),
          static_cast<unsigned long long>(ms.decisions),
          static_cast<unsigned long long>(ms.propagations),
          static_cast<unsigned long long>(ms.restarts),
          static_cast<unsigned long long>(ms.learnts),
          static_cast<unsigned long long>(ms.lbdGlue),
          static_cast<unsigned long long>(ms.lbdMid),
          static_cast<unsigned long long>(ms.lbdLarge),
          static_cast<unsigned long long>(ms.learntsDeleted),
          static_cast<unsigned long long>(ms.chronoBacktracks),
          static_cast<unsigned long long>(ms.inprocessRuns),
          static_cast<unsigned long long>(ms.subsumed),
          static_cast<unsigned long long>(ms.strengthened),
          static_cast<unsigned long long>(ms.eliminatedVars),
          static_cast<unsigned long long>(ms.restoredVars),
          static_cast<unsigned long long>(ms.exportedClauses),
          static_cast<unsigned long long>(ms.importedClauses),
          static_cast<unsigned long long>(ms.rewrites),
          static_cast<unsigned long long>(ms.portfolioRaces),
          static_cast<unsigned long long>(ms.winnerSeed));
    } else if (action == Action::Summary) {
      // Grouped per kernel, three properties per group (request order).
      for (size_t i = 0; i < results.size(); ++i) {
        if (i % 3 == 0)
          std::printf("== %s ==\n", results[i].kernel.c_str());
        const char* tag = i % 3 == 0   ? "races:   "
                          : i % 3 == 1 ? "asserts: "
                                       : "postcond:";
        std::printf("  %s %s\n", tag, results[i].report.str().c_str());
        worst = std::max(worst, outcomeCode(results[i].report));
      }
    } else {
      for (const auto& r : results) {
        std::printf("%s\n", r.report.str().c_str());
        worst = std::max(worst, outcomeCode(r.report));
      }
    }

    if (!jsonOut && (requests.size() > 1 || !cachePath.empty())) {
      const smt::QueryCache::Stats cs = engine.cache().stats();
      std::fprintf(stderr,
                   "pugpara: engine: %zu checks, jobs=%u%s, cache: %llu "
                   "hit(s), %llu miss(es)\n",
                   requests.size(), eopts.jobs,
                   eopts.portfolio ? ", portfolio" : "",
                   static_cast<unsigned long long>(cs.hits),
                   static_cast<unsigned long long>(cs.misses));
    }
    if (!cachePath.empty() && !engine.cache().save(cachePath))
      std::fprintf(stderr, "pugpara: warning: cannot write cache '%s'\n",
                   cachePath.c_str());
    return worst;
  } catch (const PugError& e) {
    std::fprintf(stderr, "pugpara: %s\n", e.what());
    return 3;
  }
  return 3;
}
