// pugpara — command-line driver for the PUGpara checkers.
//
// Batch mode (the default when the first argument is a file):
//   pugpara FILE [--list] [--dump]
//   pugpara FILE --postcond K | --asserts K | --races K | --perf K
//   pugpara FILE --equiv A B
//   pugpara FILE --all                 (races+asserts+postcond, every kernel)
// common flags:   --method param|bughunt|nonparam|auto   (default: param)
//                 --width N                              (default: 16)
//                 --backend z3|mini                      (default: z3)
//                 --grid GX,GY,BX,BY,BZ   (enables the nonparam method)
//                 --concretize name=value (repeatable; "+C" knob)
//                 --timeout MS            (default: 60000)
//                 --no-replay
//                 --no-prefilter  disable the tiered query-discharge
//                                 pipeline (abstract-domain Tier 0 +
//                                 cone-of-influence slicing Tier 1)
// MiniSMT flags:  --no-lbd        disable LBD learnt-clause management
//                 --no-chrono     disable chronological backtracking
//                 --no-inprocess  disable subsumption/variable elimination
//                 --no-rewrite    disable the word-level rewriter
//                 --mini-seed N   base seed for portfolio diversification
// engine flags:   --jobs N      worker threads for batches (0 = auto, default 1)
//                 --portfolio   race Z3 vs MiniSMT per query, first answer wins
//                 --mini-portfolio N  race N MiniSMT seed clones per query
//                               (forces --backend mini; excludes --portfolio)
//                 --json        machine-readable results on stdout
//                 --deadline MS per-check wall-clock budget (overruns -> unknown)
//                 --cache FILE  persistent solver-query cache (loaded+saved)
//
// Daemon mode:
//   pugpara serve [--socket PATH] [--port N] [--jobs N] [--queue N]
//                 [--cache-dir DIR] [--cache-cap N] [--deadline MS]
//                 [--method M] [--width N] [--backend B] [--timeout MS]
//                 [--no-prefilter] [--portfolio] [--mini-portfolio N]
//   pugpara submit (--socket PATH | --host H --port N) FILE
//                 [--all] [--races K|--asserts K|--postcond K|--perf K|
//                  --equiv A B] [--method M] [--width N] [--backend B]
//                 [--timeout MS] [--deadline MS] [--no-prefilter]
//                 [--no-replay] [--id ID] [--json]
//   pugpara submit (--socket ...|--host/--port) --ping|--stats|--shutdown
//   pugpara corpus [--width N] [--list]      (dump the built-in corpus)
//
// Exit code: 0 verified / no bug found, 1 bug found, 2 unknown, 3 usage or
// front-end error (and, for submit, transport/overload failures).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/session.h"
#include "engine/engine.h"
#include "kernels/corpus.h"
#include "lang/ast_printer.h"
#include "serve/client.h"
#include "serve/server.h"
#include "smt/mini/stats.h"

namespace {

using namespace pugpara;

void usage() {
  std::fprintf(stderr,
               "usage: pugpara FILE [--list|--dump] [--all] "
               "[--postcond K|--asserts K|--races K|--perf K|--equiv A B]\n"
               "       [--method param|bughunt|nonparam|auto] [--width N]\n"
               "       [--backend z3|mini] [--grid GX,GY,BX,BY,BZ]\n"
               "       [--concretize name=value]... [--timeout MS] "
               "[--no-replay] [--no-prefilter]\n"
               "       [--no-lbd] [--no-chrono] [--no-inprocess] "
               "[--no-rewrite] [--mini-seed N]\n"
               "       [--jobs N] [--portfolio] [--mini-portfolio N] [--json] "
               "[--deadline MS] [--cache FILE]\n"
               "   or: pugpara serve [--socket PATH] [--port N] [--jobs N] "
               "[--queue N] [--cache-dir DIR]\n"
               "       [--cache-cap N] [--deadline MS] [--method M] "
               "[--width N] [--backend B]\n"
               "       [--timeout MS] [--no-prefilter] [--portfolio] "
               "[--mini-portfolio N]\n"
               "   or: pugpara submit (--socket PATH|--host H --port N) "
               "[FILE] [check flags] [--json]\n"
               "       [--ping|--stats|--shutdown]\n"
               "   or: pugpara corpus [--width N] [--list]\n");
}

int outcomeCode(const check::Report& r) {
  switch (r.outcome) {
    case check::Outcome::Verified:
    case check::Outcome::NoBugFound:
      return 0;
    case check::Outcome::BugFound:
      return 1;
    default:
      return 2;
  }
}

// Shared argv helpers; `i` is the caller's loop index.
std::string argNext(int argc, char** argv, int& i, const char* what) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "pugpara: %s expects an argument\n", what);
    std::exit(3);
  }
  return argv[++i];
}

uint64_t argNextNum(int argc, char** argv, int& i, const char* what) {
  const std::string v = argNext(argc, argv, i, what);
  try {
    size_t pos = 0;
    const uint64_t n = std::stoull(v, &pos);
    if (pos == v.size()) return n;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "pugpara: %s expects a number, got '%s'\n", what,
               v.c_str());
  std::exit(3);
}

bool parseMethodFlag(const std::string& m, check::CheckOptions* opts) {
  if (m == "param") opts->method = check::Method::Parameterized;
  else if (m == "bughunt") opts->method = check::Method::ParameterizedBugHunt;
  else if (m == "nonparam") opts->method = check::Method::NonParameterized;
  else if (m == "auto") opts->method = check::Method::Auto;
  else return false;
  return true;
}

bool parseBackendFlag(const std::string& b, check::CheckOptions* opts) {
  if (b == "z3") opts->backend = smt::Backend::Z3;
  else if (b == "mini") opts->backend = smt::Backend::Mini;
  else return false;
  return true;
}

// ---------------------------------------------------------------------------
// pugpara serve
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_signal = 0;
void onSignal(int sig) { g_signal = sig; }

int serveMain(int argc, char** argv) {
  serve::ServeOptions sopts;
  sopts.defaults.method = check::Method::Parameterized;
  sopts.defaults.solverTimeoutMs = 60000;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      sopts.socketPath = argNext(argc, argv, i, "--socket");
    } else if (arg == "--port") {
      sopts.tcpPort = static_cast<uint16_t>(argNextNum(argc, argv, i, "--port"));
    } else if (arg == "--jobs") {
      sopts.jobs = static_cast<unsigned>(argNextNum(argc, argv, i, "--jobs"));
    } else if (arg == "--queue") {
      sopts.queueCapacity = argNextNum(argc, argv, i, "--queue");
    } else if (arg == "--cache-dir") {
      sopts.cacheDir = argNext(argc, argv, i, "--cache-dir");
    } else if (arg == "--cache-cap") {
      sopts.queryCacheCapacity = argNextNum(argc, argv, i, "--cache-cap");
    } else if (arg == "--deadline") {
      sopts.defaultDeadlineMs =
          static_cast<uint32_t>(argNextNum(argc, argv, i, "--deadline"));
    } else if (arg == "--method") {
      if (!parseMethodFlag(argNext(argc, argv, i, "--method"),
                           &sopts.defaults)) {
        usage();
        return 3;
      }
    } else if (arg == "--width") {
      sopts.defaults.width =
          static_cast<uint32_t>(argNextNum(argc, argv, i, "--width"));
    } else if (arg == "--backend") {
      if (!parseBackendFlag(argNext(argc, argv, i, "--backend"),
                            &sopts.defaults)) {
        usage();
        return 3;
      }
    } else if (arg == "--timeout") {
      sopts.defaults.solverTimeoutMs =
          static_cast<uint32_t>(argNextNum(argc, argv, i, "--timeout"));
    } else if (arg == "--no-prefilter") {
      sopts.defaults.prefilter = false;
    } else if (arg == "--portfolio") {
      sopts.portfolio = true;
    } else if (arg == "--mini-portfolio") {
      sopts.miniPortfolio =
          static_cast<unsigned>(argNextNum(argc, argv, i, "--mini-portfolio"));
    } else {
      std::fprintf(stderr, "pugpara serve: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }
  if (sopts.socketPath.empty() && sopts.tcpPort == 0) {
    std::fprintf(stderr,
                 "pugpara serve: need --socket PATH and/or --port N\n");
    return 3;
  }
  if (sopts.portfolio && sopts.miniPortfolio > 1) {
    std::fprintf(stderr,
                 "pugpara serve: --portfolio and --mini-portfolio are "
                 "mutually exclusive\n");
    return 3;
  }

  serve::Server server(sopts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "pugpara serve: %s\n", err.c_str());
    return 3;
  }
  if (!sopts.socketPath.empty())
    std::fprintf(stderr, "pugpara serve: listening on unix:%s\n",
                 sopts.socketPath.c_str());
  if (server.boundTcpPort() != 0)
    std::fprintf(stderr, "pugpara serve: listening on tcp:127.0.0.1:%u\n",
                 server.boundTcpPort());
  std::fprintf(stderr,
               "pugpara serve: cache-dir=%s queue=%zu deadline=%ums\n",
               sopts.cacheDir.empty() ? "(memory)" : sopts.cacheDir.c_str(),
               sopts.queueCapacity, sopts.defaultDeadlineMs);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // Signal handlers cannot notify the server's condvar, so poll the flag.
  while (!server.waitFor(200)) {
    if (g_signal != 0) break;
  }
  server.stop();
  const serve::ServeStats st = server.stats();
  std::fprintf(stderr,
               "pugpara serve: exiting: %llu connection(s), %llu request(s), "
               "%llu check(s) run, %llu memo hit(s), %llu shed\n",
               static_cast<unsigned long long>(st.connections),
               static_cast<unsigned long long>(st.requests),
               static_cast<unsigned long long>(st.checksRun),
               static_cast<unsigned long long>(st.memoHits),
               static_cast<unsigned long long>(st.shedChecks));
  return 0;
}

// ---------------------------------------------------------------------------
// pugpara submit
// ---------------------------------------------------------------------------

int submitMain(int argc, char** argv) {
  std::string socketPath, host = "127.0.0.1", file, id = "cli";
  uint16_t port = 0;
  bool jsonOut = false;
  serve::Request req;
  req.kind = "all";
  req.options.method = check::Method::Parameterized;
  req.options.solverTimeoutMs = 60000;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      socketPath = argNext(argc, argv, i, "--socket");
    } else if (arg == "--host") {
      host = argNext(argc, argv, i, "--host");
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(argNextNum(argc, argv, i, "--port"));
    } else if (arg == "--json") {
      jsonOut = true;
    } else if (arg == "--id") {
      id = argNext(argc, argv, i, "--id");
    } else if (arg == "--ping") {
      req.op = serve::Request::Op::Ping;
    } else if (arg == "--stats") {
      req.op = serve::Request::Op::Stats;
    } else if (arg == "--shutdown") {
      req.op = serve::Request::Op::Shutdown;
    } else if (arg == "--all") {
      req.kind = "all";
    } else if (arg == "--races") {
      req.kind = "races";
      req.kernel = argNext(argc, argv, i, "--races");
    } else if (arg == "--asserts") {
      req.kind = "asserts";
      req.kernel = argNext(argc, argv, i, "--asserts");
    } else if (arg == "--postcond") {
      req.kind = "postcond";
      req.kernel = argNext(argc, argv, i, "--postcond");
    } else if (arg == "--perf") {
      req.kind = "perf";
      req.kernel = argNext(argc, argv, i, "--perf");
    } else if (arg == "--equiv") {
      req.kind = "equiv";
      req.kernel = argNext(argc, argv, i, "--equiv");
      req.kernel2 = argNext(argc, argv, i, "--equiv");
    } else if (arg == "--method") {
      if (!parseMethodFlag(argNext(argc, argv, i, "--method"), &req.options)) {
        usage();
        return 3;
      }
    } else if (arg == "--width") {
      req.options.width =
          static_cast<uint32_t>(argNextNum(argc, argv, i, "--width"));
    } else if (arg == "--backend") {
      if (!parseBackendFlag(argNext(argc, argv, i, "--backend"),
                            &req.options)) {
        usage();
        return 3;
      }
    } else if (arg == "--timeout") {
      req.options.solverTimeoutMs =
          static_cast<uint32_t>(argNextNum(argc, argv, i, "--timeout"));
    } else if (arg == "--deadline") {
      req.deadlineMs =
          static_cast<uint32_t>(argNextNum(argc, argv, i, "--deadline"));
    } else if (arg == "--no-prefilter") {
      req.options.prefilter = false;
    } else if (arg == "--no-replay") {
      req.options.replayCounterexamples = false;
    } else if (!arg.empty() && arg[0] != '-' && file.empty()) {
      file = arg;
    } else {
      std::fprintf(stderr, "pugpara submit: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }

  if (socketPath.empty() && port == 0) {
    std::fprintf(stderr,
                 "pugpara submit: need --socket PATH or --host/--port\n");
    return 3;
  }
  req.id = id;
  if (req.op == serve::Request::Op::Check) {
    if (file.empty()) {
      std::fprintf(stderr, "pugpara submit: need a FILE to check\n");
      return 3;
    }
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "pugpara submit: cannot open '%s'\n", file.c_str());
      return 3;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    req.source = buffer.str();
  }

  serve::Client client;
  std::string err;
  const bool connected = socketPath.empty()
                             ? client.connectTcp(host, port, &err)
                             : client.connectUnix(socketPath, &err);
  if (!connected) {
    std::fprintf(stderr, "pugpara submit: %s\n", err.c_str());
    return 3;
  }

  auto printEvent = [&](const serve::jsonp::Value& ev, const std::string& raw) {
    if (jsonOut) {
      std::printf("%s\n", raw.c_str());
      return;
    }
    const std::string event = ev.getString("event");
    if (event == "result") {
      const serve::jsonp::Value* result = ev.find("result");
      const serve::jsonp::Value* report = result ? result->find("report") : nullptr;
      if (!result || !report) return;
      const serve::jsonp::Value* solve = report->find("solveSeconds");
      const std::string detail = report->getString("detail");
      std::printf("%s(%s): %s (%s, %.3gs solve)%s%s%s\n",
                  result->getString("kind", "?").c_str(),
                  result->getString("kernel", "?").c_str(),
                  report->getString("outcome", "unknown").c_str(),
                  report->getString("method", "?").c_str(),
                  solve && solve->kind == serve::jsonp::Value::Kind::Number
                      ? solve->number
                      : 0.0,
                  detail.empty() ? "" : ": ", detail.c_str(),
                  ev.getBool("cached", false) ? "  [cached]" : "");
    } else if (event == "done") {
      std::fprintf(stderr,
                   "pugpara submit: done: %llu check(s), %llu memo hit(s), "
                   "%.3f ms\n",
                   static_cast<unsigned long long>(ev.getU64("checks", 0)),
                   static_cast<unsigned long long>(ev.getU64("memoHits", 0)),
                   ev.find("elapsedMs") ? ev.find("elapsedMs")->number : 0.0);
    } else if (event == "overloaded") {
      std::fprintf(stderr,
                   "pugpara submit: server overloaded (%llu shed)\n",
                   static_cast<unsigned long long>(ev.getU64("shed", 0)));
    } else if (event == "error") {
      std::fprintf(stderr, "pugpara submit: server error: %s\n",
                   ev.getString("error").c_str());
    } else if (event == "pong") {
      std::printf("pong\n");
    } else if (event == "stats") {
      std::printf("%s\n", raw.c_str());
    } else if (event == "bye") {
      std::printf("bye\n");
    }
  };

  const serve::SubmitOutcome out = serve::submit(client, req, printEvent);
  if (req.op != serve::Request::Op::Check) {
    const char* want = req.op == serve::Request::Op::Ping     ? "pong"
                       : req.op == serve::Request::Op::Stats  ? "stats"
                                                              : "bye";
    if (out.terminal == want) return 0;
    std::fprintf(stderr, "pugpara submit: %s\n",
                 out.error.empty() ? "unexpected terminal event"
                                   : out.error.c_str());
    return 3;
  }
  if (out.terminal != "done" && !jsonOut && !out.error.empty())
    std::fprintf(stderr, "pugpara submit: %s\n", out.error.c_str());
  return out.exitCode();
}

// ---------------------------------------------------------------------------
// pugpara corpus
// ---------------------------------------------------------------------------

int corpusMain(int argc, char** argv) {
  uint32_t width = 16;
  bool list = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--width") {
      width = static_cast<uint32_t>(argNextNum(argc, argv, i, "--width"));
    } else if (arg == "--list") {
      list = true;
    } else {
      std::fprintf(stderr, "pugpara corpus: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }
  if (list) {
    for (const auto& e : kernels::corpus())
      std::printf("%-24s %-12s %s\n", e.name.c_str(), e.family.c_str(),
                  e.description.c_str());
    return 0;
  }
  std::vector<std::string> names;
  for (const auto& e : kernels::corpus()) names.push_back(e.name);
  std::printf("%s", kernels::combinedSource(names, width).c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// batch mode (the original single-shot CLI)
// ---------------------------------------------------------------------------

int batchMain(int argc, char** argv) {
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "pugpara: cannot open '%s'\n", argv[1]);
    return 3;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  check::CheckOptions opts;
  opts.method = check::Method::Parameterized;
  opts.solverTimeoutMs = 60000;

  enum class Action { Summary, List, Dump, Postcond, Asserts, Races, Perf,
                      Equiv };
  Action action = Action::Summary;
  std::string k1, k2;

  engine::EngineOptions eopts;
  bool jsonOut = false;
  uint32_t deadlineMs = 0;
  std::string cachePath;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      return argNext(argc, argv, i, what);
    };
    auto nextNum = [&](const char* what) -> uint64_t {
      return argNextNum(argc, argv, i, what);
    };
    if (arg == "--list") action = Action::List;
    else if (arg == "--dump") action = Action::Dump;
    else if (arg == "--all") action = Action::Summary;
    else if (arg == "--postcond") { action = Action::Postcond; k1 = next("--postcond"); }
    else if (arg == "--asserts") { action = Action::Asserts; k1 = next("--asserts"); }
    else if (arg == "--races") { action = Action::Races; k1 = next("--races"); }
    else if (arg == "--perf") { action = Action::Perf; k1 = next("--perf"); }
    else if (arg == "--equiv") {
      action = Action::Equiv;
      k1 = next("--equiv");
      k2 = next("--equiv");
    } else if (arg == "--method") {
      if (!parseMethodFlag(next("--method"), &opts)) { usage(); return 3; }
    } else if (arg == "--width") {
      opts.width = static_cast<uint32_t>(nextNum("--width"));
    } else if (arg == "--backend") {
      if (!parseBackendFlag(next("--backend"), &opts)) { usage(); return 3; }
    } else if (arg == "--grid") {
      const std::string g = next("--grid");
      encode::GridConfig grid;
      if (std::sscanf(g.c_str(), "%u,%u,%u,%u,%u", &grid.gdimX, &grid.gdimY,
                      &grid.bdimX, &grid.bdimY, &grid.bdimZ) != 5) {
        std::fprintf(stderr, "pugpara: --grid expects GX,GY,BX,BY,BZ\n");
        return 3;
      }
      opts.grid = grid;
    } else if (arg == "--concretize") {
      const std::string kv = next("--concretize");
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "pugpara: --concretize expects name=value\n");
        return 3;
      }
      const std::string val = kv.substr(eq + 1);
      try {
        size_t pos = 0;
        opts.concretize[kv.substr(0, eq)] = std::stoull(val, &pos);
        if (pos != val.size()) throw std::invalid_argument(val);
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "pugpara: --concretize expects name=value, got '%s'\n",
                     kv.c_str());
        return 3;
      }
    } else if (arg == "--timeout") {
      opts.solverTimeoutMs = static_cast<uint32_t>(nextNum("--timeout"));
    } else if (arg == "--no-replay") {
      opts.replayCounterexamples = false;
    } else if (arg == "--no-prefilter") {
      opts.prefilter = false;
    } else if (arg == "--no-lbd") {
      opts.mini.lbd = false;
    } else if (arg == "--no-chrono") {
      opts.mini.chrono = false;
    } else if (arg == "--no-inprocess") {
      opts.mini.inprocess = false;
    } else if (arg == "--no-rewrite") {
      opts.mini.rewrite = false;
    } else if (arg == "--mini-seed") {
      opts.mini.seed = nextNum("--mini-seed");
    } else if (arg == "--jobs") {
      eopts.jobs = static_cast<unsigned>(nextNum("--jobs"));
    } else if (arg == "--portfolio") {
      eopts.portfolio = true;
    } else if (arg == "--mini-portfolio") {
      eopts.miniPortfolio = static_cast<unsigned>(nextNum("--mini-portfolio"));
    } else if (arg == "--json") {
      jsonOut = true;
    } else if (arg == "--deadline") {
      deadlineMs = static_cast<uint32_t>(nextNum("--deadline"));
    } else if (arg == "--cache") {
      cachePath = next("--cache");
    } else {
      std::fprintf(stderr, "pugpara: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }

  if (eopts.portfolio && eopts.miniPortfolio > 1) {
    std::fprintf(stderr,
                 "pugpara: --portfolio and --mini-portfolio are mutually "
                 "exclusive\n");
    return 3;
  }

  try {
    check::VerificationSession session(buffer.str());

    switch (action) {
      case Action::List:
        for (const auto& k : session.program().kernels)
          std::printf("%s  (%zu params%s)\n", k->name.c_str(),
                      k->params.size(),
                      k->usesBarrier ? ", uses barriers" : "");
        return 0;
      case Action::Dump:
        for (const auto& k : session.program().kernels)
          std::printf("%s\n", lang::printKernel(*k).c_str());
        return 0;
      default:
        break;
    }

    // Every checking action runs through the engine: build the batch, run
    // it on the worker pool, print in deterministic request order.
    std::vector<check::CheckRequest> requests;
    auto push = [&](check::CheckKind kind, const std::string& a,
                    const std::string& b = "") {
      check::CheckRequest r;
      r.kind = kind;
      r.kernel = a;
      r.kernel2 = b;
      r.options = opts;
      r.deadlineMs = deadlineMs;
      requests.push_back(std::move(r));
    };
    switch (action) {
      case Action::Postcond: push(check::CheckKind::Postconditions, k1); break;
      case Action::Asserts: push(check::CheckKind::Asserts, k1); break;
      case Action::Races: push(check::CheckKind::Races, k1); break;
      case Action::Perf: push(check::CheckKind::Performance, k1); break;
      case Action::Equiv: push(check::CheckKind::Equivalence, k1, k2); break;
      case Action::Summary:
        for (const auto& k : session.program().kernels) {
          push(check::CheckKind::Races, k->name);
          push(check::CheckKind::Asserts, k->name);
          push(check::CheckKind::Postconditions, k->name);
        }
        break;
      default:
        break;
    }

    eopts.cache = std::make_shared<smt::QueryCache>();
    if (!cachePath.empty()) eopts.cache->load(cachePath);

    engine::VerificationEngine engine(eopts);
    std::vector<check::CheckResult> results =
        engine.runAll(session, requests);

    int worst = 0;
    if (jsonOut) {
      std::printf("{\"results\":[");
      for (size_t i = 0; i < results.size(); ++i) {
        std::printf("%s%s", i ? "," : "", results[i].json().c_str());
        worst = std::max(worst, outcomeCode(results[i].report));
      }
      const smt::QueryCache::Stats cs = engine.cache().stats();
      check::DischargeStats total;
      for (const auto& r : results) {
        total.tier0 += r.report.discharge.tier0;
        total.sliced += r.report.discharge.sliced;
        total.fullSmt += r.report.discharge.fullSmt;
        total.solverCalls += r.report.discharge.solverCalls;
      }
      std::printf(
          "],\"engine\":{\"jobs\":%u,\"portfolio\":%s,\"miniPortfolio\":%u,"
          "\"prefilter\":%s,"
          "\"cacheHits\":%llu,\"cacheMisses\":%llu,\"cacheInsertions\":%llu,"
          "\"cacheEvictions\":%llu,"
          "\"tier0Discharged\":%llu,\"slicedQueries\":%llu,"
          "\"fullSmtQueries\":%llu,\"solverCalls\":%llu},",
          eopts.jobs, eopts.portfolio ? "true" : "false", eopts.miniPortfolio,
          opts.prefilter ? "true" : "false",
          static_cast<unsigned long long>(cs.hits),
          static_cast<unsigned long long>(cs.misses),
          static_cast<unsigned long long>(cs.insertions),
          static_cast<unsigned long long>(cs.evictions),
          static_cast<unsigned long long>(total.tier0),
          static_cast<unsigned long long>(total.sliced),
          static_cast<unsigned long long>(total.fullSmt),
          static_cast<unsigned long long>(total.solverCalls));
      const smt::mini::MiniStatsSnapshot ms = smt::mini::snapshotMiniStats();
      std::printf(
          "\"minismt\":{\"conflicts\":%llu,\"decisions\":%llu,"
          "\"propagations\":%llu,\"restarts\":%llu,\"learnts\":%llu,"
          "\"lbdHistogram\":{\"glue\":%llu,\"mid\":%llu,\"large\":%llu},"
          "\"learntsDeleted\":%llu,\"chronoBacktracks\":%llu,"
          "\"inprocessRuns\":%llu,\"subsumed\":%llu,\"strengthened\":%llu,"
          "\"eliminatedVars\":%llu,\"restoredVars\":%llu,"
          "\"exportedClauses\":%llu,\"importedClauses\":%llu,"
          "\"rewrites\":%llu,\"portfolioRaces\":%llu,\"winnerSeed\":%llu}}\n",
          static_cast<unsigned long long>(ms.conflicts),
          static_cast<unsigned long long>(ms.decisions),
          static_cast<unsigned long long>(ms.propagations),
          static_cast<unsigned long long>(ms.restarts),
          static_cast<unsigned long long>(ms.learnts),
          static_cast<unsigned long long>(ms.lbdGlue),
          static_cast<unsigned long long>(ms.lbdMid),
          static_cast<unsigned long long>(ms.lbdLarge),
          static_cast<unsigned long long>(ms.learntsDeleted),
          static_cast<unsigned long long>(ms.chronoBacktracks),
          static_cast<unsigned long long>(ms.inprocessRuns),
          static_cast<unsigned long long>(ms.subsumed),
          static_cast<unsigned long long>(ms.strengthened),
          static_cast<unsigned long long>(ms.eliminatedVars),
          static_cast<unsigned long long>(ms.restoredVars),
          static_cast<unsigned long long>(ms.exportedClauses),
          static_cast<unsigned long long>(ms.importedClauses),
          static_cast<unsigned long long>(ms.rewrites),
          static_cast<unsigned long long>(ms.portfolioRaces),
          static_cast<unsigned long long>(ms.winnerSeed));
    } else if (action == Action::Summary) {
      // Grouped per kernel, three properties per group (request order).
      for (size_t i = 0; i < results.size(); ++i) {
        if (i % 3 == 0)
          std::printf("== %s ==\n", results[i].kernel.c_str());
        const char* tag = i % 3 == 0   ? "races:   "
                          : i % 3 == 1 ? "asserts: "
                                       : "postcond:";
        std::printf("  %s %s\n", tag, results[i].report.str().c_str());
        worst = std::max(worst, outcomeCode(results[i].report));
      }
    } else {
      for (const auto& r : results) {
        std::printf("%s\n", r.report.str().c_str());
        worst = std::max(worst, outcomeCode(r.report));
      }
    }

    if (!jsonOut && (requests.size() > 1 || !cachePath.empty())) {
      const smt::QueryCache::Stats cs = engine.cache().stats();
      std::fprintf(stderr,
                   "pugpara: engine: %zu checks, jobs=%u%s, cache: %llu "
                   "hit(s), %llu miss(es)\n",
                   requests.size(), eopts.jobs,
                   eopts.portfolio ? ", portfolio" : "",
                   static_cast<unsigned long long>(cs.hits),
                   static_cast<unsigned long long>(cs.misses));
    }
    if (!cachePath.empty() && !engine.cache().save(cachePath))
      std::fprintf(stderr, "pugpara: warning: cannot write cache '%s'\n",
                   cachePath.c_str());
    return worst;
  } catch (const PugError& e) {
    std::fprintf(stderr, "pugpara: %s\n", e.what());
    return 3;
  }
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 3;
  }
  const std::string first = argv[1];
  if (first == "serve") return serveMain(argc, argv);
  if (first == "submit") return submitMain(argc, argv);
  if (first == "corpus") return corpusMain(argc, argv);
  if (first == "--help" || first == "-h") {
    usage();
    return 0;
  }
  return batchMain(argc, argv);
}
