file(REMOVE_RECURSE
  "CMakeFiles/table3_equiv_buggy.dir/table3_equiv_buggy.cpp.o"
  "CMakeFiles/table3_equiv_buggy.dir/table3_equiv_buggy.cpp.o.d"
  "table3_equiv_buggy"
  "table3_equiv_buggy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_equiv_buggy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
