# Empty dependencies file for table3_equiv_buggy.
# This may be replaced when dependencies are built.
