# Empty compiler generated dependencies file for ablate_encoding.
# This may be replaced when dependencies are built.
