file(REMOVE_RECURSE
  "CMakeFiles/ablate_encoding.dir/ablate_encoding.cpp.o"
  "CMakeFiles/ablate_encoding.dir/ablate_encoding.cpp.o.d"
  "ablate_encoding"
  "ablate_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
