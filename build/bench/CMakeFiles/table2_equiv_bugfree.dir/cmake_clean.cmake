file(REMOVE_RECURSE
  "CMakeFiles/table2_equiv_bugfree.dir/table2_equiv_bugfree.cpp.o"
  "CMakeFiles/table2_equiv_bugfree.dir/table2_equiv_bugfree.cpp.o.d"
  "table2_equiv_bugfree"
  "table2_equiv_bugfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_equiv_bugfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
