# Empty dependencies file for table2_equiv_bugfree.
# This may be replaced when dependencies are built.
