file(REMOVE_RECURSE
  "CMakeFiles/ablate_bitwidth.dir/ablate_bitwidth.cpp.o"
  "CMakeFiles/ablate_bitwidth.dir/ablate_bitwidth.cpp.o.d"
  "ablate_bitwidth"
  "ablate_bitwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bitwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
