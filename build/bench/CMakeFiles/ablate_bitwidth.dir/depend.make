# Empty dependencies file for ablate_bitwidth.
# This may be replaced when dependencies are built.
