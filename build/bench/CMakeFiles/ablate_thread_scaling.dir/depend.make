# Empty dependencies file for ablate_thread_scaling.
# This may be replaced when dependencies are built.
