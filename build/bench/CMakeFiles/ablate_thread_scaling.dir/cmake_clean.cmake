file(REMOVE_RECURSE
  "CMakeFiles/ablate_thread_scaling.dir/ablate_thread_scaling.cpp.o"
  "CMakeFiles/ablate_thread_scaling.dir/ablate_thread_scaling.cpp.o.d"
  "ablate_thread_scaling"
  "ablate_thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
