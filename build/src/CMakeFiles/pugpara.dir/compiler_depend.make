# Empty compiler generated dependencies file for pugpara.
# This may be replaced when dependencies are built.
