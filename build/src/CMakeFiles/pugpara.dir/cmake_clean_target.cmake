file(REMOVE_RECURSE
  "libpugpara.a"
)
