
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/equiv_checker.cpp" "src/CMakeFiles/pugpara.dir/check/equiv_checker.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/check/equiv_checker.cpp.o.d"
  "/root/repo/src/check/options.cpp" "src/CMakeFiles/pugpara.dir/check/options.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/check/options.cpp.o.d"
  "/root/repo/src/check/perf_checker.cpp" "src/CMakeFiles/pugpara.dir/check/perf_checker.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/check/perf_checker.cpp.o.d"
  "/root/repo/src/check/postcond_checker.cpp" "src/CMakeFiles/pugpara.dir/check/postcond_checker.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/check/postcond_checker.cpp.o.d"
  "/root/repo/src/check/race_checker.cpp" "src/CMakeFiles/pugpara.dir/check/race_checker.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/check/race_checker.cpp.o.d"
  "/root/repo/src/check/replay.cpp" "src/CMakeFiles/pugpara.dir/check/replay.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/check/replay.cpp.o.d"
  "/root/repo/src/check/report.cpp" "src/CMakeFiles/pugpara.dir/check/report.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/check/report.cpp.o.d"
  "/root/repo/src/encode/equivalence.cpp" "src/CMakeFiles/pugpara.dir/encode/equivalence.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/encode/equivalence.cpp.o.d"
  "/root/repo/src/encode/ssa_encoder.cpp" "src/CMakeFiles/pugpara.dir/encode/ssa_encoder.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/encode/ssa_encoder.cpp.o.d"
  "/root/repo/src/encode/symbolic_env.cpp" "src/CMakeFiles/pugpara.dir/encode/symbolic_env.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/encode/symbolic_env.cpp.o.d"
  "/root/repo/src/exec/bytecode.cpp" "src/CMakeFiles/pugpara.dir/exec/bytecode.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/exec/bytecode.cpp.o.d"
  "/root/repo/src/exec/compiler.cpp" "src/CMakeFiles/pugpara.dir/exec/compiler.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/exec/compiler.cpp.o.d"
  "/root/repo/src/exec/machine.cpp" "src/CMakeFiles/pugpara.dir/exec/machine.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/exec/machine.cpp.o.d"
  "/root/repo/src/exec/monitors.cpp" "src/CMakeFiles/pugpara.dir/exec/monitors.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/exec/monitors.cpp.o.d"
  "/root/repo/src/expr/context.cpp" "src/CMakeFiles/pugpara.dir/expr/context.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/expr/context.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "src/CMakeFiles/pugpara.dir/expr/eval.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/expr/eval.cpp.o.d"
  "/root/repo/src/expr/print.cpp" "src/CMakeFiles/pugpara.dir/expr/print.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/expr/print.cpp.o.d"
  "/root/repo/src/expr/simplify.cpp" "src/CMakeFiles/pugpara.dir/expr/simplify.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/expr/simplify.cpp.o.d"
  "/root/repo/src/expr/sort.cpp" "src/CMakeFiles/pugpara.dir/expr/sort.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/expr/sort.cpp.o.d"
  "/root/repo/src/expr/subst.cpp" "src/CMakeFiles/pugpara.dir/expr/subst.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/expr/subst.cpp.o.d"
  "/root/repo/src/expr/walk.cpp" "src/CMakeFiles/pugpara.dir/expr/walk.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/expr/walk.cpp.o.d"
  "/root/repo/src/kernels/corpus.cpp" "src/CMakeFiles/pugpara.dir/kernels/corpus.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/kernels/corpus.cpp.o.d"
  "/root/repo/src/kernels/mutate.cpp" "src/CMakeFiles/pugpara.dir/kernels/mutate.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/kernels/mutate.cpp.o.d"
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/pugpara.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/ast_printer.cpp" "src/CMakeFiles/pugpara.dir/lang/ast_printer.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/lang/ast_printer.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/pugpara.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/pugpara.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/sema.cpp" "src/CMakeFiles/pugpara.dir/lang/sema.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/lang/sema.cpp.o.d"
  "/root/repo/src/lang/token.cpp" "src/CMakeFiles/pugpara.dir/lang/token.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/lang/token.cpp.o.d"
  "/root/repo/src/para/ca_extract.cpp" "src/CMakeFiles/pugpara.dir/para/ca_extract.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/para/ca_extract.cpp.o.d"
  "/root/repo/src/para/loops.cpp" "src/CMakeFiles/pugpara.dir/para/loops.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/para/loops.cpp.o.d"
  "/root/repo/src/para/monotone.cpp" "src/CMakeFiles/pugpara.dir/para/monotone.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/para/monotone.cpp.o.d"
  "/root/repo/src/para/resolve.cpp" "src/CMakeFiles/pugpara.dir/para/resolve.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/para/resolve.cpp.o.d"
  "/root/repo/src/para/thread_dim.cpp" "src/CMakeFiles/pugpara.dir/para/thread_dim.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/para/thread_dim.cpp.o.d"
  "/root/repo/src/para/vcgen.cpp" "src/CMakeFiles/pugpara.dir/para/vcgen.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/para/vcgen.cpp.o.d"
  "/root/repo/src/smt/mini/array_lower.cpp" "src/CMakeFiles/pugpara.dir/smt/mini/array_lower.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/smt/mini/array_lower.cpp.o.d"
  "/root/repo/src/smt/mini/bitblast.cpp" "src/CMakeFiles/pugpara.dir/smt/mini/bitblast.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/smt/mini/bitblast.cpp.o.d"
  "/root/repo/src/smt/mini/mini_solver.cpp" "src/CMakeFiles/pugpara.dir/smt/mini/mini_solver.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/smt/mini/mini_solver.cpp.o.d"
  "/root/repo/src/smt/mini/preprocess.cpp" "src/CMakeFiles/pugpara.dir/smt/mini/preprocess.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/smt/mini/preprocess.cpp.o.d"
  "/root/repo/src/smt/mini/sat_solver.cpp" "src/CMakeFiles/pugpara.dir/smt/mini/sat_solver.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/smt/mini/sat_solver.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/CMakeFiles/pugpara.dir/smt/solver.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/smt/solver.cpp.o.d"
  "/root/repo/src/smt/z3_solver.cpp" "src/CMakeFiles/pugpara.dir/smt/z3_solver.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/smt/z3_solver.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/pugpara.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/pugpara.dir/support/diagnostics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
