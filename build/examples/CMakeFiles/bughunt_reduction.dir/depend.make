# Empty dependencies file for bughunt_reduction.
# This may be replaced when dependencies are built.
