file(REMOVE_RECURSE
  "CMakeFiles/bughunt_reduction.dir/bughunt_reduction.cpp.o"
  "CMakeFiles/bughunt_reduction.dir/bughunt_reduction.cpp.o.d"
  "bughunt_reduction"
  "bughunt_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bughunt_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
