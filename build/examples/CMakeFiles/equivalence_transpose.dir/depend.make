# Empty dependencies file for equivalence_transpose.
# This may be replaced when dependencies are built.
