file(REMOVE_RECURSE
  "CMakeFiles/equivalence_transpose.dir/equivalence_transpose.cpp.o"
  "CMakeFiles/equivalence_transpose.dir/equivalence_transpose.cpp.o.d"
  "equivalence_transpose"
  "equivalence_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
