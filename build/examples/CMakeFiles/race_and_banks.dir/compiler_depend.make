# Empty compiler generated dependencies file for race_and_banks.
# This may be replaced when dependencies are built.
