file(REMOVE_RECURSE
  "CMakeFiles/race_and_banks.dir/race_and_banks.cpp.o"
  "CMakeFiles/race_and_banks.dir/race_and_banks.cpp.o.d"
  "race_and_banks"
  "race_and_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_and_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
