
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/check_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/check_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/check_test.cpp.o.d"
  "/root/repo/tests/encode_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/encode_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/encode_test.cpp.o.d"
  "/root/repo/tests/exec_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/exec_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/exec_test.cpp.o.d"
  "/root/repo/tests/expr_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/expr_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/expr_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/kernels_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/kernels_test.cpp.o.d"
  "/root/repo/tests/lang_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/lang_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/lang_test.cpp.o.d"
  "/root/repo/tests/minismt_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/minismt_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/minismt_test.cpp.o.d"
  "/root/repo/tests/para_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/para_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/para_test.cpp.o.d"
  "/root/repo/tests/print_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/print_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/print_test.cpp.o.d"
  "/root/repo/tests/smt_test.cpp" "tests/CMakeFiles/pugpara_tests.dir/smt_test.cpp.o" "gcc" "tests/CMakeFiles/pugpara_tests.dir/smt_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pugpara.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
