# Empty compiler generated dependencies file for pugpara_tests.
# This may be replaced when dependencies are built.
