file(REMOVE_RECURSE
  "CMakeFiles/pugpara_tests.dir/check_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/check_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/encode_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/encode_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/exec_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/exec_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/expr_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/expr_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/integration_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/kernels_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/kernels_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/lang_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/lang_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/minismt_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/minismt_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/para_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/para_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/print_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/print_test.cpp.o.d"
  "CMakeFiles/pugpara_tests.dir/smt_test.cpp.o"
  "CMakeFiles/pugpara_tests.dir/smt_test.cpp.o.d"
  "pugpara_tests"
  "pugpara_tests.pdb"
  "pugpara_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pugpara_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
