# Empty dependencies file for pugpara_cli.
# This may be replaced when dependencies are built.
