file(REMOVE_RECURSE
  "CMakeFiles/pugpara_cli.dir/pugpara_cli.cpp.o"
  "CMakeFiles/pugpara_cli.dir/pugpara_cli.cpp.o.d"
  "pugpara"
  "pugpara.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pugpara_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
