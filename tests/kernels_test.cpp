// Corpus and mutator tests: every corpus kernel parses, analyzes, compiles
// to VM bytecode and runs; mutants are well-formed and actually change
// behavior.
#include <gtest/gtest.h>

#include "exec/compiler.h"
#include "exec/machine.h"
#include "kernels/corpus.h"
#include "kernels/mutate.h"
#include "lang/ast_printer.h"
#include "lang/parser.h"
#include "support/rng.h"

namespace pugpara::kernels {
namespace {

TEST(CorpusTest, AllEntriesParseAnalyzeAndCompile) {
  for (const CorpusEntry& e : corpus()) {
    for (uint32_t width : {8u, 16u, 32u}) {
      auto prog = lang::parseAndAnalyze(sourceFor(e, width));
      ASSERT_EQ(prog->kernels.size(), 1u) << e.name;
      EXPECT_EQ(prog->kernels[0]->name, e.name);
      auto compiled = exec::compile(*prog->kernels[0]);
      EXPECT_FALSE(compiled.code.empty()) << e.name;
    }
  }
}

TEST(CorpusTest, WidthBoundSubstitution) {
  const CorpusEntry& e = entry("transposeNaive");
  EXPECT_NE(sourceFor(e, 8).find("<= 15"), std::string::npos);
  EXPECT_NE(sourceFor(e, 16).find("<= 255"), std::string::npos);
  EXPECT_NE(sourceFor(e, 32).find("<= 65535"), std::string::npos);
  EXPECT_EQ(sourceFor(e, 16).find("$B"), std::string::npos);
}

TEST(CorpusTest, EntryLookupAndCombine) {
  EXPECT_NO_THROW((void)entry("reduceMod"));
  EXPECT_THROW((void)entry("noSuchKernel"), PugError);
  std::string both = combinedSource({"reduceMod", "reduceStrided"}, 8);
  auto prog = lang::parseAndAnalyze(both);
  EXPECT_EQ(prog->kernels.size(), 2u);
}

/// Runs a corpus kernel on its default grid with random inputs.
exec::LaunchResult runDefault(const CorpusEntry& e, uint32_t width,
                              std::vector<exec::Buffer>& bufs,
                              uint64_t seed) {
  auto prog = lang::parseAndAnalyze(sourceFor(e, width));
  const lang::Kernel& k = *prog->kernels[0];
  auto compiled = exec::compile(k);
  exec::LaunchParams p;
  p.grid = {e.defaultGrid.gdimX, e.defaultGrid.gdimY, 1};
  p.block = {e.defaultGrid.bdimX, e.defaultGrid.bdimY, e.defaultGrid.bdimZ};
  p.width = width;
  const uint64_t total = e.defaultGrid.totalThreads();
  SplitMix64 rng(seed);
  for (const auto& param : k.params) {
    if (param->type.isPointer) {
      exec::Buffer b(param->name, std::max<uint64_t>(total * 4, 256));
      for (size_t i = 0; i < b.size(); ++i) b.store(i, rng.below(100));
      bufs.push_back(std::move(b));
    } else {
      // Scalars: the paper's kernels take sizes; feed matching dims.
      if (param->name == "width" || param->name == "wB" || param->name == "n")
        p.scalarArgs.push_back(e.defaultGrid.gdimX * e.defaultGrid.bdimX);
      else if (param->name == "height")
        p.scalarArgs.push_back(e.defaultGrid.gdimY * e.defaultGrid.bdimY);
      else if (param->name == "wA")
        p.scalarArgs.push_back(e.defaultGrid.bdimX);  // one tile
      else
        p.scalarArgs.push_back(3);
    }
  }
  return exec::launch(compiled, p, bufs);
}

TEST(CorpusTest, AllEntriesExecuteOnDefaultGrid) {
  for (const CorpusEntry& e : corpus()) {
    std::vector<exec::Buffer> bufs;
    auto r = runDefault(e, 16, bufs, 7);
    EXPECT_TRUE(r.completed) << e.name << ": " << r.error;
    // The deliberately racy kernel aside, no assert fires.
    EXPECT_TRUE(r.assertFailures.empty()) << e.name;
  }
}

TEST(CorpusTest, BitonicSortActuallySorts) {
  const CorpusEntry& e = entry("bitonicSort");
  std::vector<exec::Buffer> bufs;
  auto r = runDefault(e, 16, bufs, 11);
  ASSERT_TRUE(r.completed) << r.error;
  for (uint32_t i = 1; i < e.defaultGrid.bdimX; ++i)
    EXPECT_LE(bufs[0].load(i - 1), bufs[0].load(i));
}

TEST(CorpusTest, ScanComputesExclusivePrefixSum) {
  const CorpusEntry& e = entry("scanNaive");
  std::vector<exec::Buffer> bufs;
  auto r = runDefault(e, 16, bufs, 13);
  ASSERT_TRUE(r.completed) << r.error;
  uint64_t acc = 0;
  for (uint32_t i = 0; i < e.defaultGrid.bdimX; ++i) {
    EXPECT_EQ(bufs[0].load(i), acc) << "at " << i;
    acc += bufs[1].load(i);
  }
}

TEST(CorpusTest, ReductionVariantsAgreeConcretely) {
  std::vector<exec::Buffer> b1, b2, b3;
  auto r1 = runDefault(entry("reduceMod"), 16, b1, 5);
  auto r2 = runDefault(entry("reduceStrided"), 16, b2, 5);
  auto r3 = runDefault(entry("reduceSequential"), 16, b3, 5);
  ASSERT_TRUE(r1.completed && r2.completed && r3.completed);
  EXPECT_EQ(b1[0].raw(), b2[0].raw());
  EXPECT_EQ(b1[0].raw(), b3[0].raw());
}

// ---- Mutator -------------------------------------------------------------------

TEST(MutateTest, SiteCountsArePositiveForRichKernels) {
  auto prog = lang::parseAndAnalyze(sourceFor(entry("transposeOpt"), 16));
  const lang::Kernel& k = *prog->kernels[0];
  EXPECT_GT(countSites(k, MutationKind::AddressOffByOne), 0u);
  EXPECT_GT(countSites(k, MutationKind::GuardNegate), 0u);
  EXPECT_GT(countSites(k, MutationKind::CompareSwap), 0u);
  EXPECT_GT(countSites(k, MutationKind::ArithSwap), 0u);
  EXPECT_GT(countSites(k, MutationKind::ConstantTweak), 0u);
}

TEST(MutateTest, MutantDiffersFromOriginalTextually) {
  auto prog = lang::parseAndAnalyze(sourceFor(entry("reduceStrided"), 16));
  const lang::Kernel& k = *prog->kernels[0];
  Mutant m = mutateAt(k, MutationKind::AddressOffByOne, 0);
  EXPECT_NE(lang::printKernel(k), lang::printKernel(*m.kernel));
  EXPECT_NE(m.kernel->name, k.name);
  EXPECT_FALSE(m.description.empty());
}

TEST(MutateTest, OutOfRangeSiteThrows) {
  auto prog = lang::parseAndAnalyze(sourceFor(entry("vecAdd"), 16));
  EXPECT_THROW((void)mutateAt(*prog->kernels[0], MutationKind::GuardNegate,
                              999),
               PugError);
}

TEST(MutateTest, EnumerateProducesAnalyzedMutants) {
  auto prog = lang::parseAndAnalyze(sourceFor(entry("transposeNaive"), 16));
  auto mutants = enumerateMutants(*prog->kernels[0], 2);
  EXPECT_GE(mutants.size(), 5u);
  for (const auto& m : mutants) {
    EXPECT_NE(m.kernel, nullptr);
    // A mutant must still compile for the VM (it is a well-formed kernel).
    EXPECT_NO_THROW((void)exec::compile(*m.kernel));
  }
}

TEST(MutateTest, GuardNegateChangesConcreteBehavior) {
  auto prog = lang::parseAndAnalyze(sourceFor(entry("vecAdd"), 16));
  const lang::Kernel& k = *prog->kernels[0];
  Mutant m = mutateAt(k, MutationKind::GuardNegate, 0);

  auto run = [](const lang::Kernel& kk) {
    auto compiled = exec::compile(kk);
    exec::LaunchParams p;
    p.grid = {2, 1, 1};
    p.block = {4, 1, 1};
    p.width = 16;
    p.scalarArgs = {8};
    std::vector<exec::Buffer> bufs = {exec::Buffer("c", 16),
                                      exec::Buffer("a", 16),
                                      exec::Buffer("b", 16)};
    for (uint64_t i = 0; i < 16; ++i) {
      bufs[1].store(i, i + 1);
      bufs[2].store(i, 10 * i);
    }
    auto r = exec::launch(compiled, p, bufs);
    EXPECT_TRUE(r.completed) << r.error;
    return bufs[0].raw();
  };
  EXPECT_NE(run(k), run(*m.kernel));
}

}  // namespace
}  // namespace pugpara::kernels
