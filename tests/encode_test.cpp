// Tests for the non-parameterized (Sec. III) encoder: postcondition
// checking, equivalence checking, barrier-loop unrolling, and differential
// validation against the concrete VM.
#include <gtest/gtest.h>

#include "encode/equivalence.h"
#include "encode/ssa_encoder.h"
#include "exec/compiler.h"
#include "exec/machine.h"
#include "expr/eval.h"
#include "lang/parser.h"
#include "smt/solver.h"
#include "support/rng.h"

namespace pugpara::encode {
namespace {

using expr::Expr;
using smt::CheckResult;

struct EncFixture {
  std::unique_ptr<lang::Program> prog;
  expr::Context ctx;
};

/// Checks every postcondition of `kernel` under `grid`: Unsat(¬post) == holds.
CheckResult checkPostcond(const char* src, const GridConfig& grid,
                          EncodeOptions opt = {}) {
  EncFixture s;
  s.prog = lang::parseAndAnalyze(src);
  EncodedKernel enc =
      encodeSsa(s.ctx, *s.prog->kernels[0], grid, opt, "k");
  auto solver = smt::makeZ3Solver();
  solver->add(enc.assumptions);
  Expr anyViolated = s.ctx.bot();
  for (const auto& pc : enc.postconds)
    anyViolated = s.ctx.mkOr(anyViolated, s.ctx.mkNot(pc.formula));
  solver->add(anyViolated);
  return solver->check();
}

CheckResult checkEquivalence(const char* srcA, const char* srcB,
                             const GridConfig& grid, EncodeOptions opt = {}) {
  EncFixture s;
  s.prog = lang::parseAndAnalyze(std::string(srcA) + "\n" + srcB);
  EncodedKernel a = encodeSsa(s.ctx, *s.prog->kernels[0], grid, opt, "s");
  EncodedKernel b = encodeSsa(s.ctx, *s.prog->kernels[1], grid, opt, "t");
  EquivalenceQuery q = buildEquivalenceQuery(s.ctx, a, b);
  auto solver = smt::makeZ3Solver();
  solver->add(q.assumptions);
  solver->add(q.outputsDiffer);
  return solver->check();
}

TEST(SsaEncoderTest, SimpleKernelPostcondHolds) {
  // Every thread writes tid+1; the postcondition pins each cell.
  auto r = checkPostcond(R"(
void k(int *a, int n) {
  assume(n == bdim.x);
  a[tid.x] = tid.x + 1;
  int i;
  postcond(i >= 0 && i < n => a[i] == i + 1);
}
)", {1, 1, 4, 1, 1});
  EXPECT_EQ(r, CheckResult::Unsat);
}

TEST(SsaEncoderTest, ViolatedPostcondIsSat) {
  auto r = checkPostcond(R"(
void k(int *a, int n) {
  assume(n == bdim.x);
  a[tid.x] = tid.x + 2;  // bug: off by one
  int i;
  postcond(i >= 0 && i < n => a[i] == i + 1);
}
)", {1, 1, 4, 1, 1});
  EXPECT_EQ(r, CheckResult::Sat);
}

TEST(SsaEncoderTest, GuardedWritesRespectBranches) {
  auto r = checkPostcond(R"(
void k(int *a) {
  if (tid.x < 2) a[tid.x] = 1; else a[tid.x] = 2;
  int i;
  postcond(i >= 0 && i < 4 => a[i] == (i < 2 ? 1 : 2));
}
)", {1, 1, 4, 1, 1});
  EXPECT_EQ(r, CheckResult::Unsat);
}

TEST(SsaEncoderTest, EarlyReturnDeactivatesThread) {
  auto r = checkPostcond(R"(
void k(int *a, int n) {
  assume(n == 2);
  a[tid.x] = 5;
  if (tid.x >= n) return;
  a[tid.x] = 7;
  int i;
  postcond(i >= 0 && i < 4 => a[i] == (i < 2 ? 7 : 5));
}
)", {1, 1, 4, 1, 1});
  EXPECT_EQ(r, CheckResult::Unsat);
}

TEST(SsaEncoderTest, AssertObligationsAreCollectedPerThread) {
  EncFixture s;
  s.prog = lang::parseAndAnalyze(R"(
void k(int *a, int n) {
  assert(tid.x < n);
  a[tid.x] = 0;
}
)");
  EncodedKernel enc =
      encodeSsa(s.ctx, *s.prog->kernels[0], {1, 1, 4, 1, 1}, {}, "k");
  ASSERT_EQ(enc.asserts.size(), 4u);
  // With n unconstrained the assertion is violable.
  auto solver = smt::makeZ3Solver();
  solver->add(enc.assumptions);
  Expr bad = s.ctx.bot();
  for (const auto& ob : enc.asserts)
    bad = s.ctx.mkOr(bad, s.ctx.mkAnd(ob.guard, s.ctx.mkNot(ob.cond)));
  solver->add(bad);
  EXPECT_EQ(solver->check(), CheckResult::Sat);
}

TEST(SsaEncoderTest, PrivateLoopUnrollsPerThread) {
  auto r = checkPostcond(R"(
void k(int *a) {
  int acc = 0;
  for (int j = 0; j <= tid.x; j++) acc += j;
  a[tid.x] = acc;
  int i;
  postcond(i >= 0 && i < 4 => a[i] == (i * (i + 1)) / 2);
}
)", {1, 1, 4, 1, 1});
  EXPECT_EQ(r, CheckResult::Unsat);
}

TEST(SsaEncoderTest, SymbolicLoopBoundRequiresConcretization) {
  EncFixture s;
  s.prog = lang::parseAndAnalyze(R"(
void k(int *a, int n) {
  for (int j = 0; j < n; j++) a[j] = j;
}
)");
  EXPECT_THROW(
      (void)encodeSsa(s.ctx, *s.prog->kernels[0], {1, 1, 2, 1, 1}, {}, "k"),
      PugError);
  // With "+C" the same kernel encodes fine.
  EncodeOptions opt;
  opt.concretize["n"] = 4;
  EXPECT_NO_THROW(
      (void)encodeSsa(s.ctx, *s.prog->kernels[0], {1, 1, 2, 1, 1}, opt, "k2"));
}

// ---- Barrier intervals -------------------------------------------------------

TEST(SsaEncoderTest, BarrierSplitsProducerConsumer) {
  // Thread t writes slot t, then after the barrier reads neighbour t+1.
  auto r = checkPostcond(R"(
void k(int *a) {
  __shared__ int s[bdim.x];
  s[tid.x] = tid.x * 10;
  __syncthreads();
  a[tid.x] = s[(tid.x + 1) % bdim.x];
  int i;
  postcond(i >= 0 && i < 4 => a[i] == ((i + 1) % 4) * 10);
}
)", {1, 1, 4, 1, 1});
  EXPECT_EQ(r, CheckResult::Unsat);
}

TEST(SsaEncoderTest, BarrierLoopUnrollsUniformly) {
  // The paper's strided reduction: needs Pass A unrolling of the k-loop.
  auto r = checkPostcond(R"(
void reduce(int *g_odata, int *g_idata) {
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[0] = sdata[0];
  postcond(g_odata[0] == g_idata[0] + g_idata[1] + g_idata[2] + g_idata[3]);
}
)", {1, 1, 4, 1, 1});
  EXPECT_EQ(r, CheckResult::Unsat);
}

// ---- Equivalence -------------------------------------------------------------

constexpr const char* kNaiveTranspose = R"(
void naiveTranspose(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if (xIndex < width && yIndex < height) {
    int index_in = xIndex + width * yIndex;
    int index_out = yIndex + height * xIndex;
    odata[index_out] = idata[index_in];
  }
}
)";

constexpr const char* kOptTranspose = R"(
void optimizedTranspose(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  __shared__ int block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}
)";

TEST(EquivalenceTest, TransposesEquivalentOnSquareBlocks) {
  EncodeOptions opt;
  opt.width = 16;
  auto r = checkEquivalence(kNaiveTranspose, kOptTranspose,
                            {2, 2, 2, 2, 1}, opt);
  EXPECT_EQ(r, CheckResult::Unsat);
}

TEST(EquivalenceTest, TransposesDifferOnNonSquareBlocks) {
  // The paper's '*' entries: with a non-square block the optimized kernel
  // is NOT equivalent to the naive one.
  EncodeOptions opt;
  opt.width = 16;
  auto r = checkEquivalence(kNaiveTranspose, kOptTranspose,
                            {1, 2, 4, 2, 1}, opt);
  EXPECT_EQ(r, CheckResult::Sat);
}

TEST(EquivalenceTest, InjectedAddressBugIsFound) {
  const char* buggy = R"(
void buggyTranspose(int *odata, int *idata, int width, int height) {
  assume(width == gdim.x * bdim.x && height == gdim.y * bdim.y);
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if (xIndex < width && yIndex < height) {
    int index_in = xIndex + width * yIndex;
    int index_out = yIndex + height * xIndex + 1;  // bug: +1
    odata[index_out] = idata[index_in];
  }
}
)";
  EncodeOptions opt;
  opt.width = 16;
  auto r = checkEquivalence(kNaiveTranspose, buggy, {2, 2, 2, 2, 1}, opt);
  EXPECT_EQ(r, CheckResult::Sat);
}

TEST(EquivalenceTest, ReductionVariantsEquivalent) {
  // Sec. IV-E: the modulo and strided reductions compute the same sums.
  const char* mod = R"(
void reduceMod(int *g_odata, int *g_idata) {
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";
  const char* strided = R"(
void reduceStrided(int *g_odata, int *g_idata) {
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    int index = 2 * k * tid.x;
    if (index < bdim.x)
      sdata[index] += sdata[index + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)";
  EncodeOptions opt;
  opt.width = 12;
  auto r = checkEquivalence(mod, strided, {2, 1, 4, 1, 1}, opt);
  EXPECT_EQ(r, CheckResult::Unsat);
}

// ---- Differential testing against the VM ------------------------------------
// The encoder's final-array expressions, evaluated under concrete inputs,
// must equal what the concrete machine computes.

class EncoderVsVm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncoderVsVm, FinalArraysMatchConcreteExecution) {
  const char* src = R"(
void mix(int *out, int *in, int n) {
  __shared__ int s[bdim.x];
  s[tid.x] = in[bid.x * bdim.x + tid.x] * 3 + 1;
  __syncthreads();
  int v = s[(tid.x + 1) % bdim.x];
  if (tid.x % 2 == 0) v = v ^ 5; else v = v + n;
  out[bid.x * bdim.x + tid.x] = v;
}
)";
  SplitMix64 rng(GetParam());
  const GridConfig grid{2, 1, 4, 1, 1};
  const uint64_t total = grid.totalThreads();
  EncodeOptions opt;
  opt.width = 16;

  // Symbolic encoding.
  auto prog = lang::parseAndAnalyze(src);
  expr::Context ctx;
  EncodedKernel enc = encodeSsa(ctx, *prog->kernels[0], grid, opt, "k");

  // Concrete execution on random inputs.
  exec::LaunchParams lp;
  lp.grid = {grid.gdimX, grid.gdimY, 1};
  lp.block = {grid.bdimX, grid.bdimY, grid.bdimZ};
  lp.width = opt.width;
  const uint64_t n = rng.below(100);
  lp.scalarArgs = {n};
  exec::Buffer in("in", total);
  for (uint64_t i = 0; i < total; ++i) in.store(i, rng.below(1u << 14));
  std::vector<exec::Buffer> bufs = {exec::Buffer("out", total), in};
  auto compiled = exec::compile(*prog->kernels[0]);
  auto lr = exec::launch(compiled, lp, bufs);
  ASSERT_TRUE(lr.completed) << lr.error;

  // Evaluate the symbolic final arrays under the same inputs.
  expr::Env env;
  expr::ArrayValue inVal;
  for (uint64_t i = 0; i < total; ++i) inVal.set(i, in.load(i));
  env.bind(enc.inputArrays[1], expr::Value::ofArray(inVal));
  env.bind(enc.inputArrays[0], expr::Value::ofArray({}));
  env.bindBv(enc.scalarInputs[0], n);

  for (uint64_t i = 0; i < total; ++i) {
    Expr cell =
        ctx.mkSelect(enc.finalArrays[0], ctx.bvVal(i, opt.width));
    EXPECT_EQ(expr::evalBv(cell, env), bufs[0].load(i))
        << "cell " << i << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderVsVm, ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace pugpara::encode
