// Randomized property tests for the Context builders / simplifier.
//
// Two properties, each exercised on >= 1000 random cases per operator kind:
//   1. Semantics: building an operation through the (simplifying) Context
//      and evaluating the result agrees with applying the concrete QF_BV
//      semantics (expr/bv_ops.h, expr/eval.h) to the operands' values.
//   2. Idempotence: re-building an already-simplified expression node by
//      node through the public builders returns the identical node (the
//      simplifier is a no-op on its own output).
#include <gtest/gtest.h>

#include <vector>

#include "expr/bv_ops.h"
#include "expr/context.h"
#include "expr/eval.h"
#include "expr/print.h"
#include "support/rng.h"

namespace pugpara::expr {
namespace {

constexpr int kCasesPerKind = 1000;

/// Random expression pools over a fixed variable set, refreshed per case.
struct Gen {
  Context& ctx;
  SplitMix64& rng;
  uint32_t width;
  std::vector<Expr> bvPool;
  std::vector<Expr> boolPool;

  Gen(Context& c, SplitMix64& r, uint32_t w) : ctx(c), rng(r), width(w) {
    for (const char* name : {"x", "y", "z"})
      bvPool.push_back(ctx.var(name + std::to_string(w), Sort::bv(w)));
    bvPool.push_back(ctx.bvVal(rng.next(), w));
    bvPool.push_back(ctx.bvVal(rng.below(4), w));  // small constants hit
    boolPool.push_back(ctx.var("p", Sort::boolSort()));  // more rewrites
    boolPool.push_back(ctx.var("q", Sort::boolSort()));
  }

  Expr bv() { return bvPool[rng.below(bvPool.size())]; }
  Expr b() { return boolPool[rng.below(boolPool.size())]; }

  /// Grow the pools with a few random compound terms so operands are
  /// nested expressions, not just leaves.
  void deepen(int steps) {
    static constexpr Kind bins[] = {
        Kind::BvAdd, Kind::BvSub, Kind::BvMul,  Kind::BvAnd,
        Kind::BvOr,  Kind::BvXor, Kind::BvShl,  Kind::BvLShr,
        Kind::BvAShr, Kind::BvUDiv, Kind::BvURem};
    for (int i = 0; i < steps; ++i) {
      bvPool.push_back(
          ctx.mkBvBin(bins[rng.below(std::size(bins))], bv(), bv()));
      switch (rng.below(4)) {
        case 0: boolPool.push_back(ctx.mkUlt(bv(), bv())); break;
        case 1: boolPool.push_back(ctx.mkEq(bv(), bv())); break;
        case 2: boolPool.push_back(ctx.mkNot(b())); break;
        default: boolPool.push_back(ctx.mkAnd(b(), b())); break;
      }
    }
  }

  Env randomEnv() {
    Env env;
    for (Expr v : bvPool)
      if (v.isVar()) env.bindBv(v, maskToWidth(rng.next(), width));
    for (Expr v : boolPool)
      if (v.isVar()) env.bindBool(v, rng.below(2) != 0);
    return env;
  }
};

uint32_t pickWidth(SplitMix64& rng) {
  static constexpr uint32_t widths[] = {1, 3, 8, 16, 32, 64};
  return widths[rng.below(std::size(widths))];
}

TEST(SimplifyPropertyTest, BinaryBvOpsAgreeWithConcreteSemantics) {
  static constexpr Kind kinds[] = {
      Kind::BvAdd, Kind::BvSub, Kind::BvMul,  Kind::BvUDiv, Kind::BvURem,
      Kind::BvSDiv, Kind::BvSRem, Kind::BvAnd, Kind::BvOr,   Kind::BvXor,
      Kind::BvShl, Kind::BvLShr, Kind::BvAShr};
  SplitMix64 rng(0xb10b5eed);
  for (Kind k : kinds) {
    for (int i = 0; i < kCasesPerKind; ++i) {
      Context ctx;
      Gen g(ctx, rng, pickWidth(rng));
      g.deepen(3);
      const Expr a = g.bv();
      const Expr b = g.bv();
      const Expr e = ctx.mkBvBin(k, a, b);
      const Env env = g.randomEnv();
      const uint64_t want =
          foldBvBin(k, evalBv(a, env), evalBv(b, env), g.width);
      ASSERT_EQ(evalBv(e, env), want)
          << kindName(k) << " width=" << g.width << " case=" << i << "\n"
          << "a=" << toInfix(a) << " b=" << toInfix(b) << "\n"
          << toInfix(e);
    }
  }
}

TEST(SimplifyPropertyTest, ComparisonsAgreeWithConcreteSemantics) {
  static constexpr Kind kinds[] = {Kind::BvUlt, Kind::BvUle, Kind::BvSlt,
                                   Kind::BvSle};
  SplitMix64 rng(0xc0457a1);
  for (Kind k : kinds) {
    for (int i = 0; i < kCasesPerKind; ++i) {
      Context ctx;
      Gen g(ctx, rng, pickWidth(rng));
      g.deepen(3);
      const Expr a = g.bv();
      const Expr b = g.bv();
      Expr e;
      switch (k) {
        case Kind::BvUlt: e = ctx.mkUlt(a, b); break;
        case Kind::BvUle: e = ctx.mkUle(a, b); break;
        case Kind::BvSlt: e = ctx.mkSlt(a, b); break;
        default: e = ctx.mkSle(a, b); break;
      }
      const Env env = g.randomEnv();
      const bool want = foldBvCmp(k, evalBv(a, env), evalBv(b, env), g.width);
      ASSERT_EQ(evalBool(e, env), want)
          << kindName(k) << " width=" << g.width << " case=" << i << "\n"
          << toInfix(e);
    }
  }
}

TEST(SimplifyPropertyTest, EqualityAndIteAgreeWithConcreteSemantics) {
  SplitMix64 rng(0xe9a111);
  for (int i = 0; i < kCasesPerKind; ++i) {
    Context ctx;
    Gen g(ctx, rng, pickWidth(rng));
    g.deepen(3);
    const Expr a = g.bv();
    const Expr b = g.bv();
    const Expr c = g.b();
    const Env env = g.randomEnv();
    ASSERT_EQ(evalBool(ctx.mkEq(a, b), env), evalBv(a, env) == evalBv(b, env));
    ASSERT_EQ(evalBv(ctx.mkIte(c, a, b), env),
              evalBool(c, env) ? evalBv(a, env) : evalBv(b, env));
  }
}

TEST(SimplifyPropertyTest, BooleanConnectivesAgreeWithTruthTables) {
  SplitMix64 rng(0xb001eaf);
  for (int i = 0; i < kCasesPerKind; ++i) {
    Context ctx;
    Gen g(ctx, rng, pickWidth(rng));
    g.deepen(4);
    const Expr a = g.b();
    const Expr b = g.b();
    const Env env = g.randomEnv();
    const bool va = evalBool(a, env);
    const bool vb = evalBool(b, env);
    ASSERT_EQ(evalBool(ctx.mkNot(a), env), !va) << toInfix(a);
    ASSERT_EQ(evalBool(ctx.mkAnd(a, b), env), va && vb);
    ASSERT_EQ(evalBool(ctx.mkOr(a, b), env), va || vb);
    ASSERT_EQ(evalBool(ctx.mkXor(a, b), env), va != vb);
    ASSERT_EQ(evalBool(ctx.mkImplies(a, b), env), !va || vb);
  }
}

TEST(SimplifyPropertyTest, UnaryAndStructuralOpsAgreeWithSemantics) {
  SplitMix64 rng(0x57a47);
  for (int i = 0; i < kCasesPerKind; ++i) {
    Context ctx;
    Gen g(ctx, rng, pickWidth(rng));
    g.deepen(3);
    const Expr a = g.bv();
    const Env env = g.randomEnv();
    const uint64_t va = evalBv(a, env);
    const uint32_t w = g.width;
    ASSERT_EQ(evalBv(ctx.mkBvNeg(a), env), maskToWidth(~va + 1, w));
    ASSERT_EQ(evalBv(ctx.mkBvNot(a), env), maskToWidth(~va, w));
    if (w < 64) {
      const uint32_t by = 1 + static_cast<uint32_t>(rng.below(64 - w));
      ASSERT_EQ(evalBv(ctx.mkZeroExt(a, by), env), va);
      const uint64_t sext = maskToWidth(
          static_cast<uint64_t>(toSigned(va, w)), w + by);
      ASSERT_EQ(evalBv(ctx.mkSignExt(a, by), env), sext);
    }
    const uint32_t hi = static_cast<uint32_t>(rng.below(w));
    const uint32_t lo = static_cast<uint32_t>(rng.below(hi + 1));
    ASSERT_EQ(evalBv(ctx.mkExtract(a, hi, lo), env),
              maskToWidth(va >> lo, hi - lo + 1));
    if (w <= 32) {
      const Expr b = g.bv();
      const uint64_t vb = evalBv(b, env);
      ASSERT_EQ(evalBv(ctx.mkConcat(a, b), env), (va << w) | vb);
    }
  }
}

/// Re-builds `e` bottom-up through the public Context builders. Because the
/// builders simplify before interning, a fixpoint of the simplifier must
/// come back pointer-identical.
Expr rebuild(Context& ctx, Expr e) {
  std::vector<Expr> kids;
  kids.reserve(e.arity());
  for (size_t i = 0; i < e.arity(); ++i)
    kids.push_back(rebuild(ctx, e.kid(i)));
  switch (e.kind()) {
    case Kind::BoolConst:
    case Kind::BvConst:
    case Kind::Var:
      return e;
    case Kind::Not: return ctx.mkNot(kids[0]);
    case Kind::And: return ctx.mkAnd(kids[0], kids[1]);
    case Kind::Or: return ctx.mkOr(kids[0], kids[1]);
    case Kind::Xor: return ctx.mkXor(kids[0], kids[1]);
    case Kind::Implies: return ctx.mkImplies(kids[0], kids[1]);
    case Kind::Eq: return ctx.mkEq(kids[0], kids[1]);
    case Kind::Ite: return ctx.mkIte(kids[0], kids[1], kids[2]);
    case Kind::BvNeg: return ctx.mkBvNeg(kids[0]);
    case Kind::BvNot: return ctx.mkBvNot(kids[0]);
    case Kind::BvUlt: return ctx.mkUlt(kids[0], kids[1]);
    case Kind::BvUle: return ctx.mkUle(kids[0], kids[1]);
    case Kind::BvSlt: return ctx.mkSlt(kids[0], kids[1]);
    case Kind::BvSle: return ctx.mkSle(kids[0], kids[1]);
    case Kind::BvConcat: return ctx.mkConcat(kids[0], kids[1]);
    case Kind::BvExtract:
      return ctx.mkExtract(kids[0], e.extractHi(), e.extractLo());
    case Kind::BvZeroExt: return ctx.mkZeroExt(kids[0], e.extendBy());
    case Kind::BvSignExt: return ctx.mkSignExt(kids[0], e.extendBy());
    default: return ctx.mkBvBin(e.kind(), kids[0], kids[1]);
  }
}

TEST(SimplifyPropertyTest, SimplificationIsIdempotent) {
  SplitMix64 rng(0x1d3a9074);
  for (int i = 0; i < kCasesPerKind; ++i) {
    Context ctx;
    Gen g(ctx, rng, pickWidth(rng));
    g.deepen(8);
    // Mix bool and bv roots so every builder family is revisited.
    const Expr roots[] = {g.bv(), g.b(), ctx.mkIte(g.b(), g.bv(), g.bv())};
    for (Expr e : roots) {
      const Expr again = rebuild(ctx, e);
      ASSERT_EQ(again.node(), e.node())
          << "not a simplifier fixpoint:\n  " << toInfix(e) << "\n  "
          << toInfix(again);
    }
  }
}

}  // namespace
}  // namespace pugpara::expr
