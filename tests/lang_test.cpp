// Front-end tests: lexer, parser, sema and the AST printer, exercised on
// the paper's kernels among others.
#include <gtest/gtest.h>

#include "lang/ast_printer.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace pugpara::lang {
namespace {

std::vector<Token> lex(std::string_view src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  auto toks = lexer.tokenize();
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return toks;
}

TEST(LexerTest, OperatorsAndLiterals) {
  auto toks = lex("a += 0x1F << 2 >= 10u ==> b != c--");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  std::vector<Tok> expected = {
      Tok::Ident, Tok::PlusAssign, Tok::Number, Tok::Shl,   Tok::Number,
      Tok::Ge,    Tok::Number,     Tok::Implies, Tok::Ident, Tok::NotEq,
      Tok::Ident, Tok::MinusMinus, Tok::End};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ(toks[2].number, 0x1Fu);
  EXPECT_EQ(toks[6].number, 10u);
}

TEST(LexerTest, CommentsAndLocations) {
  auto toks = lex("x // line comment\n/* block\ncomment */ y");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[1].loc.line, 3u);
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  auto toks = lex("__shared__ int if0 if float");
  EXPECT_EQ(toks[0].kind, Tok::KwShared);
  EXPECT_EQ(toks[1].kind, Tok::KwInt);
  EXPECT_EQ(toks[2].kind, Tok::Ident);  // "if0" is an identifier
  EXPECT_EQ(toks[3].kind, Tok::KwIf);
  EXPECT_EQ(toks[4].kind, Tok::KwInt);  // float is read as int
}

TEST(LexerTest, ErrorOnBadCharacter) {
  DiagnosticEngine diags;
  Lexer lexer("a @ b", diags);
  (void)lexer.tokenize();
  EXPECT_TRUE(diags.hasErrors());
}

// The naive transpose straight from the paper (Sec. II).
constexpr const char* kNaiveTranspose = R"(
__global__ void naiveTranspose(int *odata, int *idata, int width, int height) {
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if (xIndex < width && yIndex < height) {
    int index_in = xIndex + width * yIndex;
    int index_out = yIndex + height * xIndex;
    odata[index_out] = idata[index_in];
  }
  int i, j;
  postcond(i < width && j < height => odata[i * height + j] == idata[j * width + i]);
}
)";

// The optimized transpose straight from the paper (Sec. II).
constexpr const char* kOptTranspose = R"(
__global__ void optimizedTranspose(int *odata, int *idata, int width, int height) {
  __shared__ float block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}
)";

TEST(ParserTest, ParsesNaiveTranspose) {
  auto prog = parseAndAnalyze(kNaiveTranspose);
  ASSERT_EQ(prog->kernels.size(), 1u);
  const Kernel& k = *prog->kernels[0];
  EXPECT_EQ(k.name, "naiveTranspose");
  ASSERT_EQ(k.params.size(), 4u);
  EXPECT_TRUE(k.params[0]->type.isPointer);
  EXPECT_EQ(k.params[0]->space, MemSpace::Global);
  EXPECT_EQ(k.params[2]->space, MemSpace::Param);
  EXPECT_FALSE(k.usesBarrier);
  EXPECT_TRUE(k.sharedDecls.empty());
}

TEST(ParserTest, ParsesOptimizedTransposeWithSharedTile) {
  auto prog = parseAndAnalyze(kOptTranspose);
  const Kernel& k = *prog->kernels[0];
  EXPECT_TRUE(k.usesBarrier);
  ASSERT_EQ(k.sharedDecls.size(), 1u);
  EXPECT_EQ(k.sharedDecls[0]->name, "block");
  EXPECT_EQ(k.sharedDecls[0]->dims.size(), 2u);
}

TEST(ParserTest, ParsesReductionLoops) {
  // Both reduction loops from Sec. IV-E.
  auto prog = parseAndAnalyze(R"(
__global__ void reduceMod(int *g_odata, int *g_idata) {
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)");
  const Kernel& k = *prog->kernels[0];
  EXPECT_TRUE(k.usesBarrier);
  EXPECT_EQ(k.sharedDecls.size(), 1u);
}

TEST(ParserTest, BuiltinSynonyms) {
  auto prog = parseAndAnalyze(R"(
void k(int *a) {
  a[threadIdx.x + blockIdx.x * blockDim.x] = gridDim.x;
}
)");
  EXPECT_EQ(prog->kernels.size(), 1u);
}

TEST(ParserTest, OperatorPrecedence) {
  auto prog = parseAndAnalyze("void k(int *a, int x) { a[0] = 1 + 2 * x << 1; }");
  const Stmt& blk = *prog->kernels[0]->body;
  const Stmt& asg = *blk.stmts[0];
  // ((1 + (2 * x)) << 1)
  EXPECT_EQ(printExpr(*asg.rhs), "((1 + (2 * x)) << 1)");
}

TEST(ParserTest, TernaryAndImplies) {
  auto prog = parseAndAnalyze(R"(
void k(int *a, int x) {
  int i;
  a[0] = x > 0 ? x : 0 - x;
  postcond(i == 0 => a[0] >= 0);
}
)");
  EXPECT_EQ(prog->kernels.size(), 1u);
}

TEST(ParserTest, CompoundAssignsAndIncrement) {
  auto prog = parseAndAnalyze(R"(
void k(int *v) {
  int i = 0;
  i++;
  i -= 3;
  v[i] <<= 1;
  v[i + 1] ^= 7;
}
)");
  const auto& stmts = prog->kernels[0]->body->stmts;
  ASSERT_EQ(stmts.size(), 5u);
  EXPECT_TRUE(stmts[1]->isCompound);
  EXPECT_EQ(stmts[1]->compoundOp, BinOp::Add);
  EXPECT_EQ(stmts[3]->compoundOp, BinOp::Shl);
}

TEST(ParserTest, CStyleCastIsIgnored) {
  auto prog = parseAndAnalyze(
      "void k(int *a, int n) { a[0] = (int)n + (unsigned int)2; }");
  EXPECT_EQ(prog->kernels.size(), 1u);
}

TEST(ParserTest, MultipleKernelsInOneUnit) {
  DiagnosticEngine diags;
  auto prog = parseProgram(
      "void a(int *x) { x[0] = 1; } void b(int *y) { y[0] = 2; }", diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  EXPECT_EQ(prog->kernels.size(), 2u);
  EXPECT_NE(prog->findKernel("a"), nullptr);
  EXPECT_NE(prog->findKernel("b"), nullptr);
  EXPECT_EQ(prog->findKernel("c"), nullptr);
}

TEST(ParserErrorTest, ReportsMissingSemicolon) {
  DiagnosticEngine diags;
  (void)parseProgram("void k(int *a) { a[0] = 1 }", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(ParserErrorTest, ReportsBadBuiltin) {
  DiagnosticEngine diags;
  (void)parseProgram("void k(int *a) { a[0] = tid.w; }", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(ParserErrorTest, RejectsBidZ) {
  DiagnosticEngine diags;
  (void)parseProgram("void k(int *a) { a[0] = bid.z; }", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, UndeclaredVariable) {
  DiagnosticEngine diags;
  auto prog = parseProgram("void k(int *a) { a[0] = nothere; }", diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, RedeclarationInSameScope) {
  DiagnosticEngine diags;
  auto prog = parseProgram("void k(int *a) { int i; int i; }", diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, ShadowingInNestedScopeIsAllowed) {
  DiagnosticEngine diags;
  auto prog =
      parseProgram("void k(int *a) { int i = 0; { int i = 1; a[i] = i; } }",
                    diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
}

TEST(SemaTest, IndexArityChecked) {
  DiagnosticEngine diags;
  auto prog = parseProgram(R"(
void k(int *a) {
  __shared__ int t[bdim.x][bdim.y];
  t[0] = a[0];
}
)", diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, CannotAssignWholeArray) {
  DiagnosticEngine diags;
  auto prog = parseProgram("void k(int *a, int *b) { a = b; }", diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, CannotIndexScalar) {
  DiagnosticEngine diags;
  auto prog = parseProgram("void k(int *a, int n) { n[0] = 1; }", diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, SharedDimMustBeUniform) {
  DiagnosticEngine diags;
  auto prog = parseProgram(R"(
void k(int *a) {
  __shared__ int t[tid.x];
  t[0] = a[0];
}
)", diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, SharedMustBeArray) {
  DiagnosticEngine diags;
  auto prog = parseProgram("void k(int *a) { __shared__ int s; s = 1; }",
                           diags);
  // The parser reports this one (shared scalars are rejected early).
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, UnknownFunctionRejected) {
  DiagnosticEngine diags;
  auto prog = parseProgram("void k(int *a) { a[0] = foo(1); }", diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, MinMaxAbsAccepted) {
  DiagnosticEngine diags;
  auto prog = parseProgram(
      "void k(int *a, int x) { a[0] = min(x, 3) + max(1, x) + abs(x); }",
      diags);
  analyze(*prog->kernels[0], diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
}

TEST(PrinterTest, RoundTripThroughParser) {
  // print(parse(src)) must itself parse to the same printed form (fixpoint).
  auto prog1 = parseAndAnalyze(kOptTranspose);
  std::string printed1 = printKernel(*prog1->kernels[0]);
  auto prog2 = parseAndAnalyze(printed1);
  std::string printed2 = printKernel(*prog2->kernels[0]);
  EXPECT_EQ(printed1, printed2);
}

TEST(PrinterTest, ForLoopRendering) {
  auto prog = parseAndAnalyze(
      "void k(int *a) { for (unsigned int i = 0; i < 4; i++) a[i] = i; }");
  std::string p = printKernel(*prog->kernels[0]);
  EXPECT_NE(p.find("for (unsigned int i = 0; (i < 4); i += 1)"),
            std::string::npos)
      << p;
}

TEST(CloneTest, DeepCloneIsStructurallyIdentical) {
  auto prog = parseAndAnalyze(kOptTranspose);
  const Kernel& k = *prog->kernels[0];
  auto cloned = k.clone();
  DiagnosticEngine diags;
  analyze(*cloned, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  EXPECT_EQ(printKernel(k), printKernel(*cloned));
}

}  // namespace
}  // namespace pugpara::lang
