// Unit tests for the expression layer: hash consing, sorts, simplification,
// evaluation, substitution, printing and traversal.
#include <gtest/gtest.h>

#include "expr/bv_ops.h"
#include "expr/context.h"
#include "expr/eval.h"
#include "expr/print.h"
#include "expr/subst.h"
#include "expr/walk.h"
#include "support/rng.h"

namespace pugpara::expr {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Context ctx;
  Sort bv32 = Sort::bv(32);
  Sort bv8 = Sort::bv(8);
};

TEST_F(ExprTest, HashConsingMakesStructurallyEqualTermsPointerEqual) {
  Expr x = ctx.var("x", bv32);
  Expr y = ctx.var("y", bv32);
  Expr a = ctx.mkAdd(x, y);
  Expr b = ctx.mkAdd(x, y);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.node(), b.node());
}

TEST_F(ExprTest, CommutativeOperandsAreCanonicalized) {
  Expr x = ctx.var("x", bv32);
  Expr y = ctx.var("y", bv32);
  EXPECT_EQ(ctx.mkAdd(x, y), ctx.mkAdd(y, x));
  EXPECT_EQ(ctx.mkMul(x, y), ctx.mkMul(y, x));
  EXPECT_EQ(ctx.mkEq(x, y), ctx.mkEq(y, x));
  // Non-commutative operators must not be reordered.
  EXPECT_NE(ctx.mkSub(x, y), ctx.mkSub(y, x));
}

TEST_F(ExprTest, VariableIdentityAndSortConflicts) {
  Expr x1 = ctx.var("x", bv32);
  Expr x2 = ctx.var("x", bv32);
  EXPECT_EQ(x1, x2);
  EXPECT_THROW(ctx.var("x", bv8), PugError);
  Expr f1 = ctx.freshVar("x", bv32);
  Expr f2 = ctx.freshVar("x", bv32);
  EXPECT_NE(f1, f2);
  EXPECT_NE(f1, x1);
}

TEST_F(ExprTest, ConstantFoldingArithmetic) {
  Expr a = ctx.bvVal(20, 32);
  Expr b = ctx.bvVal(22, 32);
  EXPECT_EQ(ctx.mkAdd(a, b), ctx.bvVal(42, 32));
  EXPECT_EQ(ctx.mkMul(a, b), ctx.bvVal(440, 32));
  EXPECT_EQ(ctx.mkSub(a, b), ctx.bvVal(uint64_t(-2) & 0xffffffffu, 32));
  // Wrap-around at width.
  EXPECT_EQ(ctx.mkAdd(ctx.bvVal(255, 8), ctx.bvVal(1, 8)), ctx.bvVal(0, 8));
}

TEST_F(ExprTest, DivisionByZeroFollowsSmtLib) {
  Expr x = ctx.bvVal(7, 8);
  Expr z = ctx.bvVal(0, 8);
  EXPECT_EQ(ctx.mkUDiv(x, z), ctx.bvVal(0xff, 8));
  EXPECT_EQ(ctx.mkURem(x, z), x);
  // bvsdiv by zero: 1 for negative dividend, all-ones otherwise.
  Expr neg = ctx.bvVal(0x80, 8);
  EXPECT_EQ(ctx.mkSDiv(neg, z), ctx.bvVal(1, 8));
  EXPECT_EQ(ctx.mkSDiv(x, z), ctx.bvVal(0xff, 8));
  EXPECT_EQ(ctx.mkSRem(x, z), x);
}

TEST_F(ExprTest, IdentitySimplifications) {
  Expr x = ctx.var("x", bv32);
  Expr zero = ctx.bvVal(0, 32);
  Expr one = ctx.bvVal(1, 32);
  EXPECT_EQ(ctx.mkAdd(x, zero), x);
  EXPECT_EQ(ctx.mkSub(x, zero), x);
  EXPECT_EQ(ctx.mkSub(x, x), zero);
  EXPECT_EQ(ctx.mkMul(x, one), x);
  EXPECT_EQ(ctx.mkMul(x, zero), zero);
  EXPECT_EQ(ctx.mkBvXor(x, x), zero);
  EXPECT_EQ(ctx.mkBvAnd(x, x), x);
  EXPECT_EQ(ctx.mkShl(x, zero), x);
}

TEST_F(ExprTest, BooleanSimplifications) {
  Expr p = ctx.var("p", Sort::boolSort());
  EXPECT_EQ(ctx.mkAnd(p, ctx.top()), p);
  EXPECT_EQ(ctx.mkAnd(p, ctx.bot()), ctx.bot());
  EXPECT_EQ(ctx.mkOr(p, ctx.bot()), p);
  EXPECT_EQ(ctx.mkAnd(p, ctx.mkNot(p)), ctx.bot());
  EXPECT_EQ(ctx.mkOr(p, ctx.mkNot(p)), ctx.top());
  EXPECT_EQ(ctx.mkNot(ctx.mkNot(p)), p);
  EXPECT_EQ(ctx.mkImplies(p, p), ctx.top());
  EXPECT_EQ(ctx.mkXor(p, p), ctx.bot());
}

TEST_F(ExprTest, IteSimplifications) {
  Expr p = ctx.var("p", Sort::boolSort());
  Expr x = ctx.var("x", bv32);
  Expr y = ctx.var("y", bv32);
  EXPECT_EQ(ctx.mkIte(ctx.top(), x, y), x);
  EXPECT_EQ(ctx.mkIte(ctx.bot(), x, y), y);
  EXPECT_EQ(ctx.mkIte(p, x, x), x);
  EXPECT_EQ(ctx.mkIte(p, ctx.top(), ctx.bot()), p);
  EXPECT_EQ(ctx.mkIte(ctx.mkNot(p), x, y), ctx.mkIte(p, y, x));
  // Collapse of nested ite on the same condition.
  EXPECT_EQ(ctx.mkIte(p, x, ctx.mkIte(p, y, x)), ctx.mkIte(p, x, x));
}

TEST_F(ExprTest, EqSimplifications) {
  Expr x = ctx.var("x", bv32);
  EXPECT_EQ(ctx.mkEq(x, x), ctx.top());
  EXPECT_EQ(ctx.mkEq(ctx.bvVal(3, 32), ctx.bvVal(3, 32)), ctx.top());
  EXPECT_EQ(ctx.mkEq(ctx.bvVal(3, 32), ctx.bvVal(4, 32)), ctx.bot());
}

TEST_F(ExprTest, ComparisonSimplifications) {
  Expr x = ctx.var("x", bv32);
  Expr zero = ctx.bvVal(0, 32);
  EXPECT_EQ(ctx.mkUlt(x, zero), ctx.bot());
  EXPECT_EQ(ctx.mkUle(zero, x), ctx.top());
  EXPECT_EQ(ctx.mkUlt(x, x), ctx.bot());
  EXPECT_EQ(ctx.mkUle(x, x), ctx.top());
  EXPECT_TRUE(ctx.mkUlt(ctx.bvVal(3, 8), ctx.bvVal(4, 8)).isTrue());
  // Signed: 0xff as 8-bit is -1 < 0.
  EXPECT_TRUE(ctx.mkSlt(ctx.bvVal(0xff, 8), ctx.bvVal(0, 8)).isTrue());
  EXPECT_TRUE(ctx.mkUlt(ctx.bvVal(0, 8), ctx.bvVal(0xff, 8)).isTrue());
}

TEST_F(ExprTest, NotOfComparisonNormalizes) {
  Expr x = ctx.var("x", bv32);
  Expr y = ctx.var("y", bv32);
  EXPECT_EQ(ctx.mkNot(ctx.mkUlt(x, y)), ctx.mkUle(y, x));
  EXPECT_EQ(ctx.mkNot(ctx.mkSle(x, y)), ctx.mkSlt(y, x));
}

TEST_F(ExprTest, SelectOverStoreResolution) {
  Sort arr = Sort::array(32, 32);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", bv32);
  Expr j = ctx.var("j", bv32);
  Expr v = ctx.var("v", bv32);
  // Same symbolic index resolves to the stored value.
  EXPECT_EQ(ctx.mkSelect(ctx.mkStore(a, i, v), i), v);
  // Distinct constant indices skip the store.
  Expr st = ctx.mkStore(a, ctx.bvVal(1, 32), v);
  EXPECT_EQ(ctx.mkSelect(st, ctx.bvVal(2, 32)),
            ctx.mkSelect(a, ctx.bvVal(2, 32)));
  EXPECT_EQ(ctx.mkSelect(st, ctx.bvVal(1, 32)), v);
  // Symbolic-vs-symbolic indices stay as a select (lazy array reasoning
  // wins there); a CONSTANT index on either side expands to ite form.
  Expr symsym = ctx.mkSelect(ctx.mkStore(a, i, v), j);
  EXPECT_EQ(symsym.kind(), Kind::Select);
  Expr constRead = ctx.mkSelect(ctx.mkStore(a, i, v), ctx.bvVal(5, 32));
  EXPECT_EQ(constRead,
            ctx.mkIte(ctx.mkEq(ctx.bvVal(5, 32), i), v,
                      ctx.mkSelect(a, ctx.bvVal(5, 32))));
}

TEST_F(ExprTest, StoreSimplifications) {
  Sort arr = Sort::array(32, 32);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", bv32);
  Expr v1 = ctx.var("v1", bv32);
  Expr v2 = ctx.var("v2", bv32);
  // Overwrite at the same index collapses.
  EXPECT_EQ(ctx.mkStore(ctx.mkStore(a, i, v1), i, v2), ctx.mkStore(a, i, v2));
  // Storing back what is read is a no-op.
  EXPECT_EQ(ctx.mkStore(a, i, ctx.mkSelect(a, i)), a);
}

TEST_F(ExprTest, ExtractConcatExtendFolding) {
  Expr c = ctx.bvVal(0xAB, 8);
  EXPECT_EQ(ctx.mkExtract(c, 7, 4), ctx.bvVal(0xA, 4));
  EXPECT_EQ(ctx.mkExtract(c, 3, 0), ctx.bvVal(0xB, 4));
  Expr x = ctx.var("x", bv8);
  EXPECT_EQ(ctx.mkExtract(x, 7, 0), x);  // full-width extract is identity
  EXPECT_EQ(ctx.mkConcat(ctx.bvVal(0xA, 4), ctx.bvVal(0xB, 4)),
            ctx.bvVal(0xAB, 8));
  EXPECT_EQ(ctx.mkZeroExt(ctx.bvVal(0xFF, 8), 8), ctx.bvVal(0xFF, 16));
  EXPECT_EQ(ctx.mkSignExt(ctx.bvVal(0xFF, 8), 8), ctx.bvVal(0xFFFF, 16));
  EXPECT_EQ(ctx.mkResize(ctx.bvVal(0x1FF, 16), 8, false), ctx.bvVal(0xFF, 8));
}

TEST_F(ExprTest, SortValidationRejectsIllTypedNodes) {
  Expr x = ctx.var("x", bv32);
  Expr y8 = ctx.var("y8", bv8);
  Expr p = ctx.var("p", Sort::boolSort());
  EXPECT_THROW(ctx.mkAdd(x, y8), PugError);
  EXPECT_THROW(ctx.mkAnd(x, x), PugError);
  EXPECT_THROW(ctx.mkIte(p, x, y8), PugError);
  EXPECT_THROW(ctx.mkEq(x, p), PugError);
  Sort arr = Sort::array(32, 32);
  Expr a = ctx.var("a", arr);
  EXPECT_THROW(ctx.mkSelect(a, y8), PugError);
  EXPECT_THROW(ctx.mkStore(a, x, y8), PugError);
  EXPECT_THROW(ctx.mkExtract(x, 32, 0), PugError);
}

TEST_F(ExprTest, EvaluatorScalars) {
  Expr x = ctx.var("x", bv32);
  Expr y = ctx.var("y", bv32);
  Env env;
  env.bindBv(x, 10);
  env.bindBv(y, 3);
  EXPECT_EQ(evalBv(ctx.mkAdd(x, y), env), 13u);
  EXPECT_EQ(evalBv(ctx.mkMul(x, y), env), 30u);
  EXPECT_EQ(evalBv(ctx.mkURem(x, y), env), 1u);
  EXPECT_TRUE(evalBool(ctx.mkUlt(y, x), env));
  EXPECT_FALSE(evalBool(ctx.mkEq(x, y), env));
  EXPECT_EQ(evalBv(ctx.mkIte(ctx.mkUlt(x, y), x, y), env), 3u);
}

TEST_F(ExprTest, EvaluatorArrays) {
  Sort arr = Sort::array(32, 32);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", bv32);
  Env env;
  ArrayValue av;
  av.set(5, 77);
  env.bind(a, Value::ofArray(av));
  env.bindBv(i, 5);
  EXPECT_EQ(evalBv(ctx.mkSelect(a, i), env), 77u);
  Expr stored = ctx.mkStore(a, ctx.bvVal(6, 32), ctx.bvVal(99, 32));
  EXPECT_EQ(evalBv(ctx.mkSelect(stored, ctx.bvVal(6, 32)), env), 99u);
  EXPECT_EQ(evalBv(ctx.mkSelect(stored, ctx.bvVal(5, 32)), env), 77u);
  EXPECT_EQ(evalBv(ctx.mkSelect(stored, ctx.bvVal(7, 32)), env), 0u);
}

TEST_F(ExprTest, EvaluatorUnboundPolicy) {
  Expr x = ctx.var("x", bv32);
  Env env;
  EXPECT_EQ(evalBv(x, env), 0u);  // default: unbound is zero
  EXPECT_THROW(evaluate(x, env, /*requireBound=*/true), PugError);
}

TEST_F(ExprTest, SubstitutionReplacesAndResimplifies) {
  Expr x = ctx.var("x", bv32);
  Expr y = ctx.var("y", bv32);
  Expr e = ctx.mkAdd(ctx.mkMul(x, x), y);
  Expr r = substitute(e, x, ctx.bvVal(3, 32));
  EXPECT_EQ(r, ctx.mkAdd(ctx.bvVal(9, 32), y));
  // Identity substitution returns the original node.
  EXPECT_EQ(substitute(e, y, y), e);
}

TEST_F(ExprTest, SubstitutionSortMismatchThrows) {
  Expr x = ctx.var("x", bv32);
  EXPECT_THROW(substitute(x, x, ctx.bvVal(1, 8)), PugError);
}

TEST_F(ExprTest, SubstitutionRespectsQuantifierBinding) {
  Expr t = ctx.var("t", bv32);
  Expr a = ctx.var("a", bv32);
  Expr body = ctx.mkNot(ctx.mkEq(a, t));
  std::vector<Expr> bound = {t};
  Expr q = ctx.mkForall(bound, body);
  // Substituting the bound variable must not touch the body.
  EXPECT_EQ(substitute(q, t, ctx.bvVal(1, 32)), q);
  // Substituting a genuinely free variable does.
  Expr q2 = substitute(q, a, ctx.bvVal(7, 32));
  EXPECT_NE(q2, q);
}

TEST_F(ExprTest, FreeVarsExcludeBoundVariables) {
  Expr t = ctx.var("t", bv32);
  Expr a = ctx.var("a", bv32);
  std::vector<Expr> bound = {t};
  Expr q = ctx.mkForall(bound, ctx.mkEq(a, t));
  auto fv = freeVars(q);
  ASSERT_EQ(fv.size(), 1u);
  EXPECT_EQ(fv[0], a);
}

TEST_F(ExprTest, FreeVarsOrderAndDedup) {
  Expr x = ctx.var("x", bv32);
  Expr y = ctx.var("y", bv32);
  Expr e = ctx.mkAdd(ctx.mkAdd(x, y), x);
  auto fv = freeVars(e);
  ASSERT_EQ(fv.size(), 2u);
}

TEST_F(ExprTest, PrintInfixAndSmtLib) {
  Expr x = ctx.var("x", bv8);
  Expr e = ctx.mkUlt(ctx.mkAdd(x, ctx.bvVal(1, 8)), ctx.bvVal(10, 8));
  EXPECT_EQ(toInfix(e), "((x + 1) <u 10)");
  EXPECT_EQ(toSmtLib(e), "(bvult (bvadd x (_ bv1 8)) (_ bv10 8))");
  std::vector<Expr> as = {e};
  std::string script = toSmtLibScript(as);
  EXPECT_NE(script.find("(declare-fun x () (_ BitVec 8))"), std::string::npos);
  EXPECT_NE(script.find("(check-sat)"), std::string::npos);
}

TEST_F(ExprTest, NodeCountCountsDagNodesOnce) {
  Expr x = ctx.var("x", bv32);
  Expr sq = ctx.mkMul(x, x);
  Expr e = ctx.mkAdd(sq, sq);
  // Nodes: x, sq, e.
  EXPECT_EQ(nodeCount(e), 3u);
}

// Property sweep: the simplifier must preserve concrete semantics.
// Random expression trees are built twice (once from leaves that are
// constants, once with variables then substituted), and both must evaluate
// to the same value.
class SimplifierSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifierSoundness, RandomBinOpTreesPreserveSemantics) {
  Context ctx;
  SplitMix64 rng(GetParam());
  const uint32_t width = 1 + static_cast<uint32_t>(rng.below(32));
  const Kind ops[] = {Kind::BvAdd,  Kind::BvSub,  Kind::BvMul, Kind::BvUDiv,
                      Kind::BvURem, Kind::BvSDiv, Kind::BvSRem, Kind::BvAnd,
                      Kind::BvOr,   Kind::BvXor,  Kind::BvShl, Kind::BvLShr,
                      Kind::BvAShr};
  // Two leaf variables with random concrete values.
  Expr x = ctx.var("x", Sort::bv(width));
  Expr y = ctx.var("y", Sort::bv(width));
  const uint64_t xv = rng.next(), yv = rng.next();
  Env env;
  env.bindBv(x, maskToWidth(xv, width));
  env.bindBv(y, maskToWidth(yv, width));

  // Random tree over {x, y, consts}.
  std::vector<Expr> pool = {x, y, ctx.bvVal(rng.next(), width),
                            ctx.bvVal(rng.below(4), width)};
  for (int i = 0; i < 24; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    Kind k = ops[rng.below(std::size(ops))];
    pool.push_back(ctx.mkBvBin(k, a, b));
  }
  Expr e = pool.back();

  // Reference: evaluate with a fold that bypasses the simplifier entirely —
  // substitute x,y by constants and compare against direct evaluation.
  const uint64_t direct = evalBv(e, env);
  SubstMap m;
  m.emplace(x.node(), ctx.bvVal(maskToWidth(xv, width), width));
  m.emplace(y.node(), ctx.bvVal(maskToWidth(yv, width), width));
  Expr folded = substitute(e, m);
  ASSERT_TRUE(folded.isBvConst()) << folded.str();
  EXPECT_EQ(folded.bvValue(), direct) << "width=" << width;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifierSoundness,
                         ::testing::Range<uint64_t>(0, 48));

}  // namespace
}  // namespace pugpara::expr
