// MiniSMT backend tests: the CDCL core, bit-blasting correctness against
// the concrete evaluator, array lowering, Z3 cross-checks on random
// formulas, and end-to-end PUGpara checks running on the from-scratch
// solver.
#include <gtest/gtest.h>

#include "check/session.h"
#include "expr/eval.h"
#include "expr/subst.h"
#include "kernels/corpus.h"
#include "smt/mini/sat_solver.h"
#include "smt/solver.h"
#include "support/rng.h"

namespace pugpara::smt {
namespace {

using expr::Context;
using expr::Expr;
using expr::Sort;

// ---- CDCL core ----------------------------------------------------------------

TEST(SatSolverTest, TrivialAndUnit) {
  mini::SatSolver s;
  mini::Var a = s.newVar(), b = s.newVar();
  EXPECT_TRUE(s.addClause({mini::Lit(a, false)}));
  EXPECT_TRUE(s.addClause({mini::Lit(a, true), mini::Lit(b, false)}));
  ASSERT_EQ(s.solve(), mini::SatResult::Sat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
}

TEST(SatSolverTest, DirectContradiction) {
  mini::SatSolver s;
  mini::Var a = s.newVar();
  s.addClause({mini::Lit(a, false)});
  s.addClause({mini::Lit(a, true)});
  EXPECT_EQ(s.solve(), mini::SatResult::Unsat);
}

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons in n holes — classically
/// hard UNSAT instances that force real conflict analysis.
mini::SatResult pigeonhole(uint32_t holes) {
  mini::SatSolver s;
  const uint32_t pigeons = holes + 1;
  std::vector<std::vector<mini::Var>> p(pigeons,
                                        std::vector<mini::Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (uint32_t i = 0; i < pigeons; ++i) {
    std::vector<mini::Lit> clause;
    for (uint32_t h = 0; h < holes; ++h)
      clause.emplace_back(p[i][h], false);
    s.addClause(std::move(clause));
  }
  for (uint32_t h = 0; h < holes; ++h)
    for (uint32_t i = 0; i < pigeons; ++i)
      for (uint32_t j = i + 1; j < pigeons; ++j)
        s.addClause({mini::Lit(p[i][h], true), mini::Lit(p[j][h], true)});
  return s.solve();
}

TEST(SatSolverTest, PigeonholeUnsat) {
  EXPECT_EQ(pigeonhole(5), mini::SatResult::Unsat);
  EXPECT_EQ(pigeonhole(7), mini::SatResult::Unsat);
}

TEST(SatSolverTest, ConflictBudgetAborts) {
  mini::SatSolver s;
  // PHP(9, 8) is large enough to exceed a 10-conflict budget.
  const uint32_t holes = 8, pigeons = 9;
  std::vector<std::vector<mini::Var>> p(pigeons,
                                        std::vector<mini::Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (uint32_t i = 0; i < pigeons; ++i) {
    std::vector<mini::Lit> clause;
    for (uint32_t h = 0; h < holes; ++h)
      clause.emplace_back(p[i][h], false);
    s.addClause(std::move(clause));
  }
  for (uint32_t h = 0; h < holes; ++h)
    for (uint32_t i = 0; i < pigeons; ++i)
      for (uint32_t j = i + 1; j < pigeons; ++j)
        s.addClause({mini::Lit(p[i][h], true), mini::Lit(p[j][h], true)});
  s.setConflictBudget(10);
  EXPECT_EQ(s.solve(), mini::SatResult::Aborted);
}

// ---- Shared backend conformance suite -------------------------------------------

class BackendTest : public ::testing::TestWithParam<Backend> {
 protected:
  [[nodiscard]] std::unique_ptr<Solver> solver() const {
    return makeSolver(GetParam());
  }
};

TEST_P(BackendTest, SatUnsatAndPushPop) {
  Context ctx;
  auto s = solver();
  Expr x = ctx.var("x", Sort::bv(8));
  s->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->push();
  s->add(ctx.mkUlt(ctx.bvVal(20, 8), x));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
  s->pop();
  EXPECT_EQ(s->check(), CheckResult::Sat);
}

TEST_P(BackendTest, ModelSatisfiesAssertions) {
  Context ctx;
  auto s = solver();
  Expr x = ctx.var("x", Sort::bv(12));
  Expr y = ctx.var("y", Sort::bv(12));
  Expr c1 = ctx.mkEq(ctx.mkMul(x, y), ctx.bvVal(143, 12));  // 11 * 13
  Expr c2 = ctx.mkUlt(ctx.bvVal(1, 12), x);
  Expr c3 = ctx.mkUlt(x, y);
  s->add(c1);
  s->add(c2);
  s->add(c3);
  ASSERT_EQ(s->check(), CheckResult::Sat);
  auto m = s->model();
  expr::Env env;
  env.bindBv(x, m->evalBv(x));
  env.bindBv(y, m->evalBv(y));
  EXPECT_TRUE(expr::evalBool(c1, env));
  EXPECT_TRUE(expr::evalBool(c2, env));
  EXPECT_TRUE(expr::evalBool(c3, env));
}

TEST_P(BackendTest, SignedOperationsAgreeWithSemantics) {
  Context ctx;
  auto s = solver();
  Expr x = ctx.var("x", Sort::bv(8));
  // x / -2 == 3 (signed): x in {-6, -7}.
  Expr minus2 = ctx.bvVal(0xFE, 8);
  s->add(ctx.mkEq(ctx.mkSDiv(x, minus2), ctx.bvVal(3, 8)));
  s->add(ctx.mkSlt(x, ctx.bvVal(0, 8)));
  ASSERT_EQ(s->check(), CheckResult::Sat);
  auto m = s->model();
  const uint64_t xv = m->evalBv(x);
  EXPECT_TRUE(xv == 0xFA || xv == 0xF9) << xv;  // -6 or -7
}

TEST_P(BackendTest, DivisionByZeroConvention) {
  Context ctx;
  auto s = solver();
  Expr x = ctx.var("x", Sort::bv(8));
  s->add(ctx.mkEq(ctx.mkUDiv(x, ctx.var("z", Sort::bv(8))), ctx.bvVal(7, 8)));
  s->add(ctx.mkEq(ctx.var("z", Sort::bv(8)), ctx.bvVal(0, 8)));
  // x / 0 == all-ones != 7: unsat.
  EXPECT_EQ(s->check(), CheckResult::Unsat);
}

TEST_P(BackendTest, ArraysReadOverWrite) {
  Context ctx;
  auto s = solver();
  Sort arr = Sort::array(8, 8);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", Sort::bv(8));
  Expr j = ctx.var("j", Sort::bv(8));
  Expr st = ctx.mkStore(a, i, ctx.bvVal(5, 8));
  s->add(ctx.mkEq(i, j));
  s->add(ctx.mkNe(ctx.mkSelect(st, j), ctx.bvVal(5, 8)));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
}

TEST_P(BackendTest, ArrayFunctionalConsistency) {
  Context ctx;
  auto s = solver();
  Sort arr = Sort::array(8, 8);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", Sort::bv(8));
  Expr j = ctx.var("j", Sort::bv(8));
  // Same index, different values: must be unsat (Ackermann axioms).
  s->add(ctx.mkEq(i, j));
  s->add(ctx.mkEq(ctx.mkSelect(a, i), ctx.bvVal(1, 8)));
  s->add(ctx.mkEq(ctx.mkSelect(a, j), ctx.bvVal(2, 8)));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
}

TEST_P(BackendTest, ArrayModelReconstruction) {
  Context ctx;
  auto s = solver();
  Sort arr = Sort::array(8, 8);
  Expr a = ctx.var("a", arr);
  s->add(ctx.mkEq(ctx.mkSelect(a, ctx.bvVal(3, 8)), ctx.bvVal(42, 8)));
  ASSERT_EQ(s->check(), CheckResult::Sat);
  auto m = s->model();
  EXPECT_EQ(m->evalBv(ctx.mkSelect(a, ctx.bvVal(3, 8))), 42u);
}

TEST_P(BackendTest, ShiftSemantics) {
  Context ctx;
  auto s = solver();
  Expr x = ctx.var("x", Sort::bv(8));
  Expr sh = ctx.var("sh", Sort::bv(8));
  // Shift by >= width gives zero.
  s->add(ctx.mkUle(ctx.bvVal(8, 8), sh));
  s->add(ctx.mkNe(ctx.mkShl(x, sh), ctx.bvVal(0, 8)));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(Backend::Z3, Backend::Mini),
                         [](const auto& info) {
                           return info.param == Backend::Z3 ? "Z3" : "Mini";
                         });

// ---- Random cross-check against Z3 -----------------------------------------------

class MiniVsZ3 : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiniVsZ3, RandomFormulasAgree) {
  SplitMix64 rng(GetParam() * 7919 + 13);
  Context ctx;
  const uint32_t width = 4 + static_cast<uint32_t>(rng.below(10));
  Sort bv = Sort::bv(width);
  std::vector<Expr> pool = {ctx.var("x", bv), ctx.var("y", bv),
                            ctx.var("z", bv), ctx.bvVal(rng.next(), width),
                            ctx.bvVal(rng.below(5), width)};
  using K = expr::Kind;
  const K ops[] = {K::BvAdd, K::BvSub, K::BvMul,  K::BvAnd, K::BvOr,
                   K::BvXor, K::BvShl, K::BvLShr, K::BvAShr, K::BvUDiv,
                   K::BvURem, K::BvSDiv, K::BvSRem};
  for (int i = 0; i < 14; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    pool.push_back(ctx.mkBvBin(ops[rng.below(std::size(ops))], a, b));
  }
  // Build 2-3 boolean constraints over the pool.
  std::vector<Expr> constraints;
  for (int i = 0; i < 3; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: constraints.push_back(ctx.mkEq(a, b)); break;
      case 1: constraints.push_back(ctx.mkUlt(a, b)); break;
      case 2: constraints.push_back(ctx.mkSlt(a, b)); break;
      default: constraints.push_back(ctx.mkNe(a, b)); break;
    }
  }

  auto z3 = makeZ3Solver();
  auto mini = makeMiniSolver();
  mini->setTimeoutMs(30000);
  for (Expr c : constraints) {
    z3->add(c);
    mini->add(c);
  }
  CheckResult rz = z3->check();
  CheckResult rm = mini->check();
  ASSERT_NE(rm, CheckResult::Unknown) << "seed " << GetParam();
  EXPECT_EQ(rz, rm) << "seed " << GetParam() << " width " << width;

  if (rm == CheckResult::Sat) {
    // The MiniSMT model must satisfy every constraint concretely.
    auto m = mini->model();
    expr::Env env;
    for (const char* name : {"x", "y", "z"}) {
      Expr v = ctx.var(name, bv);
      env.bindBv(v, m->evalBv(v));
    }
    for (Expr c : constraints)
      EXPECT_TRUE(expr::evalBool(c, env)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniVsZ3, ::testing::Range<uint64_t>(0, 40));

// ---- End-to-end: PUGpara on the from-scratch backend ------------------------------

TEST(MiniEndToEndTest, ParamPostcondOnMiniBackend) {
  // A single-axis kernel: the monotone QE of Sec. IV-D discharges the frame
  // without quantifiers, which is exactly what the from-scratch backend can
  // digest. (Multi-axis kernels like vecAdd need the native-forall frames
  // and correctly yield Unknown on MiniSMT — see the next test.)
  const char* src = R"(
void fill(int *a) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  a[tid.x] = tid.x + 1;
  int i;
  postcond(i < bdim.x => a[i] == i + 1);
}
)";
  check::VerificationSession s(src);
  check::CheckOptions o;
  o.method = check::Method::Parameterized;
  o.width = 8;
  o.backend = Backend::Mini;
  o.solverTimeoutMs = 120000;
  check::Report r = s.postconditions("fill", o);
  EXPECT_EQ(r.outcome, check::Outcome::Verified) << r.str();
  EXPECT_GT(r.stats.qeCerts, 0u);
}

TEST(MiniEndToEndTest, QuantifiedFramesAreRejectedByMini) {
  // vecAdd's writes span two thread axes, so the frame premise keeps its
  // quantifier; MiniSMT must answer Unknown — the paper's "existing SMT
  // solvers often fail to handle quantified formulas".
  check::VerificationSession s(kernels::combinedSource({"vecAdd"}, 8));
  check::CheckOptions o;
  o.method = check::Method::Parameterized;
  o.width = 8;
  o.backend = Backend::Mini;
  check::Report r = s.postconditions("vecAdd", o);
  EXPECT_EQ(r.outcome, check::Outcome::Unknown) << r.str();
}

TEST(MiniEndToEndTest, BugFoundAndReplayedOnMiniBackend) {
  const char* broken = R"(
void k(int *a) {
  assume(gdim.x == 1 && gdim.y == 1 && bdim.y == 1 && bdim.z == 1);
  a[tid.x] = tid.x + 2;
  int i;
  postcond(i < bdim.x => a[i] == i + 1);
}
)";
  check::VerificationSession s(broken);
  check::CheckOptions o;
  o.method = check::Method::Parameterized;
  o.width = 8;
  o.backend = Backend::Mini;
  o.solverTimeoutMs = 120000;
  check::Report r = s.postconditions("k", o);
  EXPECT_EQ(r.outcome, check::Outcome::BugFound) << r.str();
  ASSERT_FALSE(r.counterexamples.empty());
  EXPECT_TRUE(r.counterexamples[0].replayConfirmed) << r.str();
}

}  // namespace
}  // namespace pugpara::smt
