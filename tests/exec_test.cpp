// VM tests: compilation, concrete kernel execution on real grids, barrier
// scheduling, and the dynamic race / bank-conflict / coalescing monitors.
#include <gtest/gtest.h>

#include <numeric>

#include "exec/compiler.h"
#include "exec/machine.h"
#include "lang/parser.h"
#include "support/rng.h"

namespace pugpara::exec {
namespace {

struct Compiled {
  std::unique_ptr<lang::Program> prog;
  CompiledKernel kernel;
};

Compiled compileSrc(const char* src) {
  Compiled c;
  c.prog = lang::parseAndAnalyze(src);
  c.kernel = compile(*c.prog->kernels[0]);
  return c;
}

TEST(CompilerTest, DisassemblyIsNonEmptyAndLabelsResolve) {
  auto c = compileSrc(R"(
void k(int *a, int n) {
  for (int i = 0; i < n; i++) a[i] = i * 2;
}
)");
  std::string dis = c.kernel.disassemble();
  EXPECT_NE(dis.find("starr"), std::string::npos);
  for (const Instr& in : c.kernel.code)
    if (in.op == Op::Jump || in.op == Op::JumpIfZero)
      EXPECT_LE(in.a, c.kernel.code.size());
}

TEST(MachineTest, SimplePerThreadWrite) {
  auto c = compileSrc("void k(int *a) { a[tid.x] = tid.x + 1; }");
  LaunchParams p;
  p.block = {8, 1, 1};
  std::vector<Buffer> bufs = {Buffer("a", 8)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(bufs[0].load(i), i + 1);
}

TEST(MachineTest, ScalarParamsAndArithmetic) {
  auto c = compileSrc(
      "void k(int *a, int n, int m) { a[tid.x] = n * m + tid.x; }");
  LaunchParams p;
  p.block = {4, 1, 1};
  p.scalarArgs = {6, 7};
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(3), 45u);
}

TEST(MachineTest, WidthMaskingWrapsAround) {
  auto c = compileSrc("void k(int *a, int n) { a[0] = n + 1; }");
  LaunchParams p;
  p.width = 8;
  p.scalarArgs = {255};
  std::vector<Buffer> bufs = {Buffer("a", 1)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(0), 0u);  // 255 + 1 wraps at 8 bits
}

TEST(MachineTest, SignedVsUnsignedDivision) {
  auto c = compileSrc(R"(
void k(int *a, int x, unsigned int y) {
  a[0] = x / 2;        // signed: -6 / 2 = -3
  a[1] = y / 2;        // unsigned
  a[2] = x >> 1;       // arithmetic shift
  a[3] = y >> 1;       // logical shift
}
)");
  LaunchParams p;
  p.width = 8;
  p.scalarArgs = {0xFA /* -6 */, 0xFA /* 250 */};
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(0), 0xFDu);  // -3
  EXPECT_EQ(bufs[0].load(1), 125u);
  EXPECT_EQ(bufs[0].load(2), 0xFDu);  // -6 >> 1 arithmetic = -3
  EXPECT_EQ(bufs[0].load(3), 125u);
}

TEST(MachineTest, ShortCircuitSemantics) {
  // The second operand must not be evaluated when short-circuited;
  // otherwise the a[9] access below would trap out-of-bounds.
  auto c = compileSrc(R"(
void k(int *a, int n) {
  if (n > 0 && a[9] == 1) a[0] = 1; else a[0] = 2;
  if (n == 0 || a[9] == 1) a[1] = 3; else a[1] = 4;
}
)");
  LaunchParams p;
  p.scalarArgs = {0};
  std::vector<Buffer> bufs = {Buffer("a", 2)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(0), 2u);
  EXPECT_EQ(bufs[0].load(1), 3u);
}

TEST(MachineTest, TernaryMinMaxAbs) {
  auto c = compileSrc(R"(
void k(int *a, int x) {
  a[0] = x > 2 ? 10 : 20;
  a[1] = min(x, 2);
  a[2] = max(x, 2);
  a[3] = abs(0 - x);
}
)");
  LaunchParams p;
  p.scalarArgs = {5};
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(0), 10u);
  EXPECT_EQ(bufs[0].load(1), 2u);
  EXPECT_EQ(bufs[0].load(2), 5u);
  EXPECT_EQ(bufs[0].load(3), 5u);
}

TEST(MachineTest, EarlyReturnGuardsRestOfKernel) {
  auto c = compileSrc(R"(
void k(int *a, int n) {
  if (tid.x >= n) return;
  a[tid.x] = 7;
}
)");
  LaunchParams p;
  p.block = {8, 1, 1};
  p.scalarArgs = {3};
  std::vector<Buffer> bufs = {Buffer("a", 8)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  for (uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(bufs[0].load(i), i < 3 ? 7u : 0u);
}

TEST(MachineTest, MultiBlockGrid) {
  auto c = compileSrc(
      "void k(int *a) { a[bid.x * bdim.x + tid.x] = bid.x * 100 + tid.x; }");
  LaunchParams p;
  p.grid = {3, 1, 1};
  p.block = {4, 1, 1};
  std::vector<Buffer> bufs = {Buffer("a", 12)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(0), 0u);
  EXPECT_EQ(bufs[0].load(5), 101u);
  EXPECT_EQ(bufs[0].load(11), 203u);
}

// The paper's reduction kernel (modulo variant), run concretely.
TEST(MachineTest, ReductionKernelComputesBlockSums) {
  auto c = compileSrc(R"(
void reduceMod(int *g_odata, int *g_idata) {
  __shared__ int sdata[bdim.x];
  sdata[tid.x] = g_idata[bid.x * bdim.x + tid.x];
  __syncthreads();
  for (unsigned int k = 1; k < bdim.x; k *= 2) {
    if ((tid.x % (2 * k)) == 0)
      sdata[tid.x] += sdata[tid.x + k];
    __syncthreads();
  }
  if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
)");
  LaunchParams p;
  p.grid = {2, 1, 1};
  p.block = {8, 1, 1};
  Buffer in("g_idata", 16);
  for (uint64_t i = 0; i < 16; ++i) in.store(i, i + 1);
  std::vector<Buffer> bufs = {Buffer("g_odata", 2), in};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(0), 36u);   // 1+..+8
  EXPECT_EQ(bufs[0].load(1), 100u);  // 9+..+16
}

// The paper's optimized transpose, run concretely against the naive one.
TEST(MachineTest, TransposeKernelsAgreeConcretely) {
  auto naive = compileSrc(R"(
void naiveTranspose(int *odata, int *idata, int width, int height) {
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if (xIndex < width && yIndex < height) {
    int index_in = xIndex + width * yIndex;
    int index_out = yIndex + height * xIndex;
    odata[index_out] = idata[index_in];
  }
}
)");
  auto opt = compileSrc(R"(
void optimizedTranspose(int *odata, int *idata, int width, int height) {
  __shared__ int block[bdim.x][bdim.x + 1];
  int xIndex = bid.x * bdim.x + tid.x;
  int yIndex = bid.y * bdim.y + tid.y;
  if ((xIndex < width) && (yIndex < height)) {
    int index_in = yIndex * width + xIndex;
    block[tid.y][tid.x] = idata[index_in];
  }
  __syncthreads();
  xIndex = bid.y * bdim.y + tid.x;
  yIndex = bid.x * bdim.x + tid.y;
  if ((xIndex < height) && (yIndex < width)) {
    int index_out = yIndex * height + xIndex;
    odata[index_out] = block[tid.x][tid.y];
  }
}
)");
  const uint32_t W = 8, H = 8, B = 4;
  LaunchParams p;
  p.grid = {W / B, H / B, 1};
  p.block = {B, B, 1};
  p.scalarArgs = {W, H};

  SplitMix64 rng(42);
  Buffer in("idata", W * H);
  for (uint64_t i = 0; i < W * H; ++i) in.store(i, rng.below(1000));

  std::vector<Buffer> bufsNaive = {Buffer("odata", W * H), in};
  std::vector<Buffer> bufsOpt = {Buffer("odata", W * H), in};
  auto r1 = launch(naive.kernel, p, bufsNaive);
  auto r2 = launch(opt.kernel, p, bufsOpt);
  ASSERT_TRUE(r1.completed) << r1.error;
  ASSERT_TRUE(r2.completed) << r2.error;
  EXPECT_EQ(bufsNaive[0].raw(), bufsOpt[0].raw());
  // And it really is the transpose.
  for (uint64_t i = 0; i < W; ++i)
    for (uint64_t j = 0; j < H; ++j)
      EXPECT_EQ(bufsNaive[0].load(i * H + j), in.load(j * W + i));
}

TEST(MachineTest, AssertAndAssume) {
  auto c = compileSrc(R"(
void k(int *a, int n) {
  assume(n > 0);
  assert(n >= 2);
  a[0] = n;
}
)");
  LaunchParams p;
  p.scalarArgs = {1};
  std::vector<Buffer> bufs = {Buffer("a", 1)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.assertFailures.size(), 1u);

  // Failing assumption halts the thread before the assert.
  p.scalarArgs = {0};
  std::vector<Buffer> bufs2 = {Buffer("a", 1)};
  auto r2 = launch(c.kernel, p, bufs2);
  ASSERT_TRUE(r2.completed) << r2.error;
  EXPECT_TRUE(r2.assumptionViolated);
  EXPECT_TRUE(r2.assertFailures.empty());
}

TEST(MachineTest, OutOfBoundsIsAFatalError) {
  auto c = compileSrc("void k(int *a) { a[tid.x + 100] = 1; }");
  LaunchParams p;
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  auto r = launch(c.kernel, p, bufs);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("out-of-bounds"), std::string::npos);
}

TEST(MachineTest, InfiniteLoopExhaustsFuel) {
  auto c = compileSrc("void k(int *a) { while (1 == 1) a[0] = 1; }");
  LaunchParams p;
  p.fuelPerThread = 1000;
  std::vector<Buffer> bufs = {Buffer("a", 1)};
  auto r = launch(c.kernel, p, bufs);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("step budget"), std::string::npos);
}

TEST(MachineTest, StrictBarrierDivergenceDetected) {
  auto c = compileSrc(R"(
void k(int *a) {
  if (tid.x == 0) return;
  __syncthreads();
  a[tid.x] = 1;
}
)");
  LaunchParams p;
  p.block = {4, 1, 1};
  p.strictBarrier = true;
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  auto r = launch(c.kernel, p, bufs);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("divergence"), std::string::npos);
}

TEST(MonitorTest, WriteWriteRaceDetected) {
  auto c = compileSrc("void k(int *a) { a[0] = tid.x; }");
  LaunchParams p;
  p.block = {4, 1, 1};
  p.monitors.enabled = true;
  std::vector<Buffer> bufs = {Buffer("a", 1)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  ASSERT_FALSE(r.races.empty());
  EXPECT_TRUE(r.races[0].writeWrite);
}

TEST(MonitorTest, ReadWriteRaceDetected) {
  auto c = compileSrc(R"(
void k(int *a) {
  __shared__ int s[bdim.x];
  s[tid.x] = a[tid.x];
  s[tid.x] = s[(tid.x + 1) % bdim.x];  // reads a neighbour's slot: race
  a[tid.x] = s[tid.x];
}
)");
  LaunchParams p;
  p.block = {4, 1, 1};
  p.monitors.enabled = true;
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_FALSE(r.races.empty());
}

TEST(MonitorTest, BarrierSeparatedAccessesDoNotRace) {
  auto c = compileSrc(R"(
void k(int *a) {
  __shared__ int s[bdim.x];
  s[tid.x] = a[tid.x];
  __syncthreads();
  a[tid.x] = s[(tid.x + 1) % bdim.x];  // fine: after the barrier
}
)");
  LaunchParams p;
  p.block = {4, 1, 1};
  p.monitors.enabled = true;
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  for (uint64_t i = 0; i < 4; ++i) bufs[0].store(i, i * 10);
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_TRUE(r.races.empty());
  EXPECT_EQ(bufs[0].load(0), 10u);
  EXPECT_EQ(bufs[0].load(3), 0u);
}

TEST(MonitorTest, BankConflictsInNaiveSharedColumnAccess) {
  // Column-major access with a 16-wide tile: every thread of a half-warp
  // hits the same bank. The padded (+1) variant avoids this — the exact
  // optimization the paper's transpose example performs.
  auto conflicted = compileSrc(R"(
void k(int *a) {
  __shared__ int t[16][16];
  t[tid.x][tid.y] = tid.x;
  a[tid.x * 16 + tid.y] = t[tid.x][tid.y];
}
)");
  auto padded = compileSrc(R"(
void k(int *a) {
  __shared__ int t[16][17];
  t[tid.x][tid.y] = tid.x;
  a[tid.x * 16 + tid.y] = t[tid.x][tid.y];
}
)");
  LaunchParams p;
  p.block = {16, 16, 1};
  p.monitors.enabled = true;
  std::vector<Buffer> b1 = {Buffer("a", 256)};
  std::vector<Buffer> b2 = {Buffer("a", 256)};
  auto r1 = launch(conflicted.kernel, p, b1);
  auto r2 = launch(padded.kernel, p, b2);
  ASSERT_TRUE(r1.completed) << r1.error;
  ASSERT_TRUE(r2.completed) << r2.error;
  EXPECT_FALSE(r1.bankConflicts.empty());
  EXPECT_TRUE(r2.bankConflicts.empty());
}

TEST(MonitorTest, NonCoalescedGlobalAccessDetected) {
  // Strided global writes (the naive transpose pattern) are flagged;
  // unit-stride writes are not.
  auto strided = compileSrc("void k(int *a) { a[tid.x * 16] = tid.x; }");
  auto unit = compileSrc("void k(int *a) { a[tid.x] = tid.x; }");
  LaunchParams p;
  p.block = {16, 1, 1};
  p.monitors.enabled = true;
  std::vector<Buffer> b1 = {Buffer("a", 256)};
  std::vector<Buffer> b2 = {Buffer("a", 16)};
  auto r1 = launch(strided.kernel, p, b1);
  auto r2 = launch(unit.kernel, p, b2);
  ASSERT_TRUE(r1.completed) << r1.error;
  ASSERT_TRUE(r2.completed) << r2.error;
  EXPECT_FALSE(r1.uncoalesced.empty());
  EXPECT_TRUE(r2.uncoalesced.empty());
}

TEST(MachineTest, TwoDimensionalBlocks) {
  auto c = compileSrc(
      "void k(int *a) { a[tid.y * bdim.x + tid.x] = tid.y * 10 + tid.x; }");
  LaunchParams p;
  p.block = {3, 2, 1};
  std::vector<Buffer> bufs = {Buffer("a", 6)};
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(bufs[0].load(5), 12u);
}

TEST(MachineTest, CompoundArrayAssignments) {
  auto c = compileSrc(R"(
void k(int *a) {
  a[tid.x] += 5;
  a[tid.x] *= 2;
  a[tid.x] ^= 1;
}
)");
  LaunchParams p;
  p.block = {4, 1, 1};
  std::vector<Buffer> bufs = {Buffer("a", 4)};
  for (uint64_t i = 0; i < 4; ++i) bufs[0].store(i, i);
  auto r = launch(c.kernel, p, bufs);
  ASSERT_TRUE(r.completed) << r.error;
  for (uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(bufs[0].load(i), ((i + 5) * 2) ^ 1);
}

}  // namespace
}  // namespace pugpara::exec
