// Tests of the concurrent verification engine, the batch CheckRequest API,
// the solver-query cache and the portfolio solver. These are the tests the
// ThreadSanitizer preset runs (scripts/tier1.sh) — keep every fixture name
// matched by the Engine*/Portfolio*/QueryCache*/StructuralHash* filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "check/session.h"
#include "engine/engine.h"
#include "engine/portfolio_solver.h"
#include "expr/context.h"
#include "expr/hash.h"
#include "kernels/corpus.h"
#include "smt/query_cache.h"

namespace pugpara {
namespace {

using check::CheckKind;
using check::CheckOptions;
using check::CheckRequest;
using check::CheckResult;
using check::Outcome;
using check::VerificationSession;
using engine::EngineOptions;
using engine::VerificationEngine;
using expr::Context;
using expr::Expr;
using expr::Sort;
using kernels::combinedSource;

CheckOptions fastOpts(uint32_t width = 8) {
  CheckOptions o;
  o.method = check::Method::Parameterized;
  o.width = width;
  o.solverTimeoutMs = 120000;
  return o;
}

/// The shared small batch: cheap, mixed outcomes (verified + bug-found).
std::vector<CheckRequest> smallBatch() {
  std::vector<CheckRequest> reqs;
  for (const char* k : {"vecAdd", "racyHistogram"}) {
    for (CheckKind kind :
         {CheckKind::Races, CheckKind::Asserts, CheckKind::Postconditions}) {
      CheckRequest r;
      r.kind = kind;
      r.kernel = k;
      r.options = fastOpts();
      reqs.push_back(std::move(r));
    }
  }
  return reqs;
}

std::vector<Outcome> outcomes(const std::vector<CheckResult>& rs) {
  std::vector<Outcome> out;
  for (const auto& r : rs) out.push_back(r.report.outcome);
  return out;
}

// ---- StructuralHash --------------------------------------------------------

TEST(StructuralHashTest, StableAcrossContexts) {
  auto build = [](Context& ctx) {
    Expr x = ctx.var("x", Sort::bv(16));
    Expr y = ctx.var("y", Sort::bv(16));
    return ctx.mkUlt(ctx.mkAdd(ctx.mkMul(x, y), ctx.bvVal(7, 16)), y);
  };
  Context a, b;
  EXPECT_EQ(expr::structuralHash(build(a)), expr::structuralHash(build(b)));
}

TEST(StructuralHashTest, DistinguishesStructure) {
  Context ctx;
  Expr x = ctx.var("x", Sort::bv(16));
  Expr y = ctx.var("y", Sort::bv(16));
  const uint64_t add = expr::structuralHash(ctx.mkAdd(x, y));
  EXPECT_NE(add, expr::structuralHash(ctx.mkSub(x, y)));
  EXPECT_NE(add, expr::structuralHash(ctx.mkAdd(x, x)));
  // Different variable names are different queries.
  EXPECT_NE(expr::structuralHash(x), expr::structuralHash(y));
  // Same name at a different width is a different query (built in a second
  // Context; reusing a name at a different sort within one is a PugError).
  Context wide;
  EXPECT_NE(expr::structuralHash(x),
            expr::structuralHash(wide.var("x", Sort::bv(32))));
  // Seeds act as independent hash functions.
  EXPECT_NE(expr::structuralHash(x, 1), expr::structuralHash(x, 2));
}

TEST(StructuralHashTest, AssertionSetIsOrderInsensitive) {
  Context ctx;
  Expr a = ctx.mkUlt(ctx.var("x", Sort::bv(8)), ctx.bvVal(3, 8));
  Expr b = ctx.mkUlt(ctx.var("y", Sort::bv(8)), ctx.bvVal(5, 8));
  const std::vector<Expr> ab = {a, b}, ba = {b, a};
  EXPECT_EQ(expr::structuralHash(ab), expr::structuralHash(ba));
  const std::vector<Expr> aa = {a, a};
  EXPECT_NE(expr::structuralHash(ab), expr::structuralHash(aa));
}

// ---- QueryCache ------------------------------------------------------------

TEST(QueryCacheTest, HitOnIdenticalRepeatedQuery) {
  smt::QueryCache cache;
  // Same query built in two different contexts, unsat both times.
  for (int round = 0; round < 2; ++round) {
    Context ctx;
    auto solver = smt::makeCachingSolver(smt::makeZ3Solver(), cache);
    Expr x = ctx.var("x", Sort::bv(8));
    solver->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
    solver->add(ctx.mkUlt(ctx.bvVal(20, 8), x));
    EXPECT_EQ(solver->check(), smt::CheckResult::Unsat);
  }
  const smt::QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(QueryCacheTest, UnknownIsNeverCached) {
  smt::QueryCache cache;
  Context ctx;
  // MiniSMT answers Unknown on quantified formulas; that must not stick.
  Expr t = ctx.var("t", Sort::bv(8));
  Expr a = ctx.var("a", Sort::bv(8));
  std::vector<Expr> bound = {t};
  Expr q = ctx.mkForall(bound, ctx.mkUlt(t, a));
  auto mini = smt::makeCachingSolver(smt::makeMiniSolver(), cache);
  mini->add(q);
  EXPECT_EQ(mini->check(), smt::CheckResult::Unknown);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(QueryCacheTest, SatStillProducesAModel) {
  smt::QueryCache cache;
  for (int round = 0; round < 2; ++round) {
    Context ctx;
    auto solver = smt::makeCachingSolver(smt::makeZ3Solver(), cache);
    Expr x = ctx.var("x", Sort::bv(8));
    Expr c = ctx.mkEq(ctx.mkAdd(x, ctx.bvVal(1, 8)), ctx.bvVal(5, 8));
    solver->add(c);
    ASSERT_EQ(solver->check(), smt::CheckResult::Sat);
    // Even on the cache-hit round the model must be real and satisfying.
    auto m = solver->model();
    EXPECT_EQ(m->evalBv(x), 4u);
  }
  EXPECT_GE(cache.stats().hits, 1u);
}

TEST(QueryCacheTest, SaveAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "pugpara_qcache_test.txt";
  smt::QueryCache cache;
  {
    Context ctx;
    auto solver = smt::makeCachingSolver(smt::makeZ3Solver(), cache);
    Expr x = ctx.var("x", Sort::bv(8));
    solver->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
    solver->add(ctx.mkUlt(ctx.bvVal(20, 8), x));
    EXPECT_EQ(solver->check(), smt::CheckResult::Unsat);
  }
  ASSERT_TRUE(cache.save(path));

  smt::QueryCache fresh;
  ASSERT_TRUE(fresh.load(path));
  EXPECT_EQ(fresh.size(), cache.size());
  {
    // The reloaded cache short-circuits the same query: no backend needed.
    Context ctx;
    auto solver = smt::makeCachingSolver(smt::makeZ3Solver(), fresh);
    Expr x = ctx.var("x", Sort::bv(8));
    solver->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
    solver->add(ctx.mkUlt(ctx.bvVal(20, 8), x));
    EXPECT_EQ(solver->check(), smt::CheckResult::Unsat);
  }
  EXPECT_EQ(fresh.stats().hits, 1u);
  std::remove(path.c_str());
}

TEST(QueryCacheTest, LruEvictionAtCapacity) {
  smt::QueryCache cache(/*capacity=*/3);
  cache.insert({1, 1}, smt::CheckResult::Unsat);
  cache.insert({2, 2}, smt::CheckResult::Unsat);
  cache.insert({3, 3}, smt::CheckResult::Unsat);
  cache.insert({4, 4}, smt::CheckResult::Unsat);  // evicts {1,1}
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.lookup({1, 1}).has_value());
  EXPECT_TRUE(cache.lookup({4, 4}).has_value());
}

TEST(QueryCacheTest, LookupRefreshesRecency) {
  smt::QueryCache cache(/*capacity=*/2);
  cache.insert({1, 1}, smt::CheckResult::Unsat);
  cache.insert({2, 2}, smt::CheckResult::Sat);
  EXPECT_TRUE(cache.lookup({1, 1}).has_value());  // {2,2} is now coldest
  cache.insert({3, 3}, smt::CheckResult::Unsat);
  EXPECT_TRUE(cache.lookup({1, 1}).has_value());
  EXPECT_FALSE(cache.lookup({2, 2}).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(QueryCacheTest, SetCapacityShrinkEvictsColdestFirst) {
  smt::QueryCache cache;  // unbounded
  for (uint64_t i = 1; i <= 4; ++i)
    cache.insert({i, i}, smt::CheckResult::Unsat);
  EXPECT_TRUE(cache.lookup({1, 1}).has_value());  // refresh the oldest
  cache.setCapacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_TRUE(cache.lookup({1, 1}).has_value());
  EXPECT_TRUE(cache.lookup({4, 4}).has_value());
  EXPECT_FALSE(cache.lookup({2, 2}).has_value());
  EXPECT_FALSE(cache.lookup({3, 3}).has_value());
}

TEST(QueryCacheTest, SinkFiresOncePerNewEntryOnly) {
  smt::QueryCache cache;
  std::vector<std::pair<smt::QueryKey, smt::CheckResult>> seen;
  cache.setSink([&](const smt::QueryKey& k, smt::CheckResult r) {
    seen.emplace_back(k, r);
  });
  cache.insert({1, 1}, smt::CheckResult::Unsat);
  cache.insert({1, 1}, smt::CheckResult::Unsat);  // refresh: no re-notify
  cache.insert({2, 2}, smt::CheckResult::Unknown);  // dropped: no notify
  cache.prime({3, 3}, smt::CheckResult::Sat);       // replay: no notify
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, (smt::QueryKey{1, 1}));
  EXPECT_EQ(seen[0].second, smt::CheckResult::Unsat);
  cache.setSink(nullptr);
  cache.insert({4, 4}, smt::CheckResult::Sat);
  EXPECT_EQ(seen.size(), 1u);
}

// ---- Engine ----------------------------------------------------------------

TEST(EngineTest, BatchResultsDeterministicAcrossJobCounts) {
  VerificationSession s(combinedSource({"vecAdd", "racyHistogram"}, 8));
  const std::vector<CheckRequest> reqs = smallBatch();

  std::vector<Outcome> baseline;
  for (unsigned jobs : {1u, 2u, 8u}) {
    EngineOptions eo;
    eo.jobs = jobs;
    VerificationEngine eng(eo);
    const std::vector<CheckResult> rs = eng.runAll(s, reqs);
    ASSERT_EQ(rs.size(), reqs.size());
    // Results arrive in request order with the request's identity echoed.
    for (size_t i = 0; i < rs.size(); ++i) {
      EXPECT_EQ(rs[i].kind, reqs[i].kind);
      EXPECT_EQ(rs[i].kernel, reqs[i].kernel);
    }
    if (jobs == 1) {
      baseline = outcomes(rs);
      // Sanity: the batch has real content, not six Unsupported.
      EXPECT_EQ(rs[3].report.outcome, Outcome::BugFound) << rs[3].label();
      EXPECT_EQ(rs[0].report.outcome, Outcome::Verified) << rs[0].label();
    } else {
      EXPECT_EQ(outcomes(rs), baseline) << "jobs=" << jobs;
    }
  }
}

TEST(EngineTest, SharedCacheHitsAcrossIdenticalChecks) {
  VerificationSession s(combinedSource({"vecAdd"}, 8));
  CheckRequest r;
  r.kind = CheckKind::Races;
  r.kernel = "vecAdd";
  r.options = fastOpts();
  const std::vector<CheckRequest> reqs = {r, r};  // identical twice

  VerificationEngine eng;
  const std::vector<CheckResult> rs = eng.runAll(s, reqs);
  EXPECT_EQ(rs[0].report.outcome, Outcome::Verified) << rs[0].report.str();
  EXPECT_EQ(rs[1].report.outcome, rs[0].report.outcome);
  EXPECT_GE(eng.cache().stats().hits, 1u) << "second run must hit the cache";
}

TEST(EngineTest, PerCheckDeadlineSurfacesUnknownWithoutPoisoningSiblings) {
  VerificationSession s(combinedSource({"vecAdd", "racyHistogram"}, 8));

  CheckRequest hard;  // real check, absurd deadline: must come back Unknown
  hard.kind = CheckKind::Races;
  hard.kernel = "racyHistogram";
  hard.options = fastOpts();
  hard.deadlineMs = 1;

  CheckRequest easy;  // no deadline: must be unaffected by the sibling
  easy.kind = CheckKind::Races;
  easy.kernel = "vecAdd";
  easy.options = fastOpts();

  EngineOptions eo;
  eo.jobs = 2;
  VerificationEngine eng(eo);
  const std::vector<CheckRequest> reqs = {hard, easy};
  const std::vector<CheckResult> rs = eng.runAll(s, reqs);
  EXPECT_EQ(rs[0].report.outcome, Outcome::Unknown) << rs[0].report.str();
  EXPECT_EQ(rs[1].report.outcome, Outcome::Verified) << rs[1].report.str();
}

TEST(EngineTest, UnknownKernelDoesNotPoisonBatch) {
  VerificationSession s(combinedSource({"vecAdd"}, 8));
  CheckRequest bad;
  bad.kind = CheckKind::Races;
  bad.kernel = "noSuchKernel";
  bad.options = fastOpts();
  CheckRequest good;
  good.kind = CheckKind::Races;
  good.kernel = "vecAdd";
  good.options = fastOpts();

  VerificationEngine eng;
  const std::vector<CheckRequest> reqs = {bad, good};
  const std::vector<CheckResult> rs = eng.runAll(s, reqs);
  EXPECT_EQ(rs[0].report.outcome, Outcome::Unsupported);
  EXPECT_EQ(rs[1].report.outcome, Outcome::Verified) << rs[1].report.str();
}

TEST(EngineTest, CancelAllDrainsBatchAsUnknown) {
  VerificationSession s(combinedSource({"vecAdd", "racyHistogram"}, 8));
  VerificationEngine eng;
  eng.cancelAll();  // cancelled before the batch: every check drains fast
  const std::vector<CheckRequest> reqs = smallBatch();
  const std::vector<CheckResult> rs = eng.runAll(s, reqs);
  for (const auto& r : rs)
    EXPECT_NE(r.report.outcome, Outcome::BugFound) << r.label();
}

TEST(EngineTest, SessionRunMatchesDeprecatedWrappers) {
  VerificationSession s(combinedSource({"racyHistogram"}, 8));
  CheckRequest r;
  r.kind = CheckKind::Races;
  r.kernel = "racyHistogram";
  r.options = fastOpts();
  const CheckResult viaRun = s.run(r);
  const check::Report viaWrapper = s.races("racyHistogram", fastOpts());
  EXPECT_EQ(viaRun.report.outcome, viaWrapper.outcome);
  EXPECT_EQ(viaRun.report.detail, viaWrapper.detail);
  EXPECT_EQ(viaRun.label(), "races(racyHistogram)");
}

TEST(EngineTest, ResultJsonIsWellFormed) {
  VerificationSession s(combinedSource({"racyHistogram"}, 8));
  CheckRequest r;
  r.kind = CheckKind::Races;
  r.kernel = "racyHistogram";
  r.options = fastOpts();
  const std::string j = s.run(r).json();
  // Structural spot-checks (no JSON parser in-tree by design).
  EXPECT_NE(j.find("\"kind\":\"races\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"outcome\":\"bug-found\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"counterexamples\":["), std::string::npos) << j;
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'))
      << j;
}

// ---- Portfolio -------------------------------------------------------------

TEST(PortfolioTest, AgreesWithEachBackendOnGroundTruth) {
  // The smt_test fixtures, re-posed to the portfolio: the answer must match
  // both backends wherever they are definitive.
  Context ctx;
  Expr x = ctx.var("x", Sort::bv(8));

  auto sat = engine::makePortfolioSolver();
  sat->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
  EXPECT_EQ(sat->check(), smt::CheckResult::Sat);
  auto m = sat->model();
  EXPECT_LT(m->evalBv(x), 10u);

  auto unsat = engine::makePortfolioSolver();
  unsat->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
  unsat->add(ctx.mkUlt(ctx.bvVal(20, 8), x));
  EXPECT_EQ(unsat->check(), smt::CheckResult::Unsat);
}

TEST(PortfolioTest, ArrayTheoryUnsat) {
  Context ctx;
  Sort arr = Sort::array(16, 16);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", Sort::bv(16));
  Expr j = ctx.var("j", Sort::bv(16));
  auto s = engine::makePortfolioSolver();
  Expr st = ctx.mkStore(a, i, ctx.bvVal(5, 16));
  s->add(ctx.mkEq(i, j));
  s->add(ctx.mkNe(ctx.mkSelect(st, j), ctx.bvVal(5, 16)));
  EXPECT_EQ(s->check(), smt::CheckResult::Unsat);
}

TEST(PortfolioTest, QuantifiedFormulaFallsThroughToZ3) {
  // MiniSMT answers Unknown on quantifiers; the portfolio must wait for
  // Z3's definitive answer instead of reporting the loser's Unknown.
  Context ctx;
  Expr t = ctx.var("t", Sort::bv(8));
  Expr a = ctx.var("a", Sort::bv(8));
  Expr f = ctx.mkMul(ctx.bvVal(2, 8), t);
  Expr c = ctx.mkUlt(t, ctx.bvVal(4, 8));
  std::vector<Expr> bound = {t};
  Expr noWriter =
      ctx.mkForall(bound, ctx.mkNot(ctx.mkAnd(ctx.mkEq(a, f), c)));
  auto s = engine::makePortfolioSolver();
  s->add(ctx.mkEq(a, ctx.bvVal(1, 8)));
  s->add(ctx.mkNot(noWriter));
  EXPECT_EQ(s->check(), smt::CheckResult::Unsat);
}

TEST(PortfolioTest, PushPopAndReuse) {
  Context ctx;
  Expr x = ctx.var("x", Sort::bv(8));
  auto s = engine::makePortfolioSolver();
  s->add(ctx.mkEq(x, ctx.bvVal(3, 8)));
  s->push();
  s->add(ctx.mkEq(x, ctx.bvVal(4, 8)));
  EXPECT_EQ(s->check(), smt::CheckResult::Unsat);
  s->pop();
  EXPECT_EQ(s->check(), smt::CheckResult::Sat);
}

TEST(PortfolioTest, EnginePortfolioModeAgreesWithSingleBackends) {
  VerificationSession s(combinedSource({"vecAdd", "racyHistogram"}, 8));
  std::vector<CheckRequest> reqs;
  for (const char* k : {"vecAdd", "racyHistogram"}) {
    CheckRequest r;
    r.kind = CheckKind::Races;
    r.kernel = k;
    r.options = fastOpts();
    reqs.push_back(std::move(r));
  }

  EngineOptions plain;
  VerificationEngine engPlain(plain);
  const std::vector<Outcome> base = outcomes(engPlain.runAll(s, reqs));

  EngineOptions port;
  port.portfolio = true;
  port.jobs = 2;
  VerificationEngine engPort(port);
  EXPECT_EQ(outcomes(engPort.runAll(s, reqs)), base);
}

}  // namespace
}  // namespace pugpara
