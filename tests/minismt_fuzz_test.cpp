// Fuzz suite for the MiniSMT raw-speed techniques. Every technique (LBD
// clause management, chronological backtracking, inprocessing, word-level
// rewriting, seed portfolio) is toggled independently and the solver is
// cross-checked against ground truth: exhaustive enumeration for random
// CNF at the SAT core, Z3 for random bit-vector formulas at the Solver
// interface. Incremental interleavings of addClause and
// solve(assumptions) specifically target the inprocessing/incrementality
// interaction — variable elimination must never lose a clause that a
// later assumption still needs (the restore-on-mention path).
#include <gtest/gtest.h>

#include <vector>

#include "expr/context.h"
#include "expr/eval.h"
#include "smt/mini/sat_solver.h"
#include "smt/solver.h"
#include "support/rng.h"

namespace pugpara::smt {
namespace {

using expr::Context;
using expr::Expr;
using expr::Sort;
using mini::Lit;
using mini::SatConfig;
using mini::SatResult;
using mini::SatSolver;
using mini::Var;

// ---- Ground truth for CNF: exhaustive enumeration ---------------------------------

bool clauseSat(const std::vector<Lit>& clause, uint64_t assignment) {
  for (Lit l : clause) {
    const bool v = (assignment >> l.var()) & 1;
    if (v != l.negated()) return true;
  }
  return false;
}

/// Is there an assignment satisfying all clauses and all assumption
/// literals? nVars <= 20.
bool bruteForceSat(uint32_t nVars, const std::vector<std::vector<Lit>>& cnf,
                   const std::vector<Lit>& assumptions = {}) {
  for (uint64_t a = 0; a < (uint64_t{1} << nVars); ++a) {
    bool ok = true;
    for (Lit l : assumptions)
      if (((a >> l.var()) & 1) == l.negated()) {
        ok = false;
        break;
      }
    for (size_t i = 0; ok && i < cnf.size(); ++i)
      if (!clauseSat(cnf[i], a)) ok = false;
    if (ok) return true;
  }
  return false;
}

std::vector<Lit> randomClause(SplitMix64& rng, uint32_t nVars) {
  const size_t len = 1 + rng.below(3);
  std::vector<Lit> c;
  for (size_t i = 0; i < len; ++i)
    c.emplace_back(static_cast<Var>(rng.below(nVars)), rng.below(2) == 0);
  return c;
}

/// The toggle matrix: every technique off in turn, plus diversified
/// configurations that stress the heap/phase/restart machinery.
std::vector<SatConfig> configMatrix() {
  std::vector<SatConfig> out;
  SatConfig base;
  out.push_back(base);  // everything on
  SatConfig noLbd = base;
  noLbd.lbdReduce = false;
  out.push_back(noLbd);
  SatConfig noChrono = base;
  noChrono.chrono = false;
  out.push_back(noChrono);
  SatConfig noInproc = base;
  noInproc.inprocess = false;
  out.push_back(noInproc);
  SatConfig allOff = base;
  allOff.lbdReduce = allOff.chrono = allOff.inprocess = false;
  out.push_back(allOff);
  SatConfig diverse = base;
  diverse.initialPhase = true;
  diverse.randomFreq = 0.05;
  diverse.restartBase = 16;
  diverse.chronoDistance = 4;
  diverse.seed = 99;
  out.push_back(diverse);
  return out;
}

class SatFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatFuzz, RandomCnfMatchesBruteForceUnderEveryConfig) {
  SplitMix64 rng(GetParam() * 0x9e3779b9 + 1);
  const uint32_t nVars = 6 + static_cast<uint32_t>(rng.below(7));
  const size_t nClauses = nVars * 3 + rng.below(nVars * 2);
  std::vector<std::vector<Lit>> cnf;
  for (size_t i = 0; i < nClauses; ++i)
    cnf.push_back(randomClause(rng, nVars));
  const bool expect = bruteForceSat(nVars, cnf);

  for (const SatConfig& cfg : configMatrix()) {
    SatSolver s(cfg);
    for (uint32_t v = 0; v < nVars; ++v) s.newVar();
    bool rootOk = true;
    for (const auto& c : cnf) rootOk = s.addClause(c) && rootOk;
    const SatResult r = rootOk ? s.solve() : SatResult::Unsat;
    ASSERT_EQ(r, expect ? SatResult::Sat : SatResult::Unsat)
        << "seed " << GetParam() << " nVars " << nVars;
    if (r == SatResult::Sat) {
      uint64_t a = 0;
      for (uint32_t v = 0; v < nVars; ++v)
        if (s.modelValue(v)) a |= uint64_t{1} << v;
      for (const auto& c : cnf)
        ASSERT_TRUE(clauseSat(c, a)) << "model violates clause, seed "
                                     << GetParam();
    }
  }
}

TEST_P(SatFuzz, IncrementalInterleavingsKeepAssumptionClauses) {
  // Alternate clause batches with assumption solves. Inprocessing runs
  // between solves and may eliminate variables that only later become
  // assumptions or reappear in new clauses — both must be restored, and
  // no verdict may ever differ from ground truth on the full clause set.
  SplitMix64 rng(GetParam() * 0x51ed2701 + 7);
  const uint32_t nVars = 6 + static_cast<uint32_t>(rng.below(5));
  for (const SatConfig& cfg : configMatrix()) {
    SatSolver s(cfg);
    for (uint32_t v = 0; v < nVars; ++v) s.newVar();
    std::vector<std::vector<Lit>> cnf;
    bool rootOk = true;
    for (int round = 0; round < 6; ++round) {
      const size_t batch = 1 + rng.below(4);
      for (size_t i = 0; i < batch; ++i) {
        cnf.push_back(randomClause(rng, nVars));
        rootOk = s.addClause(cnf.back()) && rootOk;
      }
      std::vector<Lit> assume;
      const size_t nAssume = rng.below(3);
      for (size_t i = 0; i < nAssume; ++i)
        assume.emplace_back(static_cast<Var>(rng.below(nVars)),
                            rng.below(2) == 0);
      const bool expect = bruteForceSat(nVars, cnf, assume);
      const SatResult r = rootOk ? s.solve(assume) : SatResult::Unsat;
      ASSERT_EQ(r, expect ? SatResult::Sat : SatResult::Unsat)
          << "seed " << GetParam() << " round " << round;
      if (r == SatResult::Sat) {
        uint64_t a = 0;
        for (uint32_t v = 0; v < nVars; ++v)
          if (s.modelValue(v)) a |= uint64_t{1} << v;
        for (Lit l : assume)
          ASSERT_TRUE(clauseSat({l}, a)) << "assumption violated";
        for (const auto& c : cnf)
          ASSERT_TRUE(clauseSat(c, a)) << "clause violated after round "
                                       << round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatFuzz, ::testing::Range<uint64_t>(0, 25));

// ---- Variable elimination: restore and freeze ------------------------------------

TEST(SatInprocessTest, EliminatedVariableIsRestoredForAssumptions) {
  // v occurs in exactly (v ∨ a) and (¬v ∨ b): a textbook no-growth
  // elimination candidate (single resolvent a ∨ b). After the first solve
  // eliminates it, assuming ¬a forces v and b through the ORIGINAL
  // clauses — the solver must restore them, not answer from the resolvent
  // alone.
  SatSolver s;
  const Var v = s.newVar(), a = s.newVar(), b = s.newVar();
  s.addClause({Lit(v, false), Lit(a, false)});
  s.addClause({Lit(v, true), Lit(b, false)});
  ASSERT_EQ(s.solve(), SatResult::Sat);

  std::vector<Lit> assume = {Lit(a, true)};
  ASSERT_EQ(s.solve(assume), SatResult::Sat);
  EXPECT_FALSE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(v));  // (v ∨ a) with ¬a
  EXPECT_TRUE(s.modelValue(b));  // (¬v ∨ b) with v

  assume = {Lit(a, true), Lit(b, true)};
  EXPECT_EQ(s.solve(assume), SatResult::Unsat);
}

TEST(SatInprocessTest, FrozenVariableIsNeverEliminated) {
  SatSolver s;
  const Var v = s.newVar(), a = s.newVar(), b = s.newVar();
  s.setFrozen(v);
  s.addClause({Lit(v, false), Lit(a, false)});
  s.addClause({Lit(v, true), Lit(b, false)});
  ASSERT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.isFrozen(v));
  EXPECT_FALSE(s.isEliminated(v));
}

TEST(SatInprocessTest, ModelCoversEliminatedVariables) {
  // A chain x0 -> x1 -> ... -> x7 where the interior variables are prime
  // elimination candidates. After solving, EVERY variable must have a
  // model value consistent with the original chain.
  SatSolver s;
  const int n = 8;
  std::vector<Var> x;
  for (int i = 0; i < n; ++i) x.push_back(s.newVar());
  for (int i = 0; i + 1 < n; ++i)
    s.addClause({Lit(x[i], true), Lit(x[i + 1], false)});  // x_i -> x_{i+1}
  s.addClause({Lit(x[0], false)});                         // x0
  ASSERT_EQ(s.solve(), SatResult::Sat);
  for (int i = 0; i < n; ++i)
    EXPECT_TRUE(s.modelValue(x[i])) << "x" << i;
}

// ---- Bit-vector fuzz: every MiniTuning variant against Z3 ------------------------

struct TuningCase {
  const char* name;
  MiniTuning tuning;
};

std::vector<TuningCase> tuningMatrix() {
  MiniTuning on;  // defaults: everything on, portfolio off
  MiniTuning noLbd = on;
  noLbd.lbd = false;
  MiniTuning noChrono = on;
  noChrono.chrono = false;
  MiniTuning noInproc = on;
  noInproc.inprocess = false;
  MiniTuning noRewrite = on;
  noRewrite.rewrite = false;
  MiniTuning allOff = on;
  allOff.lbd = allOff.chrono = allOff.inprocess = allOff.rewrite = false;
  MiniTuning portfolio = on;
  portfolio.portfolio = 3;
  portfolio.seed = 42;
  return {{"on", on},           {"noLbd", noLbd},
          {"noChrono", noChrono}, {"noInproc", noInproc},
          {"noRewrite", noRewrite}, {"allOff", allOff},
          {"portfolio", portfolio}};
}

class BvFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BvFuzz, RandomFormulasAgreeWithZ3UnderEveryTuning) {
  SplitMix64 rng(GetParam() * 2654435761 + 3);
  Context ctx;
  const uint32_t width = 4 + static_cast<uint32_t>(rng.below(10));
  Sort bv = Sort::bv(width);
  std::vector<Expr> pool = {ctx.var("x", bv), ctx.var("y", bv),
                            ctx.var("z", bv), ctx.bvVal(rng.next(), width),
                            ctx.bvVal(rng.below(8), width),
                            ctx.bvVal(1, width)};
  using K = expr::Kind;
  const K ops[] = {K::BvAdd, K::BvSub,  K::BvMul,  K::BvAnd, K::BvOr,
                   K::BvXor, K::BvShl,  K::BvLShr, K::BvAShr, K::BvUDiv,
                   K::BvURem};
  for (int i = 0; i < 12; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    pool.push_back(ctx.mkBvBin(ops[rng.below(std::size(ops))], a, b));
  }
  std::vector<Expr> constraints;
  for (int i = 0; i < 3; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: constraints.push_back(ctx.mkEq(a, b)); break;
      case 1: constraints.push_back(ctx.mkUlt(a, b)); break;
      case 2: constraints.push_back(ctx.mkSlt(a, b)); break;
      default: constraints.push_back(ctx.mkNe(a, b)); break;
    }
  }

  auto z3 = makeZ3Solver();
  for (Expr c : constraints) z3->add(c);
  const CheckResult rz = z3->check();

  for (const TuningCase& tc : tuningMatrix()) {
    auto mini = makeMiniSolver(tc.tuning);
    mini->setTimeoutMs(30000);
    for (Expr c : constraints) mini->add(c);
    const CheckResult rm = mini->check();
    ASSERT_NE(rm, CheckResult::Unknown)
        << tc.name << " seed " << GetParam();
    EXPECT_EQ(rz, rm) << tc.name << " seed " << GetParam() << " width "
                      << width;
    if (rm == CheckResult::Sat) {
      auto m = mini->model();
      expr::Env env;
      for (const char* name : {"x", "y", "z"}) {
        Expr v = ctx.var(name, bv);
        env.bindBv(v, m->evalBv(v));
      }
      for (Expr c : constraints)
        EXPECT_TRUE(expr::evalBool(c, env))
            << tc.name << " model violates constraint, seed " << GetParam();
    }
  }
}

TEST_P(BvFuzz, IncrementalCheckAssumingAgreesWithZ3) {
  // Shared prefix + per-query assumptions, the engine's hot path. The
  // rewriter runs on assumptions too, and inprocessing runs between the
  // checkAssuming calls on the mini side.
  SplitMix64 rng(GetParam() * 0xdeadbeef + 11);
  Context ctx;
  const uint32_t width = 4 + static_cast<uint32_t>(rng.below(6));
  Sort bv = Sort::bv(width);
  Expr x = ctx.var("x", bv), y = ctx.var("y", bv), z = ctx.var("z", bv);
  std::vector<Expr> pool = {x, y, z, ctx.bvVal(rng.next(), width)};
  using K = expr::Kind;
  const K ops[] = {K::BvAdd, K::BvSub, K::BvMul, K::BvXor, K::BvShl};
  for (int i = 0; i < 6; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    pool.push_back(ctx.mkBvBin(ops[rng.below(std::size(ops))], a, b));
  }
  Expr prefix = ctx.mkUlt(pool[rng.below(pool.size())],
                          pool[rng.below(pool.size())]);

  for (const TuningCase& tc : tuningMatrix()) {
    auto z3 = makeZ3Solver();
    auto mini = makeMiniSolver(tc.tuning);
    mini->setTimeoutMs(30000);
    z3->add(prefix);
    mini->add(prefix);
    for (int q = 0; q < 4; ++q) {
      Expr a = pool[rng.below(pool.size())];
      Expr b = pool[rng.below(pool.size())];
      Expr assumption = q % 2 == 0 ? ctx.mkEq(a, b) : ctx.mkUlt(a, b);
      std::vector<Expr> assume = {assumption};
      const CheckResult rz = z3->checkAssuming(assume);
      const CheckResult rm = mini->checkAssuming(assume);
      ASSERT_NE(rm, CheckResult::Unknown)
          << tc.name << " seed " << GetParam() << " query " << q;
      EXPECT_EQ(rz, rm) << tc.name << " seed " << GetParam() << " query "
                        << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BvFuzz, ::testing::Range<uint64_t>(0, 12));

// ---- Seed portfolio ---------------------------------------------------------------

TEST(MiniPortfolioTest, RaceAgreesOnPigeonholeAndProducesModels) {
  // A hard UNSAT instance (every participant must agree) and a SAT
  // instance with model adoption from whichever clone wins.
  Context ctx;
  MiniTuning t;
  t.portfolio = 4;
  t.seed = 7;

  {
    auto s = makeMiniSolver(t);
    Sort bv = Sort::bv(16);
    Expr x = ctx.var("x", bv), y = ctx.var("y", bv);
    // x*y == 0x2e01 (= 59*199), x > 1, y > x: a search-heavy SAT query.
    s->add(ctx.mkEq(ctx.mkMul(x, y), ctx.bvVal(0x2e01, 16)));
    s->add(ctx.mkUlt(ctx.bvVal(1, 16), x));
    s->add(ctx.mkUlt(x, y));
    ASSERT_EQ(s->check(), CheckResult::Sat);
    auto m = s->model();
    const uint64_t vx = m->evalBv(x), vy = m->evalBv(y);
    EXPECT_EQ((vx * vy) & 0xffff, 0x2e01u);
    EXPECT_GT(vx, 1u);
    EXPECT_LT(vx, vy);
  }
  {
    auto s = makeMiniSolver(t);
    Sort bv = Sort::bv(12);
    Expr x = ctx.var("p", bv);
    s->add(ctx.mkUlt(x, ctx.bvVal(5, 12)));
    s->add(ctx.mkUlt(ctx.bvVal(10, 12), x));
    EXPECT_EQ(s->check(), CheckResult::Unsat);
  }
}

TEST(MiniPortfolioTest, IncrementalRaceStaysConsistent) {
  Context ctx;
  MiniTuning t;
  t.portfolio = 3;
  auto s = makeMiniSolver(t);
  Sort bv = Sort::bv(10);
  Expr x = ctx.var("x", bv), y = ctx.var("y", bv);
  s->add(ctx.mkEq(ctx.mkAdd(x, y), ctx.bvVal(100, 10)));
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->push();
  s->add(ctx.mkUlt(ctx.bvVal(200, 10), x));
  s->add(ctx.mkUlt(ctx.bvVal(200, 10), y));
  // x, y > 200 and x + y == 100 (mod 1024) still has solutions?
  // x=450, y=674: 1124 mod 1024 = 100. Sat.
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->pop();
  s->push();
  s->add(ctx.mkEq(x, ctx.bvVal(0, 10)));
  s->add(ctx.mkUlt(y, ctx.bvVal(100, 10)));  // then y must be 100: Unsat
  EXPECT_EQ(s->check(), CheckResult::Unsat);
  s->pop();
  EXPECT_EQ(s->check(), CheckResult::Sat);
}

}  // namespace
}  // namespace pugpara::smt
