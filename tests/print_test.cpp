// Printer and expression-property tests: SMT-LIB script golden checks,
// infix rendering, simplifier idempotence, substitution algebra, and
// traversal utilities.
#include <gtest/gtest.h>

#include "expr/context.h"
#include "expr/eval.h"
#include "expr/print.h"
#include "expr/subst.h"
#include "expr/walk.h"
#include "support/rng.h"

namespace pugpara::expr {
namespace {

class PrintTest : public ::testing::Test {
 protected:
  Context ctx;
  Sort bv8 = Sort::bv(8);
};

TEST_F(PrintTest, SmtLibTermRendering) {
  Expr x = ctx.var("x", bv8);
  Expr a = ctx.var("a", Sort::array(8, 8));
  EXPECT_EQ(toSmtLib(ctx.mkSelect(a, x)), "(select a x)");
  EXPECT_EQ(toSmtLib(ctx.mkStore(a, x, ctx.bvVal(1, 8))),
            "(store a x (_ bv1 8))");
  EXPECT_EQ(toSmtLib(ctx.mkZeroExt(x, 8)), "((_ zero_extend 8) x)");
  EXPECT_EQ(toSmtLib(ctx.mkExtract(x, 7, 4)), "((_ extract 7 4) x)");
  EXPECT_EQ(toSmtLib(ctx.mkIte(ctx.var("p", Sort::boolSort()), x, x)),
            "x");  // ite(p, x, x) simplifies away
}

TEST_F(PrintTest, SmtLibQuantifierRendering) {
  Expr t = ctx.var("t", bv8);
  std::vector<Expr> bound = {t};
  Expr q = ctx.mkForall(bound, ctx.mkUlt(t, ctx.bvVal(4, 8)));
  EXPECT_EQ(toSmtLib(q), "(forall ((t (_ BitVec 8))) (bvult t (_ bv4 8)))");
}

TEST_F(PrintTest, ScriptDeclaresEveryFreeVariableOnce) {
  Expr x = ctx.var("x", bv8);
  Expr y = ctx.var("y", bv8);
  std::vector<Expr> as = {ctx.mkUlt(x, y), ctx.mkUlt(y, ctx.bvVal(9, 8))};
  std::string script = toSmtLibScript(as);
  // x and y each declared exactly once.
  EXPECT_EQ(script.find("(declare-fun x"), script.rfind("(declare-fun x"));
  EXPECT_EQ(script.find("(declare-fun y"), script.rfind("(declare-fun y"));
  EXPECT_NE(script.find("(assert (bvult x y))"), std::string::npos);
}

TEST_F(PrintTest, ScriptSkipsBoundVariables) {
  Expr t = ctx.var("tq", bv8);
  Expr a = ctx.var("addr", bv8);
  std::vector<Expr> bound = {t};
  std::vector<Expr> as = {ctx.mkForall(bound, ctx.mkNe(a, t))};
  std::string script = toSmtLibScript(as);
  EXPECT_NE(script.find("(declare-fun addr"), std::string::npos);
  EXPECT_EQ(script.find("(declare-fun tq"), std::string::npos);
}

TEST_F(PrintTest, InfixCoversEveryOperatorShape) {
  Expr x = ctx.var("x", bv8);
  Expr p = ctx.var("p", Sort::boolSort());
  // Exercise renderers that are easy to get wrong; exact strings pin the
  // grammar used in reports.
  EXPECT_EQ(ctx.mkAShr(x, ctx.var("s", bv8)).str(), "(x >>a s)");
  EXPECT_EQ(ctx.mkImplies(p, p).str(), "true");
  EXPECT_EQ(ctx.mkSignExt(x, 4).str(), "sext(x, 4)");
  EXPECT_EQ(ctx.mkConcat(x, x).str(), "concat(x, x)");
  EXPECT_EQ(ctx.mkBvNot(x).str(), "~x");
}

// ---- Simplifier properties ------------------------------------------------------

TEST(SimplifierPropertyTest, IdempotentUnderRebuild) {
  // Rebuilding an already-simplified expression through the builders must
  // be the identity (fixpoint property).
  Context ctx;
  SplitMix64 rng(77);
  Expr x = ctx.var("x", Sort::bv(16));
  Expr y = ctx.var("y", Sort::bv(16));
  std::vector<Expr> pool = {x, y, ctx.bvVal(3, 16), ctx.bvVal(0, 16)};
  const Kind ops[] = {Kind::BvAdd, Kind::BvMul, Kind::BvAnd, Kind::BvXor,
                      Kind::BvShl, Kind::BvSub};
  for (int i = 0; i < 60; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    Expr e = ctx.mkBvBin(ops[rng.below(std::size(ops))], a, b);
    pool.push_back(e);
    if (e.arity() == 2) {
      std::vector<Expr> kids = {e.kid(0), e.kid(1)};
      EXPECT_EQ(rebuildWithKids(e, kids), e);
    }
  }
}

TEST(SubstitutionPropertyTest, CompositionMatchesSequentialApplication) {
  Context ctx;
  Expr x = ctx.var("x", Sort::bv(16));
  Expr y = ctx.var("y", Sort::bv(16));
  Expr z = ctx.var("z", Sort::bv(16));
  Expr e = ctx.mkAdd(ctx.mkMul(x, y), ctx.mkBvXor(y, z));
  // Parallel substitution {x->z, y->3}.
  SubstMap m;
  m.emplace(x.node(), z);
  m.emplace(y.node(), ctx.bvVal(3, 16));
  Expr parallel = substitute(e, m);
  // Sequential with fresh intermediate avoids capture: x->z first is safe
  // here because z is not a key.
  Expr seq = substitute(substitute(e, x, z), y, ctx.bvVal(3, 16));
  EXPECT_EQ(parallel, seq);
}

TEST(WalkPropertyTest, PostOrderVisitsChildrenFirst) {
  Context ctx;
  Expr x = ctx.var("x", Sort::bv(8));
  Expr e = ctx.mkAdd(ctx.mkMul(x, x), ctx.bvVal(1, 8));
  std::vector<Expr> order;
  postOrder(e, [&order](Expr n) { order.push_back(n); });
  // Every node must appear after all of its children.
  for (size_t i = 0; i < order.size(); ++i)
    for (size_t k = 0; k < order[i].arity(); ++k) {
      auto childPos = std::find(order.begin(), order.end(), order[i].kid(k));
      ASSERT_NE(childPos, order.end());
      EXPECT_LT(static_cast<size_t>(childPos - order.begin()), i);
    }
  EXPECT_EQ(order.back(), e);
}

TEST(EvalPropertyTest, SimplifiedAndRawAgreeOnRandomInputs) {
  // For random trees: evaluate the built (simplified) tree and compare with
  // a manual fold of the same operations — a differential oracle for the
  // whole expr stack.
  for (uint64_t seed = 0; seed < 24; ++seed) {
    Context ctx;
    SplitMix64 rng(seed);
    const uint32_t w = 4 + static_cast<uint32_t>(rng.below(28));
    Expr x = ctx.var("x", Sort::bv(w));
    const uint64_t xv = maskToWidth(rng.next(), w);
    Env env;
    env.bindBv(x, xv);

    uint64_t manual = xv;
    Expr sym = x;
    for (int i = 0; i < 16; ++i) {
      const uint64_t c = maskToWidth(rng.next(), w);
      Expr ce = ctx.bvVal(c, w);
      switch (rng.below(5)) {
        case 0:
          manual = maskToWidth(manual + c, w);
          sym = ctx.mkAdd(sym, ce);
          break;
        case 1:
          manual = maskToWidth(manual * c, w);
          sym = ctx.mkMul(sym, ce);
          break;
        case 2:
          manual = manual ^ c;
          sym = ctx.mkBvXor(sym, ce);
          break;
        case 3:
          manual = c == 0 ? manual : manual % c;
          sym = c == 0 ? sym : ctx.mkURem(sym, ctx.bvVal(c, w));
          break;
        default:
          manual = maskToWidth(~manual, w);
          sym = ctx.mkBvNot(sym);
          break;
      }
    }
    EXPECT_EQ(evalBv(sym, env), manual) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pugpara::expr
