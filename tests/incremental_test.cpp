// Incremental-solving tests: MiniSat-style solve-under-assumptions in the
// CDCL core, scope retraction in the persistent MiniSMT backend,
// checkAssuming conformance and Z3 cross-checks, and incremental-vs-fresh
// race verdict agreement across the kernel corpus and job counts.
#include <gtest/gtest.h>

#include "check/session.h"
#include "engine/engine.h"
#include "expr/eval.h"
#include "kernels/corpus.h"
#include "smt/mini/sat_solver.h"
#include "smt/solver.h"
#include "support/rng.h"

namespace pugpara::smt {
namespace {

using expr::Context;
using expr::Expr;
using expr::Sort;

// ---- CDCL core: assumptions --------------------------------------------------

TEST(SatAssumptionsTest, UnsatUnderAssumptionsIsNotSticky) {
  mini::SatSolver s;
  mini::Var a = s.newVar(), b = s.newVar();
  s.addClause({mini::Lit(a, false), mini::Lit(b, false)});  // a | b
  const mini::Lit notA[] = {mini::Lit(a, true)};
  ASSERT_EQ(s.solve(notA), mini::SatResult::Sat);
  EXPECT_TRUE(s.modelValue(b));
  const mini::Lit notBoth[] = {mini::Lit(a, true), mini::Lit(b, true)};
  EXPECT_EQ(s.solve(notBoth), mini::SatResult::Unsat);
  // The clause set itself is satisfiable; the failure above was local to
  // the assumptions.
  EXPECT_EQ(s.solve(), mini::SatResult::Sat);
}

TEST(SatAssumptionsTest, AssumptionsComposeWithRealClauses) {
  mini::SatSolver s;
  mini::Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  s.addClause({mini::Lit(a, true), mini::Lit(b, false)});   // a -> b
  s.addClause({mini::Lit(b, true), mini::Lit(c, false)});   // b -> c
  const mini::Lit assumeA[] = {mini::Lit(a, false)};
  ASSERT_EQ(s.solve(assumeA), mini::SatResult::Sat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_TRUE(s.modelValue(c));
  const mini::Lit aNotC[] = {mini::Lit(a, false), mini::Lit(c, true)};
  EXPECT_EQ(s.solve(aNotC), mini::SatResult::Unsat);
}

/// Builds PHP(holes+1, holes) with every clause guarded by `sel` (clause ∨
/// ¬sel): unsat exactly while `sel` is assumed.
mini::Var guardedPigeonhole(mini::SatSolver& s, uint32_t holes) {
  const mini::Var sel = s.newVar();
  const mini::Lit notSel(sel, true);
  const uint32_t pigeons = holes + 1;
  std::vector<std::vector<mini::Var>> p(pigeons,
                                        std::vector<mini::Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (uint32_t i = 0; i < pigeons; ++i) {
    std::vector<mini::Lit> clause;
    for (uint32_t h = 0; h < holes; ++h)
      clause.emplace_back(p[i][h], false);
    clause.push_back(notSel);
    s.addClause(std::move(clause));
  }
  for (uint32_t h = 0; h < holes; ++h)
    for (uint32_t i = 0; i < pigeons; ++i)
      for (uint32_t j = i + 1; j < pigeons; ++j)
        s.addClause(
            {mini::Lit(p[i][h], true), mini::Lit(p[j][h], true), notSel});
  return sel;
}

TEST(SatAssumptionsTest, LearntClausesPersistSoundly) {
  mini::SatSolver s;
  const mini::Var sel = guardedPigeonhole(s, 5);
  const mini::Lit on[] = {mini::Lit(sel, false)};
  // Alternate between the guarded-unsat instance and the free instance:
  // verdicts must be stable while learnt clauses and activities accumulate
  // (every learnt clause descends from guarded clauses, so it carries ¬sel
  // and cannot pollute the unguarded solves).
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(s.solve(on), mini::SatResult::Unsat) << "round " << round;
    EXPECT_EQ(s.solve(), mini::SatResult::Sat) << "round " << round;
  }
  EXPECT_GT(s.stats().conflicts, 0u);
  // Re-solves with the refutation learnt should not redo the full search.
  const uint64_t before = s.stats().conflicts;
  EXPECT_EQ(s.solve(on), mini::SatResult::Unsat);
  EXPECT_LE(s.stats().conflicts - before, before);
}

TEST(SatAssumptionsTest, SelectorRetirementDisablesClauses) {
  mini::SatSolver s;
  const mini::Var sel = guardedPigeonhole(s, 4);
  const mini::Lit on[] = {mini::Lit(sel, false)};
  ASSERT_EQ(s.solve(on), mini::SatResult::Unsat);
  // Retire the scope: the permanent unit ¬sel satisfies every guarded
  // clause (and every learnt descendant).
  ASSERT_TRUE(s.addClause({mini::Lit(sel, true)}));
  EXPECT_EQ(s.solve(), mini::SatResult::Sat);
  // Assuming the retired selector now contradicts the unit.
  EXPECT_EQ(s.solve(on), mini::SatResult::Unsat);
  EXPECT_EQ(s.solve(), mini::SatResult::Sat);
}

// ---- MiniSMT backend: persistent push/pop ------------------------------------

TEST(MiniIncrementalTest, PopRetractsExactlyTheScope) {
  Context ctx;
  auto s = makeMiniSolver();
  Expr x = ctx.var("x", Sort::bv(8));
  s->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->push();
  s->add(ctx.mkUlt(ctx.bvVal(20, 8), x));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
  s->pop();
  // The popped clause must stop constraining the instance.
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->push();
  s->add(ctx.mkEq(x, ctx.bvVal(3, 8)));
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->pop();
  // A base-level assertion incompatible with the popped one: if pop leaked,
  // this would be unsat.
  s->add(ctx.mkEq(x, ctx.bvVal(7, 8)));
  EXPECT_EQ(s->check(), CheckResult::Sat);
  s->push();
  s->add(ctx.mkNe(x, ctx.bvVal(7, 8)));
  EXPECT_EQ(s->check(), CheckResult::Unsat);
  s->pop();
  EXPECT_EQ(s->check(), CheckResult::Sat);
}

TEST(MiniIncrementalTest, ReusedScopeDepthGetsAFreshSelector) {
  Context ctx;
  auto s = makeMiniSolver();
  Expr x = ctx.var("x", Sort::bv(8));
  // Push/pop the same depth repeatedly; each cycle must be independent.
  for (int i = 0; i < 4; ++i) {
    s->push();
    s->add(ctx.mkEq(x, ctx.bvVal(static_cast<uint64_t>(i), 8)));
    EXPECT_EQ(s->check(), CheckResult::Sat) << "cycle " << i;
    s->push();
    s->add(ctx.mkNe(x, ctx.bvVal(static_cast<uint64_t>(i), 8)));
    EXPECT_EQ(s->check(), CheckResult::Unsat) << "cycle " << i;
    s->pop();
    s->pop();
  }
  EXPECT_EQ(s->check(), CheckResult::Sat);
}

TEST(MiniIncrementalTest, ArrayAxiomsSurvivePopsSoundly) {
  Context ctx;
  auto s = makeMiniSolver();
  Sort arr = Sort::array(8, 8);
  Expr a = ctx.var("a", arr);
  Expr i = ctx.var("i", Sort::bv(8));
  Expr j = ctx.var("j", Sort::bv(8));
  s->add(ctx.mkEq(ctx.mkSelect(a, i), ctx.bvVal(1, 8)));
  s->push();
  s->add(ctx.mkEq(i, j));
  s->add(ctx.mkEq(ctx.mkSelect(a, j), ctx.bvVal(2, 8)));
  EXPECT_EQ(s->check(), CheckResult::Unsat);  // Ackermann consistency
  s->pop();
  // The reads' consistency axiom persists (it is theory-valid), but the
  // popped equalities are gone: satisfiable again with i != j.
  ASSERT_EQ(s->check(), CheckResult::Sat);
  auto m = s->model();
  EXPECT_EQ(m->evalBv(ctx.mkSelect(a, i)), 1u);
}

// ---- checkAssuming conformance (both backends) --------------------------------

class AssumingBackendTest : public ::testing::TestWithParam<Backend> {
 protected:
  [[nodiscard]] std::unique_ptr<Solver> solver() const {
    return makeSolver(GetParam());
  }
};

TEST_P(AssumingBackendTest, AssumptionsConstrainOnlyTheirCall) {
  Context ctx;
  auto s = solver();
  Expr x = ctx.var("x", Sort::bv(8));
  s->add(ctx.mkUlt(x, ctx.bvVal(10, 8)));
  const Expr big[] = {ctx.mkUlt(ctx.bvVal(20, 8), x)};
  EXPECT_EQ(s->checkAssuming(big), CheckResult::Unsat);
  EXPECT_EQ(s->check(), CheckResult::Sat);  // nothing persisted
  const Expr five[] = {ctx.mkEq(x, ctx.bvVal(5, 8))};
  ASSERT_EQ(s->checkAssuming(five), CheckResult::Sat);
  auto m = s->model();
  EXPECT_EQ(m->evalBv(x), 5u);  // model reflects the assumptions
  const Expr clash[] = {ctx.mkEq(x, ctx.bvVal(5, 8)),
                        ctx.mkEq(x, ctx.bvVal(6, 8))};
  EXPECT_EQ(s->checkAssuming(clash), CheckResult::Unsat);
  EXPECT_EQ(s->check(), CheckResult::Sat);
}

TEST_P(AssumingBackendTest, AssumptionsComposeWithPushPop) {
  Context ctx;
  auto s = solver();
  Expr x = ctx.var("x", Sort::bv(8));
  Expr y = ctx.var("y", Sort::bv(8));
  s->add(ctx.mkUlt(x, y));
  s->push();
  s->add(ctx.mkUlt(y, ctx.bvVal(5, 8)));
  const Expr xBig[] = {ctx.mkUle(ctx.bvVal(5, 8), x)};
  EXPECT_EQ(s->checkAssuming(xBig), CheckResult::Unsat);
  s->pop();
  EXPECT_EQ(s->checkAssuming(xBig), CheckResult::Sat);
}

INSTANTIATE_TEST_SUITE_P(Backends, AssumingBackendTest,
                         ::testing::Values(Backend::Z3, Backend::Mini),
                         [](const auto& info) {
                           return info.param == Backend::Z3 ? "Z3" : "Mini";
                         });

// ---- Random cross-check: checkAssuming, Z3 vs MiniSMT -------------------------

class MiniVsZ3Assuming : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiniVsZ3Assuming, RandomPrefixAndAssumptionsAgree) {
  SplitMix64 rng(GetParam() * 9176 + 271);
  Context ctx;
  const uint32_t width = 4 + static_cast<uint32_t>(rng.below(10));
  Sort bv = Sort::bv(width);
  std::vector<Expr> pool = {ctx.var("x", bv), ctx.var("y", bv),
                            ctx.var("z", bv), ctx.bvVal(rng.next(), width),
                            ctx.bvVal(rng.below(5), width)};
  using K = expr::Kind;
  const K ops[] = {K::BvAdd, K::BvSub, K::BvMul,  K::BvAnd,  K::BvOr,
                   K::BvXor, K::BvShl, K::BvLShr, K::BvAShr, K::BvUDiv,
                   K::BvURem, K::BvSDiv, K::BvSRem};
  for (int i = 0; i < 12; ++i) {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    pool.push_back(ctx.mkBvBin(ops[rng.below(std::size(ops))], a, b));
  }
  auto constraint = [&]() {
    Expr a = pool[rng.below(pool.size())];
    Expr b = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: return ctx.mkEq(a, b);
      case 1: return ctx.mkUlt(a, b);
      case 2: return ctx.mkSlt(a, b);
      default: return ctx.mkNe(a, b);
    }
  };

  auto z3 = makeZ3Solver();
  auto mini = makeMiniSolver();
  mini->setTimeoutMs(30000);
  std::vector<Expr> prefix = {constraint(), constraint()};
  for (Expr c : prefix) {
    z3->add(c);
    mini->add(c);
  }

  // Several assumption-only rounds on the same pair of live solvers: the
  // incremental MiniSMT CNF persists across rounds and must keep agreeing
  // with Z3's native assumption handling.
  for (int round = 0; round < 4; ++round) {
    std::vector<Expr> asms = {constraint()};
    if (rng.below(2) != 0) asms.push_back(constraint());
    CheckResult rz = z3->checkAssuming(asms);
    CheckResult rm = mini->checkAssuming(asms);
    ASSERT_NE(rm, CheckResult::Unknown)
        << "seed " << GetParam() << " round " << round;
    EXPECT_EQ(rz, rm) << "seed " << GetParam() << " round " << round
                      << " width " << width;
    if (rm == CheckResult::Sat) {
      auto m = mini->model();
      expr::Env env;
      for (const char* name : {"x", "y", "z"}) {
        Expr v = ctx.var(name, bv);
        env.bindBv(v, m->evalBv(v));
      }
      for (Expr c : prefix)
        EXPECT_TRUE(expr::evalBool(c, env))
            << "prefix, seed " << GetParam() << " round " << round;
      for (Expr c : asms)
        EXPECT_TRUE(expr::evalBool(c, env))
            << "assumption, seed " << GetParam() << " round " << round;
    }
  }
  // And the bare prefix must still agree after all the assumption rounds.
  EXPECT_EQ(z3->check(), mini->check()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniVsZ3Assuming,
                         ::testing::Range<uint64_t>(0, 30));

// ---- Incremental vs fresh: race verdicts on the corpus ------------------------

TEST(IncrementalRaceAgreementTest, CorpusVerdictsMatchFreshAtEveryJobCount) {
  const uint32_t width = 8;
  std::vector<std::string> names;
  for (const auto& e : kernels::corpus()) names.push_back(e.name);
  check::VerificationSession session(kernels::combinedSource(names, width));

  auto runBatch = [&](bool incremental, unsigned jobs) {
    std::vector<check::CheckRequest> reqs;
    for (const auto& name : names) {
      check::CheckRequest r;
      r.kind = check::CheckKind::Races;
      r.kernel = name;
      r.options.method = check::Method::Parameterized;
      r.options.width = width;
      r.options.incrementalSolving = incremental;
      r.options.solverTimeoutMs = 120000;
      reqs.push_back(std::move(r));
    }
    engine::EngineOptions eo;
    eo.jobs = jobs;
    engine::VerificationEngine eng(eo);
    return eng.runAll(session, reqs);
  };

  const auto fresh = runBatch(false, 1);
  ASSERT_EQ(fresh.size(), names.size());
  for (unsigned jobs : {1u, 2u, 4u}) {
    const auto inc = runBatch(true, jobs);
    ASSERT_EQ(inc.size(), fresh.size());
    for (size_t i = 0; i < fresh.size(); ++i)
      EXPECT_EQ(inc[i].report.outcome, fresh[i].report.outcome)
          << names[i] << " jobs=" << jobs << "\nfresh: "
          << fresh[i].report.str() << "\nincremental: "
          << inc[i].report.str();
  }
}

}  // namespace
}  // namespace pugpara::smt
